file(REMOVE_RECURSE
  "CMakeFiles/range_scan_clustering.dir/range_scan_clustering.cpp.o"
  "CMakeFiles/range_scan_clustering.dir/range_scan_clustering.cpp.o.d"
  "range_scan_clustering"
  "range_scan_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_scan_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
