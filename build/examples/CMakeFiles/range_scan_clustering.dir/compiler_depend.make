# Empty compiler generated dependencies file for range_scan_clustering.
# This may be replaced when dependencies are built.
