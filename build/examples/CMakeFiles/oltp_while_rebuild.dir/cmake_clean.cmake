file(REMOVE_RECURSE
  "CMakeFiles/oltp_while_rebuild.dir/oltp_while_rebuild.cpp.o"
  "CMakeFiles/oltp_while_rebuild.dir/oltp_while_rebuild.cpp.o.d"
  "oltp_while_rebuild"
  "oltp_while_rebuild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oltp_while_rebuild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
