# Empty compiler generated dependencies file for oltp_while_rebuild.
# This may be replaced when dependencies are built.
