# Empty dependencies file for figure2_walkthrough.
# This may be replaced when dependencies are built.
