file(REMOVE_RECURSE
  "CMakeFiles/oir_dump.dir/oir_dump.cpp.o"
  "CMakeFiles/oir_dump.dir/oir_dump.cpp.o.d"
  "oir_dump"
  "oir_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oir_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
