# Empty compiler generated dependencies file for oir_dump.
# This may be replaced when dependencies are built.
