# Empty dependencies file for space_txn_test.
# This may be replaced when dependencies are built.
