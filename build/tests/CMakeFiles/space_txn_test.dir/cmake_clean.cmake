file(REMOVE_RECURSE
  "CMakeFiles/space_txn_test.dir/space_txn_test.cc.o"
  "CMakeFiles/space_txn_test.dir/space_txn_test.cc.o.d"
  "space_txn_test"
  "space_txn_test.pdb"
  "space_txn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/space_txn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
