file(REMOVE_RECURSE
  "CMakeFiles/rebuild_test.dir/rebuild_test.cc.o"
  "CMakeFiles/rebuild_test.dir/rebuild_test.cc.o.d"
  "rebuild_test"
  "rebuild_test.pdb"
  "rebuild_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebuild_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
