# Empty compiler generated dependencies file for log_apply_test.
# This may be replaced when dependencies are built.
