file(REMOVE_RECURSE
  "CMakeFiles/log_apply_test.dir/log_apply_test.cc.o"
  "CMakeFiles/log_apply_test.dir/log_apply_test.cc.o.d"
  "log_apply_test"
  "log_apply_test.pdb"
  "log_apply_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_apply_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
