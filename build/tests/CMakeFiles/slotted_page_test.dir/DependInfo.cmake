
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/slotted_page_test.cc" "tests/CMakeFiles/slotted_page_test.dir/slotted_page_test.cc.o" "gcc" "tests/CMakeFiles/slotted_page_test.dir/slotted_page_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/oir_core.dir/DependInfo.cmake"
  "/root/repo/build/src/btree/CMakeFiles/oir_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/oir_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/oir_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/space/CMakeFiles/oir_space.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/oir_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/oir_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/oir_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/oir_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
