# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/slotted_page_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/rebuild_test[1]_include.cmake")
include("/root/repo/build/tests/cursor_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/wal_test[1]_include.cmake")
include("/root/repo/build/tests/lock_manager_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/space_txn_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/log_apply_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/persistence_test[1]_include.cmake")
