file(REMOVE_RECURSE
  "CMakeFiles/bench_io_size.dir/bench_io_size.cc.o"
  "CMakeFiles/bench_io_size.dir/bench_io_size.cc.o.d"
  "bench_io_size"
  "bench_io_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_io_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
