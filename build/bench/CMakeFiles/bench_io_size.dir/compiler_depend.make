# Empty compiler generated dependencies file for bench_io_size.
# This may be replaced when dependencies are built.
