file(REMOVE_RECURSE
  "CMakeFiles/bench_ntasize_sweep.dir/bench_ntasize_sweep.cc.o"
  "CMakeFiles/bench_ntasize_sweep.dir/bench_ntasize_sweep.cc.o.d"
  "bench_ntasize_sweep"
  "bench_ntasize_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ntasize_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
