# Empty compiler generated dependencies file for bench_ntasize_sweep.
# This may be replaced when dependencies are built.
