file(REMOVE_RECURSE
  "liboir_storage.a"
)
