# Empty dependencies file for oir_storage.
# This may be replaced when dependencies are built.
