file(REMOVE_RECURSE
  "CMakeFiles/oir_storage.dir/buffer_manager.cc.o"
  "CMakeFiles/oir_storage.dir/buffer_manager.cc.o.d"
  "CMakeFiles/oir_storage.dir/disk.cc.o"
  "CMakeFiles/oir_storage.dir/disk.cc.o.d"
  "CMakeFiles/oir_storage.dir/slotted_page.cc.o"
  "CMakeFiles/oir_storage.dir/slotted_page.cc.o.d"
  "liboir_storage.a"
  "liboir_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oir_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
