# Empty dependencies file for oir_core.
# This may be replaced when dependencies are built.
