file(REMOVE_RECURSE
  "CMakeFiles/oir_core.dir/db.cc.o"
  "CMakeFiles/oir_core.dir/db.cc.o.d"
  "CMakeFiles/oir_core.dir/index.cc.o"
  "CMakeFiles/oir_core.dir/index.cc.o.d"
  "CMakeFiles/oir_core.dir/rebuild.cc.o"
  "CMakeFiles/oir_core.dir/rebuild.cc.o.d"
  "liboir_core.a"
  "liboir_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oir_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
