file(REMOVE_RECURSE
  "liboir_core.a"
)
