# Empty compiler generated dependencies file for oir_recovery.
# This may be replaced when dependencies are built.
