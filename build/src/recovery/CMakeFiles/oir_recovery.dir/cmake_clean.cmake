file(REMOVE_RECURSE
  "CMakeFiles/oir_recovery.dir/log_apply.cc.o"
  "CMakeFiles/oir_recovery.dir/log_apply.cc.o.d"
  "CMakeFiles/oir_recovery.dir/recovery.cc.o"
  "CMakeFiles/oir_recovery.dir/recovery.cc.o.d"
  "liboir_recovery.a"
  "liboir_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oir_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
