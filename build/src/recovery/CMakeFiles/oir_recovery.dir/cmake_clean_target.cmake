file(REMOVE_RECURSE
  "liboir_recovery.a"
)
