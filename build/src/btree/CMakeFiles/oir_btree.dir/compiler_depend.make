# Empty compiler generated dependencies file for oir_btree.
# This may be replaced when dependencies are built.
