file(REMOVE_RECURSE
  "liboir_btree.a"
)
