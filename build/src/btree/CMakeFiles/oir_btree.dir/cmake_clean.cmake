file(REMOVE_RECURSE
  "CMakeFiles/oir_btree.dir/btree.cc.o"
  "CMakeFiles/oir_btree.dir/btree.cc.o.d"
  "CMakeFiles/oir_btree.dir/btree_inspect.cc.o"
  "CMakeFiles/oir_btree.dir/btree_inspect.cc.o.d"
  "CMakeFiles/oir_btree.dir/btree_smo.cc.o"
  "CMakeFiles/oir_btree.dir/btree_smo.cc.o.d"
  "CMakeFiles/oir_btree.dir/cursor.cc.o"
  "CMakeFiles/oir_btree.dir/cursor.cc.o.d"
  "CMakeFiles/oir_btree.dir/key.cc.o"
  "CMakeFiles/oir_btree.dir/key.cc.o.d"
  "CMakeFiles/oir_btree.dir/node.cc.o"
  "CMakeFiles/oir_btree.dir/node.cc.o.d"
  "liboir_btree.a"
  "liboir_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oir_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
