file(REMOVE_RECURSE
  "CMakeFiles/oir_space.dir/space_manager.cc.o"
  "CMakeFiles/oir_space.dir/space_manager.cc.o.d"
  "liboir_space.a"
  "liboir_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oir_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
