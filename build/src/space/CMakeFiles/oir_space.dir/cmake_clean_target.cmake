file(REMOVE_RECURSE
  "liboir_space.a"
)
