# Empty compiler generated dependencies file for oir_space.
# This may be replaced when dependencies are built.
