file(REMOVE_RECURSE
  "liboir_wal.a"
)
