file(REMOVE_RECURSE
  "CMakeFiles/oir_wal.dir/log_manager.cc.o"
  "CMakeFiles/oir_wal.dir/log_manager.cc.o.d"
  "CMakeFiles/oir_wal.dir/log_record.cc.o"
  "CMakeFiles/oir_wal.dir/log_record.cc.o.d"
  "liboir_wal.a"
  "liboir_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oir_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
