# Empty dependencies file for oir_wal.
# This may be replaced when dependencies are built.
