file(REMOVE_RECURSE
  "liboir_sync.a"
)
