file(REMOVE_RECURSE
  "CMakeFiles/oir_sync.dir/lock_manager.cc.o"
  "CMakeFiles/oir_sync.dir/lock_manager.cc.o.d"
  "liboir_sync.a"
  "liboir_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oir_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
