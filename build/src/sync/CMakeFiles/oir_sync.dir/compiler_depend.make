# Empty compiler generated dependencies file for oir_sync.
# This may be replaced when dependencies are built.
