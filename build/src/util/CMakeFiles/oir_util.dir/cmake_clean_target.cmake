file(REMOVE_RECURSE
  "liboir_util.a"
)
