file(REMOVE_RECURSE
  "CMakeFiles/oir_util.dir/clock.cc.o"
  "CMakeFiles/oir_util.dir/clock.cc.o.d"
  "CMakeFiles/oir_util.dir/coding.cc.o"
  "CMakeFiles/oir_util.dir/coding.cc.o.d"
  "CMakeFiles/oir_util.dir/counters.cc.o"
  "CMakeFiles/oir_util.dir/counters.cc.o.d"
  "CMakeFiles/oir_util.dir/crc32c.cc.o"
  "CMakeFiles/oir_util.dir/crc32c.cc.o.d"
  "CMakeFiles/oir_util.dir/histogram.cc.o"
  "CMakeFiles/oir_util.dir/histogram.cc.o.d"
  "CMakeFiles/oir_util.dir/status.cc.o"
  "CMakeFiles/oir_util.dir/status.cc.o.d"
  "liboir_util.a"
  "liboir_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oir_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
