# Empty compiler generated dependencies file for oir_util.
# This may be replaced when dependencies are built.
