file(REMOVE_RECURSE
  "CMakeFiles/oir_txn.dir/transaction_manager.cc.o"
  "CMakeFiles/oir_txn.dir/transaction_manager.cc.o.d"
  "liboir_txn.a"
  "liboir_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oir_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
