file(REMOVE_RECURSE
  "liboir_txn.a"
)
