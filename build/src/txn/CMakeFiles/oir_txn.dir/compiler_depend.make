# Empty compiler generated dependencies file for oir_txn.
# This may be replaced when dependencies are built.
