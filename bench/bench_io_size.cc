// Section 6.3: the rebuild asks the buffer manager to use the largest
// buffers available; with 2 KB pages and 16 KB buffers, reads and writes
// move 8 pages per disk operation. We sweep the forced-write I/O size and
// report the disk operations the rebuild needed (the new pages are written
// in chunk order, so multi-page transfers group perfectly).

#include "bench/bench_common.h"
#include "core/rebuild.h"
#include "util/counters.h"

namespace oir::bench {
namespace {

int Main(int argc, char** argv) {
  uint64_t n = 60000;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") n = 15000;
  }
  std::printf("Disk operations vs I/O transfer size (Section 6.3)\n");
  std::printf("(2 KB pages; 8 pages = the paper's 16 KB buffers)\n\n");
  std::printf("%-10s %12s %12s %12s %14s %12s\n", "io-pages", "io-bytes",
              "write-ops", "read-ops", "pages-written", "new-pages");

  for (uint32_t io_pages : {1u, 2u, 4u, 8u, 16u}) {
    auto db = OpenDb();
    BuildHalfUtilizedIndex(db.get(), n, 12);
    ColdCache(db.get());

    auto before = GlobalCounters::Get().Snapshot();
    RebuildOptions opts;
    opts.io_pages = io_pages;
    RebuildResult res;
    OIR_CHECK(db->index()->RebuildOnline(opts, &res).ok());
    auto delta = GlobalCounters::Get().Snapshot() - before;

    std::printf("%-10u %12u %12llu %12llu %14llu %12llu\n", io_pages,
                io_pages * kDefaultPageSize,
                (unsigned long long)delta.io_write_ops,
                (unsigned long long)delta.io_read_ops,
                (unsigned long long)delta.pages_written,
                (unsigned long long)res.new_leaf_pages);
  }
  std::printf("\nExpected shape: write-ops shrinks ~linearly with the "
              "transfer size while\npages-written stays constant.\n");
  return 0;
}

}  // namespace
}  // namespace oir::bench

int main(int argc, char** argv) { return oir::bench::Main(argc, argv); }
