// Section 6.3: the rebuild asks the buffer manager to use the largest
// buffers available; with 2 KB pages and 16 KB buffers, reads and writes
// move 8 pages per disk operation. We sweep the forced-write I/O size and
// report the disk operations the rebuild needed (the new pages are written
// in chunk order, so multi-page transfers group perfectly). Each transfer
// size runs twice — with and without the copy phase's read-ahead — to show
// the read side shrinking symmetrically with the forced writes.

#include "bench/bench_common.h"
#include "core/rebuild.h"
#include "util/counters.h"

namespace oir::bench {
namespace {

struct RunStats {
  CounterSnapshot delta;
  RebuildResult res;
};

RunStats RunOnce(uint64_t n, uint32_t io_pages, bool prefetch) {
  auto db = OpenDb();
  BuildHalfUtilizedIndex(db.get(), n, 12);
  ColdCache(db.get());

  RunStats out;
  auto before = GlobalCounters::Get().Snapshot();
  RebuildOptions opts;
  opts.io_pages = io_pages;
  opts.prefetch = prefetch;
  OIR_CHECK(db->index()->RebuildOnline(opts, &out.res).ok());
  out.delta = GlobalCounters::Get().Snapshot() - before;
  return out;
}

int Main(int argc, char** argv) {
  uint64_t n = 60000;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") n = 15000;
  }
  std::printf("Disk operations vs I/O transfer size (Section 6.3)\n");
  std::printf("(2 KB pages; 8 pages = the paper's 16 KB buffers; "
              "read-ops with and without read-ahead)\n\n");
  std::printf("%-10s %12s %12s %12s %14s %14s %12s\n", "io-pages",
              "io-bytes", "write-ops", "read-ops", "read-ops-nopf",
              "pages-written", "new-pages");

  for (uint32_t io_pages : {1u, 2u, 4u, 8u, 16u}) {
    RunStats pf = RunOnce(n, io_pages, /*prefetch=*/true);
    RunStats nopf = RunOnce(n, io_pages, /*prefetch=*/false);

    std::printf("%-10u %12u %12llu %12llu %14llu %14llu %12llu\n", io_pages,
                io_pages * kDefaultPageSize,
                (unsigned long long)pf.delta.io_write_ops,
                (unsigned long long)pf.delta.io_read_ops,
                (unsigned long long)nopf.delta.io_read_ops,
                (unsigned long long)pf.delta.pages_written,
                (unsigned long long)pf.res.new_leaf_pages);
  }
  std::printf("\nExpected shape: write-ops shrinks ~linearly with the "
              "transfer size while\npages-written stays constant; "
              "read-ops shrinks the same way only when the\ncopy phase's "
              "read-ahead is on (the forced-write/read-ahead symmetry).\n");
  return 0;
}

}  // namespace
}  // namespace oir::bench

int main(int argc, char** argv) { return oir::bench::Main(argc, argv); }
