// Section 6.4 sweep: log space, CPU time, level-1 page visits and
// lock/latch-manager calls as functions of ntasize — the study behind the
// paper's choice of ntasize = 32. Includes the Section 5.5 level-1
// reorganization ablation.
//
// Implemented with google-benchmark so per-configuration timings come with
// proper repetition handling; the per-run counters are attached to each
// benchmark as user counters.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/rebuild.h"
#include "util/counters.h"

namespace oir::bench {
namespace {

constexpr uint64_t kNumKeys = 40000;

void BM_RebuildAtNtasize(benchmark::State& state) {
  const uint32_t ntasize = static_cast<uint32_t>(state.range(0));
  const bool reorg = state.range(1) != 0;
  RebuildResult last{};
  TreeStats after{};
  for (auto _ : state) {
    state.PauseTiming();
    auto db = OpenDb();
    BuildHalfUtilizedIndex(db.get(), kNumKeys, 12);
    ColdCache(db.get());
    auto before = GlobalCounters::Get().Snapshot();
    state.ResumeTiming();

    RebuildOptions opts;
    opts.ntasize = ntasize;
    opts.xactsize = std::max<uint32_t>(256, ntasize);
    opts.reorganize_level1 = reorg;
    Status s = db->index()->RebuildOnline(opts, &last);
    OIR_CHECK(s.ok());

    state.PauseTiming();
    auto delta = GlobalCounters::Get().Snapshot() - before;
    OIR_CHECK(db->tree()->Validate(&after).ok());
    state.counters["log_bytes"] = static_cast<double>(last.log_bytes);
    state.counters["log_records"] = static_cast<double>(last.log_records);
    state.counters["cpu_ms"] = last.cpu_ns / 1e6;
    state.counters["level1_visits"] =
        static_cast<double>(last.level1_visits);
    state.counters["lock_calls"] = static_cast<double>(delta.lock_requests);
    state.counters["latch_calls"] = static_cast<double>(delta.latch_acquires);
    state.counters["top_actions"] = static_cast<double>(last.top_actions);
    state.counters["nonleaf_pages"] =
        static_cast<double>(after.num_nonleaf_pages);
    state.ResumeTiming();
  }
}

BENCHMARK(BM_RebuildAtNtasize)
    ->ArgsProduct({{1, 2, 4, 8, 16, 32, 64, 128}, {1}})
    ->ArgNames({"ntasize", "reorg"})
    ->Unit(benchmark::kMillisecond);

// Ablation: Section 5.5 level-1 reorganization off.
BENCHMARK(BM_RebuildAtNtasize)
    ->ArgsProduct({{32}, {0}})
    ->ArgNames({"ntasize", "reorg"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace oir::bench

BENCHMARK_MAIN();
