// Quick crash-sweep smoke: enumerates the workload's crash points, arms an
// even 32-point spread of them, and runs one crash+recover+oracle iteration
// each. A fast confidence check between full `ctest -L fault` runs:
//
//   ./crash_sweep_smoke            # seed 1
//   OIR_TEST_SEED=7 ./crash_sweep_smoke
//
// Exit status 0 iff every iteration passed the recovery oracle.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "testing/sweep.h"

int main() {
  using oir::Status;
  using namespace oir::fault;

  SweepWorkloadOptions opts;
  if (const char* env = std::getenv("OIR_TEST_SEED")) {
    if (*env != '\0') opts.seed = std::strtoull(env, nullptr, 10);
  }

  std::vector<std::pair<std::string, uint64_t>> points;
  Status s = EnumerateCrashPoints(opts, &points);
  if (!s.ok()) {
    std::fprintf(stderr, "enumeration failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("census: %zu crash points (seed %llu)\n", points.size(),
              static_cast<unsigned long long>(opts.seed));

  const size_t n = std::min<size_t>(32, points.size());
  int failures = 0;
  int triggered = 0;
  for (size_t i = 0; i < n; ++i) {
    const auto& [name, hits] = points[i * points.size() / n];
    (void)hits;
    CrashIterationResult r;
    Status rs = RunCrashIteration(opts, name, 0, &r);
    if (!rs.ok()) {
      std::fprintf(stderr, "FAIL %s\n", rs.ToString().c_str());
      ++failures;
      continue;
    }
    if (r.triggered) ++triggered;
    std::printf("  ok %-28s triggered=%d committed_keys=%llu\n", name.c_str(),
                r.triggered ? 1 : 0,
                static_cast<unsigned long long>(r.committed_keys));
  }
  std::printf("crash_sweep_smoke: %zu points swept, %d triggered, %d failed\n",
              n, triggered, failures);
  return failures == 0 ? 0 : 1;
}
