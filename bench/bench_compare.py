#!/usr/bin/env python3
"""Compare a fresh bench JSON against a checked-in baseline.

The perf-sensitive benches (bench_concurrency, bench_durable_wal) write
machine-readable results — BENCH_io_path.json and BENCH_durable_wal.json —
whose committed copies at the repo root double as performance baselines.
This script diffs a fresh run against a baseline scenario-by-scenario
(matched on "name") and fails when throughput regresses by more than the
threshold (default 15%, tuned to ride out scheduler noise on shared CI
boxes while still catching a real regression in the I/O or commit path).

Latency columns (p99 etc.) are reported for context but never gate: tail
latencies on loaded runners are too noisy for a hard threshold.

Usage:
    python3 bench/bench_compare.py BENCH_io_path.json fresh.json
    python3 bench/bench_compare.py --threshold 0.20 baseline.json fresh.json

Exit status: 0 when every matched scenario holds, 1 on regression or on a
scenario present in the baseline but missing from the fresh run (pass
--allow-missing to tolerate renames / pruned scenarios).

Stdlib only; wired into ctest behind the OIR_PERF_GUARD cmake option.
"""

import argparse
import json
import sys


def scenario_list(doc):
    """Bench docs carry their scenarios under 'scenarios' or 'rows'."""
    for key in ("scenarios", "rows"):
        if isinstance(doc.get(key), list):
            return doc[key]
    raise SystemExit("bench_compare: no 'scenarios' or 'rows' array in input")


def by_name(doc):
    out = {}
    for s in scenario_list(doc):
        name = s.get("name")
        if name:
            out[name] = s
    return out


def pick_latency_key(scenario):
    for key in ("commit_p99_ms", "p99_ms"):
        if key in scenario:
            return key
    return None


def main():
    ap = argparse.ArgumentParser(
        description="diff a fresh bench JSON against a checked-in baseline"
    )
    ap.add_argument("baseline", help="checked-in baseline JSON")
    ap.add_argument("fresh", help="freshly produced bench JSON")
    ap.add_argument(
        "--threshold", type=float, default=0.15,
        help="max tolerated ops/s drop as a fraction (default 0.15)",
    )
    ap.add_argument(
        "--allow-missing", action="store_true",
        help="do not fail when a baseline scenario is absent from the fresh run",
    )
    args = ap.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        base = by_name(json.load(f))
    with open(args.fresh, encoding="utf-8") as f:
        fresh = by_name(json.load(f))

    failures = []
    width = max((len(n) for n in base), default=8)
    print(f"{'scenario':<{width}}  {'base ops/s':>12}  {'fresh ops/s':>12}  "
          f"{'delta':>8}  note")
    for name, b in base.items():
        f = fresh.get(name)
        if f is None:
            note = "MISSING from fresh run"
            if not args.allow_missing:
                failures.append(f"{name}: {note}")
                note += "  [FAIL]"
            print(f"{name:<{width}}  {b.get('ops_per_sec', 0):>12}  "
                  f"{'-':>12}  {'-':>8}  {note}")
            continue
        b_ops = b.get("ops_per_sec", 0)
        f_ops = f.get("ops_per_sec", 0)
        delta = (f_ops - b_ops) / b_ops if b_ops else 0.0
        note = ""
        lat = pick_latency_key(b)
        if lat and lat in f:
            note = f"{lat} {b[lat]:.2f} -> {f[lat]:.2f} ms"
        if b_ops and delta < -args.threshold:
            failures.append(
                f"{name}: ops/s {b_ops} -> {f_ops} "
                f"({100.0 * delta:+.1f}%, limit -{100.0 * args.threshold:.0f}%)"
            )
            note = (note + "  " if note else "") + "[FAIL]"
        print(f"{name:<{width}}  {b_ops:>12}  {f_ops:>12}  "
              f"{100.0 * delta:>+7.1f}%  {note}")

    extra = sorted(set(fresh) - set(base))
    if extra:
        print(f"note: scenarios only in fresh run (not gated): {', '.join(extra)}")

    if failures:
        print(f"\nbench_compare: {len(failures)} regression(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"\nbench_compare: OK ({len(base)} scenario(s) within "
          f"{100.0 * args.threshold:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
