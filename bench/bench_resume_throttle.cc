// Admission-controlled rebuild: the max_foreground_degradation_pct knob
// promises that foreground latency degrades by no more than the configured
// percentage while the rebuild still runs to completion.
//
// Method: one foreground thread runs point lookups continuously against a
// half-utilized index; per-operation latency lands in a histogram. Three
// windows, each on a fresh database:
//   baseline     — no rebuild; also yields the mean foreground latency the
//                  throttle is handed as its explicit baseline;
//   unthrottled  — the rebuild runs with the knob off (the damage case);
//   throttled    — the rebuild runs with the knob at --pct (default 10%).
// The headline figure is foreground p99 inside the throttled window versus
// the baseline window; the rebuild must complete in every case. Results go
// to BENCH_resume_throttle.json (--json overrides the path).

#include <atomic>
#include <cstring>
#include <thread>

#include "bench/bench_common.h"
#include "core/rebuild.h"
#include "util/clock.h"
#include "util/histogram.h"

namespace oir::bench {
namespace {

struct Window {
  uint64_t window_ms = 0;
  uint64_t ops = 0;
  double mean_us = 0;
  double p99_us = 0;
  double max_us = 0;
  // Rebuild windows only.
  bool rebuild_ran = false;
  bool rebuild_completed = false;
  uint64_t rebuild_ms = 0;
  uint64_t rebuild_transactions = 0;
  uint64_t progress_records = 0;
  uint64_t throttle_pauses = 0;
  uint64_t throttle_pause_ms = 0;

  double OpsPerSec() const {
    return window_ms == 0 ? 0.0 : ops * 1000.0 / window_ms;
  }
};

// mode 0: no rebuild (window_ms long); mode 1: rebuild with the given
// degradation knob (window is the rebuild's duration). `baseline_ns`, when
// non-zero, is handed to the throttle as the known-good foreground mean.
Window RunWindow(uint64_t n, int mode, uint32_t degradation_pct,
                 uint64_t baseline_ns, uint64_t window_ms) {
  auto db = OpenDb();
  BuildHalfUtilizedIndex(db.get(), n, 12);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> warm_ops{0};
  Histogram latency;
  std::thread fg([&] {
    Random rnd(42);
    // One long read transaction: Lookup's table lock is instant-duration,
    // and per-op commits would put the group-commit wait — not the
    // rebuild's interference — at the top of every percentile.
    auto txn = db->BeginTxn();
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t id = 2 * rnd.Uniform(n);
      const uint64_t t0 = NowNanos();
      bool found = false;
      OIR_CHECK(db->index()
                    ->Lookup(txn.get(), BenchKey(id, 12), id, &found)
                    .ok());
      latency.Add((NowNanos() - t0) / 1000);  // microseconds
      warm_ops.fetch_add(1, std::memory_order_relaxed);
    }
    OIR_CHECK(db->Commit(txn.get()).ok());
  });

  // Warm-up: the foreground must be past thread start-up and cache warming
  // before the window opens (also how the throttled rebuild's first sample
  // interval is guaranteed to see real traffic).
  while (warm_ops.load(std::memory_order_relaxed) < 20000) {
    std::this_thread::yield();
  }
  latency.Clear();

  Window w;
  const uint64_t t0 = NowNanos();
  if (mode == 1) {
    RebuildOptions opts;
    opts.max_foreground_degradation_pct = degradation_pct;
    opts.throttle_baseline_ns = baseline_ns;
    RebuildResult res;
    Status rs = db->index()->RebuildOnline(opts, &res);
    w.rebuild_ran = true;
    w.rebuild_completed = rs.ok();
    w.rebuild_ms = (NowNanos() - t0) / 1000000;
    w.rebuild_transactions = res.transactions;
    w.progress_records = res.progress_records;
    w.throttle_pauses = res.throttle_pauses;
    w.throttle_pause_ms = res.throttle_pause_us / 1000;
    OIR_CHECK(rs.ok());
  } else {
    std::this_thread::sleep_for(std::chrono::milliseconds(window_ms));
  }
  w.window_ms = (NowNanos() - t0) / 1000000;
  w.ops = latency.Count();
  w.mean_us = latency.Mean();
  w.p99_us = latency.Percentile(99);
  w.max_us = static_cast<double>(latency.Max());

  stop.store(true, std::memory_order_relaxed);
  fg.join();
  return w;
}

void PrintWindow(const char* name, const Window& w) {
  std::printf("%-12s %6llu ms  %9llu ops  %10.0f ops/s  mean %6.1f us  "
              "p99 %7.1f us  max %9.1f us\n",
              name, (unsigned long long)w.window_ms,
              (unsigned long long)w.ops, w.OpsPerSec(), w.mean_us, w.p99_us,
              w.max_us);
  if (w.rebuild_ran) {
    std::printf("             rebuild %s in %llu ms: %llu txns, %llu "
                "progress records, %llu pauses (%llu ms paused)\n",
                w.rebuild_completed ? "completed" : "FAILED",
                (unsigned long long)w.rebuild_ms,
                (unsigned long long)w.rebuild_transactions,
                (unsigned long long)w.progress_records,
                (unsigned long long)w.throttle_pauses,
                (unsigned long long)w.throttle_pause_ms);
  }
}

void JsonWindow(std::FILE* f, const char* name, const Window& w,
                bool trailing_comma) {
  std::fprintf(f,
               "  \"%s\": {\n"
               "    \"window_ms\": %llu, \"ops\": %llu, "
               "\"ops_per_sec\": %.0f,\n"
               "    \"mean_us\": %.2f, \"p99_us\": %.2f, \"max_us\": %.2f",
               name, (unsigned long long)w.window_ms,
               (unsigned long long)w.ops, w.OpsPerSec(), w.mean_us, w.p99_us,
               w.max_us);
  if (w.rebuild_ran) {
    std::fprintf(f,
                 ",\n    \"rebuild_completed\": %s, \"rebuild_ms\": %llu, "
                 "\"rebuild_transactions\": %llu,\n"
                 "    \"progress_records\": %llu, \"throttle_pauses\": %llu, "
                 "\"throttle_pause_ms\": %llu",
                 w.rebuild_completed ? "true" : "false",
                 (unsigned long long)w.rebuild_ms,
                 (unsigned long long)w.rebuild_transactions,
                 (unsigned long long)w.progress_records,
                 (unsigned long long)w.throttle_pauses,
                 (unsigned long long)w.throttle_pause_ms);
  }
  std::fprintf(f, "\n  }%s\n", trailing_comma ? "," : "");
}

int Main(int argc, char** argv) {
  uint64_t n = 200000;
  uint32_t pct = 10;
  std::string json_path = "BENCH_resume_throttle.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--keys" && i + 1 < argc) n = std::strtoull(argv[++i], nullptr, 10);
    if (arg == "--pct" && i + 1 < argc) pct = static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
  }

  std::printf("resume-throttle bench: %llu keys, degradation knob %u%%\n\n",
              (unsigned long long)n, pct);

  // Baseline first: its mean is the throttle's explicit baseline, and the
  // unthrottled rebuild's duration sizes the baseline window comparison.
  Window baseline = RunWindow(n, 0, 0, 0, 1000);
  PrintWindow("baseline", baseline);
  const uint64_t baseline_ns =
      static_cast<uint64_t>(baseline.mean_us * 1000.0);

  Window unthrottled = RunWindow(n, 1, 0, 0, 0);
  PrintWindow("unthrottled", unthrottled);

  Window throttled = RunWindow(n, 1, pct, baseline_ns, 0);
  PrintWindow("throttled", throttled);

  const double degradation_pct =
      baseline.p99_us == 0
          ? 0.0
          : 100.0 * (throttled.p99_us - baseline.p99_us) / baseline.p99_us;
  const bool within_budget = degradation_pct <= static_cast<double>(pct);
  std::printf("\nforeground p99: baseline %.1f us -> throttled %.1f us "
              "(%+.1f%%, budget %u%%) — %s\n",
              baseline.p99_us, throttled.p99_us, degradation_pct, pct,
              within_budget ? "WITHIN BUDGET" : "OVER BUDGET");

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"resume_throttle\", \"keys\": %llu, "
               "\"max_foreground_degradation_pct\": %u,\n"
               "  \"throttle_baseline_ns\": %llu,\n",
               (unsigned long long)n, pct,
               (unsigned long long)baseline_ns);
  JsonWindow(f, "baseline", baseline, true);
  JsonWindow(f, "rebuild_unthrottled", unthrottled, true);
  JsonWindow(f, "rebuild_throttled", throttled, true);
  std::fprintf(f,
               "  \"p99_degradation_pct\": %.2f,\n"
               "  \"within_budget\": %s\n}\n",
               degradation_pct, within_budget ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return within_budget && throttled.rebuild_completed ? 0 : 1;
}

}  // namespace
}  // namespace oir::bench

int main(int argc, char** argv) { return oir::bench::Main(argc, argv); }
