// Reproduction of Table 1 (Section 6.4): log space and CPU time of the
// online rebuild as a function of ntasize, for a small-key and a wide-key
// index.
//
//   Lratio = log space at ntasize 1 / log space at the given ntasize
//   Cratio = CPU time  at ntasize 1 / CPU time  at the given ntasize
//
// Paper (2 KB pages, ~50% utilized index, fillfactor 100, cold cache):
//   key 4 B  (avg non-leaf row 10 B): ntasize 32 -> L 7.3, C 2.4
//                                     ntasize 64 -> L 8.0, C 2.4
//   key 40 B (avg non-leaf row 20 B): ntasize 32 -> L 4.9, C 3.7
//                                     ntasize 64 -> L 5.4, C 4.0
//
// The absolute numbers depend on the host and the exact per-record log
// overhead; the shape to check is (a) large Lratios that are bigger for
// small keys, (b) Cratios well above 1 that flatten out past ~32.
//
// The --ablate flag additionally reports the log_full_keys ablation (key
// bytes logged instead of position-only keycopy records).

#include <cstring>

#include "bench/bench_common.h"
#include "core/rebuild.h"

namespace oir::bench {
namespace {

struct Row {
  int key_size;
  uint32_t ntasize;
  uint64_t log_bytes;
  uint64_t cpu_ns;
  uint64_t old_pages;
  uint64_t new_pages;
  double nonleaf_row;
};

Row RunOne(int key_size, uint64_t num_keys, uint32_t ntasize,
           bool log_full_keys) {
  auto db = OpenDb();
  BuildHalfUtilizedIndex(db.get(), num_keys, key_size);
  TreeStats before;
  OIR_CHECK(db->tree()->Validate(&before).ok());
  ColdCache(db.get());

  RebuildOptions opts;
  opts.ntasize = ntasize;
  opts.xactsize = std::max<uint32_t>(256, ntasize);
  opts.fillfactor = 100;
  opts.io_pages = 8;  // 16 KB buffers over 2 KB pages (Section 6.4 setup)
  opts.log_full_keys = log_full_keys;
  RebuildResult res;
  Status s = db->index()->RebuildOnline(opts, &res);
  OIR_CHECK(s.ok());

  TreeStats after;
  OIR_CHECK(db->tree()->Validate(&after).ok());
  OIR_CHECK(after.num_keys == before.num_keys);

  Row row;
  row.key_size = key_size;
  row.ntasize = ntasize;
  row.log_bytes = res.log_bytes;
  row.cpu_ns = res.cpu_ns;
  row.old_pages = res.old_leaf_pages;
  row.new_pages = res.new_leaf_pages;
  row.nonleaf_row = after.AvgNonLeafRowBytes();
  return row;
}

int Main(int argc, char** argv) {
  bool ablate = false;
  uint64_t num_keys_small = 120000;  // ~2850 half-full 2 KB leaf pages
  uint64_t num_keys_wide = 60000;    // ~3150 half-full leaf pages (52 B rows)
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ablate") == 0) ablate = true;
    if (std::strcmp(argv[i], "--quick") == 0) {
      num_keys_small = 30000;
      num_keys_wide = 15000;
    }
  }

  std::printf("Table 1 reproduction: Lratio / Cratio vs ntasize\n");
  std::printf("(2 KB pages, ~50%% utilized index, fillfactor 100, cold "
              "cache, 16 KB I/O)\n\n");
  std::printf("%-8s %-12s %-8s %12s %10s %8s %8s %8s\n", "keysz",
              "avg-nl-row", "ntasize", "log-bytes", "cpu-ms", "Lratio",
              "Cratio", "pages");

  const uint32_t kNtasizes[] = {1, 2, 4, 8, 16, 32, 64};
  for (int key_size : {4, 40}) {
    uint64_t num_keys = key_size == 4 ? num_keys_small : num_keys_wide;
    uint64_t base_log = 0;
    uint64_t base_cpu = 0;
    for (uint32_t nta : kNtasizes) {
      Row r = RunOne(key_size, num_keys, nta, /*log_full_keys=*/false);
      if (nta == 1) {
        base_log = r.log_bytes;
        base_cpu = r.cpu_ns;
      }
      std::printf("%-8d %-12.1f %-8u %12llu %10.1f %8.2f %8.2f %8llu\n",
                  key_size, r.nonleaf_row, nta,
                  (unsigned long long)r.log_bytes, r.cpu_ns / 1e6,
                  base_log == 0 ? 0.0
                                : static_cast<double>(base_log) / r.log_bytes,
                  base_cpu == 0 ? 0.0
                                : static_cast<double>(base_cpu) / r.cpu_ns,
                  (unsigned long long)r.old_pages);
    }
    std::printf("\n");
  }

  std::printf("Paper's Table 1 for comparison:\n");
  std::printf("  key  4, nta 32: Lratio 7.3, Cratio 2.4\n");
  std::printf("  key  4, nta 64: Lratio 8.0, Cratio 2.4\n");
  std::printf("  key 40, nta 32: Lratio 4.9, Cratio 3.7\n");
  std::printf("  key 40, nta 64: Lratio 5.4, Cratio 4.0\n\n");

  if (ablate) {
    std::printf("Ablation: minimal (position-only keycopy) logging vs "
                "logging full keys (Section 3 design choice)\n");
    std::printf("%-8s %-8s %16s %16s %8s\n", "keysz", "ntasize",
                "keycopy-bytes", "fullkey-bytes", "ratio");
    for (int key_size : {4, 40}) {
      uint64_t num_keys = (key_size == 4 ? num_keys_small : num_keys_wide);
      for (uint32_t nta : {1u, 32u}) {
        Row a = RunOne(key_size, num_keys, nta, false);
        Row b = RunOne(key_size, num_keys, nta, true);
        std::printf("%-8d %-8u %16llu %16llu %8.2f\n", key_size, nta,
                    (unsigned long long)a.log_bytes,
                    (unsigned long long)b.log_bytes,
                    static_cast<double>(b.log_bytes) / a.log_bytes);
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace oir::bench

int main(int argc, char** argv) { return oir::bench::Main(argc, argv); }
