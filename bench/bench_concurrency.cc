// Section 6.2: the online rebuild restricts access only to the affected
// pages, so OLTP continues while it runs — unlike the drop-and-recreate
// baseline, which takes an exclusive table lock.
//
// Method: reader and writer threads run an OLTP mix continuously. For each
// scenario we measure throughput strictly INSIDE the rebuild window:
//   baseline  — a same-length window with no rebuild;
//   online    — while the paper's rebuild runs;
//   offline   — while the drop-and-recreate baseline runs.
// Also reported: per-operation p99 latency inside the window (the offline
// case shows rebuild-length stalls) and traversals blocked on SPLIT/SHRINK
// bits.

#include <atomic>
#include <thread>

#include "bench/bench_common.h"
#include "core/rebuild.h"
#include "util/clock.h"
#include "util/counters.h"
#include "util/histogram.h"

namespace oir::bench {
namespace {

struct WindowResult {
  uint64_t ops_in_window = 0;
  uint64_t window_ms = 0;
  uint64_t blocked = 0;
  double p99_ms = 0;
  double max_ms = 0;
};

WindowResult RunScenario(uint64_t n, int oltp_threads, int mode,
                         uint64_t baseline_window_ms) {
  auto db = OpenDb();
  BuildHalfUtilizedIndex(db.get(), n, 12);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ops{0};
  Histogram latency;

  std::vector<std::thread> threads;
  for (int t = 0; t < oltp_threads; ++t) {
    threads.emplace_back([&, t] {
      Random rnd(t + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t t0 = NowNanos();
        auto txn = db->BeginTxn();
        if (rnd.OneIn(2)) {
          uint64_t id = 2 * rnd.Uniform(n);
          bool found;
          OIR_CHECK(db->index()
                        ->Lookup(txn.get(), BenchKey(id, 12), id, &found)
                        .ok());
        } else {
          uint64_t id = 1 + 2 * rnd.Uniform(n);
          Status s = db->index()->Insert(txn.get(), BenchKey(id, 12), id);
          if (s.ok()) {
            OIR_CHECK(
                db->index()->Delete(txn.get(), BenchKey(id, 12), id).ok());
          }
        }
        OIR_CHECK(db->Commit(txn.get()).ok());
        latency.Add((NowNanos() - t0) / 1000);  // microseconds
        ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Warm up the OLTP threads.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  latency.Clear();
  auto counters0 = GlobalCounters::Get().Snapshot();
  uint64_t ops0 = ops.load();
  uint64_t t0 = NowNanos();

  if (mode == 1) {
    RebuildOptions opts;
    RebuildResult res;
    Status rs = db->index()->RebuildOnline(opts, &res);
    if (!rs.ok()) {
      std::fprintf(stderr, "online rebuild failed: %s\n",
                   rs.ToString().c_str());
    }
    OIR_CHECK(rs.ok());
  } else if (mode == 2) {
    RebuildResult res;
    Status rs = db->index()->RebuildOffline(&res);
    if (!rs.ok()) {
      std::fprintf(stderr, "offline rebuild failed: %s\n",
                   rs.ToString().c_str());
    }
    OIR_CHECK(rs.ok());
  } else {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(baseline_window_ms));
  }

  WindowResult r;
  r.window_ms = (NowNanos() - t0) / 1000000;
  r.ops_in_window = ops.load() - ops0;
  r.blocked =
      (GlobalCounters::Get().Snapshot() - counters0).blocked_traversals;
  r.p99_ms = latency.Percentile(99) / 1000.0;
  r.max_ms = latency.Max() / 1000.0;
  stop.store(true);
  for (auto& t : threads) t.join();
  return r;
}

int Main(int argc, char** argv) {
  uint64_t n = 400000;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") n = 100000;
  }
  const int kThreads = 4;
  std::printf("OLTP throughput inside the rebuild window (Section 6.2)\n");
  std::printf("(%d OLTP threads, %llu keys, ~50%% utilized index)\n\n",
              kThreads, (unsigned long long)n);
  std::printf("%-10s %10s %10s %12s %10s %10s %12s\n", "scenario",
              "window-ms", "ops", "ops/sec", "p99-ms", "max-ms",
              "blocked-trav");

  // Run online first to learn the window length for the baseline.
  WindowResult online = RunScenario(n, kThreads, 1, 0);
  WindowResult baseline =
      RunScenario(n, kThreads, 0, std::max<uint64_t>(online.window_ms, 50));
  WindowResult offline = RunScenario(n, kThreads, 2, 0);

  auto print = [&](const char* name, const WindowResult& r) {
    std::printf("%-10s %10llu %10llu %12.0f %10.2f %10.2f %12llu\n", name,
                (unsigned long long)r.window_ms,
                (unsigned long long)r.ops_in_window,
                r.window_ms == 0 ? 0.0
                                 : r.ops_in_window * 1000.0 / r.window_ms,
                r.p99_ms, r.max_ms, (unsigned long long)r.blocked);
  };
  print("baseline", baseline);
  print("online", online);
  print("offline", offline);

  double online_frac =
      baseline.ops_in_window == 0
          ? 0
          : (online.ops_in_window * 1000.0 / online.window_ms) /
                (baseline.ops_in_window * 1000.0 / baseline.window_ms);
  std::printf("\nonline rebuild sustains %.0f%% of baseline throughput; "
              "offline stalls every\noperation for the whole rebuild "
              "(max latency ~= rebuild duration).\n",
              online_frac * 100);
  return 0;
}

}  // namespace
}  // namespace oir::bench

int main(int argc, char** argv) { return oir::bench::Main(argc, argv); }
