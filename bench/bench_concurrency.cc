// Section 6.2: the online rebuild restricts access only to the affected
// pages, so OLTP continues while it runs — unlike the drop-and-recreate
// baseline, which takes an exclusive table lock.
//
// Method: reader and writer threads run an OLTP mix continuously. For each
// scenario we measure throughput strictly INSIDE the rebuild window:
//   baseline  — a same-length window with no rebuild;
//   online    — while the paper's rebuild runs;
//   offline   — while the drop-and-recreate baseline runs.
// Also reported: per-operation p99 latency inside the window (the offline
// case shows rebuild-length stalls) and traversals blocked on SPLIT/SHRINK
// bits.
//
// The I/O-path sweep then re-runs the online scenario while varying one
// knob at a time — buffer-pool shard count, WAL group commit, rebuild
// read-ahead — and records every window in BENCH_io_path.json together
// with the pool and WAL counters captured inside it.

#include <atomic>
#include <cstdio>
#include <thread>

#include "bench/bench_common.h"
#include "core/rebuild.h"
#include "obs/waitstate.h"
#include "util/clock.h"
#include "util/counters.h"
#include "util/histogram.h"

namespace oir::bench {
namespace {

// One knob configuration for a scenario. The WAL is the bench default
// (in-memory, synchronous flush) unless file_wal or force_group_commit
// says otherwise.
struct Config {
  std::string name;
  size_t shards = 0;        // DbOptions::buffer_pool_shards; 0 = auto
  bool prefetch = true;     // RebuildOptions::prefetch
  bool file_wal = false;    // back the WAL with a file (real fsyncs)
  bool group_commit = true; // file WAL: batch commits on the flusher thread
  bool force_group_commit = false;  // in-memory WAL: force the flusher on

  const char* WalLabel() const {
    if (file_wal) return group_commit ? "file-group" : "file-sync";
    return force_group_commit ? "mem-group" : "mem-sync";
  }

  // Whether commits ride the grouped ack protocol in this configuration;
  // mean_group_size is only meaningful (and only reported) when they do.
  bool GroupCommitOn() const {
    return file_wal ? group_commit : force_group_commit;
  }
};

struct WindowResult {
  uint64_t ops_in_window = 0;
  uint64_t window_ms = 0;
  uint64_t blocked = 0;
  double p99_ms = 0;
  double max_ms = 0;
  uint64_t shards = 0;  // effective shard count of the pool
  CounterSnapshot counters;  // delta inside the window

  double OpsPerSec() const {
    return window_ms == 0 ? 0.0 : ops_in_window * 1000.0 / window_ms;
  }
};

constexpr char kFileWalPath[] = "/tmp/oir_bench_concurrency_wal.log";

WindowResult RunScenario(const Config& cfg, uint64_t n, int oltp_threads,
                         int mode, uint64_t baseline_window_ms) {
  DbOptions dopts;
  dopts.buffer_pool_pages = 1 << 15;
  dopts.buffer_pool_shards = cfg.shards;
  if (cfg.file_wal) {
    dopts.log_path = kFileWalPath;
    dopts.wal_group_commit = cfg.group_commit;
  }
  auto db = OpenDbOpts(dopts);
  if (cfg.force_group_commit) db->log_manager()->SetGroupCommit(true);
  BuildHalfUtilizedIndex(db.get(), n, 12);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ops{0};
  Histogram latency;

  std::vector<std::thread> threads;
  for (int t = 0; t < oltp_threads; ++t) {
    threads.emplace_back([&, t] {
      Random rnd(t + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t t0 = NowNanos();
        auto txn = db->BeginTxn();
        if (rnd.OneIn(2)) {
          uint64_t id = 2 * rnd.Uniform(n);
          bool found;
          OIR_CHECK(db->index()
                        ->Lookup(txn.get(), BenchKey(id, 12), id, &found)
                        .ok());
        } else {
          uint64_t id = 1 + 2 * rnd.Uniform(n);
          Status s = db->index()->Insert(txn.get(), BenchKey(id, 12), id);
          if (s.ok()) {
            OIR_CHECK(
                db->index()->Delete(txn.get(), BenchKey(id, 12), id).ok());
          }
        }
        OIR_CHECK(db->Commit(txn.get()).ok());
        latency.Add((NowNanos() - t0) / 1000);  // microseconds
        ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Warm up the OLTP threads.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  latency.Clear();
  // Align the wait profile (--waitprof) with the measured window.
  if (obs::WaitProfiler::enabled()) obs::WaitProfiler::Reset();
  auto counters0 = GlobalCounters::Get().Snapshot();
  uint64_t ops0 = ops.load();
  uint64_t t0 = NowNanos();

  if (mode == 1) {
    RebuildOptions opts;
    opts.prefetch = cfg.prefetch;
    RebuildResult res;
    Status rs = db->index()->RebuildOnline(opts, &res);
    if (!rs.ok()) {
      std::fprintf(stderr, "online rebuild failed: %s\n",
                   rs.ToString().c_str());
    }
    OIR_CHECK(rs.ok());
  } else if (mode == 2) {
    RebuildResult res;
    Status rs = db->index()->RebuildOffline(&res);
    if (!rs.ok()) {
      std::fprintf(stderr, "offline rebuild failed: %s\n",
                   rs.ToString().c_str());
    }
    OIR_CHECK(rs.ok());
  } else {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(baseline_window_ms));
  }

  WindowResult r;
  r.window_ms = (NowNanos() - t0) / 1000000;
  r.ops_in_window = ops.load() - ops0;
  r.counters = GlobalCounters::Get().Snapshot() - counters0;
  r.blocked = r.counters.blocked_traversals;
  r.p99_ms = latency.Percentile(99) / 1000.0;
  r.max_ms = latency.Max() / 1000.0;
  r.shards = db->buffer_manager()->num_shards();
  stop.store(true);
  for (auto& t : threads) t.join();
  if (cfg.file_wal) {
    db.reset();  // close the log fd before unlinking
    std::remove(kFileWalPath);
    std::remove((std::string(kFileWalPath) + ".master").c_str());
  }
  return r;
}

// --waitprof: per-operation wait-state breakdown for the window that just
// ran. Coverage is the attributed share of op wall-clock — the paper-grade
// claim is >= 95% (the state machine closes every segment, so the residue
// is only clock-read granularity).
void PrintWaitProfile(const char* label) {
  auto snap = obs::WaitProfiler::TakeSnapshot();
  if (snap.empty()) return;
  std::printf("\nwait profile (%s):\n", label);
  std::printf("  %-8s %10s %10s %8s %7s %7s %7s %7s %7s %9s\n", "op",
              "count", "mean-us", "run%", "latch%", "lock%", "wal%", "io%",
              "thr%", "coverage%");
  for (const auto& b : snap) {
    auto pct = [&b](obs::WaitState s) {
      return b.wall_ns == 0
                 ? 0.0
                 : 100.0 * b.state_ns[static_cast<size_t>(s)] / b.wall_ns;
    };
    uint64_t attributed = 0;
    for (size_t i = 0; i < obs::kNumWaitStates; ++i) {
      attributed += b.state_ns[i];
    }
    std::printf(
        "  %-8s %10llu %10.1f %8.1f %7.1f %7.1f %7.1f %7.1f %7.1f %9.1f\n",
        obs::OpTypeName(b.type), (unsigned long long)b.count,
        b.count == 0 ? 0.0 : b.wall_ns / 1000.0 / b.count,
        pct(obs::WaitState::kRunning), pct(obs::WaitState::kLatchWait),
        pct(obs::WaitState::kLockWait), pct(obs::WaitState::kWalCommitWait),
        pct(obs::WaitState::kIoWait), pct(obs::WaitState::kThrottled),
        b.wall_ns == 0 ? 0.0 : 100.0 * attributed / b.wall_ns);
  }
}

void PrintRow(const char* name, const WindowResult& r) {
  std::printf("%-14s %10llu %10llu %12.0f %10.2f %10.2f %12llu\n", name,
              (unsigned long long)r.window_ms,
              (unsigned long long)r.ops_in_window, r.OpsPerSec(), r.p99_ms,
              r.max_ms, (unsigned long long)r.blocked);
}

void WriteJsonScenario(std::FILE* f, const char* scenario_mode,
                       const Config& cfg, const WindowResult& r,
                       bool last) {
  const CounterSnapshot& d = r.counters;
  std::fprintf(
      f,
      "    {\"name\": \"%s\", \"mode\": \"%s\", \"shards\": %llu, "
      "\"prefetch\": %s, \"wal\": \"%s\",\n"
      "     \"window_ms\": %llu, \"ops\": %llu, \"ops_per_sec\": %.0f, "
      "\"p99_ms\": %.2f, \"max_ms\": %.2f, \"blocked_traversals\": %llu,\n"
      "     \"pool_hits\": %llu, \"pool_misses\": %llu, "
      "\"pool_evictions\": %llu, \"pool_writebacks\": %llu, "
      "\"pool_prefetched\": %llu,\n"
      "     \"log_flush_calls\": %llu, \"log_fsyncs\": %llu",
      cfg.name.c_str(), scenario_mode, (unsigned long long)r.shards,
      cfg.prefetch ? "true" : "false", cfg.WalLabel(),
      (unsigned long long)r.window_ms, (unsigned long long)r.ops_in_window,
      r.OpsPerSec(), r.p99_ms, r.max_ms, (unsigned long long)r.blocked,
      (unsigned long long)d.pool_hits, (unsigned long long)d.pool_misses,
      (unsigned long long)d.pool_evictions,
      (unsigned long long)d.pool_writebacks,
      (unsigned long long)d.pool_prefetched,
      (unsigned long long)d.log_flush_calls,
      (unsigned long long)d.log_fsyncs);
  // mean_group_size only exists when commits actually rode the grouped
  // ack protocol (null otherwise, never a fabricated flushes/fsyncs guess).
  if (cfg.GroupCommitOn() && d.log_groups_acked > 0) {
    std::fprintf(f,
                 ", \"commits_acked\": %llu, \"groups_acked\": %llu, "
                 "\"mean_group_size\": %.2f",
                 (unsigned long long)d.log_commits_acked,
                 (unsigned long long)d.log_groups_acked, MeanGroupSize(d));
  } else {
    std::fprintf(f, ", \"mean_group_size\": null");
  }
  std::fprintf(f, "}%s\n", last ? "" : ",");
}

int Main(int argc, char** argv) {
  uint64_t n = 400000;
  int kThreads = 4;
  std::string json_path = "BENCH_io_path.json";
  bool sweep = true;
  bool waitprof = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") n = 100000;
    if (arg == "--no-sweep") sweep = false;
    if (arg == "--threads" && i + 1 < argc) kThreads = std::atoi(argv[i + 1]);
    if (arg == "--json" && i + 1 < argc) json_path = argv[i + 1];
    if (arg == "--waitprof") waitprof = true;
  }
  if (waitprof) obs::WaitProfiler::SetEnabled(true);
  std::printf("OLTP throughput inside the rebuild window (Section 6.2)\n");
  std::printf("(%d OLTP threads, %llu keys, ~50%% utilized index)\n\n",
              kThreads, (unsigned long long)n);
  std::printf("%-14s %10s %10s %12s %10s %10s %12s\n", "scenario",
              "window-ms", "ops", "ops/sec", "p99-ms", "max-ms",
              "blocked-trav");

  Config def;
  def.name = "default";

  // Run online first to learn the window length for the baseline.
  WindowResult online = RunScenario(def, n, kThreads, 1, 0);
  if (waitprof) PrintWaitProfile("online-rebuild window");
  WindowResult baseline = RunScenario(
      def, n, kThreads, 0, std::max<uint64_t>(online.window_ms, 50));
  if (waitprof) PrintWaitProfile("baseline window");
  WindowResult offline = RunScenario(def, n, kThreads, 2, 0);
  if (waitprof) PrintWaitProfile("offline-rebuild window");

  PrintRow("baseline", baseline);
  PrintRow("online", online);
  PrintRow("offline", offline);
  std::printf("\ncounters inside the online window:\n");
  PrintIoPathCounters(online.counters);

  double online_frac =
      baseline.ops_in_window == 0
          ? 0
          : online.OpsPerSec() / baseline.OpsPerSec();
  std::printf("\nonline rebuild sustains %.0f%% of baseline throughput; "
              "offline stalls every\noperation for the whole rebuild "
              "(max latency ~= rebuild duration).\n",
              online_frac * 100);

  std::vector<std::pair<Config, WindowResult>> sweep_results;
  if (sweep) {
    // One knob at a time, relative to the default (shards auto, prefetch
    // on, in-memory WAL with synchronous flush). The file-WAL pair is
    // compared within itself: real fsyncs, group commit on vs off.
    std::vector<Config> configs;
    for (size_t s : {1u, 2u, 4u}) {
      Config c;
      c.name = "shards-" + std::to_string(s);
      c.shards = s;
      configs.push_back(c);
    }
    {
      Config c;
      c.name = "prefetch-off";
      c.prefetch = false;
      configs.push_back(c);
    }
    {
      Config c;
      c.name = "groupcommit-mem";
      c.force_group_commit = true;
      configs.push_back(c);
    }
    {
      Config c;
      c.name = "wal-file-group";
      c.file_wal = true;
      c.group_commit = true;
      configs.push_back(c);
    }
    {
      Config c;
      c.name = "wal-file-sync";
      c.file_wal = true;
      c.group_commit = false;
      configs.push_back(c);
    }

    std::printf("\nI/O-path sweep (online rebuild window, one knob at a "
                "time):\n");
    std::printf("%-14s %10s %10s %12s %10s %10s %12s\n", "config",
                "window-ms", "ops", "ops/sec", "p99-ms", "max-ms",
                "mean-group");
    for (const Config& cfg : configs) {
      WindowResult r = RunScenario(cfg, n, kThreads, 1, 0);
      char group[32];
      if (cfg.GroupCommitOn() && r.counters.log_groups_acked > 0) {
        std::snprintf(group, sizeof(group), "%.1f",
                      MeanGroupSize(r.counters));
      } else {
        std::snprintf(group, sizeof(group), "-");
      }
      std::printf("%-14s %10llu %10llu %12.0f %10.2f %10.2f %12s\n",
                  cfg.name.c_str(), (unsigned long long)r.window_ms,
                  (unsigned long long)r.ops_in_window, r.OpsPerSec(),
                  r.p99_ms, r.max_ms, group);
      sweep_results.emplace_back(cfg, r);
    }
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"io_path\",\n");
  std::fprintf(f, "  \"oltp_threads\": %d,\n  \"keys\": %llu,\n", kThreads,
               (unsigned long long)n);
  std::fprintf(f, "  \"online_ops_per_sec\": %.0f,\n", online.OpsPerSec());
  std::fprintf(f, "  \"baseline_ops_per_sec\": %.0f,\n",
               baseline.OpsPerSec());
  std::fprintf(f, "  \"scenarios\": [\n");
  Config base_cfg = def;
  base_cfg.name = "baseline";
  WriteJsonScenario(f, "no-rebuild", base_cfg, baseline, false);
  Config online_cfg = def;
  online_cfg.name = "online";
  WriteJsonScenario(f, "online-rebuild", online_cfg, online, false);
  Config offline_cfg = def;
  offline_cfg.name = "offline";
  WriteJsonScenario(f, "offline-rebuild", offline_cfg, offline,
                    sweep_results.empty());
  for (size_t i = 0; i < sweep_results.size(); ++i) {
    WriteJsonScenario(f, "online-rebuild", sweep_results[i].first,
                      sweep_results[i].second,
                      i + 1 == sweep_results.size());
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace oir::bench

int main(int argc, char** argv) { return oir::bench::Main(argc, argv); }
