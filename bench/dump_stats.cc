// Smoke check of the stats export surface: opens a database, loads keys,
// runs a traced online rebuild with progress callbacks, and asserts that
// Db::DumpStatsJson() and the chrome://tracing dump are valid JSON.
// Exits nonzero on any failure, so it doubles as a ctest entry. Pass a
// file path argument to also write the chrome trace there.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/db.h"
#include "core/index.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "dump_stats: FAILED: %s\n", what);
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oir;

  DbOptions opts;
  opts.page_size = 2048;
  opts.buffer_pool_pages = 1 << 14;
  std::unique_ptr<Db> db;
  Check(Db::Open(opts, &db).ok(), "Db::Open");

  obs::MetricRegistry::SetTimersEnabled(true);
  obs::TraceBuffer::Get().SetEnabled(true);
  obs::TraceBuffer::Get().Clear();

  auto txn = db->BeginTxn();
  char key[32];
  for (uint64_t i = 0; i < 5000; ++i) {
    std::snprintf(key, sizeof(key), "%012llu",
                  static_cast<unsigned long long>(i));
    Check(db->index()->Insert(txn.get(), key, i).ok(), "Insert");
  }
  Check(db->Commit(txn.get()).ok(), "Commit");

  uint64_t callbacks = 0;
  RebuildOptions ropts;
  ropts.on_progress = [&callbacks](const obs::RebuildProgress&) {
    ++callbacks;
  };
  RebuildResult res;
  Check(db->index()->RebuildOnline(ropts, &res).ok(), "RebuildOnline");
  Check(res.top_actions > 0, "rebuild did work");
  Check(callbacks > 0, "on_progress fired");

  Lsn horizon = 0;
  Check(db->Checkpoint(&horizon).ok(), "Checkpoint");

  const std::string stats = db->DumpStatsJson();
  Check(obs::JsonIsValid(stats), "DumpStatsJson is valid JSON");
  for (const char* section : {"\"counters\"", "\"pool\"", "\"wal\"",
                              "\"lock\"", "\"rebuild\"", "\"timers\""}) {
    Check(stats.find(section) != std::string::npos, section);
  }
  Check(stats.find("\"keys_moved\"") != std::string::npos,
        "rebuild report spliced into stats");

  const std::string registry = obs::MetricRegistry::Get().ToJson();
  Check(obs::JsonIsValid(registry), "MetricRegistry::ToJson is valid JSON");

  const std::string trace = obs::TraceBuffer::Get().DumpChromeTracing();
  Check(obs::JsonIsValid(trace), "chrome trace is valid JSON");
  Check(trace.find("top_action") != std::string::npos,
        "trace has top-action slices");
  Check(trace.find("propagate_phase") != std::string::npos,
        "trace has propagation-phase slices");
  Check(trace.find("checkpoint") != std::string::npos,
        "trace has the checkpoint event");

  if (argc > 1) {
    FILE* f = std::fopen(argv[1], "w");
    Check(f != nullptr, "open trace output file");
    std::fwrite(trace.data(), 1, trace.size(), f);
    std::fclose(f);
    std::printf("wrote chrome trace to %s (load at chrome://tracing)\n",
                argv[1]);
  }

  std::printf("dump_stats: OK (%llu top actions, %llu callbacks, "
              "%zu-byte stats doc, %zu-byte trace)\n",
              static_cast<unsigned long long>(res.top_actions),
              static_cast<unsigned long long>(callbacks),
              stats.size(), trace.size());
  std::printf("%s\n", db->DumpStatsText().c_str());
  return 0;
}
