// Micro-benchmarks of the substrate operations (google-benchmark): point
// inserts/lookups/deletes, cursor throughput, log appends, latch and lock
// manager round trips, slotted page operations. These set the cost context
// for the macro results (e.g., how much of the rebuild's CPU is latch or
// lock-manager traffic).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "btree/cursor.h"
#include "storage/slotted_page.h"
#include "sync/lock_manager.h"
#include "wal/log_manager.h"

namespace oir::bench {
namespace {

void BM_BTreeInsertSequential(benchmark::State& state) {
  auto db = OpenDb();
  auto txn = db->BeginTxn();
  uint64_t i = 0;
  for (auto _ : state) {
    Status s = db->index()->Insert(txn.get(), NumKey(i, 12), i);
    OIR_CHECK(s.ok());
    ++i;
  }
  OIR_CHECK(db->Commit(txn.get()).ok());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeInsertSequential);

void BM_BTreeInsertRandom(benchmark::State& state) {
  auto db = OpenDb();
  auto txn = db->BeginTxn();
  Random rnd(1);
  for (auto _ : state) {
    uint64_t i = rnd.Next() >> 16;
    Status s = db->index()->Insert(txn.get(), NumKey(i, 16), i);
    OIR_CHECK(s.ok() || s.IsInvalidArgument());
  }
  OIR_CHECK(db->Commit(txn.get()).ok());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeInsertRandom);

void BM_BTreeLookup(benchmark::State& state) {
  auto db = OpenDb();
  constexpr uint64_t kN = 100000;
  {
    auto txn = db->BeginTxn();
    for (uint64_t i = 0; i < kN; ++i) {
      OIR_CHECK(db->index()->Insert(txn.get(), NumKey(i, 12), i).ok());
    }
    OIR_CHECK(db->Commit(txn.get()).ok());
  }
  auto txn = db->BeginTxn();
  Random rnd(2);
  for (auto _ : state) {
    uint64_t i = rnd.Uniform(kN);
    bool found;
    OIR_CHECK(db->index()->Lookup(txn.get(), NumKey(i, 12), i, &found).ok());
    benchmark::DoNotOptimize(found);
  }
  OIR_CHECK(db->Commit(txn.get()).ok());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLookup);

void BM_CursorScan(benchmark::State& state) {
  auto db = OpenDb();
  constexpr uint64_t kN = 100000;
  {
    auto txn = db->BeginTxn();
    for (uint64_t i = 0; i < kN; ++i) {
      OIR_CHECK(db->index()->Insert(txn.get(), NumKey(i, 12), i).ok());
    }
    OIR_CHECK(db->Commit(txn.get()).ok());
  }
  auto txn = db->BeginTxn();
  Cursor cur(db->tree(), OpCtx{txn->id(), txn->ctx()});
  OIR_CHECK(cur.SeekToFirst().ok());
  uint64_t rows = 0;
  for (auto _ : state) {
    if (!cur.Valid()) {
      OIR_CHECK(cur.SeekToFirst().ok());
    }
    benchmark::DoNotOptimize(cur.rid());
    OIR_CHECK(cur.Next().ok());
    ++rows;
  }
  OIR_CHECK(db->Commit(txn.get()).ok());
  state.SetItemsProcessed(rows);
}
BENCHMARK(BM_CursorScan);

void BM_LogAppend(benchmark::State& state) {
  LogManager log;
  TxnContext ctx{1, kInvalidLsn};
  std::string row(static_cast<size_t>(state.range(0)), 'r');
  for (auto _ : state) {
    LogRecord rec;
    rec.type = LogType::kInsert;
    rec.page_id = 7;
    rec.pos = 0;
    rec.row = row;
    benchmark::DoNotOptimize(log.Append(&rec, &ctx));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          (row.size() + 54));
}
BENCHMARK(BM_LogAppend)->Arg(12)->Arg(48)->Arg(256);

void BM_LatchRoundTrip(benchmark::State& state) {
  Latch latch;
  for (auto _ : state) {
    latch.LockS();
    latch.UnlockS();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatchRoundTrip);

void BM_AddressLockRoundTrip(benchmark::State& state) {
  LockManager lm;
  for (auto _ : state) {
    OIR_CHECK(lm.Lock(1, AddressLockKey(42), LockMode::kX, true).ok());
    lm.Unlock(1, AddressLockKey(42));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AddressLockRoundTrip);

void BM_SlottedPageInsertDelete(benchmark::State& state) {
  std::vector<char> buf(kDefaultPageSize, 0);
  SlottedPage page(buf.data(), kDefaultPageSize);
  page.Init(1, kLeafLevel);
  std::string row(24, 'x');
  for (auto _ : state) {
    OIR_CHECK(page.InsertAt(page.nslots() / 2, Slice(row)));
    page.DeleteAt(page.nslots() / 2);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlottedPageInsertDelete);

}  // namespace
}  // namespace oir::bench

BENCHMARK_MAIN();
