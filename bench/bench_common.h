#ifndef OIR_BENCH_BENCH_COMMON_H_
#define OIR_BENCH_BENCH_COMMON_H_

// Shared workload builders for the benchmark harness.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/db.h"
#include "core/index.h"
#include "util/counters.h"
#include "util/logging.h"
#include "util/random.h"

namespace oir::bench {

inline std::string NumKey(uint64_t n, int width) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%0*llu", width,
                static_cast<unsigned long long>(n));
  return std::string(buf);
}

// Key generator: exactly `key_size` bytes, lexicographically ascending in
// n. Small keys are big-endian binary counters; wide keys use a 12-digit
// decimal prefix plus padding, so suffix compression produces short
// separators (as ASE's did).
inline std::string BenchKey(uint64_t n, int key_size) {
  OIR_CHECK(key_size >= 1);
  if (key_size <= 8) {
    std::string out(key_size, '\0');
    for (int i = key_size - 1; i >= 0; --i) {
      out[i] = static_cast<char>(n & 0xff);
      n >>= 8;
    }
    OIR_CHECK(n == 0);  // the counter must fit the key width
    return out;
  }
  return NumKey(n, 12) + std::string(key_size - 12, 'p');
}

inline std::unique_ptr<Db> OpenDbOpts(const DbOptions& opts) {
  std::unique_ptr<Db> db;
  Status s = Db::Open(opts, &db);
  OIR_CHECK(s.ok());
  return db;
}

inline std::unique_ptr<Db> OpenDb(uint32_t page_size = kDefaultPageSize,
                                  size_t pool_pages = 1 << 15) {
  DbOptions opts;
  opts.page_size = page_size;
  opts.buffer_pool_pages = pool_pages;
  return OpenDbOpts(opts);
}

// Exact mean commit-group size: commits acknowledged per durable-advance
// group. Both counters are bumped on the ack path itself (not inferred
// from fsync counts, which the pipelined WAL also spends on segments no
// commit waited for), so the ratio is exact. Meaningful only when group
// commit is on — the synchronous flush path acks nothing; returns 0.0
// then so callers can suppress the figure.
inline double MeanGroupSize(const CounterSnapshot& d) {
  return d.log_groups_acked == 0
             ? 0.0
             : static_cast<double>(d.log_commits_acked) / d.log_groups_acked;
}

// Prints the I/O-path counters for a measured region: buffer-pool traffic
// and the WAL flush/fsync ratio.
inline void PrintIoPathCounters(const CounterSnapshot& d) {
  const uint64_t lookups = d.pool_hits + d.pool_misses;
  std::printf("  pool: %llu hits / %llu misses (%.1f%% hit), "
              "%llu evictions, %llu write-backs, %llu prefetched\n",
              (unsigned long long)d.pool_hits,
              (unsigned long long)d.pool_misses,
              lookups == 0 ? 0.0 : 100.0 * d.pool_hits / lookups,
              (unsigned long long)d.pool_evictions,
              (unsigned long long)d.pool_writebacks,
              (unsigned long long)d.pool_prefetched);
  if (d.log_groups_acked > 0) {
    std::printf("  wal:  %llu flush calls, %llu fsyncs, %llu commits in "
                "%llu groups (mean group %.1f)\n",
                (unsigned long long)d.log_flush_calls,
                (unsigned long long)d.log_fsyncs,
                (unsigned long long)d.log_commits_acked,
                (unsigned long long)d.log_groups_acked, MeanGroupSize(d));
  } else {
    std::printf("  wal:  %llu flush calls, %llu fsyncs "
                "(group commit off)\n",
                (unsigned long long)d.log_flush_calls,
                (unsigned long long)d.log_fsyncs);
  }
}

// Builds the paper's Table 1 workload: an index at ~50% space utilization
// (sequential load then deletion of every other key). Keys are `key_size`
// bytes. Returns the surviving ids.
inline std::vector<uint64_t> BuildHalfUtilizedIndex(Db* db, uint64_t num_keys,
                                                    int key_size) {
  const uint64_t total = num_keys * 2;
  {
    auto txn = db->BeginTxn();
    for (uint64_t i = 0; i < total; ++i) {
      Status s = db->index()->Insert(txn.get(), BenchKey(i, key_size), i);
      OIR_CHECK(s.ok());
      if (i % 4096 == 4095) {
        OIR_CHECK(db->Commit(txn.get()).ok());
        txn = db->BeginTxn();
      }
    }
    OIR_CHECK(db->Commit(txn.get()).ok());
  }
  {
    auto txn = db->BeginTxn();
    for (uint64_t i = 1; i < total; i += 2) {
      Status s = db->index()->Delete(txn.get(), BenchKey(i, key_size), i);
      OIR_CHECK(s.ok());
      if (i % 8192 == 8191) {
        OIR_CHECK(db->Commit(txn.get()).ok());
        txn = db->BeginTxn();
      }
    }
    OIR_CHECK(db->Commit(txn.get()).ok());
  }
  std::vector<uint64_t> survivors;
  survivors.reserve(num_keys);
  for (uint64_t i = 0; i < total; i += 2) survivors.push_back(i);
  return survivors;
}

// Cold cache (Section 6.4: "the cache is cold"): everything to disk, then
// drop the pool.
inline void ColdCache(Db* db) {
  OIR_CHECK(db->buffer_manager()->FlushAll().ok());
  db->buffer_manager()->DropAll();
}

}  // namespace oir::bench

#endif  // OIR_BENCH_BENCH_COMMON_H_
