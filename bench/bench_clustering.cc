// Section 6.1: online rebuild restores clustering and space utilization.
//
// Workload: an index built in random key order (badly declustered) and
// then half-emptied. We measure, before and after the rebuild, with a cold
// cache:
//   * leaf pages touched by full and partial range scans (the paper's
//     "number of disk reads required to read the same number of index
//     keys");
//   * disk read operations during the scan;
//   * leaf space utilization;
//   * sequential runs of leaf pages in key order (clustering).

#include "bench/bench_common.h"
#include "btree/cursor.h"
#include "core/rebuild.h"
#include "util/counters.h"

namespace oir::bench {
namespace {

struct ScanCost {
  uint64_t rows = 0;
  uint64_t pages = 0;
  uint64_t io_ops = 0;
};

ScanCost MeasureFullScan(Db* db) {
  ColdCache(db);
  auto before = GlobalCounters::Get().Snapshot();
  auto txn = db->BeginTxn();
  Cursor cur(db->tree(), OpCtx{txn->id(), txn->ctx()});
  ScanCost cost;
  OIR_CHECK(cur.SeekToFirst().ok());
  while (cur.Valid()) {
    ++cost.rows;
    OIR_CHECK(cur.Next().ok());
  }
  OIR_CHECK(db->Commit(txn.get()).ok());
  cost.pages = cur.pages_visited();
  cost.io_ops = (GlobalCounters::Get().Snapshot() - before).io_ops;
  return cost;
}

ScanCost MeasureRangeScans(Db* db, const std::vector<uint64_t>& ids,
                           int num_ranges, uint64_t range_len) {
  ColdCache(db);
  auto before = GlobalCounters::Get().Snapshot();
  auto txn = db->BeginTxn();
  ScanCost cost;
  Random rnd(42);
  uint64_t pages = 0;
  for (int r = 0; r < num_ranges; ++r) {
    Cursor cur(db->tree(), OpCtx{txn->id(), txn->ctx()});
    uint64_t start = ids[rnd.Uniform(ids.size())];
    OIR_CHECK(cur.Seek(BenchKey(start, 12)).ok());
    for (uint64_t i = 0; i < range_len && cur.Valid(); ++i) {
      ++cost.rows;
      OIR_CHECK(cur.Next().ok());
    }
    pages += cur.pages_visited();
  }
  OIR_CHECK(db->Commit(txn.get()).ok());
  cost.pages = pages;
  cost.io_ops = (GlobalCounters::Get().Snapshot() - before).io_ops;
  return cost;
}

void Report(const char* phase, const TreeStats& stats, const ScanCost& full,
            const ScanCost& ranges) {
  std::printf("%-10s %8llu %8.1f%% %9.3f %11llu %9llu %12llu %9llu\n", phase,
              (unsigned long long)stats.num_leaf_pages,
              stats.LeafUtilization() * 100,
              static_cast<double>(stats.leaf_seq_runs) / stats.num_leaf_pages,
              (unsigned long long)full.pages, (unsigned long long)full.io_ops,
              (unsigned long long)ranges.pages,
              (unsigned long long)ranges.io_ops);
}

int Main(int argc, char** argv) {
  uint64_t n = 60000;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") n = 15000;
  }
  auto db = OpenDb();
  // Random insertion order -> declustered leaves.
  std::vector<uint64_t> ids;
  ids.reserve(n);
  for (uint64_t i = 0; i < n; ++i) ids.push_back(i * 16);
  Random rnd(7);
  for (size_t i = ids.size(); i > 1; --i) {
    std::swap(ids[i - 1], ids[rnd.Uniform(i)]);
  }
  {
    auto txn = db->BeginTxn();
    for (size_t i = 0; i < ids.size(); ++i) {
      OIR_CHECK(db->index()->Insert(txn.get(), BenchKey(ids[i], 12),
                                    ids[i]).ok());
      if (i % 4096 == 4095) {
        OIR_CHECK(db->Commit(txn.get()).ok());
        txn = db->BeginTxn();
      }
    }
    OIR_CHECK(db->Commit(txn.get()).ok());
  }
  // Delete half to drop utilization.
  {
    auto txn = db->BeginTxn();
    for (size_t i = 0; i < ids.size(); i += 2) {
      OIR_CHECK(db->index()->Delete(txn.get(), BenchKey(ids[i], 12),
                                    ids[i]).ok());
      if (i % 8192 == 8190) {
        OIR_CHECK(db->Commit(txn.get()).ok());
        txn = db->BeginTxn();
      }
    }
    OIR_CHECK(db->Commit(txn.get()).ok());
  }
  std::vector<uint64_t> survivors;
  for (size_t i = 1; i < ids.size(); i += 2) survivors.push_back(ids[i]);

  std::printf("Clustering and utilization restoration (Section 6.1)\n\n");
  std::printf("%-10s %8s %9s %9s %11s %9s %12s %9s\n", "phase", "leaves",
              "util", "runs/pg", "scan-pages", "scan-ios", "range-pages",
              "range-ios");

  TreeStats stats;
  OIR_CHECK(db->tree()->Validate(&stats).ok());
  ScanCost full = MeasureFullScan(db.get());
  ScanCost ranges = MeasureRangeScans(db.get(), survivors, 50, 500);
  Report("before", stats, full, ranges);

  RebuildOptions opts;
  RebuildResult res;
  OIR_CHECK(db->index()->RebuildOnline(opts, &res).ok());

  OIR_CHECK(db->tree()->Validate(&stats).ok());
  full = MeasureFullScan(db.get());
  ranges = MeasureRangeScans(db.get(), survivors, 50, 500);
  Report("after", stats, full, ranges);

  std::printf("\nRebuild: %llu old pages -> %llu new pages, %llu keys, "
              "%.1f ms CPU\n",
              (unsigned long long)res.old_leaf_pages,
              (unsigned long long)res.new_leaf_pages,
              (unsigned long long)res.keys_moved, res.cpu_ns / 1e6);
  return 0;
}

}  // namespace
}  // namespace oir::bench

int main(int argc, char** argv) { return oir::bench::Main(argc, argv); }
