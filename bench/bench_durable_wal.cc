// Durable-WAL pipeline matrix: OLTP throughput and commit-ack latency
// inside the online-rebuild window with a file-backed log, swept over
// {segment size} x {in-flight segments} x {sync discipline}, plus the
// legacy one-round-at-a-time flusher as the "before" row. Results land in
// BENCH_durable_wal.json.
//
// The OLTP mix is read-heavy (default 5% insert+delete write
// transactions, 95% lookups — the YCSB-B ratio; --write-pct overrides);
// the commit latency histogram covers only logged commits — the ones
// that actually wait on the durable path. Per-row diagnostics split the
// commit tail into the backend's submit→durable device span
// (wal.segment_io_ns) and the full FlushTo wait (wal.commit_ack_ns), so a
// device-bound tail is distinguishable from a software one.

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>

#include "bench/bench_common.h"
#include "core/rebuild.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/counters.h"
#include "util/histogram.h"

namespace oir::bench {
namespace {

constexpr char kWalPath[] = "/tmp/oir_bench_durable_wal.log";

struct WalCfg {
  std::string name;
  bool pipeline = true;
  uint32_t segment_bytes = 256 * 1024;
  uint32_t inflight = 4;
  WalSyncMode sync = WalSyncMode::kFdatasync;
};

struct RowResult {
  uint64_t window_ms = 0;
  uint64_t ops_in_window = 0;
  double commit_p50_ms = 0;  // logged commits only
  double commit_p99_ms = 0;
  double commit_max_ms = 0;
  double segment_io_p50_ms = 0;  // backend submit→durable span
  double segment_io_p99_ms = 0;
  double flush_wait_p50_ms = 0;  // FlushTo wait alone (wal.commit_ack_ns)
  double flush_wait_p99_ms = 0;
  std::string backend;  // effective, after probes
  std::string sync;
  CounterSnapshot counters;

  double OpsPerSec() const {
    return window_ms == 0 ? 0.0 : ops_in_window * 1000.0 / window_ms;
  }
};

RowResult RunScenario(const WalCfg& cfg, uint64_t n, int oltp_threads,
                      int write_pct) {
  std::remove(kWalPath);
  std::remove((std::string(kWalPath) + ".master").c_str());

  DbOptions dopts;
  dopts.buffer_pool_pages = 1 << 15;
  dopts.log_path = kWalPath;
  dopts.wal_group_commit = true;
  dopts.wal_pipeline = cfg.pipeline;
  dopts.wal_segment_bytes = cfg.segment_bytes;
  dopts.wal_inflight_segments = cfg.inflight;
  dopts.wal_sync_mode = cfg.sync;
  auto db = OpenDbOpts(dopts);
  BuildHalfUtilizedIndex(db.get(), n, 12);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ops{0};
  Histogram commit_latency;  // microseconds, logged commits only

  std::vector<std::thread> threads;
  for (int t = 0; t < oltp_threads; ++t) {
    threads.emplace_back([&, t] {
      Random rnd(t + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        auto txn = db->BeginTxn();
        if (static_cast<int>(rnd.Uniform(100)) >= write_pct) {
          uint64_t id = 2 * rnd.Uniform(n);
          bool found;
          OIR_CHECK(db->index()
                        ->Lookup(txn.get(), BenchKey(id, 12), id, &found)
                        .ok());
          OIR_CHECK(db->Commit(txn.get()).ok());  // read-only: no flush
        } else {
          uint64_t id = 1 + 2 * rnd.Uniform(n);
          Status s = db->index()->Insert(txn.get(), BenchKey(id, 12), id);
          if (s.ok()) {
            OIR_CHECK(
                db->index()->Delete(txn.get(), BenchKey(id, 12), id).ok());
          }
          uint64_t c0 = NowNanos();
          OIR_CHECK(db->Commit(txn.get()).ok());
          commit_latency.Add((NowNanos() - c0) / 1000);
        }
        ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  commit_latency.Clear();
  obs::MetricRegistry::Get().ResetTimers();
  auto counters0 = GlobalCounters::Get().Snapshot();
  uint64_t ops0 = ops.load();
  uint64_t t0 = NowNanos();

  RebuildOptions ropts;
  RebuildResult rres;
  OIR_CHECK(db->index()->RebuildOnline(ropts, &rres).ok());

  RowResult r;
  r.window_ms = (NowNanos() - t0) / 1000000;
  r.ops_in_window = ops.load() - ops0;
  r.counters = GlobalCounters::Get().Snapshot() - counters0;
  r.commit_p50_ms = commit_latency.Percentile(50) / 1000.0;
  r.commit_p99_ms = commit_latency.Percentile(99) / 1000.0;
  r.commit_max_ms = commit_latency.Max() / 1000.0;
  r.backend = db->log_manager()->backend_name();
  r.sync = db->log_manager()->sync_mode_name();
  for (const auto& t : obs::MetricRegistry::Get().TakeSnapshot().timers) {
    if (t.name == "wal.segment_io_ns") {
      r.segment_io_p50_ms = t.p50 / 1e6;
      r.segment_io_p99_ms = t.p99 / 1e6;
    } else if (t.name == "wal.commit_ack_ns") {
      r.flush_wait_p50_ms = t.p50 / 1e6;
      r.flush_wait_p99_ms = t.p99 / 1e6;
    }
  }
  stop.store(true);
  for (auto& t : threads) t.join();

  db.reset();  // close the log fd before unlinking
  std::remove(kWalPath);
  std::remove((std::string(kWalPath) + ".master").c_str());
  return r;
}

void PrintRow(const WalCfg& cfg, const RowResult& r) {
  std::printf("%-22s %-9s %8lluK %8u %10llu %12.0f %10.3f %10.3f %10.1f\n",
              cfg.name.c_str(), r.sync.c_str(),
              (unsigned long long)(cfg.segment_bytes / 1024), cfg.inflight,
              (unsigned long long)r.ops_in_window, r.OpsPerSec(),
              r.commit_p50_ms, r.commit_p99_ms, MeanGroupSize(r.counters));
  std::printf("%-22s   device p50/p99 %.3f/%.3f ms   flush-wait p50/p99 "
              "%.3f/%.3f ms\n",
              "", r.segment_io_p50_ms, r.segment_io_p99_ms,
              r.flush_wait_p50_ms, r.flush_wait_p99_ms);
}

void WriteJsonRow(std::FILE* f, const WalCfg& cfg, const RowResult& r,
                  bool last) {
  const CounterSnapshot& d = r.counters;
  std::fprintf(
      f,
      "    {\"name\": \"%s\", \"pipeline\": %s, \"backend\": \"%s\", "
      "\"sync\": \"%s\", \"segment_bytes\": %u, \"inflight\": %u,\n"
      "     \"window_ms\": %llu, \"ops\": %llu, \"ops_per_sec\": %.0f, "
      "\"commit_p50_ms\": %.3f, \"commit_p99_ms\": %.3f, "
      "\"commit_max_ms\": %.3f,\n"
      "     \"device_io_p50_ms\": %.3f, \"device_io_p99_ms\": %.3f, "
      "\"flush_wait_p50_ms\": %.3f, \"flush_wait_p99_ms\": %.3f,\n"
      "     \"commits_acked\": %llu, \"groups_acked\": %llu, "
      "\"mean_group_size\": %.2f, \"log_fsyncs\": %llu, "
      "\"segments_sealed\": %llu}%s\n",
      cfg.name.c_str(), cfg.pipeline ? "true" : "false", r.backend.c_str(),
      r.sync.c_str(), cfg.segment_bytes, cfg.inflight,
      (unsigned long long)r.window_ms, (unsigned long long)r.ops_in_window,
      r.OpsPerSec(), r.commit_p50_ms, r.commit_p99_ms, r.commit_max_ms,
      r.segment_io_p50_ms, r.segment_io_p99_ms, r.flush_wait_p50_ms,
      r.flush_wait_p99_ms, (unsigned long long)d.log_commits_acked,
      (unsigned long long)d.log_groups_acked, MeanGroupSize(d),
      (unsigned long long)d.log_fsyncs,
      (unsigned long long)d.wal_segments_sealed, last ? "" : ",");
}

int Main(int argc, char** argv) {
  uint64_t n = 400000;
  int threads = 10;
  int write_pct = 5;
  bool quick = false;
  std::string json_path = "BENCH_durable_wal.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    if (arg == "--keys" && i + 1 < argc) n = std::atoll(argv[i + 1]);
    if (arg == "--threads" && i + 1 < argc) threads = std::atoi(argv[i + 1]);
    if (arg == "--write-pct" && i + 1 < argc)
      write_pct = std::atoi(argv[i + 1]);
    if (arg == "--json" && i + 1 < argc) json_path = argv[i + 1];
  }

  obs::MetricRegistry::SetTimersEnabled(true);

  std::vector<WalCfg> matrix;
  {
    // "Before": the legacy one-write+fsync-per-round flusher (it always
    // uses fdatasync; segment/inflight do not apply).
    WalCfg before;
    before.name = "before-legacy";
    before.pipeline = false;
    matrix.push_back(before);
  }
  const std::vector<std::pair<const char*, WalSyncMode>> syncs = {
      {"fdatasync", WalSyncMode::kFdatasync},
      {"fsync", WalSyncMode::kFsync},
      {"odirect", WalSyncMode::kODirect}};
  std::vector<uint32_t> segments = {64 * 1024, 256 * 1024, 1024 * 1024};
  std::vector<uint32_t> inflights = {2, 4};
  if (quick) {
    segments = {256 * 1024};
    inflights = {4};
  }
  for (const auto& [sname, smode] : syncs) {
    for (uint32_t seg : segments) {
      for (uint32_t inf : inflights) {
        WalCfg c;
        c.name = std::string("pipe-") + sname + "-" +
                 std::to_string(seg / 1024) + "K-x" + std::to_string(inf);
        c.segment_bytes = seg;
        c.inflight = inf;
        c.sync = smode;
        matrix.push_back(c);
      }
    }
  }

  std::printf("Durable WAL pipeline matrix (OLTP inside the online-rebuild "
              "window, %d threads, %llu keys, %d%% writes, file WAL)\n\n",
              threads, (unsigned long long)n, write_pct);
  std::printf("%-22s %-9s %9s %8s %10s %12s %10s %10s %10s\n", "config",
              "sync", "segment", "inflight", "ops", "ops/sec", "p50-ms",
              "p99-ms", "mean-group");

  std::vector<RowResult> results;
  for (const WalCfg& cfg : matrix) {
    RowResult r = RunScenario(cfg, n, threads, write_pct);
    PrintRow(cfg, r);
    results.push_back(r);
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"durable_wal\",\n");
  std::fprintf(f, "  \"oltp_threads\": %d,\n  \"keys\": %llu,\n", threads,
               (unsigned long long)n);
  std::fprintf(f, "  \"write_pct\": %d,\n", write_pct);
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    WriteJsonRow(f, matrix[i], results[i], i + 1 == results.size());
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace oir::bench

int main(int argc, char** argv) { return oir::bench::Main(argc, argv); }
