#!/usr/bin/env python3
"""Project lint for the OIR tree (stdlib only; no compiler needed).

Enforced rules, each backed by a stronger mechanism where one exists:

  raw-sync        Raw std synchronization types (std::mutex, std::shared_mutex,
                  std::condition_variable, std::lock_guard, std::unique_lock,
                  std::scoped_lock, std::shared_lock) may appear only inside
                  src/sync — everything else must use the capability-annotated
                  wrappers (sync/mutex.h) so clang -Wthread-safety sees every
                  critical section.
  nodiscard       util/status.h must keep Status marked [[nodiscard]] (the
                  compiler then flags every silently-discarded error).
  no-sleep        No sleep calls in src/ outside src/testing: production code
                  waits on condition variables, not timers.
  sync-call       Direct Disk::Sync() calls may appear only inside
                  src/storage, src/wal, and src/testing. Everywhere else a
                  synchronous device barrier on the calling thread defeats
                  the pipelined durable path — route durability through
                  LogManager::FlushTo (WAL) or the BufferManager write-back
                  worker (data pages) instead.
  wait-scope      Condition-variable waits (.Wait / .WaitFor / .WaitUntil)
                  outside src/sync must be attributed for the wait-state
                  profiler: either an obs::WaitScope on the same or one of the
                  10 preceding lines, or a `// wait-state: <why>` comment on
                  the wait line or at most 2 lines above it marking the wait
                  as a background/idle wait that is deliberately unattributed.
  crash-point     OIR_CRASH_POINT must be a whole, unconditional statement —
                  not folded into an if/else/loop header or hanging off an
                  unbraced conditional, where a refactor can silently skip the
                  crash site the fault sweep depends on.
  include-guard   Headers under src/ use #ifndef OIR_<PATH>_H_ guards derived
                  from their path.
  own-header      foo.cc includes "foo.h" first, proving every header is
                  self-contained.

Exit status: 0 when clean, 1 when any finding is reported.
"""

import re
import sys
from pathlib import Path

RAW_SYNC = re.compile(
    r"std::(?:recursive_|timed_|recursive_timed_)?mutex\b"
    r"|std::shared_(?:mutex|timed_mutex|lock)\b"
    r"|std::condition_variable(?:_any)?\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock)\b"
)
SLEEP = re.compile(
    r"std::this_thread::sleep_(?:for|until)\b|\busleep\s*\(|\bnanosleep\s*\("
)
SYNC_CALL = re.compile(r"(?:->|\.)\s*Sync\s*\(\s*\)")
WAIT_CALL = re.compile(r"(?:->|\.)\s*(?:Wait(?:For|Until)?|wait(?:_for|_until)?)\s*\(")
COND_TAIL = re.compile(r"^\s*(?:if|else if|while|for)\s*\([^{]*\)\s*$|^\s*else\s*$")


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            q = c
            j = i + 1
            while j < n and text[j] != q:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(q + " " * (j - i - 2) + (q if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def guard_for(header, src_root):
    rel = header.relative_to(src_root)
    return "OIR_" + re.sub(r"[./]", "_", str(rel)).upper() + "_"


def lint_file(path, src_root, findings):
    raw = path.read_text(encoding="utf-8", errors="replace")
    text = strip_comments_and_strings(raw)
    lines = text.splitlines()
    raw_lines = raw.splitlines()
    rel = path.relative_to(src_root.parent)
    in_sync = str(rel).startswith("src/sync/")
    in_testing = str(rel).startswith("src/testing/")
    sync_ok = in_testing or str(rel).startswith(("src/storage/", "src/wal/"))

    for idx, line in enumerate(lines, 1):
        if not in_sync and RAW_SYNC.search(line):
            findings.append(
                f"{rel}:{idx}: raw-sync: raw std synchronization type; "
                f"use the annotated wrappers in sync/mutex.h"
            )
        if not in_testing and SLEEP.search(line):
            findings.append(
                f"{rel}:{idx}: no-sleep: sleeping in production code; "
                f"wait on a CondVar instead"
            )
        if not sync_ok and SYNC_CALL.search(line):
            findings.append(
                f"{rel}:{idx}: sync-call: direct Disk::Sync() outside the "
                f"storage/WAL write-back internals; use LogManager::FlushTo "
                f"or the write-back worker"
            )
        if not in_sync and WAIT_CALL.search(line):
            # Attributed: a WaitScope opened on this or one of the 10
            # preceding (comment-stripped) lines. Exempt: an explicit
            # `wait-state:` comment on the wait line or <= 2 raw lines
            # above, marking a background/idle wait.
            scoped = any(
                "WaitScope" in lines[j] for j in range(max(0, idx - 11), idx)
            )
            noted = any(
                "wait-state:" in raw_lines[j]
                for j in range(max(0, idx - 3), idx)
            )
            if not scoped and not noted:
                findings.append(
                    f"{rel}:{idx}: wait-scope: naked CV wait; wrap in "
                    f"obs::WaitScope (attributed wait) or mark with a "
                    f"'// wait-state: <why>' comment (background wait)"
                )
        col = line.find("OIR_CRASH_POINT")
        if col >= 0 and "#define" not in line:
            bad = line[:col].strip() != ""
            if not bad:
                for back in range(idx - 2, -1, -1):
                    prev = lines[back].strip()
                    if not prev:
                        continue
                    bad = bool(COND_TAIL.match(lines[back]))
                    break
            if bad:
                findings.append(
                    f"{rel}:{idx}: crash-point: OIR_CRASH_POINT must be a "
                    f"whole unconditional statement (brace the surrounding "
                    f"control flow)"
                )

    if path.suffix == ".h":
        want = guard_for(path, src_root)
        if f"#ifndef {want}" not in text:
            findings.append(
                f"{rel}:1: include-guard: expected '#ifndef {want}'"
            )
    elif path.suffix == ".cc":
        own = path.with_suffix(".h")
        if own.exists():
            m = re.search(r"^\s*#include\s+([<\"][^>\"]+[>\"])", raw, re.M)
            want = f'"{own.relative_to(src_root)}"'
            if m is None or m.group(1) != want:
                findings.append(
                    f"{rel}:1: own-header: first include must be {want}"
                )


def main():
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parents[2]
    src_root = root / "src"
    findings = []

    status_h = src_root / "util" / "status.h"
    if "class [[nodiscard]] Status" not in status_h.read_text():
        findings.append(
            "src/util/status.h:1: nodiscard: Status must stay [[nodiscard]]"
        )

    for path in sorted(src_root.rglob("*")):
        if path.suffix in (".h", ".cc"):
            lint_file(path, src_root, findings)

    for f in findings:
        print(f)
    print(f"oir_lint: {len(findings)} finding(s) in {root}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
