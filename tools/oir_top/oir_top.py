#!/usr/bin/env python3
"""oir_top: live terminal dashboard for a running OIR process.

Point any OIR binary at a stats file (OIR_STATS_PUBLISH=/tmp/oir_stats.json
or DbOptions::stats_publish_path) and run

    python3 tools/oir_top/oir_top.py /tmp/oir_stats.json

The database publishes DumpStatsJson() atomically (temp + rename) every
publish interval; this tool polls the file and renders rates computed from
consecutive snapshots: operation throughput, per-operation wait-state
stacks (where read/write/commit/rebuild wall-clock actually goes), buffer
pool hit rates, WAL group-commit efficiency and rebuild progress.

Stdlib only. --once prints a single frame and exits (no ANSI cursor
control), which is what the docs use to capture example output.
"""

import argparse
import json
import os
import sys
import time

# Wait-state keys as emitted by obs::WaitProfiler::ToJson, with one glyph
# and ANSI color each for the stacked bar.
STATES = [
    ("running", "R", "32"),          # green
    ("latch_wait", "L", "33"),       # yellow
    ("lock_wait", "K", "31"),        # red
    ("wal_commit_wait", "W", "35"),  # magenta
    ("io_wait", "I", "34"),          # blue
    ("throttled", "T", "36"),        # cyan
]
OPS = ["read", "write", "commit", "rebuild", "other"]
BAR_WIDTH = 40


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError):
        return None


def fmt_count(v):
    for unit, div in (("G", 1e9), ("M", 1e6), ("k", 1e3)):
        if v >= div:
            return f"{v / div:.1f}{unit}"
    return f"{v:.0f}"


def fmt_ns(ns):
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f}us"
    return f"{ns:.0f}ns"


def colored(text, code, use_color):
    return f"\x1b[{code}m{text}\x1b[0m" if use_color else text


def op_delta(cur, prev, op):
    """Per-op (count, wall_ns, {state: ns}) accumulated since `prev`."""
    c = cur.get("wait_profile", {}).get(op)
    if c is None:
        return None
    p = (prev or {}).get("wait_profile", {}).get(op, {})
    count = c.get("count", 0) - p.get("count", 0)
    wall = c.get("wall_ns", 0) - p.get("wall_ns", 0)
    states = {
        k: c.get("states", {}).get(k, 0) - p.get("states", {}).get(k, 0)
        for k, _, _ in STATES
    }
    if count < 0 or wall < 0:  # process restarted; treat as absolute
        return c.get("count", 0), c.get("wall_ns", 0), c.get("states", {})
    return count, wall, states


def wait_bar(states, wall, use_color):
    """Stacked horizontal bar: one colored run per wait state."""
    if wall <= 0:
        return " " * BAR_WIDTH
    cells = []
    for key, glyph, code in STATES:
        n = round(BAR_WIDTH * states.get(key, 0) / wall)
        cells.append(colored(glyph * n, code, use_color))
    bar = "".join(cells)
    # Rounding can over/undershoot by a cell or two; clamp to width.
    plain = len(bar) if not use_color else sum(
        round(BAR_WIDTH * states.get(k, 0) / wall) for k, _, _ in STATES
    )
    if plain < BAR_WIDTH:
        bar += " " * (BAR_WIDTH - plain)
    return bar


def render(cur, prev, dt, path, use_color):
    lines = []
    now = time.strftime("%H:%M:%S")
    lines.append(f"oir_top — {path} — {now}  (interval {dt:.1f}s)")
    lines.append("")

    # --- operation throughput + wait-state stacks -----------------------
    rates = []
    for op in OPS:
        d = op_delta(cur, prev, op)
        if d is None or d[0] == 0:
            continue
        rates.append(f"{op} {fmt_count(d[0] / dt)}/s")
    lines.append("ops:   " + ("  ".join(rates) if rates else "(idle)"))
    lines.append("")
    legend = "  ".join(
        colored(f"{g}={k}", c, use_color) for k, g, c in STATES
    )
    lines.append(f"wait-state share of op wall-clock   {legend}")
    for op in OPS:
        d = op_delta(cur, prev, op)
        if d is None or d[1] <= 0:
            continue
        count, wall, states = d
        bar = wait_bar(states, wall, use_color)
        top = max(
            ((k, states.get(k, 0)) for k, _, _ in STATES if k != "running"),
            key=lambda kv: kv[1],
            default=("-", 0),
        )
        mean = fmt_ns(wall / count) if count else "-"
        detail = f"mean {mean:>8}"
        if top[1] > 0:
            detail += f"  top wait: {top[0]} {100.0 * top[1] / wall:.0f}%"
        lines.append(f"  {op:<8}|{bar}| {detail}")
    lines.append("")

    # --- buffer pool ----------------------------------------------------
    pool = cur.get("pool", {})
    hits, misses = pool.get("hits", 0), pool.get("misses", 0)
    ppool = (prev or {}).get("pool", {})
    dh = hits - ppool.get("hits", hits)
    dm = misses - ppool.get("misses", misses)
    total = hits + misses
    rate = 100.0 * hits / total if total else 0.0
    irate = 100.0 * dh / (dh + dm) if (dh + dm) > 0 else rate
    lines.append(
        f"pool:  hit {irate:5.1f}% (cum {rate:5.1f}%)  "
        f"cached {pool.get('cached_pages', 0)}/{pool.get('frames', 0)}  "
        f"evict/s {fmt_count(max(0, pool.get('evictions', 0) - ppool.get('evictions', 0)) / dt)}"
    )

    # --- WAL ------------------------------------------------------------
    wal = cur.get("wal", {})
    pwal = (prev or {}).get("wal", {})
    dc = wal.get("commits_acked", 0) - pwal.get("commits_acked", 0)
    dg = wal.get("groups_acked", 0) - pwal.get("groups_acked", 0)
    group = f"{dc / dg:.1f}" if dg > 0 else "-"
    lag = wal.get("tail_lsn", 0) - wal.get("durable_lsn", 0)
    lines.append(
        f"wal:   commits/s {fmt_count(max(0, dc) / dt)}  "
        f"group size {group}  durable lag {lag} B  "
        f"backend {wal.get('backend', '?')}/{wal.get('sync_mode', '?')}"
    )

    # --- rebuild --------------------------------------------------------
    g = cur.get("gauges", {})
    if g.get("rebuild.active", 0):
        done = g.get("rebuild.leaves_rebuilt", 0)
        tot = g.get("rebuild.leaves_total", 0)
        pct = 100.0 * done / tot if tot else 0.0
        width = 24
        fill = round(width * pct / 100.0)
        bar = colored("#" * fill, "32", use_color) + "." * (width - fill)
        lines.append(
            f"rebuild: [{bar}] {pct:5.1f}%  {done}/{tot} leaves  "
            f"top actions {g.get('rebuild.top_actions', 0)}"
        )
    else:
        rb = cur.get("rebuild", {})
        if rb:
            lines.append(
                f"rebuild: idle (last: {rb.get('new_leaf_pages', 0)} leaves, "
                f"{fmt_ns(rb.get('wall_ns', 0))})"
            )
        else:
            lines.append("rebuild: idle")

    # --- locks ----------------------------------------------------------
    lock = cur.get("lock", {})
    lines.append(
        f"locks: held keys {lock.get('locked_keys', 0)}  "
        f"waits {lock.get('waits', 0)}  "
        f"watchdog fires {lock.get('watchdog_fires', 0)}"
    )
    return "\n".join(lines)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "stats_file",
        nargs="?",
        default=os.environ.get("OIR_STATS_PUBLISH", ""),
        help="stats file the database publishes (default: $OIR_STATS_PUBLISH)",
    )
    ap.add_argument(
        "--interval", type=float, default=1.0, help="poll seconds (default 1)"
    )
    ap.add_argument(
        "--once", action="store_true",
        help="render one frame from two polls and exit (for scripts/docs)",
    )
    ap.add_argument(
        "--no-color", action="store_true", help="disable ANSI colors"
    )
    args = ap.parse_args()
    if not args.stats_file:
        ap.error("no stats file given and OIR_STATS_PUBLISH is unset")
    use_color = not args.no_color and sys.stdout.isatty()

    prev, prev_t = None, None
    deadline = time.time() + 10.0
    while prev is None:
        prev = load(args.stats_file)
        prev_t = time.time()
        if prev is None:
            if time.time() > deadline:
                print(f"oir_top: no readable stats at {args.stats_file}",
                      file=sys.stderr)
                return 1
            time.sleep(0.2)

    try:
        while True:
            time.sleep(args.interval)
            cur = load(args.stats_file)
            now = time.time()
            if cur is None:
                continue
            frame = render(cur, prev, max(now - prev_t, 1e-3),
                           args.stats_file, use_color)
            if args.once:
                print(frame)
                return 0
            # Home the cursor and clear to end of screen: flicker-free
            # redraw without curses.
            sys.stdout.write("\x1b[H\x1b[J" + frame + "\n")
            sys.stdout.flush()
            prev, prev_t = cur, now
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
