// Crash recovery walkthrough: commit some work, leave a transaction
// in flight, crash mid-rebuild-era state, and watch ARIES-style restart
// recovery (analysis/redo + logical undo + deallocated-page cleanup)
// restore exactly the committed state.

#include <cstdio>
#include <set>

#include "core/db.h"
#include "core/index.h"

using namespace oir;

static std::string Key(uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "order-%010llu", (unsigned long long)n);
  return buf;
}

int main() {
  DbOptions options;
  options.buffer_pool_pages = 1 << 15;
  std::unique_ptr<Db> db;
  if (!Db::Open(options, &db).ok()) return 1;

  // Committed work: 50k orders, then delete every third one.
  std::set<uint64_t> committed;
  {
    auto txn = db->BeginTxn();
    for (uint64_t i = 0; i < 50000; ++i) {
      if (!db->index()->Insert(txn.get(), Key(i), i).ok()) return 1;
      committed.insert(i);
    }
    if (!db->Commit(txn.get()).ok()) return 1;
    txn = db->BeginTxn();
    for (uint64_t i = 0; i < 50000; i += 3) {
      if (!db->index()->Delete(txn.get(), Key(i), i).ok()) return 1;
      committed.erase(i);
    }
    if (!db->Commit(txn.get()).ok()) return 1;
  }

  // An online rebuild (its transactions commit one by one).
  RebuildOptions ropts;
  ropts.xactsize = 64;  // many small rebuild transactions
  RebuildResult rres;
  if (!db->index()->RebuildOnline(ropts, &rres).ok()) return 1;
  std::printf("rebuild committed %llu transactions (%llu pages rebuilt)\n",
              (unsigned long long)rres.transactions,
              (unsigned long long)rres.old_leaf_pages);

  // A transaction that never commits: its inserts must vanish.
  auto loser = db->BeginTxn();
  for (uint64_t i = 0; i < 500; ++i) {
    if (!db->index()->Insert(loser.get(), Key(900000 + i), 900000 + i).ok()) {
      return 1;
    }
  }
  // Make the loser's records durable.
  if (!db->log_manager()->FlushAll().ok()) return 1;
  loser.release();                // ... and never commit it

  // CRASH. Dirty pages and the unflushed log tail are gone; locks die.
  std::printf("simulating crash...\n");
  RecoveryStats stats;
  Status s = db->CrashAndRecover(&stats);
  if (!s.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("recovery: %s\n", stats.ToString().c_str());

  // Verify: exactly the committed state.
  TreeStats tree;
  if (!db->tree()->Validate(&tree).ok()) {
    std::fprintf(stderr, "tree corrupt after recovery!\n");
    return 1;
  }
  std::printf("tree after recovery: %llu keys (expected %zu), height %u — "
              "%s\n",
              (unsigned long long)tree.num_keys, committed.size(),
              tree.height,
              tree.num_keys == committed.size() ? "exact match" : "MISMATCH");

  // The database stays usable after recovery.
  auto txn = db->BeginTxn();
  bool found = false;
  if (!db->index()->Lookup(txn.get(), Key(900000), 900000, &found).ok()) {
    return 1;
  }
  std::printf("loser's insert visible after recovery: %s\n",
              found ? "YES (bug!)" : "no (correctly rolled back)");
  if (!db->Commit(txn.get()).ok()) return 1;
  return tree.num_keys == committed.size() && !found ? 0 : 1;
}
