// A faithful walkthrough of the paper's Figure 2: a multipage rebuild top
// action over three leaf pages, with the Section 5.5 level-1
// reorganization moving the new page's index entry into the left sibling.
//
// The figure (five rows per leaf):
//
//   level 2 (root):      [15 -> P, 30 -> ...]
//   level 1:   L = [... 10]        P = [.., 15, 20, 25]   (parents)
//   leaves:    PP=[07,09] P1=[10,11,15] P2=[20,21,22] P3=[25,26] NP=[30,35]
//
// After rebuilding P1,P2,P3 with fillfactor 100:
//   PP = [07,09,10,11,15]  (absorbed P1's rows and some of P2's)
//   N1 = [20,21,22,25,26]  (the rest of P2 and all of P3)
//   P1 passes DELETE, P2 passes UPDATE [22 -> N1], P3 passes DELETE;
//   the insert of [22 -> N1] lands on L (left sibling of P);
//   P empties and passes DELETE; the root drops [15 -> P].
//
// This program builds a structurally equivalent tree (small pages so a few
// rows fill a leaf), prints the tree before and after one ntasize=3 top
// action, and annotates what each phase did.

#include <cstdio>
#include <functional>

#include "core/db.h"
#include "core/index.h"

using namespace oir;

static void DumpTree(Db* db, const char* title) {
  std::printf("%s\n", title);
  std::function<void(PageId, int)> walk = [&](PageId p, int depth) {
    PageRef ref;
    if (!db->buffer_manager()->Fetch(p, &ref).ok()) return;
    SlottedPage sp(ref.data(), db->buffer_manager()->page_size());
    std::printf("%*s", depth * 2, "");
    if (ref.header()->level == kLeafLevel) {
      std::printf("leaf %u [", p);
      for (SlotId i = 0; i < sp.nslots(); ++i) {
        Slice uk = UserKeyOf(sp.Get(i));
        std::printf("%s%.*s", i ? "," : "", (int)uk.size(), uk.data());
      }
      std::printf("]\n");
      return;
    }
    std::printf("node %u level %u [", p, ref.header()->level);
    for (SlotId i = 0; i < sp.nslots(); ++i) {
      Slice sep = node::SeparatorOf(sp.Get(i));
      if (i == 0) {
        std::printf("-inf");
      } else {
        std::printf(" | %.*s", (int)sep.size(), sep.data());
      }
      std::printf("->%u", node::ChildOf(sp.Get(i)));
    }
    std::printf("]\n");
    for (SlotId i = 0; i < sp.nslots(); ++i) {
      walk(node::ChildOf(sp.Get(i)), depth + 1);
    }
  };
  walk(db->tree()->root(), 1);
}

int main() {
  // 512-byte pages: ~15 of our rows per leaf — the same "handful of rows
  // per page" scale as the figure.
  DbOptions options;
  options.page_size = 512;
  options.buffer_pool_pages = 4096;
  std::unique_ptr<Db> db;
  if (!Db::Open(options, &db).ok()) return 1;

  auto key = [](uint64_t n) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%02llu", (unsigned long long)n);
    return std::string(buf) + std::string(18, '.');
  };

  // Build several full leaves, then hollow out the middle ones so the
  // rebuild's copy phase has Figure 2's shape: a previous page with spare
  // room absorbing the first rebuilt pages.
  {
    auto txn = db->BeginTxn();
    for (uint64_t i = 0; i < 99; ++i) {
      if (!db->index()->Insert(txn.get(), key(i), i).ok()) return 1;
    }
    if (!db->Commit(txn.get()).ok()) return 1;
    txn = db->BeginTxn();
    for (uint64_t i = 15; i < 85; i += 2) {
      if (!db->index()->Delete(txn.get(), key(i), i).ok()) return 1;
    }
    if (!db->Commit(txn.get()).ok()) return 1;
  }

  DumpTree(db.get(), "\n=== before the rebuild (declustered middle) ===");

  std::printf("\nrunning one online rebuild with ntasize=3 "
              "(three leaves per top action, as in Figure 2)...\n");
  RebuildOptions opts;
  opts.ntasize = 3;
  opts.xactsize = 256;
  opts.reorganize_level1 = true;  // Section 5.5: inserts go to the left
                                  // sibling; no separate level-1 pass
  RebuildResult res;
  Status s = db->index()->RebuildOnline(opts, &res);
  if (!s.ok()) {
    std::fprintf(stderr, "rebuild failed: %s\n", s.ToString().c_str());
    return 1;
  }

  DumpTree(db.get(), "\n=== after the rebuild ===");

  TreeStats stats;
  if (!db->tree()->Validate(&stats).ok()) return 1;
  std::printf("\n%llu top actions; %llu old leaves -> %llu new leaves; "
              "utilization %.0f%%\n",
              (unsigned long long)res.top_actions,
              (unsigned long long)res.old_leaf_pages,
              (unsigned long long)res.new_leaf_pages,
              stats.LeafUtilization() * 100);
  std::printf("\nWhat happened per top action (Sections 4-5):\n"
              "  copy phase:  rows of P1..P3 moved into PP (up to the fill\n"
              "               target) and freshly allocated pages; one\n"
              "               keycopy log record, no key bytes logged.\n"
              "  propagation: DELETE entries for pages fully absorbed,\n"
              "               UPDATE [sep -> new page] for pages that\n"
              "               opened a new target; inserts placed on the\n"
              "               LEFT level-1 sibling when the first child of\n"
              "               the parent was deleted (Figure 2's [22->N1]\n"
              "               landing on L); emptied parents deallocated\n"
              "               directly and their entries dropped upward.\n");
  return 0;
}
