// The paper's headline scenario: an OLTP workload (point lookups, inserts,
// deletes) keeps running while the index is rebuilt online. The program
// reports OLTP progress during the rebuild and verifies that no committed
// row was lost.

#include <atomic>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "core/db.h"
#include "core/index.h"
#include "util/random.h"

using namespace oir;

static std::string Key(uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "acct-%012llu", (unsigned long long)n);
  return buf;
}

int main() {
  DbOptions options;
  options.buffer_pool_pages = 1 << 15;
  std::unique_ptr<Db> db;
  if (!Db::Open(options, &db).ok()) return 1;

  // Load a half-utilized, rebuild-worthy index: even account ids (insert
  // interleaved ids, then delete the odd ones).
  constexpr uint64_t kAccounts = 100000;
  {
    auto txn = db->BeginTxn();
    for (uint64_t i = 0; i < 2 * kAccounts; ++i) {
      if (!db->index()->Insert(txn.get(), Key(i), i).ok()) return 1;
    }
    if (!db->Commit(txn.get()).ok()) return 1;
    txn = db->BeginTxn();
    for (uint64_t i = 1; i < 2 * kAccounts; i += 2) {
      if (!db->index()->Delete(txn.get(), Key(i), i).ok()) return 1;
    }
    if (!db->Commit(txn.get()).ok()) return 1;
  }
  TreeStats before;
  if (!db->tree()->Validate(&before).ok()) return 1;
  std::printf("loaded %llu accounts on %llu leaf pages\n",
              (unsigned long long)kAccounts,
              (unsigned long long)before.num_leaf_pages);

  // OLTP: 3 writers churn odd ids, 3 readers verify even ids stay visible.
  std::atomic<bool> done{false};
  std::atomic<uint64_t> reads{0}, writes{0}, missing{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      Random rnd(100 + t);
      while (!done.load()) {
        auto txn = db->BeginTxn();
        uint64_t id = 1 + 2 * rnd.Uniform(kAccounts);
        if (db->index()->Insert(txn.get(), Key(id), id).ok()) {
          // Best-effort storm traffic: a failed delete (e.g. a conditional
          // lock loss against the rebuild) just ends this iteration.
          (void)db->index()->Delete(txn.get(), Key(id), id);
          ++writes;
        }
        (void)db->Commit(txn.get());  // aborted txns are part of the storm
      }
    });
  }
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      Random rnd(200 + t);
      while (!done.load()) {
        auto txn = db->BeginTxn();
        uint64_t id = 2 * rnd.Uniform(kAccounts);
        bool found = false;
        if (db->index()->Lookup(txn.get(), Key(id), id, &found).ok()) {
          ++reads;
          if (!found) ++missing;
        }
        (void)db->Commit(txn.get());  // read-only: nothing to lose
      }
    });
  }

  // Rebuild online while the OLTP storm runs.
  RebuildOptions opts;
  opts.ntasize = 32;
  opts.xactsize = 256;
  opts.fillfactor = 90;  // leave head room so concurrent inserts do not
                         // immediately split the fresh pages
  RebuildResult result;
  Status s = db->index()->RebuildOnline(opts, &result);
  done.store(true);
  for (auto& t : threads) t.join();
  if (!s.ok()) {
    std::fprintf(stderr, "rebuild failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("during the rebuild: %llu lookups (%llu missing!), "
              "%llu insert+delete pairs\n",
              (unsigned long long)reads.load(),
              (unsigned long long)missing.load(),
              (unsigned long long)writes.load());

  // Verify: every stable account is still present and the tree is sound.
  TreeStats after;
  if (!db->tree()->Validate(&after).ok()) {
    std::fprintf(stderr, "tree corrupt after rebuild!\n");
    return 1;
  }
  std::printf("after the rebuild: %llu keys on %llu leaf pages "
              "(%.0f%% -> %.0f%% utilization)\n",
              (unsigned long long)after.num_keys,
              (unsigned long long)after.num_leaf_pages,
              before.LeafUtilization() * 100, after.LeafUtilization() * 100);
  return missing.load() == 0 && after.num_keys == kAccounts ? 0 : 1;
}
