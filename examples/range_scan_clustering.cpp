// The motivation of the paper's introduction: an index that grew by random
// inserts becomes declustered — range scans touch scattered pages — and
// deletions strand half-empty pages. An online rebuild restores both
// clustering and space utilization, and range scans get visibly cheaper.

#include <cstdio>
#include <vector>

#include "btree/cursor.h"
#include "core/db.h"
#include "core/index.h"
#include "util/counters.h"
#include "util/random.h"

using namespace oir;

static std::string Key(uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "evt-%012llu", (unsigned long long)n);
  return buf;
}

struct ScanStats {
  uint64_t rows = 0;
  uint64_t pages = 0;
  uint64_t read_ops = 0;
};

static ScanStats TimedRangeScan(Db* db, uint64_t start, uint64_t count) {
  // Cold cache so page counts translate to disk reads, as in Section 6.1.
  // A flush failure only means a warmer cache than intended.
  (void)db->buffer_manager()->FlushAll();
  db->buffer_manager()->DropAll();
  auto before = GlobalCounters::Get().Snapshot();
  auto txn = db->BeginTxn();
  auto cur = db->index()->NewCursor(txn.get());
  ScanStats out;
  (void)cur->Seek(Key(start));  // an invalid cursor scans zero rows
  while (cur->Valid() && out.rows < count) {
    ++out.rows;
    (void)cur->Next();  // Valid() gates the next iteration
  }
  (void)db->Commit(txn.get());  // read-only transaction
  out.pages = cur->pages_visited();
  out.read_ops = (GlobalCounters::Get().Snapshot() - before).io_read_ops;
  return out;
}

int main() {
  DbOptions options;
  options.buffer_pool_pages = 1 << 15;
  std::unique_ptr<Db> db;
  if (!Db::Open(options, &db).ok()) return 1;

  // Random-order inserts -> declustered leaves; then delete half.
  constexpr uint64_t kN = 80000;
  std::vector<uint64_t> ids(kN);
  for (uint64_t i = 0; i < kN; ++i) ids[i] = i;
  Random rnd(11);
  for (size_t i = ids.size(); i > 1; --i) {
    std::swap(ids[i - 1], ids[rnd.Uniform(i)]);
  }
  {
    auto txn = db->BeginTxn();
    for (uint64_t id : ids) {
      if (!db->index()->Insert(txn.get(), Key(id), id).ok()) return 1;
    }
    if (!db->Commit(txn.get()).ok()) return 1;
    txn = db->BeginTxn();
    for (uint64_t i = 0; i < kN; i += 2) {
      if (!db->index()->Delete(txn.get(), Key(i), i).ok()) return 1;
    }
    if (!db->Commit(txn.get()).ok()) return 1;
  }

  TreeStats stats;
  if (!db->tree()->Validate(&stats).ok()) return 1;
  std::printf("declustered index: %llu leaf pages, %.0f%% utilized, "
              "%.2f sequential runs per page\n",
              (unsigned long long)stats.num_leaf_pages,
              stats.LeafUtilization() * 100,
              (double)stats.leaf_seq_runs / stats.num_leaf_pages);

  ScanStats before = TimedRangeScan(db.get(), kN / 4, 10000);
  std::printf("range scan of 10k rows BEFORE rebuild: %llu leaf pages, "
              "%llu disk reads\n",
              (unsigned long long)before.pages,
              (unsigned long long)before.read_ops);

  RebuildOptions opts;
  RebuildResult res;
  if (!db->index()->RebuildOnline(opts, &res).ok()) return 1;

  if (!db->tree()->Validate(&stats).ok()) return 1;
  std::printf("rebuilt index:     %llu leaf pages, %.0f%% utilized, "
              "%.2f sequential runs per page\n",
              (unsigned long long)stats.num_leaf_pages,
              stats.LeafUtilization() * 100,
              (double)stats.leaf_seq_runs / stats.num_leaf_pages);

  ScanStats after = TimedRangeScan(db.get(), kN / 4, 10000);
  std::printf("range scan of 10k rows AFTER rebuild:  %llu leaf pages, "
              "%llu disk reads\n",
              (unsigned long long)after.pages,
              (unsigned long long)after.read_ops);
  std::printf("-> %.1fx fewer pages touched\n",
              (double)before.pages / after.pages);
  return 0;
}
