// Quickstart: create an index, insert rows, look them up, scan a range,
// and run an online rebuild — the minimal tour of the public API.

#include <cstdio>

#include "core/db.h"
#include "core/index.h"

using namespace oir;  // examples only; library code never does this

int main() {
  // 1. Open a fresh in-memory database (2 KB pages, like the paper).
  DbOptions options;
  options.page_size = 2048;
  options.buffer_pool_pages = 4096;
  std::unique_ptr<Db> db;
  Status s = Db::Open(options, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 2. Insert some rows inside a transaction. A secondary-index entry is a
  //    (key value, ROWID) pair.
  {
    auto txn = db->BeginTxn();
    for (uint64_t i = 0; i < 10000; ++i) {
      char key[32];
      std::snprintf(key, sizeof(key), "user-%08llu",
                    (unsigned long long)(i * 7 % 10000));
      s = db->index()->Insert(txn.get(), key, /*rowid=*/i);
      if (!s.ok()) {
        std::fprintf(stderr, "insert failed: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    s = db->Commit(txn.get());
    if (!s.ok()) return 1;
  }

  // 3. Point lookup.
  {
    auto txn = db->BeginTxn();
    bool found = false;
    s = db->index()->Lookup(txn.get(), "user-00000007", 1, &found);
    std::printf("lookup(user-00000007, rowid 1): %s\n",
                found ? "found" : "not found");
    if (!db->Commit(txn.get()).ok()) return 1;
  }

  // 4. Range scan: first five keys at or after "user-00005000".
  {
    auto txn = db->BeginTxn();
    auto cursor = db->index()->NewCursor(txn.get());
    s = cursor->Seek("user-00005000");
    std::printf("range scan from user-00005000:\n");
    for (int i = 0; i < 5 && cursor->Valid(); ++i) {
      std::printf("  %.*s -> rowid %llu\n",
                  (int)cursor->user_key().size(), cursor->user_key().data(),
                  (unsigned long long)cursor->rid());
      (void)cursor->Next();  // Valid() gates the next iteration
    }
    if (!db->Commit(txn.get()).ok()) return 1;
  }

  // 5. Check the tree's health and utilization, then rebuild it online.
  TreeStats before;
  if (!db->tree()->Validate(&before).ok()) return 1;
  std::printf("before rebuild: %llu leaf pages, %.0f%% utilized, height %u\n",
              (unsigned long long)before.num_leaf_pages,
              before.LeafUtilization() * 100, before.height);

  RebuildOptions rebuild_options;       // ntasize 32, xactsize 256 — the
  RebuildResult result;                 // paper's recommended settings
  s = db->index()->RebuildOnline(rebuild_options, &result);
  if (!s.ok()) {
    std::fprintf(stderr, "rebuild failed: %s\n", s.ToString().c_str());
    return 1;
  }

  TreeStats after;
  if (!db->tree()->Validate(&after).ok()) return 1;
  std::printf("after rebuild:  %llu leaf pages, %.0f%% utilized, height %u\n",
              (unsigned long long)after.num_leaf_pages,
              after.LeafUtilization() * 100, after.height);
  std::printf("rebuild moved %llu keys in %llu top actions across %llu "
              "transactions,\nlogging %llu bytes (no key contents — "
              "position-only keycopy records)\n",
              (unsigned long long)result.keys_moved,
              (unsigned long long)result.top_actions,
              (unsigned long long)result.transactions,
              (unsigned long long)result.log_bytes);
  return 0;
}
