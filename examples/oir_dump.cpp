// oir_dump — inspect a persisted database, in the spirit of LevelDB's
// `ldb`. Opens the data + log files read-compatibly (running restart
// recovery first, like any open), then prints what was asked:
//
//   oir_dump <base-path> tree          tree structure (summarized leaves)
//   oir_dump <base-path> tree --rows   ... with every leaf row
//   oir_dump <base-path> stats         page/space/utilization statistics
//   oir_dump <base-path> json          full stats snapshot as one JSON doc
//   oir_dump <base-path> log [N]       the last N log records (default 50)
//   oir_dump <base-path> pages         per-state page counts
//
// <base-path> is the prefix used when the database was created with
// file_path = <base>.db and log_path = <base>.log. With no arguments, the
// tool creates a small demo database in /tmp and dumps it, so it is
// runnable out of the box.

#include <cstdio>
#include <cstring>
#include <string>

#include "core/db.h"
#include "core/index.h"

using namespace oir;

namespace {

int DumpTree(Db* db, bool rows) {
  std::string out;
  Status s = db->tree()->Dump(&out, rows);
  if (!s.ok()) {
    std::fprintf(stderr, "dump failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::fputs(out.c_str(), stdout);
  return 0;
}

int DumpStats(Db* db) {
  TreeStats stats;
  Status s = db->tree()->Validate(&stats);
  std::printf("validation: %s\n", s.ToString().c_str());
  if (!s.ok()) return 1;
  std::printf("height:              %u\n", stats.height);
  std::printf("keys:                %llu\n",
              (unsigned long long)stats.num_keys);
  std::printf("leaf pages:          %llu\n",
              (unsigned long long)stats.num_leaf_pages);
  std::printf("non-leaf pages:      %llu\n",
              (unsigned long long)stats.num_nonleaf_pages);
  std::printf("leaf utilization:    %.1f%%\n",
              stats.LeafUtilization() * 100);
  std::printf("avg non-leaf row:    %.1f bytes\n",
              stats.AvgNonLeafRowBytes());
  std::printf("leaf seq runs:       %llu (%.3f per page; lower = more "
              "clustered)\n",
              (unsigned long long)stats.leaf_seq_runs,
              stats.num_leaf_pages == 0
                  ? 0.0
                  : (double)stats.leaf_seq_runs / stats.num_leaf_pages);
  std::printf("log bytes retained:  %llu (head lsn %llu, tail lsn %llu)\n",
              (unsigned long long)(db->log_manager()->tail_lsn() -
                                   db->log_manager()->head_lsn()),
              (unsigned long long)db->log_manager()->head_lsn(),
              (unsigned long long)db->log_manager()->tail_lsn());
  return 0;
}

int DumpPages(Db* db) {
  auto* space = db->space_manager();
  std::printf("allocated:    %llu\n",
              (unsigned long long)space->CountInState(PageState::kAllocated));
  std::printf("deallocated:  %llu\n",
              (unsigned long long)
                  space->CountInState(PageState::kDeallocated));
  std::printf("free:         %llu\n",
              (unsigned long long)space->CountInState(PageState::kFree));
  std::printf("high water:   page %u\n", space->end_page());
  std::printf("device size:  %u pages x %u bytes\n", db->disk()->NumPages(),
              db->options().page_size);
  return 0;
}

int DumpLog(Db* db, int limit) {
  // Collect the last `limit` records.
  std::vector<std::pair<Lsn, LogRecord>> records;
  for (auto it = db->log_manager()->Scan(db->log_manager()->head_lsn());
       it.Valid(); it.Next()) {
    records.emplace_back(it.lsn(), it.record());
  }
  size_t start = records.size() > static_cast<size_t>(limit)
                     ? records.size() - limit
                     : 0;
  for (size_t i = start; i < records.size(); ++i) {
    const LogRecord& r = records[i].second;
    std::printf("lsn %8llu  txn %4llu  %-12s page=%u",
                (unsigned long long)records[i].first,
                (unsigned long long)r.txn_id, LogTypeName(r.type), r.page_id);
    if (r.is_clr) std::printf("  CLR undo_next=%llu",
                              (unsigned long long)r.undo_next);
    if (!r.rows.empty()) std::printf("  rows=%zu", r.rows.size());
    if (!r.copies.empty()) std::printf("  copies=%zu", r.copies.size());
    if (!r.pages.empty()) std::printf("  pages=%zu", r.pages.size());
    std::printf("\n");
  }
  std::printf("(%zu records total, showing last %zu)\n", records.size(),
              records.size() - start);
  return 0;
}

int MakeDemo(std::string* base) {
  *base = "/tmp/oir_dump_demo";
  DbOptions opts;
  opts.use_file_disk = true;
  opts.file_path = *base + ".db";
  opts.log_path = *base + ".log";
  std::remove(opts.file_path.c_str());
  std::remove(opts.log_path.c_str());
  std::remove((opts.log_path + ".master").c_str());
  std::unique_ptr<Db> db;
  if (!Db::Open(opts, &db).ok()) return 1;
  auto txn = db->BeginTxn();
  for (uint64_t i = 0; i < 500; ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "item-%06llu", (unsigned long long)i);
    if (!db->index()->Insert(txn.get(), key, i).ok()) return 1;
  }
  if (!db->Commit(txn.get()).ok()) return 1;
  RebuildResult res;
  if (!db->index()->RebuildOnline(RebuildOptions(), &res).ok()) return 1;
  if (!db->Checkpoint().ok()) return 1;
  std::printf("(no arguments: created a demo database at %s.{db,log})\n\n",
              base->c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string base;
  std::string cmd = "stats";
  bool rows = false;
  int limit = 50;
  if (argc < 2) {
    if (MakeDemo(&base) != 0) return 1;
  } else {
    base = argv[1];
    if (argc >= 3) cmd = argv[2];
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--rows") == 0) rows = true;
      else limit = std::atoi(argv[i]);
    }
  }

  DbOptions opts;
  opts.use_file_disk = true;
  opts.file_path = base + ".db";
  opts.log_path = base + ".log";
  std::unique_ptr<Db> db;
  RecoveryStats rstats;
  Status s = Db::OpenExisting(opts, &db, &rstats);
  if (!s.ok()) {
    std::fprintf(stderr, "open %s failed: %s\n", base.c_str(),
                 s.ToString().c_str());
    return 1;
  }
  std::printf("opened %s (recovery: %s)\n\n", base.c_str(),
              rstats.ToString().c_str());

  if (cmd == "tree") return DumpTree(db.get(), rows);
  if (cmd == "stats") return DumpStats(db.get());
  if (cmd == "json") {
    std::printf("%s\n", db->DumpStatsJson().c_str());
    return 0;
  }
  if (cmd == "pages") return DumpPages(db.get());
  if (cmd == "log") return DumpLog(db.get(), limit);
  std::fprintf(stderr, "unknown command '%s' (tree|stats|json|pages|log)\n",
               cmd.c_str());
  return 2;
}
