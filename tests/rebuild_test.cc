// Online index rebuild tests (Sections 3-5): content preservation,
// fillfactor, clustering, page lifecycle, propagation entries, level-1
// reorganization, ntasize/xactsize behaviour, and the exact Figure 2
// worked example.

#include "core/rebuild.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "core/db.h"
#include "core/index.h"
#include "obs/waitstate.h"
#include "testing/crash_point.h"
#include "testing/oracle.h"
#include "tests/test_util.h"
#include "wal/log_manager.h"

namespace oir {
namespace {

using test::MakeDb;
using test::NumKey;

// End-state oracle: beyond Validate(), checks that the space map agrees
// with the tree, no page is stuck in the deallocated state and no SPLIT/
// SHRINK/OLDPGOFSPLIT bit survived the rebuild.
void ExpectInvariants(Db* db) {
  Status s = fault::CheckInvariants(db->tree(), db->space_manager(),
                                    db->buffer_manager());
  EXPECT_TRUE(s.ok()) << s.ToString();
}

// Builds a ~50%-utilized declustered index: insert 2*n keys sequentially,
// then delete every other one (the paper's Table 1 setup: "space
// utilization in the index being rebuilt is about 50%").
void BuildHalfFullIndex(Db* db, uint64_t n) {
  std::vector<uint64_t> all;
  for (uint64_t i = 0; i < 2 * n; ++i) all.push_back(i);
  test::InsertMany(db, all);
  std::vector<uint64_t> odd;
  for (uint64_t i = 1; i < 2 * n; i += 2) odd.push_back(i);
  test::DeleteMany(db, odd);
}

std::set<uint64_t> EvenIds(uint64_t n) {
  std::set<uint64_t> s;
  for (uint64_t i = 0; i < 2 * n; i += 2) s.insert(i);
  return s;
}

TEST(RebuildTest, PreservesContentSmall) {
  auto db = MakeDb();
  BuildHalfFullIndex(db.get(), 200);
  RebuildOptions opts;
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(opts, &res));
  test::ExpectTreeContains(db.get(), EvenIds(200));
  EXPECT_GT(res.top_actions, 0u);
  EXPECT_GT(res.keys_moved, 0u);
  ExpectInvariants(db.get());
}

TEST(RebuildTest, PreservesContentLarge) {
  auto db = MakeDb();
  BuildHalfFullIndex(db.get(), 3000);
  RebuildOptions opts;
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(opts, &res));
  test::ExpectTreeContains(db.get(), EvenIds(3000));
  ExpectInvariants(db.get());
}

TEST(RebuildTest, RestoresSpaceUtilization) {
  auto db = MakeDb();
  BuildHalfFullIndex(db.get(), 2000);
  TreeStats before;
  ASSERT_OK(db->tree()->Validate(&before));
  EXPECT_LT(before.LeafUtilization(), 0.62);  // ~half full
  RebuildOptions opts;
  opts.fillfactor = 100;
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(opts, &res));
  TreeStats after;
  ASSERT_OK(db->tree()->Validate(&after));
  EXPECT_GT(after.LeafUtilization(), 0.9);
  EXPECT_LT(after.num_leaf_pages, before.num_leaf_pages * 6 / 10);
  ExpectInvariants(db.get());
}

TEST(RebuildTest, RestoresClustering) {
  auto db = MakeDb();
  // Random insert order declusters the leaf pages badly.
  const uint64_t seed = test::TestSeed(5);
  OIR_SCOPED_SEED_TRACE(seed);
  Random rnd(seed);
  std::set<uint64_t> ids;
  while (ids.size() < 4000) ids.insert(rnd.Uniform(1000000));
  std::vector<uint64_t> shuffled(ids.begin(), ids.end());
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rnd.Uniform(i)]);
  }
  test::InsertMany(db.get(), shuffled);
  TreeStats before;
  ASSERT_OK(db->tree()->Validate(&before));
  double before_ratio = static_cast<double>(before.leaf_seq_runs) /
                        before.num_leaf_pages;
  EXPECT_GT(before_ratio, 0.3);  // badly declustered

  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(RebuildOptions(), &res));
  TreeStats after;
  ASSERT_OK(db->tree()->Validate(&after));
  double after_ratio = static_cast<double>(after.leaf_seq_runs) /
                       after.num_leaf_pages;
  EXPECT_LT(after_ratio, 0.15);  // chunk allocation restored key order
  test::ExpectTreeContains(db.get(), ids);
  ExpectInvariants(db.get());
}

TEST(RebuildTest, FillfactorLeavesHeadroom) {
  auto db = MakeDb();
  BuildHalfFullIndex(db.get(), 1500);
  RebuildOptions opts;
  opts.fillfactor = 70;
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(opts, &res));
  TreeStats stats;
  ASSERT_OK(db->tree()->Validate(&stats));
  EXPECT_GT(stats.LeafUtilization(), 0.55);
  EXPECT_LT(stats.LeafUtilization(), 0.78);
  test::ExpectTreeContains(db.get(), EvenIds(1500));
  ExpectInvariants(db.get());
}

TEST(RebuildTest, OldPagesAreFreedNewPagesAllocated) {
  auto db = MakeDb();
  BuildHalfFullIndex(db.get(), 1000);
  TreeStats before;
  ASSERT_OK(db->tree()->Validate(&before));
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(RebuildOptions(), &res));
  // Every old leaf was deallocated and freed; nothing is left in the
  // deallocated state after the rebuild commits.
  EXPECT_EQ(db->space_manager()->CountInState(PageState::kDeallocated), 0u);
  EXPECT_EQ(res.old_leaf_pages, before.num_leaf_pages);
  TreeStats after;
  ASSERT_OK(db->tree()->Validate(&after));
  EXPECT_EQ(res.new_leaf_pages, after.num_leaf_pages);
  // Allocated pages (tree pages) match what the validator found.
  EXPECT_EQ(db->space_manager()->CountInState(PageState::kAllocated),
            after.num_leaf_pages + after.num_nonleaf_pages);
  ExpectInvariants(db.get());
}

TEST(RebuildTest, EmptyIndexIsANoop) {
  auto db = MakeDb();
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(RebuildOptions(), &res));
  EXPECT_EQ(res.keys_moved, 0u);
  test::ExpectTreeContains(db.get(), {});
  ExpectInvariants(db.get());
}

TEST(RebuildTest, SingleLeafRootRebuilt) {
  auto db = MakeDb();
  test::InsertMany(db.get(), {1, 2, 3, 4, 5});
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(RebuildOptions(), &res));
  EXPECT_EQ(res.keys_moved, 5u);
  test::ExpectTreeContains(db.get(), {1, 2, 3, 4, 5});
  ExpectInvariants(db.get());
}

TEST(RebuildTest, RepeatedRebuildIsIdempotent) {
  auto db = MakeDb();
  BuildHalfFullIndex(db.get(), 800);
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(RebuildOptions(), &res));
  TreeStats first;
  ASSERT_OK(db->tree()->Validate(&first));
  ASSERT_OK(db->index()->RebuildOnline(RebuildOptions(), &res));
  TreeStats second;
  ASSERT_OK(db->tree()->Validate(&second));
  EXPECT_EQ(first.num_keys, second.num_keys);
  // A rebuild of an already-packed index does not grow it.
  EXPECT_LE(second.num_leaf_pages, first.num_leaf_pages + 1);
  test::ExpectTreeContains(db.get(), EvenIds(800));
  ExpectInvariants(db.get());
}

TEST(RebuildTest, NtasizeOneWorks) {
  auto db = MakeDb();
  BuildHalfFullIndex(db.get(), 500);
  RebuildOptions opts;
  opts.ntasize = 1;
  opts.xactsize = 64;
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(opts, &res));
  test::ExpectTreeContains(db.get(), EvenIds(500));
  EXPECT_GE(res.top_actions, res.old_leaf_pages);
  ExpectInvariants(db.get());
}

TEST(RebuildTest, LargeNtasizeReducesLoggingAndLevel1Visits) {
  // The core claim of the paper (Section 4.3 / Table 1): batching multiple
  // pages per top action amortizes log overhead and level-1 page visits.
  RebuildResult small, large;
  {
    auto db = MakeDb();
    BuildHalfFullIndex(db.get(), 8000);
    RebuildOptions opts;
    opts.ntasize = 1;
    opts.xactsize = 256;
    ASSERT_OK(db->index()->RebuildOnline(opts, &small));
    ExpectInvariants(db.get());
  }
  {
    auto db = MakeDb();
    BuildHalfFullIndex(db.get(), 8000);
    RebuildOptions opts;
    opts.ntasize = 32;
    opts.xactsize = 256;
    ASSERT_OK(db->index()->RebuildOnline(opts, &large));
    ExpectInvariants(db.get());
  }
  EXPECT_LT(large.log_bytes * 2, small.log_bytes);
  EXPECT_LT(large.log_records * 2, small.log_records);
  EXPECT_LT(large.level1_visits * 2, small.level1_visits);
}

TEST(RebuildTest, LogFullKeysAblationLogsMore) {
  RebuildResult keycopy, fullkeys;
  {
    auto db = MakeDb();
    BuildHalfFullIndex(db.get(), 1500);
    RebuildOptions opts;
    ASSERT_OK(db->index()->RebuildOnline(opts, &keycopy));
    ExpectInvariants(db.get());
  }
  {
    auto db = MakeDb();
    BuildHalfFullIndex(db.get(), 1500);
    RebuildOptions opts;
    opts.log_full_keys = true;
    ASSERT_OK(db->index()->RebuildOnline(opts, &fullkeys));
    ExpectInvariants(db.get());
  }
  // Position-only keycopy logging avoids logging the key bytes themselves.
  EXPECT_LT(keycopy.log_bytes, fullkeys.log_bytes);
}

TEST(RebuildTest, Level1ReorgAblation) {
  // With the Section 5.5 enhancement, level-1 pages end up fuller (fewer
  // non-leaf pages) than without it.
  TreeStats with_reorg, without_reorg;
  {
    auto db = MakeDb();
    BuildHalfFullIndex(db.get(), 3000);
    RebuildOptions opts;
    opts.reorganize_level1 = true;
    RebuildResult res;
    ASSERT_OK(db->index()->RebuildOnline(opts, &res));
    ASSERT_OK(db->tree()->Validate(&with_reorg));
    test::ExpectTreeContains(db.get(), EvenIds(3000));
    ExpectInvariants(db.get());
  }
  {
    auto db = MakeDb();
    BuildHalfFullIndex(db.get(), 3000);
    RebuildOptions opts;
    opts.reorganize_level1 = false;
    RebuildResult res;
    ASSERT_OK(db->index()->RebuildOnline(opts, &res));
    ASSERT_OK(db->tree()->Validate(&without_reorg));
    test::ExpectTreeContains(db.get(), EvenIds(3000));
    ExpectInvariants(db.get());
  }
  EXPECT_LE(with_reorg.num_nonleaf_pages, without_reorg.num_nonleaf_pages);
}

TEST(RebuildTest, XactsizeControlsTransactionCount) {
  auto db = MakeDb();
  BuildHalfFullIndex(db.get(), 1000);
  TreeStats before;
  ASSERT_OK(db->tree()->Validate(&before));
  RebuildOptions opts;
  opts.ntasize = 8;
  opts.xactsize = 32;
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(opts, &res));
  // ceil(old_pages / xactsize) transactions plus the final empty one.
  uint64_t expect_min = before.num_leaf_pages / opts.xactsize;
  EXPECT_GE(res.transactions, expect_min);
  ExpectInvariants(db.get());
}

TEST(RebuildTest, InvalidOptionsRejected) {
  auto db = MakeDb();
  RebuildResult res;
  RebuildOptions bad;
  bad.ntasize = 0;
  EXPECT_TRUE(db->index()->RebuildOnline(bad, &res).IsInvalidArgument());
  bad = RebuildOptions();
  bad.fillfactor = 20;
  EXPECT_TRUE(db->index()->RebuildOnline(bad, &res).IsInvalidArgument());
  bad = RebuildOptions();
  bad.xactsize = 4;
  bad.ntasize = 32;
  EXPECT_TRUE(db->index()->RebuildOnline(bad, &res).IsInvalidArgument());
}

TEST(RebuildTest, WideKeysRebuild) {
  auto db = MakeDb();
  auto txn = db->BeginTxn();
  for (uint64_t i = 0; i < 2000; ++i) {
    std::string key = NumKey(i * 2, 12) + std::string(28, 'w');
    ASSERT_OK(db->index()->Insert(txn.get(), key, i * 2));
  }
  ASSERT_OK(db->Commit(txn.get()));
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(RebuildOptions(), &res));
  TreeStats stats;
  ASSERT_OK(db->tree()->Validate(&stats));
  EXPECT_EQ(stats.num_keys, 2000u);
  EXPECT_GT(stats.LeafUtilization(), 0.85);
  ExpectInvariants(db.get());
}

TEST(RebuildTest, DeepTreeRebuild) {
  // Regression: with height >= 4, the propagation's retraversal resumes
  // from remembered non-root pages. The paper's safety rule (search key
  // within the page's key range) is what keeps those resumes correct after
  // earlier top actions split upper-level pages; an identity-only check
  // once routed a traversal into the wrong subtree here.
  auto db = MakeDb(/*page_size=*/512);
  BuildHalfFullIndex(db.get(), 12000);
  TreeStats before;
  ASSERT_OK(db->tree()->Validate(&before));
  ASSERT_GE(before.height, 4u);
  RebuildOptions opts;
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(opts, &res));
  test::ExpectTreeContains(db.get(), EvenIds(12000));
  ExpectInvariants(db.get());
}

// ------------------------------------------------------ resume + throttle

// Counts the rebuild transactions a full, uninterrupted rebuild takes on
// an identically-built index (the "from zero" baseline for resume tests).
uint64_t FullRebuildTxns(uint64_t n, const RebuildOptions& opts) {
  auto db = MakeDb();
  BuildHalfFullIndex(db.get(), n);
  RebuildResult res;
  Status s = db->index()->RebuildOnline(opts, &res);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return res.transactions;
}

RebuildOptions SmallTxnOptions() {
  RebuildOptions opts;
  opts.ntasize = 4;
  opts.xactsize = 8;
  opts.io_pages = 2;
  return opts;
}

TEST(RebuildResumeTest, CrashMidRebuildResumesFromDurableCursor) {
  const uint64_t kN = 2400;
  RebuildOptions opts = SmallTxnOptions();
  const uint64_t full_txns = FullRebuildTxns(kN, opts);
  ASSERT_GE(full_txns, 5u);  // enough transactions to crash in the middle

  auto db = MakeDb();
  BuildHalfFullIndex(db.get(), kN);

  // Fail the WAL flush at the third rebuild commit: transactions 1 and 2
  // commit durably (each followed by a flushed progress record); the third
  // dies mid-commit, exactly like a power cut there.
  auto& reg = fault::CrashPointRegistry::Get();
  fault::CrashPointRegistry::SetEnabled(true);
  reg.ResetCounts();
  LogManager* log = db->log_manager();
  reg.Arm("rebuild.txn.commit", /*hit_index=*/2,
          [log] { log->SetFailFlushes(true); });
  RebuildResult crashed;
  Status s = db->index()->RebuildOnline(opts, &crashed);
  EXPECT_FALSE(s.ok());  // the rebuild died at the injected fault
  EXPECT_TRUE(reg.triggered());
  reg.Disarm();
  fault::CrashPointRegistry::SetEnabled(false);
  log->SetFailFlushes(false);

  RecoveryStats rs;
  ASSERT_OK(db->CrashAndRecover(&rs));

  // Recovery re-armed the rebuild from the last durable progress record —
  // two committed transactions, cursor present — instead of from zero.
  // (Copied, not referenced: ResumeRebuild clears the pending state.)
  ASSERT_TRUE(db->has_pending_rebuild());
  const RebuildProgressInfo p = db->pending_rebuild().progress;
  EXPECT_TRUE(p.has_cursor);
  EXPECT_FALSE(p.cursor.empty());
  EXPECT_EQ(p.transactions, 2u);
  EXPECT_GT(p.leaves_rebuilt, 0u);

  RebuildResult resumed;
  ASSERT_OK(db->ResumeRebuild(opts, &resumed));
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.resume_cursor, p.cursor);
  EXPECT_GT(resumed.transactions, 0u);
  // Strictly less work than a from-zero rebuild: the two committed
  // transactions were not redone.
  EXPECT_LT(resumed.transactions, full_txns);
  EXPECT_FALSE(db->has_pending_rebuild());

  test::ExpectTreeContains(db.get(), EvenIds(kN));
  ExpectInvariants(db.get());
}

TEST(RebuildResumeTest, CompletedRebuildLeavesNothingPending) {
  auto db = MakeDb();
  BuildHalfFullIndex(db.get(), 400);
  RebuildOptions opts = SmallTxnOptions();
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(opts, &res));
  EXPECT_GT(res.progress_records, res.transactions);  // begin + per-txn + done

  // The done record survives the crash, so recovery arms nothing.
  RecoveryStats rs;
  ASSERT_OK(db->CrashAndRecover(&rs));
  EXPECT_FALSE(db->has_pending_rebuild());
  RebuildResult resumed;
  EXPECT_TRUE(db->ResumeRebuild(opts, &resumed).IsInvalidArgument());
  test::ExpectTreeContains(db.get(), EvenIds(400));
  ExpectInvariants(db.get());
}

TEST(RebuildResumeTest, ProgressLoggingAblationWritesNoRecords) {
  auto db = MakeDb();
  BuildHalfFullIndex(db.get(), 400);
  RebuildOptions opts = SmallTxnOptions();
  opts.progress_interval_txns = 0;  // pre-resume behavior
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(opts, &res));
  EXPECT_EQ(res.progress_records, 0u);
  RecoveryStats rs;
  ASSERT_OK(db->CrashAndRecover(&rs));
  EXPECT_FALSE(db->has_pending_rebuild());
  test::ExpectTreeContains(db.get(), EvenIds(400));
}

TEST(RebuildResumeTest, CheckpointCarriesResumePointAcrossTruncation) {
  const uint64_t kN = 1200;
  RebuildOptions opts = SmallTxnOptions();
  auto db = MakeDb();
  BuildHalfFullIndex(db.get(), kN);

  auto& reg = fault::CrashPointRegistry::Get();
  fault::CrashPointRegistry::SetEnabled(true);
  reg.ResetCounts();
  LogManager* log = db->log_manager();
  reg.Arm("rebuild.txn.commit", /*hit_index=*/2,
          [log] { log->SetFailFlushes(true); });
  RebuildResult crashed;
  EXPECT_FALSE(db->index()->RebuildOnline(opts, &crashed).ok());
  reg.Disarm();
  fault::CrashPointRegistry::SetEnabled(false);
  log->SetFailFlushes(false);

  RecoveryStats rs;
  ASSERT_OK(db->CrashAndRecover(&rs));
  ASSERT_TRUE(db->has_pending_rebuild());
  const std::string cursor = db->pending_rebuild().progress.cursor;

  // Checkpoint + truncate discards the log prefix holding the progress
  // records; the checkpoint's embedded copy (fed from the journal, which
  // recovery re-armed) must keep the resume point alive across another
  // restart.
  ASSERT_OK(db->CheckpointAndTruncate());
  ASSERT_OK(db->CrashAndRecover(&rs));
  ASSERT_TRUE(db->has_pending_rebuild());
  EXPECT_TRUE(db->pending_rebuild().progress.has_cursor);
  EXPECT_EQ(db->pending_rebuild().progress.cursor, cursor);
  EXPECT_EQ(db->pending_rebuild().progress.transactions, 2u);

  RebuildResult resumed;
  ASSERT_OK(db->ResumeRebuild(opts, &resumed));
  EXPECT_TRUE(resumed.resumed);
  test::ExpectTreeContains(db.get(), EvenIds(kN));
  ExpectInvariants(db.get());
}

// Satellite regression: a long-running scan opened before the rebuild must
// keep returning the correct remainder afterwards. The read-committed
// cursor repositions by key when its page is rebuilt away; a bug here
// would surface as skipped or duplicated rows after the cursor's leaf was
// deallocated mid-scan.
TEST(RebuildTest, LongRunningScanSurvivesRebuild) {
  const uint64_t kN = 1500;
  auto db = MakeDb();
  BuildHalfFullIndex(db.get(), kN);
  const std::set<uint64_t> ids = EvenIds(kN);

  auto txn = db->BeginTxn();
  auto cur = db->index()->NewCursor(txn.get());
  ASSERT_OK(cur->SeekToFirst());
  std::vector<std::pair<std::string, RowId>> seen;
  for (size_t i = 0; i < ids.size() / 2; ++i) {
    ASSERT_TRUE(cur->Valid());
    seen.emplace_back(cur->user_key().ToString(), cur->rid());
    ASSERT_OK(cur->Next());
  }
  ASSERT_TRUE(cur->Valid());

  // Rebuild everything out from under the paused scan.
  RebuildOptions opts = SmallTxnOptions();
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(opts, &res));
  EXPECT_GT(res.top_actions, 0u);

  while (cur->Valid()) {
    seen.emplace_back(cur->user_key().ToString(), cur->rid());
    ASSERT_OK(cur->Next());
  }
  ASSERT_OK(db->Commit(txn.get()));

  // Exactly every row, in order, no skips or duplicates.
  ASSERT_EQ(seen.size(), ids.size());
  size_t i = 0;
  for (uint64_t id : ids) {
    EXPECT_EQ(seen[i].first, NumKey(id)) << "at " << i;
    EXPECT_EQ(seen[i].second, id) << "at " << i;
    ++i;
  }
  ExpectInvariants(db.get());
}

// Satellite soak: an aggressively-throttled rebuild under live foreground
// traffic must (a) still complete, (b) actually engage the admission
// controller, (c) attribute its pauses as throttled time in the wait
// profile, and (d) leave foreground p99 within a generous sanity bound
// (the strict 10%-degradation claim is measured by bench_resume_throttle;
// this test only guards against outright starvation). Seeded via
// OIR_TEST_SEED.
TEST(RebuildThrottleTest, ThrottledSoakCompletesAndAttributesPauses) {
  const uint64_t seed = test::TestSeed(17);
  OIR_SCOPED_SEED_TRACE(seed);
  const uint64_t kN = 2500;
  auto db = MakeDb();
  BuildHalfFullIndex(db.get(), kN);

  obs::WaitProfiler::Reset();
  obs::WaitProfiler::SetEnabled(true);

  // Foreground: seeded point lookups until the rebuild completes.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> fg_ops{0};
  // One long read transaction: a per-batch commit would park the thread in
  // the group-commit wait, leaving whole throttle sample intervals with no
  // recorded foreground ops. Lookup's table lock is instant-duration, so
  // nothing accumulates on the transaction.
  std::thread fg([&] {
    Random rnd(seed);
    auto txn = db->BeginTxn();
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t id = 2 * rnd.Uniform(kN);
      bool found = false;
      Status s = db->index()->Lookup(txn.get(), NumKey(id), id, &found);
      EXPECT_TRUE(s.ok()) << s.ToString();
      fg_ops.fetch_add(1, std::memory_order_relaxed);
    }
    EXPECT_OK(db->Commit(txn.get()));
  });
  // The rebuild of a small in-memory index can finish in well under a
  // millisecond; without this barrier its throttle samples could all land
  // before the foreground thread ever records an op, and the controller
  // would (correctly) never engage. Real rebuilds run for minutes — the
  // race is an artifact of the test's scale.
  while (fg_ops.load(std::memory_order_relaxed) < 64) {
    std::this_thread::yield();
  }

  RebuildOptions opts = SmallTxnOptions();
  // Aggressive knob: a 1 ns baseline means any measured foreground latency
  // is over the 10% budget, so the controller must back off deterministically
  // whenever the sampled interval saw foreground traffic.
  opts.max_foreground_degradation_pct = 10;
  opts.throttle_baseline_ns = 1;
  RebuildResult res;
  Status s = db->index()->RebuildOnline(opts, &res);
  stop.store(true, std::memory_order_relaxed);
  fg.join();
  ASSERT_OK(s);

  // The rebuild completed despite the throttle...
  test::ExpectTreeContains(db.get(), EvenIds(kN));
  ExpectInvariants(db.get());
  // ...and the controller actually paced it.
  EXPECT_GT(res.throttle_pauses, 0u);
  EXPECT_GT(res.throttle_pause_us, 0u);

  // Attribution: the rebuild op breakdown carries throttled time, and the
  // stats export surfaces it under wait_profile.
  bool saw_rebuild = false;
  double read_p99 = 0.0;
  for (const auto& b : obs::WaitProfiler::TakeSnapshot()) {
    if (b.type == obs::OpType::kRebuild) {
      saw_rebuild = true;
      EXPECT_GT(
          b.state_ns[static_cast<size_t>(obs::WaitState::kThrottled)], 0u);
    }
    if (b.type == obs::OpType::kRead) read_p99 = b.p99;
  }
  EXPECT_TRUE(saw_rebuild);
  // Starvation guard: in-memory lookups must stay far under this even with
  // the rebuild running; the bound is deliberately loose for CI noise.
  EXPECT_GT(read_p99, 0.0);
  EXPECT_LT(read_p99, 250.0 * 1000 * 1000);  // 250 ms
  std::string json = db->DumpStatsJson();
  EXPECT_NE(json.find("\"wait_profile\""), std::string::npos);
  EXPECT_NE(json.find("\"throttled\""), std::string::npos);

  obs::WaitProfiler::SetEnabled(false);
  obs::WaitProfiler::Reset();
}

TEST(RebuildThrottleTest, DisabledKnobNeverPauses) {
  auto db = MakeDb();
  BuildHalfFullIndex(db.get(), 400);
  RebuildOptions opts = SmallTxnOptions();  // degradation knob left at 0
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(opts, &res));
  EXPECT_EQ(res.throttle_pauses, 0u);
  EXPECT_EQ(res.throttle_pause_us, 0u);
}

// --------------------------------------------------------------- Figure 2

// The worked example of the paper: five rows fit on a leaf page; leaves
// PP=[07,09], P1=[10,11,15], P2=[20,21,22], P3=[25,26], NP=[30,35]; level-1
// pages L (parent of PP) and P (parent of P1,P2,P3); root holds [15->P,
// 30->...]. After rebuilding P1,P2,P3: PP=[07,09,10,11,15],
// N1=[20,21,22,25,26]; the entry [22->N1] is inserted into L (level-1
// reorganization); P is deleted; the root loses its entry for P.
//
// We reproduce the *shape* with our page format: compute how many rows fit
// and build the equivalent structure via the public API, then check the
// same outcomes: one new leaf, PP absorbed the head rows, parent P is gone,
// and L received the new entry.
TEST(RebuildFigure2Test, WorkedExample) {
  // Use a small page so a handful of rows fill a leaf, like the figure.
  auto db = MakeDb(/*page_size=*/512);
  const uint32_t cap = 512 - kPageHeaderSize;
  const uint32_t row = 20 /*key*/ + 8 /*rid*/ + kSlotSize;
  const uint32_t rows_per_leaf = cap / row;  // "five rows fit into a page"
  ASSERT_GE(rows_per_leaf, 4u);

  // Build: fill many leaves completely, then delete from the middle ones to
  // create the figure's half-full P1..P3 between full neighbors.
  auto txn = db->BeginTxn();
  const uint64_t total = rows_per_leaf * 12;
  for (uint64_t i = 0; i < total; ++i) {
    ASSERT_OK(db->index()->Insert(txn.get(), NumKey(i, 20), i));
  }
  ASSERT_OK(db->Commit(txn.get()));
  TreeStats before;
  ASSERT_OK(db->tree()->Validate(&before));
  ASSERT_GE(before.height, 2u);

  // Delete ~half the rows of the middle range (declustering P1..P3).
  txn = db->BeginTxn();
  for (uint64_t i = rows_per_leaf; i < total - rows_per_leaf; i += 2) {
    ASSERT_OK(db->index()->Delete(txn.get(), NumKey(i, 20), i));
  }
  ASSERT_OK(db->Commit(txn.get()));
  ASSERT_OK(db->tree()->Validate(&before));

  RebuildOptions opts;
  opts.ntasize = 3;  // the figure rebuilds three pages per top action
  opts.reorganize_level1 = true;
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(opts, &res));

  TreeStats after;
  ASSERT_OK(db->tree()->Validate(&after));
  // Rebuild packs the surviving rows tightly: fewer leaves than before.
  EXPECT_LT(after.num_leaf_pages, before.num_leaf_pages);
  EXPECT_GT(after.LeafUtilization(), 0.85);
  // Content preserved.
  std::set<uint64_t> expect;
  for (uint64_t i = 0; i < total; ++i) {
    bool deleted = i >= rows_per_leaf && i < total - rows_per_leaf &&
                   (i - rows_per_leaf) % 2 == 0;
    if (!deleted) expect.insert(i);
  }
  auto rows_out = test::ScanAll(db.get());
  ASSERT_EQ(rows_out.size(), expect.size());
  size_t idx = 0;
  for (uint64_t id : expect) {
    EXPECT_EQ(rows_out[idx].second, id);
    ++idx;
  }
  ExpectInvariants(db.get());
}

// Direct unit check of the figure's propagation-entry rules (Section 5.2):
// a page whose keys all fit in already-open targets passes DELETE; a page
// that opens k new targets passes UPDATE + (k-1) INSERTs. We verify through
// observable structure: rebuilding with a tiny fill target forces multiple
// new pages per source page.
TEST(RebuildFigure2Test, UpdatePlusInsertEntriesFromOneSource) {
  auto db = MakeDb(/*page_size=*/2048);
  // One big full leaf splits into >= 2 fill-50% pages: its propagation must
  // have produced one UPDATE and >= 1 INSERT (observable as multiple new
  // leaves under the same parent, correctly ordered).
  auto txn = db->BeginTxn();
  for (uint64_t i = 0; i < 60; ++i) {
    ASSERT_OK(db->index()->Insert(txn.get(), NumKey(i, 24), i));
  }
  ASSERT_OK(db->Commit(txn.get()));
  RebuildOptions opts;
  opts.fillfactor = 50;
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(opts, &res));
  TreeStats stats;
  ASSERT_OK(db->tree()->Validate(&stats));
  EXPECT_EQ(stats.num_keys, 60u);
  EXPECT_GE(res.new_leaf_pages, res.old_leaf_pages);
  ExpectInvariants(db.get());
}

}  // namespace
}  // namespace oir
