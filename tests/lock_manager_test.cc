// Lock manager tests: S/X compatibility, re-entrancy, conditional and
// instant-duration requests, waiting, timeouts, and the address/logical
// lock namespaces.

#include "sync/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "sync/mutex.h"
#include "tests/test_util.h"
#include "util/counters.h"

namespace oir {
namespace {

TEST(LockManagerTest, SharedLocksAreCompatible) {
  LockManager lm;
  LockKey k = AddressLockKey(1);
  ASSERT_OK(lm.Lock(1, k, LockMode::kS, false));
  ASSERT_OK(lm.Lock(2, k, LockMode::kS, false));
  EXPECT_TRUE(lm.IsHeld(1, k, LockMode::kS));
  EXPECT_TRUE(lm.IsHeld(2, k, LockMode::kS));
  lm.Unlock(1, k);
  lm.Unlock(2, k);
  EXPECT_EQ(lm.NumLockedKeys(), 0u);
}

TEST(LockManagerTest, ExclusiveConflictsConditional) {
  LockManager lm;
  LockKey k = AddressLockKey(1);
  ASSERT_OK(lm.Lock(1, k, LockMode::kX, false));
  EXPECT_TRUE(lm.Lock(2, k, LockMode::kX, true).IsBusy());
  EXPECT_TRUE(lm.Lock(2, k, LockMode::kS, true).IsBusy());
  lm.Unlock(1, k);
  ASSERT_OK(lm.Lock(2, k, LockMode::kX, true));
  lm.Unlock(2, k);
}

TEST(LockManagerTest, ReentrantCounting) {
  LockManager lm;
  LockKey k = AddressLockKey(5);
  ASSERT_OK(lm.Lock(1, k, LockMode::kX, false));
  ASSERT_OK(lm.Lock(1, k, LockMode::kX, false));
  lm.Unlock(1, k);
  EXPECT_TRUE(lm.IsHeld(1, k, LockMode::kX));  // still held once
  lm.Unlock(1, k);
  EXPECT_FALSE(lm.IsHeld(1, k, LockMode::kX));
}

TEST(LockManagerTest, UpgradeSToX) {
  LockManager lm;
  LockKey k = AddressLockKey(5);
  ASSERT_OK(lm.Lock(1, k, LockMode::kS, false));
  ASSERT_OK(lm.Lock(1, k, LockMode::kX, false));  // sole holder: upgrade
  EXPECT_TRUE(lm.IsHeld(1, k, LockMode::kX));
  EXPECT_TRUE(lm.Lock(2, k, LockMode::kS, true).IsBusy());
  lm.Unlock(1, k);
  lm.Unlock(1, k);
}

TEST(LockManagerTest, UnconditionalWaitsForRelease) {
  LockManager lm;
  LockKey k = AddressLockKey(9);
  ASSERT_OK(lm.Lock(1, k, LockMode::kX, false));
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    Status s = lm.Lock(2, k, LockMode::kX, false);
    EXPECT_TRUE(s.ok()) << s.ToString();
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());
  lm.Unlock(1, k);
  waiter.join();
  EXPECT_TRUE(acquired.load());
  lm.Unlock(2, k);
}

TEST(LockManagerTest, InstantDurationDoesNotRetain) {
  LockManager lm;
  LockKey k = AddressLockKey(3);
  // Instant on a free key returns immediately and holds nothing.
  ASSERT_OK(lm.LockInstant(1, k, LockMode::kS, false));
  EXPECT_EQ(lm.NumLockedKeys(), 0u);

  // Instant on a held key waits for release (the paper's SPLIT/SHRINK-bit
  // wait: "unconditional instant duration S lock").
  ASSERT_OK(lm.Lock(1, k, LockMode::kX, false));
  EXPECT_TRUE(lm.LockInstant(2, k, LockMode::kS, true).IsBusy());
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    Status s = lm.LockInstant(2, k, LockMode::kS, false);
    EXPECT_TRUE(s.ok()) << s.ToString();
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(woke.load());
  lm.Unlock(1, k);
  waiter.join();
  EXPECT_TRUE(woke.load());
  EXPECT_EQ(lm.NumLockedKeys(), 0u);
}

TEST(LockManagerTest, TimeoutAborts) {
  LockManager lm;
  lm.set_wait_timeout(std::chrono::milliseconds(50));
  LockKey k = AddressLockKey(4);
  ASSERT_OK(lm.Lock(1, k, LockMode::kX, false));
  EXPECT_TRUE(lm.Lock(2, k, LockMode::kX, false).IsAborted());
  EXPECT_TRUE(lm.LockInstant(2, k, LockMode::kS, false).IsAborted());
  lm.Unlock(1, k);
}

TEST(LockManagerTest, AddressAndLogicalNamespacesDisjoint) {
  LockManager lm;
  ASSERT_OK(lm.Lock(1, AddressLockKey(7), LockMode::kX, false));
  // Same numeric id in the logical namespace does not conflict.
  ASSERT_OK(lm.Lock(2, LogicalLockKey(7), LockMode::kX, false));
  EXPECT_EQ(lm.NumLockedKeys(), 2u);
  lm.Unlock(1, AddressLockKey(7));
  lm.Unlock(2, LogicalLockKey(7));
}

TEST(LockManagerTest, UnlockUnknownKeyIsNoop) {
  LockManager lm;
  lm.Unlock(1, AddressLockKey(1234));  // must not crash
  EXPECT_EQ(lm.NumLockedKeys(), 0u);
}

TEST(LockManagerTest, ResetDropsEverything) {
  LockManager lm;
  ASSERT_OK(lm.Lock(1, AddressLockKey(1), LockMode::kX, false));
  ASSERT_OK(lm.Lock(2, LogicalLockKey(2), LockMode::kS, false));
  lm.Reset();
  EXPECT_EQ(lm.NumLockedKeys(), 0u);
  ASSERT_OK(lm.Lock(3, AddressLockKey(1), LockMode::kX, true));
  lm.Unlock(3, AddressLockKey(1));
}

TEST(LockManagerTest, StressManyThreadsManyKeys) {
  LockManager lm;
  const uint64_t seed = test::TestSeed(1);
  OIR_SCOPED_SEED_TRACE(seed);
  constexpr int kThreads = 8;
  std::atomic<uint64_t> acquisitions{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rnd(seed + t);
      for (int i = 0; i < 2000; ++i) {
        LockKey k = AddressLockKey(static_cast<PageId>(rnd.Uniform(37) + 1));
        LockMode m = rnd.OneIn(3) ? LockMode::kX : LockMode::kS;
        Status s = lm.Lock(t + 1, k, m, /*conditional=*/true);
        if (s.ok()) {
          ++acquisitions;
          lm.Unlock(t + 1, k);
        } else {
          EXPECT_TRUE(s.IsBusy()) << s.ToString();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(acquisitions.load(), 1000u);
  EXPECT_EQ(lm.NumLockedKeys(), 0u);
}

// The long-wait watchdog inspects the holder table from inside the wait
// loop; WatchdogFire asserts the shard-mutex capability before touching it.
// A fire with the diagnostic emitted (counter bumped) proves the assert
// holds on that path.
TEST(LockManagerTest, WatchdogFiresOnLongWaitAndHoldsShardMutex) {
  LockManager lm;
  lm.set_long_wait_threshold(std::chrono::milliseconds(50));
  lm.set_wait_timeout(std::chrono::milliseconds(5000));
  LockKey k = AddressLockKey(7);
  ASSERT_OK(lm.Lock(1, k, LockMode::kX, false));

  const uint64_t fires_before =
      GlobalCounters::Get().lock_watchdog_fires.load();
  std::thread waiter([&] {
    Status s = lm.Lock(2, k, LockMode::kX, false);
    EXPECT_TRUE(s.ok()) << s.ToString();
    lm.Unlock(2, k);
  });
  // Hold well past the watchdog threshold so the waiter's wake fires it.
  while (GlobalCounters::Get().lock_watchdog_fires.load() == fires_before) {
    std::this_thread::yield();
  }
  lm.Unlock(1, k);
  waiter.join();
  EXPECT_GT(GlobalCounters::Get().lock_watchdog_fires.load(), fires_before);
  EXPECT_EQ(lm.NumLockedKeys(), 0u);
}

// Holder tracking makes AssertHeld a real runtime check in every build
// type, not just a hint to the static analysis.
TEST(MutexAssertHeldDeathTest, AssertHeldAbortsWhenNotHeld) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Mutex mu;
  EXPECT_DEATH(mu.AssertHeld(), "OIR_CHECK failed");
  mu.Lock();
  mu.AssertHeld();  // held: must not abort
  mu.Unlock();
  EXPECT_DEATH(mu.AssertHeld(), "OIR_CHECK failed");
}

TEST(MutexAssertHeldDeathTest, AssertHeldAbortsFromOtherThread) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Mutex mu;
  mu.Lock();
  std::thread other([&] {
    // Held by the main thread, not by us.
    EXPECT_DEATH(mu.AssertHeld(), "OIR_CHECK failed");
  });
  other.join();
  mu.Unlock();
}

}  // namespace
}  // namespace oir
