// B+-tree tests: key codec, node searches, single-threaded tree behaviour
// (inserts, deletes, splits, shrinks, lookups, validation).

#include "btree/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "btree/cursor.h"
#include "tests/test_util.h"

namespace oir {
namespace {

using test::MakeDb;
using test::NumKey;

// ------------------------------------------------------------- key codec

TEST(KeyTest, CompositeRoundTrip) {
  std::string k = MakeIndexKey(Slice("user-key"), 0x1122334455667788ull);
  EXPECT_EQ(UserKeyOf(Slice(k)).ToString(), "user-key");
  EXPECT_EQ(RowIdOf(Slice(k)), 0x1122334455667788ull);
}

TEST(KeyTest, RowIdBreaksTiesInOrder) {
  std::string a = MakeIndexKey(Slice("same"), 1);
  std::string b = MakeIndexKey(Slice("same"), 2);
  std::string c = MakeIndexKey(Slice("same"), 256);
  EXPECT_LT(Slice(a).compare(Slice(b)), 0);
  EXPECT_LT(Slice(b).compare(Slice(c)), 0);
}

TEST(KeyTest, SeparatorIsShortestAndOrdered) {
  // Differ at first byte: one-byte separator.
  std::string s = MakeSeparator(Slice("apple"), Slice("banana"));
  EXPECT_EQ(s, "b");
  // Shared prefix.
  s = MakeSeparator(Slice("abcX"), Slice("abcZ"));
  EXPECT_EQ(s, "abcZ");  // prefix through the differing byte
  // left is a proper prefix of right.
  s = MakeSeparator(Slice("abc"), Slice("abcdef"));
  EXPECT_EQ(s, "abcd");
  // Invariants: left < s <= right.
  EXPECT_LT(Slice("abc").compare(Slice(s)), 0);
  EXPECT_LE(Slice(s).compare(Slice("abcdef")), 0);
}

TEST(KeyTest, SeparatorShortensWideKeys) {
  // This is the suffix-compression effect Table 1 depends on: 40-byte keys
  // with diverging early bytes yield very short separators.
  std::string left = "customer-000123" + std::string(25, 'x');
  std::string right = "customer-000124" + std::string(25, 'x');
  std::string s = MakeSeparator(Slice(left), Slice(right));
  EXPECT_LE(s.size(), 16u);
}

// ------------------------------------------------------------ node codec

TEST(NodeTest, NonLeafRowRoundTrip) {
  std::string row = node::MakeNonLeafRow(42, Slice("sep"));
  EXPECT_EQ(node::ChildOf(Slice(row)), 42u);
  EXPECT_EQ(node::SeparatorOf(Slice(row)).ToString(), "sep");
  std::string first = node::MakeNonLeafRow(7, Slice());
  EXPECT_EQ(node::ChildOf(Slice(first)), 7u);
  EXPECT_TRUE(node::SeparatorOf(Slice(first)).empty());
}

class NodeSearchTest : public ::testing::Test {
 protected:
  NodeSearchTest() : buf_(2048, 0), page_(buf_.data(), 2048) {
    page_.Init(1, 1);
    // Children: C0 (-inf), [d->C1], [m->C2], [t->C3].
    page_.InsertAt(0, Slice(node::MakeNonLeafRow(10, Slice())));
    page_.InsertAt(1, Slice(node::MakeNonLeafRow(11, Slice("d"))));
    page_.InsertAt(2, Slice(node::MakeNonLeafRow(12, Slice("m"))));
    page_.InsertAt(3, Slice(node::MakeNonLeafRow(13, Slice("t"))));
  }
  std::vector<char> buf_;
  SlottedPage page_;
};

TEST_F(NodeSearchTest, FindChildIdx) {
  EXPECT_EQ(node::FindChildIdx(page_, Slice("a")), 0);
  EXPECT_EQ(node::FindChildIdx(page_, Slice("c")), 0);
  EXPECT_EQ(node::FindChildIdx(page_, Slice("d")), 1);  // inclusive low bound
  EXPECT_EQ(node::FindChildIdx(page_, Slice("k")), 1);
  EXPECT_EQ(node::FindChildIdx(page_, Slice("m")), 2);
  EXPECT_EQ(node::FindChildIdx(page_, Slice("s")), 2);
  EXPECT_EQ(node::FindChildIdx(page_, Slice("z")), 3);
}

TEST_F(NodeSearchTest, FindEntryInsertPos) {
  EXPECT_EQ(node::FindEntryInsertPos(page_, Slice("b")), 1);
  EXPECT_EQ(node::FindEntryInsertPos(page_, Slice("d")), 2);  // after equal
  EXPECT_EQ(node::FindEntryInsertPos(page_, Slice("p")), 3);
  EXPECT_EQ(node::FindEntryInsertPos(page_, Slice("z")), 4);
}

TEST_F(NodeSearchTest, FindChildPos) {
  EXPECT_EQ(node::FindChildPos(page_, 10), 0);
  EXPECT_EQ(node::FindChildPos(page_, 13), 3);
  EXPECT_EQ(node::FindChildPos(page_, 99), -1);
}

TEST(NodeLeafSearchTest, LowerBoundAndFind) {
  std::vector<char> buf(2048, 0);
  SlottedPage page(buf.data(), 2048);
  page.Init(1, kLeafLevel);
  page.InsertAt(0, Slice("bb"));
  page.InsertAt(1, Slice("dd"));
  page.InsertAt(2, Slice("ff"));
  EXPECT_EQ(node::LeafLowerBound(page, Slice("aa")), 0);
  EXPECT_EQ(node::LeafLowerBound(page, Slice("bb")), 0);
  EXPECT_EQ(node::LeafLowerBound(page, Slice("cc")), 1);
  EXPECT_EQ(node::LeafLowerBound(page, Slice("zz")), 3);
  SlotId pos;
  EXPECT_TRUE(node::LeafFind(page, Slice("dd"), &pos));
  EXPECT_EQ(pos, 1);
  EXPECT_FALSE(node::LeafFind(page, Slice("cc"), &pos));
}

// ------------------------------------------------------------- tree ops

TEST(BTreeTest, EmptyTreeLookupAndScan) {
  auto db = MakeDb();
  auto txn = db->BeginTxn();
  bool found = true;
  ASSERT_OK(db->index()->Lookup(txn.get(), "nope", 1, &found));
  EXPECT_FALSE(found);
  auto cur = db->index()->NewCursor(txn.get());
  ASSERT_OK(cur->SeekToFirst());
  EXPECT_FALSE(cur->Valid());
  ASSERT_OK(db->Commit(txn.get()));
  TreeStats stats;
  ASSERT_OK(db->tree()->Validate(&stats));
  EXPECT_EQ(stats.height, 1u);
  EXPECT_EQ(stats.num_keys, 0u);
}

TEST(BTreeTest, SingleInsertLookup) {
  auto db = MakeDb();
  auto txn = db->BeginTxn();
  ASSERT_OK(db->index()->Insert(txn.get(), "hello", 42));
  bool found = false;
  ASSERT_OK(db->index()->Lookup(txn.get(), "hello", 42, &found));
  EXPECT_TRUE(found);
  ASSERT_OK(db->index()->Lookup(txn.get(), "hello", 43, &found));
  EXPECT_FALSE(found);  // composite key includes the ROWID
  ASSERT_OK(db->Commit(txn.get()));
}

TEST(BTreeTest, DuplicateCompositeRejected) {
  auto db = MakeDb();
  auto txn = db->BeginTxn();
  ASSERT_OK(db->index()->Insert(txn.get(), "k", 1));
  Status s = db->index()->Insert(txn.get(), "k", 1);
  EXPECT_TRUE(s.IsInvalidArgument());
  // Same key, different rid is fine (secondary index duplicates).
  ASSERT_OK(db->index()->Insert(txn.get(), "k", 2));
  ASSERT_OK(db->Commit(txn.get()));
}

TEST(BTreeTest, DeleteMissingKeyIsNotFound) {
  auto db = MakeDb();
  auto txn = db->BeginTxn();
  Status s = db->index()->Delete(txn.get(), "missing", 1);
  EXPECT_TRUE(s.IsNotFound());
  ASSERT_OK(db->Commit(txn.get()));
}

TEST(BTreeTest, KeyTooLongRejected) {
  auto db = MakeDb();
  auto txn = db->BeginTxn();
  std::string big(kMaxUserKeyLen + 1, 'x');
  EXPECT_TRUE(db->index()->Insert(txn.get(), big, 1).IsInvalidArgument());
  ASSERT_OK(db->Commit(txn.get()));
}

TEST(BTreeTest, SequentialInsertsSplitToMultipleLevels) {
  auto db = MakeDb();
  std::vector<uint64_t> ids(2000);
  for (uint64_t i = 0; i < ids.size(); ++i) ids[i] = i;
  test::InsertMany(db.get(), ids);
  TreeStats stats;
  ASSERT_OK(db->tree()->Validate(&stats));
  EXPECT_EQ(stats.num_keys, 2000u);
  EXPECT_GE(stats.height, 2u);
  EXPECT_GT(stats.num_leaf_pages, 10u);
  test::ExpectTreeContains(db.get(), std::set<uint64_t>(ids.begin(),
                                                        ids.end()));
}

TEST(BTreeTest, ReverseOrderInserts) {
  auto db = MakeDb();
  std::vector<uint64_t> ids;
  for (uint64_t i = 1500; i-- > 0;) ids.push_back(i);
  test::InsertMany(db.get(), ids);
  test::ExpectTreeContains(db.get(),
                           std::set<uint64_t>(ids.begin(), ids.end()));
}

TEST(BTreeTest, RandomOrderInserts) {
  auto db = MakeDb();
  const uint64_t seed = test::TestSeed(99);
  OIR_SCOPED_SEED_TRACE(seed);
  Random rnd(seed);
  std::set<uint64_t> ids;
  while (ids.size() < 1500) ids.insert(rnd.Uniform(1000000));
  std::vector<uint64_t> shuffled(ids.begin(), ids.end());
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rnd.Uniform(i)]);
  }
  test::InsertMany(db.get(), shuffled);
  test::ExpectTreeContains(db.get(), ids);
}

TEST(BTreeTest, DeleteEverythingShrinksTree) {
  auto db = MakeDb();
  std::vector<uint64_t> ids(1200);
  for (uint64_t i = 0; i < ids.size(); ++i) ids[i] = i;
  test::InsertMany(db.get(), ids);
  TreeStats stats;
  ASSERT_OK(db->tree()->Validate(&stats));
  EXPECT_GT(stats.num_leaf_pages, 5u);
  test::DeleteMany(db.get(), ids);
  ASSERT_OK(db->tree()->Validate(&stats));
  EXPECT_EQ(stats.num_keys, 0u);
  // Shrink removed emptied pages; the tree should be small again.
  EXPECT_LE(stats.num_leaf_pages, 2u);
  test::ExpectTreeContains(db.get(), {});
}

TEST(BTreeTest, DeleteFrontToBack) {
  auto db = MakeDb();
  std::vector<uint64_t> ids(800);
  for (uint64_t i = 0; i < ids.size(); ++i) ids[i] = i;
  test::InsertMany(db.get(), ids);
  test::DeleteMany(db.get(), ids);  // ascending: exercises first-child path
  test::ExpectTreeContains(db.get(), {});
}

TEST(BTreeTest, DeleteBackToFront) {
  auto db = MakeDb();
  std::vector<uint64_t> ids(800);
  for (uint64_t i = 0; i < ids.size(); ++i) ids[i] = i;
  test::InsertMany(db.get(), ids);
  std::vector<uint64_t> rev(ids.rbegin(), ids.rend());
  test::DeleteMany(db.get(), rev);
  test::ExpectTreeContains(db.get(), {});
}

TEST(BTreeTest, InterleavedInsertDelete) {
  auto db = MakeDb();
  const uint64_t seed = test::TestSeed(3);
  OIR_SCOPED_SEED_TRACE(seed);
  Random rnd(seed);
  std::set<uint64_t> live;
  auto txn = db->BeginTxn();
  for (int step = 0; step < 5000; ++step) {
    if (live.empty() || rnd.Uniform(3) != 0) {
      uint64_t id = rnd.Uniform(4000);
      if (live.insert(id).second) {
        ASSERT_OK(db->index()->Insert(txn.get(), NumKey(id), id));
      }
    } else {
      uint64_t pick = *std::next(live.begin(),
                                 rnd.Uniform(live.size()));
      ASSERT_OK(db->index()->Delete(txn.get(), NumKey(pick), pick));
      live.erase(pick);
    }
  }
  ASSERT_OK(db->Commit(txn.get()));
  test::ExpectTreeContains(db.get(), live);
}

TEST(BTreeTest, DuplicateUserKeysAcrossManyPages) {
  // Many rows share one user key; only the ROWID distinguishes them. This
  // stresses separator generation on near-identical keys.
  auto db = MakeDb();
  auto txn = db->BeginTxn();
  for (uint64_t rid = 0; rid < 2000; ++rid) {
    ASSERT_OK(db->index()->Insert(txn.get(), "dup", rid));
  }
  ASSERT_OK(db->Commit(txn.get()));
  TreeStats stats;
  ASSERT_OK(db->tree()->Validate(&stats));
  EXPECT_EQ(stats.num_keys, 2000u);
  bool found = false;
  auto t2 = db->BeginTxn();
  ASSERT_OK(db->index()->Lookup(t2.get(), "dup", 1234, &found));
  EXPECT_TRUE(found);
  ASSERT_OK(db->Commit(t2.get()));
}

TEST(BTreeTest, VariableLengthKeys) {
  auto db = MakeDb();
  const uint64_t seed = test::TestSeed(17);
  OIR_SCOPED_SEED_TRACE(seed);
  Random rnd(seed);
  std::set<std::pair<std::string, uint64_t>> rows;
  auto txn = db->BeginTxn();
  for (int i = 0; i < 1500; ++i) {
    std::string key = rnd.Bytes(rnd.Range(1, kMaxUserKeyLen));
    uint64_t rid = i;
    if (rows.emplace(key, rid).second) {
      ASSERT_OK(db->index()->Insert(txn.get(), key, rid));
    }
  }
  ASSERT_OK(db->Commit(txn.get()));
  TreeStats stats;
  ASSERT_OK(db->tree()->Validate(&stats));
  EXPECT_EQ(stats.num_keys, rows.size());
}

TEST(BTreeTest, SmallPagesDeepTree) {
  auto db = MakeDb(/*page_size=*/512);
  std::vector<uint64_t> ids(3000);
  for (uint64_t i = 0; i < ids.size(); ++i) ids[i] = i * 7;
  test::InsertMany(db.get(), ids);
  TreeStats stats;
  ASSERT_OK(db->tree()->Validate(&stats));
  EXPECT_GE(stats.height, 3u);
  test::ExpectTreeContains(db.get(),
                           std::set<uint64_t>(ids.begin(), ids.end()));
}

TEST(BTreeTest, SuffixCompressionKeepsNonLeafRowsSmall) {
  auto db = MakeDb();
  // 40-byte keys with a varying prefix: separators should compress far
  // below the key size (the premise of Table 1's second configuration).
  auto txn = db->BeginTxn();
  for (uint64_t i = 0; i < 3000; ++i) {
    std::string key = NumKey(i, 12) + std::string(28, 'p');
    ASSERT_OK(db->index()->Insert(txn.get(), key, i));
  }
  ASSERT_OK(db->Commit(txn.get()));
  TreeStats stats;
  ASSERT_OK(db->tree()->Validate(&stats));
  EXPECT_GT(stats.num_nonleaf_pages, 0u);
  EXPECT_LT(stats.AvgNonLeafRowBytes(), 40.0);
}

TEST(BTreeTest, FirstLeafFindsLeftmost) {
  auto db = MakeDb();
  std::vector<uint64_t> ids(500);
  for (uint64_t i = 0; i < ids.size(); ++i) ids[i] = i;
  test::InsertMany(db.get(), ids);
  PageId first;
  ASSERT_OK(db->tree()->FirstLeaf(&first));
  PageRef ref;
  ASSERT_OK(db->buffer_manager()->Fetch(first, &ref));
  EXPECT_EQ(ref.header()->prev_page, kInvalidPageId);
  SlottedPage sp(ref.data(), db->buffer_manager()->page_size());
  EXPECT_EQ(UserKeyOf(sp.Get(0)).ToString(), NumKey(0));
}

}  // namespace
}  // namespace oir
