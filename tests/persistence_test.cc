// Real process-restart persistence: data file + log file + master record
// survive object destruction; Db::OpenExisting runs restart recovery and
// reproduces exactly the committed state — including mid-rebuild states,
// checkpoints and log truncation.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/db.h"
#include "core/index.h"
#include "tests/test_util.h"

namespace oir {
namespace {

using test::NumKey;

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "/oir_persist_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    Cleanup();
    opts_.use_file_disk = true;
    opts_.file_path = base_ + ".db";
    opts_.log_path = base_ + ".log";
    opts_.buffer_pool_pages = 1 << 13;
  }
  void TearDown() override { Cleanup(); }

  void Cleanup() {
    std::remove((base_ + ".db").c_str());
    std::remove((base_ + ".log").c_str());
    std::remove((base_ + ".log.master").c_str());
  }

  std::string base_;
  DbOptions opts_;
};

TEST_F(PersistenceTest, CommittedDataSurvivesReopen) {
  std::set<uint64_t> ids;
  {
    std::unique_ptr<Db> db;
    ASSERT_OK(Db::Open(opts_, &db));
    auto txn = db->BeginTxn();
    for (uint64_t i = 0; i < 1500; ++i) {
      ASSERT_OK(db->index()->Insert(txn.get(), NumKey(i), i));
      ids.insert(i);
    }
    ASSERT_OK(db->Commit(txn.get()));
    // Destroy WITHOUT flushing pages: only the log is durable.
  }
  std::unique_ptr<Db> db;
  RecoveryStats stats;
  ASSERT_OK(Db::OpenExisting(opts_, &db, &stats));
  EXPECT_GT(stats.records_redone, 0u);
  test::ExpectTreeContains(db.get(), ids);
}

TEST_F(PersistenceTest, UncommittedWorkRolledBackOnReopen) {
  {
    std::unique_ptr<Db> db;
    ASSERT_OK(Db::Open(opts_, &db));
    test::InsertMany(db.get(), {1, 2, 3});
    auto loser = db->BeginTxn();
    ASSERT_OK(db->index()->Insert(loser.get(), NumKey(99), 99));
    ASSERT_OK(db->log_manager()->FlushAll());
    test::AbandonTxn(std::move(loser));  // dies with the process
  }
  std::unique_ptr<Db> db;
  RecoveryStats stats;
  ASSERT_OK(Db::OpenExisting(opts_, &db, &stats));
  EXPECT_EQ(stats.loser_txns, 1u);
  test::ExpectTreeContains(db.get(), {1, 2, 3});
}

TEST_F(PersistenceTest, RebuildSurvivesReopen) {
  std::set<uint64_t> expect;
  {
    std::unique_ptr<Db> db;
    ASSERT_OK(Db::Open(opts_, &db));
    std::vector<uint64_t> all, odd;
    for (uint64_t i = 0; i < 3000; ++i) all.push_back(i);
    test::InsertMany(db.get(), all);
    for (uint64_t i = 1; i < 3000; i += 2) odd.push_back(i);
    test::DeleteMany(db.get(), odd);
    for (uint64_t i = 0; i < 3000; i += 2) expect.insert(i);
    RebuildOptions ropts;
    ropts.xactsize = 64;
    RebuildResult res;
    ASSERT_OK(db->index()->RebuildOnline(ropts, &res));
  }
  std::unique_ptr<Db> db;
  ASSERT_OK(Db::OpenExisting(opts_, &db));
  test::ExpectTreeContains(db.get(), expect);
  EXPECT_EQ(db->space_manager()->CountInState(PageState::kDeallocated), 0u);
}

TEST_F(PersistenceTest, CheckpointBoundsReopenScan) {
  std::set<uint64_t> ids;
  {
    std::unique_ptr<Db> db;
    ASSERT_OK(Db::Open(opts_, &db));
    auto txn = db->BeginTxn();
    for (uint64_t i = 0; i < 2000; ++i) {
      ASSERT_OK(db->index()->Insert(txn.get(), NumKey(i), i));
      ids.insert(i);
    }
    ASSERT_OK(db->Commit(txn.get()));
    ASSERT_OK(db->Checkpoint());
    test::InsertMany(db.get(), {50001});
    ids.insert(50001);
  }
  std::unique_ptr<Db> db;
  RecoveryStats stats;
  ASSERT_OK(Db::OpenExisting(opts_, &db, &stats));
  EXPECT_LT(stats.records_scanned, 100u);  // bounded by the checkpoint
  test::ExpectTreeContains(db.get(), ids);
}

TEST_F(PersistenceTest, TruncatedLogReopens) {
  std::set<uint64_t> ids;
  {
    std::unique_ptr<Db> db;
    ASSERT_OK(Db::Open(opts_, &db));
    auto txn = db->BeginTxn();
    for (uint64_t i = 0; i < 2000; ++i) {
      ASSERT_OK(db->index()->Insert(txn.get(), NumKey(i), i));
      ids.insert(i);
    }
    ASSERT_OK(db->Commit(txn.get()));
    ASSERT_OK(db->CheckpointAndTruncate());
  }
  std::unique_ptr<Db> db;
  ASSERT_OK(Db::OpenExisting(opts_, &db));
  test::ExpectTreeContains(db.get(), ids);
}

TEST_F(PersistenceTest, RepeatedReopenCycles) {
  std::set<uint64_t> ids;
  for (int round = 0; round < 4; ++round) {
    std::unique_ptr<Db> db;
    if (round == 0) {
      ASSERT_OK(Db::Open(opts_, &db));
    } else {
      ASSERT_OK(Db::OpenExisting(opts_, &db));
      test::ExpectTreeContains(db.get(), ids);
    }
    auto txn = db->BeginTxn();
    for (uint64_t i = 0; i < 200; ++i) {
      uint64_t id = round * 1000 + i;
      ASSERT_OK(db->index()->Insert(txn.get(), NumKey(id), id));
      ids.insert(id);
    }
    ASSERT_OK(db->Commit(txn.get()));
    if (round % 2 == 1) ASSERT_OK(db->CheckpointAndTruncate());
  }
  std::unique_ptr<Db> db;
  ASSERT_OK(Db::OpenExisting(opts_, &db));
  test::ExpectTreeContains(db.get(), ids);
}

TEST_F(PersistenceTest, TornLogTailIsDiscarded) {
  {
    std::unique_ptr<Db> db;
    ASSERT_OK(Db::Open(opts_, &db));
    test::InsertMany(db.get(), {1, 2, 3});
  }
  // Corrupt the tail: append garbage bytes to the log file (a torn write).
  {
    FILE* f = std::fopen((base_ + ".log").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "\x30\x01\x00\x00torn-record-bytes";
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
  }
  std::unique_ptr<Db> db;
  ASSERT_OK(Db::OpenExisting(opts_, &db));
  test::ExpectTreeContains(db.get(), {1, 2, 3});
  // New work appends cleanly after the truncated tail.
  test::InsertMany(db.get(), {4});
  db.reset();
  ASSERT_OK(Db::OpenExisting(opts_, &db));
  test::ExpectTreeContains(db.get(), {1, 2, 3, 4});
}

TEST_F(PersistenceTest, OpenExistingValidatesOptions) {
  std::unique_ptr<Db> db;
  DbOptions bad;
  EXPECT_TRUE(Db::OpenExisting(bad, &db).IsInvalidArgument());
}

}  // namespace
}  // namespace oir
