// Checkpoint + log truncation tests: recovery scans from the master
// checkpoint, checkpoints survive only when durable, active transactions
// at checkpoint time are still rolled back, and truncation never removes
// log an active transaction or the checkpoint needs.

#include <gtest/gtest.h>

#include "core/db.h"
#include "core/index.h"
#include "tests/test_util.h"

namespace oir {
namespace {

using test::MakeDb;
using test::NumKey;

TEST(CheckpointTest, RecoveryScansFromCheckpoint) {
  auto db = MakeDb();
  std::vector<uint64_t> ids;
  for (uint64_t i = 0; i < 2000; ++i) ids.push_back(i);
  test::InsertMany(db.get(), ids);

  ASSERT_OK(db->Checkpoint());
  // Work after the checkpoint.
  test::InsertMany(db.get(), {100001, 100002, 100003});

  RecoveryStats stats;
  ASSERT_OK(db->CrashAndRecover(&stats));
  // Only the post-checkpoint tail was scanned: far fewer records than the
  // full history (2000 inserts ≈ 2000+ records).
  EXPECT_LT(stats.records_scanned, 200u);
  std::set<uint64_t> expect(ids.begin(), ids.end());
  expect.insert({100001, 100002, 100003});
  test::ExpectTreeContains(db.get(), expect);
}

TEST(CheckpointTest, CheckpointWithNoFollowingWork) {
  auto db = MakeDb();
  test::InsertMany(db.get(), {1, 2, 3});
  ASSERT_OK(db->Checkpoint());
  RecoveryStats stats;
  ASSERT_OK(db->CrashAndRecover(&stats));
  test::ExpectTreeContains(db.get(), {1, 2, 3});
}

TEST(CheckpointTest, RepeatedCheckpointsUseLatest) {
  auto db = MakeDb();
  std::set<uint64_t> expect;
  for (int round = 0; round < 5; ++round) {
    auto txn = db->BeginTxn();
    for (uint64_t i = 0; i < 100; ++i) {
      uint64_t id = round * 1000 + i;
      ASSERT_OK(db->index()->Insert(txn.get(), NumKey(id), id));
      expect.insert(id);
    }
    ASSERT_OK(db->Commit(txn.get()));
    ASSERT_OK(db->Checkpoint());
  }
  RecoveryStats stats;
  ASSERT_OK(db->CrashAndRecover(&stats));
  EXPECT_LT(stats.records_scanned, 50u);  // only the tail after ckpt #5
  test::ExpectTreeContains(db.get(), expect);
}

TEST(CheckpointTest, ActiveTxnAtCheckpointIsRolledBack) {
  auto db = MakeDb();
  test::InsertMany(db.get(), {10, 20, 30});
  // A transaction straddling the checkpoint, never committed.
  auto loser = db->BeginTxn();
  ASSERT_OK(db->index()->Insert(loser.get(), NumKey(77), 77));
  ASSERT_OK(db->Checkpoint());
  ASSERT_OK(db->index()->Insert(loser.get(), NumKey(88), 88));
  ASSERT_OK(db->log_manager()->FlushAll());
  test::AbandonTxn(std::move(loser));

  RecoveryStats stats;
  ASSERT_OK(db->CrashAndRecover(&stats));
  EXPECT_EQ(stats.loser_txns, 1u);
  test::ExpectTreeContains(db.get(), {10, 20, 30});
}

TEST(CheckpointTest, ActiveTxnWithAllRecordsBeforeCheckpoint) {
  auto db = MakeDb();
  test::InsertMany(db.get(), {1});
  auto loser = db->BeginTxn();
  ASSERT_OK(db->index()->Insert(loser.get(), NumKey(55), 55));
  // Checkpoint after the loser's last record; loser then goes idle.
  ASSERT_OK(db->Checkpoint());
  test::InsertMany(db.get(), {2});
  ASSERT_OK(db->log_manager()->FlushAll());
  test::AbandonTxn(std::move(loser));

  RecoveryStats stats;
  ASSERT_OK(db->CrashAndRecover(&stats));
  // The loser appears only in the checkpoint's transaction table; its undo
  // chain is reached through the snapshot, not the scan.
  EXPECT_EQ(stats.loser_txns, 1u);
  test::ExpectTreeContains(db.get(), {1, 2});
}

TEST(CheckpointTest, UndurableCheckpointDoesNotSurviveCrash) {
  auto db = MakeDb();
  test::InsertMany(db.get(), {1, 2, 3});
  // Hand-roll an unforced checkpoint: master points at a record beyond the
  // durable boundary.
  ASSERT_OK(db->Checkpoint());
  Lsn good_master = db->log_manager()->master_checkpoint();
  // More work + a second checkpoint record that never becomes durable.
  test::InsertMany(db.get(), {4});
  LogRecord fake;
  fake.type = LogType::kCheckpoint;
  fake.old_page_lsn = db->log_manager()->tail_lsn();
  Lsn fake_lsn = db->log_manager()->AppendSystem(&fake);
  // Simulate the "publish before force" bug: set master without flushing.
  // SetMasterCheckpoint only promotes the durable copy once flushed, so
  // after the crash the previous checkpoint must win.
  db->log_manager()->SetMasterCheckpoint(fake_lsn);

  RecoveryStats stats;
  ASSERT_OK(db->CrashAndRecover(&stats));
  EXPECT_EQ(db->log_manager()->master_checkpoint(), good_master);
  // {4} committed with a forced commit record, so it survives even though
  // the fake checkpoint vanished.
  test::ExpectTreeContains(db.get(), {1, 2, 3, 4});
}

TEST(CheckpointTest, TruncationReclaimsLog) {
  auto db = MakeDb();
  std::vector<uint64_t> ids;
  for (uint64_t i = 0; i < 2000; ++i) ids.push_back(i);
  test::InsertMany(db.get(), ids);
  uint64_t before_head = db->log_manager()->head_lsn();
  ASSERT_OK(db->CheckpointAndTruncate());
  EXPECT_GT(db->log_manager()->head_lsn(), before_head);
  // Old records are gone...
  LogRecord rec;
  EXPECT_FALSE(db->log_manager()->ReadRecord(before_head, &rec).ok());
  // ...and recovery still works from the checkpoint.
  RecoveryStats stats;
  ASSERT_OK(db->CrashAndRecover(&stats));
  test::ExpectTreeContains(db.get(),
                           std::set<uint64_t>(ids.begin(), ids.end()));
}

TEST(CheckpointTest, TruncationHorizonRespectsActiveTxn) {
  auto db = MakeDb();
  test::InsertMany(db.get(), {1, 2, 3});
  auto active = db->BeginTxn();
  ASSERT_OK(db->index()->Insert(active.get(), NumKey(99), 99));
  Lsn horizon = kInvalidLsn;
  ASSERT_OK(db->Checkpoint(&horizon));
  // The horizon must not pass the active transaction's begin record.
  EXPECT_LE(horizon, active->begin_lsn());
  db->log_manager()->DiscardPrefix(horizon);
  // The active transaction can still roll back (its chain is intact).
  ASSERT_OK(db->Abort(active.get()));
  test::ExpectTreeContains(db.get(), {1, 2, 3});
}

TEST(CheckpointTest, CheckpointDuringRebuildWorkload) {
  auto db = MakeDb();
  std::vector<uint64_t> all, odd;
  for (uint64_t i = 0; i < 4000; ++i) all.push_back(i);
  test::InsertMany(db.get(), all);
  for (uint64_t i = 1; i < 4000; i += 2) odd.push_back(i);
  test::DeleteMany(db.get(), odd);

  RebuildOptions opts;
  opts.xactsize = 64;
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(opts, &res));
  ASSERT_OK(db->CheckpointAndTruncate());
  // More rebuild-era churn after the checkpoint.
  test::InsertMany(db.get(), {900001, 900003});
  RecoveryStats stats;
  ASSERT_OK(db->CrashAndRecover(&stats));
  std::set<uint64_t> expect;
  for (uint64_t i = 0; i < 4000; i += 2) expect.insert(i);
  expect.insert({900001, 900003});
  test::ExpectTreeContains(db.get(), expect);
}

TEST(CheckpointTest, CrashBeforeAnyCheckpointStillRecovers) {
  auto db = MakeDb();
  test::InsertMany(db.get(), {5, 6, 7});
  RecoveryStats stats;
  ASSERT_OK(db->CrashAndRecover(&stats));  // scans from the head
  test::ExpectTreeContains(db.get(), {5, 6, 7});
}

}  // namespace
}  // namespace oir
