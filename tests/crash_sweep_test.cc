// Crash-point sweep: crash the database at every enumerated crash point of
// a seeded workload (writer transactions racing an online rebuild, with a
// fuzzy checkpoint midway), recover, and check the recovery oracle —
// structural invariants plus exact equality with the committed-operations
// model. A failing iteration prints its (seed, point#hit) pair; re-run
// with OIR_TEST_SEED=<seed> OIR_CRASH_POINT=<name>#<hit> to reproduce just
// that iteration.

#include "testing/sweep.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "testing/crash_point.h"
#include "tests/test_util.h"

namespace oir {
namespace {

using fault::CrashIterationResult;
using fault::CrashPointRegistry;
using fault::SweepWorkloadOptions;

// Reads a non-negative integer knob from the environment; `fallback` when
// unset or malformed.
uint32_t EnvKnob(const char* name, uint32_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  unsigned long parsed = std::strtoul(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<uint32_t>(parsed);
}

SweepWorkloadOptions SweepOptions() {
  SweepWorkloadOptions opts;
  opts.seed = test::TestSeed(1);
  // Both knobs appear in every repro line the sweep prints, so a failing
  // iteration replays with the exact same progress/throttle shape.
  opts.rebuild_progress_interval =
      EnvKnob("OIR_SWEEP_PROGRESS_INTERVAL", opts.rebuild_progress_interval);
  opts.rebuild_throttle_pct =
      EnvKnob("OIR_SWEEP_THROTTLE", opts.rebuild_throttle_pct);
  return opts;
}

std::string Subsystem(const std::string& point) {
  return point.substr(0, point.find('.'));
}

TEST(CrashSweepTest, EnumerationCoversEverySubsystem) {
  SweepWorkloadOptions opts = SweepOptions();
  OIR_SCOPED_SEED_TRACE(opts.seed);
  std::vector<std::pair<std::string, uint64_t>> points;
  ASSERT_OK(fault::EnumerateCrashPoints(opts, &points));

  std::set<std::string> subsystems;
  for (const auto& [name, hits] : points) {
    EXPECT_GT(hits, 0u) << name;
    subsystems.insert(Subsystem(name));
  }
  // The issue's floor: >= 40 distinct crash points spanning the WAL, the
  // buffer pool, the space manager, the B-tree SMOs and the rebuild.
  EXPECT_GE(points.size(), 40u);
  for (const char* want :
       {"wal", "pool", "space", "btree", "txn", "rebuild", "ckpt"}) {
    EXPECT_TRUE(subsystems.count(want)) << "no crash point hit under '"
                                        << want << ".*'";
  }
}

// One iteration per armed (point, hit): this is the torture sweep. Each
// name is armed at its first hit and, when it hits often, once more in the
// middle of its range — different phases of the same code path crash in
// different page/log states.
TEST(CrashSweepTest, RecoveryOracleHoldsAtEveryCrashPoint) {
  SweepWorkloadOptions opts = SweepOptions();
  OIR_SCOPED_SEED_TRACE(opts.seed);
  std::vector<std::pair<std::string, uint64_t>> points;
  ASSERT_OK(fault::EnumerateCrashPoints(opts, &points));
  ASSERT_GE(points.size(), 40u);

  std::set<std::string> triggered_names;
  int iterations = 0;
  int triggered = 0;
  for (const auto& [name, hits] : points) {
    std::set<uint64_t> arm = {0};
    if (hits > 4) arm.insert(hits / 2);
    for (uint64_t hit : arm) {
      CrashIterationResult result;
      Status s = fault::RunCrashIteration(opts, name, hit, &result);
      EXPECT_OK(s);
      ++iterations;
      if (result.triggered) {
        ++triggered;
        triggered_names.insert(name);
      }
    }
  }
  // Thread scheduling may keep an occasional (point, mid-range hit) from
  // being reached on the replay — those iterations still recover and pass
  // the oracle — but the sweep must genuinely crash at 40+ distinct points.
  EXPECT_GE(triggered_names.size(), 40u)
      << "only " << triggered << "/" << iterations
      << " iterations triggered their armed crash point";
}

// Resume-correctness sweep (the tentpole's oracle 4, focused): crash at
// every rebuild-phase crash point — every hit ordinal, not just first and
// midpoint — and require that recovery re-arms the rebuild from its last
// durable progress record. RunCrashIteration itself fails any iteration
// where a rebuild that committed work would restart from zero; this test
// additionally checks the aggregate: the sweep genuinely exercised crashed
// rebuilds, resumes, and cursor-carrying resume points.
TEST(CrashSweepTest, RebuildCrashesAlwaysResumeFromDurableProgress) {
  SweepWorkloadOptions opts = SweepOptions();
  // The default workload's tree is small enough that the rebuild is a
  // single transaction — there is no mid-rebuild progress to preserve.
  // Give the rebuild a real middle: a deeper preload and smaller rebuild
  // transactions yield ~5 committed rebuild transactions, so most crash
  // ordinals land between progress records.
  opts.preload_keys = 1400;
  opts.writer_ops = 120;
  opts.rebuild_xactsize = 4;
  OIR_SCOPED_SEED_TRACE(opts.seed);
  std::vector<std::pair<std::string, uint64_t>> points;
  ASSERT_OK(fault::EnumerateCrashPoints(opts, &points));

  int crashed_rebuilds = 0;
  int resumed = 0;
  int resumed_from_cursor = 0;
  int restarted_from_zero = 0;
  for (const auto& [name, hits] : points) {
    if (name.rfind("rebuild.", 0) != 0) continue;
    for (uint64_t hit = 0; hit < hits; ++hit) {
      CrashIterationResult result;
      EXPECT_OK(fault::RunCrashIteration(opts, name, hit, &result));
      if (!result.triggered) continue;
      if (result.rebuild_crashed) ++crashed_rebuilds;
      if (result.rebuild_resumed) {
        ++resumed;
        if (result.resumed_from_cursor) {
          ++resumed_from_cursor;
        } else if (result.rebuild_committed_txns > 0) {
          // A cursor-less resume is legitimate only before the first
          // committed transaction (nothing to preserve yet).
          ++restarted_from_zero;
        }
      }
    }
  }
  EXPECT_EQ(restarted_from_zero, 0);
  EXPECT_GT(crashed_rebuilds, 0);
  EXPECT_GT(resumed, 0);
  EXPECT_GT(resumed_from_cursor, 0)
      << "no iteration resumed from a non-empty durable cursor — the sweep "
         "never exercised the interesting case";
}

// The one-command reproduction path the sweep prints on failure: when
// OIR_CRASH_POINT=<name>#<hit> is set, run exactly that iteration.
// Without it, spot-check a handful of high-value points deterministically.
TEST(CrashSweepTest, ReproducesSingleIterationFromEnvironment) {
  SweepWorkloadOptions opts = SweepOptions();
  OIR_SCOPED_SEED_TRACE(opts.seed);

  const char* spec = std::getenv("OIR_CRASH_POINT");
  if (spec != nullptr && *spec != '\0') {
    std::string name;
    uint64_t hit = 0;
    ASSERT_TRUE(CrashPointRegistry::ParseSpec(spec, &name, &hit))
        << "malformed OIR_CRASH_POINT: " << spec;
    CrashIterationResult result;
    ASSERT_OK(fault::RunCrashIteration(opts, name, hit, &result));
    return;
  }

  for (const char* name :
       {"txn.commit.pre_flush", "rebuild.copy.applied",
        "btree.split.moved", "wal.pipeline.seal", "wal.pipeline.submit",
        "wal.pipeline.complete", "ckpt.pages_flushed"}) {
    CrashIterationResult result;
    EXPECT_OK(fault::RunCrashIteration(opts, name, 0, &result));
  }
}

}  // namespace
}  // namespace oir
