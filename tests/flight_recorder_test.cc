// Tests for the crash flight recorder (obs/flight_recorder.h): explicit
// and async-triggered bundles, provider splicing and token-guarded
// unregistration, the bounded recent-stats ring, watchdog- and
// crash-point-driven dumps, a fuzz-ish corpus of bundle states, and a dump
// racing concurrent writers. Every bundle must satisfy JsonIsValid.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/waitstate.h"
#include "sync/lock_manager.h"
#include "testing/crash_point.h"
#include "tests/test_util.h"
#include "util/counters.h"

namespace oir {
namespace {

using obs::FlightRecorder;
using obs::JsonIsValid;
using obs::TraceBuffer;
using obs::WaitProfiler;

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// Routes bundles into gtest's temp dir and restores global obs flags.
struct RecorderTestEnv {
  RecorderTestEnv() {
    ::setenv("OIR_FLIGHT_DIR", ::testing::TempDir().c_str(), 1);
  }
  ~RecorderTestEnv() {
    obs::MetricRegistry::SetTimersEnabled(false);
    TraceBuffer::Get().SetEnabled(false);
    TraceBuffer::Get().Clear();
    WaitProfiler::SetEnabled(false);
    WaitProfiler::Reset();
    fault::CrashPointRegistry::SetEnabled(false);
    fault::CrashPointRegistry::Get().Disarm();
  }
};

TEST(FlightRecorderTest, ExplicitDumpProducesValidBundle) {
  RecorderTestEnv env;
  auto& fr = FlightRecorder::Get();
  std::string path;
  ASSERT_TRUE(fr.DumpNow("explicit_test", &path));
  std::string body = ReadFileOrDie(path);
  EXPECT_TRUE(JsonIsValid(body)) << body.substr(0, 400);
  EXPECT_NE(body.find("\"reason\":\"explicit_test\""), std::string::npos);
  for (const char* section :
       {"\"wait_profile\"", "\"metrics\"", "\"trace\"", "\"recent_stats\"",
        "\"pid\"", "\"ts_ns\""}) {
    EXPECT_NE(body.find(section), std::string::npos) << section;
  }
  EXPECT_EQ(fr.last_dump_path(), path);
  EXPECT_GT(GlobalCounters::Get().flight_records_dumped.load(), 0u);
}

TEST(FlightRecorderTest, ProvidersSplicedAndInvalidOnesBecomeNull) {
  RecorderTestEnv env;
  auto& fr = FlightRecorder::Get();
  uint64_t good = fr.RegisterProvider(
      "test_good", [] { return std::string("{\"answer\":42}"); });
  uint64_t bad = fr.RegisterProvider(
      "test_bad", [] { return std::string("{broken"); });
  std::string path;
  ASSERT_TRUE(fr.DumpNow("provider_test", &path));
  fr.UnregisterProvider("test_good", good);
  fr.UnregisterProvider("test_bad", bad);
  std::string body = ReadFileOrDie(path);
  EXPECT_TRUE(JsonIsValid(body)) << body.substr(0, 400);
  EXPECT_NE(body.find("\"test_good\":{\"answer\":42}"), std::string::npos);
  EXPECT_NE(body.find("\"test_bad\":null"), std::string::npos);
}

TEST(FlightRecorderTest, StaleUnregisterTokenIsANoOp) {
  RecorderTestEnv env;
  auto& fr = FlightRecorder::Get();
  uint64_t old_token = fr.RegisterProvider(
      "test_token", [] { return std::string("\"old\""); });
  // A second registration under the same name supersedes the first.
  uint64_t new_token = fr.RegisterProvider(
      "test_token", [] { return std::string("\"new\""); });
  fr.UnregisterProvider("test_token", old_token);  // stale: must not remove
  std::string path;
  ASSERT_TRUE(fr.DumpNow("token_test", &path));
  EXPECT_NE(ReadFileOrDie(path).find("\"test_token\":\"new\""),
            std::string::npos);
  fr.UnregisterProvider("test_token", new_token);
  ASSERT_TRUE(fr.DumpNow("token_test_2", &path));
  EXPECT_EQ(ReadFileOrDie(path).find("\"test_token\""), std::string::npos);
}

TEST(FlightRecorderTest, TriggerDumpsAsynchronously) {
  RecorderTestEnv env;
  auto& fr = FlightRecorder::Get();
  const uint64_t before = fr.dumps_completed();
  fr.Trigger("async_test");
  EXPECT_TRUE(fr.WaitForDumps(before + 1, /*timeout_ms=*/10000));
}

TEST(FlightRecorderTest, RecentStatsRingIsBounded) {
  RecorderTestEnv env;
  auto& fr = FlightRecorder::Get();
  for (int i = 0; i < 20; ++i) {
    fr.NoteSnapshot("{\"ring_probe\":" + std::to_string(i) + "}");
  }
  std::string path;
  ASSERT_TRUE(fr.DumpNow("ring_test", &path));
  std::string body = ReadFileOrDie(path);
  EXPECT_TRUE(JsonIsValid(body)) << body.substr(0, 400);
  // Only the newest kMaxRecentStats snapshots survive.
  EXPECT_NE(body.find("\"ring_probe\":19"), std::string::npos);
  EXPECT_EQ(body.find("\"ring_probe\":0}"), std::string::npos);
  size_t n = 0;
  for (size_t pos = body.find("\"ring_probe\""); pos != std::string::npos;
       pos = body.find("\"ring_probe\"", pos + 1)) {
    ++n;
  }
  EXPECT_EQ(n, FlightRecorder::kMaxRecentStats);
}

TEST(FlightRecorderTest, WatchdogFireProducesBundle) {
  RecorderTestEnv env;
  auto& fr = FlightRecorder::Get();
  const uint64_t before = fr.dumps_completed();

  LockManager lm;
  lm.set_long_wait_threshold(std::chrono::milliseconds(50));
  const LockKey key = AddressLockKey(4242);
  ASSERT_OK(lm.Lock(/*owner=*/1, key, LockMode::kX, /*conditional=*/false));
  testing::internal::CaptureStderr();  // swallow the watchdog report
  std::thread waiter([&lm, key] {
    EXPECT_OK(lm.Lock(/*owner=*/2, key, LockMode::kX, /*conditional=*/false));
    lm.Unlock(2, key);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  lm.Unlock(1, key);
  waiter.join();
  testing::internal::GetCapturedStderr();

  // The watchdog fired with the shard mutex held, so it could only enqueue;
  // the recorder's worker performs the dump.
  ASSERT_TRUE(fr.WaitForDumps(before + 1, /*timeout_ms=*/10000));
  std::string body = ReadFileOrDie(fr.last_dump_path());
  EXPECT_TRUE(JsonIsValid(body)) << body.substr(0, 400);
  EXPECT_NE(body.find("lock_watchdog"), std::string::npos);
}

TEST(FlightRecorderTest, TrippedCrashPointProducesBundle) {
  RecorderTestEnv env;
  auto& fr = FlightRecorder::Get();
  const uint64_t before = fr.dumps_completed();

  auto& reg = fault::CrashPointRegistry::Get();
  fault::CrashPointRegistry::SetEnabled(true);
  std::atomic<bool> fired{false};
  reg.Arm("fr.test.trip", 0, [&fired] { fired.store(true); });
  OIR_CRASH_POINT("fr.test.trip");
  EXPECT_TRUE(fired.load());
  reg.Disarm();
  fault::CrashPointRegistry::SetEnabled(false);

  ASSERT_TRUE(fr.WaitForDumps(before + 1, /*timeout_ms=*/10000));
  std::string body = ReadFileOrDie(fr.last_dump_path());
  EXPECT_TRUE(JsonIsValid(body)) << body.substr(0, 400);
  EXPECT_NE(body.find("crash_point:fr.test.trip"), std::string::npos);
}

// Fuzz-ish corpus: bundles must stay valid across combinations of enabled
// subsystems, populated rings and hostile reason strings.
TEST(FlightRecorderTest, BundleCorpusAcrossVariedStates) {
  RecorderTestEnv env;
  auto& fr = FlightRecorder::Get();
  const std::string reasons[] = {
      "plain",
      "quotes \"and\" backslash \\",
      "newline\nand\ttab",
      "unicode \xc3\xa9\xe2\x98\x83",
      std::string(300, 'x'),
      "",
  };
  int case_no = 0;
  for (int trace_on = 0; trace_on <= 1; ++trace_on) {
    for (int prof_on = 0; prof_on <= 1; ++prof_on) {
      TraceBuffer::Get().SetEnabled(trace_on != 0);
      if (trace_on) {
        for (int i = 0; i < 100; ++i) {
          TraceBuffer::Get().Record(obs::TraceEventType::kSmoSplit, i, i);
        }
      }
      WaitProfiler::SetEnabled(prof_on != 0);
      if (prof_on) {
        obs::OpScope op(obs::OpType::kRead);
      }
      for (const std::string& reason : reasons) {
        fr.NoteSnapshot("{\"case\":" + std::to_string(case_no++) + "}");
        std::string path;
        ASSERT_TRUE(fr.DumpNow(reason, &path));
        std::string body = ReadFileOrDie(path);
        EXPECT_TRUE(JsonIsValid(body))
            << "trace=" << trace_on << " prof=" << prof_on << " reason=["
            << reason << "]: " << body.substr(0, 400);
      }
    }
  }
}

TEST(FlightRecorderTest, DumpRacesConcurrentWriters) {
  RecorderTestEnv env;
  auto& fr = FlightRecorder::Get();
  TraceBuffer::Get().SetEnabled(true);
  WaitProfiler::SetEnabled(true);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 8; ++t) {
    writers.emplace_back([&stop, &fr, t] {
      uint64_t n = 0;
      do {
        TraceBuffer::Get().Record(obs::TraceEventType::kLockWaitBegin, t, n);
        {
          obs::OpScope op(obs::OpType::kWrite);
          obs::WaitScope ws(obs::WaitState::kLatchWait);
        }
        if (n % 64 == 0) {
          fr.NoteSnapshot("{\"writer\":" + std::to_string(t) + "}");
        }
        ++n;
      } while (!stop.load(std::memory_order_relaxed));
    });
  }
  for (int i = 0; i < 10; ++i) {
    std::string path;
    ASSERT_TRUE(fr.DumpNow("race_test", &path));
    EXPECT_TRUE(JsonIsValid(ReadFileOrDie(path)));
  }
  stop.store(true);
  for (auto& th : writers) th.join();
}

}  // namespace
}  // namespace oir
