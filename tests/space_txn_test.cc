// Space manager and transaction manager tests: the three-state page
// lifecycle of Section 4.1.3, chunk allocation, alloc/dealloc undo, commit
// and abort behaviour, nested-top-action survival.

#include <gtest/gtest.h>

#include "space/space_manager.h"
#include "tests/test_util.h"
#include "txn/transaction_manager.h"

namespace oir {
namespace {

using test::MakeDb;
using test::NumKey;

class SpaceTest : public ::testing::Test {
 protected:
  SpaceTest()
      : disk_(512, 8), log_(), space_(&disk_, &log_, kFirstDataPageId) {
    ctx_.txn_id = 1;
  }
  MemDisk disk_;
  LogManager log_;
  SpaceManager space_;
  TxnContext ctx_;
};

TEST_F(SpaceTest, LifecycleStates) {
  PageId p;
  ASSERT_OK(space_.Allocate(&ctx_, &p));
  EXPECT_EQ(space_.GetState(p), PageState::kAllocated);
  ASSERT_OK(space_.Deallocate(&ctx_, p));
  EXPECT_EQ(space_.GetState(p), PageState::kDeallocated);
  space_.Free(p);
  EXPECT_EQ(space_.GetState(p), PageState::kFree);
}

TEST_F(SpaceTest, AllocationIsLogged) {
  PageId p;
  ASSERT_OK(space_.Allocate(&ctx_, &p));
  ASSERT_OK(space_.Deallocate(&ctx_, p));
  int allocs = 0, deallocs = 0;
  for (auto it = log_.Scan(log_.head_lsn()); it.Valid(); it.Next()) {
    if (it.record().type == LogType::kAlloc) ++allocs;
    if (it.record().type == LogType::kDealloc) ++deallocs;
  }
  EXPECT_EQ(allocs, 1);
  EXPECT_EQ(deallocs, 1);
}

TEST_F(SpaceTest, ChunkAllocationIsContiguous) {
  std::vector<PageId> pages;
  ASSERT_OK(space_.AllocateChunk(&ctx_, 10, &pages));
  ASSERT_EQ(pages.size(), 10u);
  for (size_t i = 1; i < pages.size(); ++i) {
    EXPECT_EQ(pages[i], pages[i - 1] + 1);
  }
  // Disk grew to cover the chunk.
  EXPECT_GE(disk_.NumPages(), pages.back() + 1);
}

TEST_F(SpaceTest, FreedRunsAreReusedForChunks) {
  std::vector<PageId> first;
  ASSERT_OK(space_.AllocateChunk(&ctx_, 8, &first));
  for (PageId p : first) ASSERT_OK(space_.Deallocate(&ctx_, p));
  for (PageId p : first) space_.Free(p);
  std::vector<PageId> second;
  ASSERT_OK(space_.AllocateChunk(&ctx_, 8, &second));
  EXPECT_EQ(second, first);  // the contiguous freed run is found again
}

TEST_F(SpaceTest, FragmentedFreeSpaceSkippedForChunks) {
  std::vector<PageId> pages;
  ASSERT_OK(space_.AllocateChunk(&ctx_, 8, &pages));
  // Free every other page: no run of 3 exists below the high-water mark.
  for (size_t i = 0; i < pages.size(); i += 2) {
    ASSERT_OK(space_.Deallocate(&ctx_, pages[i]));
    space_.Free(pages[i]);
  }
  std::vector<PageId> chunk;
  ASSERT_OK(space_.AllocateChunk(&ctx_, 3, &chunk));
  EXPECT_GT(chunk[0], pages.back());  // extended instead of fragmenting
}

TEST_F(SpaceTest, UndoHooks) {
  PageId p;
  ASSERT_OK(space_.Allocate(&ctx_, &p));
  space_.UndoAlloc(p);
  EXPECT_EQ(space_.GetState(p), PageState::kFree);
  ASSERT_OK(space_.Allocate(&ctx_, &p));
  ASSERT_OK(space_.Deallocate(&ctx_, p));
  space_.UndoDealloc(p);
  EXPECT_EQ(space_.GetState(p), PageState::kAllocated);
}

TEST_F(SpaceTest, CountAndListByState) {
  std::vector<PageId> pages;
  ASSERT_OK(space_.AllocateChunk(&ctx_, 5, &pages));
  ASSERT_OK(space_.Deallocate(&ctx_, pages[0]));
  ASSERT_OK(space_.Deallocate(&ctx_, pages[1]));
  EXPECT_EQ(space_.CountInState(PageState::kAllocated), 3u);
  EXPECT_EQ(space_.CountInState(PageState::kDeallocated), 2u);
  auto dealloc = space_.PagesInState(PageState::kDeallocated);
  EXPECT_EQ(dealloc.size(), 2u);
}

TEST_F(SpaceTest, FreeAllDeallocatedForRecovery) {
  std::vector<PageId> pages;
  ASSERT_OK(space_.AllocateChunk(&ctx_, 4, &pages));
  ASSERT_OK(space_.Deallocate(&ctx_, pages[1]));
  ASSERT_OK(space_.Deallocate(&ctx_, pages[3]));
  auto freed = space_.FreeAllDeallocated();
  EXPECT_EQ(freed.size(), 2u);
  EXPECT_EQ(space_.CountInState(PageState::kDeallocated), 0u);
  EXPECT_EQ(space_.GetState(pages[1]), PageState::kFree);
}

// ------------------------------------------------------------ transactions

TEST(TxnTest, CommitForcesLog) {
  auto db = MakeDb();
  auto txn = db->BeginTxn();
  ASSERT_OK(db->index()->Insert(txn.get(), "k", 1));
  Lsn before = db->log_manager()->durable_lsn();
  ASSERT_OK(db->Commit(txn.get()));
  EXPECT_GT(db->log_manager()->durable_lsn(), before);
  EXPECT_EQ(txn->state(), TxnState::kCommitted);
}

TEST(TxnTest, AbortReleasesLogicalLocks) {
  auto db = MakeDb();
  auto t1 = db->BeginTxn();
  ASSERT_OK(db->index()->Insert(t1.get(), "k", 7));
  // t2 conflicts on the row lock until t1 finishes.
  auto t2 = db->BeginTxn();
  EXPECT_TRUE(db->lock_manager()
                  ->Lock(t2->id(), LogicalLockKey(7), LockMode::kX, true)
                  .IsBusy());
  ASSERT_OK(db->Abort(t1.get()));
  ASSERT_OK(db->lock_manager()->Lock(t2->id(), LogicalLockKey(7),
                                     LockMode::kX, true));
  db->lock_manager()->Unlock(t2->id(), LogicalLockKey(7));
  ASSERT_OK(db->Commit(t2.get()));
}

TEST(TxnTest, TxnIdsMonotonic) {
  auto db = MakeDb();
  auto a = db->BeginTxn();
  auto b = db->BeginTxn();
  EXPECT_LT(a->id(), b->id());
  ASSERT_OK(db->Commit(a.get()));
  ASSERT_OK(db->Commit(b.get()));
}

TEST(TxnTest, ActiveCountTracksLifecycle) {
  auto db = MakeDb();
  EXPECT_EQ(db->txn_manager()->NumActive(), 0u);
  auto a = db->BeginTxn();
  auto b = db->BeginTxn();
  EXPECT_EQ(db->txn_manager()->NumActive(), 2u);
  ASSERT_OK(db->Commit(a.get()));
  ASSERT_OK(db->Abort(b.get()));
  EXPECT_EQ(db->txn_manager()->NumActive(), 0u);
}

TEST(TxnTest, AbortOfReadOnlyTxnIsCheap) {
  auto db = MakeDb();
  test::InsertMany(db.get(), {1, 2, 3});
  auto txn = db->BeginTxn();
  bool found;
  ASSERT_OK(db->index()->Lookup(txn.get(), NumKey(1), 1, &found));
  ASSERT_OK(db->Abort(txn.get()));
  test::ExpectTreeContains(db.get(), {1, 2, 3});
}

TEST(TxnTest, MixedCommitAbortInterleaving) {
  auto db = MakeDb();
  auto keep = db->BeginTxn();
  auto drop = db->BeginTxn();
  for (uint64_t i = 0; i < 300; ++i) {
    if (i % 2 == 0) {
      ASSERT_OK(db->index()->Insert(keep.get(), NumKey(i), i));
    } else {
      ASSERT_OK(db->index()->Insert(drop.get(), NumKey(i), i));
    }
  }
  ASSERT_OK(db->Abort(drop.get()));
  ASSERT_OK(db->Commit(keep.get()));
  std::set<uint64_t> expect;
  for (uint64_t i = 0; i < 300; i += 2) expect.insert(i);
  test::ExpectTreeContains(db.get(), expect);
}

TEST(TxnTest, CompletedNtaSurvivesAbortEvenAfterMoreWork) {
  auto db = MakeDb();
  // Fill one leaf exactly to the brink, in a committed txn.
  std::vector<uint64_t> base;
  for (uint64_t i = 0; i < 80; ++i) base.push_back(i * 2);
  test::InsertMany(db.get(), base);
  TreeStats before;
  ASSERT_OK(db->tree()->Validate(&before));

  // This txn triggers splits (NTAs) and then aborts.
  auto txn = db->BeginTxn();
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_OK(db->index()->Insert(txn.get(), NumKey(1000 + i), 1000 + i));
  }
  ASSERT_OK(db->Abort(txn.get()));

  TreeStats after;
  ASSERT_OK(db->tree()->Validate(&after));
  // Keys are gone; the split pages may remain (top actions are not undone).
  EXPECT_EQ(after.num_keys, base.size());
  EXPECT_GE(after.num_leaf_pages, before.num_leaf_pages);
  test::ExpectTreeContains(db.get(),
                           std::set<uint64_t>(base.begin(), base.end()));
}

}  // namespace
}  // namespace oir
