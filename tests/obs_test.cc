// Tests for the observability subsystem: JSON writer/validator, metric
// registry under concurrent writers, trace ring wraparound and disabled-path
// behaviour, rebuild progress monotonicity racing online writers, the lock
// watchdog, and the Db stats export surface.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/rebuild.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "sync/lock_manager.h"
#include "tests/test_util.h"

namespace oir {
namespace {

using obs::JsonIsValid;
using obs::JsonWriter;
using obs::MetricRegistry;
using obs::TraceBuffer;
using obs::TraceEventType;
using test::MakeDb;
using test::NumKey;

// Restores the global timer/trace enable flags on scope exit, so a failing
// test can't leak an enabled hot path into the rest of the suite.
struct ObsFlagGuard {
  ~ObsFlagGuard() {
    MetricRegistry::SetTimersEnabled(false);
    TraceBuffer::Get().SetEnabled(false);
    TraceBuffer::Get().Clear();
  }
};

TEST(JsonWriterTest, ObjectsArraysAndEscaping) {
  JsonWriter w;
  w.BeginObject();
  w.Key("n").Value(uint64_t{42});
  w.Key("s").Value("a\"b\\c\n\t");
  w.Key("neg").Value(int64_t{-7});
  w.Key("f").Value(1.5);
  w.Key("b").Value(true);
  w.Key("arr").BeginArray();
  w.Value(uint64_t{1});
  w.Value(uint64_t{2});
  w.EndArray();
  w.Key("empty").BeginObject().EndObject();
  w.EndObject();
  const std::string doc = w.str();
  EXPECT_TRUE(JsonIsValid(doc)) << doc;
  EXPECT_NE(doc.find("\"s\":\"a\\\"b\\\\c\\n\\t\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"arr\":[1,2]"), std::string::npos) << doc;
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeZero) {
  JsonWriter w;
  w.BeginObject();
  w.Key("nan").Value(0.0 / 0.0);
  w.Key("inf").Value(1.0 / 0.0);
  w.EndObject();
  EXPECT_TRUE(JsonIsValid(w.str())) << w.str();
}

TEST(JsonValidatorTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonIsValid("{}"));
  EXPECT_TRUE(JsonIsValid("[1,2.5,-3e2,\"x\",true,false,null]"));
  EXPECT_TRUE(JsonIsValid("{\"a\":{\"b\":[{}]}}"));
  EXPECT_FALSE(JsonIsValid(""));
  EXPECT_FALSE(JsonIsValid("{"));
  EXPECT_FALSE(JsonIsValid("{\"a\":}"));
  EXPECT_FALSE(JsonIsValid("{\"a\":1,}"));
  EXPECT_FALSE(JsonIsValid("[1 2]"));
  EXPECT_FALSE(JsonIsValid("{\"a\":01}"));
  EXPECT_FALSE(JsonIsValid("\"unterminated"));
  EXPECT_FALSE(JsonIsValid("{} trailing"));
}

TEST(MetricRegistryTest, SnapshotAndResetUnderConcurrentWriters) {
  ObsFlagGuard guard;
  MetricRegistry::SetTimersEnabled(true);
  auto& reg = MetricRegistry::Get();
  obs::TimerStat* t = reg.Timer("test.obs.concurrent_ns");
  t->Reset();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int i = 0; i < kThreads; ++i) {
    writers.emplace_back([t] {
      for (int j = 1; j <= kPerThread; ++j) t->Record(j);
    });
  }
  // Snapshot concurrently with the writers: counts must be coherent
  // (non-decreasing, never above the final total).
  uint64_t last = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    auto snap = reg.TakeSnapshot();
    for (const auto& ts : snap.timers) {
      if (ts.name == "test.obs.concurrent_ns") {
        EXPECT_GE(ts.count, last);
        EXPECT_LE(ts.count, uint64_t{kThreads} * kPerThread);
        last = ts.count;
      }
    }
    if (last == uint64_t{kThreads} * kPerThread) break;
    std::this_thread::yield();
    static int spins = 0;
    if (++spins > 1000000) break;
  }
  for (auto& th : writers) th.join();

  Histogram h;
  t->MergeInto(&h);
  EXPECT_EQ(h.Count(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h.Min(), 1u);
  EXPECT_EQ(h.Max(), uint64_t{kPerThread});

  EXPECT_TRUE(JsonIsValid(reg.ToJson())) << reg.ToJson();

  t->Reset();
  Histogram h2;
  t->MergeInto(&h2);
  EXPECT_EQ(h2.Count(), 0u);
}

TEST(MetricRegistryTest, GlobalCountersAreRegistered) {
  auto snap = MetricRegistry::Get().TakeSnapshot();
  size_t fields = 0;
  GlobalCounters::Get().ForEach(
      [&fields](const char*, std::atomic<uint64_t>&) { ++fields; });
  EXPECT_EQ(snap.counters.size(), fields);
  bool found = false;
  for (const auto& [name, _] : snap.counters) {
    if (name == "lock_watchdog_fires") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(MetricRegistryTest, DisabledTimersRecordNothing) {
  ObsFlagGuard guard;
  MetricRegistry::SetTimersEnabled(false);
  auto& reg = MetricRegistry::Get();
  obs::TimerStat* t = reg.Timer("test.obs.disabled_ns");
  t->Reset();
  for (int i = 0; i < 1000; ++i) {
    obs::ScopedTimer scope(t);
  }
  Histogram h;
  t->MergeInto(&h);
  EXPECT_EQ(h.Count(), 0u);
}

TEST(MetricRegistryTest, ScopedTimerRecordsOnceAcrossExitPaths) {
  ObsFlagGuard guard;
  MetricRegistry::SetTimersEnabled(true);
  auto& reg = MetricRegistry::Get();
  obs::TimerStat* t = reg.Timer("test.obs.exit_paths_ns");
  t->Reset();

  // Exception unwind: the destructor must record exactly once.
  try {
    obs::ScopedTimer scope(t);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  Histogram h1;
  t->MergeInto(&h1);
  EXPECT_EQ(h1.Count(), 1u);

  // Explicit Stop() (the longjmp-style early-exit hook) is idempotent and
  // the destructor must not double-record after it.
  {
    obs::ScopedTimer scope(t);
    scope.Stop();
    scope.Stop();
  }
  Histogram h2;
  t->MergeInto(&h2);
  EXPECT_EQ(h2.Count(), 2u);

  // Cancel() suppresses the record entirely.
  {
    obs::ScopedTimer scope(t);
    scope.Cancel();
  }
  Histogram h3;
  t->MergeInto(&h3);
  EXPECT_EQ(h3.Count(), 2u);
}

TEST(MetricRegistryTest, GaugesSampledAtSnapshot) {
  auto& reg = MetricRegistry::Get();
  std::atomic<uint64_t> v{7};
  reg.RegisterGauge("test.obs.gauge", [&v] { return v.load(); });
  auto snap = reg.TakeSnapshot();
  bool found = false;
  for (const auto& [name, val] : snap.gauges) {
    if (name == "test.obs.gauge") {
      found = true;
      EXPECT_EQ(val, 7u);
    }
  }
  EXPECT_TRUE(found);
  reg.UnregisterGauge("test.obs.gauge");
  auto snap2 = reg.TakeSnapshot();
  for (const auto& [name, _] : snap2.gauges) {
    EXPECT_NE(name, "test.obs.gauge");
  }
}

TEST(TraceTest, DisabledRecordsNothing) {
  ObsFlagGuard guard;
  auto& tb = TraceBuffer::Get();
  tb.SetEnabled(false);
  tb.Clear();
  OIR_TRACE(TraceEventType::kCheckpoint, 1, 2);
  EXPECT_TRUE(tb.Snapshot().empty());
}

TEST(TraceTest, RecordsAndWrapsAround) {
  ObsFlagGuard guard;
  auto& tb = TraceBuffer::Get();
  tb.SetEnabled(true);
  tb.Clear();

  // One thread writes into one ring; overfill it so it wraps.
  const size_t total = TraceBuffer::kRingCapacity + 100;
  for (size_t i = 0; i < total; ++i) {
    tb.Record(TraceEventType::kSmoSplit, i, i + 1);
  }
  std::vector<obs::TraceRecord> snap = tb.Snapshot();
  ASSERT_EQ(snap.size(), TraceBuffer::kRingCapacity);
  // Only the most recent kRingCapacity survive; sorted by timestamp.
  uint64_t min_arg = ~0ull, max_arg = 0;
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].type, TraceEventType::kSmoSplit);
    if (i > 0) {
      EXPECT_GE(snap[i].ts_ns, snap[i - 1].ts_ns);
    }
    min_arg = std::min(min_arg, snap[i].arg0);
    max_arg = std::max(max_arg, snap[i].arg0);
  }
  EXPECT_EQ(max_arg, total - 1);
  EXPECT_EQ(min_arg, total - TraceBuffer::kRingCapacity);

  EXPECT_TRUE(JsonIsValid(tb.DumpJson()));
  EXPECT_TRUE(JsonIsValid(tb.DumpChromeTracing()));
}

TEST(TraceTest, ConcurrentWritersAndDumper) {
  ObsFlagGuard guard;
  auto& tb = TraceBuffer::Get();
  tb.SetEnabled(true);
  tb.Clear();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int i = 0; i < 4; ++i) {
    writers.emplace_back([&tb, &stop, i] {
      uint64_t n = 0;
      // At least one record even if the dumper finishes before this thread
      // is first scheduled.
      do {
        tb.Record(TraceEventType::kLockWaitBegin, i, n++);
      } while (!stop.load(std::memory_order_relaxed));
    });
  }
  for (int i = 0; i < 20; ++i) {
    std::string doc = tb.DumpJson();
    EXPECT_TRUE(JsonIsValid(doc));
  }
  stop.store(true);
  for (auto& th : writers) th.join();
  EXPECT_FALSE(tb.Snapshot().empty());
}

TEST(TraceTest, WrapAroundWhileReaderRacesEightWriters) {
  ObsFlagGuard guard;
  auto& tb = TraceBuffer::Get();
  tb.SetEnabled(true);
  tb.Clear();
  // Each writer overfills rings while a reader dumps: wrap-around
  // overwrites must never tear a record or corrupt the JSON.
  constexpr int kWriters = 8;
  const size_t per_writer = TraceBuffer::kRingCapacity + 512;
  std::vector<std::thread> writers;
  for (int i = 0; i < kWriters; ++i) {
    writers.emplace_back([&tb, per_writer, i] {
      for (size_t n = 0; n < per_writer; ++n) {
        tb.Record(TraceEventType::kWalSegSeal, i, n);
      }
    });
  }
  for (int i = 0; i < 30; ++i) {
    std::string doc = tb.DumpJson();
    EXPECT_TRUE(JsonIsValid(doc));
  }
  for (auto& th : writers) th.join();
  std::vector<obs::TraceRecord> snap = tb.Snapshot();
  EXPECT_FALSE(snap.empty());
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_GE(snap[i].ts_ns, snap[i - 1].ts_ns);
  }
  EXPECT_TRUE(JsonIsValid(tb.DumpJson()));
}

TEST(TraceTest, ChromeTracingHasSlicesForRebuildPhases) {
  ObsFlagGuard guard;
  auto& tb = TraceBuffer::Get();
  tb.SetEnabled(true);
  tb.Clear();

  auto db = MakeDb();
  std::vector<uint64_t> ids;
  for (uint64_t i = 0; i < 2000; ++i) ids.push_back(i);
  test::InsertMany(db.get(), ids);
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(RebuildOptions(), &res));
  EXPECT_GT(res.top_actions, 0u);

  std::string doc = tb.DumpChromeTracing();
  EXPECT_TRUE(JsonIsValid(doc)) << doc.substr(0, 400);
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("top_action"), std::string::npos);
  EXPECT_NE(doc.find("copy_phase"), std::string::npos);
  EXPECT_NE(doc.find("propagate_phase"), std::string::npos);
  // Duration events come in begin/end pairs.
  EXPECT_NE(doc.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"E\""), std::string::npos);
}

// Polls OnlineRebuilder::progress() from another thread while OLTP writers
// race the rebuild: every published field must be monotone, and the final
// snapshot must agree with the RebuildResult.
TEST(RebuildProgressTest, MonotonicWhilePolledUnderConcurrentWriters) {
  auto db = MakeDb();
  std::vector<uint64_t> ids;
  for (uint64_t i = 0; i < 4000; ++i) ids.push_back(i * 2);
  test::InsertMany(db.get(), ids);

  OnlineRebuilder rebuilder(db->tree(), db->txn_manager(),
                            db->buffer_manager(), db->log_manager(),
                            db->lock_manager(), db->space_manager());

  std::atomic<bool> stop{false};
  std::thread writer([&db, &stop] {
    uint64_t n = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      auto txn = db->BeginTxn();
      Status s = db->index()->Insert(txn.get(), NumKey(n * 2 + 1), n * 2 + 1);
      if (s.ok()) {
        EXPECT_OK(db->Commit(txn.get()));
      } else {
        EXPECT_OK(db->Abort(txn.get()));
      }
      n++;
    }
  });

  std::atomic<bool> rebuild_done{false};
  std::thread poller([&rebuilder, &rebuild_done] {
    obs::RebuildProgress last;
    while (!rebuild_done.load(std::memory_order_relaxed)) {
      obs::RebuildProgress p = rebuilder.progress();
      EXPECT_GE(p.leaves_rebuilt, last.leaves_rebuilt);
      EXPECT_GE(p.top_actions, last.top_actions);
      EXPECT_GE(p.transactions, last.transactions);
      EXPECT_GE(p.copy_us, last.copy_us);
      EXPECT_GE(p.propagate_us, last.propagate_us);
      EXPECT_GE(p.flush_us, last.flush_us);
      EXPECT_GE(p.retries, last.retries);
      EXPECT_GE(p.batches_truncated, last.batches_truncated);
      last = p;
      std::this_thread::yield();
    }
  });

  uint64_t callbacks = 0;
  RebuildOptions opts;
  opts.on_progress = [&callbacks](const obs::RebuildProgress& p) {
    ++callbacks;
    // Mid-rebuild callbacks see running; the final one (after Finish) done.
    EXPECT_TRUE(p.running || p.done);
  };
  RebuildResult res;
  ASSERT_OK(rebuilder.Run(opts, &res));
  rebuild_done.store(true);
  poller.join();
  stop.store(true);
  writer.join();

  obs::RebuildProgress final = rebuilder.progress();
  EXPECT_FALSE(final.running);
  EXPECT_TRUE(final.done);
  EXPECT_EQ(final.top_actions, res.top_actions);
  EXPECT_EQ(final.transactions, res.transactions);
  EXPECT_EQ(final.leaves_rebuilt, res.old_leaf_pages);
  EXPECT_GT(final.leaves_total, 0u);
  EXPECT_GT(final.copy_us + final.propagate_us + final.flush_us, 0u);
  EXPECT_GE(callbacks, res.top_actions);

  TreeStats tstats;
  ASSERT_OK(db->tree()->Validate(&tstats));
}

TEST(WatchdogTest, FiresAndNamesPageWaiterAndHolder) {
  ObsFlagGuard guard;
  TraceBuffer::Get().SetEnabled(true);
  TraceBuffer::Get().Clear();

  LockManager lm;
  lm.set_long_wait_threshold(std::chrono::milliseconds(50));
  const LockKey key = AddressLockKey(777);
  ASSERT_OK(lm.Lock(/*owner=*/1, key, LockMode::kX, /*conditional=*/false));

  const uint64_t fires_before =
      GlobalCounters::Get().lock_watchdog_fires.load();
  testing::internal::CaptureStderr();

  std::thread waiter([&lm, key] {
    // Blocks behind txn 1 until it unlocks; the watchdog fires at ~50 ms.
    EXPECT_OK(lm.Lock(/*owner=*/2, key, LockMode::kX, /*conditional=*/false));
    lm.Unlock(2, key);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  lm.Unlock(1, key);
  waiter.join();

  std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("lock watchdog"), std::string::npos) << err;
  EXPECT_NE(err.find("txn 2"), std::string::npos) << err;     // requester
  EXPECT_NE(err.find("page 777"), std::string::npos) << err;  // blocked page
  EXPECT_NE(err.find("holder: txn 1"), std::string::npos) << err;

  EXPECT_GE(GlobalCounters::Get().lock_watchdog_fires.load(),
            fires_before + 1);

  bool traced = false;
  for (const auto& r : TraceBuffer::Get().Snapshot()) {
    if (r.type == TraceEventType::kLockWatchdog && r.arg0 == 777 &&
        r.arg1 == 1) {
      traced = true;
    }
  }
  EXPECT_TRUE(traced);
}

TEST(WatchdogTest, ZeroThresholdDisables) {
  LockManager lm;
  lm.set_long_wait_threshold(std::chrono::milliseconds(0));
  const LockKey key = AddressLockKey(888);
  ASSERT_OK(lm.Lock(1, key, LockMode::kX, false));
  const uint64_t before = GlobalCounters::Get().lock_watchdog_fires.load();
  std::thread waiter([&lm, key] {
    EXPECT_OK(lm.Lock(2, key, LockMode::kX, false));
    lm.Unlock(2, key);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  lm.Unlock(1, key);
  waiter.join();
  EXPECT_EQ(GlobalCounters::Get().lock_watchdog_fires.load(), before);
}

TEST(DbStatsTest, DumpStatsJsonIsValidWithAllSections) {
  ObsFlagGuard guard;
  obs::MetricRegistry::SetTimersEnabled(true);
  auto db = MakeDb();
  std::vector<uint64_t> ids;
  for (uint64_t i = 0; i < 1500; ++i) ids.push_back(i);
  test::InsertMany(db.get(), ids);
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(RebuildOptions(), &res));

  std::string doc = db->DumpStatsJson();
  EXPECT_TRUE(JsonIsValid(doc)) << doc.substr(0, 400);
  for (const char* section :
       {"\"counters\"", "\"pool\"", "\"wal\"", "\"lock\"", "\"btree\"",
        "\"space\"", "\"rebuild\"", "\"recovery\"", "\"timers\""}) {
    EXPECT_NE(doc.find(section), std::string::npos) << section;
  }
  // The rebuild report made it through the JSON path with real content.
  EXPECT_NE(doc.find("\"keys_moved\""), std::string::npos);
  // Timers were enabled during the rebuild, so hot-path scopes recorded.
  EXPECT_NE(doc.find("rebuild.copy_ns"), std::string::npos);

  StatsReport report;
  ASSERT_OK(db->GetStats(&report));
  EXPECT_GT(report.pool_frames, 0u);
  EXPECT_GT(report.pages_allocated, 0u);
  EXPECT_FALSE(report.last_rebuild_json.empty());
  EXPECT_TRUE(JsonIsValid(report.last_rebuild_json));

  EXPECT_FALSE(db->DumpStatsText().empty());
}

TEST(DbStatsTest, RecoveryStatsExportedThroughJsonPath) {
  auto db = MakeDb();
  std::vector<uint64_t> ids;
  for (uint64_t i = 0; i < 200; ++i) ids.push_back(i);
  test::InsertMany(db.get(), ids);
  RecoveryStats rstats;
  ASSERT_OK(db->CrashAndRecover(&rstats));
  EXPECT_TRUE(JsonIsValid(rstats.ToJson())) << rstats.ToJson();

  std::string doc = db->DumpStatsJson();
  EXPECT_TRUE(JsonIsValid(doc));
  EXPECT_NE(doc.find("\"records_scanned\""), std::string::npos) << doc;
}

TEST(RebuildResultTest, ToJsonRoundTrips) {
  RebuildResult r;
  r.old_leaf_pages = 10;
  r.keys_moved = 1234;
  std::string j = r.ToJson();
  EXPECT_TRUE(JsonIsValid(j)) << j;
  EXPECT_NE(j.find("\"old_leaf_pages\":10"), std::string::npos);
  EXPECT_NE(j.find("\"keys_moved\":1234"), std::string::npos);
}

}  // namespace
}  // namespace oir
