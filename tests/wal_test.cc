// Write-ahead log tests: record serialization round trips for every type,
// framing + CRC integrity, durability boundary, scans, torn tails.

#include "wal/log_manager.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "wal/log_record.h"

namespace oir {
namespace {

LogRecord RoundTrip(const LogRecord& in) {
  std::string buf;
  in.EncodeTo(&buf);
  LogRecord out;
  Status s = LogRecord::DecodeFrom(Slice(buf), &out);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

TEST(LogRecordTest, HeaderFieldsRoundTrip) {
  LogRecord rec;
  rec.type = LogType::kInsert;
  rec.txn_id = 77;
  rec.prev_lsn = 123456;
  rec.page_id = 42;
  rec.old_page_lsn = 999;
  rec.is_clr = true;
  rec.undo_next = 555;
  rec.pos = 7;
  rec.row = "rowbytes";
  rec.level = 3;
  LogRecord out = RoundTrip(rec);
  EXPECT_EQ(out.type, LogType::kInsert);
  EXPECT_EQ(out.txn_id, 77u);
  EXPECT_EQ(out.prev_lsn, 123456u);
  EXPECT_EQ(out.page_id, 42u);
  EXPECT_EQ(out.old_page_lsn, 999u);
  EXPECT_TRUE(out.is_clr);
  EXPECT_EQ(out.undo_next, 555u);
  EXPECT_EQ(out.pos, 7);
  EXPECT_EQ(out.row, "rowbytes");
  EXPECT_EQ(out.level, 3);
}

TEST(LogRecordTest, BatchRecordsRoundTrip) {
  for (LogType t : {LogType::kBatchInsert, LogType::kBatchDelete}) {
    LogRecord rec;
    rec.type = t;
    rec.page_id = 9;
    rec.pos = 2;
    rec.level = 1;
    rec.rows = {"alpha", "", "gamma-with-longer-content"};
    LogRecord out = RoundTrip(rec);
    EXPECT_EQ(out.rows, rec.rows);
    EXPECT_EQ(out.pos, 2);
    EXPECT_EQ(out.level, 1);
  }
}

TEST(LogRecordTest, KeyCopyRoundTrip) {
  for (LogType t : {LogType::kKeyCopy, LogType::kKeyCopyUndo}) {
    LogRecord rec;
    rec.type = t;
    rec.copies.push_back(KeyCopyEntry{10, 20, 0, 15, 3, 777});
    rec.copies.push_back(KeyCopyEntry{11, 20, 2, 9, 19, 888});
    LogRecord out = RoundTrip(rec);
    ASSERT_EQ(out.copies.size(), 2u);
    EXPECT_EQ(out.copies[0].src_page, 10u);
    EXPECT_EQ(out.copies[0].tgt_page, 20u);
    EXPECT_EQ(out.copies[0].src_first, 0);
    EXPECT_EQ(out.copies[0].src_last, 15);
    EXPECT_EQ(out.copies[0].tgt_first, 3);
    EXPECT_EQ(out.copies[0].src_ts, 777u);
    EXPECT_EQ(out.copies[1].src_ts, 888u);
  }
}

TEST(LogRecordTest, FormatAndLinkRecordsRoundTrip) {
  LogRecord fmt;
  fmt.type = LogType::kFormatPage;
  fmt.page_id = 5;
  fmt.level = 2;
  fmt.prev_page = 4;
  fmt.next_page = 6;
  LogRecord out = RoundTrip(fmt);
  EXPECT_EQ(out.level, 2);
  EXPECT_EQ(out.prev_page, 4u);
  EXPECT_EQ(out.next_page, 6u);

  for (LogType t : {LogType::kSetPrevLink, LogType::kSetNextLink,
                    LogType::kMetaRoot}) {
    LogRecord link;
    link.type = t;
    link.page_id = 5;
    link.link_old = 88;
    link.link_new = 99;
    LogRecord lout = RoundTrip(link);
    EXPECT_EQ(lout.link_old, 88u);
    EXPECT_EQ(lout.link_new, 99u);
  }
}

TEST(LogRecordTest, ControlRecordsRoundTrip) {
  for (LogType t : {LogType::kBeginTxn, LogType::kCommitTxn,
                    LogType::kAbortTxn, LogType::kEndTxn, LogType::kNtaEnd,
                    LogType::kAlloc, LogType::kDealloc, LogType::kFreePage}) {
    LogRecord rec;
    rec.type = t;
    rec.page_id = 3;
    rec.undo_next = 1234;
    LogRecord out = RoundTrip(rec);
    EXPECT_EQ(out.type, t);
    EXPECT_EQ(out.page_id, 3u);
    EXPECT_EQ(out.undo_next, 1234u);
  }
}

TEST(LogRecordTest, TypeNamesAreDistinct) {
  std::set<std::string> names;
  for (int t = 1; t <= 20; ++t) {
    names.insert(LogTypeName(static_cast<LogType>(t)));
  }
  EXPECT_EQ(names.size(), 20u);
}

TEST(LogRecordTest, RebuildProgressRoundTrip) {
  LogRecord rec;
  rec.type = LogType::kRebuildProgress;
  rec.rebuild_progress.active = true;
  rec.rebuild_progress.done = false;
  rec.rebuild_progress.has_cursor = true;
  rec.rebuild_progress.cursor = std::string("key\0with-nul", 12);
  rec.rebuild_progress.leaves_rebuilt = 123;
  rec.rebuild_progress.top_actions = 45;
  rec.rebuild_progress.transactions = 6;
  rec.rebuild_progress.new_page_hwm = 789;
  LogRecord out = RoundTrip(rec);
  EXPECT_EQ(out.type, LogType::kRebuildProgress);
  EXPECT_TRUE(out.rebuild_progress.active);
  EXPECT_FALSE(out.rebuild_progress.done);
  EXPECT_TRUE(out.rebuild_progress.has_cursor);
  EXPECT_EQ(out.rebuild_progress.cursor, rec.rebuild_progress.cursor);
  EXPECT_EQ(out.rebuild_progress.leaves_rebuilt, 123u);
  EXPECT_EQ(out.rebuild_progress.top_actions, 45u);
  EXPECT_EQ(out.rebuild_progress.transactions, 6u);
  EXPECT_EQ(out.rebuild_progress.new_page_hwm, 789u);
  EXPECT_FALSE(out.IsPageUpdate());

  // The done marker round-trips as inactive.
  LogRecord done;
  done.type = LogType::kRebuildProgress;
  done.rebuild_progress.done = true;
  LogRecord dout = RoundTrip(done);
  EXPECT_FALSE(dout.rebuild_progress.active);
  EXPECT_TRUE(dout.rebuild_progress.done);
}

TEST(LogRecordTest, CheckpointEmbedsRebuildProgress) {
  LogRecord ckpt;
  ckpt.type = LogType::kCheckpoint;
  ckpt.old_page_lsn = 4242;
  ckpt.ckpt_allocated = {2, 3, 5};
  ckpt.ckpt_deallocated = {8};
  ckpt.ckpt_end_page = 16;
  ckpt.ckpt_next_txn_id = 99;
  ckpt.rebuild_progress.active = true;
  ckpt.rebuild_progress.has_cursor = true;
  ckpt.rebuild_progress.cursor = "mid-rebuild-cursor";
  ckpt.rebuild_progress.leaves_rebuilt = 31;
  LogRecord out = RoundTrip(ckpt);
  EXPECT_EQ(out.ckpt_allocated, ckpt.ckpt_allocated);
  EXPECT_EQ(out.ckpt_end_page, 16u);
  EXPECT_TRUE(out.rebuild_progress.active);
  EXPECT_EQ(out.rebuild_progress.cursor, "mid-rebuild-cursor");
  EXPECT_EQ(out.rebuild_progress.leaves_rebuilt, 31u);

  // A checkpoint with no rebuild in flight stays inactive after decode.
  LogRecord idle;
  idle.type = LogType::kCheckpoint;
  idle.ckpt_end_page = 4;
  LogRecord iout = RoundTrip(idle);
  EXPECT_FALSE(iout.rebuild_progress.active);
  EXPECT_FALSE(iout.rebuild_progress.has_cursor);
}

TEST(LogManagerTest, AppendChainsPrevLsn) {
  LogManager log;
  TxnContext ctx{42, kInvalidLsn};
  LogRecord a;
  a.type = LogType::kBeginTxn;
  Lsn la = log.Append(&a, &ctx);
  LogRecord b;
  b.type = LogType::kCommitTxn;
  Lsn lb = log.Append(&b, &ctx);
  EXPECT_GT(lb, la);
  EXPECT_EQ(ctx.last_lsn, lb);
  LogRecord read;
  ASSERT_OK(log.ReadRecord(lb, &read));
  EXPECT_EQ(read.prev_lsn, la);
  EXPECT_EQ(read.txn_id, 42u);
}

TEST(LogManagerTest, ScanVisitsRecordsInOrder) {
  LogManager log;
  TxnContext ctx{1, kInvalidLsn};
  std::vector<Lsn> lsns;
  for (int i = 0; i < 20; ++i) {
    LogRecord rec;
    rec.type = LogType::kInsert;
    rec.page_id = i;
    rec.row = std::string(i, 'x');
    lsns.push_back(log.Append(&rec, &ctx));
  }
  // The first Append lazily inserts the transaction's begin record ahead
  // of the payload records; skip it.
  size_t i = 0;
  for (auto it = log.Scan(log.head_lsn()); it.Valid(); it.Next()) {
    if (it.record().type == LogType::kBeginTxn) continue;
    ASSERT_LT(i, lsns.size());
    EXPECT_EQ(it.lsn(), lsns[i]);
    EXPECT_EQ(it.record().page_id, i);
    ++i;
  }
  EXPECT_EQ(i, lsns.size());
}

TEST(LogManagerTest, DurabilityBoundary) {
  LogManager log;
  TxnContext ctx{1, kInvalidLsn};
  LogRecord a;
  a.type = LogType::kBeginTxn;
  log.Append(&a, &ctx);
  Lsn mid = ctx.last_lsn;
  ASSERT_OK(log.FlushTo(mid));
  LogRecord b;
  b.type = LogType::kInsert;
  b.row = "lost";
  log.Append(&b, &ctx);
  EXPECT_GT(log.tail_lsn(), log.durable_lsn());

  log.SimulateCrash();
  // Only the flushed record survives.
  int count = 0;
  for (auto it = log.Scan(log.head_lsn()); it.Valid(); it.Next()) ++count;
  EXPECT_EQ(count, 1);
}

TEST(LogManagerTest, FlushToCoversRequestedRecord) {
  LogManager log;
  TxnContext ctx{1, kInvalidLsn};
  LogRecord a;
  a.type = LogType::kBeginTxn;
  Lsn la = log.Append(&a, &ctx);
  ASSERT_OK(log.FlushTo(la));
  // The record AT la must be durable (boundary advances past it).
  EXPECT_GT(log.durable_lsn(), la);
}

TEST(LogManagerTest, ReadRecordRejectsBadLsn) {
  LogManager log;
  LogRecord rec;
  EXPECT_FALSE(log.ReadRecord(0, &rec).ok());
  EXPECT_FALSE(log.ReadRecord(99999, &rec).ok());
}

TEST(LogManagerTest, SystemRecordsHaveNoTxn) {
  LogManager log;
  LogRecord rec;
  rec.type = LogType::kNtaEnd;
  Lsn lsn = log.AppendSystem(&rec);
  LogRecord out;
  ASSERT_OK(log.ReadRecord(lsn, &out));
  EXPECT_EQ(out.txn_id, kInvalidTxnId);
}

TEST(LogManagerTest, TotalBytesTracksAppends) {
  LogManager log;
  EXPECT_EQ(log.TotalBytesAppended(), 0u);
  TxnContext ctx{1, kInvalidLsn};
  LogRecord rec;
  rec.type = LogType::kInsert;
  rec.row = std::string(100, 'r');
  log.Append(&rec, &ctx);
  EXPECT_GT(log.TotalBytesAppended(), 100u);
}

TEST(LogManagerTest, ConcurrentAppendsAllReadable) {
  LogManager log;
  std::vector<std::thread> threads;
  constexpr int kThreads = 8;
  constexpr int kPer = 500;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      TxnContext ctx{static_cast<TxnId>(t + 1), kInvalidLsn};
      for (int i = 0; i < kPer; ++i) {
        LogRecord rec;
        rec.type = LogType::kInsert;
        rec.page_id = t;
        rec.pos = static_cast<SlotId>(i);
        rec.row = "r";
        log.Append(&rec, &ctx);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Each thread's first Append also lazily logs its begin record.
  int count = 0;
  int begins = 0;
  for (auto it = log.Scan(log.head_lsn()); it.Valid(); it.Next()) {
    if (it.record().type == LogType::kBeginTxn) {
      ++begins;
      continue;
    }
    ++count;
  }
  EXPECT_EQ(count, kThreads * kPer);
  EXPECT_EQ(begins, kThreads);
}

}  // namespace
}  // namespace oir
