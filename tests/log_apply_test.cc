// Direct unit tests of redo/undo application (recovery/log_apply): each
// record type's redo, the pageLSN idempotence test, CLR generation during
// undo, rollback chain walking with NTA skipping, and the multi-target
// keycopy redo/undo paths.

#include "recovery/log_apply.h"

#include <gtest/gtest.h>

#include "storage/slotted_page.h"
#include "tests/test_util.h"

namespace oir {
namespace {

class LogApplyTest : public ::testing::Test {
 protected:
  LogApplyTest()
      : disk_(512, 64),
        bm_(&disk_, 32),
        log_(),
        space_(&disk_, &log_, kFirstDataPageId) {
    bm_.SetLogFlusher(&log_);
    ctx_ = ApplyContext{&bm_, &space_, &log_};
    txn_.txn_id = 9;
  }

  // Formats an allocated page and returns its id, logging everything so
  // redo can replay it.
  PageId MakePage(uint16_t level) {
    PageId id;
    EXPECT_TRUE(space_.Allocate(&txn_, &id).ok());
    LogRecord fmt;
    fmt.type = LogType::kFormatPage;
    fmt.page_id = id;
    fmt.level = level;
    Lsn lsn = log_.Append(&fmt, &txn_);
    PageRef ref;
    EXPECT_TRUE(bm_.Create(id, &ref).ok());
    SlottedPage sp(ref.data(), 512);
    sp.Init(id, level);
    sp.header()->page_lsn = lsn;
    ref.MarkDirty();
    return id;
  }

  // Inserts a row with logging, as the tree layer would.
  Lsn LoggedInsert(PageId page, SlotId pos, const std::string& row,
                   uint16_t level = 0) {
    PageRef ref;
    EXPECT_TRUE(bm_.Fetch(page, &ref).ok());
    SlottedPage sp(ref.data(), 512);
    LogRecord rec;
    rec.type = LogType::kInsert;
    rec.page_id = page;
    rec.pos = pos;
    rec.row = row;
    rec.level = level;
    Lsn lsn = log_.Append(&rec, &txn_);
    EXPECT_TRUE(sp.InsertAt(pos, Slice(row)));
    sp.header()->page_lsn = lsn;
    ref.MarkDirty();
    return lsn;
  }

  std::string RowAt(PageId page, SlotId pos) {
    PageRef ref;
    EXPECT_TRUE(bm_.Fetch(page, &ref).ok());
    SlottedPage sp(ref.data(), 512);
    return sp.Get(pos).ToString();
  }

  uint16_t NSlots(PageId page) {
    PageRef ref;
    EXPECT_TRUE(bm_.Fetch(page, &ref).ok());
    return SlottedPage(ref.data(), 512).nslots();
  }

  MemDisk disk_;
  BufferManager bm_;
  LogManager log_;
  SpaceManager space_;
  ApplyContext ctx_;
  TxnContext txn_;
};

TEST_F(LogApplyTest, RedoSkipsWhenPageLsnCurrent) {
  PageId p = MakePage(0);
  Lsn lsn = LoggedInsert(p, 0, "row-a");
  LogRecord rec;
  ASSERT_OK(log_.ReadRecord(lsn, &rec));
  // The page already carries this LSN: redo must be a no-op.
  ASSERT_OK(RedoRecord(&ctx_, rec));
  EXPECT_EQ(NSlots(p), 1);
}

TEST_F(LogApplyTest, RedoAppliesAfterPageDrop) {
  PageId p = MakePage(0);
  Lsn l1 = LoggedInsert(p, 0, "row-a");
  Lsn l2 = LoggedInsert(p, 1, "row-b");
  // Simulate losing the page: drop the buffered copy (never flushed).
  bm_.DropAll();
  space_.SetStateForRecovery(p, PageState::kAllocated);
  // Replay the whole log.
  for (auto it = log_.Scan(log_.head_lsn()); it.Valid(); it.Next()) {
    if (it.record().IsPageUpdate() || it.record().type == LogType::kAlloc) {
      ASSERT_OK(RedoRecord(&ctx_, it.record()));
    }
  }
  EXPECT_EQ(NSlots(p), 2);
  EXPECT_EQ(RowAt(p, 0), "row-a");
  EXPECT_EQ(RowAt(p, 1), "row-b");
  (void)l1;
  (void)l2;
}

TEST_F(LogApplyTest, UndoInsertWritesClrAndRemovesRow) {
  PageId p = MakePage(1);  // non-leaf level: physical undo path
  Lsn lsn = LoggedInsert(p, 0, "entry", /*level=*/1);
  LogRecord rec;
  ASSERT_OK(log_.ReadRecord(lsn, &rec));
  ASSERT_OK(UndoRecord(&ctx_, &txn_, rec, /*hook=*/nullptr));
  EXPECT_EQ(NSlots(p), 0);
  // The CLR chains into the transaction and points past the undone record.
  LogRecord clr;
  ASSERT_OK(log_.ReadRecord(txn_.last_lsn, &clr));
  EXPECT_TRUE(clr.is_clr);
  EXPECT_EQ(clr.type, LogType::kDelete);
  EXPECT_EQ(clr.undo_next, rec.prev_lsn);
}

TEST_F(LogApplyTest, UndoDeleteReinsertsRow) {
  PageId p = MakePage(1);
  LoggedInsert(p, 0, "keep-me", 1);
  // Logged delete.
  PageRef ref;
  ASSERT_OK(bm_.Fetch(p, &ref));
  SlottedPage sp(ref.data(), 512);
  LogRecord del;
  del.type = LogType::kDelete;
  del.page_id = p;
  del.pos = 0;
  del.row = "keep-me";
  del.level = 1;
  Lsn lsn = log_.Append(&del, &txn_);
  sp.DeleteAt(0);
  sp.header()->page_lsn = lsn;
  ref.MarkDirty();
  ref.Release();

  LogRecord rec;
  ASSERT_OK(log_.ReadRecord(lsn, &rec));
  ASSERT_OK(UndoRecord(&ctx_, &txn_, rec, nullptr));
  EXPECT_EQ(RowAt(p, 0), "keep-me");
}

TEST_F(LogApplyTest, BatchInsertRedoAndUndo) {
  PageId p = MakePage(1);
  PageRef ref;
  ASSERT_OK(bm_.Fetch(p, &ref));
  SlottedPage sp(ref.data(), 512);
  LogRecord rec;
  rec.type = LogType::kBatchInsert;
  rec.page_id = p;
  rec.pos = 0;
  rec.level = 1;
  rec.rows = {"aa", "bb", "cc"};
  Lsn lsn = log_.Append(&rec, &txn_);
  for (size_t i = 0; i < rec.rows.size(); ++i) {
    ASSERT_TRUE(sp.InsertAt(i, Slice(rec.rows[i])));
  }
  sp.header()->page_lsn = lsn;
  ref.MarkDirty();
  ref.Release();

  LogRecord read;
  ASSERT_OK(log_.ReadRecord(lsn, &read));
  ASSERT_OK(UndoRecord(&ctx_, &txn_, read, nullptr));
  EXPECT_EQ(NSlots(p), 0);
  // Redo the CLR (a batch delete) must be idempotent on the same page.
  LogRecord clr;
  ASSERT_OK(log_.ReadRecord(txn_.last_lsn, &clr));
  EXPECT_EQ(clr.type, LogType::kBatchDelete);
  ASSERT_OK(RedoRecord(&ctx_, clr));
  EXPECT_EQ(NSlots(p), 0);
}

TEST_F(LogApplyTest, KeyCopyRedoReconstructsTargets) {
  PageId src = MakePage(0);
  PageId tgt = MakePage(0);
  for (int i = 0; i < 5; ++i) {
    LoggedInsert(src, static_cast<SlotId>(i),
                 "row-" + std::to_string(i));
  }
  // Flush the source so its disk image matches, then log a keycopy of
  // rows 1..3 into the target.
  ASSERT_OK(bm_.FlushAll());
  PageRef sref;
  ASSERT_OK(bm_.Fetch(src, &sref));
  Lsn src_ts = sref.header()->page_lsn;
  sref.Release();

  LogRecord kc;
  kc.type = LogType::kKeyCopy;
  kc.copies.push_back(KeyCopyEntry{src, tgt, 1, 3, 0, src_ts});
  Lsn lsn = log_.Append(&kc, &txn_);
  (void)lsn;
  // Do NOT apply, just lose the target and redo from the log: recovery
  // must rebuild the target from the source.
  LogRecord read;
  ASSERT_OK(log_.ReadRecord(lsn, &read));
  ASSERT_OK(RedoRecord(&ctx_, read));
  EXPECT_EQ(NSlots(tgt), 3);
  EXPECT_EQ(RowAt(tgt, 0), "row-1");
  EXPECT_EQ(RowAt(tgt, 2), "row-3");
  // Re-running the redo is a no-op (target pageLSN is now current).
  ASSERT_OK(RedoRecord(&ctx_, read));
  EXPECT_EQ(NSlots(tgt), 3);
}

TEST_F(LogApplyTest, KeyCopyRedoDetectsSourceMismatch) {
  PageId src = MakePage(0);
  PageId tgt = MakePage(0);
  LoggedInsert(src, 0, "original");
  LogRecord kc;
  kc.type = LogType::kKeyCopy;
  kc.copies.push_back(KeyCopyEntry{src, tgt, 0, 0, 0, /*bogus ts=*/12345});
  Lsn lsn = log_.Append(&kc, &txn_);
  LogRecord read;
  ASSERT_OK(log_.ReadRecord(lsn, &read));
  Status s = RedoRecord(&ctx_, read);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(LogApplyTest, KeyCopyUndoRemovesCopiedRows) {
  PageId src = MakePage(0);
  PageId tgt = MakePage(0);
  for (int i = 0; i < 4; ++i) {
    LoggedInsert(src, static_cast<SlotId>(i), "r" + std::to_string(i));
  }
  PageRef sref;
  ASSERT_OK(bm_.Fetch(src, &sref));
  Lsn src_ts = sref.header()->page_lsn;
  sref.Release();
  LogRecord kc;
  kc.type = LogType::kKeyCopy;
  kc.copies.push_back(KeyCopyEntry{src, tgt, 0, 3, 0, src_ts});
  Lsn lsn = log_.Append(&kc, &txn_);
  // Apply it (as the copy phase would).
  {
    PageRef s2, t2;
    ASSERT_OK(bm_.Fetch(src, &s2));
    ASSERT_OK(bm_.Fetch(tgt, &t2));
    SlottedPage ssp(s2.data(), 512), tsp(t2.data(), 512);
    for (SlotId i = 0; i <= 3; ++i) {
      ASSERT_TRUE(tsp.InsertAt(i, ssp.Get(i)));
    }
    tsp.header()->page_lsn = lsn;
    t2.MarkDirty();
  }
  EXPECT_EQ(NSlots(tgt), 4);
  LogRecord read;
  ASSERT_OK(log_.ReadRecord(lsn, &read));
  ASSERT_OK(UndoRecord(&ctx_, &txn_, read, nullptr));
  EXPECT_EQ(NSlots(tgt), 0);
  LogRecord clr;
  ASSERT_OK(log_.ReadRecord(txn_.last_lsn, &clr));
  EXPECT_EQ(clr.type, LogType::kKeyCopyUndo);
  EXPECT_TRUE(clr.is_clr);
}

TEST_F(LogApplyTest, AllocUndoFreesPagesViaClr) {
  std::vector<PageId> pages;
  ASSERT_OK(space_.AllocateChunk(&txn_, 3, &pages));
  LogRecord rec;
  ASSERT_OK(log_.ReadRecord(txn_.last_lsn, &rec));
  ASSERT_EQ(rec.type, LogType::kAlloc);
  ASSERT_EQ(rec.pages.size(), 3u);
  ASSERT_OK(UndoRecord(&ctx_, &txn_, rec, nullptr));
  for (PageId p : pages) {
    EXPECT_EQ(space_.GetState(p), PageState::kFree);
  }
  LogRecord clr;
  ASSERT_OK(log_.ReadRecord(txn_.last_lsn, &clr));
  EXPECT_EQ(clr.type, LogType::kFreePage);
  EXPECT_EQ(clr.pages.size(), 3u);
}

TEST_F(LogApplyTest, RollbackSkipsCompletedNta) {
  PageId p = MakePage(1);
  Lsn setup_end = txn_.last_lsn;  // stop rollback before the page setup
  // Normal record A.
  Lsn la = LoggedInsert(p, 0, "A", 1);
  (void)la;
  // "NTA": record B + NtaEnd pointing before B.
  Lsn before_nta = txn_.last_lsn;
  LoggedInsert(p, 1, "B", 1);
  LogRecord end;
  end.type = LogType::kNtaEnd;
  end.undo_next = before_nta;
  log_.Append(&end, &txn_);
  // Normal record C.
  LoggedInsert(p, 2, "C", 1);

  ASSERT_OK(RollbackTo(&ctx_, &txn_, setup_end, nullptr));
  // C and A undone; B (inside the completed NTA) survives.
  EXPECT_EQ(NSlots(p), 1);
  EXPECT_EQ(RowAt(p, 0), "B");
}

TEST_F(LogApplyTest, RollbackToMidpointStopsEarly) {
  PageId p = MakePage(1);
  LoggedInsert(p, 0, "A", 1);
  Lsn stop_at = txn_.last_lsn;
  LoggedInsert(p, 1, "B", 1);
  LoggedInsert(p, 2, "C", 1);
  ASSERT_OK(RollbackTo(&ctx_, &txn_, stop_at, nullptr));
  // Only B and C undone.
  EXPECT_EQ(NSlots(p), 1);
  EXPECT_EQ(RowAt(p, 0), "A");
}

TEST_F(LogApplyTest, LinkRecordsRedoAndUndo) {
  PageId p = MakePage(0);
  PageRef ref;
  ASSERT_OK(bm_.Fetch(p, &ref));
  LogRecord rec;
  rec.type = LogType::kSetNextLink;
  rec.page_id = p;
  rec.link_old = kInvalidPageId;
  rec.link_new = 42;
  Lsn lsn = log_.Append(&rec, &txn_);
  ref.header()->next_page = 42;
  ref.header()->page_lsn = lsn;
  ref.MarkDirty();
  ref.Release();

  LogRecord read;
  ASSERT_OK(log_.ReadRecord(lsn, &read));
  ASSERT_OK(UndoRecord(&ctx_, &txn_, read, nullptr));
  PageRef chk;
  ASSERT_OK(bm_.Fetch(p, &chk));
  EXPECT_EQ(chk.header()->next_page, kInvalidPageId);
}

}  // namespace
}  // namespace oir
