// Unit tests for the util substrate: Status, Slice, coding, crc32c,
// Random, Histogram, counters, clock.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>

#include "util/clock.h"
#include "util/coding.h"
#include "util/counters.h"
#include "util/crc32c.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/slice.h"
#include "util/status.h"

namespace oir {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCodesRoundTrip) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::NoSpace("x").IsNoSpace());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_FALSE(Status::NotFound("x").ok());
}

TEST(StatusTest, MessagePreserved) {
  Status s = Status::Corruption("bad page 42");
  EXPECT_EQ(s.message(), "bad page 42");
  EXPECT_EQ(s.ToString(), "Corruption: bad page 42");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto f = [](bool fail) -> Status {
    OIR_RETURN_IF_ERROR(fail ? Status::Busy("b") : Status::OK());
    return Status::NotFound("reached end");
  };
  EXPECT_TRUE(f(true).IsBusy());
  EXPECT_TRUE(f(false).IsNotFound());
}

TEST(SliceTest, BasicAccessors) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s[1], 'e');
  EXPECT_EQ(s.ToString(), "hello");
  Slice empty;
  EXPECT_TRUE(empty.empty());
}

TEST(SliceTest, Compare) {
  EXPECT_LT(Slice("a").compare(Slice("b")), 0);
  EXPECT_GT(Slice("b").compare(Slice("a")), 0);
  EXPECT_EQ(Slice("ab").compare(Slice("ab")), 0);
  // Prefix sorts before extension.
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  // Unsigned byte comparison.
  std::string hi("\xff", 1);
  EXPECT_LT(Slice("a").compare(Slice(hi)), 0);
}

TEST(SliceTest, StartsWithAndRemovePrefix) {
  Slice s("abcdef");
  EXPECT_TRUE(s.starts_with(Slice("abc")));
  EXPECT_FALSE(s.starts_with(Slice("abd")));
  s.remove_prefix(3);
  EXPECT_EQ(s.ToString(), "def");
}

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xbeef);
  PutFixed32(&buf, 0xdeadbeefu);
  PutFixed64(&buf, 0x0123456789abcdefull);
  Slice in(buf);
  uint16_t a;
  uint32_t b;
  uint64_t c;
  ASSERT_TRUE(GetFixed16(&in, &a));
  ASSERT_TRUE(GetFixed32(&in, &b));
  ASSERT_TRUE(GetFixed64(&in, &c));
  EXPECT_EQ(a, 0xbeef);
  EXPECT_EQ(b, 0xdeadbeefu);
  EXPECT_EQ(c, 0x0123456789abcdefull);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintRoundTrip) {
  std::string buf;
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                  1ull << 32, ~0ull};
  for (uint64_t v : values) PutVarint64(&buf, v);
  Slice in(buf);
  for (uint64_t v : values) {
    uint64_t got;
    ASSERT_TRUE(GetVarint64(&in, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Varint32Boundaries) {
  for (uint32_t v : {0u, 1u, 0x7fu, 0x80u, 0x3fffu, 0x4000u, ~0u}) {
    std::string buf;
    PutVarint32(&buf, v);
    EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v));
    Slice in(buf);
    uint32_t got;
    ASSERT_TRUE(GetVarint32(&in, &got));
    EXPECT_EQ(got, v);
  }
}

TEST(CodingTest, VarintMalformed) {
  // Five continuation bytes with no terminator.
  std::string buf(6, '\xff');
  Slice in(buf);
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&in, &v));
}

TEST(CodingTest, LengthPrefixedSlice) {
  std::string buf;
  PutLengthPrefixedSlice(&buf, Slice("payload"));
  PutLengthPrefixedSlice(&buf, Slice(""));
  Slice in(buf);
  Slice a, b;
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &a));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &b));
  EXPECT_EQ(a.ToString(), "payload");
  EXPECT_TRUE(b.empty());
  // Truncated payload is rejected.
  std::string bad;
  PutVarint32(&bad, 100);
  bad += "short";
  Slice bin(bad);
  Slice out;
  EXPECT_FALSE(GetLengthPrefixedSlice(&bin, &out));
}

TEST(Crc32cTest, KnownValues) {
  // Standard check value: crc32c("123456789") = 0xe3069283.
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xe3069283u);
  // crc of 32 zero bytes = 0x8a9136aa.
  char zeros[32] = {0};
  EXPECT_EQ(crc32c::Value(zeros, sizeof(zeros)), 0x8a9136aau);
}

TEST(Crc32cTest, ExtendEqualsConcat) {
  const char* s = "hello world, this is a log record";
  uint32_t whole = crc32c::Value(s, strlen(s));
  uint32_t split = crc32c::Extend(crc32c::Value(s, 10), s + 10,
                                  strlen(s) - 10);
  EXPECT_EQ(whole, split);
}

TEST(Crc32cTest, MaskRoundTripAndDiffers) {
  uint32_t crc = crc32c::Value("abc", 3);
  EXPECT_NE(crc32c::Mask(crc), crc);
  EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(42), b(42), c(43);
  bool same = true, diff = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    same &= (va == b.Next());
    diff |= (va != c.Next());
  }
  EXPECT_TRUE(same);
  EXPECT_TRUE(diff);
}

TEST(RandomTest, UniformInRange) {
  Random r(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = r.Range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RandomTest, BytesLengthAndCharset) {
  Random r(7);
  std::string s = r.Bytes(64);
  EXPECT_EQ(s.size(), 64u);
  for (char ch : s) {
    EXPECT_GE(ch, 'a');
    EXPECT_LE(ch, 'z');
  }
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v);
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_EQ(h.Min(), 1u);
  EXPECT_EQ(h.Max(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_GE(h.Percentile(99), 90.0);
  EXPECT_LE(h.Percentile(50), 70.0);
}

TEST(HistogramTest, MergeAndClear) {
  Histogram a, b;
  a.Add(5);
  b.Add(10);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_EQ(a.Max(), 10u);
  a.Clear();
  EXPECT_EQ(a.Count(), 0u);
}

TEST(HistogramTest, EmptyPercentilesAreZero) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, PercentileBoundsClampToMinMax) {
  Histogram h;
  h.Add(10);
  h.Add(20);
  h.Add(1000);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(h.Percentile(-5), 10.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1000.0);
  EXPECT_DOUBLE_EQ(h.Percentile(200), 1000.0);
  // Every interior percentile stays inside [min, max].
  for (double p = 1; p < 100; p += 7) {
    EXPECT_GE(h.Percentile(p), 10.0) << p;
    EXPECT_LE(h.Percentile(p), 1000.0) << p;
  }
}

TEST(HistogramTest, SingleValuePercentilesAreExact) {
  Histogram h;
  for (int i = 0; i < 50; ++i) h.Add(42);
  EXPECT_DOUBLE_EQ(h.Percentile(1), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 42.0);
}

TEST(HistogramTest, MergePreservesPercentileInterpolation) {
  Histogram a, b;
  for (uint64_t v = 1; v <= 500; ++v) a.Add(v);
  for (uint64_t v = 501; v <= 1000; ++v) b.Add(v);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 1000u);
  EXPECT_EQ(a.Min(), 1u);
  EXPECT_EQ(a.Max(), 1000u);
  // Percentiles are monotone in p and roughly track the uniform ideal.
  double prev = 0;
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    double v = a.Percentile(p);
    EXPECT_GE(v, prev) << p;
    // Bucketized estimate: generous band around the exact value.
    EXPECT_GT(v, p * 10.0 * 0.5) << p;
    EXPECT_LT(v, p * 10.0 * 2.0 + 10.0) << p;
    prev = v;
  }
}

TEST(HistogramTest, ToJsonIsWellFormedWithIntegerBounds) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v * 3);
  std::string j = h.ToJson();
  EXPECT_NE(j.find("\"count\":100"), std::string::npos) << j;
  EXPECT_NE(j.find("\"buckets\":["), std::string::npos) << j;
  // Bucket bounds are emitted as integers: no '.' may appear inside any
  // "le" value.
  size_t pos = 0;
  while ((pos = j.find("\"le\":", pos)) != std::string::npos) {
    pos += 5;
    size_t end = j.find_first_of(",}", pos);
    ASSERT_NE(end, std::string::npos);
    std::string num = j.substr(pos, end - pos);
    EXPECT_EQ(num.find('.'), std::string::npos) << num;
    EXPECT_EQ(num.find('e'), std::string::npos) << num;
  }
  Histogram empty;
  EXPECT_NE(empty.ToJson().find("\"count\":0"), std::string::npos);
}

TEST(HistogramTest, ConcurrentAdds) {
  Histogram h;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&h] {
      for (int i = 0; i < 10000; ++i) h.Add(i);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(h.Count(), 40000u);
}

TEST(CountersTest, SnapshotDelta) {
  auto& c = GlobalCounters::Get();
  CounterSnapshot before = c.Snapshot();
  c.log_bytes.fetch_add(100);
  c.latch_acquires.fetch_add(3);
  CounterSnapshot delta = c.Snapshot() - before;
  EXPECT_EQ(delta.log_bytes, 100u);
  EXPECT_EQ(delta.latch_acquires, 3u);
  EXPECT_FALSE(delta.ToString().empty());
}

TEST(CountersTest, ForEachVisitsEveryFieldOnce) {
  // The X-macro generates struct fields, snapshot fields and the visitors
  // from one list; ForEach over the snapshot must see each field exactly
  // once, with a unique name.
  auto& c = GlobalCounters::Get();
  CounterSnapshot before = c.Snapshot();
  c.pool_hits.fetch_add(11);
  c.cond_lock_failures.fetch_add(5);
  CounterSnapshot delta = c.Snapshot() - before;

  std::set<std::string> names;
  uint64_t pool_hits = 0, cond_fail = 0;
  delta.ForEach([&](const char* name, uint64_t v) {
    EXPECT_TRUE(names.insert(name).second) << "duplicate " << name;
    if (std::string(name) == "pool_hits") pool_hits = v;
    if (std::string(name) == "cond_lock_failures") cond_fail = v;
  });
  EXPECT_EQ(pool_hits, 11u);
  EXPECT_EQ(cond_fail, 5u);
  EXPECT_TRUE(names.count("lock_watchdog_fires"));
  // Mutable and snapshot visitors agree on the field set.
  size_t atomic_fields = 0;
  c.ForEach([&](const char*, std::atomic<uint64_t>&) { ++atomic_fields; });
  EXPECT_EQ(names.size(), atomic_fields);
}

TEST(ClockTest, MonotoneAndCpuAdvances) {
  uint64_t a = NowNanos();
  uint64_t cpu0 = ThreadCpuNanos();
  volatile uint64_t sink = 0;
  for (int i = 0; i < 1000000; ++i) sink += i;
  EXPECT_GE(NowNanos(), a);
  EXPECT_GT(ThreadCpuNanos(), cpu0);
  EXPECT_GE(ProcessCpuNanos(), ThreadCpuNanos());
}

}  // namespace
}  // namespace oir
