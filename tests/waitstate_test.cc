// Tests for the wait-state profiler (obs/waitstate.h): disabled-path
// no-ops, exact single-thread accounting, nested-scope folding, and the
// headline invariant — per-state components of an operation sum to (at
// least 95% of) its wall-clock, including under concurrent recorders.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/waitstate.h"
#include "tests/test_util.h"

namespace oir {
namespace {

using obs::OpScope;
using obs::OpType;
using obs::WaitProfiler;
using obs::WaitScope;
using obs::WaitState;

// Restores the global enable flag and drains the aggregates on scope exit,
// so a failing test can't leak profiler state into the rest of the suite.
struct WaitProfilerGuard {
  ~WaitProfilerGuard() {
    WaitProfiler::SetEnabled(false);
    WaitProfiler::Reset();
  }
};

void SpinFor(std::chrono::nanoseconds d) {
  const auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

const WaitProfiler::OpBreakdown* Find(
    const std::vector<WaitProfiler::OpBreakdown>& snap, OpType t) {
  for (const auto& b : snap) {
    if (b.type == t) return &b;
  }
  return nullptr;
}

uint64_t StateNs(const WaitProfiler::OpBreakdown& b, WaitState s) {
  return b.state_ns[static_cast<size_t>(s)];
}

uint64_t SumStates(const WaitProfiler::OpBreakdown& b) {
  uint64_t sum = 0;
  for (size_t i = 0; i < obs::kNumWaitStates; ++i) sum += b.state_ns[i];
  return sum;
}

TEST(WaitStateTest, DisabledScopesRecordNothing) {
  WaitProfilerGuard guard;
  WaitProfiler::SetEnabled(false);
  WaitProfiler::Reset();
  for (int i = 0; i < 1000; ++i) {
    OpScope op(OpType::kRead);
    WaitScope ws(WaitState::kLatchWait);
  }
  EXPECT_TRUE(WaitProfiler::TakeSnapshot().empty());
}

TEST(WaitStateTest, SingleOpComponentsSumToWallClock) {
  WaitProfilerGuard guard;
  WaitProfiler::SetEnabled(true);
  WaitProfiler::Reset();

  constexpr auto kRun = std::chrono::milliseconds(4);
  constexpr auto kWait = std::chrono::milliseconds(10);
  {
    OpScope op(OpType::kRead);
    SpinFor(kRun);
    WaitScope ws(WaitState::kIoWait);
    std::this_thread::sleep_for(kWait);
  }

  auto snap = WaitProfiler::TakeSnapshot();
  const auto* read = Find(snap, OpType::kRead);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->count, 1u);
  EXPECT_EQ(read->hist_count, 1u);

  const uint64_t run_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(kRun).count();
  const uint64_t wait_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(kWait).count();
  EXPECT_GE(read->wall_ns, run_ns + wait_ns);
  EXPECT_GE(StateNs(*read, WaitState::kRunning), run_ns);
  EXPECT_GE(StateNs(*read, WaitState::kIoWait), wait_ns);
  EXPECT_EQ(StateNs(*read, WaitState::kLatchWait), 0u);

  // The transitions close every segment into an accumulator, so the
  // components account for the whole operation (>= 95% leaves room only
  // for clock-read granularity).
  EXPECT_LE(SumStates(*read), read->wall_ns);
  EXPECT_GE(SumStates(*read), read->wall_ns * 95 / 100);
}

TEST(WaitStateTest, NestedWaitFoldsIntoOutermost) {
  WaitProfilerGuard guard;
  WaitProfiler::SetEnabled(true);
  WaitProfiler::Reset();

  constexpr auto kWait = std::chrono::milliseconds(8);
  {
    OpScope op(OpType::kWrite);
    WaitScope outer(WaitState::kLatchWait);
    // A WAL flush performed while blocked on a latch is still latch wait
    // from the operation's point of view.
    WaitScope inner(WaitState::kWalCommitWait);
    std::this_thread::sleep_for(kWait);
  }

  auto snap = WaitProfiler::TakeSnapshot();
  const auto* write = Find(snap, OpType::kWrite);
  ASSERT_NE(write, nullptr);
  const uint64_t wait_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(kWait).count();
  EXPECT_GE(StateNs(*write, WaitState::kLatchWait), wait_ns);
  EXPECT_EQ(StateNs(*write, WaitState::kWalCommitWait), 0u);
}

TEST(WaitStateTest, NestedOpScopeIsInert) {
  WaitProfilerGuard guard;
  WaitProfiler::SetEnabled(true);
  WaitProfiler::Reset();
  {
    OpScope outer(OpType::kCommit);
    OpScope inner(OpType::kRead);  // e.g. a commit doing an internal read
    SpinFor(std::chrono::milliseconds(1));
  }
  auto snap = WaitProfiler::TakeSnapshot();
  EXPECT_NE(Find(snap, OpType::kCommit), nullptr);
  EXPECT_EQ(Find(snap, OpType::kRead), nullptr);
}

TEST(WaitStateTest, WaitOutsideAnyOpIsDropped) {
  WaitProfilerGuard guard;
  WaitProfiler::SetEnabled(true);
  WaitProfiler::Reset();
  {
    // A background thread blocking with no operation open must not
    // surface in any per-op breakdown.
    WaitScope ws(WaitState::kIoWait);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(WaitProfiler::TakeSnapshot().empty());
}

TEST(WaitStateTest, ResetClearsAggregates) {
  WaitProfilerGuard guard;
  WaitProfiler::SetEnabled(true);
  WaitProfiler::Reset();
  {
    OpScope op(OpType::kOther);
  }
  EXPECT_FALSE(WaitProfiler::TakeSnapshot().empty());
  WaitProfiler::Reset();
  EXPECT_TRUE(WaitProfiler::TakeSnapshot().empty());
}

TEST(WaitStateTest, ToJsonIsValidAndNamesStates) {
  WaitProfilerGuard guard;
  WaitProfiler::SetEnabled(true);
  WaitProfiler::Reset();
  {
    OpScope op(OpType::kRebuild);
    WaitScope ws(WaitState::kThrottled);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::string doc = WaitProfiler::ToJson();
  EXPECT_TRUE(obs::JsonIsValid(doc)) << doc;
  EXPECT_NE(doc.find("\"rebuild\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"throttled\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"wall_hist\""), std::string::npos) << doc;
}

TEST(WaitStateTest, ConcurrentRecordersCoverWallClock) {
  WaitProfilerGuard guard;
  WaitProfiler::SetEnabled(true);
  WaitProfiler::Reset();

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        OpScope op((t + i) % 2 == 0 ? OpType::kRead : OpType::kWrite);
        SpinFor(std::chrono::microseconds(50));
        WaitScope ws(WaitState::kLockWait);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }
  // Snapshot while recorders are live: must stay internally consistent.
  for (int i = 0; i < 10; ++i) {
    std::string doc = WaitProfiler::ToJson();
    EXPECT_TRUE(obs::JsonIsValid(doc));
  }
  for (auto& th : threads) th.join();

  auto snap = WaitProfiler::TakeSnapshot();
  uint64_t total_ops = 0;
  for (const auto& b : snap) {
    total_ops += b.count;
    EXPECT_EQ(b.hist_count, b.count);
    EXPECT_GE(SumStates(b), b.wall_ns * 95 / 100)
        << obs::OpTypeName(b.type);
    EXPECT_LE(SumStates(b), b.wall_ns) << obs::OpTypeName(b.type);
    EXPECT_GT(StateNs(b, WaitState::kLockWait), 0u);
  }
  EXPECT_EQ(total_ops,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

}  // namespace
}  // namespace oir
