// Disk and buffer manager tests: I/O counting, multi-page transfers,
// pin/unpin lifecycle, eviction with WAL constraint, crash-drop semantics,
// concurrent fetches.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>

#include "storage/buffer_manager.h"
#include "storage/disk.h"
#include "storage/slotted_page.h"
#include "tests/test_util.h"
#include "util/counters.h"
#include "wal/log_manager.h"

namespace oir {
namespace {

TEST(MemDiskTest, ReadWriteRoundTrip) {
  MemDisk disk(512, 16);
  std::string data(512, 'a');
  ASSERT_OK(disk.WritePage(3, data.data()));
  std::string got(512, 0);
  ASSERT_OK(disk.ReadPage(3, got.data()));
  EXPECT_EQ(got, data);
}

TEST(MemDiskTest, OutOfRangeRejected) {
  MemDisk disk(512, 4);
  char buf[512];
  EXPECT_TRUE(disk.ReadPage(4, buf).IsIOError());
  EXPECT_TRUE(disk.WritePage(100, buf).IsIOError());
  ASSERT_OK(disk.Extend(101));
  ASSERT_OK(disk.WritePage(100, buf));
}

TEST(MemDiskTest, MultiPageTransferCountsOneIo) {
  MemDisk disk(512, 32);
  auto before = GlobalCounters::Get().Snapshot();
  std::string data(512 * 8, 'z');
  ASSERT_OK(disk.WriteMulti(0, 8, data.data()));
  auto delta = GlobalCounters::Get().Snapshot() - before;
  EXPECT_EQ(delta.io_ops, 1u);
  EXPECT_EQ(delta.pages_written, 8u);
}

TEST(FileDiskTest, PersistsAcrossReopen) {
  std::string path = ::testing::TempDir() + "/oir_filedisk_test.db";
  std::remove(path.c_str());
  {
    std::unique_ptr<FileDisk> disk;
    ASSERT_OK(FileDisk::Open(path, 512, &disk));
    ASSERT_OK(disk->Extend(8));
    std::string data(512, 'q');
    ASSERT_OK(disk->WritePage(5, data.data()));
    ASSERT_OK(disk->Sync());
  }
  {
    std::unique_ptr<FileDisk> disk;
    ASSERT_OK(FileDisk::Open(path, 512, &disk));
    EXPECT_EQ(disk->NumPages(), 8u);
    std::string got(512, 0);
    ASSERT_OK(disk->ReadPage(5, got.data()));
    EXPECT_EQ(got, std::string(512, 'q'));
  }
  std::remove(path.c_str());
}

class BufferManagerTest : public ::testing::Test {
 protected:
  BufferManagerTest() : disk_(512, 256), bm_(&disk_, 16) {}

  void WritePattern(PageId id, char fill) {
    PageRef ref;
    ASSERT_OK(bm_.Create(id, &ref));
    ref.latch().LockX();
    SlottedPage sp(ref.data(), 512);
    sp.Init(id, kLeafLevel);
    std::string row(64, fill);
    ASSERT_TRUE(sp.InsertAt(0, Slice(row)));
    ref.latch().UnlockX();
    ref.MarkDirty();
  }

  char ReadPattern(PageId id) {
    PageRef ref;
    Status s = bm_.Fetch(id, &ref);
    EXPECT_TRUE(s.ok()) << s.ToString();
    ref.latch().LockS();
    SlottedPage sp(ref.data(), 512);
    char c = sp.Get(0)[0];
    ref.latch().UnlockS();
    return c;
  }

  MemDisk disk_;
  BufferManager bm_;
};

TEST_F(BufferManagerTest, CreateFetchRoundTrip) {
  WritePattern(10, 'x');
  EXPECT_EQ(ReadPattern(10), 'x');
  EXPECT_EQ(bm_.CachedPages(), 1u);
}

TEST_F(BufferManagerTest, EvictionWritesBackDirtyPages) {
  // Fill more pages than the pool holds; early ones get evicted and must
  // be readable again from disk.
  for (PageId p = 1; p <= 64; ++p) {
    WritePattern(p, static_cast<char>('a' + (p % 26)));
  }
  EXPECT_LE(bm_.CachedPages(), 16u);
  for (PageId p = 1; p <= 64; ++p) {
    EXPECT_EQ(ReadPattern(p), static_cast<char>('a' + (p % 26))) << p;
  }
}

TEST_F(BufferManagerTest, PinnedPagesNotEvicted) {
  PageRef pinned;
  ASSERT_OK(bm_.Create(1, &pinned));
  pinned.latch().LockX();
  SlottedPage sp(pinned.data(), 512);
  sp.Init(1, kLeafLevel);
  sp.InsertAt(0, Slice("pinned-row"));
  pinned.latch().UnlockX();
  pinned.MarkDirty();
  // Churn through many other pages.
  for (PageId p = 2; p <= 64; ++p) WritePattern(p, 'y');
  // Our pinned frame must still hold the same content.
  SlottedPage sp2(pinned.data(), 512);
  EXPECT_EQ(sp2.Get(0).ToString(), "pinned-row");
  pinned.Release();
}

TEST_F(BufferManagerTest, PoolExhaustionReportsNoSpace) {
  std::vector<PageRef> pins;
  for (PageId p = 1; p <= 16; ++p) {
    PageRef ref;
    ASSERT_OK(bm_.Create(p, &ref));
    pins.push_back(std::move(ref));
  }
  PageRef extra;
  EXPECT_TRUE(bm_.Fetch(100, &extra).IsNoSpace() ||
              bm_.Create(100, &extra).IsNoSpace());
}

TEST_F(BufferManagerTest, WalConstraintFlushesLogFirst) {
  LogManager log;
  bm_.SetLogFlusher(&log);
  // Append a record, stamp a page with its LSN, flush the page: the log's
  // durable boundary must cover the pageLSN afterwards.
  TxnContext ctx{1, kInvalidLsn};
  LogRecord rec;
  rec.type = LogType::kFormatPage;
  rec.page_id = 1;
  Lsn lsn = log.Append(&rec, &ctx);
  PageRef ref;
  ASSERT_OK(bm_.Create(1, &ref));
  ref.latch().LockX();
  SlottedPage sp(ref.data(), 512);
  sp.Init(1, kLeafLevel);
  sp.header()->page_lsn = lsn;
  ref.latch().UnlockX();
  ref.MarkDirty();
  ref.Release();
  EXPECT_LT(log.durable_lsn(), lsn + 1);
  ASSERT_OK(bm_.FlushPage(1));
  EXPECT_GT(log.durable_lsn(), lsn);
}

TEST_F(BufferManagerTest, DiscardDropsWithoutWriting) {
  WritePattern(7, 'd');
  bm_.Discard(7);
  EXPECT_EQ(bm_.CachedPages(), 0u);
  // Disk never saw the page (it was dirty, never flushed): reads zeros.
  PageRef ref;
  ASSERT_OK(bm_.Fetch(7, &ref));
  EXPECT_EQ(HeaderOf(ref.data())->page_id, 0u);
}

TEST_F(BufferManagerTest, DropAllSimulatesCrash) {
  WritePattern(1, 'a');
  ASSERT_OK(bm_.FlushPage(1));
  WritePattern(2, 'b');  // never flushed
  bm_.DropAll();
  EXPECT_EQ(bm_.CachedPages(), 0u);
  EXPECT_EQ(ReadPattern(1), 'a');  // survived on disk
  PageRef ref;
  ASSERT_OK(bm_.Fetch(2, &ref));
  EXPECT_EQ(HeaderOf(ref.data())->page_id, 0u);  // lost
}

TEST_F(BufferManagerTest, FlushPagesGroupsContiguousRuns) {
  for (PageId p = 10; p < 26; ++p) WritePattern(p, 'r');
  auto before = GlobalCounters::Get().Snapshot();
  std::vector<PageId> ids;
  for (PageId p = 10; p < 26; ++p) ids.push_back(p);
  ASSERT_OK(bm_.FlushPages(ids, /*io_pages=*/8));
  auto delta = GlobalCounters::Get().Snapshot() - before;
  // 16 contiguous pages at 8 pages/IO = 2 I/O operations.
  EXPECT_EQ(delta.io_ops, 2u);
  EXPECT_EQ(delta.pages_written, 16u);
}

TEST_F(BufferManagerTest, FlushPagesSingletonIos) {
  for (PageId p : {30u, 40u, 50u}) WritePattern(p, 's');
  auto before = GlobalCounters::Get().Snapshot();
  ASSERT_OK(bm_.FlushPages({30, 40, 50}, 8));
  auto delta = GlobalCounters::Get().Snapshot() - before;
  EXPECT_EQ(delta.io_ops, 3u);  // non-contiguous: one each
}

TEST_F(BufferManagerTest, ConcurrentFetchesOfSamePage) {
  WritePattern(5, 'c');
  ASSERT_OK(bm_.FlushPage(5));
  bm_.DropAll();
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        PageRef ref;
        Status s = bm_.Fetch(5, &ref);
        if (s.ok()) {
          ref.latch().LockS();
          SlottedPage sp(ref.data(), 512);
          if (sp.Get(0)[0] == 'c') ++ok;
          ref.latch().UnlockS();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), 8 * 200);
}

TEST_F(BufferManagerTest, ConcurrentDistinctPagesWithEviction) {
  for (PageId p = 1; p <= 64; ++p) WritePattern(p, static_cast<char>('a' + p % 26));
  ASSERT_OK(bm_.FlushAll());
  const uint64_t seed = test::TestSeed(1);
  OIR_SCOPED_SEED_TRACE(seed);
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      Random rnd(seed + t);
      for (int i = 0; i < 500; ++i) {
        PageId p = static_cast<PageId>(rnd.Range(1, 64));
        PageRef ref;
        Status s = bm_.Fetch(p, &ref);
        if (!s.ok()) {
          ++errors;
          continue;
        }
        ref.latch().LockS();
        SlottedPage sp(ref.data(), 512);
        if (sp.Get(0)[0] != static_cast<char>('a' + p % 26)) ++errors;
        ref.latch().UnlockS();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
}

}  // namespace
}  // namespace oir
