// Model-based property test: a random workload of inserts, deletes,
// lookups, scans, aborts, online/offline rebuilds and crash-recovery
// cycles is executed against both the index and an in-memory reference
// model (std::set of composite keys). After every phase the index must
// contain exactly the model's contents and pass structural validation.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/db.h"
#include "core/index.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace oir {
namespace {

using test::MakeDb;
using test::NumKey;

struct ModelParam {
  uint64_t seed;
  uint32_t page_size;
  int steps;
};

class ModelTest : public ::testing::TestWithParam<ModelParam> {};

TEST_P(ModelTest, RandomWorkloadMatchesReference) {
  const ModelParam param = GetParam();
  const uint64_t seed = test::TestSeed(param.seed);
  OIR_SCOPED_SEED_TRACE(seed);
  Random rnd(seed);
  DbOptions opts;
  opts.page_size = param.page_size;
  opts.buffer_pool_pages = 1 << 14;
  std::unique_ptr<Db> db;
  ASSERT_OK(Db::Open(opts, &db));

  // Model: set of (key id, rid) committed; plus the current uncommitted
  // transaction's pending effects.
  std::set<std::pair<uint64_t, uint64_t>> committed;

  auto verify = [&](const char* when) {
    TreeStats stats;
    Status s = db->tree()->Validate(&stats);
    ASSERT_TRUE(s.ok()) << when << ": " << s.ToString();
    ASSERT_EQ(stats.num_keys, committed.size()) << when;
    auto rows = test::ScanAll(db.get());
    ASSERT_EQ(rows.size(), committed.size()) << when;
    size_t i = 0;
    for (const auto& [id, rid] : committed) {
      ASSERT_EQ(rows[i].first, NumKey(id)) << when << " at " << i;
      ASSERT_EQ(rows[i].second, rid) << when << " at " << i;
      ++i;
    }
  };

  for (int step = 0; step < param.steps; ++step) {
    int action = static_cast<int>(rnd.Uniform(100));
    if (action < 80) {
      // A transaction with a random batch of inserts/deletes; 25% abort.
      bool will_abort = rnd.OneIn(4);
      auto txn = db->BeginTxn();
      std::set<std::pair<uint64_t, uint64_t>> local = committed;
      int batch = 1 + static_cast<int>(rnd.Uniform(40));
      for (int b = 0; b < batch; ++b) {
        uint64_t id = rnd.Uniform(3000);
        uint64_t rid = id;
        if (rnd.OneIn(3) && !local.empty()) {
          auto it = local.lower_bound({id, 0});
          if (it == local.end()) it = local.begin();
          Status s = db->index()->Delete(txn.get(), NumKey(it->first),
                                         it->second);
          ASSERT_TRUE(s.ok()) << s.ToString();
          local.erase(it);
        } else if (local.count({id, rid}) == 0) {
          Status s = db->index()->Insert(txn.get(), NumKey(id), rid);
          ASSERT_TRUE(s.ok()) << s.ToString();
          local.insert({id, rid});
        }
      }
      if (will_abort) {
        ASSERT_OK(db->Abort(txn.get()));
      } else {
        ASSERT_OK(db->Commit(txn.get()));
        committed = std::move(local);
      }
    } else if (action < 88) {
      // Online rebuild with random options.
      RebuildOptions ropts;
      ropts.ntasize = 1u << rnd.Uniform(6);
      ropts.xactsize = ropts.ntasize * (1 + (uint32_t)rnd.Uniform(8));
      ropts.fillfactor = 60 + (uint32_t)rnd.Uniform(41);
      ropts.reorganize_level1 = !rnd.OneIn(4);
      ropts.log_full_keys = rnd.OneIn(5);
      ropts.readers_during_copy = !rnd.OneIn(4);
      RebuildResult res;
      Status s = db->index()->RebuildOnline(ropts, &res);
      ASSERT_TRUE(s.ok()) << s.ToString();
      verify("after online rebuild");
    } else if (action < 92) {
      RebuildResult res;
      ASSERT_OK(db->index()->RebuildOffline(&res));
      verify("after offline rebuild");
    } else if (action < 97) {
      // Random point lookups must agree with the model.
      auto txn = db->BeginTxn();
      for (int q = 0; q < 20; ++q) {
        uint64_t id = rnd.Uniform(3000);
        bool found;
        ASSERT_OK(db->index()->Lookup(txn.get(), NumKey(id), id, &found));
        ASSERT_EQ(found, committed.count({id, id}) > 0) << "id " << id;
      }
      ASSERT_OK(db->Commit(txn.get()));
    } else {
      // Crash and recover.
      RecoveryStats stats;
      ASSERT_OK(db->CrashAndRecover(&stats));
      verify("after crash recovery");
    }
  }
  verify("final");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelTest,
    ::testing::Values(ModelParam{1, 2048, 120}, ModelParam{2, 2048, 120},
                      ModelParam{3, 1024, 120}, ModelParam{4, 512, 120},
                      ModelParam{5, 4096, 120}, ModelParam{6, 512, 200},
                      ModelParam{7, 2048, 200}, ModelParam{8, 1024, 200}));

}  // namespace
}  // namespace oir
