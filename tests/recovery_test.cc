// Crash recovery tests: redo idempotence, loser undo with logical
// compensation, NTA survival across rollback and crash, keycopy redo from
// source pages, freeing of deallocated pages, and crash-at-every-durability
// -boundary property sweeps.

#include "recovery/recovery.h"

#include <gtest/gtest.h>

#include <set>

#include "core/db.h"
#include "core/index.h"
#include "tests/test_util.h"

namespace oir {
namespace {

using test::MakeDb;
using test::NumKey;

TEST(RecoveryTest, CommittedDataSurvivesCrash) {
  auto db = MakeDb();
  std::vector<uint64_t> ids;
  for (uint64_t i = 0; i < 1500; ++i) ids.push_back(i);
  test::InsertMany(db.get(), ids);
  RecoveryStats stats;
  ASSERT_OK(db->CrashAndRecover(&stats));
  test::ExpectTreeContains(db.get(),
                           std::set<uint64_t>(ids.begin(), ids.end()));
}

TEST(RecoveryTest, UncommittedInsertsRolledBack) {
  auto db = MakeDb();
  test::InsertMany(db.get(), {1, 2, 3});
  // A transaction that inserts but never commits.
  auto txn = db->BeginTxn();
  ASSERT_OK(db->index()->Insert(txn.get(), NumKey(100), 100));
  ASSERT_OK(db->index()->Insert(txn.get(), NumKey(200), 200));
  // Make the log durable so the loser's records are seen at restart (an
  // unforced tail would simply vanish, which is also fine but less
  // interesting).
  ASSERT_OK(db->log_manager()->FlushAll());
  test::AbandonTxn(std::move(txn));  // the "crash" kills it mid-flight
  RecoveryStats stats;
  ASSERT_OK(db->CrashAndRecover(&stats));
  EXPECT_EQ(stats.loser_txns, 1u);
  test::ExpectTreeContains(db.get(), {1, 2, 3});
}

TEST(RecoveryTest, UncommittedDeletesRolledBack) {
  auto db = MakeDb();
  std::vector<uint64_t> ids;
  for (uint64_t i = 0; i < 500; ++i) ids.push_back(i);
  test::InsertMany(db.get(), ids);
  auto txn = db->BeginTxn();
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_OK(db->index()->Delete(txn.get(), NumKey(i), i));
  }
  ASSERT_OK(db->log_manager()->FlushAll());
  test::AbandonTxn(std::move(txn));
  RecoveryStats stats;
  ASSERT_OK(db->CrashAndRecover(&stats));
  test::ExpectTreeContains(db.get(),
                           std::set<uint64_t>(ids.begin(), ids.end()));
}

TEST(RecoveryTest, RuntimeAbortUndoesLeafOps) {
  auto db = MakeDb();
  test::InsertMany(db.get(), {10, 20, 30});
  auto txn = db->BeginTxn();
  ASSERT_OK(db->index()->Insert(txn.get(), NumKey(15), 15));
  ASSERT_OK(db->index()->Delete(txn.get(), NumKey(20), 20));
  ASSERT_OK(db->Abort(txn.get()));
  test::ExpectTreeContains(db.get(), {10, 20, 30});
}

TEST(RecoveryTest, AbortAfterSplitsKeepsStructureButRemovesKeys) {
  auto db = MakeDb();
  // The inserts force many splits; the splits (nested top actions) survive
  // the rollback while every inserted key is removed.
  auto txn = db->BeginTxn();
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_OK(db->index()->Insert(txn.get(), NumKey(i), i));
  }
  ASSERT_OK(db->Abort(txn.get()));
  test::ExpectTreeContains(db.get(), {});
  // No pages leak: only the tree's own pages remain allocated.
  TreeStats stats;
  ASSERT_OK(db->tree()->Validate(&stats));
  EXPECT_EQ(db->space_manager()->CountInState(PageState::kAllocated),
            stats.num_leaf_pages + stats.num_nonleaf_pages);
}

TEST(RecoveryTest, AbortUndoLogicalAcrossConcurrentSplit) {
  // T1 inserts a key, another committed transaction splits the page the
  // key lives on, then T1 aborts: undo must find the key in its new home
  // (logical undo, ARIES/IM style).
  auto db = MakeDb();
  test::InsertMany(db.get(), {5000});
  auto t1 = db->BeginTxn();
  ASSERT_OK(db->index()->Insert(t1.get(), NumKey(4000), 4000));
  {
    std::vector<uint64_t> bulk;
    for (uint64_t i = 0; i < 2000; ++i) bulk.push_back(i);
    test::InsertMany(db.get(), bulk);  // splits everything repeatedly
  }
  ASSERT_OK(db->Abort(t1.get()));
  bool found = true;
  auto t2 = db->BeginTxn();
  ASSERT_OK(db->index()->Lookup(t2.get(), NumKey(4000), 4000, &found));
  EXPECT_FALSE(found);
  ASSERT_OK(db->Commit(t2.get()));
  TreeStats stats;
  ASSERT_OK(db->tree()->Validate(&stats));
  EXPECT_EQ(stats.num_keys, 2001u);
}

TEST(RecoveryTest, RedoIsIdempotent) {
  auto db = MakeDb();
  std::vector<uint64_t> ids;
  for (uint64_t i = 0; i < 800; ++i) ids.push_back(i);
  test::InsertMany(db.get(), ids);
  RecoveryStats stats;
  ASSERT_OK(db->CrashAndRecover(&stats));
  // Crash again immediately: everything redone is re-scanned and skipped
  // via the pageLSN test.
  RecoveryStats stats2;
  ASSERT_OK(db->CrashAndRecover(&stats2));
  test::ExpectTreeContains(db.get(),
                           std::set<uint64_t>(ids.begin(), ids.end()));
}

TEST(RecoveryTest, UnflushedTailIsLost) {
  auto db = MakeDb();
  test::InsertMany(db.get(), {1, 2, 3});  // committed: forced
  // These inserts commit but we sabotage durability by crashing... commit
  // forces the log, so instead make an uncommitted txn with unforced tail.
  auto txn = db->BeginTxn();
  ASSERT_OK(db->index()->Insert(txn.get(), NumKey(99), 99));
  test::AbandonTxn(std::move(txn));
  RecoveryStats stats;
  ASSERT_OK(db->CrashAndRecover(&stats));  // tail vanishes: no loser at all
  test::ExpectTreeContains(db.get(), {1, 2, 3});
}

TEST(RecoveryTest, CrashDuringRebuildKeepsAllKeys) {
  auto db = MakeDb();
  std::vector<uint64_t> all, odd;
  for (uint64_t i = 0; i < 6000; ++i) all.push_back(i);
  test::InsertMany(db.get(), all);
  for (uint64_t i = 1; i < 6000; i += 2) odd.push_back(i);
  test::DeleteMany(db.get(), odd);
  std::set<uint64_t> expect;
  for (uint64_t i = 0; i < 6000; i += 2) expect.insert(i);

  // Run a rebuild in small transactions, then crash WITHOUT quiescing: the
  // log tail beyond the last forced point disappears; committed rebuild
  // transactions survive, and the index is intact either way.
  RebuildOptions opts;
  opts.ntasize = 8;
  opts.xactsize = 16;
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(opts, &res));
  RecoveryStats stats;
  ASSERT_OK(db->CrashAndRecover(&stats));
  test::ExpectTreeContains(db.get(), expect);
}

// Crash-at-every-durability-boundary sweep: run a scripted workload, and
// for increasing log-flush points, crash and recover, checking the tree is
// well-formed and contains exactly the committed keys.
class CrashPointTest : public ::testing::TestWithParam<int> {};

TEST_P(CrashPointTest, RecoversToCommittedState) {
  const int crash_after_txns = GetParam();
  auto db = MakeDb();
  std::set<uint64_t> committed;
  // Scripted workload: batches of inserts/deletes, each committed; crash
  // after `crash_after_txns` batches plus one uncommitted trailer.
  for (int b = 0; b < crash_after_txns; ++b) {
    auto txn = db->BeginTxn();
    for (uint64_t i = 0; i < 120; ++i) {
      uint64_t id = b * 1000 + i;
      ASSERT_OK(db->index()->Insert(txn.get(), NumKey(id), id));
      committed.insert(id);
    }
    if (b % 2 == 1) {
      for (uint64_t i = 0; i < 60; ++i) {
        uint64_t id = (b - 1) * 1000 + i;
        ASSERT_OK(db->index()->Delete(txn.get(), NumKey(id), id));
        committed.erase(id);
      }
    }
    ASSERT_OK(db->Commit(txn.get()));
  }
  // Uncommitted trailer, forced to disk so it becomes a loser.
  auto loser = db->BeginTxn();
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_OK(db->index()->Insert(loser.get(), NumKey(900000 + i),
                                  900000 + i));
  }
  ASSERT_OK(db->log_manager()->FlushAll());
  test::AbandonTxn(std::move(loser));

  RecoveryStats stats;
  ASSERT_OK(db->CrashAndRecover(&stats));
  EXPECT_EQ(stats.loser_txns, 1u);
  test::ExpectTreeContains(db.get(), committed);

  // The database remains fully usable after recovery.
  auto txn = db->BeginTxn();
  ASSERT_OK(db->index()->Insert(txn.get(), NumKey(123456789), 123456789));
  ASSERT_OK(db->Commit(txn.get()));
  committed.insert(123456789);
  test::ExpectTreeContains(db.get(), committed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrashPointTest,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 12));

// Crash during an online rebuild with an *unforced* log tail at various
// points: xactsize controls how much of the rebuild had committed.
class RebuildCrashTest : public ::testing::TestWithParam<int> {};

TEST_P(RebuildCrashTest, IndexIntactAfterCrash) {
  auto db = MakeDb();
  std::set<uint64_t> expect;
  {
    std::vector<uint64_t> all, odd;
    for (uint64_t i = 0; i < 4000; ++i) all.push_back(i);
    test::InsertMany(db.get(), all);
    for (uint64_t i = 1; i < 4000; i += 2) odd.push_back(i);
    test::DeleteMany(db.get(), odd);
    for (uint64_t i = 0; i < 4000; i += 2) expect.insert(i);
  }
  RebuildOptions opts;
  opts.ntasize = GetParam();
  opts.xactsize = GetParam() * 4;
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(opts, &res));
  RecoveryStats stats;
  ASSERT_OK(db->CrashAndRecover(&stats));
  test::ExpectTreeContains(db.get(), expect);
  // No leaked pages: deallocated set empty after recovery completes.
  EXPECT_EQ(db->space_manager()->CountInState(PageState::kDeallocated), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RebuildCrashTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(RecoveryTest, KeycopyRedoReadsSourcePages) {
  // Force the interesting path: rebuild commits (its transactions force the
  // log) but the new pages' buffer contents are dropped by the crash before
  // any checkpoint. Redo must reconstruct the new pages from the keycopy
  // records by re-reading the (still intact on disk) old pages.
  auto db = MakeDb();
  std::vector<uint64_t> ids;
  for (uint64_t i = 0; i < 3000; ++i) ids.push_back(i);
  test::InsertMany(db.get(), ids);
  // Ensure the OLD page images are on disk before the rebuild.
  ASSERT_OK(db->buffer_manager()->FlushAll());
  RebuildResult res;
  RebuildOptions opts;
  ASSERT_OK(db->index()->RebuildOnline(opts, &res));
  RecoveryStats stats;
  ASSERT_OK(db->CrashAndRecover(&stats));
  test::ExpectTreeContains(db.get(),
                           std::set<uint64_t>(ids.begin(), ids.end()));
}

TEST(RecoveryTest, RecoveryStatsReporting) {
  auto db = MakeDb();
  test::InsertMany(db.get(), {1, 2, 3, 4, 5});
  RecoveryStats stats;
  ASSERT_OK(db->CrashAndRecover(&stats));
  EXPECT_GT(stats.records_scanned, 0u);
  EXPECT_GT(stats.records_redone, 0u);
  EXPECT_FALSE(stats.ToString().empty());
}

}  // namespace
}  // namespace oir
