// Cursor (range scan) tests — Section 2.5 semantics: latch released between
// rows, repositioning by key when pages change, shrink/rebuild interplay.

#include "btree/cursor.h"

#include <gtest/gtest.h>

#include "core/db.h"
#include "core/index.h"
#include "tests/test_util.h"

namespace oir {
namespace {

using test::MakeDb;
using test::NumKey;

TEST(CursorTest, FullScanInOrder) {
  auto db = MakeDb();
  std::vector<uint64_t> ids(1000);
  for (uint64_t i = 0; i < ids.size(); ++i) ids[i] = i * 3;
  test::InsertMany(db.get(), ids);
  auto rows = test::ScanAll(db.get());
  ASSERT_EQ(rows.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(rows[i].second, ids[i]);
  }
}

TEST(CursorTest, SeekPositionsAtLowerBound) {
  auto db = MakeDb();
  test::InsertMany(db.get(), {10, 20, 30, 40});
  auto txn = db->BeginTxn();
  auto cur = db->index()->NewCursor(txn.get());
  ASSERT_OK(cur->Seek(NumKey(20)));
  ASSERT_TRUE(cur->Valid());
  EXPECT_EQ(cur->rid(), 20u);
  ASSERT_OK(cur->Seek(NumKey(25)));
  ASSERT_TRUE(cur->Valid());
  EXPECT_EQ(cur->rid(), 30u);
  ASSERT_OK(cur->Seek(NumKey(99)));
  EXPECT_FALSE(cur->Valid());
  ASSERT_OK(db->Commit(txn.get()));
}

TEST(CursorTest, SeekOnEmptyIndex) {
  auto db = MakeDb();
  auto txn = db->BeginTxn();
  auto cur = db->index()->NewCursor(txn.get());
  ASSERT_OK(cur->Seek("anything"));
  EXPECT_FALSE(cur->Valid());
  ASSERT_OK(db->Commit(txn.get()));
}

TEST(CursorTest, SurvivesConcurrentMutationOfCurrentPage) {
  auto db = MakeDb();
  std::vector<uint64_t> ids;
  for (uint64_t i = 0; i < 500; ++i) ids.push_back(i * 10);
  test::InsertMany(db.get(), ids);

  auto txn = db->BeginTxn();
  auto cur = db->index()->NewCursor(txn.get());
  ASSERT_OK(cur->SeekToFirst());
  // Read half the rows, then mutate the index from another transaction,
  // then continue: the cursor must reposition by key without missing or
  // duplicating the untouched rows.
  std::vector<uint64_t> seen;
  for (int i = 0; i < 250 && cur->Valid(); ++i) {
    seen.push_back(cur->rid());
    ASSERT_OK(cur->Next());
  }
  {
    auto mut = db->BeginTxn();
    // Insert keys behind AND ahead of the cursor; delete some rows ahead.
    ASSERT_OK(db->index()->Insert(mut.get(), NumKey(5), 5));
    ASSERT_OK(db->index()->Insert(mut.get(), NumKey(4905), 4905));
    ASSERT_OK(db->index()->Delete(mut.get(), NumKey(3000), 3000));
    ASSERT_OK(db->Commit(mut.get()));
  }
  while (cur->Valid()) {
    seen.push_back(cur->rid());
    ASSERT_OK(cur->Next());
  }
  ASSERT_OK(db->Commit(txn.get()));
  // Expected: all original even-ten ids except 3000 (deleted ahead of the
  // cursor), plus 4905 (inserted ahead); 5 was behind the cursor.
  std::vector<uint64_t> expect;
  for (uint64_t i = 0; i < 500; ++i) {
    uint64_t v = i * 10;
    if (v == 3000) continue;
    expect.push_back(v);
    if (v == 4900) expect.push_back(4905);
  }
  EXPECT_EQ(seen, expect);
}

TEST(CursorTest, ScanDuringRebuildSeesAllRows) {
  auto db = MakeDb();
  std::vector<uint64_t> ids;
  for (uint64_t i = 0; i < 3000; ++i) ids.push_back(i);
  test::InsertMany(db.get(), ids);

  // Start scanning, rebuild mid-scan, finish scanning.
  auto txn = db->BeginTxn();
  auto cur = db->index()->NewCursor(txn.get());
  ASSERT_OK(cur->SeekToFirst());
  std::vector<uint64_t> seen;
  for (int i = 0; i < 1000 && cur->Valid(); ++i) {
    seen.push_back(cur->rid());
    ASSERT_OK(cur->Next());
  }
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(RebuildOptions(), &res));
  while (cur->Valid()) {
    seen.push_back(cur->rid());
    ASSERT_OK(cur->Next());
  }
  ASSERT_OK(db->Commit(txn.get()));
  ASSERT_EQ(seen.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) EXPECT_EQ(seen[i], ids[i]);
}

TEST(CursorTest, PagesVisitedDropsAfterRebuild) {
  auto db = MakeDb();
  // Half-empty pages: a range scan touches ~2x the pages it needs.
  std::vector<uint64_t> all;
  for (uint64_t i = 0; i < 4000; ++i) all.push_back(i);
  test::InsertMany(db.get(), all);
  std::vector<uint64_t> odd;
  for (uint64_t i = 1; i < 4000; i += 2) odd.push_back(i);
  test::DeleteMany(db.get(), odd);

  auto count_pages = [&]() {
    auto txn = db->BeginTxn();
    auto cur = db->index()->NewCursor(txn.get());
    EXPECT_OK(cur->SeekToFirst());
    while (cur->Valid()) {
      EXPECT_OK(cur->Next());
    }
    EXPECT_OK(db->Commit(txn.get()));
    return cur->pages_visited();
  };
  uint64_t before = count_pages();
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(RebuildOptions(), &res));
  uint64_t after = count_pages();
  EXPECT_LT(after * 3, before * 2);  // at least 1.5x fewer pages
}

}  // namespace
}  // namespace oir
