// Tests for the scalable I/O path: the sharded buffer pool under
// multi-threaded stress, read-ahead (Prefetch) correctness, WAL group
// commit (concurrent committers, durability across a crash), and the
// io_pages-vs-pool-size validation shared by the forced write and the
// prefetch path.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/rebuild.h"
#include "storage/buffer_manager.h"
#include "storage/disk.h"
#include "tests/test_util.h"
#include "util/counters.h"
#include "util/random.h"
#include "wal/log_manager.h"

namespace oir {
namespace {

using test::NumKey;

constexpr uint32_t kPage = 512;

// Byte offset past the page header: tests stamp page_lsn into the header,
// so the verifiable pattern starts after it.
constexpr uint32_t kBody = 64;

// Fills the page body with a pattern derived from the page id.
void FillPattern(char* buf, PageId id) {
  for (uint32_t i = kBody; i < kPage; ++i) {
    buf[i] = static_cast<char>((id * 31 + i) & 0xff);
  }
}

bool CheckPattern(const char* buf, PageId id) {
  for (uint32_t i = kBody; i < kPage; ++i) {
    if (buf[i] != static_cast<char>((id * 31 + i) & 0xff)) return false;
  }
  return true;
}

TEST(ShardedPoolTest, AutoShardCountScalesWithPool) {
  MemDisk disk(kPage, 16);
  EXPECT_EQ(BufferManager(&disk, 16).num_shards(), 1u);
  EXPECT_EQ(BufferManager(&disk, 64).num_shards(), 4u);
  EXPECT_EQ(BufferManager(&disk, 1 << 14).num_shards(), 8u);
  // Explicit count wins; 1 restores the single-mutex pool.
  EXPECT_EQ(BufferManager(&disk, 1 << 14, 1).num_shards(), 1u);
  EXPECT_EQ(BufferManager(&disk, 1 << 14, 4).num_shards(), 4u);
}

TEST(ShardedPoolTest, AllFramesReachableAcrossShards) {
  // More distinct pages than frames: every frame must be usable for every
  // page that hashes to its shard, and evictions must write back dirty
  // pages correctly.
  constexpr uint32_t kDiskPages = 256;
  MemDisk disk(kPage, kDiskPages);
  LogManager log;
  BufferManager bm(&disk, /*pool_frames=*/32, /*shards=*/4);
  bm.SetLogFlusher(&log);

  for (PageId p = 1; p < kDiskPages; ++p) {
    PageRef ref;
    ASSERT_OK(bm.Fetch(p, &ref));
    ref.latch().LockX();
    FillPattern(ref.data(), p);
    ref.header()->page_lsn = log.durable_lsn() - 1;  // already durable
    ref.MarkDirty();
    ref.latch().UnlockX();
  }
  ASSERT_OK(bm.FlushAll());
  // Everything must have reached the disk, via eviction or the flush.
  std::vector<char> buf(kPage);
  for (PageId p = 1; p < kDiskPages; ++p) {
    ASSERT_OK(disk.ReadPage(p, buf.data()));
    EXPECT_TRUE(CheckPattern(buf.data(), p)) << "page " << p;
  }
}

TEST(ShardedPoolTest, ConcurrentStress) {
  // 8 threads over a pool far smaller than the page set, so fetches,
  // evictions, write-backs and discards constantly collide across shards.
  constexpr int kThreads = 8;
  constexpr uint32_t kSharedFirst = 1;  // page 0 is kInvalidPageId
  constexpr uint32_t kSharedPages = 96;
  constexpr uint32_t kOwnBase = kSharedFirst + kSharedPages;
  constexpr uint32_t kPerThread = 16;
  constexpr uint32_t kDiskPages = kOwnBase + kThreads * kPerThread;
  MemDisk disk(kPage, kDiskPages);
  LogManager log;
  BufferManager bm(&disk, /*pool_frames=*/48, /*shards=*/4);
  bm.SetLogFlusher(&log);

  // Seed the shared range with its patterns.
  {
    std::vector<char> buf(kPage);
    for (PageId p = kSharedFirst; p < kSharedFirst + kSharedPages; ++p) {
      FillPattern(buf.data(), p);
      ASSERT_OK(disk.WritePage(p, buf.data()));
    }
  }

  const uint64_t seed = test::TestSeed(100);
  OIR_SCOPED_SEED_TRACE(seed);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rnd(seed + t);
      const PageId own_base = kOwnBase + t * kPerThread;
      for (int iter = 0; iter < 400; ++iter) {
        if (rnd.OneIn(3)) {
          // Write a page this thread owns, sometimes discard it after.
          PageId p = own_base + rnd.Uniform(kPerThread);
          PageRef ref;
          Status s = bm.Fetch(p, &ref);
          if (!s.ok()) {
            failures.fetch_add(1);
            continue;
          }
          ref.latch().LockX();
          FillPattern(ref.data(), p);
          ref.header()->page_lsn = 0;
          ref.MarkDirty();
          ref.latch().UnlockX();
          ref.Release();
          if (rnd.OneIn(4)) bm.Discard(p);
        } else {
          // Read a shared page and verify its pattern survived the churn.
          PageId p = kSharedFirst + rnd.Uniform(kSharedPages);
          PageRef ref;
          Status s = bm.Fetch(p, &ref);
          if (!s.ok()) {
            failures.fetch_add(1);
            continue;
          }
          ref.latch().LockS();
          if (!CheckPattern(ref.data(), p)) failures.fetch_add(1);
          ref.latch().UnlockS();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // The pool must still be coherent: every shared page readable and intact.
  for (PageId p = kSharedFirst; p < kSharedFirst + kSharedPages; ++p) {
    PageRef ref;
    ASSERT_OK(bm.Fetch(p, &ref));
    EXPECT_TRUE(CheckPattern(ref.data(), p)) << "page " << p;
  }
}

TEST(PrefetchTest, LoadsRunAndServesFetches) {
  constexpr uint32_t kDiskPages = 64;
  MemDisk disk(kPage, kDiskPages);
  BufferManager bm(&disk, 32, 2);
  std::vector<char> buf(kPage);
  for (PageId p = 1; p < kDiskPages; ++p) {
    FillPattern(buf.data(), p);
    ASSERT_OK(disk.WritePage(p, buf.data()));
  }

  auto before = GlobalCounters::Get().Snapshot();
  ASSERT_OK(bm.Prefetch(8, 16));
  auto delta = GlobalCounters::Get().Snapshot() - before;
  EXPECT_EQ(delta.io_read_ops, 1u);  // one multi-page transfer
  EXPECT_EQ(delta.pool_prefetched, 16u);

  before = GlobalCounters::Get().Snapshot();
  for (PageId p = 8; p < 24; ++p) {
    PageRef ref;
    ASSERT_OK(bm.Fetch(p, &ref));
    EXPECT_TRUE(CheckPattern(ref.data(), p)) << "page " << p;
  }
  delta = GlobalCounters::Get().Snapshot() - before;
  EXPECT_EQ(delta.pool_hits, 16u);  // all served from the pool
  EXPECT_EQ(delta.io_read_ops, 0u);
}

TEST(PrefetchTest, CachedCopyWins) {
  MemDisk disk(kPage, 32);
  LogManager log;
  BufferManager bm(&disk, 16, 2);
  bm.SetLogFlusher(&log);

  // Dirty page 5 in the pool with content newer than the disk's.
  PageRef ref;
  ASSERT_OK(bm.Fetch(5, &ref));
  ref.latch().LockX();
  std::memset(ref.data() + kBody, 0x5a, kPage - kBody);
  ref.header()->page_lsn = 0;
  ref.MarkDirty();
  ref.latch().UnlockX();
  ref.Release();

  // A prefetch spanning page 5 must not clobber the cached copy.
  ASSERT_OK(bm.Prefetch(1, 16));
  ASSERT_OK(bm.Fetch(5, &ref));
  for (uint32_t i = kBody; i < kPage; ++i) {
    ASSERT_EQ(ref.data()[i], 0x5a) << "offset " << i;
  }
}

TEST(PrefetchTest, RejectsRunLargerThanPool) {
  MemDisk disk(kPage, 64);
  BufferManager bm(&disk, 16, 2);
  EXPECT_TRUE(bm.Prefetch(1, 17).IsInvalidArgument());
  EXPECT_TRUE(bm.Prefetch(1, 0).IsInvalidArgument());
  EXPECT_OK(bm.Prefetch(1, 16));
}

TEST(FlushPagesTest, RejectsIoRunLargerThanPool) {
  MemDisk disk(kPage, 64);
  LogManager log;
  BufferManager bm(&disk, 16, 2);
  bm.SetLogFlusher(&log);
  std::vector<PageId> ids = {1, 2, 3};
  EXPECT_TRUE(bm.FlushPages(ids, 17).IsInvalidArgument());
  EXPECT_TRUE(bm.FlushPages(ids, 0).IsInvalidArgument());
  EXPECT_OK(bm.FlushPages(ids, 16));
}

TEST(RebuildOptionsTest, RejectsIoPagesLargerThanPool) {
  DbOptions dopts;
  dopts.page_size = 2048;
  dopts.buffer_pool_pages = 64;
  std::unique_ptr<Db> db;
  ASSERT_OK(Db::Open(dopts, &db));
  test::InsertMany(db.get(), {1, 2, 3});

  RebuildOptions opts;
  opts.io_pages = 65;  // exceeds the 64-frame pool
  RebuildResult res;
  EXPECT_TRUE(db->index()->RebuildOnline(opts, &res).IsInvalidArgument());
  opts.io_pages = 8;
  EXPECT_OK(db->index()->RebuildOnline(opts, &res));
}

TEST(GroupCommitTest, ConcurrentFlushersAllDurable) {
  LogManager log;
  log.SetGroupCommit(true);  // force the grouped protocol on a memory log
  constexpr int kThreads = 8;
  constexpr int kPer = 200;
  auto before = GlobalCounters::Get().Snapshot();
  std::vector<std::thread> threads;
  std::mutex mu;
  std::vector<Lsn> acked;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TxnContext ctx{static_cast<TxnId>(t + 1), kInvalidLsn};
      for (int i = 0; i < kPer; ++i) {
        LogRecord rec;
        rec.type = LogType::kCommitTxn;
        Lsn lsn = log.Append(&rec, &ctx);
        ASSERT_OK(log.FlushTo(lsn));
        std::lock_guard<std::mutex> l(mu);
        acked.push_back(lsn);
      }
    });
  }
  for (auto& th : threads) th.join();
  auto delta = GlobalCounters::Get().Snapshot() - before;

  // Every acknowledged record is at or below the durability boundary and
  // survives a crash.
  log.SimulateCrash();
  for (Lsn lsn : acked) {
    EXPECT_LT(lsn, log.durable_lsn());
    LogRecord rec;
    EXPECT_OK(log.ReadRecord(lsn, &rec));
  }
  // Grouping can only reduce the number of flush rounds.
  EXPECT_LE(delta.log_fsyncs, delta.log_flush_calls);
}

TEST(GroupCommitTest, AcknowledgedCommitsSurviveCrash) {
  // Full-stack durability: N threads commit inserts with group commit
  // forced on, the database crashes, and every acknowledged commit must be
  // present after recovery.
  auto db = test::MakeDb();
  db->log_manager()->SetGroupCommit(true);

  constexpr int kThreads = 4;
  constexpr int kPer = 50;
  std::mutex mu;
  std::set<uint64_t> committed;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        uint64_t id = static_cast<uint64_t>(t) * kPer + i;
        auto txn = db->BeginTxn();
        ASSERT_OK(db->index()->Insert(txn.get(), NumKey(id), id));
        ASSERT_OK(db->Commit(txn.get()));
        std::lock_guard<std::mutex> l(mu);
        committed.insert(id);
      }
    });
  }
  for (auto& th : threads) th.join();

  RecoveryStats stats;
  ASSERT_OK(db->CrashAndRecover(&stats));
  for (uint64_t id : committed) {
    auto txn = db->BeginTxn();
    bool found = false;
    ASSERT_OK(db->index()->Lookup(txn.get(), NumKey(id), id, &found));
    EXPECT_TRUE(found) << "acknowledged commit " << id << " lost";
    ASSERT_OK(db->Commit(txn.get()));
  }
}

TEST(WriteBackTest, FlushAllDrainsThroughWorkerAndHonorsWalOrder) {
  // With the write-back worker running, FlushAll becomes a batch barrier:
  // every dirty page is written by the worker, which forces the WAL up to
  // the page's LSN first (WAL-before-data).
  constexpr uint32_t kDiskPages = 64;
  MemDisk disk(kPage, kDiskPages);
  LogManager log;
  log.SetGroupCommit(true);
  BufferManager bm(&disk, /*pool_frames=*/32, /*shards=*/2);
  bm.SetLogFlusher(&log);
  bm.StartWriteBack();

  // Dirty pages whose page_lsn is NOT yet durable.
  TxnContext ctx{1, kInvalidLsn};
  Lsn max_lsn = 0;
  for (PageId p = 1; p <= 16; ++p) {
    LogRecord rec;
    rec.type = LogType::kCommitTxn;
    Lsn lsn = log.Append(&rec, &ctx);
    max_lsn = lsn;
    PageRef ref;
    ASSERT_OK(bm.Fetch(p, &ref));
    ref.latch().LockX();
    FillPattern(ref.data(), p);
    ref.header()->page_lsn = lsn;
    ref.MarkDirty();
    ref.latch().UnlockX();
  }
  ASSERT_GT(max_lsn, log.durable_lsn());

  auto before = GlobalCounters::Get().Snapshot();
  ASSERT_OK(bm.FlushAll());
  auto delta = GlobalCounters::Get().Snapshot() - before;
  EXPECT_GT(delta.pool_wb_async_writes, 0u);

  // Data on disk implies the covering log prefix is durable.
  EXPECT_GT(log.durable_lsn(), max_lsn);
  std::vector<char> buf(kPage);
  for (PageId p = 1; p <= 16; ++p) {
    ASSERT_OK(disk.ReadPage(p, buf.data()));
    EXPECT_TRUE(CheckPattern(buf.data(), p)) << "page " << p;
  }
  bm.StopWriteBack();
}

TEST(WriteBackTest, EvictionEnqueuesDirtyFramesAndKeepsData) {
  // Working set far larger than the pool with every frame dirty: the
  // clock scan hands dirty frames to the worker, and no write — async or
  // the inline fallback — may lose a byte.
  constexpr uint32_t kDiskPages = 256;
  MemDisk disk(kPage, kDiskPages);
  LogManager log;
  BufferManager bm(&disk, /*pool_frames=*/16, /*shards=*/2);
  bm.SetLogFlusher(&log);
  bm.StartWriteBack();

  auto before = GlobalCounters::Get().Snapshot();
  for (PageId p = 1; p < kDiskPages; ++p) {
    PageRef ref;
    ASSERT_OK(bm.Fetch(p, &ref));
    ref.latch().LockX();
    FillPattern(ref.data(), p);
    ref.header()->page_lsn = 0;  // nothing to force
    ref.MarkDirty();
    ref.latch().UnlockX();
  }
  auto delta = GlobalCounters::Get().Snapshot() - before;
  // Every eviction scan saw only dirty frames, so enqueues must happen.
  EXPECT_GT(delta.pool_wb_enqueued, 0u);

  ASSERT_OK(bm.FlushAll());
  std::vector<char> buf(kPage);
  for (PageId p = 1; p < kDiskPages; ++p) {
    ASSERT_OK(disk.ReadPage(p, buf.data()));
    EXPECT_TRUE(CheckPattern(buf.data(), p)) << "page " << p;
  }
  bm.StopWriteBack();
}

TEST(WriteBackTest, DropAllCancelsQueuedWork) {
  // DropAll must cancel queued write-backs (they would pin frames it is
  // about to free) without deadlocking or tripping the pin check.
  constexpr uint32_t kDiskPages = 128;
  MemDisk disk(kPage, kDiskPages);
  LogManager log;
  BufferManager bm(&disk, /*pool_frames=*/16, /*shards=*/2);
  bm.SetLogFlusher(&log);
  bm.StartWriteBack();

  for (PageId p = 1; p < kDiskPages; ++p) {
    PageRef ref;
    ASSERT_OK(bm.Fetch(p, &ref));
    ref.latch().LockX();
    FillPattern(ref.data(), p);
    ref.header()->page_lsn = 0;
    ref.MarkDirty();
    ref.latch().UnlockX();
  }
  bm.DropAll();  // queued items dropped, in-progress write drained
  EXPECT_EQ(bm.CachedPages(), 0u);

  // The pool stays usable afterwards: fetch, dirty, flush.
  PageRef ref;
  ASSERT_OK(bm.Fetch(1, &ref));
  ref.latch().LockX();
  FillPattern(ref.data(), 1);
  ref.header()->page_lsn = 0;
  ref.MarkDirty();
  ref.latch().UnlockX();
  ref.Release();
  ASSERT_OK(bm.FlushAll());
  bm.StopWriteBack();
}

TEST(GroupCommitTest, DisabledFallsBackToSynchronousFlush) {
  LogManager log;
  EXPECT_FALSE(log.group_commit());  // memory logs default to synchronous
  TxnContext ctx{1, kInvalidLsn};
  LogRecord rec;
  rec.type = LogType::kCommitTxn;
  Lsn lsn = log.Append(&rec, &ctx);
  ASSERT_OK(log.FlushTo(lsn));
  EXPECT_GT(log.durable_lsn(), lsn);
}

}  // namespace
}  // namespace oir
