// Index facade tests: table lock interaction with the offline rebuild,
// logical row locks from the isolation-level cursor, FileDisk-backed
// databases, and page-size sweeps of the whole workload path.

#include "core/index.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>

#include "core/db.h"
#include "tests/test_util.h"

namespace oir {
namespace {

using test::MakeDb;
using test::NumKey;

TEST(IndexTest, LockingCursorBlocksWriters) {
  auto db = MakeDb();
  test::InsertMany(db.get(), {10, 20, 30});

  auto scan_txn = db->BeginTxn();
  auto cur = db->index()->NewLockingCursor(scan_txn.get());
  ASSERT_OK(cur->SeekToFirst());
  ASSERT_TRUE(cur->Valid());
  EXPECT_EQ(cur->rid(), 10u);
  // The scanned row is S-locked: a deleter must wait for the scan txn.
  std::atomic<bool> deleted{false};
  std::thread writer([&] {
    auto txn = db->BeginTxn();
    Status s = db->index()->Delete(txn.get(), NumKey(10), 10);
    EXPECT_TRUE(s.ok()) << s.ToString();
    deleted.store(true);
    EXPECT_TRUE(db->Commit(txn.get()).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(deleted.load());  // blocked on the row lock
  ASSERT_OK(db->Commit(scan_txn.get()));
  writer.join();
  EXPECT_TRUE(deleted.load());
  test::ExpectTreeContains(db.get(), {20, 30});
}

TEST(IndexTest, LockingCursorScansWholeIndex) {
  auto db = MakeDb();
  std::vector<uint64_t> ids;
  for (uint64_t i = 0; i < 300; ++i) ids.push_back(i);
  test::InsertMany(db.get(), ids);
  auto txn = db->BeginTxn();
  auto cur = db->index()->NewLockingCursor(txn.get());
  ASSERT_OK(cur->SeekToFirst());
  uint64_t count = 0;
  while (cur->Valid()) {
    ++count;
    ASSERT_OK(cur->Next());
  }
  EXPECT_EQ(count, ids.size());
  ASSERT_OK(db->Commit(txn.get()));
  // All scan locks released: a delete proceeds immediately.
  test::DeleteMany(db.get(), {5});
}

TEST(IndexTest, ReadCommittedCursorDoesNotBlockWriters) {
  auto db = MakeDb();
  test::InsertMany(db.get(), {1, 2, 3});
  auto scan_txn = db->BeginTxn();
  auto cur = db->index()->NewCursor(scan_txn.get());
  ASSERT_OK(cur->SeekToFirst());
  // A plain cursor holds no row locks: concurrent delete succeeds at once.
  auto txn = db->BeginTxn();
  ASSERT_OK(db->index()->Delete(txn.get(), NumKey(2), 2));
  ASSERT_OK(db->Commit(txn.get()));
  ASSERT_OK(db->Commit(scan_txn.get()));
}

TEST(IndexTest, RowLockConflictAcrossTransactions) {
  auto db = MakeDb();
  test::InsertMany(db.get(), {7});
  auto t1 = db->BeginTxn();
  // t1 deletes row 7 (X lock held to txn end).
  ASSERT_OK(db->index()->Delete(t1.get(), NumKey(7), 7));
  // t2 cannot touch row 7 until t1 ends.
  auto t2 = db->BeginTxn();
  EXPECT_TRUE(db->lock_manager()
                  ->Lock(t2->id(), LogicalLockKey(7), LockMode::kS, true)
                  .IsBusy());
  ASSERT_OK(db->Abort(t1.get()));
  ASSERT_OK(db->lock_manager()->Lock(t2->id(), LogicalLockKey(7),
                                     LockMode::kS, true));
  db->lock_manager()->Unlock(t2->id(), LogicalLockKey(7));
  ASSERT_OK(db->Commit(t2.get()));
  test::ExpectTreeContains(db.get(), {7});
}

TEST(IndexTest, OfflineRebuildOnEmptyIndex) {
  auto db = MakeDb();
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOffline(&res));
  test::ExpectTreeContains(db.get(), {});
  // Still usable.
  test::InsertMany(db.get(), {1, 2});
  test::ExpectTreeContains(db.get(), {1, 2});
}

TEST(IndexTest, OfflineRebuildPreservesContentAndPacks) {
  auto db = MakeDb();
  std::vector<uint64_t> all, odd;
  for (uint64_t i = 0; i < 3000; ++i) all.push_back(i);
  test::InsertMany(db.get(), all);
  for (uint64_t i = 1; i < 3000; i += 2) odd.push_back(i);
  test::DeleteMany(db.get(), odd);

  TreeStats before;
  ASSERT_OK(db->tree()->Validate(&before));
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOffline(&res));
  TreeStats after;
  ASSERT_OK(db->tree()->Validate(&after));
  EXPECT_LT(after.num_leaf_pages, before.num_leaf_pages);
  EXPECT_GT(after.LeafUtilization(), 0.9);
  std::set<uint64_t> expect;
  for (uint64_t i = 0; i < 3000; i += 2) expect.insert(i);
  test::ExpectTreeContains(db.get(), expect);
  EXPECT_EQ(db->space_manager()->CountInState(PageState::kDeallocated), 0u);
}

TEST(IndexTest, OfflineRebuildSurvivesCrash) {
  auto db = MakeDb();
  std::vector<uint64_t> ids;
  for (uint64_t i = 0; i < 1000; ++i) ids.push_back(i * 3);
  test::InsertMany(db.get(), ids);
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOffline(&res));
  RecoveryStats stats;
  ASSERT_OK(db->CrashAndRecover(&stats));
  test::ExpectTreeContains(db.get(),
                           std::set<uint64_t>(ids.begin(), ids.end()));
}

TEST(IndexTest, FileDiskBackedDatabase) {
  std::string path = ::testing::TempDir() + "/oir_index_filedisk.db";
  std::remove(path.c_str());
  DbOptions opts;
  opts.use_file_disk = true;
  opts.file_path = path;
  opts.buffer_pool_pages = 1 << 12;
  std::unique_ptr<Db> db;
  ASSERT_OK(Db::Open(opts, &db));
  std::vector<uint64_t> ids;
  for (uint64_t i = 0; i < 2000; ++i) ids.push_back(i);
  test::InsertMany(db.get(), ids);
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(RebuildOptions(), &res));
  RecoveryStats stats;
  ASSERT_OK(db->CrashAndRecover(&stats));
  test::ExpectTreeContains(db.get(),
                           std::set<uint64_t>(ids.begin(), ids.end()));
  db.reset();
  std::remove(path.c_str());
}

// Page-size sweep of the full workload path: load, churn, rebuild, crash.
class PageSizeTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PageSizeTest, FullWorkloadRoundTrip) {
  auto db = MakeDb(GetParam());
  std::set<uint64_t> expect;
  {
    auto txn = db->BeginTxn();
    for (uint64_t i = 0; i < 2000; ++i) {
      ASSERT_OK(db->index()->Insert(txn.get(), NumKey(i), i));
      expect.insert(i);
    }
    ASSERT_OK(db->Commit(txn.get()));
    txn = db->BeginTxn();
    for (uint64_t i = 0; i < 2000; i += 3) {
      ASSERT_OK(db->index()->Delete(txn.get(), NumKey(i), i));
      expect.erase(i);
    }
    ASSERT_OK(db->Commit(txn.get()));
  }
  RebuildOptions opts;
  opts.ntasize = 8;
  RebuildResult res;
  ASSERT_OK(db->index()->RebuildOnline(opts, &res));
  RecoveryStats stats;
  ASSERT_OK(db->CrashAndRecover(&stats));
  test::ExpectTreeContains(db.get(), expect);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PageSizeTest,
                         ::testing::Values(512u, 1024u, 2048u, 4096u, 8192u,
                                           16384u));

}  // namespace
}  // namespace oir
