#ifndef OIR_TESTS_TEST_UTIL_H_
#define OIR_TESTS_TEST_UTIL_H_

// Shared helpers for the test suite.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/db.h"
#include "core/index.h"
#include "util/random.h"

#if defined(__SANITIZE_ADDRESS__)
#define OIR_TEST_HAS_LSAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define OIR_TEST_HAS_LSAN 1
#endif
#endif
#ifdef OIR_TEST_HAS_LSAN
#include <sanitizer/lsan_interface.h>
#endif

namespace oir::test {

// Gtest-friendly status assertion.
#define ASSERT_OK(expr)                                 \
  do {                                                  \
    ::oir::Status _st = (expr);                         \
    ASSERT_TRUE(_st.ok()) << _st.ToString();            \
  } while (0)

#define EXPECT_OK(expr)                                 \
  do {                                                  \
    ::oir::Status _st = (expr);                         \
    EXPECT_TRUE(_st.ok()) << _st.ToString();            \
  } while (0)

// Seed for randomized tests: OIR_TEST_SEED in the environment overrides
// the test's default, so any failure is reproducible with the exact
// workload that provoked it. Pair with OIR_SCOPED_SEED_TRACE so every
// gtest failure message carries the repro line.
inline uint64_t TestSeed(uint64_t default_seed = 1) {
  const char* env = std::getenv("OIR_TEST_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return default_seed;
}

// Attaches "repro: OIR_TEST_SEED=<seed>" to every assertion failure in the
// enclosing scope.
#define OIR_SCOPED_SEED_TRACE(seed) \
  SCOPED_TRACE(::testing::Message() << "repro: OIR_TEST_SEED=" << (seed))

inline std::unique_ptr<Db> MakeDb(uint32_t page_size = 2048,
                                  size_t pool_pages = 1 << 14) {
  DbOptions opts;
  opts.page_size = page_size;
  opts.buffer_pool_pages = pool_pages;
  std::unique_ptr<Db> db;
  Status s = Db::Open(opts, &db);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return db;
}

// Abandons an in-flight transaction the way a crash would: ownership is
// dropped without commit or abort, so the TransactionManager's active
// table still lists it when CrashAndRecover runs and recovery sees a
// loser. The object is leaked on purpose; under the ASan lane it is
// registered with LeakSanitizer as expected, so only *unintended* leaks
// fail the suite.
inline void AbandonTxn(std::unique_ptr<Transaction> txn) {
  Transaction* crashed = txn.release();
#ifdef OIR_TEST_HAS_LSAN
  __lsan_ignore_object(crashed);
#else
  (void)crashed;
#endif
}

// Fixed-width decimal key: sortable, deterministic.
inline std::string NumKey(uint64_t n, int width = 12) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%0*llu", width,
                static_cast<unsigned long long>(n));
  return std::string(buf);
}

// Inserts keys NumKey(i) with rid i for every i in `ids`, one transaction.
inline void InsertMany(Db* db, const std::vector<uint64_t>& ids,
                       int width = 12) {
  auto txn = db->BeginTxn();
  for (uint64_t i : ids) {
    Status s = db->index()->Insert(txn.get(), NumKey(i, width), i);
    ASSERT_TRUE(s.ok()) << "insert " << i << ": " << s.ToString();
  }
  ASSERT_OK(db->Commit(txn.get()));
}

inline void DeleteMany(Db* db, const std::vector<uint64_t>& ids,
                       int width = 12) {
  auto txn = db->BeginTxn();
  for (uint64_t i : ids) {
    Status s = db->index()->Delete(txn.get(), NumKey(i, width), i);
    ASSERT_TRUE(s.ok()) << "delete " << i << ": " << s.ToString();
  }
  ASSERT_OK(db->Commit(txn.get()));
}

// Returns all (user key, rid) pairs via a full scan.
inline std::vector<std::pair<std::string, RowId>> ScanAll(Db* db) {
  std::vector<std::pair<std::string, RowId>> out;
  auto txn = db->BeginTxn();
  auto cur = db->index()->NewCursor(txn.get());
  Status s = cur->SeekToFirst();
  EXPECT_TRUE(s.ok()) << s.ToString();
  while (cur->Valid()) {
    out.emplace_back(cur->user_key().ToString(), cur->rid());
    s = cur->Next();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  EXPECT_TRUE(db->Commit(txn.get()).ok());
  return out;
}

// Validates the tree and checks it contains exactly the given rids (as
// NumKey(i) keys).
inline void ExpectTreeContains(Db* db, const std::set<uint64_t>& ids,
                               int width = 12) {
  TreeStats stats;
  Status s = db->tree()->Validate(&stats);
  ASSERT_TRUE(s.ok()) << "validate: " << s.ToString();
  EXPECT_EQ(stats.num_keys, ids.size());
  auto rows = ScanAll(db);
  ASSERT_EQ(rows.size(), ids.size());
  size_t i = 0;
  for (uint64_t id : ids) {
    EXPECT_EQ(rows[i].first, NumKey(id, width)) << "at " << i;
    EXPECT_EQ(rows[i].second, id) << "at " << i;
    ++i;
  }
}

}  // namespace oir::test

#endif  // OIR_TESTS_TEST_UTIL_H_
