// Unit and property tests for the slotted page layer.

#include "storage/slotted_page.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "tests/test_util.h"
#include "util/random.h"

namespace oir {
namespace {

class SlottedPageTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kPageSize = 2048;
  SlottedPageTest() : buf_(kPageSize, 0), page_(buf_.data(), kPageSize) {
    page_.Init(7, kLeafLevel);
  }
  std::vector<char> buf_;
  SlottedPage page_;
};

TEST_F(SlottedPageTest, InitSetsHeader) {
  EXPECT_EQ(page_.header()->page_id, 7u);
  EXPECT_EQ(page_.header()->level, kLeafLevel);
  EXPECT_EQ(page_.nslots(), 0u);
  EXPECT_EQ(page_.header()->free_ptr, kPageHeaderSize);
  EXPECT_EQ(page_.FreeSpace(), kPageSize - kPageHeaderSize);
  EXPECT_TRUE(page_.Validate());
}

TEST_F(SlottedPageTest, InsertAndGet) {
  ASSERT_TRUE(page_.InsertAt(0, Slice("bbb")));
  ASSERT_TRUE(page_.InsertAt(0, Slice("aaa")));
  ASSERT_TRUE(page_.InsertAt(2, Slice("ccc")));
  EXPECT_EQ(page_.nslots(), 3u);
  EXPECT_EQ(page_.Get(0).ToString(), "aaa");
  EXPECT_EQ(page_.Get(1).ToString(), "bbb");
  EXPECT_EQ(page_.Get(2).ToString(), "ccc");
  EXPECT_TRUE(page_.Validate());
}

TEST_F(SlottedPageTest, InsertShiftsSlots) {
  ASSERT_TRUE(page_.InsertAt(0, Slice("a")));
  ASSERT_TRUE(page_.InsertAt(1, Slice("c")));
  ASSERT_TRUE(page_.InsertAt(1, Slice("b")));
  EXPECT_EQ(page_.Get(0).ToString(), "a");
  EXPECT_EQ(page_.Get(1).ToString(), "b");
  EXPECT_EQ(page_.Get(2).ToString(), "c");
}

TEST_F(SlottedPageTest, DeleteShiftsSlots) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(page_.InsertAt(i, Slice(std::string(1, 'a' + i))));
  }
  page_.DeleteAt(1);  // remove 'b'
  EXPECT_EQ(page_.nslots(), 4u);
  EXPECT_EQ(page_.Get(0).ToString(), "a");
  EXPECT_EQ(page_.Get(1).ToString(), "c");
  EXPECT_EQ(page_.Get(3).ToString(), "e");
  EXPECT_TRUE(page_.Validate());
}

TEST_F(SlottedPageTest, DeleteLastRowReclaimsDirectly) {
  ASSERT_TRUE(page_.InsertAt(0, Slice("hello")));
  uint32_t before = page_.FreeSpace();
  page_.DeleteAt(0);
  EXPECT_EQ(page_.header()->garbage, 0u);
  EXPECT_EQ(page_.FreeSpace(), before + 5 + kSlotSize);
}

TEST_F(SlottedPageTest, DeleteInteriorCreatesGarbage) {
  ASSERT_TRUE(page_.InsertAt(0, Slice("first")));
  ASSERT_TRUE(page_.InsertAt(1, Slice("second")));
  page_.DeleteAt(0);
  EXPECT_EQ(page_.header()->garbage, 5u);
  EXPECT_TRUE(page_.Validate());
  page_.Compact();
  EXPECT_EQ(page_.header()->garbage, 0u);
  EXPECT_EQ(page_.Get(0).ToString(), "second");
}

TEST_F(SlottedPageTest, InsertFailsWhenFull) {
  std::string row(100, 'x');
  int inserted = 0;
  while (page_.InsertAt(0, Slice(row))) ++inserted;
  // 2016 usable bytes / 104 per row = 19 rows.
  EXPECT_EQ(inserted, 19);
  EXPECT_FALSE(page_.HasRoomFor(100));
  EXPECT_TRUE(page_.HasRoomFor(30));
  EXPECT_TRUE(page_.Validate());
}

TEST_F(SlottedPageTest, InsertTriggersCompaction) {
  std::string row(100, 'x');
  while (page_.InsertAt(0, Slice(row))) {
  }
  // Delete an interior row: space is only reclaimable via compaction.
  page_.DeleteAt(3);
  EXPECT_GT(page_.header()->garbage, 0u);
  ASSERT_TRUE(page_.InsertAt(0, Slice(row)));  // forces Compact()
  EXPECT_TRUE(page_.Validate());
}

TEST_F(SlottedPageTest, ReplaceSameOrSmallerInPlace) {
  ASSERT_TRUE(page_.InsertAt(0, Slice("abcdef")));
  ASSERT_TRUE(page_.ReplaceAt(0, Slice("xyz")));
  EXPECT_EQ(page_.Get(0).ToString(), "xyz");
  EXPECT_EQ(page_.header()->garbage, 3u);
  EXPECT_TRUE(page_.Validate());
}

TEST_F(SlottedPageTest, ReplaceLargerReinserts) {
  ASSERT_TRUE(page_.InsertAt(0, Slice("ab")));
  ASSERT_TRUE(page_.InsertAt(1, Slice("cd")));
  ASSERT_TRUE(page_.ReplaceAt(0, Slice("longer-row")));
  EXPECT_EQ(page_.Get(0).ToString(), "longer-row");
  EXPECT_EQ(page_.Get(1).ToString(), "cd");
  EXPECT_TRUE(page_.Validate());
}

TEST_F(SlottedPageTest, ReplaceLargerFailsWhenFullKeepsOriginal) {
  std::string row(100, 'x');
  while (page_.InsertAt(0, Slice(row))) {
  }
  std::string bigger(400, 'y');
  EXPECT_FALSE(page_.ReplaceAt(0, Slice(bigger)));
  EXPECT_EQ(page_.Get(0).ToString(), row);
  EXPECT_TRUE(page_.Validate());
}

TEST_F(SlottedPageTest, EmptyRowsSupported) {
  ASSERT_TRUE(page_.InsertAt(0, Slice("")));
  EXPECT_EQ(page_.nslots(), 1u);
  EXPECT_TRUE(page_.Get(0).empty());
  page_.DeleteAt(0);
  EXPECT_EQ(page_.nslots(), 0u);
}

TEST_F(SlottedPageTest, UsedSpaceAccounting) {
  ASSERT_TRUE(page_.InsertAt(0, Slice("12345")));
  EXPECT_EQ(page_.UsedSpace(), 5 + kSlotSize);
  ASSERT_TRUE(page_.InsertAt(1, Slice("678")));
  EXPECT_EQ(page_.UsedSpace(), 8 + 2 * kSlotSize);
}

// Property test: random inserts/deletes/replacements against a reference
// vector, checking content and Validate() at every step.
TEST(SlottedPagePropertyTest, RandomOpsMatchReference) {
  const uint64_t base_seed = oir::test::TestSeed(1);
  for (uint64_t seed = base_seed; seed < base_seed + 8; ++seed) {
    OIR_SCOPED_SEED_TRACE(seed);
    Random rnd(seed);
    std::vector<char> buf(1024, 0);
    SlottedPage page(buf.data(), 1024);
    page.Init(1, 2);
    std::vector<std::string> ref;
    for (int step = 0; step < 2000; ++step) {
      int op = static_cast<int>(rnd.Uniform(4));
      if (op == 0 || ref.empty()) {
        std::string row = rnd.Bytes(rnd.Range(0, 40));
        SlotId pos = static_cast<SlotId>(rnd.Uniform(ref.size() + 1));
        bool ok = page.InsertAt(pos, Slice(row));
        bool expect_ok =
            page.nslots() <= ref.size() &&  // insert failed -> unchanged
            true;
        (void)expect_ok;
        if (ok) ref.insert(ref.begin() + pos, row);
      } else if (op == 1) {
        SlotId pos = static_cast<SlotId>(rnd.Uniform(ref.size()));
        page.DeleteAt(pos);
        ref.erase(ref.begin() + pos);
      } else if (op == 2) {
        SlotId pos = static_cast<SlotId>(rnd.Uniform(ref.size()));
        std::string row = rnd.Bytes(rnd.Range(0, 40));
        if (page.ReplaceAt(pos, Slice(row))) ref[pos] = row;
      } else {
        page.Compact();
      }
      ASSERT_TRUE(page.Validate()) << "seed " << seed << " step " << step;
      ASSERT_EQ(page.nslots(), ref.size());
      for (size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(page.Get(static_cast<SlotId>(i)).ToString(), ref[i])
            << "seed " << seed << " step " << step << " slot " << i;
      }
    }
  }
}

}  // namespace
}  // namespace oir
