// Fault-injection building blocks: the crash-point registry, the
// FaultInjectingDisk decorator (power cut, torn writes, transient errors),
// WAL flush failure injection, and torn-log-tail truncation at recovery —
// unit level (LogManager) and end to end (Db::OpenExisting).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include "core/db.h"
#include "core/index.h"
#include "storage/disk.h"
#include "testing/crash_point.h"
#include "testing/fault_disk.h"
#include "testing/oracle.h"
#include "tests/test_util.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace oir {
namespace {

using fault::CrashPointRegistry;
using fault::FaultInjectingDisk;
using test::NumKey;

// ---------------------------------------------------------------- registry

class CrashPointTest : public ::testing::Test {
 protected:
  void SetUp() override { Clear(); }
  void TearDown() override { Clear(); }
  void Clear() {
    CrashPointRegistry::SetEnabled(false);
    CrashPointRegistry::Get().Disarm();
    CrashPointRegistry::Get().ResetCounts();
  }
};

TEST_F(CrashPointTest, DisabledRegistryCountsNothing) {
  OIR_CRASH_POINT("test.disabled.point");
  EXPECT_TRUE(CrashPointRegistry::Get().Snapshot().empty());
}

TEST_F(CrashPointTest, CountsHitsPerName) {
  CrashPointRegistry::SetEnabled(true);
  OIR_CRASH_POINT("test.point.a");
  OIR_CRASH_POINT("test.point.a");
  OIR_CRASH_POINT("test.point.b");
  CrashPointRegistry::SetEnabled(false);
  auto snap = CrashPointRegistry::Get().Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "test.point.a");
  EXPECT_EQ(snap[0].second, 2u);
  EXPECT_EQ(snap[1].first, "test.point.b");
  EXPECT_EQ(snap[1].second, 1u);
}

TEST_F(CrashPointTest, ArmedHandlerFiresOnceAtChosenOrdinal) {
  auto& reg = CrashPointRegistry::Get();
  int fired = 0;
  reg.Arm("test.point.a", 2, [&fired] { ++fired; });
  CrashPointRegistry::SetEnabled(true);
  OIR_CRASH_POINT("test.point.a");  // hit 0
  OIR_CRASH_POINT("test.point.b");  // other name: never fires
  EXPECT_FALSE(reg.triggered());
  OIR_CRASH_POINT("test.point.a");  // hit 1
  EXPECT_EQ(fired, 0);
  OIR_CRASH_POINT("test.point.a");  // hit 2: fires
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(reg.triggered());
  OIR_CRASH_POINT("test.point.a");  // exactly once
  CrashPointRegistry::SetEnabled(false);
  EXPECT_EQ(fired, 1);
}

TEST_F(CrashPointTest, ParseSpec) {
  std::string name;
  uint64_t hit = 99;
  EXPECT_TRUE(CrashPointRegistry::ParseSpec("wal.flush.pre", &name, &hit));
  EXPECT_EQ(name, "wal.flush.pre");
  EXPECT_EQ(hit, 0u);
  EXPECT_TRUE(CrashPointRegistry::ParseSpec("btree.split.alloc#12", &name,
                                            &hit));
  EXPECT_EQ(name, "btree.split.alloc");
  EXPECT_EQ(hit, 12u);
  EXPECT_FALSE(CrashPointRegistry::ParseSpec("", &name, &hit));
  EXPECT_FALSE(CrashPointRegistry::ParseSpec("a#", &name, &hit));
  EXPECT_FALSE(CrashPointRegistry::ParseSpec("a#12x", &name, &hit));
  EXPECT_FALSE(CrashPointRegistry::ParseSpec("#3", &name, &hit));
}

// -------------------------------------------------------------- fault disk

TEST(FaultDiskTest, PowerCutFailsWritesButReadsSurvive) {
  FaultInjectingDisk disk(std::make_unique<MemDisk>(512, 8));
  std::string a(512, 'a'), b(512, 'b'), got(512, '\0');
  ASSERT_OK(disk.WritePage(2, a.data()));
  disk.CutPower();
  EXPECT_TRUE(disk.power_cut());
  EXPECT_FALSE(disk.WritePage(2, b.data()).ok());
  EXPECT_FALSE(disk.Sync().ok());
  ASSERT_OK(disk.ReadPage(2, got.data()));
  EXPECT_EQ(got, a);  // the pre-cut image is what the platter holds
  EXPECT_GE(disk.injected_faults(), 2u);
  disk.Restore();
  ASSERT_OK(disk.WritePage(2, b.data()));
  ASSERT_OK(disk.ReadPage(2, got.data()));
  EXPECT_EQ(got, b);
}

TEST(FaultDiskTest, TransientErrorsHealAfterN) {
  FaultInjectingDisk disk(std::make_unique<MemDisk>(512, 8));
  std::string buf(512, 'x');
  disk.FailNextWrites(2);
  EXPECT_FALSE(disk.WritePage(1, buf.data()).ok());
  EXPECT_FALSE(disk.WritePage(1, buf.data()).ok());
  ASSERT_OK(disk.WritePage(1, buf.data()));
  EXPECT_EQ(disk.injected_faults(), 2u);
}

TEST(FaultDiskTest, TornWriteKeepsLeadingSectorsAndCutsPower) {
  FaultInjectingDisk disk(std::make_unique<MemDisk>(2048, 8));
  std::string oldimg(2048, 'o'), newimg(2048, 'n'), got(2048, '\0');
  ASSERT_OK(disk.WritePage(3, oldimg.data()));
  disk.TearNextWrite(3, 1);  // only the first 512-byte sector lands
  EXPECT_FALSE(disk.WritePage(3, newimg.data()).ok());
  EXPECT_TRUE(disk.power_cut());
  ASSERT_OK(disk.ReadPage(3, got.data()));
  EXPECT_EQ(got.substr(0, 512), std::string(512, 'n'));
  EXPECT_EQ(got.substr(512), std::string(2048 - 512, 'o'));
}

TEST(FaultDiskTest, TornMultiPageWriteStopsAtTornPage) {
  FaultInjectingDisk disk(std::make_unique<MemDisk>(1024, 16));
  std::string oldimg(3 * 1024, 'o'), newimg(3 * 1024, 'n');
  ASSERT_OK(disk.WriteMulti(4, 3, oldimg.data()));
  disk.TearNextWrite(5, 1);  // middle page of the 3-page transfer
  EXPECT_FALSE(disk.WriteMulti(4, 3, newimg.data()).ok());
  std::string got(1024, '\0');
  ASSERT_OK(disk.ReadPage(4, got.data()));
  EXPECT_EQ(got, std::string(1024, 'n'));  // before the tear: full write
  ASSERT_OK(disk.ReadPage(5, got.data()));
  EXPECT_EQ(got.substr(0, 512), std::string(512, 'n'));
  EXPECT_EQ(got.substr(512), std::string(512, 'o'));
  ASSERT_OK(disk.ReadPage(6, got.data()));
  EXPECT_EQ(got, std::string(1024, 'o'));  // after the tear: nothing landed
}

// ------------------------------------------------------- WAL flush faults

TEST(FailFlushesTest, SyncFlushFailsWhileSetAndHeals) {
  LogManager log;
  TxnContext ctx{1, kInvalidLsn};
  LogRecord a;
  a.type = LogType::kBeginTxn;
  Lsn la = log.Append(&a, &ctx);
  ASSERT_OK(log.FlushTo(la));
  LogRecord b;
  b.type = LogType::kCommitTxn;
  Lsn lb = log.Append(&b, &ctx);
  log.SetFailFlushes(true);
  EXPECT_FALSE(log.FlushTo(lb).ok());
  // Already-durable prefixes still report success — the device refuses new
  // work, it does not un-write old bytes.
  EXPECT_OK(log.FlushTo(la));
  log.SetFailFlushes(false);
  EXPECT_OK(log.FlushTo(lb));
  EXPECT_GT(log.durable_lsn(), lb);
}

TEST(FailFlushesTest, GroupCommitFlushPublishesError) {
  LogManager log;
  log.SetGroupCommit(true);
  TxnContext ctx{1, kInvalidLsn};
  LogRecord a;
  a.type = LogType::kCommitTxn;
  Lsn la = log.Append(&a, &ctx);
  log.SetFailFlushes(true);
  EXPECT_FALSE(log.FlushTo(la).ok());
  log.SetFailFlushes(false);
  EXPECT_OK(log.FlushTo(la));
}

// ---------------------------------------------------------- torn log tail

class TornTailTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/oir_torntail_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".log";
    Cleanup();
  }
  void TearDown() override { Cleanup(); }
  void Cleanup() {
    std::remove(path_.c_str());
    std::remove((path_ + ".master").c_str());
  }

  // Appends `n` flushed system records; returns the file size.
  long WriteRecords(int n) {
    std::unique_ptr<LogManager> log;
    EXPECT_OK(LogManager::Open(path_, /*truncate=*/true, &log));
    for (int i = 0; i < n; ++i) {
      LogRecord rec;
      rec.type = LogType::kNtaEnd;
      rec.page_id = static_cast<PageId>(i);
      log->AppendSystem(&rec);
    }
    EXPECT_OK(log->FlushAll());
    log.reset();  // closes the file
    FILE* f = std::fopen(path_.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    return size;
  }

  int CountRecords(LogManager* log) {
    int count = 0;
    for (auto it = log->Scan(log->head_lsn()); it.Valid(); it.Next()) ++count;
    return count;
  }

  std::string path_;
};

TEST_F(TornTailTest, FileLogTruncatedMidRecordIsCutAtLastValidRecord) {
  long size = WriteRecords(6);
  ASSERT_GT(size, 3);
  // Chop 3 bytes off the tail: the last record's frame is now truncated,
  // exactly what a crash mid-write leaves behind.
  ASSERT_EQ(::truncate(path_.c_str(), size - 3), 0);
  std::unique_ptr<LogManager> log;
  ASSERT_OK(LogManager::Open(path_, /*truncate=*/false, &log));
  EXPECT_EQ(CountRecords(log.get()), 5);
  // The truncated tail is gone for good: new appends extend a clean chain.
  LogRecord rec;
  rec.type = LogType::kNtaEnd;
  rec.page_id = 777;
  log->AppendSystem(&rec);
  ASSERT_OK(log->FlushAll());
  log.reset();
  ASSERT_OK(LogManager::Open(path_, /*truncate=*/false, &log));
  EXPECT_EQ(CountRecords(log.get()), 6);
}

TEST_F(TornTailTest, FileLogBadCrcAtTailIsCutAtLastValidRecord) {
  long size = WriteRecords(6);
  ASSERT_GT(size, 0);
  // Flip the last payload byte: frame length is intact but the CRC fails.
  FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, size - 1, SEEK_SET), 0);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, size - 1, SEEK_SET), 0);
  std::fputc(c ^ 0xff, f);
  std::fclose(f);
  std::unique_ptr<LogManager> log;
  ASSERT_OK(LogManager::Open(path_, /*truncate=*/false, &log));
  EXPECT_EQ(CountRecords(log.get()), 5);
}

TEST_F(TornTailTest, MemoryLogDiscardsUndurableTailOnCrash) {
  LogManager log;
  LogRecord rec;
  rec.type = LogType::kNtaEnd;
  rec.page_id = 1;
  Lsn l1 = log.AppendSystem(&rec);
  ASSERT_OK(log.FlushTo(l1));
  rec.page_id = 2;
  Lsn l2 = log.AppendSystem(&rec);
  log.SimulateCrash();
  EXPECT_EQ(CountRecords(&log), 1);
  LogRecord out;
  EXPECT_FALSE(log.ReadRecord(l2, &out).ok());
  // Appends after the crash extend the durable prefix cleanly.
  rec.page_id = 3;
  Lsn l3 = log.AppendSystem(&rec);
  ASSERT_OK(log.FlushTo(l3));
  EXPECT_EQ(CountRecords(&log), 2);
}

TEST_F(TornTailTest, OpenExistingRecoversPastGarbageTail) {
  std::string base = ::testing::TempDir() + "/oir_torntail_e2e";
  DbOptions opts;
  opts.use_file_disk = true;
  opts.file_path = base + ".db";
  opts.log_path = base + ".log";
  std::remove(opts.file_path.c_str());
  std::remove(opts.log_path.c_str());
  std::remove((opts.log_path + ".master").c_str());

  std::set<uint64_t> ids;
  {
    std::unique_ptr<Db> db;
    ASSERT_OK(Db::Open(opts, &db));
    auto txn = db->BeginTxn();
    for (uint64_t i = 0; i < 200; ++i) {
      ASSERT_OK(db->index()->Insert(txn.get(), NumKey(i), i));
      ids.insert(i);
    }
    ASSERT_OK(db->Commit(txn.get()));
  }
  // A crash mid-append leaves a half-written frame after the committed
  // prefix; recovery must truncate it, not reject the log.
  FILE* f = std::fopen(opts.log_path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::string garbage(100, '\x5a');
  ASSERT_EQ(std::fwrite(garbage.data(), 1, garbage.size(), f),
            garbage.size());
  std::fclose(f);

  std::unique_ptr<Db> db;
  RecoveryStats stats;
  ASSERT_OK(Db::OpenExisting(opts, &db, &stats));
  test::ExpectTreeContains(db.get(), ids);
  EXPECT_OK(fault::CheckInvariants(db->tree(), db->space_manager(),
                                   db->buffer_manager()));

  std::remove(opts.file_path.c_str());
  std::remove(opts.log_path.c_str());
  std::remove((opts.log_path + ".master").c_str());
}

// ------------------------------------------- transient write-back retries

TEST(TransientWriteTest, CheckpointRetriesAfterTransientDiskError) {
  DbOptions opts;
  opts.buffer_pool_pages = 1 << 12;
  FaultInjectingDisk* fdisk = nullptr;
  opts.wrap_disk = [&fdisk](std::unique_ptr<Disk> base) {
    auto wrapped = std::make_unique<FaultInjectingDisk>(std::move(base));
    fdisk = wrapped.get();
    return wrapped;
  };
  std::unique_ptr<Db> db;
  ASSERT_OK(Db::Open(opts, &db));
  ASSERT_NE(fdisk, nullptr);

  std::set<uint64_t> ids;
  auto txn = db->BeginTxn();
  for (uint64_t i = 0; i < 300; ++i) {
    ASSERT_OK(db->index()->Insert(txn.get(), NumKey(i), i));
    ids.insert(i);
  }
  ASSERT_OK(db->Commit(txn.get()));

  // First checkpoint hits a transient device error and fails; the dirty
  // pages must stay dirty, so the retry writes everything out.
  fdisk->FailNextWrites(1);
  EXPECT_FALSE(db->Checkpoint().ok());
  EXPECT_EQ(fdisk->injected_faults(), 1u);
  ASSERT_OK(db->Checkpoint());

  // If the failed flush had clean-marked a page without writing it, redo
  // from the checkpoint would lose its pre-checkpoint updates.
  RecoveryStats stats;
  ASSERT_OK(db->CrashAndRecover(&stats));
  test::ExpectTreeContains(db.get(), ids);
  EXPECT_OK(fault::CheckInvariants(db->tree(), db->space_manager(),
                                   db->buffer_manager()));
}

}  // namespace
}  // namespace oir
