// Concurrency tests: the Section 2 protocols under real threads — mixed
// insert/delete/scan workloads, concurrent structure modifications, and
// OLTP running against a live online rebuild (the paper's headline
// property).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/db.h"
#include "core/index.h"
#include "testing/oracle.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace oir {
namespace {

using test::MakeDb;
using test::NumKey;

// End-state oracle: full structural invariants (tree shape + space map
// agreement + no leftover SMO bits), beyond what Validate() alone checks.
void ExpectInvariants(Db* db) {
  Status s = fault::CheckInvariants(db->tree(), db->space_manager(),
                                    db->buffer_manager());
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(ConcurrencyTest, ParallelInsertsDistinctRanges) {
  auto db = MakeDb();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, t] {
      auto txn = db->BeginTxn();
      for (uint64_t i = 0; i < kPerThread; ++i) {
        uint64_t id = t * 1000000ull + i;
        Status s = db->index()->Insert(txn.get(), NumKey(id), id);
        ASSERT_TRUE(s.ok()) << s.ToString();
      }
      ASSERT_TRUE(db->Commit(txn.get()).ok());
    });
  }
  for (auto& t : threads) t.join();
  TreeStats stats;
  ASSERT_OK(db->tree()->Validate(&stats));
  EXPECT_EQ(stats.num_keys, kThreads * kPerThread);
  ExpectInvariants(db.get());
}

TEST(ConcurrencyTest, ParallelInsertsInterleavedKeys) {
  auto db = MakeDb();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 800;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, t] {
      auto txn = db->BeginTxn();
      for (uint64_t i = 0; i < kPerThread; ++i) {
        uint64_t id = i * kThreads + t;  // adjacent keys from all threads
        Status s = db->index()->Insert(txn.get(), NumKey(id), id);
        ASSERT_TRUE(s.ok()) << s.ToString();
      }
      ASSERT_TRUE(db->Commit(txn.get()).ok());
    });
  }
  for (auto& t : threads) t.join();
  TreeStats stats;
  ASSERT_OK(db->tree()->Validate(&stats));
  EXPECT_EQ(stats.num_keys, kThreads * kPerThread);
  ExpectInvariants(db.get());
}

TEST(ConcurrencyTest, MixedInsertDeleteScan) {
  const uint64_t seed = test::TestSeed(1);
  OIR_SCOPED_SEED_TRACE(seed);
  auto db = MakeDb();
  std::vector<uint64_t> base;
  for (uint64_t i = 0; i < 4000; ++i) base.push_back(i * 4);
  test::InsertMany(db.get(), base);

  std::atomic<bool> stop{false};
  std::atomic<int> scan_errors{0};

  // Writers churn disjoint id spaces (insert then delete their own keys).
  auto writer = [&](int t) {
    Random rnd(seed + t + 1);
    while (!stop.load()) {
      auto txn = db->BeginTxn();
      uint64_t id = 100000ull * (t + 1) + rnd.Uniform(5000);
      Status s = db->index()->Insert(txn.get(), NumKey(id), id);
      if (s.ok()) {
        s = db->index()->Delete(txn.get(), NumKey(id), id);
        EXPECT_TRUE(s.ok()) << s.ToString();
      }
      EXPECT_TRUE(db->Commit(txn.get()).ok());
    }
  };
  // Scanners continuously verify the base keys remain visible in order.
  auto scanner = [&] {
    while (!stop.load()) {
      auto txn = db->BeginTxn();
      auto cur = db->index()->NewCursor(txn.get());
      Status s = cur->SeekToFirst();
      uint64_t prev = 0;
      bool first = true;
      uint64_t base_seen = 0;
      while (s.ok() && cur->Valid()) {
        uint64_t rid = cur->rid();
        if (!first && rid <= prev) {
          ++scan_errors;
          break;
        }
        if (rid < 100000 && rid % 4 == 0) ++base_seen;
        prev = rid;
        first = false;
        s = cur->Next();
      }
      if (!s.ok() || base_seen != 4000) ++scan_errors;
      EXPECT_TRUE(db->Commit(txn.get()).ok());
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(writer, t);
  for (int t = 0; t < 2; ++t) threads.emplace_back(scanner);
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_EQ(scan_errors.load(), 0);
  TreeStats stats;
  ASSERT_OK(db->tree()->Validate(&stats));
  EXPECT_EQ(stats.num_keys, 4000u);
  ExpectInvariants(db.get());
}

// The paper's headline property: OLTP keeps running during the rebuild,
// and the rebuild neither loses keys nor breaks the tree.
TEST(ConcurrencyTest, OltpDuringOnlineRebuild) {
  const uint64_t seed = test::TestSeed(1);
  OIR_SCOPED_SEED_TRACE(seed);
  auto db = MakeDb();
  // Half-full declustered index worth rebuilding.
  std::vector<uint64_t> base;
  for (uint64_t i = 0; i < 8000; ++i) base.push_back(i * 2);
  test::InsertMany(db.get(), base);

  std::atomic<bool> rebuild_done{false};
  std::atomic<uint64_t> ops{0};
  std::set<uint64_t> stable(base.begin(), base.end());

  // Writers insert odd keys (never touched by the checker) and delete them.
  auto writer = [&](int t) {
    Random rnd(seed + 1000 + t);
    while (!rebuild_done.load()) {
      auto txn = db->BeginTxn();
      uint64_t id = 1 + 2 * rnd.Uniform(8000);
      Status s = db->index()->Insert(txn.get(), NumKey(id), id);
      if (s.ok()) {
        ++ops;
        bool found = false;
        EXPECT_TRUE(
            db->index()->Lookup(txn.get(), NumKey(id), id, &found).ok());
        EXPECT_TRUE(found);
        EXPECT_TRUE(db->index()->Delete(txn.get(), NumKey(id), id).ok());
      }
      EXPECT_TRUE(db->Commit(txn.get()).ok());
    }
  };
  auto reader = [&] {
    Random rnd(seed + 7);
    while (!rebuild_done.load()) {
      auto txn = db->BeginTxn();
      uint64_t id = 2 * rnd.Uniform(8000);
      bool found = false;
      Status s = db->index()->Lookup(txn.get(), NumKey(id), id, &found);
      EXPECT_TRUE(s.ok()) << s.ToString();
      EXPECT_TRUE(found) << "stable key " << id << " missing during rebuild";
      ++ops;
      EXPECT_TRUE(db->Commit(txn.get()).ok());
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) threads.emplace_back(writer, t);
  for (int t = 0; t < 3; ++t) threads.emplace_back(reader);

  RebuildOptions opts;
  opts.ntasize = 16;
  opts.xactsize = 128;
  RebuildResult res;
  Status s = db->index()->RebuildOnline(opts, &res);
  rebuild_done.store(true);
  for (auto& t : threads) t.join();
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(ops.load(), 100u);  // OLTP made progress during the rebuild

  TreeStats stats;
  ASSERT_OK(db->tree()->Validate(&stats));
  EXPECT_EQ(stats.num_keys, stable.size());
  test::ExpectTreeContains(db.get(), stable);
  ExpectInvariants(db.get());
}

TEST(ConcurrencyTest, ScansDuringRebuildStayConsistent) {
  auto db = MakeDb();
  std::vector<uint64_t> base;
  for (uint64_t i = 0; i < 6000; ++i) base.push_back(i);
  test::InsertMany(db.get(), base);

  std::atomic<bool> rebuild_done{false};
  std::atomic<int> errors{0};
  auto scanner = [&] {
    while (!rebuild_done.load()) {
      auto txn = db->BeginTxn();
      auto cur = db->index()->NewCursor(txn.get());
      Status s = cur->SeekToFirst();
      uint64_t count = 0;
      uint64_t prev = 0;
      bool first = true;
      while (s.ok() && cur->Valid()) {
        if (!first && cur->rid() <= prev) {
          ++errors;
          break;
        }
        prev = cur->rid();
        first = false;
        ++count;
        s = cur->Next();
      }
      if (!s.ok() || count != base.size()) ++errors;
      EXPECT_TRUE(db->Commit(txn.get()).ok());
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(scanner);

  RebuildResult res;
  Status s = db->index()->RebuildOnline(RebuildOptions(), &res);
  rebuild_done.store(true);
  for (auto& t : threads) t.join();
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(errors.load(), 0);
  ExpectInvariants(db.get());
}

TEST(ConcurrencyTest, OfflineRebuildBlocksWriters) {
  auto db = MakeDb();
  std::vector<uint64_t> base;
  for (uint64_t i = 0; i < 2000; ++i) base.push_back(i * 2);
  test::InsertMany(db.get(), base);

  // A writer that records when it managed to run.
  std::atomic<bool> start_writer{false};
  std::atomic<bool> writer_finished{false};
  std::thread writer([&] {
    while (!start_writer.load()) std::this_thread::yield();
    auto txn = db->BeginTxn();
    EXPECT_TRUE(db->index()->Insert(txn.get(), NumKey(999999), 999999).ok());
    EXPECT_TRUE(db->Commit(txn.get()).ok());
    writer_finished.store(true);
  });

  RebuildResult res;
  start_writer.store(true);
  ASSERT_OK(db->index()->RebuildOffline(&res));
  writer.join();
  EXPECT_TRUE(writer_finished.load());
  TreeStats stats;
  ASSERT_OK(db->tree()->Validate(&stats));
  EXPECT_EQ(stats.num_keys, base.size() + 1);
  ExpectInvariants(db.get());
}

TEST(ConcurrencyTest, ConcurrentRebuildAndHeavyInsertLoadIntoSameRange) {
  // Inserts target the same key space the rebuild is walking through —
  // maximal interaction between the copy phase locks and writer traversals.
  const uint64_t seed = test::TestSeed(1);
  OIR_SCOPED_SEED_TRACE(seed);
  auto db = MakeDb();
  std::vector<uint64_t> base;
  for (uint64_t i = 0; i < 4000; ++i) base.push_back(i * 10);
  test::InsertMany(db.get(), base);

  std::atomic<bool> rebuild_done{false};
  std::atomic<uint64_t> inserted{0};
  std::vector<std::vector<uint64_t>> added(4);
  auto writer = [&](int t) {
    Random rnd(seed + t * 31 + 5);
    while (!rebuild_done.load()) {
      auto txn = db->BeginTxn();
      uint64_t id = rnd.Uniform(40000);
      if (id % 10 == 0) id += 1;  // avoid colliding with base ids
      Status s = db->index()->Insert(txn.get(), NumKey(id), id);
      if (s.ok()) {
        added[t].push_back(id);
        ++inserted;
      } else {
        EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();  // duplicate
      }
      EXPECT_TRUE(db->Commit(txn.get()).ok());
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(writer, t);

  RebuildOptions opts;
  opts.ntasize = 8;
  opts.xactsize = 64;
  RebuildResult res;
  Status s = db->index()->RebuildOnline(opts, &res);
  rebuild_done.store(true);
  for (auto& t : threads) t.join();
  ASSERT_TRUE(s.ok()) << s.ToString();

  std::set<uint64_t> expect(base.begin(), base.end());
  for (auto& v : added) expect.insert(v.begin(), v.end());
  TreeStats stats;
  ASSERT_OK(db->tree()->Validate(&stats));
  EXPECT_EQ(stats.num_keys, expect.size());
  test::ExpectTreeContains(db.get(), expect);
  ExpectInvariants(db.get());
}

TEST(ConcurrencyTest, BackToBackRebuildsUnderLoad) {
  const uint64_t seed = test::TestSeed(1);
  OIR_SCOPED_SEED_TRACE(seed);
  auto db = MakeDb();
  std::vector<uint64_t> base;
  for (uint64_t i = 0; i < 3000; ++i) base.push_back(i * 4);
  test::InsertMany(db.get(), base);

  std::atomic<bool> stop{false};
  auto writer = [&](int t) {
    Random rnd(seed + t);
    while (!stop.load()) {
      auto txn = db->BeginTxn();
      uint64_t id = 2 + 4 * rnd.Uniform(3000);  // ids ≡ 2 mod 4
      Status s = db->index()->Insert(txn.get(), NumKey(id), id);
      if (s.ok()) {
        EXPECT_TRUE(db->index()->Delete(txn.get(), NumKey(id), id).ok());
      }
      EXPECT_TRUE(db->Commit(txn.get()).ok());
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) threads.emplace_back(writer, t);
  for (int round = 0; round < 3; ++round) {
    RebuildOptions opts;
    opts.ntasize = 4 << round;
    RebuildResult res;
    Status s = db->index()->RebuildOnline(opts, &res);
    ASSERT_TRUE(s.ok()) << "round " << round << ": " << s.ToString();
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  test::ExpectTreeContains(db.get(),
                           std::set<uint64_t>(base.begin(), base.end()));
  ExpectInvariants(db.get());
}

}  // namespace
}  // namespace oir
