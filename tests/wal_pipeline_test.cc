// Tests for the pipelined durable WAL: FlushTo waiter correctness with
// many threads waiting on interleaved LSNs across segment boundaries,
// error-epoch propagation (and healing) when the durable path hits a
// transient disk error, torn-segment-tail recovery on reopen, backend
// selection via environment overrides, and the exact group-commit
// accounting (commits acked / groups acked).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fcntl.h>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "tests/test_util.h"
#include "util/counters.h"
#include "wal/log_manager.h"

namespace oir {
namespace {

std::string TestWalPath(const char* tag) {
  return ::testing::TempDir() + "/oir_wal_pipeline_" + tag + "_" +
         std::to_string(::getpid()) + ".log";
}

void RemoveWalFiles(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".master").c_str());
  std::remove((path + ".master.tmp").c_str());
}

// Saves/restores one environment variable around a test body.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

// Many committers on a file-backed log with segments small enough that
// every thread's waits straddle segment boundaries: every acknowledged
// LSN must be durable at ack time, and every record must survive a
// process "restart" (close + reopen).
TEST(WalPipelineTest, InterleavedWaitersAcrossSegments) {
  const std::string path = TestWalPath("interleaved");
  RemoveWalFiles(path);
  ScopedEnv backend("OIR_WAL_BACKEND", "portable");

  WalOptions wal;
  wal.segment_bytes = 4096;  // force many seals
  wal.inflight_segments = 4;
  std::unique_ptr<LogManager> log;
  ASSERT_OK(LogManager::Open(path, /*truncate=*/true, &log, wal));
  ASSERT_TRUE(log->group_commit());
  ASSERT_TRUE(log->pipeline_enabled());

  constexpr int kThreads = 8;
  constexpr int kPer = 150;
  auto before = GlobalCounters::Get().Snapshot();
  std::mutex mu;
  std::vector<Lsn> acked;
  std::atomic<int> not_durable_at_ack{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TxnContext ctx{static_cast<TxnId>(t + 1), kInvalidLsn};
      for (int i = 0; i < kPer; ++i) {
        LogRecord rec;
        rec.type = LogType::kCommitTxn;
        Lsn lsn = log->Append(&rec, &ctx);
        ASSERT_OK(log->FlushTo(lsn));
        if (log->durable_lsn() <= lsn) not_durable_at_ack.fetch_add(1);
        std::lock_guard<std::mutex> l(mu);
        acked.push_back(lsn);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(not_durable_at_ack.load(), 0);

  auto delta = GlobalCounters::Get().Snapshot() - before;
  // 8 * 150 records over 4K segments: the workload must actually have
  // exercised the pipeline, not one giant flush.
  EXPECT_GT(delta.wal_segments_sealed, 4u);
  EXPECT_EQ(delta.wal_segments_sealed, delta.wal_segments_completed);
  EXPECT_EQ(delta.log_commits_acked, uint64_t{kThreads} * kPer);

  // Restart: every acknowledged record must still parse from the file.
  log.reset();
  std::unique_ptr<LogManager> reopened;
  ASSERT_OK(LogManager::Open(path, /*truncate=*/false, &reopened, wal));
  for (Lsn lsn : acked) {
    LogRecord rec;
    ASSERT_OK(reopened->ReadRecord(lsn, &rec));
    EXPECT_EQ(rec.type, LogType::kCommitTxn);
  }
  reopened.reset();
  RemoveWalFiles(path);
}

// A transient durable-path failure must reach exactly the waiters whose
// records were not yet durable (error epoch), leave the boundary frozen,
// and heal completely once the fault clears: later FlushTo calls — for
// the same LSNs — succeed and the records are durable.
TEST(WalPipelineTest, TransientErrorPropagatesAndHeals) {
  LogManager log;  // in-memory: pipeline runs without physical I/O
  log.SetGroupCommit(true);

  TxnContext ctx{1, kInvalidLsn};
  LogRecord rec;
  rec.type = LogType::kCommitTxn;
  Lsn ok_lsn = log.Append(&rec, &ctx);
  ASSERT_OK(log.FlushTo(ok_lsn));
  const Lsn durable_before = log.durable_lsn();

  log.SetFailFlushes(true);
  constexpr int kWaiters = 6;
  std::vector<Lsn> pending;
  for (int i = 0; i < kWaiters; ++i) {
    LogRecord r;
    r.type = LogType::kCommitTxn;
    pending.push_back(log.Append(&r, &ctx));
  }
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (Lsn lsn : pending) {
    threads.emplace_back([&, lsn] {
      Status s = log.FlushTo(lsn);
      if (s.IsIOError()) errors.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  // Every waiter beyond the frozen boundary saw the error; the boundary
  // itself did not move.
  EXPECT_EQ(errors.load(), kWaiters);
  EXPECT_EQ(log.durable_lsn(), durable_before);
  // An already-durable record still acks OK while the device is "dead".
  EXPECT_OK(log.FlushTo(ok_lsn));

  // Heal: the same LSNs now flush fine and the boundary catches up.
  log.SetFailFlushes(false);
  for (Lsn lsn : pending) {
    EXPECT_OK(log.FlushTo(lsn));
    EXPECT_GT(log.durable_lsn(), lsn);
  }
  // And the records beyond the old boundary are all readable.
  for (Lsn lsn : pending) {
    LogRecord r;
    EXPECT_OK(log.ReadRecord(lsn, &r));
  }
}

// Garbage appended past the durable prefix (a torn final segment) must
// not poison reopen: recovery keeps exactly the valid prefix, truncates
// the torn bytes, and the log accepts new appends afterwards.
TEST(WalPipelineTest, TornSegmentTailRecoversValidPrefix) {
  const std::string path = TestWalPath("torn");
  RemoveWalFiles(path);
  ScopedEnv backend("OIR_WAL_BACKEND", "portable");

  WalOptions wal;
  wal.segment_bytes = 4096;
  std::vector<Lsn> flushed;
  Lsn tail_before = 0;
  {
    std::unique_ptr<LogManager> log;
    ASSERT_OK(LogManager::Open(path, /*truncate=*/true, &log, wal));
    TxnContext ctx{1, kInvalidLsn};
    for (int i = 0; i < 64; ++i) {
      LogRecord rec;
      rec.type = LogType::kCommitTxn;
      flushed.push_back(log->Append(&rec, &ctx));
    }
    ASSERT_OK(log->FlushAll());
    tail_before = log->tail_lsn();
  }

  // Simulate a torn segment: bytes that hit the platter without their
  // frame ever becoming valid.
  {
    int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
    ASSERT_GE(fd, 0);
    std::string garbage(300, '\x7f');
    ASSERT_EQ(::write(fd, garbage.data(), garbage.size()),
              static_cast<ssize_t>(garbage.size()));
    ::close(fd);
  }

  std::unique_ptr<LogManager> log;
  ASSERT_OK(LogManager::Open(path, /*truncate=*/false, &log, wal));
  for (Lsn lsn : flushed) {
    LogRecord rec;
    ASSERT_OK(log->ReadRecord(lsn, &rec));
  }
  // The torn bytes are gone: the tail is the end of the valid prefix,
  // and appending + flushing from there works.
  EXPECT_EQ(log->tail_lsn(), tail_before);
  TxnContext ctx{2, kInvalidLsn};
  LogRecord rec;
  rec.type = LogType::kCommitTxn;
  Lsn lsn = log->Append(&rec, &ctx);
  ASSERT_OK(log->FlushTo(lsn));
  EXPECT_GT(log->durable_lsn(), lsn);
  log.reset();
  RemoveWalFiles(path);
}

// OIR_WAL_BACKEND / OIR_WAL_SYNC force the effective configuration; the
// portable backend must always be available.
TEST(WalPipelineTest, EnvironmentForcesPortableBackend) {
  const std::string path = TestWalPath("backend");
  RemoveWalFiles(path);
  ScopedEnv backend("OIR_WAL_BACKEND", "portable");
  ScopedEnv sync("OIR_WAL_SYNC", "fsync");

  std::unique_ptr<LogManager> log;
  ASSERT_OK(LogManager::Open(path, /*truncate=*/true, &log));
  EXPECT_STREQ(log->backend_name(), "portable");
  EXPECT_STREQ(log->sync_mode_name(), "fsync");
  EXPECT_TRUE(log->pipeline_enabled());

  TxnContext ctx{1, kInvalidLsn};
  LogRecord rec;
  rec.type = LogType::kCommitTxn;
  Lsn lsn = log->Append(&rec, &ctx);
  ASSERT_OK(log->FlushTo(lsn));
  log.reset();
  RemoveWalFiles(path);
}

// The in-memory pipeline (group commit forced on, no physical I/O)
// still runs the full seal/submit/complete protocol — the counters the
// crash sweep relies on must move.
TEST(WalPipelineTest, MemPipelineSealsAndCompletes) {
  LogManager log;
  log.SetGroupCommit(true);
  auto before = GlobalCounters::Get().Snapshot();

  TxnContext ctx{1, kInvalidLsn};
  for (int i = 0; i < 32; ++i) {
    LogRecord rec;
    rec.type = LogType::kCommitTxn;
    Lsn lsn = log.Append(&rec, &ctx);
    ASSERT_OK(log.FlushTo(lsn));
  }
  auto delta = GlobalCounters::Get().Snapshot() - before;
  EXPECT_GT(delta.wal_segments_sealed, 0u);
  EXPECT_EQ(delta.wal_segments_sealed, delta.wal_segments_completed);
  EXPECT_EQ(log.durable_lsn(), log.tail_lsn());
}

// Exact group accounting: commits acked is exactly the number of
// group-path FlushTo calls, single- and multi-threaded; a group is one
// durable advance, so single-threaded back-to-back commits form one
// group each and mean group size is exactly 1.
TEST(WalPipelineTest, GroupSizeAccountingIsExact) {
  {
    LogManager log;
    log.SetGroupCommit(true);
    auto before = GlobalCounters::Get().Snapshot();
    TxnContext ctx{1, kInvalidLsn};
    constexpr int kN = 40;
    for (int i = 0; i < kN; ++i) {
      LogRecord rec;
      rec.type = LogType::kCommitTxn;
      Lsn lsn = log.Append(&rec, &ctx);
      ASSERT_OK(log.FlushTo(lsn));
    }
    auto delta = GlobalCounters::Get().Snapshot() - before;
    EXPECT_EQ(delta.log_commits_acked, uint64_t{kN});
    EXPECT_EQ(delta.log_groups_acked, uint64_t{kN});  // no overlap → size 1
  }
  {
    LogManager log;
    log.SetGroupCommit(true);
    auto before = GlobalCounters::Get().Snapshot();
    constexpr int kThreads = 8;
    constexpr int kPer = 100;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        TxnContext ctx{static_cast<TxnId>(t + 1), kInvalidLsn};
        for (int i = 0; i < kPer; ++i) {
          LogRecord rec;
          rec.type = LogType::kCommitTxn;
          Lsn lsn = log.Append(&rec, &ctx);
          ASSERT_OK(log.FlushTo(lsn));
        }
      });
    }
    for (auto& th : threads) th.join();
    auto delta = GlobalCounters::Get().Snapshot() - before;
    // Every call acked exactly once; grouping can only merge them.
    EXPECT_EQ(delta.log_commits_acked, uint64_t{kThreads} * kPer);
    EXPECT_GE(delta.log_groups_acked, 1u);
    EXPECT_LE(delta.log_groups_acked, delta.log_commits_acked);
  }
}

// Synchronous (group-commit-off) flushes do not touch the group
// accounting — the bench reports mean_group_size only when grouping is
// actually on, so the counters must stay clean otherwise.
TEST(WalPipelineTest, SynchronousFlushLeavesGroupCountersAlone) {
  LogManager log;
  ASSERT_FALSE(log.group_commit());
  auto before = GlobalCounters::Get().Snapshot();
  TxnContext ctx{1, kInvalidLsn};
  for (int i = 0; i < 8; ++i) {
    LogRecord rec;
    rec.type = LogType::kCommitTxn;
    Lsn lsn = log.Append(&rec, &ctx);
    ASSERT_OK(log.FlushTo(lsn));
  }
  auto delta = GlobalCounters::Get().Snapshot() - before;
  EXPECT_EQ(delta.log_commits_acked, 0u);
  EXPECT_EQ(delta.log_groups_acked, 0u);
}

}  // namespace
}  // namespace oir
