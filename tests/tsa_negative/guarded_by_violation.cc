// Negative-compile probe for the thread-safety analysis: reads a
// OIR_GUARDED_BY member without holding its mutex. Under clang with
// -Werror=thread-safety-analysis this file MUST fail to compile — the
// tsa_negative ctest entry builds it and expects the failure, proving the
// annotations are actually load-bearing (a silent no-op expansion of the
// macros would let this compile and fail the test).

#include "sync/mutex.h"

namespace oir {

class Counter {
 public:
  void Increment() {
    MutexLock l(mu_);
    ++value_;
  }

  // BUG (deliberate): reads value_ without mu_.
  int UnguardedRead() const { return value_; }

 private:
  mutable Mutex mu_;
  int value_ OIR_GUARDED_BY(mu_) = 0;
};

}  // namespace oir

int main() {
  oir::Counter c;
  c.Increment();
  return c.UnguardedRead();
}
