#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "obs/json.h"
#include "util/clock.h"

namespace oir::obs {

std::atomic<bool> TraceBuffer::enabled_{false};

namespace {

// Small dense thread id, assigned on first trace from each thread.
uint32_t TraceTid() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

const char* TraceEventName(TraceEventType t) {
  switch (t) {
    case TraceEventType::kNone: return "none";
    case TraceEventType::kTopActionBegin: return "top_action_begin";
    case TraceEventType::kTopActionEnd: return "top_action_end";
    case TraceEventType::kTopActionTruncate: return "top_action_truncate";
    case TraceEventType::kSmoSplit: return "smo_split";
    case TraceEventType::kSmoShrink: return "smo_shrink";
    case TraceEventType::kCondLockFail: return "cond_lock_fail";
    case TraceEventType::kLockWaitBegin: return "lock_wait_begin";
    case TraceEventType::kLockWaitEnd: return "lock_wait_end";
    case TraceEventType::kLockWatchdog: return "lock_watchdog";
    case TraceEventType::kGroupCommitFlush: return "group_commit_flush";
    case TraceEventType::kCheckpoint: return "checkpoint";
    case TraceEventType::kCopyPhaseBegin: return "copy_phase_begin";
    case TraceEventType::kCopyPhaseEnd: return "copy_phase_end";
    case TraceEventType::kPropagatePhaseBegin: return "propagate_phase_begin";
    case TraceEventType::kPropagatePhaseEnd: return "propagate_phase_end";
    case TraceEventType::kFaultInjected: return "fault_injected";
    case TraceEventType::kWalSegSeal: return "wal_seg_seal";
    case TraceEventType::kWalSegSubmit: return "wal_seg_submit";
    case TraceEventType::kWalSegComplete: return "wal_seg_complete";
  }
  return "unknown";
}

TraceBuffer& TraceBuffer::Get() {
  static TraceBuffer* instance = new TraceBuffer();
  return *instance;
}

void TraceBuffer::SetEnabled(bool on) {
  if (on && !allocated_.load(std::memory_order_acquire)) {
    MutexLock l(init_mu_);
    if (!allocated_.load(std::memory_order_relaxed)) {
      auto rings = std::make_unique<Ring[]>(kNumRings);
      for (size_t i = 0; i < kNumRings; ++i) {
        rings[i].slots = std::make_unique<Slot[]>(kRingCapacity);
      }
      rings_ = std::move(rings);
      allocated_.store(true, std::memory_order_release);
    }
  }
  enabled_.store(on, std::memory_order_relaxed);
}

void TraceBuffer::Clear() {
  if (!allocated_.load(std::memory_order_acquire)) return;
  for (size_t r = 0; r < kNumRings; ++r) {
    Ring& ring = rings_[r];
    ring.cursor.store(0, std::memory_order_relaxed);
    for (size_t i = 0; i < kRingCapacity; ++i) {
      ring.slots[i].type.store(0, std::memory_order_relaxed);
    }
  }
}

void TraceBuffer::Record(TraceEventType type, uint64_t arg0, uint64_t arg1) {
  if (!allocated_.load(std::memory_order_acquire)) return;
  const uint32_t tid = TraceTid();
  Ring& ring = rings_[tid % kNumRings];
  const uint64_t seq = ring.cursor.fetch_add(1, std::memory_order_relaxed);
  Slot& s = ring.slots[seq % kRingCapacity];
  s.ts_ns.store(NowNanos(), std::memory_order_relaxed);
  s.arg0.store(arg0, std::memory_order_relaxed);
  s.arg1.store(arg1, std::memory_order_relaxed);
  s.tid.store(tid, std::memory_order_relaxed);
  s.type.store(static_cast<uint8_t>(type), std::memory_order_release);
}

std::vector<TraceRecord> TraceBuffer::Snapshot() const {
  std::vector<TraceRecord> out;
  if (!allocated_.load(std::memory_order_acquire)) return out;
  for (size_t r = 0; r < kNumRings; ++r) {
    const Ring& ring = rings_[r];
    const uint64_t cursor = ring.cursor.load(std::memory_order_acquire);
    const uint64_t n = std::min<uint64_t>(cursor, kRingCapacity);
    const uint64_t start = cursor - n;
    for (uint64_t i = start; i < cursor; ++i) {
      const Slot& s = ring.slots[i % kRingCapacity];
      TraceRecord rec;
      rec.type = static_cast<TraceEventType>(
          s.type.load(std::memory_order_acquire));
      if (rec.type == TraceEventType::kNone) continue;
      rec.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
      rec.arg0 = s.arg0.load(std::memory_order_relaxed);
      rec.arg1 = s.arg1.load(std::memory_order_relaxed);
      rec.tid = s.tid.load(std::memory_order_relaxed);
      out.push_back(rec);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.ts_ns < b.ts_ns;
            });
  return out;
}

std::string TraceBuffer::DumpJson() const {
  std::vector<TraceRecord> recs = Snapshot();
  JsonWriter w;
  w.BeginObject().Key("events").BeginArray();
  for (const TraceRecord& r : recs) {
    w.BeginObject();
    w.Key("ts_ns").Value(r.ts_ns);
    w.Key("type").Value(TraceEventName(r.type));
    w.Key("tid").Value(static_cast<uint64_t>(r.tid));
    w.Key("arg0").Value(r.arg0);
    w.Key("arg1").Value(r.arg1);
    w.EndObject();
  }
  w.EndArray().EndObject();
  return w.str();
}

namespace {

// Duration-slice name for begin/end pairs; nullptr for instant events.
const char* SliceName(TraceEventType t, bool* is_begin) {
  switch (t) {
    case TraceEventType::kTopActionBegin:
      *is_begin = true;
      return "top_action";
    case TraceEventType::kTopActionEnd:
      *is_begin = false;
      return "top_action";
    case TraceEventType::kCopyPhaseBegin:
      *is_begin = true;
      return "copy_phase";
    case TraceEventType::kCopyPhaseEnd:
      *is_begin = false;
      return "copy_phase";
    case TraceEventType::kPropagatePhaseBegin:
      *is_begin = true;
      return "propagate_phase";
    case TraceEventType::kPropagatePhaseEnd:
      *is_begin = false;
      return "propagate_phase";
    case TraceEventType::kLockWaitBegin:
      *is_begin = true;
      return "lock_wait";
    case TraceEventType::kLockWaitEnd:
      *is_begin = false;
      return "lock_wait";
    default:
      return nullptr;
  }
}

}  // namespace

std::string TraceBuffer::DumpChromeTracing() const {
  std::vector<TraceRecord> recs = Snapshot();
  JsonWriter w;
  w.BeginObject().Key("traceEvents").BeginArray();
  for (const TraceRecord& r : recs) {
    bool is_begin = false;
    const char* slice = SliceName(r.type, &is_begin);
    w.BeginObject();
    w.Key("name").Value(slice != nullptr ? slice : TraceEventName(r.type));
    w.Key("cat").Value("oir");
    if (slice != nullptr) {
      w.Key("ph").Value(is_begin ? "B" : "E");
    } else {
      w.Key("ph").Value("i");
      w.Key("s").Value("t");
    }
    w.Key("ts").Value(static_cast<double>(r.ts_ns) / 1000.0);
    w.Key("pid").Value(static_cast<uint64_t>(1));
    w.Key("tid").Value(static_cast<uint64_t>(r.tid));
    w.Key("args").BeginObject();
    w.Key("arg0").Value(r.arg0);
    w.Key("arg1").Value(r.arg1);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray().EndObject();
  return w.str();
}

}  // namespace oir::obs
