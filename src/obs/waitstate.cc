#include "obs/waitstate.h"

#include "obs/json.h"
#include "util/clock.h"
#include "util/histogram.h"

namespace oir::obs {

std::atomic<bool> WaitProfiler::enabled_{false};

namespace {

constexpr size_t kShards = 16;

// Per-thread shard index, same striping as TimerStat.
size_t ThreadShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t idx = next.fetch_add(1, std::memory_order_relaxed);
  return idx % kShards;
}

// Everything a thread needs to classify its own time. Touched only by the
// owning thread, so plain (non-atomic) fields are fine.
struct ThreadClock {
  uint64_t acc[kNumWaitStates] = {};  // monotone per-state nanoseconds
  uint64_t mark = 0;                  // start of the current segment
  WaitState state = WaitState::kRunning;
  uint32_t wait_depth = 0;
  uint32_t op_depth = 0;
  uint64_t op_start = 0;
  uint64_t op_snap[kNumWaitStates] = {};

  // Closes the current segment into acc[state] and restarts it at `now`.
  void Roll(uint64_t now) {
    acc[static_cast<size_t>(state)] += now - mark;
    mark = now;
  }
};

ThreadClock& Tls() {
  thread_local ThreadClock tc;
  return tc;
}

// Global per-op-type aggregates, thread-striped. Scalar fields are relaxed
// atomics; the wall-clock Histogram has its own internal mutex (uncontended
// within a shard).
struct alignas(64) AggShard {
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> wall_ns{0};
  std::atomic<uint64_t> state_ns[kNumWaitStates] = {};
  Histogram wall_hist;
};

struct OpAgg {
  AggShard shards[kShards];
};

OpAgg* Aggs() {
  static OpAgg* aggs = new OpAgg[kNumOpTypes];
  return aggs;
}

}  // namespace

const char* WaitStateName(WaitState s) {
  switch (s) {
    case WaitState::kRunning:
      return "running";
    case WaitState::kLatchWait:
      return "latch_wait";
    case WaitState::kLockWait:
      return "lock_wait";
    case WaitState::kWalCommitWait:
      return "wal_commit_wait";
    case WaitState::kIoWait:
      return "io_wait";
    case WaitState::kThrottled:
      return "throttled";
    case WaitState::kNumStates:
      break;
  }
  return "unknown";
}

const char* OpTypeName(OpType t) {
  switch (t) {
    case OpType::kRead:
      return "read";
    case OpType::kWrite:
      return "write";
    case OpType::kCommit:
      return "commit";
    case OpType::kRebuild:
      return "rebuild";
    case OpType::kOther:
      return "other";
    case OpType::kNumTypes:
      break;
  }
  return "unknown";
}

WaitState WaitProfiler::EnterWait(WaitState s) {
  ThreadClock& tc = Tls();
  if (tc.wait_depth++ != 0) return tc.state;  // nested: outermost wins
  WaitState prev = tc.state;
  uint64_t now = NowNanos();
  if (tc.mark == 0) tc.mark = now;
  tc.Roll(now);
  tc.state = s;
  return prev;
}

void WaitProfiler::ExitWait(WaitState prev) {
  ThreadClock& tc = Tls();
  if (--tc.wait_depth != 0) return;
  tc.Roll(NowNanos());
  tc.state = prev;
}

void WaitProfiler::BeginOp() {
  ThreadClock& tc = Tls();
  if (tc.op_depth++ != 0) return;
  uint64_t now = NowNanos();
  // A fresh thread has mark == 0; start its clock here rather than
  // attributing process-uptime to the first segment.
  if (tc.mark == 0) tc.mark = now;
  tc.Roll(now);
  tc.op_start = now;
  for (size_t i = 0; i < kNumWaitStates; ++i) tc.op_snap[i] = tc.acc[i];
}

void WaitProfiler::EndOp(OpType t) {
  ThreadClock& tc = Tls();
  if (--tc.op_depth != 0) return;
  uint64_t now = NowNanos();
  tc.Roll(now);
  uint64_t wall = now - tc.op_start;
  AggShard& sh = Aggs()[static_cast<size_t>(t)].shards[ThreadShardIndex()];
  sh.count.fetch_add(1, std::memory_order_relaxed);
  sh.wall_ns.fetch_add(wall, std::memory_order_relaxed);
  for (size_t i = 0; i < kNumWaitStates; ++i) {
    sh.state_ns[i].fetch_add(tc.acc[i] - tc.op_snap[i],
                             std::memory_order_relaxed);
  }
  sh.wall_hist.Add(wall);
}

std::vector<WaitProfiler::OpBreakdown> WaitProfiler::TakeSnapshot() {
  std::vector<OpBreakdown> out;
  for (size_t t = 0; t < kNumOpTypes; ++t) {
    OpBreakdown b;
    b.type = static_cast<OpType>(t);
    Histogram merged;
    for (AggShard& sh : Aggs()[t].shards) {
      b.count += sh.count.load(std::memory_order_relaxed);
      b.wall_ns += sh.wall_ns.load(std::memory_order_relaxed);
      for (size_t i = 0; i < kNumWaitStates; ++i) {
        b.state_ns[i] += sh.state_ns[i].load(std::memory_order_relaxed);
      }
      merged.Merge(sh.wall_hist);
    }
    if (b.count == 0) continue;
    b.hist_count = merged.Count();
    b.p50 = merged.Percentile(50);
    b.p95 = merged.Percentile(95);
    b.p99 = merged.Percentile(99);
    b.max = static_cast<double>(merged.Max());
    out.push_back(b);
  }
  return out;
}

std::string WaitProfiler::ToJson() {
  std::vector<OpBreakdown> snap = TakeSnapshot();
  JsonWriter w;
  w.BeginObject();
  for (const OpBreakdown& b : snap) {
    w.Key(OpTypeName(b.type)).BeginObject();
    w.Key("count").Value(b.count);
    w.Key("wall_ns").Value(b.wall_ns);
    w.Key("states").BeginObject();
    for (size_t i = 0; i < kNumWaitStates; ++i) {
      w.Key(WaitStateName(static_cast<WaitState>(i))).Value(b.state_ns[i]);
    }
    w.EndObject();
    w.Key("wall_hist").BeginObject();
    w.Key("count").Value(b.hist_count);
    w.Key("p50").Value(b.p50);
    w.Key("p95").Value(b.p95);
    w.Key("p99").Value(b.p99);
    w.Key("max").Value(b.max);
    w.EndObject();
    w.EndObject();
  }
  w.EndObject();
  return w.str();
}

void WaitProfiler::Reset() {
  for (size_t t = 0; t < kNumOpTypes; ++t) {
    for (AggShard& sh : Aggs()[t].shards) {
      sh.count.store(0, std::memory_order_relaxed);
      sh.wall_ns.store(0, std::memory_order_relaxed);
      for (size_t i = 0; i < kNumWaitStates; ++i) {
        sh.state_ns[i].store(0, std::memory_order_relaxed);
      }
      sh.wall_hist.Clear();
    }
  }
}

}  // namespace oir::obs
