#include "obs/flight_recorder.h"

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/waitstate.h"
#include "util/clock.h"
#include "util/counters.h"

namespace oir::obs {

namespace {

std::string BundleDir() {
  const char* dir = std::getenv("OIR_FLIGHT_DIR");
  if (dir != nullptr && dir[0] != '\0') return dir;
  dir = std::getenv("TMPDIR");
  if (dir != nullptr && dir[0] != '\0') return dir;
  return "/tmp";
}

// Write-then-rename so a concurrent reader never sees a torn bundle.
bool WriteFileAtomic(const std::string& path, const std::string& body) {
  std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  size_t n = std::fwrite(body.data(), 1, body.size(), f);
  bool ok = (n == body.size()) && (std::fclose(f) == 0);
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

// Guards against a crash inside the signal handler re-entering it.
std::atomic<bool> g_in_fatal_handler{false};
std::atomic<bool> g_crash_handler_installed{false};

void FatalSignalHandler(int signo) {
  if (!g_in_fatal_handler.exchange(true)) {
    // Deliberately not async-signal-safe: this is a diagnostic of last
    // resort and the process is dying anyway.
    std::string reason = std::string("fatal_signal:") + strsignal(signo);
    std::string path;
    if (FlightRecorder::Get().DumpNow(reason, &path)) {
      std::fprintf(stderr, "[oir] fatal signal %d; flight record: %s\n",
                   signo, path.c_str());
    }
  }
  std::signal(signo, SIG_DFL);
  std::raise(signo);
}

}  // namespace

FlightRecorder& FlightRecorder::Get() {
  static FlightRecorder* instance = new FlightRecorder();
  return *instance;
}

uint64_t FlightRecorder::RegisterProvider(const std::string& name,
                                          std::function<std::string()> fn) {
  MutexLock l(providers_mu_);
  uint64_t token = next_token_++;
  providers_[name] = Provider{token, std::move(fn)};
  return token;
}

void FlightRecorder::UnregisterProvider(const std::string& name,
                                        uint64_t token) {
  MutexLock l(providers_mu_);
  auto it = providers_.find(name);
  if (it != providers_.end() && it->second.token == token) {
    providers_.erase(it);
  }
}

void FlightRecorder::NoteSnapshot(std::string stats_json) {
  MutexLock l(ring_mu_);
  recent_stats_.push_back(std::move(stats_json));
  while (recent_stats_.size() > kMaxRecentStats) recent_stats_.pop_front();
}

void FlightRecorder::Trigger(const std::string& reason) {
  MutexLock l(trigger_mu_);
  for (const std::string& p : pending_) {
    if (p == reason) return;  // coalesce
  }
  pending_.push_back(reason);
  EnsureWorkerLocked();
  trigger_cv_.NotifyOne();
}

void FlightRecorder::EnsureWorkerLocked() {
  if (worker_started_) return;
  worker_started_ = true;
  worker_ = std::thread([this] { WorkerLoop(); });
  // The singleton is leaked; the worker runs for the process lifetime.
  worker_.detach();
}

void FlightRecorder::WorkerLoop() {
  for (;;) {
    std::string reason;
    {
      MutexLock l(trigger_mu_);
      while (pending_.empty()) {
        trigger_cv_.Wait(trigger_mu_);  // wait-state: recorder idle
      }
      reason = pending_.front();
      pending_.pop_front();
    }
    DumpNow(reason, nullptr);
  }
}

std::string FlightRecorder::BuildBundleJson(const std::string& reason) {
  JsonWriter w;
  w.BeginObject();
  w.Key("reason").Value(reason);
  w.Key("seq").Value(seq_.load(std::memory_order_relaxed));
  w.Key("ts_ns").Value(NowNanos());
  w.Key("pid").Value(static_cast<uint64_t>(::getpid()));
  w.Key("wait_profile").RawValue(WaitProfiler::ToJson());
  w.Key("metrics").RawValue(MetricRegistry::Get().ToJson());
  w.Key("trace").RawValue(TraceBuffer::Get().DumpJson());
  {
    MutexLock l(ring_mu_);
    w.Key("recent_stats").BeginArray();
    for (const std::string& s : recent_stats_) w.RawValue(s);
    w.EndArray();
  }
  {
    // Providers run under providers_mu_ so unregistration (Db teardown)
    // cannot race a dump that is about to call into Db state.
    MutexLock l(providers_mu_);
    for (const auto& [name, p] : providers_) {
      std::string doc = p.fn();
      w.Key(name).RawValue(JsonIsValid(doc) ? doc : std::string("null"));
    }
  }
  w.EndObject();
  return w.str();
}

bool FlightRecorder::DumpNow(const std::string& reason, std::string* path) {
  uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  std::string body = BuildBundleJson(reason);
  char name[64];
  std::snprintf(name, sizeof(name), "/oir_flight_%d_%llu.json",
                static_cast<int>(::getpid()),
                static_cast<unsigned long long>(seq));
  std::string file = BundleDir() + name;
  if (!WriteFileAtomic(file, body)) return false;
  GlobalCounters::Get().flight_records_dumped.fetch_add(
      1, std::memory_order_relaxed);
  {
    MutexLock l(path_mu_);
    last_dump_path_ = file;
    dumps_completed_.fetch_add(1, std::memory_order_release);
    dumped_cv_.NotifyAll();
  }
  if (path != nullptr) *path = file;
  return true;
}

std::string FlightRecorder::last_dump_path() const {
  MutexLock l(path_mu_);
  return last_dump_path_;
}

bool FlightRecorder::WaitForDumps(uint64_t n, int64_t timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  MutexLock l(path_mu_);
  while (dumps_completed_.load(std::memory_order_acquire) < n) {
    if (dumped_cv_.WaitUntil(path_mu_, deadline) ==  // wait-state: test hook
        std::cv_status::timeout) {
      return dumps_completed_.load(std::memory_order_acquire) >= n;
    }
  }
  return true;
}

void FlightRecorder::InstallCrashHandler() {
  if (g_crash_handler_installed.exchange(true)) return;
  std::signal(SIGSEGV, FatalSignalHandler);
  std::signal(SIGBUS, FatalSignalHandler);
  std::signal(SIGABRT, FatalSignalHandler);
  std::signal(SIGFPE, FatalSignalHandler);
}

}  // namespace oir::obs
