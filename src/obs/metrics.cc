#include "obs/metrics.h"

#include <cstdio>

#include "obs/json.h"
#include "util/counters.h"

namespace oir::obs {

std::atomic<bool> MetricRegistry::timers_enabled_{false};

namespace {

// Per-thread shard index: threads are striped over the shard array in
// registration order, so a small thread count gets distinct shards.
size_t ThreadShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t idx = next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

}  // namespace

void TimerStat::Record(uint64_t ns) {
  shards_[ThreadShardIndex() % kShards].h.Add(ns);
}

void TimerStat::MergeInto(Histogram* out) const {
  for (const Shard& s : shards_) out->Merge(s.h);
}

void TimerStat::Reset() {
  for (Shard& s : shards_) s.h.Clear();
}

MetricRegistry::MetricRegistry() {
  GlobalCounters::Get().ForEach(
      [this](const char* name, std::atomic<uint64_t>& v) {
        counters_.emplace(name, &v);
      });
}

MetricRegistry& MetricRegistry::Get() {
  static MetricRegistry* instance = new MetricRegistry();
  return *instance;
}

void MetricRegistry::RegisterCounter(const std::string& name,
                                     const std::atomic<uint64_t>* v) {
  MutexLock l(mu_);
  counters_[name] = v;
}

void MetricRegistry::RegisterGauge(const std::string& name,
                                   std::function<uint64_t()> fn) {
  MutexLock l(mu_);
  gauges_[name] = std::move(fn);
}

void MetricRegistry::UnregisterGauge(const std::string& name) {
  MutexLock l(mu_);
  gauges_.erase(name);
}

TimerStat* MetricRegistry::Timer(const std::string& name) {
  MutexLock l(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(name, std::make_unique<TimerStat>(name)).first;
  }
  return it->second.get();
}

MetricRegistry::Snapshot MetricRegistry::TakeSnapshot() const {
  // Copy the maps under the lock, then sample outside it: a gauge callback
  // may itself touch the registry.
  std::vector<std::pair<std::string, const std::atomic<uint64_t>*>> counters;
  std::vector<std::pair<std::string, std::function<uint64_t()>>> gauges;
  std::vector<TimerStat*> timers;
  {
    MutexLock l(mu_);
    counters.assign(counters_.begin(), counters_.end());
    gauges.assign(gauges_.begin(), gauges_.end());
    timers.reserve(timers_.size());
    for (const auto& [_, t] : timers_) timers.push_back(t.get());
  }
  Snapshot snap;
  snap.counters.reserve(counters.size());
  for (const auto& [name, v] : counters) {
    snap.counters.emplace_back(name, v->load(std::memory_order_relaxed));
  }
  snap.gauges.reserve(gauges.size());
  for (const auto& [name, fn] : gauges) snap.gauges.emplace_back(name, fn());
  snap.timers.reserve(timers.size());
  for (TimerStat* t : timers) {
    Histogram h;
    t->MergeInto(&h);
    TimerSummary s;
    s.name = t->name();
    s.count = h.Count();
    s.sum = h.Sum();
    s.min = h.Min();
    s.max = h.Max();
    s.mean = h.Mean();
    s.p50 = h.Percentile(50);
    s.p95 = h.Percentile(95);
    s.p99 = h.Percentile(99);
    snap.timers.push_back(std::move(s));
  }
  return snap;
}

void MetricRegistry::ResetTimers() {
  std::vector<TimerStat*> timers;
  {
    MutexLock l(mu_);
    timers.reserve(timers_.size());
    for (const auto& [_, t] : timers_) timers.push_back(t.get());
  }
  for (TimerStat* t : timers) t->Reset();
}

void MetricRegistry::SetReport(const std::string& name, std::string json) {
  MutexLock l(mu_);
  reports_[name] = std::move(json);
}

std::string MetricRegistry::GetReport(const std::string& name) const {
  MutexLock l(mu_);
  auto it = reports_.find(name);
  return it == reports_.end() ? std::string() : it->second;
}

std::string MetricRegistry::ToJson() const {
  Snapshot snap = TakeSnapshot();
  std::map<std::string, std::string> reports;
  {
    MutexLock l(mu_);
    reports = reports_;
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, v] : snap.counters) w.Key(name).Value(v);
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, v] : snap.gauges) w.Key(name).Value(v);
  w.EndObject();
  w.Key("timers").BeginObject();
  for (const auto& t : snap.timers) {
    w.Key(t.name).BeginObject();
    w.Key("count").Value(t.count);
    w.Key("sum").Value(t.sum);
    w.Key("min").Value(t.min);
    w.Key("max").Value(t.max);
    w.Key("mean").Value(t.mean);
    w.Key("p50").Value(t.p50);
    w.Key("p95").Value(t.p95);
    w.Key("p99").Value(t.p99);
    w.EndObject();
  }
  w.EndObject();
  w.Key("reports").BeginObject();
  for (const auto& [name, json] : reports) w.Key(name).RawValue(json);
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string MetricRegistry::ToText() const {
  Snapshot snap = TakeSnapshot();
  std::string out;
  char buf[256];
  for (const auto& [name, v] : snap.counters) {
    std::snprintf(buf, sizeof(buf), "counter %-24s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(v));
    out += buf;
  }
  for (const auto& [name, v] : snap.gauges) {
    std::snprintf(buf, sizeof(buf), "gauge   %-24s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(v));
    out += buf;
  }
  for (const auto& t : snap.timers) {
    std::snprintf(buf, sizeof(buf),
                  "timer   %-24s count=%llu mean=%.0f p50=%.0f p95=%.0f "
                  "p99=%.0f max=%llu\n",
                  t.name.c_str(), static_cast<unsigned long long>(t.count),
                  t.mean, t.p50, t.p95, t.p99,
                  static_cast<unsigned long long>(t.max));
    out += buf;
  }
  return out;
}

}  // namespace oir::obs
