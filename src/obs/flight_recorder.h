#ifndef OIR_OBS_FLIGHT_RECORDER_H_
#define OIR_OBS_FLIGHT_RECORDER_H_

// Crash flight recorder: an always-on diagnostic service that snapshots the
// whole observability surface — stats JSON, the trace ring, the wait-state
// profile, and any registered component dumps (active transactions, the
// lock table, crash-point counts) — into one atomically-published JSON
// bundle when something goes wrong: lock-watchdog fire, crash-point trip,
// fatal signal, or an explicit Db::DumpFlightRecord call. The goal is that
// every crash-sweep failure and TSan repro is self-describing: the failure
// message carries a path to a bundle that shows what the system was doing.
//
// Locking design (this is the part that has to be right):
//   * Trigger() is called from delicate contexts — the lock-manager
//     watchdog fires while holding a lock-table shard mutex, and a crash
//     point handler may run under the WAL mutex. Trigger therefore only
//     touches a leaf mutex (pending-reason queue + CV notify) and returns;
//     a lazily started worker thread performs the actual dump.
//   * DumpNow() invokes the registered providers while holding
//     providers_mu_, so UnregisterProvider (called from the Db destructor)
//     blocks until an in-flight dump no longer references Db state.
//   * NoteSnapshot() uses its own ring mutex: the stats publisher calls it
//     with arbitrary component state live, and a provider could publish
//     stats while a dump is in progress.
//
// Bundles are written as <dir>/oir_flight_<pid>_<seq>.json via temp file +
// rename, so a reader never sees a torn bundle. <dir> is OIR_FLIGHT_DIR,
// else TMPDIR, else /tmp.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sync/mutex.h"

namespace oir::obs {

class FlightRecorder {
 public:
  static constexpr size_t kMaxRecentStats = 8;

  static FlightRecorder& Get();

  // Registers a named JSON provider; its result is spliced into every
  // bundle under `name`. Returns a token identifying this registration, so
  // a stale unregister (a second Db reusing the name) cannot remove a newer
  // provider. The provider runs on the dump thread and may take component
  // locks; it must return a valid JSON value.
  uint64_t RegisterProvider(const std::string& name,
                            std::function<std::string()> fn);
  // No-op unless `token` is the current registration for `name`. Blocks
  // while a dump is invoking providers — after return, the provider will
  // never be called again.
  void UnregisterProvider(const std::string& name, uint64_t token);

  // Appends a stats-JSON snapshot to the bounded recent-stats ring (the
  // stats publisher feeds this, giving bundles short history).
  void NoteSnapshot(std::string stats_json);

  // Asynchronous dump request; safe from any context that can take a leaf
  // mutex, including with component mutexes held. Coalesces: if a dump for
  // the same reason is already pending, the request is dropped.
  void Trigger(const std::string& reason);

  // Synchronous dump; do not call with component locks held. On success
  // returns true and stores the bundle path in *path (if non-null).
  bool DumpNow(const std::string& reason, std::string* path);

  // Best-effort fatal-signal hook (SIGSEGV/SIGBUS/SIGABRT/SIGFPE): dumps a
  // bundle then re-raises with the default disposition. The handler is not
  // async-signal-safe — it allocates and takes locks — which is acceptable
  // for a diagnostic of last resort; a recursion guard stops a crash inside
  // the handler from looping.
  void InstallCrashHandler();

  // Test/observability hooks.
  uint64_t dumps_completed() const {
    return dumps_completed_.load(std::memory_order_acquire);
  }
  std::string last_dump_path() const;
  // Blocks until dumps_completed() >= n or the deadline passes.
  bool WaitForDumps(uint64_t n, int64_t timeout_ms);

 private:
  FlightRecorder() = default;

  std::string BuildBundleJson(const std::string& reason);
  void WorkerLoop();
  void EnsureWorkerLocked() OIR_REQUIRES(trigger_mu_);

  // Leaf mutex: Trigger() touches only this.
  mutable Mutex trigger_mu_;
  CondVar trigger_cv_;
  std::deque<std::string> pending_ OIR_GUARDED_BY(trigger_mu_);
  bool worker_started_ OIR_GUARDED_BY(trigger_mu_) = false;
  std::thread worker_;  // started once; detached-by-leak with the singleton

  // Held while building a bundle (providers run under it).
  mutable Mutex providers_mu_;
  struct Provider {
    uint64_t token = 0;
    std::function<std::string()> fn;
  };
  std::map<std::string, Provider> providers_ OIR_GUARDED_BY(providers_mu_);
  uint64_t next_token_ OIR_GUARDED_BY(providers_mu_) = 1;

  mutable Mutex ring_mu_;
  std::deque<std::string> recent_stats_ OIR_GUARDED_BY(ring_mu_);

  mutable Mutex path_mu_;
  CondVar dumped_cv_;
  std::string last_dump_path_ OIR_GUARDED_BY(path_mu_);
  std::atomic<uint64_t> dumps_completed_{0};
  std::atomic<uint64_t> seq_{0};
};

}  // namespace oir::obs

#endif  // OIR_OBS_FLIGHT_RECORDER_H_
