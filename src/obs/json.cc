#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace oir::obs {

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value completes a "key": pair; no comma
  }
  if (!has_elem_.empty()) {
    if (has_elem_.back()) out_ += ',';
    has_elem_.back() = true;
  }
}

void JsonWriter::AppendEscaped(const std::string& s) {
  out_ += '"';
  for (char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  has_elem_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  has_elem_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& k) {
  MaybeComma();
  AppendEscaped(k);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  MaybeComma();
  if (!std::isfinite(v)) v = 0.0;  // NaN/Inf are not valid JSON
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  MaybeComma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Value(const char* s) {
  MaybeComma();
  AppendEscaped(s);
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& s) {
  MaybeComma();
  AppendEscaped(s);
  return *this;
}

JsonWriter& JsonWriter::RawValue(const std::string& json) {
  MaybeComma();
  out_ += json;
  return *this;
}

// ------------------------------------------------------------- validation

namespace {

class Parser {
 public:
  explicit Parser(const std::string& s) : s_(s) {}

  bool Run() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (Peek() != '"' || !String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    ++pos_;  // '"'
    while (pos_ < s_.size()) {
      unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) return false;  // raw control char
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (Peek() == '0') {
      ++pos_;
    } else if (std::isdigit(static_cast<unsigned char>(Peek()))) {
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    } else {
      return false;
    }
    if (Peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

bool JsonIsValid(const std::string& text) { return Parser(text).Run(); }

}  // namespace oir::obs
