#ifndef OIR_OBS_WAITSTATE_H_
#define OIR_OBS_WAITSTATE_H_

// Per-thread wait-state attribution: a small state machine that classifies
// every nanosecond of an operation's wall-clock as RUNNING or one of the
// wait states below, so DumpStatsJson can answer "p99 point-read = 41 us,
// of which 29 us latch wait" instead of only counting waits.
//
// Model: each thread owns a set of monotone per-state accumulators and a
// current state. WaitScope (RAII) switches the thread into a wait state for
// the duration of a blocking section; nested wait scopes fold into the
// outermost one (the outermost classification wins — a WAL flush performed
// while waiting for a latch is still latch wait from the operation's point
// of view). OpScope brackets one logical operation (point read, write,
// commit, rebuild batch): it snapshots the accumulators on entry and
// records the deltas — including measured RUNNING time — into a global
// per-operation-type aggregate on exit. Because every transition closes the
// current segment into an accumulator, the per-state components of an
// operation sum to its wall-clock exactly; the bench asserts >= 95% only to
// leave room for snapshot races.
//
// Everything is gated by one relaxed atomic flag (default off), same
// discipline as MetricRegistry timers and the trace ring: a disabled scope
// costs one predicted branch. Aggregation is 16-way thread-striped like
// TimerStat, so concurrent recorders rarely share a cache line or mutex.
//
// This header is included from sync/latch.h and therefore stays minimal:
// atomics and the clock only — no sync/mutex.h, no histogram.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace oir::obs {

// Order is the dump order; kRunning must stay first.
enum class WaitState : uint8_t {
  kRunning = 0,
  kLatchWait,       // page latch (Latch::LockS/LockX blocked path)
  kLockWait,        // lock-manager CV wait
  kWalCommitWait,   // LogManager::FlushTo (group-commit wait or sync write)
  kIoWait,          // buffer-pool miss / eviction / frame-loading wait
  kThrottled,       // admission control (reserved for rebuild pacing)
  kNumStates,
};

enum class OpType : uint8_t {
  kRead = 0,
  kWrite,
  kCommit,
  kRebuild,
  kOther,
  kNumTypes,
};

constexpr size_t kNumWaitStates = static_cast<size_t>(WaitState::kNumStates);
constexpr size_t kNumOpTypes = static_cast<size_t>(OpType::kNumTypes);

const char* WaitStateName(WaitState s);
const char* OpTypeName(OpType t);

class WaitProfiler {
 public:
  struct OpBreakdown {
    OpType type = OpType::kOther;
    uint64_t count = 0;
    uint64_t wall_ns = 0;
    uint64_t state_ns[kNumWaitStates] = {};
    // Wall-clock distribution (ns), merged across shards.
    uint64_t hist_count = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
  };

  static void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  // One entry per op type that recorded at least one operation.
  static std::vector<OpBreakdown> TakeSnapshot();
  // {"read":{"count":..,"wall_ns":..,"states":{"running":..,...},
  //          "wall_hist":{"count":..,"p50":..,"p95":..,"p99":..,"max":..}},
  //  ...}
  static std::string ToJson();
  static void Reset();

  // --- slow paths used by the scopes; callers gate on enabled() ---
  // Switches the thread into `s` (outermost wait only). Returns the state
  // to restore on exit.
  static WaitState EnterWait(WaitState s);
  static void ExitWait(WaitState prev);
  // Begin/End must be balanced; only the outermost level on a thread
  // snapshots and records.
  static void BeginOp();
  static void EndOp(OpType t);

 private:
  static std::atomic<bool> enabled_;
};

// RAII: classifies the enclosed blocking section as `s`. Balanced even if
// the global flag flips mid-scope (the ctor's decision is remembered).
class WaitScope {
 public:
  explicit WaitScope(WaitState s) {
    if (WaitProfiler::enabled()) {
      entered_ = true;
      prev_ = WaitProfiler::EnterWait(s);
    }
  }
  ~WaitScope() {
    if (entered_) WaitProfiler::ExitWait(prev_);
  }
  WaitScope(const WaitScope&) = delete;
  WaitScope& operator=(const WaitScope&) = delete;

 private:
  bool entered_ = false;
  WaitState prev_ = WaitState::kRunning;
};

// RAII: brackets one logical operation of type `t`. Nested op scopes are
// inert — only the outermost records a breakdown.
class OpScope {
 public:
  explicit OpScope(OpType t) : type_(t) {
    if (WaitProfiler::enabled()) {
      entered_ = true;
      WaitProfiler::BeginOp();
    }
  }
  ~OpScope() {
    if (entered_) WaitProfiler::EndOp(type_);
  }
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

 private:
  OpType type_;
  bool entered_ = false;
};

}  // namespace oir::obs

#endif  // OIR_OBS_WAITSTATE_H_
