#ifndef OIR_OBS_METRICS_H_
#define OIR_OBS_METRICS_H_

// Process-wide metric registry: named counters (views over external
// atomics, e.g. every GlobalCounters field), gauges (sampled callbacks) and
// low-contention timer histograms (per-thread sharded Add, merged on read).
//
// Timer recording is gated by a single relaxed atomic flag that defaults to
// off, so instrumented hot paths (buffer-pool fetch, WAL append, lock
// acquire, B-tree traversal) cost one predictable branch when timing is
// disabled. Enable with MetricRegistry::SetTimersEnabled(true).

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sync/mutex.h"
#include "util/clock.h"
#include "util/histogram.h"

namespace oir::obs {

// A named latency/size distribution. Add() lands in one of kShards
// histograms picked by a per-thread index, so concurrent writers rarely
// share a mutex; readers merge the shards.
class TimerStat {
 public:
  static constexpr size_t kShards = 16;

  explicit TimerStat(std::string name) : name_(std::move(name)) {}

  void Record(uint64_t ns);
  // Merges every shard into *out (Histogram is not movable).
  void MergeInto(Histogram* out) const;
  void Reset();

  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    Histogram h;
  };

  const std::string name_;
  Shard shards_[kShards];
};

class MetricRegistry {
 public:
  struct TimerSummary {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, uint64_t>> gauges;
    std::vector<TimerSummary> timers;
  };

  // The singleton registers every GlobalCounters field on first use.
  static MetricRegistry& Get();

  // Registers a named view over an externally owned atomic. The atomic must
  // outlive the process (GlobalCounters does). Re-registering a name
  // replaces the previous view.
  void RegisterCounter(const std::string& name,
                       const std::atomic<uint64_t>* v);
  // Gauges are sampled at snapshot time. The callback must be safe to call
  // from any thread; unregister before anything it captures dies.
  void RegisterGauge(const std::string& name, std::function<uint64_t()> fn);
  void UnregisterGauge(const std::string& name);

  // Finds or creates a timer. The returned pointer is stable for the
  // process lifetime — cache it at the call site.
  TimerStat* Timer(const std::string& name);

  static void SetTimersEnabled(bool on) {
    timers_enabled_.store(on, std::memory_order_relaxed);
  }
  static bool timers_enabled() {
    return timers_enabled_.load(std::memory_order_relaxed);
  }

  Snapshot TakeSnapshot() const;
  void ResetTimers();

  // Named JSON documents for one-shot reports (last rebuild result, last
  // recovery stats); spliced verbatim into ToJson(). `json` must be a valid
  // JSON value.
  void SetReport(const std::string& name, std::string json);
  std::string GetReport(const std::string& name) const;  // "" if absent

  // {"counters":{...},"gauges":{...},"timers":{name:{histogram}},
  //  "reports":{name:<spliced doc>}}
  std::string ToJson() const;
  // Human-readable one-metric-per-line text.
  std::string ToText() const;

 private:
  MetricRegistry();

  static std::atomic<bool> timers_enabled_;

  mutable Mutex mu_;
  std::map<std::string, const std::atomic<uint64_t>*> counters_
      OIR_GUARDED_BY(mu_);
  std::map<std::string, std::function<uint64_t()>> gauges_ OIR_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<TimerStat>> timers_
      OIR_GUARDED_BY(mu_);
  std::map<std::string, std::string> reports_ OIR_GUARDED_BY(mu_);
};

// RAII timer scope: records elapsed wall nanoseconds into `t` on
// destruction. When timers are globally disabled the constructor is a
// single relaxed load and the destructor a null check.
//
// Recording is idempotent: Stop() nulls the timer pointer, so a sample is
// recorded exactly once no matter how the scope ends — explicit Stop(),
// normal unwind, or an exception thrown through the scope (e.g. a test-only
// crash point aborting the enclosing operation). Cancel() drops the sample,
// for paths that decide the measured interval is meaningless (a timed
// section that turned into a retry loop, an operation abandoned mid-way).
class ScopedTimer {
 public:
  explicit ScopedTimer(TimerStat* t)
      : t_(MetricRegistry::timers_enabled() ? t : nullptr),
        start_(t_ != nullptr ? NowNanos() : 0) {}
  ~ScopedTimer() { Stop(); }

  // Records the sample now (once); later Stop()/destruction are no-ops.
  void Stop() {
    if (t_ != nullptr) {
      t_->Record(NowNanos() - start_);
      t_ = nullptr;
    }
  }

  // Discards the measurement; nothing is recorded for this scope.
  void Cancel() { t_ = nullptr; }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerStat* t_;
  uint64_t start_;
};

}  // namespace oir::obs

#endif  // OIR_OBS_METRICS_H_
