#ifndef OIR_OBS_JSON_H_
#define OIR_OBS_JSON_H_

// Minimal JSON emission and validation. No external dependency: the stats
// and trace dumps are built with JsonWriter, and tests / the dump_stats
// smoke assert well-formedness with JsonIsValid (a strict RFC 8259
// recursive-descent checker).

#include <cstdint>
#include <string>
#include <vector>

namespace oir::obs {

// Streaming writer that tracks nesting and inserts commas. Usage:
//   JsonWriter w;
//   w.BeginObject().Key("n").Value(42u).EndObject();
//   w.str()  // {"n":42}
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& k);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(double v);  // non-finite values are emitted as 0
  JsonWriter& Value(bool v);
  JsonWriter& Value(const char* s);
  JsonWriter& Value(const std::string& s);
  // Splices a pre-built JSON value (e.g. Histogram::ToJson()) in place.
  JsonWriter& RawValue(const std::string& json);

  const std::string& str() const { return out_; }

 private:
  void MaybeComma();
  void AppendEscaped(const std::string& s);

  std::string out_;
  // One entry per open container: true once the first element was written.
  std::vector<bool> has_elem_;
  bool pending_key_ = false;
};

// Strict syntax validation of a complete JSON document.
bool JsonIsValid(const std::string& text);

}  // namespace oir::obs

#endif  // OIR_OBS_JSON_H_
