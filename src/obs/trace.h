#ifndef OIR_OBS_TRACE_H_
#define OIR_OBS_TRACE_H_

// Lock-free event trace: fixed-size ring buffers with per-thread write
// cursors (threads are striped over kNumRings rings; claiming a slot is one
// fetch_add on the ring's cursor, almost always uncontended), binary
// records with a monotonic timestamp. Compiled in always; when disabled the
// OIR_TRACE macro is a single relaxed load.
//
// Dumpable as plain JSON (DumpJson) and as a chrome://tracing document
// (DumpChromeTracing): save the latter to a file and load it at
// chrome://tracing or https://ui.perfetto.dev.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sync/mutex.h"

namespace oir::obs {

enum class TraceEventType : uint8_t {
  kNone = 0,
  kTopActionBegin,      // arg0 = top-action ordinal, arg1 = 0
  kTopActionEnd,        // arg0 = top-action ordinal, arg1 = leaves in batch
  kTopActionTruncate,   // arg0 = busy page,          arg1 = batch size so far
  kSmoSplit,            // arg0 = old page,           arg1 = new page
  kSmoShrink,           // arg0 = freed page,         arg1 = 0
  kCondLockFail,        // arg0 = lock key id,        arg1 = requester txn
  kLockWaitBegin,       // arg0 = lock key id,        arg1 = requester txn
  kLockWaitEnd,         // arg0 = lock key id,        arg1 = requester txn
  kLockWatchdog,        // arg0 = lock key id,        arg1 = holder txn
  kGroupCommitFlush,    // arg0 = durable lsn,        arg1 = bytes this round
  kCheckpoint,          // arg0 = checkpoint lsn,     arg1 = 0
  kCopyPhaseBegin,      // arg0 = top-action ordinal, arg1 = 0
  kCopyPhaseEnd,        // arg0 = top-action ordinal, arg1 = keys copied
  kPropagatePhaseBegin, // arg0 = top-action ordinal, arg1 = 0
  kPropagatePhaseEnd,   // arg0 = top-action ordinal, arg1 = 0
  kFaultInjected,       // arg0 = first page affected, arg1 = FaultKind
  kWalSegSeal,          // arg0 = segment end lsn,    arg1 = segment bytes
  kWalSegSubmit,        // arg0 = segment end lsn,    arg1 = submitted bytes
  kWalSegComplete,      // arg0 = durable lsn,        arg1 = segment bytes
};

const char* TraceEventName(TraceEventType t);

struct TraceRecord {
  uint64_t ts_ns = 0;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  uint32_t tid = 0;
  TraceEventType type = TraceEventType::kNone;
};

class TraceBuffer {
 public:
  static constexpr size_t kNumRings = 16;
  static constexpr size_t kRingCapacity = 1 << 12;  // records per ring

  static TraceBuffer& Get();

  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  // Enabling allocates the rings on first use (~2 MiB) and keeps them.
  void SetEnabled(bool on);
  void Clear();

  void Record(TraceEventType type, uint64_t arg0, uint64_t arg1);

  // Merged, timestamp-sorted view of everything currently buffered. Each
  // ring keeps its most recent kRingCapacity records; a slot being
  // overwritten concurrently with the dump can yield one stale record per
  // ring (fields are individually atomic — never torn words).
  std::vector<TraceRecord> Snapshot() const;

  // {"events":[{"ts_ns":..,"type":"..","tid":..,"arg0":..,"arg1":..},...]}
  std::string DumpJson() const;
  // chrome://tracing "traceEvents" document: begin/end event pairs become
  // duration ("B"/"E") slices, everything else instant ("i") events.
  std::string DumpChromeTracing() const;

 private:
  // Each logical record is 5 relaxed atomic words so concurrent
  // overwrite-during-dump is benign under TSan.
  struct Slot {
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint64_t> arg0{0};
    std::atomic<uint64_t> arg1{0};
    std::atomic<uint32_t> tid{0};
    std::atomic<uint8_t> type{0};
  };
  struct alignas(64) Ring {
    std::atomic<uint64_t> cursor{0};  // total records ever written
    std::unique_ptr<Slot[]> slots;
  };

  TraceBuffer() = default;

  static std::atomic<bool> enabled_;

  mutable Mutex init_mu_;
  std::atomic<bool> allocated_{false};
  // rings_ is written once under init_mu_ (double-checked via allocated_)
  // and thereafter read lock-free by every Record()/Snapshot() call, so it
  // cannot be OIR_GUARDED_BY(init_mu_): the publication is the
  // release-store of allocated_, not the mutex.
  std::unique_ptr<Ring[]> rings_;
};

}  // namespace oir::obs

// Record an event iff tracing is enabled; one relaxed load otherwise.
#define OIR_TRACE(type, arg0, arg1)                                   \
  do {                                                                \
    if (::oir::obs::TraceBuffer::enabled()) {                         \
      ::oir::obs::TraceBuffer::Get().Record((type), (arg0), (arg1));  \
    }                                                                 \
  } while (0)

#endif  // OIR_OBS_TRACE_H_
