#ifndef OIR_OBS_PROGRESS_H_
#define OIR_OBS_PROGRESS_H_

// Rebuild progress publication: the rebuilder thread bumps atomics after
// every top action; any other thread (or the RebuildOptions::on_progress
// callback) reads a consistent-enough snapshot without synchronizing with
// the rebuild. All fields are cumulative and monotone while running.

#include <atomic>
#include <cstdint>

namespace oir::obs {

struct RebuildProgress {
  bool running = false;
  bool done = false;
  uint64_t leaves_total = 0;    // allocated-page estimate taken at start
  uint64_t leaves_rebuilt = 0;  // old leaves fully copied so far
  uint32_t current_page = 0;    // old-index leaf the rebuild is working on
  uint64_t top_actions = 0;
  uint64_t transactions = 0;
  uint64_t batches_truncated = 0;  // conditional-lock Busy cut a batch short
  uint64_t retries = 0;            // PP/P1 lock-batch retraversal retries
  uint64_t copy_us = 0;            // cumulative per-phase wall time
  uint64_t propagate_us = 0;
  uint64_t flush_us = 0;
  bool resumed = false;            // run continued a crashed rebuild; the
                                   // counters above include the prior run
  uint64_t progress_records = 0;   // durable progress records appended
  uint64_t throttle_pauses = 0;    // admission-control pauses taken
  uint64_t throttle_us = 0;        // cumulative attributed pause time
};

class RebuildProgressTracker {
 public:
  void Reset() {
    running.store(false, std::memory_order_relaxed);
    done.store(false, std::memory_order_relaxed);
    leaves_total.store(0, std::memory_order_relaxed);
    leaves_rebuilt.store(0, std::memory_order_relaxed);
    current_page.store(0, std::memory_order_relaxed);
    top_actions.store(0, std::memory_order_relaxed);
    transactions.store(0, std::memory_order_relaxed);
    batches_truncated.store(0, std::memory_order_relaxed);
    retries.store(0, std::memory_order_relaxed);
    copy_us.store(0, std::memory_order_relaxed);
    propagate_us.store(0, std::memory_order_relaxed);
    flush_us.store(0, std::memory_order_relaxed);
    resumed.store(false, std::memory_order_relaxed);
    progress_records.store(0, std::memory_order_relaxed);
    throttle_pauses.store(0, std::memory_order_relaxed);
    throttle_us.store(0, std::memory_order_relaxed);
  }

  void Begin(uint64_t total_estimate) {
    leaves_total.store(total_estimate, std::memory_order_relaxed);
    running.store(true, std::memory_order_release);
  }
  void Finish() {
    running.store(false, std::memory_order_relaxed);
    done.store(true, std::memory_order_release);
  }

  RebuildProgress Load() const {
    RebuildProgress p;
    p.running = running.load(std::memory_order_acquire);
    p.done = done.load(std::memory_order_relaxed);
    p.leaves_total = leaves_total.load(std::memory_order_relaxed);
    p.leaves_rebuilt = leaves_rebuilt.load(std::memory_order_relaxed);
    p.current_page = current_page.load(std::memory_order_relaxed);
    p.top_actions = top_actions.load(std::memory_order_relaxed);
    p.transactions = transactions.load(std::memory_order_relaxed);
    p.batches_truncated = batches_truncated.load(std::memory_order_relaxed);
    p.retries = retries.load(std::memory_order_relaxed);
    p.copy_us = copy_us.load(std::memory_order_relaxed);
    p.propagate_us = propagate_us.load(std::memory_order_relaxed);
    p.flush_us = flush_us.load(std::memory_order_relaxed);
    p.resumed = resumed.load(std::memory_order_relaxed);
    p.progress_records = progress_records.load(std::memory_order_relaxed);
    p.throttle_pauses = throttle_pauses.load(std::memory_order_relaxed);
    p.throttle_us = throttle_us.load(std::memory_order_relaxed);
    return p;
  }

  std::atomic<bool> running{false};
  std::atomic<bool> done{false};
  std::atomic<uint64_t> leaves_total{0};
  std::atomic<uint64_t> leaves_rebuilt{0};
  std::atomic<uint32_t> current_page{0};
  std::atomic<uint64_t> top_actions{0};
  std::atomic<uint64_t> transactions{0};
  std::atomic<uint64_t> batches_truncated{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> copy_us{0};
  std::atomic<uint64_t> propagate_us{0};
  std::atomic<uint64_t> flush_us{0};
  std::atomic<bool> resumed{false};
  std::atomic<uint64_t> progress_records{0};
  std::atomic<uint64_t> throttle_pauses{0};
  std::atomic<uint64_t> throttle_us{0};
};

}  // namespace oir::obs

#endif  // OIR_OBS_PROGRESS_H_
