#include "space/space_manager.h"

#include <algorithm>
#include <map>

#include "testing/crash_point.h"
#include "util/logging.h"

namespace oir {

SpaceManager::SpaceManager(Disk* disk, LogManager* log, PageId first_data_page)
    : disk_(disk),
      log_(log),
      first_data_page_(first_data_page),
      next_unused_(first_data_page) {}

PageState SpaceManager::GetState(PageId page) const {
  MutexLock l(mu_);
  if (page < first_data_page_) return PageState::kAllocated;
  size_t idx = page - first_data_page_;
  if (idx >= states_.size()) return PageState::kFree;
  return states_[idx];
}

Status SpaceManager::ExtendLocked(uint32_t n, PageId* first) {
  PageId start = next_unused_;
  if (static_cast<uint64_t>(start) + n > disk_->NumPages()) {
    // Grow the device with some headroom.
    uint32_t want = start + n;
    uint32_t target = std::max<uint32_t>(want, disk_->NumPages() * 2);
    OIR_RETURN_IF_ERROR(disk_->Extend(target));
  }
  next_unused_ = start + n;
  states_.resize(next_unused_ - first_data_page_, PageState::kFree);
  *first = start;
  return Status::OK();
}

Status SpaceManager::ReserveRunLocked(uint32_t n, PageId* first) {
  // Look for n contiguous free pages below the high-water mark. The paper's
  // page manager prefers "a chunk of large contiguous free disk space";
  // scanning the in-memory state vector is our equivalent.
  uint32_t run = 0;
  for (size_t i = 0; i < states_.size(); ++i) {
    if (states_[i] == PageState::kFree) {
      ++run;
      if (run == n) {
        *first = first_data_page_ + static_cast<PageId>(i + 1 - n);
        return Status::OK();
      }
    } else {
      run = 0;
    }
  }
  return ExtendLocked(n, first);
}

Status SpaceManager::Allocate(TxnContext* ctx, PageId* out) {
  std::vector<PageId> pages;
  OIR_RETURN_IF_ERROR(AllocateChunk(ctx, 1, &pages));
  *out = pages[0];
  return Status::OK();
}

Status SpaceManager::AllocateChunk(TxnContext* ctx, uint32_t n,
                                   std::vector<PageId>* out) {
  OIR_CHECK(n >= 1);
  PageId first;
  {
    MutexLock l(mu_);
    OIR_RETURN_IF_ERROR(ReserveRunLocked(n, &first));
    for (uint32_t i = 0; i < n; ++i) {
      states_[first + i - first_data_page_] = PageState::kAllocated;
    }
  }
  OIR_CRASH_POINT("space.alloc.state");
  out->clear();
  out->reserve(n);
  LogRecord rec;
  rec.type = LogType::kAlloc;
  for (uint32_t i = 0; i < n; ++i) {
    rec.pages.push_back(first + i);
    out->push_back(first + i);
  }
  log_->Append(&rec, ctx);
  OIR_CRASH_POINT("space.alloc.logged");
  return Status::OK();
}

Status SpaceManager::Deallocate(TxnContext* ctx, PageId page) {
  {
    MutexLock l(mu_);
    OIR_CHECK(page >= first_data_page_ &&
              page - first_data_page_ < states_.size());
    PageState& s = states_[page - first_data_page_];
    OIR_CHECK(s == PageState::kAllocated);
    s = PageState::kDeallocated;
  }
  OIR_CRASH_POINT("space.dealloc.state");
  LogRecord rec;
  rec.type = LogType::kDealloc;
  rec.pages.push_back(page);
  log_->Append(&rec, ctx);
  OIR_CRASH_POINT("space.dealloc.logged");
  return Status::OK();
}

Status SpaceManager::DeallocateBatch(TxnContext* ctx,
                                     const std::vector<PageId>& pages) {
  {
    MutexLock l(mu_);
    for (PageId page : pages) {
      OIR_CHECK(page >= first_data_page_ &&
                page - first_data_page_ < states_.size());
      PageState& s = states_[page - first_data_page_];
      OIR_CHECK(s == PageState::kAllocated);
      s = PageState::kDeallocated;
    }
  }
  OIR_CRASH_POINT("space.dealloc.state");
  // One record per 256-page allocation unit (ASE-style allocation pages).
  constexpr PageId kUnit = 256;
  std::map<PageId, std::vector<PageId>> by_unit;
  for (PageId page : pages) by_unit[page / kUnit].push_back(page);
  for (auto& [unit, list] : by_unit) {
    (void)unit;
    LogRecord rec;
    rec.type = LogType::kDealloc;
    rec.pages = list;
    log_->Append(&rec, ctx);
  }
  OIR_CRASH_POINT("space.dealloc.logged");
  return Status::OK();
}

void SpaceManager::Free(PageId page) {
  OIR_CRASH_POINT("space.free");
  MutexLock l(mu_);
  OIR_CHECK(page >= first_data_page_ &&
            page - first_data_page_ < states_.size());
  PageState& s = states_[page - first_data_page_];
  OIR_CHECK(s == PageState::kDeallocated);
  s = PageState::kFree;
}

uint64_t SpaceManager::CountInState(PageState st) const {
  MutexLock l(mu_);
  uint64_t n = 0;
  for (PageState s : states_) {
    if (s == st) ++n;
  }
  return n;
}

std::vector<PageId> SpaceManager::PagesInState(PageState st) const {
  MutexLock l(mu_);
  std::vector<PageId> out;
  for (size_t i = 0; i < states_.size(); ++i) {
    if (states_[i] == st) out.push_back(first_data_page_ + i);
  }
  return out;
}

PageId SpaceManager::end_page() const {
  MutexLock l(mu_);
  return next_unused_;
}

void SpaceManager::UndoAlloc(PageId page) {
  MutexLock l(mu_);
  OIR_CHECK(page >= first_data_page_ &&
            page - first_data_page_ < states_.size());
  PageState& s = states_[page - first_data_page_];
  OIR_CHECK(s == PageState::kAllocated);
  s = PageState::kFree;
}

void SpaceManager::UndoDealloc(PageId page) {
  MutexLock l(mu_);
  OIR_CHECK(page >= first_data_page_ &&
            page - first_data_page_ < states_.size());
  PageState& s = states_[page - first_data_page_];
  OIR_CHECK(s == PageState::kDeallocated);
  s = PageState::kAllocated;
}

void SpaceManager::SetStateForRecovery(PageId page, PageState s) {
  MutexLock l(mu_);
  OIR_CHECK(page >= first_data_page_);
  size_t idx = page - first_data_page_;
  if (idx >= states_.size()) {
    states_.resize(idx + 1, PageState::kFree);
    next_unused_ = page + 1;
  }
  states_[idx] = s;
}

std::vector<PageId> SpaceManager::FreeAllDeallocated() {
  MutexLock l(mu_);
  std::vector<PageId> freed;
  for (size_t i = 0; i < states_.size(); ++i) {
    if (states_[i] == PageState::kDeallocated) {
      states_[i] = PageState::kFree;
      freed.push_back(first_data_page_ + i);
    }
  }
  return freed;
}

void SpaceManager::ResetForRecovery() {
  MutexLock l(mu_);
  states_.clear();
  next_unused_ = first_data_page_;
}

}  // namespace oir
