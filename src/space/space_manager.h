#ifndef OIR_SPACE_SPACE_MANAGER_H_
#define OIR_SPACE_SPACE_MANAGER_H_

// Page manager implementing the three-state page lifecycle of
// Section 4.1.3:
//
//     free --Allocate--> allocated --Deallocate--> deallocated --Free--> free
//
// Allocate and Deallocate are logged (and undone on rollback); the
// deallocated→free transition is NOT logged and cannot be undone — after a
// crash, recovery frees any page still in the deallocated state.
//
// For clustering (Section 6.1), AllocateChunk hands out physically
// contiguous runs of pages: the rebuild allocates new leaf pages from such
// chunks so that key order matches disk order.
//
// The allocation map is kept in memory and reconstructed from the log
// during restart recovery (a substitution for ASE's persistent allocation
// pages; see DESIGN.md).

#include <map>
#include <vector>

#include "storage/buffer_manager.h"
#include "sync/mutex.h"
#include "util/status.h"
#include "util/types.h"
#include "wal/log_manager.h"

namespace oir {

enum class PageState : uint8_t {
  kFree = 0,
  kAllocated = 1,
  kDeallocated = 2,
};

class SpaceManager {
 public:
  // Pages [0, first_data_page) are reserved (invalid page 0 and metadata)
  // and are considered permanently allocated.
  SpaceManager(Disk* disk, LogManager* log, PageId first_data_page);

  SpaceManager(const SpaceManager&) = delete;
  SpaceManager& operator=(const SpaceManager&) = delete;

  // Allocates one page (logged; undo returns it to free).
  Status Allocate(TxnContext* ctx, PageId* out);

  // Allocates `n` physically contiguous pages (each allocation is logged
  // individually so undo/redo stays uniform).
  Status AllocateChunk(TxnContext* ctx, uint32_t n, std::vector<PageId>* out);

  // allocated -> deallocated (logged). The page is not yet reusable.
  Status Deallocate(TxnContext* ctx, PageId page);

  // Deallocates several pages with one log record per 256-page allocation
  // unit touched — the way ASE's allocation-page updates batch, and what
  // keeps the rebuild's dealloc logging amortized at large ntasize.
  Status DeallocateBatch(TxnContext* ctx, const std::vector<PageId>& pages);

  // deallocated -> free (NOT logged, irreversible). The caller must ensure
  // the flush-before-free ordering of Section 3.
  void Free(PageId page);

  PageState GetState(PageId page) const;

  // Number of pages in each state (tests, benchmarks).
  uint64_t CountInState(PageState s) const;
  std::vector<PageId> PagesInState(PageState s) const;

  // High-water mark: one past the largest page id ever handed out.
  PageId end_page() const;

  // --- rollback hooks (no logging; used by undo of alloc/dealloc) ---
  // allocated -> free (undo of Allocate).
  void UndoAlloc(PageId page);
  // deallocated -> allocated (undo of Deallocate).
  void UndoDealloc(PageId page);

  // --- recovery hooks (no logging) ---
  void SetStateForRecovery(PageId page, PageState s);
  // Frees all pages still in deallocated state (end of restart recovery,
  // Section 4.1.3).
  std::vector<PageId> FreeAllDeallocated();
  // Reset to the post-creation state before log replay.
  void ResetForRecovery();

 private:
  // Finds a run of n contiguous free pages below the high-water mark, or
  // extends the device.
  Status ReserveRunLocked(uint32_t n, PageId* first) OIR_REQUIRES(mu_);
  Status ExtendLocked(uint32_t n, PageId* first) OIR_REQUIRES(mu_);

  Disk* const disk_;
  LogManager* const log_;
  const PageId first_data_page_;

  mutable Mutex mu_;
  // State of every page in [first_data_page_, next_unused_). Pages at and
  // beyond next_unused_ are free (device may need extension).
  std::vector<PageState> states_ OIR_GUARDED_BY(mu_);
  PageId next_unused_ OIR_GUARDED_BY(mu_);
};

}  // namespace oir

#endif  // OIR_SPACE_SPACE_MANAGER_H_
