#include "storage/disk.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace oir {

// ---------------------------------------------------------------- MemDisk

MemDisk::MemDisk(uint32_t page_size, uint32_t initial_pages)
    : Disk(page_size), num_pages_(initial_pages) {
  data_.resize(static_cast<size_t>(page_size) * initial_pages, 0);
}

Status MemDisk::ReadMulti(PageId first, uint32_t n, char* buf) {
  MutexLock l(mu_);
  if (first + n > num_pages_) {
    return Status::IOError("read beyond device end");
  }
  std::memcpy(buf, data_.data() + static_cast<size_t>(first) * page_size_,
              static_cast<size_t>(n) * page_size_);
  CountIo(n, /*write=*/false);
  return Status::OK();
}

Status MemDisk::WriteMulti(PageId first, uint32_t n, const char* buf) {
  MutexLock l(mu_);
  if (first + n > num_pages_) {
    return Status::IOError("write beyond device end");
  }
  std::memcpy(data_.data() + static_cast<size_t>(first) * page_size_, buf,
              static_cast<size_t>(n) * page_size_);
  CountIo(n, /*write=*/true);
  return Status::OK();
}

Status MemDisk::Sync() { return Status::OK(); }

uint32_t MemDisk::NumPages() const {
  MutexLock l(mu_);
  return num_pages_;
}

Status MemDisk::Extend(uint32_t new_num_pages) {
  MutexLock l(mu_);
  if (new_num_pages <= num_pages_) return Status::OK();
  data_.resize(static_cast<size_t>(new_num_pages) * page_size_, 0);
  num_pages_ = new_num_pages;
  return Status::OK();
}

// --------------------------------------------------------------- FileDisk

Status FileDisk::Open(const std::string& path, uint32_t page_size,
                      std::unique_ptr<FileDisk>* out) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat " + path + ": " + std::strerror(errno));
  }
  uint32_t num_pages = static_cast<uint32_t>(st.st_size / page_size);
  out->reset(new FileDisk(fd, page_size, num_pages));
  return Status::OK();
}

FileDisk::FileDisk(int fd, uint32_t page_size, uint32_t num_pages)
    : Disk(page_size), fd_(fd), num_pages_(num_pages) {}

FileDisk::~FileDisk() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileDisk::ReadMulti(PageId first, uint32_t n, char* buf) {
  {
    MutexLock l(mu_);
    if (first + n > num_pages_) {
      return Status::IOError("read beyond device end");
    }
  }
  size_t len = static_cast<size_t>(n) * page_size_;
  off_t off = static_cast<off_t>(first) * page_size_;
  size_t done = 0;
  while (done < len) {
    ssize_t r = ::pread(fd_, buf + done, len - done, off + done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("pread: ") + std::strerror(errno));
    }
    if (r == 0) {
      // Hole past EOF within a page-aligned region: zero-fill.
      std::memset(buf + done, 0, len - done);
      break;
    }
    done += static_cast<size_t>(r);
  }
  CountIo(n, /*write=*/false);
  return Status::OK();
}

Status FileDisk::WriteMulti(PageId first, uint32_t n, const char* buf) {
  {
    MutexLock l(mu_);
    if (first + n > num_pages_) {
      return Status::IOError("write beyond device end");
    }
  }
  size_t len = static_cast<size_t>(n) * page_size_;
  off_t off = static_cast<off_t>(first) * page_size_;
  size_t done = 0;
  while (done < len) {
    ssize_t r = ::pwrite(fd_, buf + done, len - done, off + done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("pwrite: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(r);
  }
  CountIo(n, /*write=*/true);
  return Status::OK();
}

Status FileDisk::Sync() {
  if (::fdatasync(fd_) != 0) {
    return Status::IOError(std::string("fdatasync: ") + std::strerror(errno));
  }
  return Status::OK();
}

uint32_t FileDisk::NumPages() const {
  MutexLock l(mu_);
  return num_pages_;
}

Status FileDisk::Extend(uint32_t new_num_pages) {
  MutexLock l(mu_);
  if (new_num_pages <= num_pages_) return Status::OK();
  off_t new_size = static_cast<off_t>(new_num_pages) * page_size_;
  if (::ftruncate(fd_, new_size) != 0) {
    return Status::IOError(std::string("ftruncate: ") + std::strerror(errno));
  }
  num_pages_ = new_num_pages;
  return Status::OK();
}

}  // namespace oir
