#ifndef OIR_STORAGE_BUFFER_MANAGER_H_
#define OIR_STORAGE_BUFFER_MANAGER_H_

// Buffer manager: a fixed pool of page frames over a Disk, with pin/unpin,
// clock eviction, dirty tracking, and the write-ahead-logging constraint
// (the log is flushed up to a page's pageLSN before the page is written
// back). Page latches live in the frames; a page can only be latched while
// pinned, so a latch holder always has a stable frame.
//
// The pool is partitioned into N shards (power of two, pages hashed on
// PageId): each shard owns a slice of the frames and has its own mutex,
// page table, free list and clock hand, so concurrent Fetch/Create/Unpin/
// Discard calls on different pages do not serialize behind one global
// mutex. Whole-pool operations (FlushAll, DropAll, CachedPages) iterate
// the shards.
//
// The paper's rebuild relies on three buffer-manager behaviours implemented
// here:
//   * "forced write" of the new pages at the end of each rebuild
//     transaction, before the old pages are freed (Section 3) — FlushPages;
//   * large-buffer I/O: FlushPages groups physically contiguous pages into
//     multi-page transfers, emulating the 16 KB buffer pool of Section 6.3;
//   * read-ahead: Prefetch pulls a physically contiguous run of pages into
//     frames with one multi-page transfer — the read-path twin of
//     FlushPages, used by the rebuild's copy phase.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/waitstate.h"
#include "storage/disk.h"
#include "storage/page.h"
#include "sync/latch.h"
#include "sync/mutex.h"
#include "util/status.h"
#include "util/types.h"

namespace oir {

// Implemented by the log manager; breaks the storage→wal dependency.
class LogFlusher {
 public:
  virtual ~LogFlusher() = default;
  virtual Status FlushTo(Lsn lsn) = 0;
};

class BufferManager;

// A pinned page. Move-only; unpins on destruction. Latching is explicit:
// callers acquire/release via latch() following the ordering rules of
// Section 6.5.
class PageRef {
 public:
  PageRef() : bm_(nullptr), frame_(SIZE_MAX), id_(kInvalidPageId) {}
  PageRef(PageRef&& o) noexcept { MoveFrom(&o); }
  PageRef& operator=(PageRef&& o) noexcept {
    if (this != &o) {
      Release();
      MoveFrom(&o);
    }
    return *this;
  }
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef() { Release(); }

  bool valid() const { return bm_ != nullptr; }
  PageId id() const { return id_; }

  char* data();
  const char* data() const;
  PageHeader* header() { return HeaderOf(data()); }
  const PageHeader* header() const { return HeaderOf(data()); }
  Latch& latch();

  // Marks the frame dirty. Call while holding the X latch, after modifying
  // the page and stamping its page_lsn.
  void MarkDirty();

  // Explicitly releases the pin (also done by the destructor).
  void Release();

 private:
  friend class BufferManager;
  PageRef(BufferManager* bm, size_t frame, PageId id)
      : bm_(bm), frame_(frame), id_(id) {}

  void MoveFrom(PageRef* o) {
    bm_ = o->bm_;
    frame_ = o->frame_;
    id_ = o->id_;
    o->bm_ = nullptr;
    o->frame_ = SIZE_MAX;
    o->id_ = kInvalidPageId;
  }

  BufferManager* bm_;
  size_t frame_;
  PageId id_;
};

class BufferManager {
 public:
  // `shards` must be a power of two, or 0 to pick automatically (scaled to
  // the pool: one shard per 16 frames, at most 8). Every shard gets an
  // equal slice of `pool_frames`; a shard whose frames are all pinned
  // reports NoSpace even if other shards have room, so shards are kept
  // large relative to the number of pages a single operation pins.
  BufferManager(Disk* disk, size_t pool_frames, size_t shards = 0);
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  void SetLogFlusher(LogFlusher* flusher) { log_flusher_ = flusher; }

  uint32_t page_size() const { return page_size_; }
  Disk* disk() { return disk_; }
  size_t pool_frames() const { return frames_.size(); }
  size_t num_shards() const { return shards_.size(); }

  // Pins the page, reading it from disk if absent.
  Status Fetch(PageId id, PageRef* out);

  // Pins a frame for a freshly allocated page without reading the disk
  // (free pages have no meaningful content). The buffer is zero-filled; the
  // caller formats it. Any stale cached frame for this id is replaced.
  Status Create(PageId id, PageRef* out);

  // Writes the page back if dirty (honoring the WAL constraint). The page
  // stays cached.
  Status FlushPage(PageId id);

  // Flushes all dirty pages.
  Status FlushAll();

  // Forced write of a specific set of pages. Physically contiguous ids are
  // grouped into transfers of up to io_pages pages each (io_pages >= 1,
  // and at most pool_frames(): the run buffer must not exceed the pool).
  Status FlushPages(const std::vector<PageId>& ids, uint32_t io_pages);

  // Read-ahead: pulls the physically contiguous run [first, first+count)
  // into frames with one multi-page disk transfer. Pages already cached
  // keep their (possibly newer) frame; the staged copy is dropped. Pages
  // are left unpinned. Best-effort: if the target shard has no evictable
  // frame the remaining pages are simply not cached. count must not
  // exceed pool_frames().
  Status Prefetch(PageId first, uint32_t count);

  // Drops a (clean or dirty) page from the cache without writing it. Used
  // when a page transitions to the free state — its content is dead. The
  // page must be unpinned.
  void Discard(PageId id);

  // Background write-back: a dedicated worker cleans dirty frames off the
  // foreground path. Evictions prefer clean victims and hand dirty frames
  // they scan past to the worker (so the next eviction finds them clean),
  // and FlushAll routes its dirty set through the worker as one batch with
  // a completion barrier. The WAL-before-data constraint is preserved: the
  // worker flushes the log to the page's LSN before writing, exactly like
  // the inline path. Start after SetLogFlusher; Stop drains the queue and
  // joins (callers must stop the worker before the log flusher dies).
  void StartWriteBack();
  void StopWriteBack();

  // Crash simulation: discards every frame without writing anything. All
  // pages must be unpinned. Cancels queued background write-backs and waits
  // out any in-progress one first (its write may still reach the disk — a
  // real crash races the same way; recovery handles it).
  void DropAll();

  // Test hook: number of distinct pages currently cached.
  size_t CachedPages() const;

 private:
  friend class PageRef;

  struct Frame {
    PageId page_id = kInvalidPageId;
    uint32_t pin_count = 0;         // guarded by the shard mutex
    std::atomic<bool> dirty{false}; // lock-free: set by MarkDirty
    bool loading = false;           // I/O in progress; guarded by shard mutex
    // A flusher holds a parked snapshot of this page (guarded by the shard
    // mutex; always held together with a pin). At most one flusher may be
    // between snapshot and disk write per page: the snapshot→write span
    // blocks on a WAL flush, and a second flusher slipping a newer image
    // onto disk inside that span would let the first WRITE REGRESS the
    // disk image — fatal after a checkpoint has bounded the redo scan on
    // the newer image being durable.
    bool flushing = false;
    bool ref = false;               // clock reference bit
    Latch latch;
    std::unique_ptr<char[]> data;
  };

  // One partition of the pool: owns frames [start, start+count) of frames_.
  // start and count are fixed at construction; everything else is guarded
  // by the shard mutex. The Frame fields themselves cannot carry
  // OIR_GUARDED_BY: which shard guards a frame is a dynamic property of the
  // page currently mapped into it (frames are reached through the shard's
  // table), which the static analysis cannot name.
  struct Shard {
    mutable Mutex mu;
    CondVar cv;
    // Skip notify when zero.
    size_t cv_waiters OIR_GUARDED_BY(mu) = 0;
    // id -> global frame index.
    std::unordered_map<PageId, size_t> table OIR_GUARDED_BY(mu);
    // Global frame indices.
    std::vector<size_t> free_list OIR_GUARDED_BY(mu);
    size_t start = 0;
    size_t count = 0;
    // Local offset within [start, start+count).
    size_t clock_hand OIR_GUARDED_BY(mu) = 0;
  };

  Shard& ShardOf(PageId id) {
    // Multiplicative hash (odd constant => a bijection on the low bits):
    // contiguous page runs spread across shards.
    return shards_[(id * 2654435761u) & shard_mask_];
  }

  static void WaitOn(Shard& s) OIR_REQUIRES(s.mu) {
    ++s.cv_waiters;
    // Shard CV waits are waits on another thread's I/O (frame loading, a
    // flushing claim, pins draining ahead of reuse).
    obs::WaitScope ws(obs::WaitState::kIoWait);
    s.cv.Wait(s.mu);
    --s.cv_waiters;
  }
  static void NotifyAll(Shard& s) OIR_REQUIRES(s.mu) {
    if (s.cv_waiters != 0) s.cv.NotifyAll();
  }

  void Unpin(size_t frame, PageId id);

  // Finds a frame to (re)use in `shard`. Called with the shard mutex held;
  // may release and reacquire it around eviction I/O (it is held again on
  // every return path). On success the frame is marked loading with
  // pin_count 1 and mapped to `for_page`.
  Status AllocateFrameLocked(Shard& shard, PageId for_page, size_t* out_frame)
      OIR_REQUIRES(shard.mu);

  // Writes the frame's page to disk (WAL constraint honored). The frame's
  // latch is taken in S mode internally to get a consistent image. Must be
  // called without holding the shard mutex and with the frame protected
  // from reuse (pinned or loading).
  Status WriteBack(size_t frame);

  // ---- background write-back ----
  // A FlushAll barrier: one batch per call, completed when every page of
  // the batch has been processed (or the batch was canceled).
  struct WbBatch {
    size_t remaining OIR_GUARDED_BY(wb_mu_) = 0;
    Status status OIR_GUARDED_BY(wb_mu_);
  };
  struct WbItem {
    PageId id = kInvalidPageId;
    WbBatch* batch = nullptr;  // null for eviction-triggered items
  };
  void WriteBackLoop();
  // Dedup'd enqueue for the eviction path; no-op when the worker is off.
  // Takes wb_mu_ internally — safe with a shard mutex held (the worker
  // never holds wb_mu_ while taking a shard mutex).
  void EnqueueWriteBack(PageId id);
  // Drops queued items and waits for the in-flight one; leaves the worker
  // running. Canceled batch waiters see Busy.
  void CancelWriteBack();
  bool wb_running() const { return wb_thread_.joinable(); }

  Disk* const disk_;
  const uint32_t page_size_;
  LogFlusher* log_flusher_ = nullptr;

  std::deque<Frame> frames_;
  std::deque<Shard> shards_;
  uint32_t shard_mask_ = 0;  // num shards - 1 (power of two)

  mutable Mutex wb_mu_;
  CondVar wb_cv_;       // wakes the worker
  CondVar wb_done_cv_;  // wakes batch waiters and CancelWriteBack
  std::deque<WbItem> wb_queue_ OIR_GUARDED_BY(wb_mu_);
  // Ids with a pending eviction-triggered item (batch items may duplicate).
  std::unordered_set<PageId> wb_queued_ids_ OIR_GUARDED_BY(wb_mu_);
  size_t wb_in_progress_ OIR_GUARDED_BY(wb_mu_) = 0;
  bool wb_stop_ OIR_GUARDED_BY(wb_mu_) = false;
  // Started/joined from the owner's single-threaded setup/teardown.
  std::thread wb_thread_;
};

}  // namespace oir

#endif  // OIR_STORAGE_BUFFER_MANAGER_H_
