#ifndef OIR_STORAGE_DISK_H_
#define OIR_STORAGE_DISK_H_

// Disk abstraction. The paper ran on real disks of a Sun Ultra-SPARC; we
// substitute an abstraction with a memory-backed implementation (MemDisk,
// used by tests and benchmarks for determinism) and a POSIX-file-backed one
// (FileDisk). Both count I/O operations and support multi-page transfers so
// the Section 6.3 experiment (large-buffer I/O reduces the number of disk
// operations) can be reproduced: a ReadMulti/WriteMulti of n pages counts as
// a single I/O op, the way a 16 KB buffer-pool I/O did in ASE.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sync/mutex.h"

#include "util/counters.h"
#include "util/status.h"
#include "util/types.h"

namespace oir {

class Disk {
 public:
  explicit Disk(uint32_t page_size) : page_size_(page_size) {}
  virtual ~Disk() = default;

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  uint32_t page_size() const { return page_size_; }

  // Reads/writes one page. `buf` must hold page_size() bytes.
  Status ReadPage(PageId id, char* buf) { return ReadMulti(id, 1, buf); }
  Status WritePage(PageId id, const char* buf) {
    return WriteMulti(id, 1, buf);
  }

  // Transfers `n` contiguous pages starting at `first` as a single I/O op.
  virtual Status ReadMulti(PageId first, uint32_t n, char* buf) = 0;
  virtual Status WriteMulti(PageId first, uint32_t n, const char* buf) = 0;

  // Read-path mirror of the multi-page forced write: one transfer covering
  // a contiguous run. Used by BufferManager::Prefetch for rebuild
  // read-ahead (the Section 6.3 large-buffer discipline, applied to reads).
  Status ReadPages(PageId first, uint32_t n, char* buf) {
    return ReadMulti(first, n, buf);
  }

  // Durability barrier.
  virtual Status Sync() = 0;

  // Capacity in pages; Extend grows the device (zero-filled).
  virtual uint32_t NumPages() const = 0;
  virtual Status Extend(uint32_t new_num_pages) = 0;

 protected:
  void CountIo(uint32_t pages, bool write) {
    auto& c = GlobalCounters::Get();
    c.io_ops.fetch_add(1, std::memory_order_relaxed);
    if (write) {
      c.io_write_ops.fetch_add(1, std::memory_order_relaxed);
      c.pages_written.fetch_add(pages, std::memory_order_relaxed);
    } else {
      c.io_read_ops.fetch_add(1, std::memory_order_relaxed);
      c.pages_read.fetch_add(pages, std::memory_order_relaxed);
    }
  }

  const uint32_t page_size_;
};

// In-memory disk. Supports crash simulation: the buffer pool is discarded by
// the caller while MemDisk retains only what was explicitly written — the
// same durability contract as a real device.
class MemDisk : public Disk {
 public:
  MemDisk(uint32_t page_size, uint32_t initial_pages);

  Status ReadMulti(PageId first, uint32_t n, char* buf) override;
  Status WriteMulti(PageId first, uint32_t n, const char* buf) override;
  Status Sync() override;
  uint32_t NumPages() const override;
  Status Extend(uint32_t new_num_pages) override;

 private:
  mutable Mutex mu_;
  std::vector<char> data_ OIR_GUARDED_BY(mu_);
  uint32_t num_pages_ OIR_GUARDED_BY(mu_);
};

// POSIX file-backed disk.
class FileDisk : public Disk {
 public:
  // Creates/opens `path`. Existing contents are preserved.
  static Status Open(const std::string& path, uint32_t page_size,
                     std::unique_ptr<FileDisk>* out);
  ~FileDisk() override;

  Status ReadMulti(PageId first, uint32_t n, char* buf) override;
  Status WriteMulti(PageId first, uint32_t n, const char* buf) override;
  Status Sync() override;
  uint32_t NumPages() const override;
  Status Extend(uint32_t new_num_pages) override;

 private:
  FileDisk(int fd, uint32_t page_size, uint32_t num_pages);

  const int fd_;
  mutable Mutex mu_;
  uint32_t num_pages_ OIR_GUARDED_BY(mu_);
};

}  // namespace oir

#endif  // OIR_STORAGE_DISK_H_
