#include "storage/slotted_page.h"

#include <cstring>
#include <vector>

namespace oir {

void SlottedPage::Init(PageId page_id, uint16_t level) {
  std::memset(data_, 0, page_size_);
  PageHeader* h = header();
  h->page_id = page_id;
  h->page_lsn = kInvalidLsn;
  h->prev_page = kInvalidPageId;
  h->next_page = kInvalidPageId;
  h->level = level;
  h->flags = 0;
  h->nslots = 0;
  h->free_ptr = static_cast<uint16_t>(kPageHeaderSize);
  h->garbage = 0;
}

char* SlottedPage::SlotEntryPtr(SlotId pos) const {
  return data_ + page_size_ - kSlotSize * (pos + 1);
}

uint16_t SlottedPage::SlotOffset(SlotId pos) const {
  uint16_t v;
  std::memcpy(&v, SlotEntryPtr(pos), sizeof(v));
  return v;
}

uint16_t SlottedPage::SlotLength(SlotId pos) const {
  uint16_t v;
  std::memcpy(&v, SlotEntryPtr(pos) + 2, sizeof(v));
  return v;
}

void SlottedPage::SetSlot(SlotId pos, uint16_t offset, uint16_t length) {
  std::memcpy(SlotEntryPtr(pos), &offset, sizeof(offset));
  std::memcpy(SlotEntryPtr(pos) + 2, &length, sizeof(length));
}

Slice SlottedPage::Get(SlotId pos) const {
  OIR_DCHECK(pos < nslots());
  return Slice(data_ + SlotOffset(pos), SlotLength(pos));
}

uint32_t SlottedPage::ContiguousFreeSpace() const {
  const PageHeader* h = header();
  uint32_t dir_start = page_size_ - kSlotSize * h->nslots;
  OIR_DCHECK(dir_start >= h->free_ptr);
  return dir_start - h->free_ptr;
}

uint32_t SlottedPage::FreeSpace() const {
  return ContiguousFreeSpace() + header()->garbage;
}

uint32_t SlottedPage::UsedSpace() const {
  const PageHeader* h = header();
  return (h->free_ptr - kPageHeaderSize) - h->garbage +
         kSlotSize * h->nslots;
}

bool SlottedPage::InsertAt(SlotId pos, const Slice& row) {
  PageHeader* h = header();
  OIR_DCHECK(pos <= h->nslots);
  const uint32_t need = static_cast<uint32_t>(row.size()) + kSlotSize;
  if (ContiguousFreeSpace() < need) {
    if (FreeSpace() < need) return false;
    Compact();
    if (ContiguousFreeSpace() < need) return false;
  }
  // Shift slot entries at >= pos up by one position (their memory moves
  // down by kSlotSize since the directory grows downward).
  char* dir_start = data_ + page_size_ - kSlotSize * h->nslots;
  const uint32_t move_count = h->nslots - pos;
  if (move_count > 0) {
    std::memmove(dir_start - kSlotSize, dir_start, kSlotSize * move_count);
  }
  ++h->nslots;
  // Write the row bytes at free_ptr.
  std::memcpy(data_ + h->free_ptr, row.data(), row.size());
  SetSlot(pos, h->free_ptr, static_cast<uint16_t>(row.size()));
  h->free_ptr = static_cast<uint16_t>(h->free_ptr + row.size());
  return true;
}

void SlottedPage::DeleteAt(SlotId pos) {
  PageHeader* h = header();
  OIR_DCHECK(pos < h->nslots);
  const uint16_t len = SlotLength(pos);
  const uint16_t off = SlotOffset(pos);
  // If this row is the last physically, reclaim it directly; otherwise it
  // becomes garbage. Zero-length rows can share the boundary offset, so
  // reclaiming also requires that no other slot points at or above `off`.
  bool reclaim = static_cast<uint32_t>(off) + len == h->free_ptr;
  if (reclaim) {
    for (SlotId i = 0; i < h->nslots; ++i) {
      if (i != pos && SlotOffset(i) >= off) {
        reclaim = false;
        break;
      }
    }
  }
  if (reclaim) {
    h->free_ptr = off;
  } else {
    h->garbage = static_cast<uint16_t>(h->garbage + len);
  }
  // Shift slot entries above pos down by one position.
  char* dir_start = data_ + page_size_ - kSlotSize * h->nslots;
  const uint32_t move_count = h->nslots - pos - 1;
  if (move_count > 0) {
    // Entries for slots pos+1 .. nslots-1 occupy the memory range
    // [dir_start, SlotEntryPtr(pos)); move them up by kSlotSize.
    std::memmove(dir_start + kSlotSize, dir_start, kSlotSize * move_count);
  }
  --h->nslots;
}

bool SlottedPage::ReplaceAt(SlotId pos, const Slice& row) {
  PageHeader* h = header();
  OIR_DCHECK(pos < h->nslots);
  const uint16_t old_len = SlotLength(pos);
  if (row.size() <= old_len) {
    const uint16_t off = SlotOffset(pos);
    std::memcpy(data_ + off, row.data(), row.size());
    h->garbage = static_cast<uint16_t>(h->garbage + old_len - row.size());
    SetSlot(pos, off, static_cast<uint16_t>(row.size()));
    return true;
  }
  // Need more space: remove then reinsert, restoring on failure.
  std::string saved = Get(pos).ToString();
  DeleteAt(pos);
  if (InsertAt(pos, row)) return true;
  OIR_CHECK(InsertAt(pos, Slice(saved)));
  return false;
}

void SlottedPage::Compact() {
  PageHeader* h = header();
  std::vector<std::string> rows;
  rows.reserve(h->nslots);
  for (SlotId i = 0; i < h->nslots; ++i) rows.push_back(Get(i).ToString());
  uint16_t fp = static_cast<uint16_t>(kPageHeaderSize);
  for (SlotId i = 0; i < h->nslots; ++i) {
    std::memcpy(data_ + fp, rows[i].data(), rows[i].size());
    SetSlot(i, fp, static_cast<uint16_t>(rows[i].size()));
    fp = static_cast<uint16_t>(fp + rows[i].size());
  }
  h->free_ptr = fp;
  h->garbage = 0;
}

bool SlottedPage::Validate() const {
  const PageHeader* h = header();
  if (h->free_ptr < kPageHeaderSize || h->free_ptr > page_size_) return false;
  uint32_t dir_start = page_size_ - kSlotSize * h->nslots;
  if (dir_start < h->free_ptr) return false;
  uint32_t live_bytes = 0;
  for (SlotId i = 0; i < h->nslots; ++i) {
    uint32_t off = SlotOffset(i);
    uint32_t len = SlotLength(i);
    if (off < kPageHeaderSize || off + len > h->free_ptr) return false;
    live_bytes += len;
  }
  // garbage accounts for all dead bytes in the row area.
  uint32_t row_area = h->free_ptr - kPageHeaderSize;
  if (live_bytes + h->garbage != row_area) return false;
  return true;
}

}  // namespace oir
