#ifndef OIR_STORAGE_PAGE_H_
#define OIR_STORAGE_PAGE_H_

// On-page layout: every page starts with a fixed PageHeader followed by a
// slotted row area. The slot directory grows down from the end of the page;
// row bytes grow up from the header. Slots are kept dense: deleting slot i
// shifts slots > i down by one, so slot indexes are the "positions" that
// physiological log records (insert / delete / keycopy) refer to.
//
// The header carries the concurrency-control flags of the paper:
//   SPLIT        — page is part of an in-flight split top action; writers
//                  must block (readers may proceed). Section 2.2.
//   SHRINK       — page is part of an in-flight shrink / rebuild top action;
//                  both readers and writers must block. Section 2.4.
//   OLDPGOFSPLIT — the page has a valid side entry directing traversals for
//                  keys >= sidekey to its new right sibling. Section 2.3.

#include <cstdint>
#include <cstring>

#include "util/types.h"

namespace oir {

// Default page size matches the paper's experiments (Section 6.4).
constexpr uint32_t kDefaultPageSize = 2048;
constexpr uint32_t kMinPageSize = 512;
constexpr uint32_t kMaxPageSize = 65536;

// Page flag bits.
constexpr uint16_t kFlagSplit = 1u << 0;
constexpr uint16_t kFlagShrink = 1u << 1;
constexpr uint16_t kFlagOldPgOfSplit = 1u << 2;

// Level of leaf pages; level 1 is immediately above the leaf level.
constexpr uint16_t kLeafLevel = 0;
// Marker for pages that do not belong to a B+-tree (metadata, unformatted).
constexpr uint16_t kInvalidLevel = 0xffff;

#pragma pack(push, 1)
struct PageHeader {
  PageId page_id;    // 4  own page number (sanity checking)
  Lsn page_lsn;      // 8  LSN of last update; doubles as the page timestamp
                     //    recorded in keycopy log records (Section 3)
  PageId prev_page;  // 4  leaf chain (leaves are doubly linked; Section 1)
  PageId next_page;  // 4
  uint16_t level;    // 2  0 = leaf; non-leaf pages are not linked
  uint16_t flags;    // 2  SPLIT / SHRINK / OLDPGOFSPLIT
  uint16_t nslots;   // 2  number of rows
  uint16_t free_ptr; // 2  offset of first unused byte after the row area
  uint16_t garbage;  // 2  bytes reclaimable by compaction
  uint16_t unused;   // 2  padding / future use
};
#pragma pack(pop)

constexpr uint32_t kPageHeaderSize = sizeof(PageHeader);
static_assert(kPageHeaderSize == 32, "page header layout changed");

// Each slot directory entry is [offset:2][length:2].
constexpr uint32_t kSlotSize = 4;

// The index metadata page: stores the root page id (fixed32 at
// kMetaRootOffset). The first B+-tree page is allocated at page 2.
constexpr PageId kMetaPageId = 1;
constexpr PageId kFirstDataPageId = 2;
constexpr uint32_t kMetaRootOffset = kPageHeaderSize;

inline PageHeader* HeaderOf(char* page) {
  return reinterpret_cast<PageHeader*>(page);
}
inline const PageHeader* HeaderOf(const char* page) {
  return reinterpret_cast<const PageHeader*>(page);
}

}  // namespace oir

#endif  // OIR_STORAGE_PAGE_H_
