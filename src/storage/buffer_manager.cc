#include "storage/buffer_manager.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "obs/waitstate.h"
#include "testing/crash_point.h"
#include "util/counters.h"
#include "util/logging.h"

namespace oir {

char* PageRef::data() {
  OIR_DCHECK(valid());
  return bm_->frames_[frame_].data.get();
}

const char* PageRef::data() const {
  OIR_DCHECK(valid());
  return bm_->frames_[frame_].data.get();
}

Latch& PageRef::latch() {
  OIR_DCHECK(valid());
  return bm_->frames_[frame_].latch;
}

void PageRef::MarkDirty() {
  OIR_DCHECK(valid());
  bm_->frames_[frame_].dirty.store(true, std::memory_order_release);
}

void PageRef::Release() {
  if (bm_ != nullptr) {
    bm_->Unpin(frame_, id_);
    bm_ = nullptr;
    frame_ = SIZE_MAX;
    id_ = kInvalidPageId;
  }
}

BufferManager::BufferManager(Disk* disk, size_t pool_frames, size_t shards)
    : disk_(disk), page_size_(disk->page_size()) {
  OIR_CHECK(pool_frames >= 8);
  if (shards == 0) {
    // One shard per 16 frames, at most 8: shards stay large relative to
    // the handful of pages one operation pins at a time.
    shards = 1;
    while (shards < 8 && shards * 32 <= pool_frames) shards *= 2;
  }
  OIR_CHECK((shards & (shards - 1)) == 0 && shards <= pool_frames / 4);
  shard_mask_ = static_cast<uint32_t>(shards - 1);
  frames_.resize(pool_frames);
  for (size_t i = 0; i < pool_frames; ++i) {
    frames_[i].data.reset(new char[page_size_]);
  }
  shards_.resize(shards);
  size_t next = 0;
  for (size_t s = 0; s < shards; ++s) {
    Shard& sh = shards_[s];
    sh.start = next;
    sh.count = pool_frames / shards + (s < pool_frames % shards ? 1 : 0);
    next += sh.count;
    sh.free_list.reserve(sh.count);
    for (size_t i = 0; i < sh.count; ++i) {
      sh.free_list.push_back(sh.start + sh.count - 1 - i);
    }
  }
  OIR_CHECK(next == pool_frames);
}

BufferManager::~BufferManager() {
  StopWriteBack();
#ifndef NDEBUG
  for (Shard& sh : shards_) {
    MutexLock l(sh.mu);
    for (size_t i = sh.start; i < sh.start + sh.count; ++i) {
      OIR_DCHECK(frames_[i].pin_count == 0);
    }
  }
#endif
}

void BufferManager::Unpin(size_t frame, PageId id) {
  Shard& sh = ShardOf(id);
  MutexLock l(sh.mu);
  Frame& f = frames_[frame];
  OIR_CHECK(f.page_id == id && f.pin_count > 0);
  --f.pin_count;
  f.ref = true;
  if (f.pin_count == 0) NotifyAll(sh);
}

Status BufferManager::AllocateFrameLocked(Shard& sh, PageId for_page,
                                          size_t* out_frame) {
  auto& c = GlobalCounters::Get();
  for (;;) {
    if (!sh.free_list.empty()) {
      size_t idx = sh.free_list.back();
      sh.free_list.pop_back();
      Frame& f = frames_[idx];
      f.page_id = for_page;
      f.pin_count = 1;
      f.dirty.store(false, std::memory_order_relaxed);
      f.loading = true;
      f.ref = true;
      sh.table[for_page] = idx;
      *out_frame = idx;
      return Status::OK();
    }
    // Clock scan over this shard's frames for an evictable one. Clean
    // victims are preferred — evicting one needs no I/O and never drops the
    // shard mutex — and dirty frames scanned past are handed to the
    // background write-back worker so the next scan finds them clean. The
    // dirty fallback (inline write-back) remains for pools where every
    // evictable frame is dirty.
    size_t scanned = 0;
    size_t victim = SIZE_MAX;
    size_t dirty_victim = SIZE_MAX;
    int enqueued = 0;
    const bool async_wb = wb_running();
    while (scanned < 2 * sh.count) {
      size_t idx = sh.start + sh.clock_hand;
      Frame& f = frames_[idx];
      sh.clock_hand = (sh.clock_hand + 1) % sh.count;
      ++scanned;
      if (f.pin_count != 0 || f.loading) continue;
      const bool dirty = f.dirty.load(std::memory_order_acquire);
      if (dirty && async_wb && enqueued < 4) {
        EnqueueWriteBack(f.page_id);
        ++enqueued;
      }
      if (f.ref) {
        f.ref = false;
        continue;
      }
      if (!dirty) {
        victim = idx;
        break;
      }
      if (dirty_victim == SIZE_MAX) dirty_victim = idx;
    }
    if (victim == SIZE_MAX) victim = dirty_victim;
    if (victim == SIZE_MAX) {
      return Status::NoSpace("buffer pool exhausted: all frames pinned");
    }
    c.pool_evictions.fetch_add(1, std::memory_order_relaxed);
    OIR_CRASH_POINT("pool.evict");
    Frame& vf = frames_[victim];
    const PageId old_id = vf.page_id;
    // Claim the dirty bit before copying so a marker racing with the
    // write-back leaves the frame dirty again.
    const bool was_dirty = vf.dirty.exchange(false, std::memory_order_acquire);
    vf.loading = true;  // protect from concurrent use during write-back
    if (was_dirty) {
      sh.mu.Unlock();
      Status s = WriteBack(victim);
      sh.mu.Lock();
      if (!s.ok()) {
        vf.dirty.store(true, std::memory_order_release);
        vf.loading = false;
        NotifyAll(sh);
        return s;
      }
      if (sh.table.count(for_page) != 0) {
        // Another thread mapped `for_page` while we were writing back the
        // victim. Leave the (now clean) victim in place and tell the caller
        // to retry its lookup.
        vf.loading = false;
        NotifyAll(sh);
        return Status::Busy("fetch raced");
      }
    }
    sh.table.erase(old_id);
    vf.page_id = for_page;
    vf.pin_count = 1;
    vf.dirty.store(false, std::memory_order_relaxed);
    vf.loading = true;
    vf.ref = true;
    sh.table[for_page] = victim;
    *out_frame = victim;
    NotifyAll(sh);  // wake fetchers of old_id so they retry
    return Status::OK();
  }
}

Status BufferManager::WriteBack(size_t frame) {
  OIR_CRASH_POINT("pool.writeback.pre");
  Frame& f = frames_[frame];
  // Copy a consistent image under the S latch.
  std::unique_ptr<char[]> img(new char[page_size_]);
  f.latch.LockS();
  std::memcpy(img.get(), f.data.get(), page_size_);
  f.latch.UnlockS();
  const Lsn page_lsn = HeaderOf(img.get())->page_lsn;
  if (log_flusher_ != nullptr && page_lsn != kInvalidLsn) {
    OIR_RETURN_IF_ERROR(log_flusher_->FlushTo(page_lsn));
  }
  OIR_CRASH_POINT("pool.writeback.wal_flushed");
  GlobalCounters::Get().pool_writebacks.fetch_add(1,
                                                  std::memory_order_relaxed);
  {
    obs::WaitScope ws(obs::WaitState::kIoWait);
    OIR_RETURN_IF_ERROR(disk_->WritePage(f.page_id, img.get()));
  }
  OIR_CRASH_POINT("pool.writeback.post");
  return Status::OK();
}

Status BufferManager::Fetch(PageId id, PageRef* out) {
  OIR_CHECK(id != kInvalidPageId);
  static obs::TimerStat* const timer =
      obs::MetricRegistry::Get().Timer("pool.fetch_ns");
  obs::ScopedTimer scope(timer);
  auto& c = GlobalCounters::Get();
  Shard& sh = ShardOf(id);
  sh.mu.Lock();
  for (;;) {
    auto it = sh.table.find(id);
    if (it != sh.table.end()) {
      Frame& f = frames_[it->second];
      if (f.loading) {
        WaitOn(sh);
        continue;
      }
      ++f.pin_count;
      f.ref = true;
      c.pool_hits.fetch_add(1, std::memory_order_relaxed);
      *out = PageRef(this, it->second, id);
      sh.mu.Unlock();
      return Status::OK();
    }
    size_t frame;
    Status alloc = AllocateFrameLocked(sh, id, &frame);
    if (alloc.IsBusy()) continue;  // raced with another fetcher; retry
    if (!alloc.ok()) {
      sh.mu.Unlock();
      return alloc;
    }
    c.pool_misses.fetch_add(1, std::memory_order_relaxed);
    // Frame is mapped to `id`, pinned once, loading=true. Do the read
    // without the shard mutex.
    sh.mu.Unlock();
    Status s;
    {
      obs::WaitScope ws(obs::WaitState::kIoWait);
      s = disk_->ReadPage(id, frames_[frame].data.get());
    }
    sh.mu.Lock();
    Frame& f = frames_[frame];
    f.loading = false;
    NotifyAll(sh);
    if (!s.ok()) {
      // Undo: unmap and free the frame.
      --f.pin_count;
      OIR_CHECK(f.pin_count == 0);
      sh.table.erase(id);
      f.page_id = kInvalidPageId;
      sh.free_list.push_back(frame);
      sh.mu.Unlock();
      return s;
    }
    *out = PageRef(this, frame, id);
    sh.mu.Unlock();
    return Status::OK();
  }
}

Status BufferManager::Create(PageId id, PageRef* out) {
  OIR_CHECK(id != kInvalidPageId);
  Shard& sh = ShardOf(id);
  MutexLock lk(sh.mu);
  for (;;) {
    auto it = sh.table.find(id);
    if (it != sh.table.end()) {
      Frame& f = frames_[it->second];
      if (f.loading) {
        WaitOn(sh);
        continue;
      }
      // Stale cached copy of a previously freed page: reuse the frame once
      // any lingering reader pins drain.
      if (f.pin_count != 0) {
        WaitOn(sh);
        continue;
      }
      ++f.pin_count;
      f.ref = true;
      f.dirty.store(false, std::memory_order_relaxed);
      std::memset(f.data.get(), 0, page_size_);
      *out = PageRef(this, it->second, id);
      return Status::OK();
    }
    size_t frame;
    Status alloc = AllocateFrameLocked(sh, id, &frame);
    if (alloc.IsBusy()) continue;  // raced with another fetcher; retry
    OIR_RETURN_IF_ERROR(alloc);
    Frame& f = frames_[frame];
    std::memset(f.data.get(), 0, page_size_);
    f.loading = false;
    NotifyAll(sh);
    *out = PageRef(this, frame, id);
    return Status::OK();
  }
}

Status BufferManager::FlushPage(PageId id) {
  Shard& sh = ShardOf(id);
  sh.mu.Lock();
  for (;;) {
    auto it = sh.table.find(id);
    if (it == sh.table.end()) {
      sh.mu.Unlock();
      return Status::OK();
    }
    size_t frame = it->second;
    Frame& f = frames_[frame];
    if (f.loading || f.flushing) {
      WaitOn(sh);
      continue;  // frame may have been remapped while we waited
    }
    if (!f.dirty.exchange(false, std::memory_order_acquire)) {
      sh.mu.Unlock();
      return Status::OK();
    }
    ++f.pin_count;  // keep the frame stable during write-back
    f.flushing = true;
    sh.mu.Unlock();
    Status s = WriteBack(frame);
    sh.mu.Lock();
    if (!s.ok()) f.dirty.store(true, std::memory_order_release);
    f.flushing = false;
    --f.pin_count;
    NotifyAll(sh);  // wake pin- and flushing-claim waiters
    sh.mu.Unlock();
    return s;
  }
}

Status BufferManager::FlushAll() {
  std::vector<PageId> ids;
  for (Shard& sh : shards_) {
    MutexLock l(sh.mu);
    for (const auto& [id, frame] : sh.table) {
      if (frames_[frame].dirty.load(std::memory_order_acquire)) {
        ids.push_back(id);
      }
    }
  }
  if (ids.empty()) return Status::OK();
  if (wb_running()) {
    // Route the dirty set through the write-back worker as one batch and
    // wait on its barrier: checkpoints share the queue (and the dedup)
    // with eviction-triggered cleaning instead of competing with it.
    WbBatch batch;
    {
      MutexLock l(wb_mu_);
      if (!wb_stop_) {
        batch.remaining = ids.size();
        for (PageId id : ids) {
          wb_queue_.push_back(WbItem{id, &batch});
        }
        GlobalCounters::Get().pool_wb_enqueued.fetch_add(
            ids.size(), std::memory_order_relaxed);
        wb_cv_.NotifyAll();
        obs::WaitScope ws(obs::WaitState::kIoWait);
        while (batch.remaining != 0) {
          wb_done_cv_.Wait(wb_mu_);
        }
        return batch.status;
      }
    }
  }
  for (PageId id : ids) {
    OIR_RETURN_IF_ERROR(FlushPage(id));
  }
  return Status::OK();
}

void BufferManager::StartWriteBack() {
  if (wb_thread_.joinable()) return;
  {
    MutexLock l(wb_mu_);
    wb_stop_ = false;
  }
  wb_thread_ = std::thread([this] { WriteBackLoop(); });
}

void BufferManager::StopWriteBack() {
  if (!wb_thread_.joinable()) return;
  {
    MutexLock l(wb_mu_);
    wb_stop_ = true;
  }
  wb_cv_.NotifyAll();
  wb_thread_.join();
}

void BufferManager::EnqueueWriteBack(PageId id) {
  MutexLock l(wb_mu_);
  if (wb_stop_) return;
  if (!wb_queued_ids_.insert(id).second) return;  // already queued
  OIR_CRASH_POINT("pool.wb.enqueue");
  wb_queue_.push_back(WbItem{id, nullptr});
  GlobalCounters::Get().pool_wb_enqueued.fetch_add(1,
                                                   std::memory_order_relaxed);
  wb_cv_.NotifyOne();
}

void BufferManager::CancelWriteBack() {
  if (!wb_thread_.joinable()) return;
  MutexLock l(wb_mu_);
  while (!wb_queue_.empty()) {
    WbItem item = wb_queue_.front();
    wb_queue_.pop_front();
    if (item.batch != nullptr) {
      if (item.batch->status.ok()) {
        item.batch->status = Status::Busy("write-back canceled");
      }
      if (--item.batch->remaining == 0) wb_done_cv_.NotifyAll();
    } else {
      wb_queued_ids_.erase(item.id);
    }
  }
  obs::WaitScope ws(obs::WaitState::kIoWait);
  while (wb_in_progress_ != 0) {
    wb_done_cv_.Wait(wb_mu_);
  }
}

void BufferManager::WriteBackLoop() {
  auto& c = GlobalCounters::Get();
  for (;;) {
    WbItem item;
    {
      MutexLock l(wb_mu_);
      while (wb_queue_.empty() && !wb_stop_) {
        wb_cv_.Wait(wb_mu_);  // wait-state: write-back worker idle
      }
      // Drain the queue before honoring stop: pending eviction write-backs
      // finish while the log flusher is still alive.
      if (wb_queue_.empty()) return;
      item = wb_queue_.front();
      wb_queue_.pop_front();
      if (item.batch == nullptr) wb_queued_ids_.erase(item.id);
      ++wb_in_progress_;
    }
    OIR_CRASH_POINT("pool.wb.write");
    // FlushPage claims the dirty bit under the shard mutex, pins the frame,
    // and honors WAL-before-data; a page evicted or cleaned since it was
    // queued is a cheap no-op.
    Status s = FlushPage(item.id);
    if (s.ok()) {
      c.pool_wb_async_writes.fetch_add(1, std::memory_order_relaxed);
    }
    {
      MutexLock l(wb_mu_);
      --wb_in_progress_;
      if (item.batch != nullptr) {
        if (!s.ok() && item.batch->status.ok()) item.batch->status = s;
        if (--item.batch->remaining == 0) wb_done_cv_.NotifyAll();
      }
      if (wb_in_progress_ == 0) wb_done_cv_.NotifyAll();
    }
  }
}

Status BufferManager::FlushPages(const std::vector<PageId>& ids,
                                 uint32_t io_pages) {
  if (io_pages < 1 || io_pages > frames_.size()) {
    return Status::InvalidArgument("io_pages outside [1, pool_frames]");
  }
  std::vector<PageId> sorted(ids);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  std::unique_ptr<char[]> run_buf(new char[static_cast<size_t>(io_pages) *
                                           page_size_]);
  size_t i = 0;
  while (i < sorted.size()) {
    // Build a physically contiguous run of up to io_pages dirty pages. Each
    // page's flushing claim (and pin) is held from its snapshot until the
    // run's WriteMulti lands: the WAL flush below can block for a group-
    // commit round, and another flusher writing a newer image inside that
    // window would make our parked snapshot regress the disk image once it
    // finally lands — silently losing the in-between updates if a
    // checkpoint bounded the redo scan in the meantime. Claims are taken in
    // ascending page order, so concurrent FlushPages calls cannot deadlock.
    uint32_t run_len = 0;
    Lsn max_lsn = kInvalidLsn;
    PageId run_start = sorted[i];
    std::vector<std::pair<size_t, PageId>> claimed;  // (frame, page)
    auto release_run = [&](bool wrote) {
      for (const auto& [fidx, pid] : claimed) {
        Shard& csh = ShardOf(pid);
        MutexLock l(csh.mu);
        if (!wrote) {
          // The claimed content never reached disk: restore the dirty bit
          // so a later flush retries it.
          frames_[fidx].dirty.store(true, std::memory_order_release);
        }
        frames_[fidx].flushing = false;
        --frames_[fidx].pin_count;
        NotifyAll(csh);
      }
      claimed.clear();
    };
    while (i < sorted.size() && run_len < io_pages &&
           sorted[i] == run_start + run_len) {
      PageId id = sorted[i];
      Shard& sh = ShardOf(id);
      sh.mu.Lock();
      size_t frame = SIZE_MAX;
      for (;;) {
        auto it = sh.table.find(id);
        if (it == sh.table.end()) break;
        if (frames_[it->second].loading || frames_[it->second].flushing) {
          WaitOn(sh);
          continue;  // re-find: frame may have been remapped
        }
        frame = it->second;
        break;
      }
      if (frame == SIZE_MAX) {
        // Not cached (already written back or evicted). Break the run here
        // so disk offsets stay aligned.
        sh.mu.Unlock();
        if (run_len == 0) {
          ++i;
          run_start = i < sorted.size() ? sorted[i] : kInvalidPageId;
          continue;
        }
        break;
      }
      Frame& fr = frames_[frame];
      ++fr.pin_count;  // held with the claim until the run is written
      fr.flushing = true;
      fr.dirty.store(false, std::memory_order_relaxed);  // claimed below
      sh.mu.Unlock();
      fr.latch.LockS();
      std::memcpy(run_buf.get() + static_cast<size_t>(run_len) * page_size_,
                  fr.data.get(), page_size_);
      fr.latch.UnlockS();
      Lsn lsn = HeaderOf(run_buf.get() +
                         static_cast<size_t>(run_len) * page_size_)
                    ->page_lsn;
      max_lsn = std::max(max_lsn, lsn);
      claimed.emplace_back(frame, id);
      ++run_len;
      ++i;
    }
    if (run_len == 0) continue;
    OIR_CRASH_POINT("pool.flushpages.run");
    if (log_flusher_ != nullptr && max_lsn != kInvalidLsn) {
      Status s = log_flusher_->FlushTo(max_lsn);
      if (!s.ok()) {
        release_run(/*wrote=*/false);
        return s;
      }
    }
    OIR_CRASH_POINT("pool.flushpages.wal_flushed");
    GlobalCounters::Get().pool_writebacks.fetch_add(
        run_len, std::memory_order_relaxed);
    Status s;
    {
      obs::WaitScope ws(obs::WaitState::kIoWait);
      s = disk_->WriteMulti(run_start, run_len, run_buf.get());
    }
    release_run(/*wrote=*/s.ok());
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status BufferManager::Prefetch(PageId first, uint32_t count) {
  // Same guard as FlushPages' io_pages: the staged run must fit the pool.
  if (count < 1 || count > frames_.size()) {
    return Status::InvalidArgument("prefetch run outside [1, pool_frames]");
  }
  if (first == kInvalidPageId || first >= disk_->NumPages()) {
    return Status::InvalidArgument("prefetch of invalid page");
  }
  // Read-ahead is speculative, so a run overshooting the device is
  // trimmed, not an error.
  count = std::min(count, disk_->NumPages() - first);

  // Reserve frames for the non-resident pages BEFORE touching the disk.
  // The reservations sit in the page tables with loading=true, so a
  // concurrent fetcher of one of these pages blocks on `loading` instead
  // of issuing its own read — and, crucially, no writer can slip a newer
  // image into the pool between our disk read and the copy-out below
  // (modifying a page requires fetching it first). Resident pages are
  // skipped: the cached copy wins.
  struct Slot {
    PageId id;
    size_t frame;
    uint32_t off;  // page offset inside the staging buffer
  };
  std::vector<Slot> slots;
  slots.reserve(count);
  auto undo = [&](Status why) {
    for (const Slot& s : slots) {
      Shard& sh = ShardOf(s.id);
      MutexLock l(sh.mu);
      Frame& f = frames_[s.frame];
      sh.table.erase(s.id);
      f.page_id = kInvalidPageId;
      f.pin_count = 0;
      f.loading = false;
      sh.free_list.push_back(s.frame);
      NotifyAll(sh);
    }
    return why;
  };
  for (uint32_t i = 0; i < count; ++i) {
    const PageId id = first + i;
    Shard& sh = ShardOf(id);
    sh.mu.Lock();
    if (sh.table.count(id) != 0) {  // cached copy wins: skip
      sh.mu.Unlock();
      continue;
    }
    size_t frame;
    Status alloc = AllocateFrameLocked(sh, id, &frame);
    sh.mu.Unlock();
    if (alloc.IsBusy()) continue;     // another thread just mapped it
    if (alloc.IsNoSpace()) continue;  // best-effort: shard full of pins
    // Unlock before undo(): it takes the shard mutex of every reserved
    // slot, which can include this very shard.
    if (!alloc.ok()) return undo(alloc);
    slots.push_back(Slot{id, frame, i});
  }
  if (slots.empty()) return Status::OK();  // fully resident: no I/O at all

  // One large transfer covering the whole span (resident gaps are read
  // into the staging buffer and simply not copied out), then distribute.
  std::unique_ptr<char[]> stage(
      new char[static_cast<size_t>(count) * page_size_]);
  Status rs;
  {
    obs::WaitScope ws(obs::WaitState::kIoWait);
    rs = disk_->ReadPages(first, count, stage.get());
  }
  if (!rs.ok()) return undo(rs);
  auto& c = GlobalCounters::Get();
  for (const Slot& s : slots) {
    // Frame is mapped, pinned once, loading=true: stable without the lock.
    std::memcpy(frames_[s.frame].data.get(),
                stage.get() + static_cast<size_t>(s.off) * page_size_,
                page_size_);
    Shard& sh = ShardOf(s.id);
    MutexLock l(sh.mu);
    Frame& f = frames_[s.frame];
    f.loading = false;
    f.pin_count = 0;
    c.pool_prefetched.fetch_add(1, std::memory_order_relaxed);
    NotifyAll(sh);
  }
  return Status::OK();
}

void BufferManager::Discard(PageId id) {
  Shard& sh = ShardOf(id);
  MutexLock lk(sh.mu);
  for (;;) {
    auto it = sh.table.find(id);
    if (it == sh.table.end()) return;
    Frame& f = frames_[it->second];
    if (f.loading || f.pin_count != 0) {
      // A reader (e.g. a scan repositioning itself) may hold a short pin on
      // a page being freed; wait for it to drain.
      WaitOn(sh);
      continue;
    }
    f.dirty.store(false, std::memory_order_relaxed);
    f.page_id = kInvalidPageId;
    sh.free_list.push_back(it->second);
    sh.table.erase(it);
    return;
  }
}

void BufferManager::DropAll() {
  // Queued write-backs must not run against the post-crash pool (and an
  // in-progress one holds a pin, which the loop below forbids).
  CancelWriteBack();
  for (Shard& sh : shards_) {
    MutexLock l(sh.mu);
    for (auto& [id, frame] : sh.table) {
      Frame& f = frames_[frame];
      OIR_CHECK(f.pin_count == 0 && !f.loading);
      f.dirty.store(false, std::memory_order_relaxed);
      f.page_id = kInvalidPageId;
      sh.free_list.push_back(frame);
    }
    sh.table.clear();
  }
}

size_t BufferManager::CachedPages() const {
  size_t total = 0;
  for (const Shard& sh : shards_) {
    MutexLock l(sh.mu);
    total += sh.table.size();
  }
  return total;
}

}  // namespace oir
