#include "storage/buffer_manager.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"

namespace oir {

char* PageRef::data() {
  OIR_DCHECK(valid());
  return bm_->frames_[frame_].data.get();
}

const char* PageRef::data() const {
  OIR_DCHECK(valid());
  return bm_->frames_[frame_].data.get();
}

Latch& PageRef::latch() {
  OIR_DCHECK(valid());
  return bm_->frames_[frame_].latch;
}

void PageRef::MarkDirty() {
  OIR_DCHECK(valid());
  std::lock_guard<std::mutex> l(bm_->mu_);
  bm_->frames_[frame_].dirty = true;
}

void PageRef::Release() {
  if (bm_ != nullptr) {
    bm_->Unpin(frame_, id_);
    bm_ = nullptr;
    frame_ = SIZE_MAX;
    id_ = kInvalidPageId;
  }
}

BufferManager::BufferManager(Disk* disk, size_t pool_frames)
    : disk_(disk), page_size_(disk->page_size()) {
  OIR_CHECK(pool_frames >= 8);
  frames_.resize(pool_frames);
  free_list_.reserve(pool_frames);
  for (size_t i = 0; i < pool_frames; ++i) {
    frames_[i].data.reset(new char[page_size_]);
    free_list_.push_back(pool_frames - 1 - i);
  }
}

BufferManager::~BufferManager() {
#ifndef NDEBUG
  std::lock_guard<std::mutex> l(mu_);
  for (const Frame& f : frames_) {
    OIR_DCHECK(f.pin_count == 0);
  }
#endif
}

void BufferManager::Unpin(size_t frame, PageId id) {
  std::lock_guard<std::mutex> l(mu_);
  Frame& f = frames_[frame];
  OIR_CHECK(f.page_id == id && f.pin_count > 0);
  --f.pin_count;
  f.ref = true;
  if (f.pin_count == 0) cv_.notify_all();
}

Status BufferManager::AllocateFrameLocked(std::unique_lock<std::mutex>* lk,
                                          PageId for_page, size_t* out_frame) {
  for (;;) {
    if (!free_list_.empty()) {
      size_t idx = free_list_.back();
      free_list_.pop_back();
      Frame& f = frames_[idx];
      f.page_id = for_page;
      f.pin_count = 1;
      f.dirty = false;
      f.loading = true;
      f.ref = true;
      table_[for_page] = idx;
      *out_frame = idx;
      return Status::OK();
    }
    // Clock scan for an evictable frame.
    size_t scanned = 0;
    size_t victim = SIZE_MAX;
    while (scanned < 2 * frames_.size()) {
      Frame& f = frames_[clock_hand_];
      size_t idx = clock_hand_;
      clock_hand_ = (clock_hand_ + 1) % frames_.size();
      ++scanned;
      if (f.pin_count != 0 || f.loading) continue;
      if (f.ref) {
        f.ref = false;
        continue;
      }
      victim = idx;
      break;
    }
    if (victim == SIZE_MAX) {
      return Status::NoSpace("buffer pool exhausted: all frames pinned");
    }
    Frame& vf = frames_[victim];
    const PageId old_id = vf.page_id;
    const bool was_dirty = vf.dirty;
    vf.loading = true;  // protect from concurrent use during write-back
    if (was_dirty) {
      lk->unlock();
      Status s = WriteBack(victim);
      lk->lock();
      if (!s.ok()) {
        vf.loading = false;
        cv_.notify_all();
        return s;
      }
      vf.dirty = false;
      if (table_.count(for_page) != 0) {
        // Another thread mapped `for_page` while we were writing back the
        // victim. Leave the (now clean) victim in place and tell the caller
        // to retry its lookup.
        vf.loading = false;
        cv_.notify_all();
        return Status::Busy("fetch raced");
      }
    }
    table_.erase(old_id);
    vf.page_id = for_page;
    vf.pin_count = 1;
    vf.dirty = false;
    vf.loading = true;
    vf.ref = true;
    table_[for_page] = victim;
    *out_frame = victim;
    cv_.notify_all();  // wake fetchers of old_id so they retry
    return Status::OK();
  }
}

Status BufferManager::WriteBack(size_t frame) {
  Frame& f = frames_[frame];
  // Copy a consistent image under the S latch.
  std::unique_ptr<char[]> img(new char[page_size_]);
  f.latch.LockS();
  std::memcpy(img.get(), f.data.get(), page_size_);
  f.latch.UnlockS();
  const Lsn page_lsn = HeaderOf(img.get())->page_lsn;
  if (log_flusher_ != nullptr && page_lsn != kInvalidLsn) {
    OIR_RETURN_IF_ERROR(log_flusher_->FlushTo(page_lsn));
  }
  return disk_->WritePage(f.page_id, img.get());
}

Status BufferManager::Fetch(PageId id, PageRef* out) {
  OIR_CHECK(id != kInvalidPageId);
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    auto it = table_.find(id);
    if (it != table_.end()) {
      Frame& f = frames_[it->second];
      if (f.loading) {
        cv_.wait(lk);
        continue;
      }
      ++f.pin_count;
      f.ref = true;
      *out = PageRef(this, it->second, id);
      return Status::OK();
    }
    size_t frame;
    Status alloc = AllocateFrameLocked(&lk, id, &frame);
    if (alloc.IsBusy()) continue;  // raced with another fetcher; retry
    OIR_RETURN_IF_ERROR(alloc);
    // Frame is mapped to `id`, pinned once, loading=true. Do the read
    // without the table mutex.
    lk.unlock();
    Status s = disk_->ReadPage(id, frames_[frame].data.get());
    lk.lock();
    Frame& f = frames_[frame];
    f.loading = false;
    cv_.notify_all();
    if (!s.ok()) {
      // Undo: unmap and free the frame.
      --f.pin_count;
      OIR_CHECK(f.pin_count == 0);
      table_.erase(id);
      f.page_id = kInvalidPageId;
      free_list_.push_back(frame);
      return s;
    }
    *out = PageRef(this, frame, id);
    return Status::OK();
  }
}

Status BufferManager::Create(PageId id, PageRef* out) {
  OIR_CHECK(id != kInvalidPageId);
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    auto it = table_.find(id);
    if (it != table_.end()) {
      Frame& f = frames_[it->second];
      if (f.loading) {
        cv_.wait(lk);
        continue;
      }
      // Stale cached copy of a previously freed page: reuse the frame once
      // any lingering reader pins drain.
      if (f.pin_count != 0) {
        cv_.wait(lk);
        continue;
      }
      ++f.pin_count;
      f.ref = true;
      f.dirty = false;
      std::memset(f.data.get(), 0, page_size_);
      *out = PageRef(this, it->second, id);
      return Status::OK();
    }
    size_t frame;
    Status alloc = AllocateFrameLocked(&lk, id, &frame);
    if (alloc.IsBusy()) continue;  // raced with another fetcher; retry
    OIR_RETURN_IF_ERROR(alloc);
    Frame& f = frames_[frame];
    std::memset(f.data.get(), 0, page_size_);
    f.loading = false;
    cv_.notify_all();
    *out = PageRef(this, frame, id);
    return Status::OK();
  }
}

Status BufferManager::FlushPage(PageId id) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    auto it = table_.find(id);
    if (it == table_.end()) return Status::OK();
    size_t frame = it->second;
    Frame& f = frames_[frame];
    if (f.loading) {
      cv_.wait(lk);
      continue;  // frame may have been remapped while we waited
    }
    if (!f.dirty) return Status::OK();
    ++f.pin_count;  // keep the frame stable during write-back
    lk.unlock();
    Status s = WriteBack(frame);
    lk.lock();
    if (s.ok()) f.dirty = false;
    --f.pin_count;
    if (f.pin_count == 0) cv_.notify_all();
    return s;
  }
}

Status BufferManager::FlushAll() {
  std::vector<PageId> ids;
  {
    std::lock_guard<std::mutex> l(mu_);
    ids.reserve(table_.size());
    for (const auto& [id, frame] : table_) {
      if (frames_[frame].dirty) ids.push_back(id);
    }
  }
  for (PageId id : ids) {
    OIR_RETURN_IF_ERROR(FlushPage(id));
  }
  return Status::OK();
}

Status BufferManager::FlushPages(const std::vector<PageId>& ids,
                                 uint32_t io_pages) {
  OIR_CHECK(io_pages >= 1);
  std::vector<PageId> sorted(ids);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  std::unique_ptr<char[]> run_buf(new char[static_cast<size_t>(io_pages) *
                                           page_size_]);
  size_t i = 0;
  while (i < sorted.size()) {
    // Build a physically contiguous run of up to io_pages dirty pages.
    uint32_t run_len = 0;
    Lsn max_lsn = kInvalidLsn;
    PageId run_start = sorted[i];
    while (i < sorted.size() && run_len < io_pages &&
           sorted[i] == run_start + run_len) {
      PageId id = sorted[i];
      std::unique_lock<std::mutex> lk(mu_);
      size_t frame = SIZE_MAX;
      for (;;) {
        auto it = table_.find(id);
        if (it == table_.end()) break;
        if (frames_[it->second].loading) {
          cv_.wait(lk);
          continue;  // re-find: frame may have been remapped
        }
        frame = it->second;
        break;
      }
      if (frame == SIZE_MAX) {
        // Not cached (already written back or evicted). Break the run here
        // so disk offsets stay aligned.
        lk.unlock();
        if (run_len == 0) {
          ++i;
          run_start = i < sorted.size() ? sorted[i] : kInvalidPageId;
          continue;
        }
        break;
      }
      ++frames_[frame].pin_count;
      lk.unlock();
      Frame& fr = frames_[frame];
      fr.latch.LockS();
      std::memcpy(run_buf.get() + static_cast<size_t>(run_len) * page_size_,
                  fr.data.get(), page_size_);
      fr.latch.UnlockS();
      Lsn lsn = HeaderOf(run_buf.get() +
                         static_cast<size_t>(run_len) * page_size_)
                    ->page_lsn;
      max_lsn = std::max(max_lsn, lsn);
      lk.lock();
      fr.dirty = false;
      --fr.pin_count;
      if (fr.pin_count == 0) cv_.notify_all();
      lk.unlock();
      ++run_len;
      ++i;
    }
    if (run_len == 0) continue;
    if (log_flusher_ != nullptr && max_lsn != kInvalidLsn) {
      OIR_RETURN_IF_ERROR(log_flusher_->FlushTo(max_lsn));
    }
    OIR_RETURN_IF_ERROR(disk_->WriteMulti(run_start, run_len, run_buf.get()));
  }
  return Status::OK();
}

void BufferManager::Discard(PageId id) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    auto it = table_.find(id);
    if (it == table_.end()) return;
    Frame& f = frames_[it->second];
    if (f.loading || f.pin_count != 0) {
      // A reader (e.g. a scan repositioning itself) may hold a short pin on
      // a page being freed; wait for it to drain.
      cv_.wait(lk);
      continue;
    }
    f.dirty = false;
    f.page_id = kInvalidPageId;
    free_list_.push_back(it->second);
    table_.erase(it);
    return;
  }
}

void BufferManager::DropAll() {
  std::unique_lock<std::mutex> lk(mu_);
  for (auto& [id, frame] : table_) {
    Frame& f = frames_[frame];
    OIR_CHECK(f.pin_count == 0 && !f.loading);
    f.dirty = false;
    f.page_id = kInvalidPageId;
    free_list_.push_back(frame);
  }
  table_.clear();
}

size_t BufferManager::CachedPages() const {
  std::lock_guard<std::mutex> l(mu_);
  return table_.size();
}

}  // namespace oir
