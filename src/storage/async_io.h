#ifndef OIR_STORAGE_ASYNC_IO_H_
#define OIR_STORAGE_ASYNC_IO_H_

// Asynchronous durable-append backends for the WAL's pipelined segment
// writer (log_manager.h). A backend owns its own file descriptor on the log
// file and turns each Submit() into "write these bytes at this offset, then
// force them to stable storage", reporting completion through a callback.
// Two implementations:
//
//   PwriteLogWriter  portable POSIX path: a small pool of worker threads,
//                    each request is a pwrite loop + fdatasync/fsync. N
//                    workers give N genuinely concurrent force operations,
//                    so consecutive log segments overlap their syncs.
//
//   UringLogWriter   io_uring via raw syscalls (no liburing dependency):
//                    each request is a linked SQE pair, IORING_OP_WRITE →
//                    IORING_OP_FSYNC, reaped by one completion thread. The
//                    kernel orders the fsync after the write through the
//                    link, so a request is complete exactly when its bytes
//                    are stable.
//
// Create() probes at runtime: io_uring_setup may be unavailable (old
// kernel, seccomp) and O_DIRECT may be refused by the filesystem; both fall
// back — uring→portable, O_DIRECT→buffered fdatasync — so the caller always
// gets a working writer and can query what it actually got.
//
// Contract shared by all implementations (log_manager.cc relies on it):
//   * Submit() never performs I/O on the calling thread and never blocks on
//     the device; it is safe to call with caller locks held.
//   * The completion callback is invoked with NO internal locks held, so it
//     may take caller locks (the WAL mutex).
//   * Completions may arrive in any order; the caller sequences them.
//   * Drain() returns once every submitted request has completed.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "util/status.h"

namespace oir {

// Which async backend to use for the durable log path.
enum class WalBackend : uint8_t {
  kAuto = 0,   // io_uring when the kernel offers it, else portable
  kPortable,   // pwrite + fdatasync worker pool
  kUring,      // io_uring (falls back to portable when unavailable)
};

// How a log segment is forced to stable storage.
enum class WalSyncMode : uint8_t {
  kFdatasync = 0,  // buffered write + fdatasync
  kFsync,          // buffered write + fsync (also forces metadata)
  kODirect,        // O_DIRECT sector-aligned write + fdatasync
};

const char* WalBackendName(WalBackend b);
const char* WalSyncModeName(WalSyncMode m);
bool ParseWalBackend(const std::string& s, WalBackend* out);
bool ParseWalSyncMode(const std::string& s, WalSyncMode* out);

// Best-effort scheduling boost for the durable-path threads (the WAL
// sealer and the backend's I/O workers). They run short bursts between
// blocking waits, but commit-ack latency rides on how fast they get the
// CPU back once woken — on a loaded box, queueing behind a runnable OLTP
// thread costs milliseconds. Tries SCHED_FIFO (needs privilege), then a
// negative nice for just this thread; silently does nothing when neither
// is permitted.
void TryElevateLogThreadPriority();

// RAII scheduling boost for a foreground thread about to block on the
// durable path. A committer that sleeps in FlushTo wakes the instant its
// bytes are stable — but on a loaded box it then queues behind whatever
// OLTP threads are runnable, and that queueing (not the device) dominates
// commit-ack p99. Elevating to SCHED_FIFO for just the wait makes the
// wake-up preempt immediately; the boosted section only sleeps and then
// runs a microsecond epilogue, so it cannot starve anything. Restores the
// previous policy on destruction; after the first failed probe (no
// privilege) every subsequent construction is a cheap no-op.
class ScopedCommitPriorityBoost {
 public:
  ScopedCommitPriorityBoost();
  ~ScopedCommitPriorityBoost();

  ScopedCommitPriorityBoost(const ScopedCommitPriorityBoost&) = delete;
  ScopedCommitPriorityBoost& operator=(const ScopedCommitPriorityBoost&) =
      delete;

 private:
  bool boosted_ = false;
  int old_policy_ = 0;
  int old_priority_ = 0;
};

// Device sector size assumed for O_DIRECT alignment.
constexpr uint32_t kWalSectorSize = 512;

class AsyncLogWriter {
 public:
  // Invoked once per Submit(), on a backend thread, with no internal locks
  // held. `seq` is the caller's token; `s` is OK iff the bytes are stable.
  using CompletionFn = std::function<void(uint64_t seq, Status s)>;

  virtual ~AsyncLogWriter() = default;

  AsyncLogWriter(const AsyncLogWriter&) = delete;
  AsyncLogWriter& operator=(const AsyncLogWriter&) = delete;

  // Queues a durable append of `data` at file offset `offset`. For the
  // O_DIRECT mode the caller must pass a sector-aligned offset and a
  // sector-multiple length (log_manager materializes the padding). The
  // caller bounds the number of outstanding requests; backends size their
  // queues for `inflight` and are not required to accept more.
  virtual void Submit(uint64_t seq, uint64_t offset, std::string data) = 0;

  // Blocks until every request submitted so far has completed (its
  // callback has returned). New submissions during a drain extend it.
  virtual void Drain() = 0;

  // What the probe actually selected (for stats and bench labels).
  virtual const char* backend_name() const = 0;
  virtual WalSyncMode sync_mode() const = 0;

  // Opens its own descriptor on `path` and builds the requested backend,
  // falling back as described above. `inflight` is the maximum number of
  // requests the caller keeps outstanding (>= 1).
  static Status Create(const std::string& path, WalBackend backend,
                       WalSyncMode mode, uint32_t inflight, CompletionFn cb,
                       std::unique_ptr<AsyncLogWriter>* out);

 protected:
  AsyncLogWriter() = default;
};

}  // namespace oir

#endif  // OIR_STORAGE_ASYNC_IO_H_
