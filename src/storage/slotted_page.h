#ifndef OIR_STORAGE_SLOTTED_PAGE_H_
#define OIR_STORAGE_SLOTTED_PAGE_H_

// SlottedPage is a non-owning view over a raw page buffer providing slotted
// row storage. It performs no latching and no logging — callers (the B+-tree
// node layer) hold the page latch and emit log records.

#include <cstdint>

#include "storage/page.h"
#include "util/logging.h"
#include "util/slice.h"
#include "util/types.h"

namespace oir {

class SlottedPage {
 public:
  // `data` must point to a buffer of `page_size` bytes and outlive the view.
  SlottedPage(char* data, uint32_t page_size)
      : data_(data), page_size_(page_size) {}

  // Formats the buffer as an empty page at the given level.
  void Init(PageId page_id, uint16_t level);

  PageHeader* header() { return HeaderOf(data_); }
  const PageHeader* header() const { return HeaderOf(data_); }

  char* data() { return data_; }
  const char* data() const { return data_; }
  uint32_t page_size() const { return page_size_; }

  uint16_t nslots() const { return header()->nslots; }

  // Row accessors. `pos` must be < nslots().
  Slice Get(SlotId pos) const;

  // Inserts `row` so that it becomes slot `pos` (existing slots at >= pos
  // shift up by one). Returns false if there is insufficient space even
  // after compaction.
  bool InsertAt(SlotId pos, const Slice& row);

  // Removes slot `pos`; slots above shift down by one. Row bytes become
  // garbage until the next compaction.
  void DeleteAt(SlotId pos);

  // Replaces the row at `pos`. Returns false on insufficient space (the
  // original row is left intact in that case).
  bool ReplaceAt(SlotId pos, const Slice& row);

  // Bytes available for a new row of any size (includes the slot entry),
  // counting garbage that compaction would reclaim.
  uint32_t FreeSpace() const;

  // Bytes available without compaction.
  uint32_t ContiguousFreeSpace() const;

  // Bytes consumed by live rows + their slot entries.
  uint32_t UsedSpace() const;

  // True if a row of `row_size` bytes fits (possibly after compaction).
  bool HasRoomFor(uint32_t row_size) const {
    return FreeSpace() >= row_size + kSlotSize;
  }

  // Rewrites the row area to squeeze out garbage.
  void Compact();

  // Verifies internal consistency (slot bounds, free pointer, garbage
  // accounting). Used by tests and debug checks.
  bool Validate() const;

 private:
  uint16_t SlotOffset(SlotId pos) const;
  uint16_t SlotLength(SlotId pos) const;
  void SetSlot(SlotId pos, uint16_t offset, uint16_t length);
  char* SlotEntryPtr(SlotId pos) const;

  char* data_;
  uint32_t page_size_;
};

}  // namespace oir

#endif  // OIR_STORAGE_SLOTTED_PAGE_H_
