#include "storage/async_io.h"

#include <fcntl.h>
#include <pthread.h>
#include <sched.h>
#include <sys/resource.h>
#include <unistd.h>

#if defined(__linux__)
#include <linux/falloc.h>
#include <sys/syscall.h>
#endif

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#define OIR_HAVE_IO_URING 1
#else
#define OIR_HAVE_IO_URING 0
#endif

#include "obs/metrics.h"
#include "obs/waitstate.h"
#include "sync/mutex.h"
#include "util/clock.h"
#include "util/logging.h"

namespace oir {

const char* WalBackendName(WalBackend b) {
  switch (b) {
    case WalBackend::kAuto: return "auto";
    case WalBackend::kPortable: return "portable";
    case WalBackend::kUring: return "uring";
  }
  return "unknown";
}

void TryElevateLogThreadPriority() {
  // SCHED_FIFO priority 1: the thread preempts every CFS task the moment
  // it is woken, which is exactly the property a commit ack needs. Safe
  // here because these threads always block between short bursts.
  sched_param sp{};
  sp.sched_priority = 1;
  if (pthread_setschedparam(pthread_self(), SCHED_FIFO, &sp) == 0) return;
#if defined(__linux__)
  // Unprivileged fallback: nice applies per-thread on Linux.
  ::setpriority(PRIO_PROCESS, static_cast<id_t>(::syscall(SYS_gettid)), -10);
#endif
}

namespace {
// Set after the first pthread_setschedparam failure so unprivileged
// processes pay one probe, not two syscalls per logged commit.
std::atomic<bool> g_commit_boost_unavailable{false};
}  // namespace

ScopedCommitPriorityBoost::ScopedCommitPriorityBoost() {
  if (g_commit_boost_unavailable.load(std::memory_order_relaxed)) return;
  sched_param old{};
  if (pthread_getschedparam(pthread_self(), &old_policy_, &old) != 0) {
    g_commit_boost_unavailable.store(true, std::memory_order_relaxed);
    return;
  }
  old_priority_ = old.sched_priority;
  sched_param sp{};
  sp.sched_priority = 1;
  if (pthread_setschedparam(pthread_self(), SCHED_FIFO, &sp) != 0) {
    g_commit_boost_unavailable.store(true, std::memory_order_relaxed);
    return;
  }
  boosted_ = true;
}

ScopedCommitPriorityBoost::~ScopedCommitPriorityBoost() {
  if (!boosted_) return;
  sched_param sp{};
  sp.sched_priority = old_priority_;
  pthread_setschedparam(pthread_self(), old_policy_, &sp);
}

const char* WalSyncModeName(WalSyncMode m) {
  switch (m) {
    case WalSyncMode::kFdatasync: return "fdatasync";
    case WalSyncMode::kFsync: return "fsync";
    case WalSyncMode::kODirect: return "odirect";
  }
  return "unknown";
}

bool ParseWalBackend(const std::string& s, WalBackend* out) {
  if (s == "auto") *out = WalBackend::kAuto;
  else if (s == "portable") *out = WalBackend::kPortable;
  else if (s == "uring") *out = WalBackend::kUring;
  else return false;
  return true;
}

bool ParseWalSyncMode(const std::string& s, WalSyncMode* out) {
  if (s == "fdatasync") *out = WalSyncMode::kFdatasync;
  else if (s == "fsync") *out = WalSyncMode::kFsync;
  else if (s == "odirect") *out = WalSyncMode::kODirect;
  else return false;
  return true;
}

namespace {

// Opens the writer's own descriptor on the log file, degrading kODirect to
// kFdatasync when the filesystem refuses O_DIRECT. The effective mode is
// written back to *mode.
Status OpenWriterFd(const std::string& path, WalSyncMode* mode, int* out_fd) {
  if (*mode == WalSyncMode::kODirect) {
    int fd = ::open(path.c_str(), O_RDWR | O_DIRECT, 0644);
    if (fd >= 0) {
      *out_fd = fd;
      return Status::OK();
    }
    *mode = WalSyncMode::kFdatasync;  // e.g. tmpfs: no O_DIRECT
  }
  int fd = ::open(path.c_str(), O_RDWR, 0644);
  if (fd < 0) {
    return Status::IOError("open wal writer fd " + path + ": " +
                           std::strerror(errno));
  }
  *out_fd = fd;
  return Status::OK();
}

// Keeps the file's block allocation ahead of the append frontier so every
// segment write lands on already-allocated blocks. With allocation done,
// fdatasync has no block-mapping metadata to journal — which both trims the
// common case and removes a multi-millisecond tail where the log's sync
// waits on a filesystem journal commit shared with concurrent data-page
// write-back. KEEP_SIZE leaves i_size untouched, so recovery's torn-tail
// scan still sees exactly the bytes that were written. Best-effort: on
// filesystems without fallocate the log simply keeps paying for allocation
// inside the sync, as before.
constexpr uint64_t kWalPreallocChunk = 64ull << 20;

void PreallocateAhead(int fd, uint64_t end_offset,
                      std::atomic<uint64_t>* allocated) {
#if defined(__linux__) && defined(FALLOC_FL_KEEP_SIZE)
  uint64_t cur = allocated->load(std::memory_order_relaxed);
  if (end_offset <= cur) return;
  uint64_t target = (end_offset / kWalPreallocChunk + 1) * kWalPreallocChunk;
  // Concurrent callers may both extend; fallocate over an already-allocated
  // range is an idempotent no-op, so the race is harmless.
  if (::syscall(SYS_fallocate, fd, FALLOC_FL_KEEP_SIZE,
                static_cast<off_t>(cur),
                static_cast<off_t>(target - cur)) != 0) {
    return;
  }
  allocated->store(target, std::memory_order_relaxed);
#else
  (void)fd;
  (void)end_offset;
  (void)allocated;
#endif
}

Status SyncFd(int fd, WalSyncMode mode) {
  // O_DIRECT writes bypass the page cache but the device write cache and
  // inode size still need the barrier, so every mode ends in a sync call.
  int rc = mode == WalSyncMode::kFsync ? ::fsync(fd) : ::fdatasync(fd);
  if (rc != 0) {
    return Status::IOError(std::string("wal sync: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status PwriteAll(int fd, const char* data, size_t len, uint64_t off) {
  size_t done = 0;
  while (done < len) {
    ssize_t w = ::pwrite(fd, data + done, len - done,
                         static_cast<off_t>(off + done));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("wal pwrite: ") +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Portable backend: worker-thread pool, pwrite + fdatasync per request.
// ---------------------------------------------------------------------------

class PwriteLogWriter : public AsyncLogWriter {
 public:
  PwriteLogWriter(int fd, WalSyncMode mode, uint32_t inflight,
                  CompletionFn cb)
      : fd_(fd), mode_(mode), cb_(std::move(cb)) {
    uint32_t workers = inflight < 1 ? 1 : inflight;
    if (workers > 8) workers = 8;
    workers_.reserve(workers);
    for (uint32_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~PwriteLogWriter() override {
    {
      MutexLock l(mu_);
      stop_ = true;
    }
    cv_.NotifyAll();
    for (auto& w : workers_) w.join();
    ::close(fd_);
  }

  void Submit(uint64_t seq, uint64_t offset, std::string data) override {
    {
      MutexLock l(mu_);
      queue_.push_back(Request{seq, offset, std::move(data)});
      ++outstanding_;
    }
    cv_.NotifyOne();
  }

  void Drain() override {
    MutexLock l(mu_);
    obs::WaitScope ws(obs::WaitState::kIoWait);
    while (outstanding_ != 0) cv_.Wait(mu_);
  }

  const char* backend_name() const override { return "portable"; }
  WalSyncMode sync_mode() const override { return mode_; }

 private:
  struct Request {
    uint64_t seq;
    uint64_t offset;
    std::string data;
  };

  void WorkerLoop() {
    TryElevateLogThreadPriority();
    mu_.Lock();
    for (;;) {
      // wait-state: WAL segment writer idle
      while (queue_.empty() && !stop_) cv_.Wait(mu_);
      if (queue_.empty() && stop_) break;
      Request req = std::move(queue_.front());
      queue_.pop_front();
      mu_.Unlock();
      PreallocateAhead(fd_, req.offset + req.data.size(), &allocated_);
      // Write+sync span: the device's share of commit latency.
      static obs::TimerStat* const io_timer =
          obs::MetricRegistry::Get().Timer("wal.segment_io_ns");
      const uint64_t io_start = NowNanos();
      Status s = PwriteAll(fd_, req.data.data(), req.data.size(), req.offset);
      if (s.ok()) s = SyncFd(fd_, mode_);
      if (obs::MetricRegistry::timers_enabled()) {
        io_timer->Record(NowNanos() - io_start);
      }
      // No locks held across the callback (the contract the WAL's
      // completion path relies on).
      cb_(req.seq, s);
      mu_.Lock();
      --outstanding_;
      cv_.NotifyAll();  // wake Drain() and idle workers alike
    }
    mu_.Unlock();
  }

  const int fd_;
  const WalSyncMode mode_;
  const CompletionFn cb_;
  std::atomic<uint64_t> allocated_{0};  // prealloc watermark (file offset)

  Mutex mu_;
  CondVar cv_;
  std::deque<Request> queue_ OIR_GUARDED_BY(mu_);
  // Requests submitted but whose callback has not returned yet.
  uint64_t outstanding_ OIR_GUARDED_BY(mu_) = 0;
  bool stop_ OIR_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

#if OIR_HAVE_IO_URING

// ---------------------------------------------------------------------------
// io_uring backend (raw syscalls): linked WRITE→FSYNC SQE pairs, one reaper.
// ---------------------------------------------------------------------------

int UringSetup(unsigned entries, struct io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int UringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
               unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

// The SQ/CQ ring words are shared with the kernel; plain loads/stores would
// be racy. These match liburing's smp_load_acquire/smp_store_release.
inline uint32_t LoadAcquire(const unsigned* p) {
  return __atomic_load_n(p, __ATOMIC_ACQUIRE);
}
inline void StoreRelease(unsigned* p, uint32_t v) {
  __atomic_store_n(p, v, __ATOMIC_RELEASE);
}

class UringLogWriter : public AsyncLogWriter {
 public:
  // Probes io_uring_setup; returns non-OK (and constructs nothing) when the
  // kernel or the sandbox does not offer it.
  static Status TryCreate(const std::string& path, WalSyncMode mode,
                          uint32_t inflight, CompletionFn cb,
                          std::unique_ptr<AsyncLogWriter>* out) {
    int file_fd = -1;
    OIR_RETURN_IF_ERROR(OpenWriterFd(path, &mode, &file_fd));

    // Two SQEs per request plus the shutdown NOP, rounded to a power of two.
    unsigned entries = 8;
    while (entries < 2 * inflight + 2) entries *= 2;
    struct io_uring_params p;
    std::memset(&p, 0, sizeof(p));
    int ring_fd = UringSetup(entries, &p);
    if (ring_fd < 0) {
      ::close(file_fd);
      return Status::IOError(std::string("io_uring_setup: ") +
                             std::strerror(errno));
    }

    size_t sq_sz = p.sq_off.array + p.sq_entries * sizeof(unsigned);
    size_t cq_sz = p.cq_off.cqes + p.cq_entries * sizeof(struct io_uring_cqe);
    if (p.features & IORING_FEAT_SINGLE_MMAP) {
      if (cq_sz > sq_sz) sq_sz = cq_sz;
      cq_sz = sq_sz;
    }
    void* sq_ptr = ::mmap(nullptr, sq_sz, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_POPULATE, ring_fd,
                          IORING_OFF_SQ_RING);
    if (sq_ptr == MAP_FAILED) {
      ::close(ring_fd);
      ::close(file_fd);
      return Status::IOError("io_uring sq mmap failed");
    }
    void* cq_ptr = sq_ptr;
    if (!(p.features & IORING_FEAT_SINGLE_MMAP)) {
      cq_ptr = ::mmap(nullptr, cq_sz, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_CQ_RING);
      if (cq_ptr == MAP_FAILED) {
        ::munmap(sq_ptr, sq_sz);
        ::close(ring_fd);
        ::close(file_fd);
        return Status::IOError("io_uring cq mmap failed");
      }
    }
    size_t sqes_sz = p.sq_entries * sizeof(struct io_uring_sqe);
    void* sqes = ::mmap(nullptr, sqes_sz, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQES);
    if (sqes == MAP_FAILED) {
      if (cq_ptr != sq_ptr) ::munmap(cq_ptr, cq_sz);
      ::munmap(sq_ptr, sq_sz);
      ::close(ring_fd);
      ::close(file_fd);
      return Status::IOError("io_uring sqes mmap failed");
    }

    auto w = std::unique_ptr<UringLogWriter>(new UringLogWriter(
        file_fd, ring_fd, mode, std::move(cb)));
    w->sq_mem_ = sq_ptr;
    w->sq_mem_sz_ = sq_sz;
    w->cq_mem_ = cq_ptr;
    w->cq_mem_sz_ = cq_sz;
    w->sqes_ = static_cast<struct io_uring_sqe*>(sqes);
    w->sqes_sz_ = sqes_sz;
    auto* sq = static_cast<char*>(sq_ptr);
    w->sq_head_ = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
    w->sq_tail_ = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
    w->sq_mask_ = *reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
    w->sq_array_ = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
    auto* cq = static_cast<char*>(cq_ptr);
    w->cq_head_ = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
    w->cq_tail_ = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
    w->cq_mask_ = *reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
    w->cqes_ = reinterpret_cast<struct io_uring_cqe*>(cq + p.cq_off.cqes);
    w->reaper_ = std::thread([raw = w.get()] { raw->ReaperLoop(); });
    *out = std::move(w);
    return Status::OK();
  }

  ~UringLogWriter() override {
    {
      MutexLock l(mu_);
      stop_ = true;
      PushSqeLocked(IORING_OP_NOP, 0, nullptr, 0, /*link=*/false,
                    kShutdownTag);
      (void)UringEnter(ring_fd_, 1, 0, 0);
    }
    reaper_.join();
    ::munmap(sqes_, sqes_sz_);
    if (cq_mem_ != sq_mem_) ::munmap(cq_mem_, cq_mem_sz_);
    ::munmap(sq_mem_, sq_mem_sz_);
    ::close(ring_fd_);
    ::close(file_fd_);
  }

  void Submit(uint64_t seq, uint64_t offset, std::string data) override {
    // Allocation-only syscall, amortized to once per 64 MiB of log — not
    // data I/O, so it keeps Submit()'s never-blocks-on-the-device contract.
    PreallocateAhead(file_fd_, offset + data.size(), &allocated_);
    Status fail;
    {
      MutexLock l(mu_);
      Pending& pend = pending_[seq];
      const char* buf;
      size_t len = data.size();
      pend.len = len;
      pend.submit_ns = NowNanos();
      if (mode_ == WalSyncMode::kODirect) {
        // O_DIRECT needs an aligned source buffer; one memcpy per segment
        // is noise next to the device write.
        void* aligned = nullptr;
        OIR_CHECK(posix_memalign(&aligned, kWalSectorSize, len) == 0);
        std::memcpy(aligned, data.data(), len);
        pend.aligned.reset(static_cast<char*>(aligned));
        buf = pend.aligned.get();
      } else {
        pend.data = std::move(data);
        buf = pend.data.data();
      }
      ++outstanding_;
      PushSqeLocked(IORING_OP_WRITE, offset, buf, len, /*link=*/true,
                    seq << 1);
      PushSqeLocked(IORING_OP_FSYNC, 0, nullptr, 0, /*link=*/false,
                    (seq << 1) | 1);
      int rc = UringEnter(ring_fd_, 2, 0, 0);
      if (rc < 0) {
        // Submission itself failed (should not happen once setup
        // succeeded); the reaper will never see the request, so complete it
        // here — with the lock released, per the class contract.
        pending_.erase(seq);
        fail = Status::IOError(std::string("io_uring_enter: ") +
                               std::strerror(errno));
      }
    }
    if (!fail.ok()) {
      cb_(seq, fail);
      MutexLock l(mu_);
      --outstanding_;
      cv_.NotifyAll();
    }
  }

  void Drain() override {
    MutexLock l(mu_);
    obs::WaitScope ws(obs::WaitState::kIoWait);
    while (outstanding_ != 0) cv_.Wait(mu_);
  }

  const char* backend_name() const override { return "uring"; }
  WalSyncMode sync_mode() const override { return mode_; }

 private:
  struct FreeDeleter {
    void operator()(char* p) const { std::free(p); }
  };
  struct Pending {
    std::string data;
    std::unique_ptr<char, FreeDeleter> aligned;
    size_t len = 0;
    uint64_t submit_ns = 0;
    Status write_error;
  };

  static constexpr uint64_t kShutdownTag = ~0ull;

  UringLogWriter(int file_fd, int ring_fd, WalSyncMode mode, CompletionFn cb)
      : file_fd_(file_fd), ring_fd_(ring_fd), mode_(mode),
        cb_(std::move(cb)) {}

  void PushSqeLocked(uint8_t opcode, uint64_t offset, const char* buf,
                     size_t len, bool link, uint64_t user_data)
      OIR_REQUIRES(mu_) {
    unsigned tail = *sq_tail_;  // only we write the tail; plain read is fine
    unsigned idx = tail & sq_mask_;
    struct io_uring_sqe* sqe = &sqes_[idx];
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->opcode = opcode;
    sqe->fd = file_fd_;
    sqe->off = offset;
    sqe->addr = reinterpret_cast<uint64_t>(buf);
    sqe->len = static_cast<uint32_t>(len);
    if (opcode == IORING_OP_FSYNC && mode_ != WalSyncMode::kFsync) {
      sqe->fsync_flags = IORING_FSYNC_DATASYNC;
    }
    if (link) sqe->flags |= IOSQE_IO_LINK;
    sqe->user_data = user_data;
    sq_array_[idx] = idx;
    StoreRelease(sq_tail_, tail + 1);
  }

  void ReaperLoop() {
    TryElevateLogThreadPriority();
    std::vector<std::pair<uint64_t, Status>> done;
    for (;;) {
      int rc = UringEnter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
      if (rc < 0 && errno != EINTR && errno != EBUSY) {
        // Catastrophic ring failure: fail everything outstanding.
        FailAllPending(Status::IOError("io_uring wait failed"));
        return;
      }
      bool shutdown = false;
      done.clear();
      {
        MutexLock l(mu_);
        unsigned head = *cq_head_;  // only we write the head
        unsigned tail = LoadAcquire(cq_tail_);
        while (head != tail) {
          const struct io_uring_cqe* cqe = &cqes_[head & cq_mask_];
          uint64_t ud = cqe->user_data;
          int res = cqe->res;
          ++head;
          if (ud == kShutdownTag) {
            shutdown = true;
            continue;
          }
          uint64_t seq = ud >> 1;
          auto it = pending_.find(seq);
          if (it == pending_.end()) continue;
          if ((ud & 1) == 0) {
            // Write completion. A short or failed write poisons the request;
            // the linked fsync comes back -ECANCELED and reports it.
            if (res < 0) {
              it->second.write_error = Status::IOError(
                  std::string("wal uring write: ") + std::strerror(-res));
            } else if (static_cast<size_t>(res) != it->second.len) {
              it->second.write_error =
                  Status::IOError("wal uring short write");
            }
          } else {
            // Fsync completion: the request is finished.
            Status s = it->second.write_error;
            if (s.ok() && res < 0 && res != -ECANCELED) {
              s = Status::IOError(std::string("wal uring fsync: ") +
                                  std::strerror(-res));
            } else if (s.ok() && res == -ECANCELED) {
              s = Status::IOError("wal uring fsync canceled");
            }
            if (it->second.submit_ns != 0 &&
                obs::MetricRegistry::timers_enabled()) {
              // Submit→durable span: the device's share of commit latency.
              static obs::TimerStat* const io_timer =
                  obs::MetricRegistry::Get().Timer("wal.segment_io_ns");
              io_timer->Record(NowNanos() - it->second.submit_ns);
            }
            done.emplace_back(seq, s);
            pending_.erase(it);
          }
        }
        StoreRelease(cq_head_, head);
      }
      for (auto& [seq, s] : done) {
        cb_(seq, s);  // no locks held
        MutexLock l(mu_);
        --outstanding_;
        cv_.NotifyAll();
      }
      if (shutdown) return;
    }
  }

  void FailAllPending(const Status& why) {
    std::vector<uint64_t> seqs;
    {
      MutexLock l(mu_);
      for (auto& [seq, pend] : pending_) seqs.push_back(seq);
      pending_.clear();
    }
    for (uint64_t seq : seqs) {
      cb_(seq, why);
      MutexLock l(mu_);
      --outstanding_;
      cv_.NotifyAll();
    }
  }

  const int file_fd_;
  const int ring_fd_;
  const WalSyncMode mode_;
  std::atomic<uint64_t> allocated_{0};  // prealloc watermark (file offset)
  const CompletionFn cb_;

  void* sq_mem_ = nullptr;
  size_t sq_mem_sz_ = 0;
  void* cq_mem_ = nullptr;
  size_t cq_mem_sz_ = 0;
  struct io_uring_sqe* sqes_ = nullptr;
  size_t sqes_sz_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  struct io_uring_cqe* cqes_ = nullptr;

  Mutex mu_;
  CondVar cv_;
  std::unordered_map<uint64_t, Pending> pending_ OIR_GUARDED_BY(mu_);
  uint64_t outstanding_ OIR_GUARDED_BY(mu_) = 0;
  bool stop_ OIR_GUARDED_BY(mu_) = false;
  std::thread reaper_;
};

#endif  // OIR_HAVE_IO_URING

bool UringSuppressed() {
#if defined(__SANITIZE_THREAD__)
  return true;  // TSan cannot see kernel writes into the mapped CQ ring
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

}  // namespace

Status AsyncLogWriter::Create(const std::string& path, WalBackend backend,
                              WalSyncMode mode, uint32_t inflight,
                              CompletionFn cb,
                              std::unique_ptr<AsyncLogWriter>* out) {
  if (inflight < 1) inflight = 1;
#if OIR_HAVE_IO_URING
  if ((backend == WalBackend::kAuto || backend == WalBackend::kUring) &&
      !UringSuppressed()) {
    Status s = UringLogWriter::TryCreate(path, mode, inflight, cb, out);
    if (s.ok()) return s;
    // Kernel/sandbox said no: fall through to the portable pool.
  }
#else
  (void)backend;
#endif
  int fd = -1;
  OIR_RETURN_IF_ERROR(OpenWriterFd(path, &mode, &fd));
  *out = std::make_unique<PwriteLogWriter>(fd, mode, inflight, std::move(cb));
  return Status::OK();
}

}  // namespace oir
