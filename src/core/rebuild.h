#ifndef OIR_CORE_REBUILD_H_
#define OIR_CORE_REBUILD_H_

// Online index rebuild — the paper's contribution (Sections 3-5).
//
// The rebuild runs as a sequence of transactions; each transaction performs
// a series of multipage rebuild top actions; each top action rebuilds up to
// `ntasize` contiguous leaf pages:
//
//   copy phase (Section 4.1)
//     - X address locks + SHRINK bits on PP, P1..Pn (left to right;
//       conditional requests on P2..Pn truncate the batch instead of
//       waiting; a busy PP/P1 releases everything and waits);
//     - keys are copied to PP (up to fillfactor) and freshly chunk-
//       allocated pages N1..Nk, logged as ONE keycopy record holding only
//       page numbers, timestamps and positions — no key bytes;
//     - chain linkage is fixed (changeprevlink on NP) and P1..Pn are
//       deallocated.
//
//   propagation phase (Section 5)
//     - propagation entries (DELETE / UPDATE / INSERT) are computed per
//       rebuilt page (Section 5.2) and applied level by level, bottom-up,
//       left to right (Section 5.4);
//     - level-1 pages are reorganized on the way by moving inserts into
//       the left sibling when the first child of the target page is being
//       deleted (Section 5.5) — no separate pass;
//     - non-leaf modifications are covered by X locks with SHRINK bits
//       (deletes performed) or SPLIT bits (insert-only), per Section 5.4.2.
//
// At the end of each transaction the new pages are forced to disk with
// large I/Os and only then are the old pages freed for reallocation — this
// ordering is what makes the position-only keycopy logging recoverable
// (Section 3).

#include <memory>

#include "btree/btree.h"
#include "core/options.h"
#include "core/rebuild_journal.h"
#include "obs/progress.h"
#include "txn/transaction_manager.h"

namespace oir {

class OnlineRebuilder {
 public:
  // `journal` (optional) receives every durable progress record the rebuild
  // appends, so a checkpoint taken mid-rebuild can embed the latest one.
  OnlineRebuilder(BTree* tree, TransactionManager* tm, BufferManager* bm,
                  LogManager* log, LockManager* locks, SpaceManager* space,
                  RebuildJournal* journal = nullptr);

  // Runs a full online rebuild of the index. Concurrent inserts, deletes
  // and scans are allowed throughout; only the pages of the current top
  // action are restricted.
  Status Run(const RebuildOptions& options, RebuildResult* result);

  // Progress snapshot, pollable from any thread while Run executes (and
  // after: `done` stays set). leaves_total is an allocated-page upper-bound
  // estimate taken at the start of the run.
  obs::RebuildProgress progress() const { return progress_.Load(); }

 private:
  struct Impl;

  obs::RebuildProgressTracker progress_;
  BTree* const tree_;
  TransactionManager* const tm_;
  BufferManager* const bm_;
  LogManager* const log_;
  LockManager* const locks_;
  SpaceManager* const space_;
  RebuildJournal* const journal_;
};

}  // namespace oir

#endif  // OIR_CORE_REBUILD_H_
