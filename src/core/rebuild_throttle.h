#ifndef OIR_CORE_REBUILD_THROTTLE_H_
#define OIR_CORE_REBUILD_THROTTLE_H_

// Admission control for the online rebuild: paces copy/propagate batches so
// foreground operations degrade no more than a configured percentage.
//
// The rebuilder calls Pace() between top actions. Every sample interval the
// throttle reads live signals —
//   * foreground (read/write) mean latency from the wait profiler versus a
//     baseline captured at Start (or supplied by the caller),
//   * the foreground lock-wait share of wall-clock (the rebuild holds tree
//     locks; a rising share means it is in the way),
//   * lock-watchdog fires (a foreground op waited past the watchdog
//     threshold — the strongest "back off now" signal),
//   * buffer-pool eviction pressure (the rebuild's run buffer and prefetch
//     reads evicting the working set)
// — and adjusts an attributed pause with AIMD: multiplicative increase
// while foreground is over budget, additive decay once it recovers. The
// pause itself is a CondVar wait under WaitState::kThrottled so the wait
// dashboard and DumpStatsJson show rebuild pacing as throttled time, not
// as mystery latency.
//
// The profiler-based signals need WaitProfiler::SetEnabled(true) and prior
// foreground traffic; without them the counter-based signals still pace
// the rebuild (watchdog fires and eviction pressure), just more coarsely.

#include <chrono>
#include <cstdint>

#include "obs/waitstate.h"
#include "sync/mutex.h"
#include "util/counters.h"

namespace oir {

class RebuildThrottle {
 public:
  struct Config {
    // Allowed foreground degradation in percent (from
    // RebuildOptions::max_foreground_degradation_pct). 0 disables pacing.
    uint32_t max_degradation_pct = 0;
    // Foreground mean-latency baseline (ns); 0 = capture from the wait
    // profiler at Start().
    uint64_t baseline_ns = 0;
  };

  struct Stats {
    uint64_t pauses = 0;    // Pace() calls that actually slept
    uint64_t pause_us = 0;  // cumulative attributed sleep time
    uint64_t backoffs = 0;  // over-budget samples (pause grew)
    uint64_t baseline_ns = 0;  // the baseline in effect (0 = none)
  };

  explicit RebuildThrottle(const Config& config) : config_(config) {}

  // Captures baselines (profiler aggregates, global counters). Call once,
  // immediately before the rebuild's first top action.
  void Start();

  // Samples the signals, adjusts the pause, and sleeps it off (attributed
  // as WaitState::kThrottled). Returns the microseconds actually paused
  // (0 when pacing is disabled or foreground is within budget).
  uint64_t Pace();

  Stats stats() const;

  bool enabled() const { return config_.max_degradation_pct > 0; }

 private:
  // True when the live signals say foreground is degraded past budget.
  bool OverBudget();

  Config config_;

  // Sampled signal state (rebuilder thread only).
  struct ProfilerSample {
    uint64_t count = 0;      // read+write op count
    uint64_t wall_ns = 0;    // read+write wall-clock
    uint64_t lock_ns = 0;    // read+write lock-wait component
  };
  ProfilerSample last_sample_;
  CounterSnapshot last_counters_;
  uint32_t calls_since_sample_ = 0;

  uint64_t pause_us_ = 0;  // current AIMD pause
  Stats stats_;

  // The pause: a timed CV wait (never signalled in production; tests could
  // notify to cut a pause short). Production code must not sleep — the
  // attributed CV wait is the sanctioned idiom (tools/oir_lint).
  Mutex mu_;
  CondVar cv_;
};

}  // namespace oir

#endif  // OIR_CORE_REBUILD_THROTTLE_H_
