#ifndef OIR_CORE_INDEX_H_
#define OIR_CORE_INDEX_H_

// Public secondary-index API. Wraps the B+-tree with the logical row
// locking of Section 2 (inserts and deletes X-lock the ROWID; scans are
// read-committed by default) and exposes both rebuild flavors:
//
//  * RebuildOnline  — the paper's algorithm; OLTP continues concurrently.
//  * RebuildOffline — the drop-and-recreate baseline the paper's
//    introduction argues against: it holds an exclusive table lock for the
//    duration, blocking every reader and writer.

#include <memory>

#include "btree/btree.h"
#include "btree/cursor.h"
#include "core/options.h"
#include "core/rebuild.h"
#include "txn/transaction_manager.h"

namespace oir {

// A cursor that additionally acquires a transaction-duration S logical
// lock on every qualifying row it returns — the paper's Section 2.5:
// "depending on the isolation level, the scan may need to acquire logical
// locks on qualifying keys". Writers that want to delete a scanned row
// block until the scanning transaction ends.
class LockingCursor {
 public:
  LockingCursor(std::unique_ptr<Cursor> inner, TransactionManager* tm,
                Transaction* txn)
      : inner_(std::move(inner)), tm_(tm), txn_(txn) {}

  Status SeekToFirst() {
    OIR_RETURN_IF_ERROR(inner_->SeekToFirst());
    return LockCurrent();
  }
  Status Seek(const Slice& user_key) {
    OIR_RETURN_IF_ERROR(inner_->Seek(user_key));
    return LockCurrent();
  }
  Status Next() {
    OIR_RETURN_IF_ERROR(inner_->Next());
    return LockCurrent();
  }
  bool Valid() const { return inner_->Valid(); }
  Slice user_key() const { return inner_->user_key(); }
  RowId rid() const { return inner_->rid(); }

 private:
  Status LockCurrent() {
    if (!inner_->Valid()) return Status::OK();
    return tm_->LockLogical(txn_, inner_->rid(), LockMode::kS);
  }

  std::unique_ptr<Cursor> inner_;
  TransactionManager* tm_;
  Transaction* txn_;
};

class Index {
 public:
  // `journal` (optional) is handed to the online rebuilder so checkpoints
  // can embed the latest durable rebuild progress (see rebuild_journal.h).
  Index(BTree* tree, TransactionManager* tm, BufferManager* bm,
        LogManager* log, LockManager* locks, SpaceManager* space,
        RebuildJournal* journal = nullptr);

  Index(const Index&) = delete;
  Index& operator=(const Index&) = delete;

  // ---- data operations (row-locking, table-IS-locked) ----
  Status Insert(Transaction* txn, const Slice& key, RowId rid);
  Status Delete(Transaction* txn, const Slice& key, RowId rid);
  Status Lookup(Transaction* txn, const Slice& key, RowId rid, bool* found);

  // Read-committed range scan cursor.
  std::unique_ptr<Cursor> NewCursor(Transaction* txn);

  // Scan that S-locks every qualifying row until transaction end
  // (repeatable-read flavor; Section 2.5's isolation-level hook).
  std::unique_ptr<LockingCursor> NewLockingCursor(Transaction* txn);

  // ---- rebuilds ----
  Status RebuildOnline(const RebuildOptions& options, RebuildResult* result);
  Status RebuildOffline(RebuildResult* result);

  BTree* tree() { return tree_; }

 private:
  // The "table lock": data operations take it shared for their duration;
  // the offline rebuild takes it exclusive. The online rebuild does not
  // touch it — that is the point of the paper.
  static constexpr RowId kTableLockId = ~0ull;

  BTree* const tree_;
  TransactionManager* const tm_;
  BufferManager* const bm_;
  LogManager* const log_;
  LockManager* const locks_;
  SpaceManager* const space_;
  RebuildJournal* const journal_;
};

}  // namespace oir

#endif  // OIR_CORE_INDEX_H_
