#ifndef OIR_CORE_REBUILD_JOURNAL_H_
#define OIR_CORE_REBUILD_JOURNAL_H_

// Latest-durable-rebuild-progress mailbox between the online rebuilder and
// the checkpointer. The rebuilder publishes every progress record it
// appends (and clears the entry on completion); Db::Checkpoint embeds the
// latest one into the kCheckpoint payload so a checkpoint taken mid-rebuild
// keeps the resume cursor recoverable even after the log prefix holding the
// progress records is truncated. After restart recovery the pending resume
// state is re-published here, so a post-recovery checkpoint taken before
// the rebuild is resumed still carries it.

#include <string>

#include "sync/mutex.h"
#include "wal/log_record.h"

namespace oir {

class RebuildJournal {
 public:
  // Publishes `info` as the latest progress (rebuilder thread / recovery).
  void Publish(const RebuildProgressInfo& info) {
    MutexLock l(mu_);
    valid_ = true;
    info_ = info;
  }

  // Drops the entry: the rebuild completed (no resume needed).
  void Clear() {
    MutexLock l(mu_);
    valid_ = false;
    info_ = RebuildProgressInfo();
  }

  // Copies the latest progress into *info; false when no rebuild is
  // pending (checkpoints then embed an inactive payload).
  bool Latest(RebuildProgressInfo* info) const {
    MutexLock l(mu_);
    if (!valid_) return false;
    *info = info_;
    return true;
  }

 private:
  mutable Mutex mu_;
  bool valid_ OIR_GUARDED_BY(mu_) = false;
  RebuildProgressInfo info_ OIR_GUARDED_BY(mu_);
};

}  // namespace oir

#endif  // OIR_CORE_REBUILD_JOURNAL_H_
