#ifndef OIR_CORE_DB_H_
#define OIR_CORE_DB_H_

// Database environment facade: wires the disk, buffer manager, log,
// lock manager, space manager, transaction manager and the B+-tree
// together, and drives crash simulation + restart recovery.

#include <memory>
#include <string>
#include <thread>

#include "btree/btree.h"
#include "core/options.h"
#include "core/rebuild_journal.h"
#include "obs/metrics.h"
#include "recovery/recovery.h"
#include "sync/mutex.h"
#include "txn/transaction_manager.h"

namespace oir {

class Index;

// One coherent stats snapshot across every subsystem (Db::GetStats).
struct StatsReport {
  CounterSnapshot counters;  // global event counters

  // Buffer pool.
  uint64_t pool_frames = 0;
  uint64_t pool_shards = 0;
  uint64_t pool_cached_pages = 0;

  // WAL.
  Lsn wal_tail_lsn = 0;
  Lsn wal_durable_lsn = 0;
  uint64_t wal_bytes_appended = 0;
  bool wal_group_commit = false;
  bool wal_pipeline = false;
  std::string wal_backend;    // effective backend after probes
  std::string wal_sync_mode;  // effective sync discipline
  uint64_t wal_segment_bytes = 0;
  uint64_t wal_inflight_segments = 0;

  // Lock manager.
  uint64_t locked_keys = 0;

  // B-tree.
  PageId root_page = kInvalidPageId;

  // Space.
  uint64_t pages_allocated = 0;
  uint64_t pages_deallocated = 0;
  uint64_t end_page = 0;

  // Last rebuild / recovery of this process, as JSON objects ("" if none).
  std::string last_rebuild_json;
  std::string last_recovery_json;

  // Registry view: every counter, gauge and timer histogram summary.
  obs::MetricRegistry::Snapshot metrics;
};

class Db {
 public:
  // Creates a fresh database (bootstraps an empty index). Existing files
  // at options.file_path / options.log_path are truncated.
  static Status Open(const DbOptions& options, std::unique_ptr<Db>* out);

  // Opens a database persisted by a previous process: requires
  // use_file_disk + file_path + log_path. Runs full restart recovery
  // (redo from the last checkpoint, undo of in-flight transactions) before
  // returning. `stats` may be null.
  static Status OpenExisting(const DbOptions& options,
                             std::unique_ptr<Db>* out,
                             RecoveryStats* stats = nullptr);
  ~Db();

  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  std::unique_ptr<Transaction> BeginTxn() { return txn_mgr_->Begin(); }
  Status Commit(Transaction* txn) { return txn_mgr_->Commit(txn); }
  Status Abort(Transaction* txn) { return txn_mgr_->Abort(txn); }

  // Simulates a crash (all non-durable state is discarded) followed by
  // restart recovery: analysis/redo, logical undo of losers, freeing of
  // still-deallocated pages, bit cleanup.
  Status CrashAndRecover(RecoveryStats* stats);

  // Takes a fuzzy checkpoint: snapshots the space manager's page states
  // and the active-transaction table into a kCheckpoint record, flushes
  // every dirty page, forces the log and publishes the master record.
  // After it completes, restart recovery scans from the checkpoint instead
  // of the log head. Returns (optionally) the LSN below which the log is
  // no longer needed.
  Status Checkpoint(Lsn* truncation_horizon = nullptr);

  // Takes a checkpoint and then reclaims the no-longer-needed log prefix.
  Status CheckpointAndTruncate();

  // ---- resumable rebuild ----
  // True when restart recovery found a rebuild that was in flight at the
  // crash (a durable kRebuildProgress record, or a checkpoint carrying
  // one, without a matching done record).
  bool has_pending_rebuild() const { return pending_rebuild_.pending; }
  const RebuildResumeState& pending_rebuild() const {
    return pending_rebuild_;
  }

  // Re-runs the crashed rebuild from its last durable cursor. `options`
  // supplies the knobs (ntasize, throttle, ...); the resume fields are
  // overwritten from the recovered pending state. InvalidArgument when no
  // rebuild is pending. On success the pending state is cleared.
  Status ResumeRebuild(RebuildOptions options, RebuildResult* result);

  // Fills `out` with a stats snapshot spanning the buffer pool, WAL, lock
  // manager, B-tree, space map, global counters and the metric registry.
  Status GetStats(StatsReport* out);

  // The same snapshot as one JSON document with "counters", "pool", "wal",
  // "lock", "btree", "space", "rebuild", "recovery", "timers", "gauges"
  // and "wait_profile" sections.
  std::string DumpStatsJson();

  // Human-readable rendering of the same snapshot.
  std::string DumpStatsText();

  // Writes a flight-record bundle (stats, trace ring, wait profile, lock
  // table, active transactions) right now. On success returns OK and
  // stores the bundle path in *path (if non-null). Do not call from a
  // context holding component mutexes.
  Status DumpFlightRecord(std::string* path = nullptr);

  Index* index() { return index_.get(); }
  BTree* tree() { return tree_.get(); }
  TransactionManager* txn_manager() { return txn_mgr_.get(); }
  BufferManager* buffer_manager() { return bm_.get(); }
  LogManager* log_manager() { return log_.get(); }
  LockManager* lock_manager() { return locks_.get(); }
  SpaceManager* space_manager() { return space_.get(); }
  Disk* disk() { return disk_.get(); }
  const DbOptions& options() const { return options_; }

 private:
  explicit Db(const DbOptions& options);

  // Installs recovery's rebuild resume point: records it for
  // ResumeRebuild and re-arms (or clears) the checkpoint journal.
  void AdoptRebuildResume(const RebuildResumeState& resume);

  // Registers the flight-recorder providers (stats / lock table / active
  // transactions) and starts the stats publisher if configured. Called at
  // the end of Open/OpenExisting, once the full stack exists.
  void StartObservability();
  // Unregisters providers (blocking out any in-flight dump) and joins the
  // publisher. Must run before any component is torn down.
  void StopObservability();
  void StatsPublisherLoop(std::string path, uint32_t interval_ms);

  DbOptions options_;
  // Set when OIR_TEST_WAL=file promoted an in-memory WAL to a temp file;
  // the destructor removes the file and its master sidecar.
  std::string ephemeral_wal_path_;
  std::unique_ptr<Disk> disk_;
  std::unique_ptr<BufferManager> bm_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<LockManager> locks_;
  std::unique_ptr<SpaceManager> space_;
  std::unique_ptr<TransactionManager> txn_mgr_;
  std::unique_ptr<BTree> tree_;
  std::unique_ptr<Index> index_;

  // Progress mailbox between the rebuilder and Checkpoint (see
  // rebuild_journal.h), plus the resume point recovered after a crash.
  RebuildJournal rebuild_journal_;
  RebuildResumeState pending_rebuild_;

  // Flight-recorder registration tokens (0 = not registered).
  uint64_t fr_stats_token_ = 0;
  uint64_t fr_locks_token_ = 0;
  uint64_t fr_txns_token_ = 0;

  Mutex pub_mu_;
  CondVar pub_cv_;
  bool pub_stop_ OIR_GUARDED_BY(pub_mu_) = false;
  std::thread pub_thread_;
};

}  // namespace oir

#endif  // OIR_CORE_DB_H_
