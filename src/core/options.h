#ifndef OIR_CORE_OPTIONS_H_
#define OIR_CORE_OPTIONS_H_

// User-facing option structs.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "obs/progress.h"
#include "storage/async_io.h"
#include "storage/page.h"

namespace oir {

class Disk;

struct DbOptions {
  // Page size in bytes. The paper's experiments use 2 KB (Section 6.4).
  uint32_t page_size = kDefaultPageSize;

  // Buffer pool capacity in pages.
  size_t buffer_pool_pages = 4096;

  // Buffer pool partitions (power of two). 0 picks automatically from the
  // pool size (one shard per 16 frames, at most 8). 1 restores the single
  // global-mutex pool for ablation.
  size_t buffer_pool_shards = 0;

  // WAL group commit: committers enqueue on a dedicated flusher thread and
  // one batched write+fsync covers every waiter in the group. Applies only
  // to file-backed logs (an in-memory log has no fsync to batch; see
  // LogManager::SetGroupCommit to force it there for testing).
  bool wal_group_commit = true;

  // Pipelined durable log path (file-backed logs): the WAL tail is carved
  // into segments that a dedicated sealer thread hands to an async backend,
  // so up to wal_inflight_segments write+sync operations overlap and
  // committers are acked on completion instead of taking turns behind one
  // blocking fsync. false restores the legacy one-round-at-a-time flusher
  // (ablation / "before" benchmarks).
  bool wal_pipeline = true;

  // Maximum bytes per sealed log segment. Smaller segments reduce
  // commit-ack latency; larger ones amortize the per-sync cost.
  uint32_t wal_segment_bytes = 256 * 1024;

  // Maximum sealed-but-not-yet-durable segments in flight.
  uint32_t wal_inflight_segments = 4;

  // Group-commit micro-batch window (microseconds): after a commit
  // demands a flush the sealer keeps the segment open this long so
  // concurrent commits share one device round. 0 seals immediately.
  uint32_t wal_group_window_us = 100;

  // Async log I/O backend and sync discipline (see storage/async_io.h).
  // Both are runtime-probed with fallbacks: uring→portable worker pool,
  // O_DIRECT→buffered fdatasync. Overridable via OIR_WAL_BACKEND /
  // OIR_WAL_SYNC environment variables.
  WalBackend wal_backend = WalBackend::kAuto;
  WalSyncMode wal_sync_mode = WalSyncMode::kFdatasync;

  // Background write-back worker: evictions prefer clean frames and hand
  // dirty ones to a dedicated cleaner, and checkpoints route their dirty
  // set through it, so foreground traffic never stalls on a data-page
  // flush. false restores fully inline write-back.
  bool async_writeback = true;

  // Back the database with a POSIX file instead of memory.
  bool use_file_disk = false;
  std::string file_path;

  // Persist the write-ahead log to this file (plus a `.master` sidecar for
  // the checkpoint pointer). Required for Db::OpenExisting. Empty = the
  // log lives in memory (crash testing via Db::CrashAndRecover).
  std::string log_path;

  // Initial device size in pages.
  uint32_t initial_disk_pages = 64;

  // Test hook: wraps the freshly created disk before any component sees it.
  // Fault-injection tests install a FaultInjectingDisk decorator here; the
  // returned disk is what the buffer pool and space manager talk to.
  std::function<std::unique_ptr<Disk>(std::unique_ptr<Disk>)> wrap_disk;

  // Live-stats publisher: when non-empty, a background thread writes
  // DumpStatsJson() to this path (atomic temp+rename) every
  // stats_publish_interval_ms, and feeds the flight recorder's
  // recent-stats ring. `oir_top` polls the file. The OIR_STATS_PUBLISH
  // and OIR_STATS_INTERVAL_MS environment variables override the path
  // and cadence, so any existing binary can publish without a flag
  // change.
  std::string stats_publish_path;
  uint32_t stats_publish_interval_ms = 500;
};

// Options of the online index rebuild (Section 3).
struct RebuildOptions {
  // Leaf pages rebuilt per multipage rebuild top action. The paper chose 32
  // based on its performance study (Sections 3, 6.4).
  uint32_t ntasize = 32;

  // Leaf pages rebuilt per transaction. At the end of each transaction the
  // new pages are forced to disk and the old pages become reusable; the
  // paper recommends "a few hundred pages" (Section 3).
  uint32_t xactsize = 256;

  // Percentage fill of new leaf pages, leaving head room for future
  // inserts (Section 4.1). 100 packs pages completely.
  uint32_t fillfactor = 100;

  // Pages per forced-write I/O — emulates configuring large buffers for
  // the rebuild (Section 6.3: 16 KB buffers over 2 KB pages => 8). Must
  // not exceed the buffer pool size (the run buffer is io_pages pages).
  uint32_t io_pages = 8;

  // Read-ahead twin of the forced write (Section 6.3 symmetry): the copy
  // phase prefetches each top action's physically contiguous source-page
  // runs with multi-page transfers of up to io_pages pages. Exposed for
  // ablation.
  bool prefetch = true;

  // Section 5.5 enhancement: fill level-1 pages by moving inserts into the
  // left sibling during propagation, avoiding a separate level-1 pass.
  // Exposed for ablation.
  bool reorganize_level1 = true;

  // Ablation of the minimal-logging design: when true, key contents are
  // logged (batch inserts) instead of the position-only keycopy record,
  // removing the need for the flush-before-free ordering (Section 3).
  bool log_full_keys = false;

  // Section 6.2 enhancement: set SPLIT bits (writers blocked, readers
  // allowed) on the pages being rebuilt during the copy phase, and flip
  // them to SHRINK bits only once the copying is done and the old pages
  // are about to be unlinked. PP always gets a SHRINK bit (it receives
  // rows). Default on; exposed for ablation.
  bool readers_during_copy = true;

  // Invoked on the rebuild thread after every top action and transaction
  // commit with a snapshot of the rebuild's progress. Must not call back
  // into the database. Leave empty for no callbacks; other threads can also
  // poll OnlineRebuilder::progress() directly.
  std::function<void(const obs::RebuildProgress&)> on_progress;

  // ---- resumability ----
  // Append a kRebuildProgress record (copy cursor, carried counters,
  // new-page high-water mark) after every N committed rebuild
  // transactions, plus one at start and one at completion. Restart
  // recovery re-arms a crashed rebuild from the last durable one. 0
  // disables progress logging (ablation: the pre-resume behavior).
  uint32_t progress_interval_txns = 1;

  // Resume point of a crashed rebuild (normally filled by
  // Db::ResumeRebuild from recovery's pending state; settable directly for
  // tests). With resume=true the copy starts after resume_cursor instead
  // of at the leftmost leaf; resume_cursor_valid=false resumes from the
  // beginning but still carries the counters below into the progress
  // tracker.
  bool resume = false;
  bool resume_cursor_valid = false;
  std::string resume_cursor;
  uint64_t resume_leaves_rebuilt = 0;
  uint64_t resume_top_actions = 0;
  uint64_t resume_transactions = 0;

  // ---- admission control ----
  // Pace the rebuild so foreground operations degrade no more than this
  // percentage versus their latency baseline. Between top actions the
  // throttle samples live signals — foreground mean latency and lock-wait
  // share from the wait profiler (when enabled), lock-watchdog fires and
  // buffer-pool eviction pressure from the global counters — and inserts
  // an attributed (WaitState::kThrottled) pause that grows
  // multiplicatively while foreground is over budget and decays
  // additively once it recovers. 0 disables pacing.
  uint32_t max_foreground_degradation_pct = 0;

  // Foreground mean-latency baseline in nanoseconds for the degradation
  // target. 0 captures it automatically from the wait profiler's read/
  // write aggregates at rebuild start (requires WaitProfiler enabled and
  // prior foreground traffic; otherwise only the counter-based signals
  // pace the rebuild).
  uint64_t throttle_baseline_ns = 0;
};

struct RebuildResult {
  uint64_t old_leaf_pages = 0;   // leaf pages consumed (deallocated)
  uint64_t new_leaf_pages = 0;   // leaf pages produced
  uint64_t keys_moved = 0;
  uint64_t top_actions = 0;
  uint64_t transactions = 0;
  uint64_t log_bytes = 0;        // log volume attributable to the rebuild
  uint64_t log_records = 0;
  uint64_t cpu_ns = 0;           // thread CPU time of the rebuild
  uint64_t wall_ns = 0;
  uint64_t level1_visits = 0;
  uint64_t io_ops = 0;

  // Resumability + admission control (this run only; a resumed run's
  // counters above do not include the crashed run's work).
  bool resumed = false;              // run started from a resume cursor
  std::string resume_cursor;         // the cursor it started from
  uint64_t progress_records = 0;     // kRebuildProgress records appended
  uint64_t throttle_pauses = 0;      // admission-control pauses taken
  uint64_t throttle_pause_us = 0;    // total attributed pause time

  // JSON object with every field above (stats-export path).
  std::string ToJson() const;
};

}  // namespace oir

#endif  // OIR_CORE_OPTIONS_H_
