#include "core/index.h"

#include "btree/cursor.h"
#include "obs/waitstate.h"
#include "util/logging.h"

namespace oir {

Index::Index(BTree* tree, TransactionManager* tm, BufferManager* bm,
             LogManager* log, LockManager* locks, SpaceManager* space,
             RebuildJournal* journal)
    : tree_(tree), tm_(tm), bm_(bm), log_(log), locks_(locks),
      space_(space), journal_(journal) {}

namespace {

// Holds the table lock in `mode` for the duration of one operation.
class TableLockGuard {
 public:
  TableLockGuard(LockManager* locks, TxnId owner, LockKey key, LockMode mode)
      : locks_(locks), owner_(owner), key_(key), ok_(false) {
    ok_ = locks_->Lock(owner_, key_, mode, /*conditional=*/false).ok();
  }
  ~TableLockGuard() {
    if (ok_) locks_->Unlock(owner_, key_);
  }
  bool ok() const { return ok_; }

 private:
  LockManager* locks_;
  TxnId owner_;
  LockKey key_;
  bool ok_;
};

}  // namespace

Status Index::Insert(Transaction* txn, const Slice& key, RowId rid) {
  obs::OpScope op(obs::OpType::kWrite);
  TableLockGuard table(locks_, txn->id(), LogicalLockKey(kTableLockId),
                       LockMode::kS);
  if (!table.ok()) return Status::Aborted("table lock timeout");
  // Row-level logical lock (Section 2), held to transaction end.
  OIR_RETURN_IF_ERROR(tm_->LockLogical(txn, rid, LockMode::kX));
  return tree_->Insert(OpCtx{txn->id(), txn->ctx()}, key, rid);
}

Status Index::Delete(Transaction* txn, const Slice& key, RowId rid) {
  obs::OpScope op(obs::OpType::kWrite);
  TableLockGuard table(locks_, txn->id(), LogicalLockKey(kTableLockId),
                       LockMode::kS);
  if (!table.ok()) return Status::Aborted("table lock timeout");
  OIR_RETURN_IF_ERROR(tm_->LockLogical(txn, rid, LockMode::kX));
  return tree_->Delete(OpCtx{txn->id(), txn->ctx()}, key, rid);
}

Status Index::Lookup(Transaction* txn, const Slice& key, RowId rid,
                     bool* found) {
  obs::OpScope op(obs::OpType::kRead);
  TableLockGuard table(locks_, txn->id(), LogicalLockKey(kTableLockId),
                       LockMode::kS);
  if (!table.ok()) return Status::Aborted("table lock timeout");
  return tree_->Lookup(OpCtx{txn->id(), txn->ctx()}, key, rid, found);
}

std::unique_ptr<Cursor> Index::NewCursor(Transaction* txn) {
  return std::make_unique<Cursor>(tree_, OpCtx{txn->id(), txn->ctx()});
}

std::unique_ptr<LockingCursor> Index::NewLockingCursor(Transaction* txn) {
  return std::make_unique<LockingCursor>(NewCursor(txn), tm_, txn);
}

Status Index::RebuildOnline(const RebuildOptions& options,
                            RebuildResult* result) {
  // No table lock, no logical locks — the whole point of the paper.
  OnlineRebuilder rebuilder(tree_, tm_, bm_, log_, locks_, space_, journal_);
  return rebuilder.Run(options, result);
}

Status Index::RebuildOffline(RebuildResult* result) {
  // Drop-and-recreate baseline: exclusive table lock for the duration, the
  // behavior the paper's introduction describes as unacceptable for OLTP.
  *result = RebuildResult();
  std::unique_ptr<Transaction> txn = tm_->Begin();
  OpCtx op{txn->id(), txn->ctx()};

  Status s = locks_->Lock(txn->id(), LogicalLockKey(kTableLockId),
                          LockMode::kX, /*conditional=*/false);
  if (!s.ok()) {
    (void)tm_->Abort(txn.get());  // already propagating the first error
    return s;
  }
  txn->TrackLock(LogicalLockKey(kTableLockId));

  // Collect every row and every page of the old tree.
  std::vector<std::string> rows;
  std::vector<PageId> old_pages;
  {
    // Gather pages level by level from the root.
    std::vector<PageId> frontier = {tree_->root()};
    while (!frontier.empty()) {
      std::vector<PageId> next;
      for (PageId p : frontier) {
        old_pages.push_back(p);
        PageRef ref;
        s = bm_->Fetch(p, &ref);
        if (!s.ok()) break;
        SlottedPage sp(ref.data(), bm_->page_size());
        if (ref.header()->level != kLeafLevel) {
          for (SlotId i = 0; i < sp.nslots(); ++i) {
            next.push_back(node::ChildOf(sp.Get(i)));
          }
        } else {
          for (SlotId i = 0; i < sp.nslots(); ++i) {
            rows.push_back(sp.Get(i).ToString());
          }
        }
      }
      if (!s.ok()) break;
      frontier = std::move(next);
    }
  }
  if (!s.ok()) {
    (void)tm_->Abort(txn.get());  // already propagating the first error
    return s;
  }

  // Bulk-load a fresh tree bottom-up.
  const uint32_t cap = bm_->page_size() - kPageHeaderSize;
  auto build_level = [&](const std::vector<std::string>& level_rows,
                         uint16_t level, bool leaf,
                         std::vector<std::pair<std::string, PageId>>* out)
      -> Status {
    if (level_rows.empty()) return Status::OK();
    // Pack rows into pages; record (first separator, page) pairs.
    std::vector<std::vector<std::string>> pages;
    std::vector<std::string> firsts;
    uint32_t used = 0;
    for (const std::string& r : level_rows) {
      if (pages.empty() || used + r.size() + kSlotSize > cap) {
        pages.emplace_back();
        firsts.push_back(r);
        used = 0;
      }
      pages.back().push_back(r);
      used += static_cast<uint32_t>(r.size()) + kSlotSize;
    }
    std::vector<PageId> ids;
    OIR_RETURN_IF_ERROR(space_->AllocateChunk(
        op.ctx, static_cast<uint32_t>(pages.size()), &ids));
    for (size_t i = 0; i < pages.size(); ++i) {
      PageId prev = leaf && i > 0 ? ids[i - 1] : kInvalidPageId;
      PageId next = leaf && i + 1 < pages.size() ? ids[i + 1]
                                                 : kInvalidPageId;
      PageRef ref;
      OIR_RETURN_IF_ERROR(
          tree_->FormatNewPage(op, ids[i], level, prev, next, &ref));
      tree_->LogBatchInsert(op, &ref, 0, pages[i], level);
      ref.latch().UnlockX();
      out->emplace_back(firsts[i], ids[i]);
    }
    return Status::OK();
  };

  std::vector<std::pair<std::string, PageId>> level_pages;
  s = build_level(rows, kLeafLevel, /*leaf=*/true, &level_pages);
  uint16_t level = 0;
  while (s.ok() && level_pages.size() > 1) {
    ++level;
    std::vector<std::string> parent_rows;
    parent_rows.reserve(level_pages.size());
    for (size_t i = 0; i < level_pages.size(); ++i) {
      // The first child of each page loses its separator during packing —
      // but packing happens per page, so encode all and fix first rows by
      // re-encoding below. For simplicity, keep full separators except the
      // very first entry (empty string sorts first anyway).
      Slice sep = i == 0 ? Slice() : Slice(level_pages[i].first);
      parent_rows.push_back(node::MakeNonLeafRow(level_pages[i].second, sep));
    }
    std::vector<std::pair<std::string, PageId>> next_pages;
    s = build_level(parent_rows, level, /*leaf=*/false, &next_pages);
    // Fix separator bookkeeping: the "first key" of a non-leaf page is the
    // separator of its first row, which should bubble up.
    if (s.ok()) {
      size_t row_idx = 0;
      for (size_t i = 0; i < next_pages.size(); ++i) {
        next_pages[i].first =
            i == 0 ? std::string()
                   : node::SeparatorOf(Slice(next_pages[i].first)).ToString();
        (void)row_idx;
      }
      // Strip the separator of the first row of each page.
      for (auto& [first, pid] : next_pages) {
        PageRef ref;
        OIR_RETURN_IF_ERROR(bm_->Fetch(pid, &ref));
        ref.latch().LockX();
        SlottedPage sp(ref.data(), bm_->page_size());
        if (sp.nslots() > 0) {
          PageId child = node::ChildOf(sp.Get(0));
          if (!node::SeparatorOf(sp.Get(0)).empty()) {
            tree_->LogDelete(op, &ref, 0, level);
            tree_->LogInsert(op, &ref, 0, node::MakeNonLeafRow(child, Slice()),
                             level);
          }
        }
        ref.latch().UnlockX();
      }
      level_pages = std::move(next_pages);
    }
  }
  if (s.ok() && level_pages.empty()) {
    // Empty index: a fresh empty root leaf.
    std::vector<PageId> ids;
    s = space_->AllocateChunk(op.ctx, 1, &ids);
    if (s.ok()) {
      PageRef ref;
      s = tree_->FormatNewPage(op, ids[0], kLeafLevel, kInvalidPageId,
                               kInvalidPageId, &ref);
      if (s.ok()) ref.latch().UnlockX();
      level_pages.emplace_back(std::string(), ids[0]);
    }
  }
  if (s.ok()) s = tree_->SetRoot(op, level_pages[0].second);
  if (s.ok()) {
    for (PageId p : old_pages) {
      s = space_->Deallocate(op.ctx, p);
      if (!s.ok()) break;
    }
  }
  if (!s.ok()) {
    (void)tm_->Abort(txn.get());  // already propagating the first error
    return s;
  }
  OIR_RETURN_IF_ERROR(bm_->FlushAll());
  OIR_RETURN_IF_ERROR(tm_->Commit(txn.get()));
  for (PageId p : old_pages) {
    bm_->Discard(p);  // before Free (see OnlineRebuilder: a concurrent
    space_->Free(p);  // allocation must not race with the discard)
  }
  result->old_leaf_pages = old_pages.size();
  result->keys_moved = rows.size();
  result->transactions = 1;
  return Status::OK();
}

}  // namespace oir
