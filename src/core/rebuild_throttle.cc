#include "core/rebuild_throttle.h"

#include <thread>

namespace oir {

namespace {

// AIMD shape. The ceiling bounds rebuild starvation: even a saturated
// foreground cannot stall the rebuild forever, only stretch it.
constexpr uint64_t kMinPauseUs = 250;
constexpr uint64_t kMaxPauseUs = 20 * 1000;
constexpr uint64_t kDecayUs = 500;
// Re-read the profiler/counter signals every this many Pace() calls; the
// pause itself applies on every call.
constexpr uint32_t kSampleEveryCalls = 4;
// Foreground lock-wait share of wall-clock above which the rebuild is
// considered in the way even when mean latency looks fine (percent).
constexpr uint64_t kLockShareCeilingPct = 40;
// Eviction pressure: evictions per sampled interval above which the pool
// is churning (the rebuild's run buffer + prefetch displacing the working
// set). Scaled by nothing fancy — it is a coarse tiebreaker signal.
constexpr uint64_t kEvictionBurst = 512;

}  // namespace

void RebuildThrottle::Start() {
  if (!enabled()) return;
  last_counters_ = GlobalCounters::Get().Snapshot();
  last_sample_ = ProfilerSample();
  calls_since_sample_ = 0;
  pause_us_ = 0;
  stats_ = Stats();

  if (!obs::WaitProfiler::enabled()) {
    stats_.baseline_ns = config_.baseline_ns;
    return;
  }
  uint64_t count = 0, wall = 0, lock = 0;
  for (const auto& b : obs::WaitProfiler::TakeSnapshot()) {
    if (b.type != obs::OpType::kRead && b.type != obs::OpType::kWrite) {
      continue;
    }
    count += b.count;
    wall += b.wall_ns;
    lock += b.state_ns[static_cast<size_t>(obs::WaitState::kLockWait)];
  }
  last_sample_.count = count;
  last_sample_.wall_ns = wall;
  last_sample_.lock_ns = lock;
  if (config_.baseline_ns == 0 && count > 0) {
    // Auto-baseline: mean foreground latency over all traffic so far.
    config_.baseline_ns = wall / count;
  }
  stats_.baseline_ns = config_.baseline_ns;
}

bool RebuildThrottle::OverBudget() {
  CounterSnapshot now = GlobalCounters::Get().Snapshot();
  CounterSnapshot d = now - last_counters_;
  last_counters_ = now;

  // Watchdog fires mean a foreground op blocked long enough to trip the
  // lock-wait watchdog — always treat as over budget.
  if (d.lock_watchdog_fires > 0) return true;

  bool over = false;
  if (obs::WaitProfiler::enabled()) {
    uint64_t count = 0, wall = 0, lock = 0;
    for (const auto& b : obs::WaitProfiler::TakeSnapshot()) {
      if (b.type != obs::OpType::kRead && b.type != obs::OpType::kWrite) {
        continue;
      }
      count += b.count;
      wall += b.wall_ns;
      lock += b.state_ns[static_cast<size_t>(obs::WaitState::kLockWait)];
    }
    uint64_t dcount = count - last_sample_.count;
    uint64_t dwall = wall - last_sample_.wall_ns;
    uint64_t dlock = lock - last_sample_.lock_ns;
    last_sample_.count = count;
    last_sample_.wall_ns = wall;
    last_sample_.lock_ns = lock;

    if (dcount > 0) {
      uint64_t mean = dwall / dcount;
      if (config_.baseline_ns == 0) {
        // No traffic existed at Start(); adopt the first interval's mean
        // as the baseline rather than pacing against nothing.
        config_.baseline_ns = mean;
        stats_.baseline_ns = mean;
      } else {
        uint64_t budget = config_.baseline_ns +
                          config_.baseline_ns *
                              config_.max_degradation_pct / 100;
        if (mean > budget) over = true;
      }
      if (dwall > 0 && dlock * 100 > dwall * kLockShareCeilingPct) {
        over = true;
      }
    }
  }
  // Pool churn: heavy eviction traffic alongside misses means the rebuild
  // is displacing the foreground working set.
  if (d.pool_evictions > kEvictionBurst &&
      d.pool_misses > d.pool_hits) {
    over = true;
  }
  return over;
}

uint64_t RebuildThrottle::Pace() {
  if (!enabled()) return 0;

  // Cede the processor once per batch: admission control can only measure
  // foreground latency if foreground threads actually get to run. On a
  // saturated (or single-core) machine the copy loop otherwise monopolizes
  // the CPU between its short blocking points and the profiler sees zero
  // foreground traffic — reading "no pressure" exactly when pressure is
  // highest.
  std::this_thread::yield();

  if (calls_since_sample_++ % kSampleEveryCalls == 0) {
    if (OverBudget()) {
      pause_us_ = pause_us_ == 0 ? kMinPauseUs : pause_us_ * 2;
      if (pause_us_ > kMaxPauseUs) pause_us_ = kMaxPauseUs;
      ++stats_.backoffs;
    } else if (pause_us_ > 0) {
      pause_us_ = pause_us_ > kDecayUs ? pause_us_ - kDecayUs : 0;
    }
  }
  if (pause_us_ == 0) return 0;

  auto begin = std::chrono::steady_clock::now();
  {
    obs::WaitScope ws(obs::WaitState::kThrottled);
    MutexLock l(mu_);
    // wait-state: admission-control pacing pause, attributed above; the CV
    // is never signalled, so this is a bounded timed wait.
    cv_.WaitFor(mu_, std::chrono::microseconds(pause_us_));
  }
  uint64_t waited_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - begin)
          .count());
  ++stats_.pauses;
  stats_.pause_us += waited_us;
  return waited_us;
}

RebuildThrottle::Stats RebuildThrottle::stats() const { return stats_; }

}  // namespace oir
