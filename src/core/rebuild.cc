#include "core/rebuild.h"

#include <algorithm>
#include <cstdio>

#include "core/rebuild_throttle.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/waitstate.h"
#include "testing/crash_point.h"
#include "util/clock.h"
#include "util/counters.h"
#include "util/logging.h"

namespace oir {

namespace {

// One propagation entry (Section 5.1). `sender` is the page that passed the
// entry; UPDATE/INSERT entries carry the index entry [sep -> child] to put
// at the next level; route_key is a key from the sender's range used to
// traverse to its parent.
struct PropEntry {
  enum class Kind { kDelete, kUpdate, kInsert };
  Kind kind = Kind::kDelete;
  PageId sender = kInvalidPageId;
  std::string route_key;
  std::string sep;
  PageId child = kInvalidPageId;
};

// The level-1 page open for left-sibling inserts (Section 5.5).
struct OpenLeft {
  bool valid = false;
  PageId page = kInvalidPageId;
};

}  // namespace

struct OnlineRebuilder::Impl {
  BTree* tree;
  TransactionManager* tm;
  BufferManager* bm;
  LogManager* log;
  LockManager* locks;
  SpaceManager* space;
  RebuildJournal* journal = nullptr;
  RebuildOptions opts;
  RebuildResult* result;
  obs::RebuildProgressTracker* progress;

  // Rebuild position: largest composite key copied so far.
  std::string resume_key;
  bool has_resume = false;

  // Highest new page id produced so far (0 = none yet): the side-file
  // high-water mark carried in progress records so a resumed run knows the
  // extent of already-produced pages.
  PageId new_page_hwm = kInvalidPageId;

  // Committed rebuild transactions since the last progress record.
  uint32_t txns_since_progress = 0;

  // Per-transaction page sets. flush_pages_txn holds every keycopy TARGET
  // of the transaction — the new pages plus each top action's PP, which may
  // be a page created by an earlier transaction. All of them must reach
  // disk before the old pages are freed (Section 3), since keycopy redo
  // reconstructs targets from the source pages.
  std::vector<PageId> flush_pages_txn;
  std::vector<PageId> old_pages_txn;

  uint32_t page_size() const { return bm->page_size(); }
  uint32_t LeafCapacityBytes() const {
    return page_size() - kPageHeaderSize;
  }
  uint32_t FillTargetBytes() const {
    uint32_t t = LeafCapacityBytes() * opts.fillfactor / 100;
    // Always leave room for at least one maximal row so packing can make
    // progress.
    uint32_t min_t = kMaxUserKeyLen + sizeof(RowId) + kSlotSize;
    return std::max(t, min_t);
  }

  Status Run();
  // Appends (and flushes) a kRebuildProgress record describing the current
  // durable position, fires the "rebuild.progress.logged" crash point and
  // mirrors the record into the journal for checkpoint embedding.
  // Appends a kRebuildProgress record. `in_txn` records ride ahead of
  // their transaction's commit record (its flush makes them durable);
  // standalone markers are flushed immediately.
  Status LogProgress(bool done_flag, bool in_txn);
  Status TopAction(OpCtx op, BTree::Path* path, bool* done);
  Status LockBatch(OpCtx op, BTree::NtaScope* nta, const Slice& skey,
                   PageId* pp_id, std::vector<PageId>* batch, PageId* np_id,
                   bool* done);
  Status CopyPhase(OpCtx op, BTree::NtaScope* nta, PageId pp_id,
                   const std::vector<PageId>& batch, PageId np_id,
                   std::vector<PropEntry>* leaf_entries,
                   std::string* pp_route_key, bool* have_pp_route);
  Status Propagate(OpCtx op, BTree::NtaScope* nta,
                   std::vector<PropEntry> entries, uint16_t level,
                   const std::string& pp_route_key, bool have_pp_route,
                   BTree::Path* path);
  Status ApplyGroup(OpCtx op, BTree::NtaScope* nta, PageRef* parent,
                    uint16_t level, const PropEntry* entries, size_t count,
                    OpenLeft* open_left, std::vector<PropEntry>* next_level);
  Status SetBit(OpCtx op, BTree::NtaScope* nta, PageId page, uint16_t flag);
  Status FreeOldPagesViaLogScan(Transaction* txn);
};

OnlineRebuilder::OnlineRebuilder(BTree* tree, TransactionManager* tm,
                                 BufferManager* bm, LogManager* log,
                                 LockManager* locks, SpaceManager* space,
                                 RebuildJournal* journal)
    : tree_(tree),
      tm_(tm),
      bm_(bm),
      log_(log),
      locks_(locks),
      space_(space),
      journal_(journal) {}

Status OnlineRebuilder::Run(const RebuildOptions& options,
                            RebuildResult* result) {
  if (options.ntasize < 1 || options.xactsize < options.ntasize ||
      options.fillfactor < 50 || options.fillfactor > 100 ||
      options.io_pages < 1) {
    return Status::InvalidArgument("bad rebuild options");
  }
  // An io_pages run larger than the pool cannot be staged for a forced
  // multi-page write (and the prefetch path uses the same run size).
  if (options.io_pages > bm_->pool_frames()) {
    return Status::InvalidArgument("io_pages exceeds the buffer pool size");
  }
  if (options.resume && options.resume_cursor_valid &&
      options.resume_cursor.empty()) {
    return Status::InvalidArgument("resume cursor marked valid but empty");
  }
  *result = RebuildResult();
  Impl impl;
  impl.tree = tree_;
  impl.tm = tm_;
  impl.bm = bm_;
  impl.log = log_;
  impl.locks = locks_;
  impl.space = space_;
  impl.journal = journal_;
  impl.opts = options;
  impl.result = result;
  impl.progress = &progress_;

  progress_.Reset();
  progress_.Begin(space_->CountInState(PageState::kAllocated));
  if (options.resume) {
    // Carry the crashed run's counters so pollers see cumulative progress;
    // RebuildResult stays this-run-only.
    progress_.resumed.store(true, std::memory_order_relaxed);
    progress_.leaves_rebuilt.store(options.resume_leaves_rebuilt,
                                   std::memory_order_relaxed);
    progress_.top_actions.store(options.resume_top_actions,
                                std::memory_order_relaxed);
    progress_.transactions.store(options.resume_transactions,
                                 std::memory_order_relaxed);
    result->resumed = true;
    result->resume_cursor =
        options.resume_cursor_valid ? options.resume_cursor : std::string();
  }

  // Live-progress gauges for pollers (oir_top): registered only while the
  // rebuild runs; the callbacks capture progress_, which outlives them.
  auto& reg = obs::MetricRegistry::Get();
  obs::RebuildProgressTracker* pr = &progress_;
  reg.RegisterGauge("rebuild.active", [] { return uint64_t{1}; });
  reg.RegisterGauge("rebuild.leaves_total", [pr] {
    return pr->leaves_total.load(std::memory_order_relaxed);
  });
  reg.RegisterGauge("rebuild.leaves_rebuilt", [pr] {
    return pr->leaves_rebuilt.load(std::memory_order_relaxed);
  });
  reg.RegisterGauge("rebuild.top_actions", [pr] {
    return pr->top_actions.load(std::memory_order_relaxed);
  });
  reg.RegisterGauge("rebuild.progress_records", [pr] {
    return pr->progress_records.load(std::memory_order_relaxed);
  });
  reg.RegisterGauge("rebuild.throttle_pauses", [pr] {
    return pr->throttle_pauses.load(std::memory_order_relaxed);
  });
  reg.RegisterGauge("rebuild.throttle_us", [pr] {
    return pr->throttle_us.load(std::memory_order_relaxed);
  });

  CounterSnapshot before = GlobalCounters::Get().Snapshot();
  uint64_t cpu0 = ThreadCpuNanos();
  uint64_t wall0 = NowNanos();
  Status s = impl.Run();
  result->cpu_ns = ThreadCpuNanos() - cpu0;
  result->wall_ns = NowNanos() - wall0;
  CounterSnapshot delta = GlobalCounters::Get().Snapshot() - before;
  result->log_bytes = delta.log_bytes;
  result->log_records = delta.log_records;
  result->level1_visits = delta.level1_visits;
  result->io_ops = delta.io_ops;
  reg.UnregisterGauge("rebuild.active");
  reg.UnregisterGauge("rebuild.leaves_total");
  reg.UnregisterGauge("rebuild.leaves_rebuilt");
  reg.UnregisterGauge("rebuild.top_actions");
  reg.UnregisterGauge("rebuild.progress_records");
  reg.UnregisterGauge("rebuild.throttle_pauses");
  reg.UnregisterGauge("rebuild.throttle_us");
  progress_.Finish();
  if (options.on_progress) options.on_progress(progress_.Load());
  // The last completed rebuild is exported through the JSON stats path
  // (Db::DumpStatsJson "rebuild" section).
  obs::MetricRegistry::Get().SetReport("rebuild", result->ToJson());
  return s;
}

std::string RebuildResult::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("old_leaf_pages").Value(old_leaf_pages);
  w.Key("new_leaf_pages").Value(new_leaf_pages);
  w.Key("keys_moved").Value(keys_moved);
  w.Key("top_actions").Value(top_actions);
  w.Key("transactions").Value(transactions);
  w.Key("log_bytes").Value(log_bytes);
  w.Key("log_records").Value(log_records);
  w.Key("cpu_ns").Value(cpu_ns);
  w.Key("wall_ns").Value(wall_ns);
  w.Key("level1_visits").Value(level1_visits);
  w.Key("io_ops").Value(io_ops);
  w.Key("resumed").Value(resumed);
  w.Key("resume_cursor").Value(resume_cursor);
  w.Key("progress_records").Value(progress_records);
  w.Key("throttle_pauses").Value(throttle_pauses);
  w.Key("throttle_pause_us").Value(throttle_pause_us);
  w.EndObject();
  return w.str();
}

Status OnlineRebuilder::Impl::Run() {
  // Resume point of a crashed run (Db::ResumeRebuild / tests): the copy
  // restarts after the last durable cursor instead of at the leftmost leaf.
  if (opts.resume && opts.resume_cursor_valid) {
    resume_key = opts.resume_cursor;
    has_resume = true;
  }

  // Admission control: paced between top actions; lives for this run only.
  RebuildThrottle throttle(RebuildThrottle::Config{
      opts.max_foreground_degradation_pct, opts.throttle_baseline_ns});
  throttle.Start();

  // Durable begin marker: recovery learns a rebuild is in flight even
  // before the first transaction commits (resume falls back to "restart
  // from the cursor carried here" — for a fresh run, from the beginning,
  // but with the prior counters intact).
  Status ps = LogProgress(/*done_flag=*/false, /*in_txn=*/false);
  if (!ps.ok()) return ps;

  bool done = false;
  BTree::Path path;
  while (!done) {
    OIR_CRASH_POINT("rebuild.txn.begin");
    std::unique_ptr<Transaction> txn = tm->Begin();
    OpCtx op{txn->id(), txn->ctx()};
    flush_pages_txn.clear();
    old_pages_txn.clear();
    uint32_t pages_this_txn = 0;
    Status s;
    while (pages_this_txn < opts.xactsize && !done) {
      size_t before = old_pages_txn.size();
      OIR_TRACE(obs::TraceEventType::kTopActionBegin, result->top_actions, 0);
      {
        // Each top action is one rebuild "operation" in the wait profile;
        // pacing inside the scope attributes the pause as throttled time
        // of the rebuild op rather than unclassified thread idle.
        obs::OpScope rebuild_op(obs::OpType::kRebuild);
        uint64_t paused_us = throttle.Pace();
        if (paused_us > 0) {
          progress->throttle_pauses.fetch_add(1, std::memory_order_relaxed);
          progress->throttle_us.fetch_add(paused_us,
                                          std::memory_order_relaxed);
        }
        s = TopAction(op, &path, &done);
      }
      const uint64_t delta = old_pages_txn.size() - before;
      OIR_TRACE(obs::TraceEventType::kTopActionEnd, result->top_actions,
                delta);
      if (!s.ok()) break;
      pages_this_txn += static_cast<uint32_t>(delta);
      progress->leaves_rebuilt.fetch_add(delta, std::memory_order_relaxed);
      progress->top_actions.store(opts.resume_top_actions +
                                      result->top_actions,
                                  std::memory_order_relaxed);
      if (opts.on_progress) opts.on_progress(progress->Load());
    }
    if (!s.ok()) {
      // Abort path (Section 4.1.3): the in-flight top action was already
      // rolled back inside TopAction; completed top actions survive the
      // transaction rollback (nested top actions). Their new pages must be
      // flushed before their old pages are freed.
      // Best-effort: the abort outcome does not depend on this flush.
      (void)bm->FlushPages(flush_pages_txn, opts.io_pages);
      Status ab = tm->Abort(txn.get());
      (void)ab;
      for (PageId p : old_pages_txn) {
        if (space->GetState(p) == PageState::kDeallocated) {
          // Drop the stale buffer BEFORE the page becomes allocatable;
          // otherwise a concurrent allocation could format the page and
          // have its frame discarded from under it.
          bm->Discard(p);
          space->Free(p);
        }
      }
      {
        RebuildThrottle::Stats ts = throttle.stats();
        result->throttle_pauses = ts.pauses;
        result->throttle_pause_us = ts.pause_us;
      }
      return s;
    }
    // Commit path (Section 3): force the new pages, commit, then free the
    // old pages found by scanning the transaction's log chain.
    static obs::TimerStat* const flush_timer =
        obs::MetricRegistry::Get().Timer("rebuild.flush_ns");
    const uint64_t flush0 = NowNanos();
    OIR_CRASH_POINT("rebuild.txn.flush");
    OIR_RETURN_IF_ERROR(bm->FlushPages(flush_pages_txn, opts.io_pages));
    // Durable progress rides AHEAD of the commit record: the group-commit
    // flush that makes this transaction durable makes the progress record
    // durable in the same prefix, so the resume point can never trail the
    // committed transaction count — a crash anywhere after Commit returns
    // still finds this transaction's cursor on disk. (Safe even if the
    // commit record itself is lost: the record's top actions are NTAs in
    // the same durable prefix, and they survive the rollback.) The done
    // record doubles as the "no resume needed" marker for recovery and
    // clears the checkpoint journal.
    if (opts.progress_interval_txns > 0) {
      ++txns_since_progress;
      if (done || txns_since_progress >= opts.progress_interval_txns) {
        txns_since_progress = 0;
        OIR_RETURN_IF_ERROR(LogProgress(/*done_flag=*/done, /*in_txn=*/true));
      }
    }
    OIR_CRASH_POINT("rebuild.txn.commit");
    OIR_RETURN_IF_ERROR(tm->Commit(txn.get()));
    OIR_RETURN_IF_ERROR(FreeOldPagesViaLogScan(txn.get()));
    OIR_CRASH_POINT("rebuild.txn.freed");
    const uint64_t flush_ns = NowNanos() - flush0;
    progress->flush_us.fetch_add(flush_ns / 1000, std::memory_order_relaxed);
    if (obs::MetricRegistry::timers_enabled()) flush_timer->Record(flush_ns);
    ++result->transactions;
    progress->transactions.fetch_add(1, std::memory_order_relaxed);
    if (opts.on_progress) opts.on_progress(progress->Load());
  }
  RebuildThrottle::Stats ts = throttle.stats();
  result->throttle_pauses = ts.pauses;
  result->throttle_pause_us = ts.pause_us;
  return Status::OK();
}

Status OnlineRebuilder::Impl::LogProgress(bool done_flag, bool in_txn) {
  if (opts.progress_interval_txns == 0) return Status::OK();
  LogRecord rec;
  rec.type = LogType::kRebuildProgress;
  RebuildProgressInfo& rp = rec.rebuild_progress;
  rp.active = !done_flag;
  rp.done = done_flag;
  rp.has_cursor = has_resume;
  rp.cursor = resume_key;
  rp.leaves_rebuilt =
      progress->leaves_rebuilt.load(std::memory_order_relaxed);
  rp.top_actions = opts.resume_top_actions + result->top_actions;
  // An in-transaction record rides ahead of its transaction's commit
  // record, so it counts the transaction it rides in: if the record is
  // durable, every preceding top action is durable with it (WAL flushes
  // are prefix-ordered, and top actions are NTAs that survive even their
  // transaction's rollback) — the cursor is valid no matter how the commit
  // itself fares.
  rp.transactions =
      opts.resume_transactions + result->transactions + (in_txn ? 1 : 0);
  rp.new_page_hwm = new_page_hwm;
  Lsn lsn = log->AppendSystem(&rec);
  if (!in_txn) {
    // Standalone marker (begin): nothing downstream is about to flush it,
    // so force it durable now. In-transaction records skip this — the
    // group-commit flush that makes the transaction durable covers them.
    OIR_RETURN_IF_ERROR(log->FlushTo(lsn));
  }
  OIR_CRASH_POINT("rebuild.progress.logged");
  ++result->progress_records;
  progress->progress_records.fetch_add(1, std::memory_order_relaxed);
  if (journal != nullptr) {
    if (done_flag) {
      journal->Clear();
    } else {
      journal->Publish(rp);
    }
  }
  return Status::OK();
}

Status OnlineRebuilder::Impl::FreeOldPagesViaLogScan(Transaction* txn) {
  // Section 4.1.3: the transaction scans its own log records to find the
  // pages it deallocated and frees them.
  Lsn cur = txn->last_lsn();
  while (cur != kInvalidLsn) {
    LogRecord rec;
    OIR_RETURN_IF_ERROR(log->ReadRecord(cur, &rec));
    if (rec.type == LogType::kDealloc && !rec.is_clr) {
      for (PageId p : rec.pages) {
        if (space->GetState(p) == PageState::kDeallocated) {
          // Discard first: once Free() runs the page is allocatable by
          // concurrent transactions, and discarding after that could
          // destroy a freshly formatted page.
          bm->Discard(p);
          space->Free(p);
        }
      }
    }
    cur = rec.prev_lsn;
  }
  return Status::OK();
}

Status OnlineRebuilder::Impl::SetBit(OpCtx /*op*/, BTree::NtaScope* nta,
                                     PageId page, uint16_t flag) {
  PageRef ref;
  OIR_RETURN_IF_ERROR(bm->Fetch(page, &ref));
  ref.latch().LockX();
  ref.header()->flags |= flag;
  ref.latch().UnlockX();
  nta->bits.push_back(page);
  return Status::OK();
}

// Locks PP, P1..Pn per Section 4.1.1: PP and P1 unconditionally (but
// releasing everything before waiting, per the Section 6.5 deadlock rule),
// P2..Pn conditionally — a busy page truncates the batch.
Status OnlineRebuilder::Impl::LockBatch(OpCtx op, BTree::NtaScope* nta,
                                        const Slice& skey, PageId* pp_id,
                                        std::vector<PageId>* batch,
                                        PageId* np_id, bool* done) {
  for (int attempt = 0;; ++attempt) {
    if (attempt > 1000000) return Status::Aborted("rebuild lock livelock");
    // Find P1: the leaf owning skey, or a successor if that leaf holds no
    // row >= skey.
    BTree::Path scratch;
    PageRef p1;
    OIR_RETURN_IF_ERROR(
        tree->Traverse(op, skey, /*writer=*/true, kLeafLevel, &p1, &scratch));
    for (;;) {
      SlottedPage sp(p1.data(), page_size());
      if (node::LeafLowerBound(sp, skey) < sp.nslots()) break;
      PageId next = p1.header()->next_page;
      if (next == kInvalidPageId) {
        p1.latch().UnlockX();
        *done = true;
        return Status::OK();
      }
      PageRef nref;
      OIR_RETURN_IF_ERROR(bm->Fetch(next, &nref));
      nref.latch().LockX();
      if ((nref.header()->flags & (kFlagSplit | kFlagShrink)) != 0) {
        nref.latch().UnlockX();
        nref.Release();
        p1.latch().UnlockX();
        p1.Release();
        OIR_RETURN_IF_ERROR(locks->LockInstant(op.id, AddressLockKey(next),
                                               LockMode::kS,
                                               /*conditional=*/false));
        nref = PageRef();
        goto retry;
      }
      p1.latch().UnlockX();
      p1 = std::move(nref);
    }
    {
      const PageId p1_id = p1.id();
      progress->current_page.store(p1_id, std::memory_order_relaxed);
      const PageId prev_guess = p1.header()->prev_page;
      p1.latch().UnlockX();
      p1.Release();

      // Acquire PP then P1, left to right, conditionally; on conflict
      // release everything, wait, retry (Section 6.5).
      if (prev_guess != kInvalidPageId) {
        Status ls = locks->Lock(op.id, AddressLockKey(prev_guess),
                                LockMode::kX, /*conditional=*/true);
        if (ls.IsBusy()) {
          OIR_RETURN_IF_ERROR(locks->LockInstant(
              op.id, AddressLockKey(prev_guess), LockMode::kS,
              /*conditional=*/false));
          goto retry;
        }
        OIR_RETURN_IF_ERROR(ls);
      }
      Status ls = locks->Lock(op.id, AddressLockKey(p1_id), LockMode::kX,
                              /*conditional=*/true);
      if (ls.IsBusy()) {
        if (prev_guess != kInvalidPageId) {
          locks->Unlock(op.id, AddressLockKey(prev_guess));
        }
        OIR_RETURN_IF_ERROR(locks->LockInstant(op.id, AddressLockKey(p1_id),
                                               LockMode::kS,
                                               /*conditional=*/false));
        goto retry;
      }
      if (!ls.ok()) {
        if (prev_guess != kInvalidPageId) {
          locks->Unlock(op.id, AddressLockKey(prev_guess));
        }
        return ls;
      }

      // Revalidate: P1 still allocated, a leaf, and its prev link still
      // matches (the link may have changed before we got the locks).
      bool valid = space->GetState(p1_id) == PageState::kAllocated;
      if (valid) {
        PageRef chk;
        OIR_RETURN_IF_ERROR(bm->Fetch(p1_id, &chk));
        chk.latch().LockS();
        valid = chk.header()->level == kLeafLevel &&
                chk.header()->prev_page == prev_guess;
        chk.latch().UnlockS();
      }
      if (!valid) {
        locks->Unlock(op.id, AddressLockKey(p1_id));
        if (prev_guess != kInvalidPageId) {
          locks->Unlock(op.id, AddressLockKey(prev_guess));
        }
        goto retry;
      }

      // Locks are stable: record them in the top action and set the SHRINK
      // bits in left-to-right order (Section 4.1.1).
      // Section 6.2 enhancement: the pages being rebuilt get SPLIT bits
      // during the copy phase so readers stay unblocked; PP gets SHRINK
      // (it receives rows). The SPLIT bits are flipped to SHRINK after the
      // copying, right before the old pages are unlinked.
      const uint16_t batch_bit =
          opts.readers_during_copy ? kFlagSplit : kFlagShrink;
      *pp_id = prev_guess;
      if (prev_guess != kInvalidPageId) {
        nta->locked.push_back(prev_guess);
        OIR_RETURN_IF_ERROR(SetBit(op, nta, prev_guess, kFlagShrink));
      }
      nta->locked.push_back(p1_id);
      OIR_RETURN_IF_ERROR(SetBit(op, nta, p1_id, batch_bit));

      // Extend the batch with P2..Pn under conditional locks.
      batch->clear();
      batch->push_back(p1_id);
      PageId cur = p1_id;
      // Read-ahead twin of the forced write (Section 6.3): the chain walk
      // below is where a cold rebuild first touches each old page, so pull
      // them in with multi-page transfers of up to io_pages pages. The
      // leaf chain of a bulk-loaded index is mostly physically sequential;
      // a jump just starts a new window, and Prefetch skips whatever is
      // already cached. Purely speculative — failures fall back to the
      // per-page Fetch.
      PageId ra_first = kInvalidPageId;
      while (batch->size() < opts.ntasize) {
        PageRef cref;
        OIR_RETURN_IF_ERROR(bm->Fetch(cur, &cref));
        cref.latch().LockS();
        PageId next = cref.header()->next_page;
        cref.latch().UnlockS();
        cref.Release();
        if (next == kInvalidPageId) break;
        if (opts.prefetch && opts.io_pages > 1 &&
            (ra_first == kInvalidPageId || next < ra_first ||
             next >= ra_first + opts.io_pages)) {
          (void)bm->Prefetch(next, opts.io_pages);
          ra_first = next;
        }
        Status cs = locks->Lock(op.id, AddressLockKey(next), LockMode::kX,
                                /*conditional=*/true);
        if (cs.IsBusy()) {
          // Truncate the batch (Section 4.1.1).
          progress->batches_truncated.fetch_add(1, std::memory_order_relaxed);
          OIR_TRACE(obs::TraceEventType::kTopActionTruncate, next,
                    batch->size());
          break;
        }
        OIR_RETURN_IF_ERROR(cs);
        // Revalidate adjacency now that the lock pins the link.
        PageRef chk;
        OIR_RETURN_IF_ERROR(bm->Fetch(cur, &chk));
        chk.latch().LockS();
        bool still_next = chk.header()->next_page == next;
        chk.latch().UnlockS();
        if (!still_next) {
          locks->Unlock(op.id, AddressLockKey(next));
          continue;  // chain changed; re-read and retry this link
        }
        nta->locked.push_back(next);
        OIR_RETURN_IF_ERROR(SetBit(op, nta, next, batch_bit));
        batch->push_back(next);
        cur = next;
      }
      {
        PageRef lref;
        OIR_RETURN_IF_ERROR(bm->Fetch(cur, &lref));
        lref.latch().LockS();
        *np_id = lref.header()->next_page;
        lref.latch().UnlockS();
      }
      return Status::OK();
    }
  retry:
    // Undo nothing — no bits were set before this point on this attempt.
    progress->retries.fetch_add(1, std::memory_order_relaxed);
    continue;
  }
}

Status OnlineRebuilder::Impl::TopAction(OpCtx op, BTree::Path* path,
                                        bool* done) {
  static obs::TimerStat* const copy_timer =
      obs::MetricRegistry::Get().Timer("rebuild.copy_ns");
  static obs::TimerStat* const prop_timer =
      obs::MetricRegistry::Get().Timer("rebuild.propagate_ns");
  const uint64_t ta = result->top_actions;  // ordinal for trace correlation
  const uint64_t copy0 = NowNanos();
  OIR_TRACE(obs::TraceEventType::kCopyPhaseBegin, ta, 0);
  // Copy phase = lock the batch + copy the rows (Section 4.1). Charged as
  // one phase; ends before propagation begins.
  auto end_copy = [&](uint64_t pages) {
    const uint64_t ns = NowNanos() - copy0;
    progress->copy_us.fetch_add(ns / 1000, std::memory_order_relaxed);
    if (obs::MetricRegistry::timers_enabled()) copy_timer->Record(ns);
    OIR_TRACE(obs::TraceEventType::kCopyPhaseEnd, ta, pages);
  };

  std::string skey =
      has_resume ? resume_key + std::string(1, '\0') : std::string();

  OIR_CRASH_POINT("rebuild.topaction.begin");
  BTree::NtaScope nta;
  tree->BeginNta(op, &nta);

  PageId pp_id = kInvalidPageId;
  PageId np_id = kInvalidPageId;
  std::vector<PageId> batch;
  Status s = LockBatch(op, &nta, Slice(skey), &pp_id, &batch, &np_id, done);
  if (!s.ok() || *done) {
    tree->ReleaseNtaResources(op, &nta);
    end_copy(0);
    return s;
  }
  OIR_CRASH_POINT("rebuild.lockbatch.locked");

  const bool batch_is_root_leaf = batch.size() == 1 && batch[0] == tree->root();

  std::vector<PropEntry> leaf_entries;
  std::string pp_route_key;
  bool have_pp_route = false;
  s = CopyPhase(op, &nta, pp_id, batch, np_id, &leaf_entries, &pp_route_key,
                &have_pp_route);
  end_copy(batch.size());
  const bool prop_began = s.ok();
  const uint64_t prop0 = NowNanos();
  if (prop_began) OIR_TRACE(obs::TraceEventType::kPropagatePhaseBegin, ta, 0);
  if (s.ok() && batch_is_root_leaf) {
    // Height-1 tree: there is no level 1 to propagate into. The new pages
    // either become the root directly (one page) or get a fresh level-1
    // root above them.
    std::vector<std::pair<std::string, PageId>> kids;
    for (const PropEntry& e : leaf_entries) {
      if (e.kind != PropEntry::Kind::kDelete) kids.emplace_back(e.sep, e.child);
    }
    OIR_CHECK(!kids.empty());
    if (kids.size() == 1) {
      s = tree->SetRoot(op, kids[0].second);
    } else {
      PageId rid;
      s = space->Allocate(op.ctx, &rid);
      if (s.ok()) {
        PageRef nr;
        s = tree->FormatNewPage(op, rid, 1, kInvalidPageId, kInvalidPageId,
                                &nr);
        if (s.ok()) {
          std::vector<std::string> rows;
          rows.push_back(node::MakeNonLeafRow(kids[0].second, Slice()));
          for (size_t i = 1; i < kids.size(); ++i) {
            rows.push_back(
                node::MakeNonLeafRow(kids[i].second, Slice(kids[i].first)));
          }
          tree->LogBatchInsert(op, &nr, 0, rows, 1);
          nr.latch().UnlockX();
          nr.Release();
          s = tree->SetRoot(op, rid);
        }
      }
    }
  } else if (s.ok()) {
    s = Propagate(op, &nta, std::move(leaf_entries), 1, pp_route_key,
                  have_pp_route, path);
  }
  if (prop_began) {
    const uint64_t ns = NowNanos() - prop0;
    progress->propagate_us.fetch_add(ns / 1000, std::memory_order_relaxed);
    if (obs::MetricRegistry::timers_enabled()) prop_timer->Record(ns);
    OIR_TRACE(obs::TraceEventType::kPropagatePhaseEnd, ta, 0);
  }
  if (!s.ok()) {
    Status rb = tree->AbortNta(op, &nta);
    (void)rb;
    return s;
  }
  OIR_CRASH_POINT("rebuild.topaction.end");
  OIR_RETURN_IF_ERROR(tree->EndNta(op, &nta));
  old_pages_txn.insert(old_pages_txn.end(), batch.begin(), batch.end());
  ++result->top_actions;
  result->old_leaf_pages += batch.size();
  return Status::OK();
}

Status OnlineRebuilder::Impl::CopyPhase(OpCtx op, BTree::NtaScope* nta,
                                        PageId pp_id,
                                        const std::vector<PageId>& batch,
                                        PageId np_id,
                                        std::vector<PropEntry>* leaf_entries,
                                        std::string* pp_route_key,
                                        bool* have_pp_route) {
  const uint32_t fill_target = FillTargetBytes();

  // Snapshot the source rows. The pages are locked and SHRINK-marked, so
  // brief S latches give a stable image.
  struct Source {
    PageId page;
    Lsn ts;
    std::vector<std::string> rows;
    std::string first_key;
  };
  std::vector<Source> sources;
  sources.reserve(batch.size());

  // Read-ahead twin of the forced write (Section 6.3): pull the batch's
  // physically contiguous source-page runs into the pool with multi-page
  // transfers of up to io_pages pages each. Cached pages win inside
  // Prefetch, and any failure just falls back to the per-page Fetch below.
  if (opts.prefetch) {
    size_t i = 0;
    while (i < batch.size()) {
      size_t j = i + 1;
      while (j < batch.size() && batch[j] == batch[j - 1] + 1 &&
             j - i < opts.io_pages) {
        ++j;
      }
      if (j - i > 1) {
        (void)bm->Prefetch(batch[i], static_cast<uint32_t>(j - i));
      }
      i = j;
    }
  }

  for (PageId p : batch) {
    PageRef ref;
    OIR_RETURN_IF_ERROR(bm->Fetch(p, &ref));
    ref.latch().LockS();
    SlottedPage sp(ref.data(), page_size());
    Source src;
    src.page = p;
    src.ts = ref.header()->page_lsn;
    src.rows.reserve(sp.nslots());
    for (SlotId i = 0; i < sp.nslots(); ++i) {
      src.rows.push_back(sp.Get(i).ToString());
    }
    if (!src.rows.empty()) src.first_key = src.rows.front();
    ref.latch().UnlockS();
    sources.push_back(std::move(src));
  }
  OIR_CRASH_POINT("rebuild.copy.sources_read");

  // PP's available budget under the fill target, and its last key (for
  // separator compression).
  uint32_t pp_budget = 0;
  std::string prev_last_key;  // last key physically before the copy point
  if (pp_id != kInvalidPageId) {
    PageRef ref;
    OIR_RETURN_IF_ERROR(bm->Fetch(pp_id, &ref));
    ref.latch().LockS();
    SlottedPage sp(ref.data(), page_size());
    uint32_t used = sp.UsedSpace();
    uint32_t freeb = sp.FreeSpace();
    if (used < fill_target) {
      pp_budget = std::min(fill_target - used, freeb);
    }
    if (sp.nslots() > 0) {
      prev_last_key = sp.Get(static_cast<SlotId>(sp.nslots() - 1)).ToString();
      *pp_route_key = sp.Get(0).ToString();
      *have_pp_route = true;
    }
    ref.latch().UnlockS();
  }

  // Plan the packing: assign every source row to PP or to a new page. A
  // placement is (target index: -1 = PP, j = new page j; slot).
  struct Placement {
    int target;   // -1 = PP, else index into new pages
    SlotId slot;  // target slot
  };
  std::vector<std::vector<Placement>> placements(sources.size());
  // Per new page: accumulated bytes; opener source index.
  std::vector<uint32_t> new_used;
  std::vector<size_t> opener;            // source index that opened the page
  std::vector<std::string> first_keys;   // first row per new page
  std::vector<std::string> last_keys;    // last row per new page
  std::vector<SlotId> new_counts;
  uint32_t pp_used_extra = 0;
  SlotId pp_slot = 0;  // relative slot counter; absolute base added later
  uint64_t keys_total = 0;

  for (size_t si = 0; si < sources.size(); ++si) {
    placements[si].resize(sources[si].rows.size());
    for (size_t ri = 0; ri < sources[si].rows.size(); ++ri) {
      const uint32_t need =
          static_cast<uint32_t>(sources[si].rows[ri].size()) + kSlotSize;
      ++keys_total;
      if (new_used.empty() && pp_used_extra + need <= pp_budget) {
        placements[si][ri] = Placement{-1, pp_slot++};
        pp_used_extra += need;
        // PP's last key advances as it absorbs rows; the separator of the
        // first new page must compress against the *post-copy* last key.
        prev_last_key = sources[si].rows[ri];
        continue;
      }
      if (new_used.empty() || new_used.back() + need > fill_target) {
        new_used.push_back(0);
        opener.push_back(si);
        first_keys.push_back(sources[si].rows[ri]);
        last_keys.push_back(std::string());
        new_counts.push_back(0);
      }
      placements[si][ri] =
          Placement{static_cast<int>(new_used.size() - 1), new_counts.back()};
      ++new_counts.back();
      new_used.back() += need;
      last_keys.back() = sources[si].rows[ri];
    }
  }
  const uint32_t k = static_cast<uint32_t>(new_used.size());

  // Allocate the new pages from a contiguous chunk (Section 6.1) and format
  // them, linked PP -> N1 -> ... -> Nk -> NP. SPLIT bits + X locks keep
  // writers out while readers may pass once linked (Section 6.2).
  std::vector<PageId> new_ids;
  if (k > 0) {
    OIR_RETURN_IF_ERROR(space->AllocateChunk(op.ctx, k, &new_ids));
    for (PageId id : new_ids) {
      if (id > new_page_hwm) new_page_hwm = id;
    }
  }
  OIR_CRASH_POINT("rebuild.copy.alloc");
  for (uint32_t j = 0; j < k; ++j) {
    OIR_CHECK(locks
                  ->Lock(op.id, AddressLockKey(new_ids[j]), LockMode::kX,
                         /*conditional=*/false)
                  .ok());
    nta->locked.push_back(new_ids[j]);
    PageId prev = j == 0 ? pp_id : new_ids[j - 1];
    PageId next = j + 1 < k ? new_ids[j + 1] : np_id;
    PageRef ref;
    OIR_RETURN_IF_ERROR(
        tree->FormatNewPage(op, new_ids[j], kLeafLevel, prev, next, &ref));
    ref.header()->flags |= kFlagSplit;
    nta->bits.push_back(new_ids[j]);
    ref.latch().UnlockX();
  }

  // Record base slot of PP.
  SlotId pp_base = 0;
  if (pp_id != kInvalidPageId && pp_used_extra > 0) {
    PageRef ref;
    OIR_RETURN_IF_ERROR(bm->Fetch(pp_id, &ref));
    ref.latch().LockS();
    pp_base = SlottedPage(ref.data(), page_size()).nslots();
    ref.latch().UnlockS();
  }

  auto target_page = [&](int t) {
    return t == -1 ? pp_id : new_ids[t];
  };
  auto target_slot = [&](const Placement& pl) {
    return static_cast<SlotId>(pl.target == -1 ? pp_base + pl.slot : pl.slot);
  };

  // Log + apply the copy. Normal mode: one keycopy record with positions
  // only (Section 4.1.2). Ablation mode (log_full_keys): batch inserts with
  // the key bytes.
  if (!opts.log_full_keys) {
    LogRecord rec;
    rec.type = LogType::kKeyCopy;
    for (size_t si = 0; si < sources.size(); ++si) {
      size_t ri = 0;
      while (ri < sources[si].rows.size()) {
        // Maximal run of rows from this source going to one target.
        size_t rj = ri + 1;
        while (rj < sources[si].rows.size() &&
               placements[si][rj].target == placements[si][ri].target) {
          ++rj;
        }
        KeyCopyEntry e;
        e.src_page = sources[si].page;
        e.src_ts = sources[si].ts;
        e.tgt_page = target_page(placements[si][ri].target);
        e.src_first = static_cast<SlotId>(ri);
        e.src_last = static_cast<SlotId>(rj - 1);
        e.tgt_first = target_slot(placements[si][ri]);
        rec.copies.push_back(e);
        ri = rj;
      }
    }
    if (!rec.copies.empty()) {
      Lsn lsn = log->Append(&rec, op.ctx);
      OIR_CRASH_POINT("rebuild.copy.keycopy_logged");
      // Apply to each target under its X latch.
      for (size_t si = 0; si < sources.size(); ++si) {
        size_t ri = 0;
        while (ri < sources[si].rows.size()) {
          int t = placements[si][ri].target;
          PageRef ref;
          OIR_RETURN_IF_ERROR(bm->Fetch(target_page(t), &ref));
          ref.latch().LockX();
          SlottedPage sp(ref.data(), page_size());
          while (ri < sources[si].rows.size() &&
                 placements[si][ri].target == t) {
            OIR_CHECK(sp.InsertAt(target_slot(placements[si][ri]),
                                  Slice(sources[si].rows[ri])));
            ++ri;
          }
          sp.header()->page_lsn = lsn;
          ref.latch().UnlockX();
          ref.MarkDirty();
        }
      }
    }
  } else {
    // Ablation: group rows per target page and log their contents.
    std::vector<std::vector<std::string>> per_target(k + 1);
    for (size_t si = 0; si < sources.size(); ++si) {
      for (size_t ri = 0; ri < sources[si].rows.size(); ++ri) {
        int t = placements[si][ri].target;
        per_target[t + 1].push_back(sources[si].rows[ri]);
      }
    }
    for (size_t t = 0; t < per_target.size(); ++t) {
      if (per_target[t].empty()) continue;
      PageId pid = t == 0 ? pp_id : new_ids[t - 1];
      SlotId base = t == 0 ? pp_base : 0;
      PageRef ref;
      OIR_RETURN_IF_ERROR(bm->Fetch(pid, &ref));
      ref.latch().LockX();
      tree->LogBatchInsert(op, &ref, base, per_target[t], kLeafLevel);
      ref.latch().UnlockX();
    }
  }

  OIR_CRASH_POINT("rebuild.copy.applied");
  // The copying is done: flip the batch pages' SPLIT bits to SHRINK bits
  // (under an X latch, Section 6.2) so readers drain before the pages are
  // unlinked and deallocated.
  if (opts.readers_during_copy) {
    for (PageId p : batch) {
      PageRef ref;
      OIR_RETURN_IF_ERROR(bm->Fetch(p, &ref));
      ref.latch().LockX();
      ref.header()->flags =
          static_cast<uint16_t>((ref.header()->flags & ~kFlagSplit) |
                                kFlagShrink);
      ref.latch().UnlockX();
    }
  }
  OIR_CRASH_POINT("rebuild.copy.bits_flipped");

  // Fix the chain around the batch: PP.next and NP.prev skip the old pages
  // ("changeprevlink", Section 4.1.2).
  const PageId after_pp = k > 0 ? new_ids[0] : np_id;
  const PageId before_np = k > 0 ? new_ids[k - 1] : pp_id;
  if (pp_id != kInvalidPageId) {
    PageRef ref;
    OIR_RETURN_IF_ERROR(bm->Fetch(pp_id, &ref));
    ref.latch().LockX();
    tree->LogSetNextLink(op, &ref, after_pp);
    ref.latch().UnlockX();
  }
  if (np_id != kInvalidPageId) {
    PageRef ref;
    OIR_RETURN_IF_ERROR(bm->Fetch(np_id, &ref));
    ref.latch().LockX();
    tree->LogSetPrevLink(op, &ref, before_np);
    ref.latch().UnlockX();
  }
  OIR_CRASH_POINT("rebuild.copy.prevlink");

  // Deallocate the old pages (freed at transaction commit; Section 4.1.3).
  OIR_RETURN_IF_ERROR(space->DeallocateBatch(op.ctx, batch));
  OIR_CRASH_POINT("rebuild.copy.dealloc");

  // Build the leaf propagation entries (Section 5.2).
  for (size_t si = 0; si < sources.size(); ++si) {
    PropEntry base;
    base.sender = sources[si].page;
    base.route_key = sources[si].first_key.empty()
                         ? (si > 0 ? sources[si - 1].first_key
                                   : std::string())
                         : sources[si].first_key;
    bool first_for_sender = true;
    for (uint32_t j = 0; j < k; ++j) {
      if (opener[j] != si) continue;
      PropEntry e = base;
      e.kind = first_for_sender ? PropEntry::Kind::kUpdate
                                : PropEntry::Kind::kInsert;
      first_for_sender = false;
      e.child = new_ids[j];
      // Separator between the previous target's last key and this page's
      // first key (suffix compression).
      const std::string* left = nullptr;
      if (j == 0) {
        left = prev_last_key.empty() ? nullptr : &prev_last_key;
      } else {
        left = &last_keys[j - 1];
      }
      e.sep = (left == nullptr || left->empty())
                  ? first_keys[j]
                  : MakeSeparator(Slice(*left), Slice(first_keys[j]));
      leaf_entries->push_back(std::move(e));
    }
    if (first_for_sender) {
      // No allocations were needed for this page's keys: DELETE entry.
      PropEntry e = base;
      e.kind = PropEntry::Kind::kDelete;
      leaf_entries->push_back(std::move(e));
    }
  }

  // Advance the rebuild position.
  if (k > 0 && !last_keys.back().empty()) {
    resume_key = last_keys.back();
    has_resume = true;
  } else {
    // Everything fit into PP: the last copied row is the last row overall.
    for (size_t si = sources.size(); si-- > 0;) {
      if (!sources[si].rows.empty()) {
        resume_key = sources[si].rows.back();
        has_resume = true;
        break;
      }
    }
  }
  result->keys_moved += keys_total;
  result->new_leaf_pages += k;
  flush_pages_txn.insert(flush_pages_txn.end(), new_ids.begin(),
                         new_ids.end());
  if (pp_id != kInvalidPageId && pp_used_extra > 0) {
    // PP received copied rows: it is a keycopy target and must be part of
    // the forced write even though it was created by an earlier
    // transaction.
    flush_pages_txn.push_back(pp_id);
  }
  return Status::OK();
}

// -------------------------------------------------------------- propagation

Status OnlineRebuilder::Impl::Propagate(OpCtx op, BTree::NtaScope* nta,
                                        std::vector<PropEntry> entries,
                                        uint16_t level,
                                        const std::string& pp_route_key,
                                        bool have_pp_route,
                                        BTree::Path* path) {
  while (!entries.empty()) {
    std::vector<PropEntry> next_level;
    OpenLeft open_left;

    // Section 5.5: at level 1, the parent of PP starts as the open left
    // page — the worked example of Figure 2 inserts [22, N1] into it.
    if (level == 1 && opts.reorganize_level1 && have_pp_route) {
      PageRef lp;
      OIR_RETURN_IF_ERROR(tree->Traverse(op, Slice(pp_route_key),
                                         /*writer=*/true, level, &lp, path));
      const PageId lid = lp.id();
      Status ls = locks->Lock(op.id, AddressLockKey(lid), LockMode::kX,
                              /*conditional=*/false);
      if (!ls.ok()) {
        lp.latch().UnlockX();
        return ls;
      }
      nta->locked.push_back(lid);
      lp.header()->flags |= kFlagSplit;  // insert-only so far (Section 5.4.2)
      nta->bits.push_back(lid);
      lp.latch().UnlockX();
      open_left.valid = true;
      open_left.page = lid;
    }

    size_t i = 0;
    while (i < entries.size()) {
      PageRef parent;
      OIR_RETURN_IF_ERROR(tree->Traverse(op, Slice(entries[i].route_key),
                                         /*writer=*/true, level, &parent,
                                         path));
      SlottedPage sp(parent.data(), page_size());
      // Group = maximal run of entries whose senders are children of this
      // parent (they are contiguous in the list; Section 5.4.1).
      size_t j = i;
      while (j < entries.size() &&
             node::FindChildPos(sp, entries[j].sender) >= 0) {
        ++j;
      }
      if (j == i) {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "propagation: sender entry missing from parent "
                      "(level=%u sender=%u landed=%u nslots=%u kind=%d "
                      "entry=%zu/%zu)",
                      level, entries[i].sender, parent.id(),
                      SlottedPage(parent.data(), page_size()).nslots(),
                      static_cast<int>(entries[i].kind), i, entries.size());
        parent.latch().UnlockX();
        return Status::Corruption(buf);
      }
      OIR_RETURN_IF_ERROR(ApplyGroup(op, nta, &parent, level, &entries[i],
                                     j - i, &open_left, &next_level));
      i = j;
    }
    entries = std::move(next_level);
    ++level;
    have_pp_route = false;  // the left-page seeding applies to level 1 only
  }
  return Status::OK();
}

Status OnlineRebuilder::Impl::ApplyGroup(OpCtx op, BTree::NtaScope* nta,
                                         PageRef* parent, uint16_t level,
                                         const PropEntry* entries,
                                         size_t count, OpenLeft* open_left,
                                         std::vector<PropEntry>* next_level) {
  OIR_CRASH_POINT("rebuild.propagate.group");
  const PageId pid = parent->id();
  const bool already_ours =
      locks->IsHeld(op.id, AddressLockKey(pid), LockMode::kX);
  Status ls = locks->Lock(op.id, AddressLockKey(pid), LockMode::kX,
                          /*conditional=*/false);
  if (!ls.ok()) {
    parent->latch().UnlockX();
    return ls;
  }
  nta->locked.push_back(pid);
  (void)already_ours;

  SlottedPage sp(parent->data(), page_size());

  // Snapshot rows, find the contiguous delete range and collect inserts.
  std::vector<std::string> old_rows;
  old_rows.reserve(sp.nslots());
  for (SlotId r = 0; r < sp.nslots(); ++r) {
    old_rows.push_back(sp.Get(r).ToString());
  }

  int d0 = -1;
  int d1 = -1;  // delete range [d0, d1)
  std::vector<std::pair<std::string, PageId>> inserts;
  for (size_t e = 0; e < count; ++e) {
    const PropEntry& pe = entries[e];
    if (pe.kind == PropEntry::Kind::kDelete ||
        pe.kind == PropEntry::Kind::kUpdate) {
      int pos = node::FindChildPos(sp, pe.sender);
      OIR_CHECK(pos >= 0);
      if (d0 < 0) {
        d0 = pos;
        d1 = pos + 1;
      } else {
        OIR_CHECK(pos == d1);  // contiguous (Section 5.4.2)
        d1 = pos + 1;
      }
    }
    if (pe.kind == PropEntry::Kind::kUpdate ||
        pe.kind == PropEntry::Kind::kInsert) {
      inserts.emplace_back(pe.sep, pe.child);
    }
  }
  const uint16_t dcount = d0 < 0 ? 0 : static_cast<uint16_t>(d1 - d0);
  if (d0 < 0) {
    // Pure-insert group (possible above level 1): position by separator.
    d0 = node::FindEntryInsertPos(sp, Slice(inserts.front().first));
    d1 = d0;
  }

  // Flag bits per Section 5.4.2: SHRINK when any delete is performed (or
  // the page splits), SPLIT when insert-only.
  parent->header()->flags |= (dcount > 0) ? kFlagShrink : kFlagSplit;
  nta->bits.push_back(pid);

  // Section 5.5: when the first child of the page is being deleted, move as
  // many inserts as fit into the open left page.
  if (level == 1 && opts.reorganize_level1 && open_left->valid &&
      open_left->page != pid && d0 == 0 && dcount > 0 && !inserts.empty()) {
    PageRef lp;
    OIR_RETURN_IF_ERROR(bm->Fetch(open_left->page, &lp));
    lp.latch().LockX();
    SlottedPage lsp(lp.data(), page_size());
    std::vector<std::string> moved;
    size_t used = lsp.UsedSpace();
    size_t cap = LeafCapacityBytes();
    size_t take = 0;
    while (take < inserts.size()) {
      std::string row = node::MakeNonLeafRow(inserts[take].second,
                                             Slice(inserts[take].first));
      if (used + row.size() + kSlotSize > cap) break;
      used += row.size() + kSlotSize;
      moved.push_back(std::move(row));
      ++take;
    }
    if (take > 0) {
      tree->LogBatchInsert(op, &lp, lsp.nslots(), moved, level);
      inserts.erase(inserts.begin(), inserts.begin() + take);
    }
    lp.latch().UnlockX();
  }

  // Final layout of this page.
  struct FinalRow {
    std::string sep;  // separator value (ignored for the first row)
    PageId child;
  };
  std::vector<FinalRow> final_rows;
  final_rows.reserve(old_rows.size() - dcount + inserts.size());
  for (int r = 0; r < d0; ++r) {
    final_rows.push_back(FinalRow{
        node::SeparatorOf(Slice(old_rows[r])).ToString(),
        node::ChildOf(Slice(old_rows[r]))});
  }
  for (auto& [s, c] : inserts) final_rows.push_back(FinalRow{s, c});
  for (size_t r = d1; r < old_rows.size(); ++r) {
    final_rows.push_back(FinalRow{
        node::SeparatorOf(Slice(old_rows[r])).ToString(),
        node::ChildOf(Slice(old_rows[r]))});
  }

  const bool is_root = tree->root() == pid;
  const std::string group_route = entries[0].route_key;

  if (final_rows.empty()) {
    // Section 5.3.1 + footnote 6: all children gone — the page shrinks;
    // deallocate directly, no deletes performed.
    OIR_CHECK(!is_root);
    parent->latch().UnlockX();
    parent->Release();
    OIR_RETURN_IF_ERROR(space->Deallocate(op.ctx, pid));
    nta->deallocated.push_back(pid);
    PropEntry del;
    del.kind = PropEntry::Kind::kDelete;
    del.sender = pid;
    del.route_key = group_route;
    next_level->push_back(std::move(del));
    return Status::OK();
  }

  // Did the page's key-range start move (first entry deleted)? Then the
  // next level gets an UPDATE [S, pid] where S is the separator value the
  // new first row carried (Section 5.3.3).
  const bool range_start_moved = (dcount > 0 && d0 == 0);
  const std::string new_start_sep = final_rows.front().sep;

  // Encode the final rows (first row loses its separator).
  std::vector<std::string> encoded;
  encoded.reserve(final_rows.size());
  size_t total_bytes = 0;
  for (size_t r = 0; r < final_rows.size(); ++r) {
    encoded.push_back(node::MakeNonLeafRow(
        final_rows[r].child, r == 0 ? Slice() : Slice(final_rows[r].sep)));
    total_bytes += encoded.back().size() + kSlotSize;
  }

  const size_t cap = LeafCapacityBytes();
  if (total_bytes <= cap) {
    // In-place: one batch delete + one batch insert (Section 4.2's "no
    // more than one batchdelete and one batchinsert" per page). We rewrite
    // the splice region [min(d0,needed)..] only when the first row changes.
    uint16_t del_from = static_cast<uint16_t>(d0);
    uint16_t del_cnt = dcount;
    size_t ins_from = static_cast<size_t>(d0);
    size_t ins_to = static_cast<size_t>(d0) + inserts.size();
    if (range_start_moved || (d0 == 0 && !inserts.empty() && dcount == 0)) {
      // The first physical row changes: extend the splice to position 0.
      del_from = 0;
      del_cnt = static_cast<uint16_t>(dcount);
      ins_from = 0;
    }
    if (d0 == 0 && dcount > 0 && inserts.empty()) {
      // Surviving old row becomes first: rewrite it without separator.
      del_cnt = static_cast<uint16_t>(dcount + 1);
      ins_to = 1;
    }
    if (del_cnt > 0) {
      tree->LogBatchDelete(op, parent, del_from, del_cnt, level);
    }
    if (ins_to > ins_from) {
      std::vector<std::string> ins_rows(encoded.begin() + ins_from,
                                        encoded.begin() + ins_to);
      tree->LogBatchInsert(op, parent, static_cast<SlotId>(ins_from),
                           ins_rows, level);
    }
    parent->latch().UnlockX();
  } else {
    // Overflow: the page splits so that the layout becomes
    // [prefix on pid][chunks on new siblings] (Section 5.3.2). SHRINK bit
    // covers the split case (Section 5.4.2, rule 3).
    parent->header()->flags |= kFlagShrink;
    // Keep the maximal prefix on pid.
    size_t keep = 0;
    size_t used = 0;
    while (keep < encoded.size() &&
           used + encoded[keep].size() + kSlotSize <= cap) {
      used += encoded[keep].size() + kSlotSize;
      ++keep;
    }
    OIR_CHECK(keep >= 1 && keep < encoded.size());

    // Rewrite pid: delete everything from min(d0,0 if first changes)... we
    // simply rewrite the whole row area for clarity of the split case: one
    // batch delete of all old rows, one batch insert of the kept prefix.
    tree->LogBatchDelete(op, parent, 0,
                         static_cast<uint16_t>(old_rows.size()), level);
    std::vector<std::string> keep_rows(encoded.begin(),
                                       encoded.begin() + keep);
    tree->LogBatchInsert(op, parent, 0, keep_rows, level);
    parent->latch().UnlockX();

    // Spill the rest into new sibling pages.
    std::vector<std::pair<std::string, PageId>> sibling_entries;
    size_t r = keep;
    while (r < final_rows.size()) {
      PageId sid;
      OIR_RETURN_IF_ERROR(space->Allocate(op.ctx, &sid));
      OIR_CHECK(locks
                    ->Lock(op.id, AddressLockKey(sid), LockMode::kX,
                           /*conditional=*/false)
                    .ok());
      nta->locked.push_back(sid);
      PageRef sib;
      OIR_RETURN_IF_ERROR(tree->FormatNewPage(op, sid, level, kInvalidPageId,
                                              kInvalidPageId, &sib));
      sib.header()->flags |= kFlagShrink;
      nta->bits.push_back(sid);
      std::vector<std::string> rows;
      size_t sused = 0;
      size_t first_r = r;
      while (r < final_rows.size()) {
        std::string row = node::MakeNonLeafRow(
            final_rows[r].child,
            r == first_r ? Slice() : Slice(final_rows[r].sep));
        if (sused + row.size() + kSlotSize > cap) break;
        sused += row.size() + kSlotSize;
        rows.push_back(std::move(row));
        ++r;
      }
      OIR_CHECK(!rows.empty());
      tree->LogBatchInsert(op, &sib, 0, rows, level);
      sib.latch().UnlockX();
      sibling_entries.emplace_back(final_rows[first_r].sep, sid);
    }

    if (is_root) {
      // The root split during rebuild propagation: grow the tree with a new
      // root over [pid, siblings...].
      PageId rid;
      OIR_RETURN_IF_ERROR(space->Allocate(op.ctx, &rid));
      PageRef nr;
      OIR_RETURN_IF_ERROR(tree->FormatNewPage(
          op, rid, static_cast<uint16_t>(level + 1), kInvalidPageId,
          kInvalidPageId, &nr));
      std::vector<std::string> rows;
      rows.push_back(node::MakeNonLeafRow(pid, Slice()));
      for (auto& [s, c] : sibling_entries) {
        rows.push_back(node::MakeNonLeafRow(c, Slice(s)));
      }
      tree->LogBatchInsert(op, &nr, 0, rows,
                           static_cast<uint16_t>(level + 1));
      nr.latch().UnlockX();
      nr.Release();
      OIR_RETURN_IF_ERROR(tree->SetRoot(op, rid));
    } else {
      for (auto& [s, c] : sibling_entries) {
        PropEntry ins;
        ins.kind = PropEntry::Kind::kInsert;
        ins.sender = pid;
        ins.route_key = group_route;
        ins.sep = s;
        ins.child = c;
        next_level->push_back(std::move(ins));
      }
    }
  }

  // Root collapse: if the root is down to a single child, the tree loses a
  // level.
  if (is_root && final_rows.size() == 1 && level >= 1) {
    OIR_RETURN_IF_ERROR(tree->SetRoot(op, final_rows[0].child));
    OIR_RETURN_IF_ERROR(space->Deallocate(op.ctx, pid));
    nta->deallocated.push_back(pid);
  } else if (range_start_moved && !is_root) {
    PropEntry upd;
    upd.kind = PropEntry::Kind::kUpdate;
    upd.sender = pid;
    upd.route_key = group_route;
    upd.sep = new_start_sep;
    upd.child = pid;
    next_level->push_back(std::move(upd));
  }

  if (level == 1) {
    open_left->valid = true;
    open_left->page = pid;  // groups run left to right; pid is now the
                            // rightmost settled page at this level
  }
  return Status::OK();
}

}  // namespace oir
