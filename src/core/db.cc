#include "core/db.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include <chrono>

#include "core/index.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "obs/waitstate.h"
#include "testing/crash_point.h"
#include "util/counters.h"

namespace oir {

Db::Db(const DbOptions& options) : options_(options) {}

Db::~Db() {
  // First: no flight-record provider or publisher tick may touch the
  // components once teardown starts. StopObservability blocks out any
  // in-flight dump before returning.
  StopObservability();
  // The write-back worker calls into the log manager (WAL-before-data),
  // and log_ is destroyed before bm_ — stop the worker while both live.
  if (bm_ != nullptr) bm_->StopWriteBack();
  if (!ephemeral_wal_path_.empty()) {
    log_.reset();  // close fds before unlinking
    std::remove(ephemeral_wal_path_.c_str());
    std::remove((ephemeral_wal_path_ + ".master").c_str());
    std::remove((ephemeral_wal_path_ + ".master.tmp").c_str());
  }
}

namespace {

WalOptions WalOptionsFrom(const DbOptions& options) {
  WalOptions w;
  w.pipeline = options.wal_pipeline;
  w.segment_bytes = options.wal_segment_bytes;
  w.inflight_segments = options.wal_inflight_segments;
  w.group_window_us = options.wal_group_window_us;
  w.backend = options.wal_backend;
  w.sync_mode = options.wal_sync_mode;
  return w;
}

// Constructs the component stack shared by Open and OpenExisting. A
// non-empty *ephemeral_wal on return means an in-memory WAL was promoted to
// a throwaway file (OIR_TEST_WAL=file); the caller owns cleanup.
Status BuildStack(const DbOptions& options, bool truncate_files, Db* db,
                  std::unique_ptr<Disk>* disk, std::unique_ptr<LogManager>* log,
                  std::string* ephemeral_wal) {
  if (options.use_file_disk) {
    if (truncate_files) std::remove(options.file_path.c_str());
    std::unique_ptr<FileDisk> fd;
    OIR_RETURN_IF_ERROR(
        FileDisk::Open(options.file_path, options.page_size, &fd));
    OIR_RETURN_IF_ERROR(fd->Extend(options.initial_disk_pages));
    *disk = std::move(fd);
  } else {
    *disk = std::make_unique<MemDisk>(options.page_size,
                                      options.initial_disk_pages);
  }
  if (options.wrap_disk) {
    *disk = options.wrap_disk(std::move(*disk));
    OIR_CHECK(*disk != nullptr);
  }
  std::string log_path = options.log_path;
  if (log_path.empty()) {
    // CI hook: OIR_TEST_WAL=file runs every test that would use an
    // in-memory WAL against a real file-backed one (unique throwaway
    // path), exercising the async durable path under the whole suite.
    if (const char* e = std::getenv("OIR_TEST_WAL");
        e != nullptr && std::string(e) == "file") {
      static std::atomic<uint64_t> seq{0};
      const char* dir = std::getenv("TMPDIR");
      log_path = std::string(dir != nullptr && *dir ? dir : "/tmp") +
                 "/oir_test_wal_" + std::to_string(::getpid()) + "_" +
                 std::to_string(seq.fetch_add(1)) + ".log";
      *ephemeral_wal = log_path;
      truncate_files = true;
    }
  }
  if (!log_path.empty()) {
    OIR_RETURN_IF_ERROR(LogManager::Open(log_path, truncate_files, log,
                                         WalOptionsFrom(options)));
    if (!options.wal_group_commit) (*log)->SetGroupCommit(false);
  } else {
    *log = std::make_unique<LogManager>(WalOptionsFrom(options));
  }
  (void)db;
  return Status::OK();
}

}  // namespace

Status Db::Open(const DbOptions& options, std::unique_ptr<Db>* out) {
  std::unique_ptr<Db> db(new Db(options));
  OIR_RETURN_IF_ERROR(
      BuildStack(options, /*truncate_files=*/true, db.get(), &db->disk_,
                 &db->log_, &db->ephemeral_wal_path_));
  db->bm_ = std::make_unique<BufferManager>(db->disk_.get(),
                                            options.buffer_pool_pages,
                                            options.buffer_pool_shards);
  db->bm_->SetLogFlusher(db->log_.get());
  if (options.async_writeback) db->bm_->StartWriteBack();
  db->locks_ = std::make_unique<LockManager>();
  db->space_ = std::make_unique<SpaceManager>(db->disk_.get(), db->log_.get(),
                                              kFirstDataPageId);
  db->txn_mgr_ = std::make_unique<TransactionManager>(
      db->log_.get(), db->locks_.get(), db->bm_.get(), db->space_.get());
  db->tree_ = std::make_unique<BTree>(db->bm_.get(), db->log_.get(),
                                      db->locks_.get(), db->space_.get());
  db->txn_mgr_->SetUndoHook(db->tree_.get());
  db->index_ = std::make_unique<Index>(
      db->tree_.get(), db->txn_mgr_.get(), db->bm_.get(), db->log_.get(),
      db->locks_.get(), db->space_.get(), &db->rebuild_journal_);

  // Bootstrap: create the empty index inside a committed transaction so
  // that recovery can always replay the database from an empty log.
  std::unique_ptr<Transaction> boot = db->txn_mgr_->Begin();
  OIR_RETURN_IF_ERROR(db->tree_->CreateNew(boot->ctx()));
  OIR_RETURN_IF_ERROR(db->txn_mgr_->Commit(boot.get()));
  db->StartObservability();
  *out = std::move(db);
  return Status::OK();
}

Status Db::OpenExisting(const DbOptions& options, std::unique_ptr<Db>* out,
                        RecoveryStats* stats) {
  if (!options.use_file_disk || options.file_path.empty() ||
      options.log_path.empty()) {
    return Status::InvalidArgument(
        "OpenExisting requires use_file_disk, file_path and log_path");
  }
  std::unique_ptr<Db> db(new Db(options));
  OIR_RETURN_IF_ERROR(
      BuildStack(options, /*truncate_files=*/false, db.get(), &db->disk_,
                 &db->log_, &db->ephemeral_wal_path_));
  db->bm_ = std::make_unique<BufferManager>(db->disk_.get(),
                                            options.buffer_pool_pages,
                                            options.buffer_pool_shards);
  db->bm_->SetLogFlusher(db->log_.get());
  if (options.async_writeback) db->bm_->StartWriteBack();
  db->locks_ = std::make_unique<LockManager>();
  db->space_ = std::make_unique<SpaceManager>(db->disk_.get(), db->log_.get(),
                                              kFirstDataPageId);
  db->txn_mgr_ = std::make_unique<TransactionManager>(
      db->log_.get(), db->locks_.get(), db->bm_.get(), db->space_.get());
  db->tree_ = std::make_unique<BTree>(db->bm_.get(), db->log_.get(),
                                      db->locks_.get(), db->space_.get());
  db->txn_mgr_->SetUndoHook(db->tree_.get());
  db->index_ = std::make_unique<Index>(
      db->tree_.get(), db->txn_mgr_.get(), db->bm_.get(), db->log_.get(),
      db->locks_.get(), db->space_.get(), &db->rebuild_journal_);

  // Restart recovery over the persisted log and data file.
  RecoveryStats local;
  RecoveryStats* st = stats != nullptr ? stats : &local;
  ApplyContext ctx{db->bm_.get(), db->space_.get(), db->log_.get()};
  RecoveryManager rm(ctx);
  OIR_RETURN_IF_ERROR(rm.AnalyzeAndRedo(st));
  OIR_RETURN_IF_ERROR(db->tree_->Open());
  OIR_RETURN_IF_ERROR(rm.UndoLosers(db->tree_.get(), st));
  OIR_RETURN_IF_ERROR(rm.Finish(st));
  db->txn_mgr_->ResetAfterCrash(rm.max_txn_id() + 1);
  db->AdoptRebuildResume(rm.rebuild_resume());
  obs::MetricRegistry::Get().SetReport("recovery", st->ToJson());
  db->StartObservability();
  *out = std::move(db);
  return Status::OK();
}

Status Db::Checkpoint(Lsn* truncation_horizon) {
  // Fuzzy checkpoint. Order matters:
  //  1. capture scan_start = current log tail; recovery will rescan
  //     everything from here, so state changes racing with the snapshot
  //     below are replayed idempotently;
  //  2. snapshot the page states and the active transactions;
  //  3. append the checkpoint record;
  //  4. flush every dirty page (covers all updates before scan_start);
  //  5. force the log and publish the master record.
  const Lsn scan_start = log_->tail_lsn();

  LogRecord ckpt;
  ckpt.type = LogType::kCheckpoint;
  ckpt.old_page_lsn = scan_start;  // reused field: recovery scan start
  ckpt.ckpt_allocated = space_->PagesInState(PageState::kAllocated);
  ckpt.ckpt_deallocated = space_->PagesInState(PageState::kDeallocated);
  ckpt.ckpt_end_page = space_->end_page();
  ckpt.ckpt_next_txn_id = txn_mgr_->next_txn_id();
  // A checkpoint taken mid-rebuild embeds the latest durable progress so
  // the resume point survives truncation of the log prefix that held the
  // kRebuildProgress records. No rebuild pending => inactive defaults.
  (void)rebuild_journal_.Latest(&ckpt.rebuild_progress);
  Lsn oldest_begin = kInvalidLsn;
  txn_mgr_->SnapshotActive(&ckpt.ckpt_txns, &oldest_begin);
  Lsn ckpt_lsn = log_->AppendSystem(&ckpt);
  OIR_CRASH_POINT("ckpt.logged");

  OIR_RETURN_IF_ERROR(bm_->FlushAll());
  OIR_CRASH_POINT("ckpt.pages_flushed");
  OIR_RETURN_IF_ERROR(log_->FlushAll());
  log_->SetMasterCheckpoint(ckpt_lsn);
  OIR_CRASH_POINT("ckpt.master");
  OIR_TRACE(obs::TraceEventType::kCheckpoint, ckpt_lsn, 0);

  if (truncation_horizon != nullptr) {
    // The log before min(scan_start, oldest active begin) is dead: redo
    // starts at scan_start and every active transaction's undo chain
    // reaches back at most to its begin record.
    Lsn horizon = scan_start;
    if (oldest_begin != kInvalidLsn && oldest_begin < horizon) {
      horizon = oldest_begin;
    }
    *truncation_horizon = horizon;
  }
  return Status::OK();
}

Status Db::CheckpointAndTruncate() {
  Lsn horizon = kInvalidLsn;
  OIR_RETURN_IF_ERROR(Checkpoint(&horizon));
  if (horizon != kInvalidLsn) {
    log_->DiscardPrefix(horizon);
  }
  return Status::OK();
}

Status Db::CrashAndRecover(RecoveryStats* stats) {
  // Crash: volatile state dies. Dirty pages and unflushed log records are
  // lost; locks, side entries and in-flight transactions evaporate.
  bm_->DropAll();
  log_->SimulateCrash();
  locks_->Reset();
  tree_->ResetTransient();

  // Restart.
  RecoveryStats local;
  RecoveryStats* st = stats != nullptr ? stats : &local;
  ApplyContext ctx{bm_.get(), space_.get(), log_.get()};
  RecoveryManager rm(ctx);
  OIR_RETURN_IF_ERROR(rm.AnalyzeAndRedo(st));
  OIR_RETURN_IF_ERROR(tree_->Open());
  OIR_RETURN_IF_ERROR(rm.UndoLosers(tree_.get(), st));
  OIR_RETURN_IF_ERROR(rm.Finish(st));
  txn_mgr_->ResetAfterCrash(rm.max_txn_id() + 1);
  AdoptRebuildResume(rm.rebuild_resume());
  obs::MetricRegistry::Get().SetReport("recovery", st->ToJson());
  return Status::OK();
}

void Db::AdoptRebuildResume(const RebuildResumeState& resume) {
  pending_rebuild_ = resume;
  if (resume.pending) {
    // Keep the journal armed: a checkpoint taken before the rebuild is
    // resumed must still carry the resume point (the log prefix holding
    // the progress records may be truncated afterwards).
    rebuild_journal_.Publish(resume.progress);
  } else {
    rebuild_journal_.Clear();
  }
}

Status Db::ResumeRebuild(RebuildOptions options, RebuildResult* result) {
  if (!pending_rebuild_.pending) {
    return Status::InvalidArgument("no pending rebuild to resume");
  }
  const RebuildProgressInfo& p = pending_rebuild_.progress;
  options.resume = true;
  options.resume_cursor_valid = p.has_cursor;
  options.resume_cursor = p.cursor;
  options.resume_leaves_rebuilt = p.leaves_rebuilt;
  options.resume_top_actions = p.top_actions;
  options.resume_transactions = p.transactions;
  OIR_RETURN_IF_ERROR(index_->RebuildOnline(options, result));
  pending_rebuild_ = RebuildResumeState();
  return Status::OK();
}

Status Db::GetStats(StatsReport* out) {
  *out = StatsReport();
  out->counters = GlobalCounters::Get().Snapshot();
  out->pool_frames = bm_->pool_frames();
  out->pool_shards = bm_->num_shards();
  out->pool_cached_pages = bm_->CachedPages();
  out->wal_tail_lsn = log_->tail_lsn();
  out->wal_durable_lsn = log_->durable_lsn();
  out->wal_bytes_appended = log_->TotalBytesAppended();
  out->wal_group_commit = options_.wal_group_commit;
  out->wal_pipeline = log_->pipeline_enabled();
  out->wal_backend = log_->backend_name();
  out->wal_sync_mode = log_->sync_mode_name();
  out->wal_segment_bytes = log_->segment_bytes();
  out->wal_inflight_segments = log_->inflight_segments();
  out->locked_keys = locks_->NumLockedKeys();
  out->root_page = tree_->root();
  out->pages_allocated = space_->CountInState(PageState::kAllocated);
  out->pages_deallocated = space_->CountInState(PageState::kDeallocated);
  out->end_page = space_->end_page();
  auto& reg = obs::MetricRegistry::Get();
  out->last_rebuild_json = reg.GetReport("rebuild");
  out->last_recovery_json = reg.GetReport("recovery");
  out->metrics = reg.TakeSnapshot();
  return Status::OK();
}

std::string Db::DumpStatsJson() {
  StatsReport r;
  OIR_CHECK(GetStats(&r).ok());
  obs::JsonWriter w;
  w.BeginObject();

  w.Key("counters").BeginObject();
  r.counters.ForEach(
      [&w](const char* name, uint64_t v) { w.Key(name).Value(v); });
  w.EndObject();

  w.Key("pool").BeginObject();
  w.Key("frames").Value(r.pool_frames);
  w.Key("shards").Value(r.pool_shards);
  w.Key("cached_pages").Value(r.pool_cached_pages);
  w.Key("hits").Value(r.counters.pool_hits);
  w.Key("misses").Value(r.counters.pool_misses);
  w.Key("evictions").Value(r.counters.pool_evictions);
  w.Key("writebacks").Value(r.counters.pool_writebacks);
  w.Key("wb_enqueued").Value(r.counters.pool_wb_enqueued);
  w.Key("wb_async_writes").Value(r.counters.pool_wb_async_writes);
  w.Key("prefetched").Value(r.counters.pool_prefetched);
  w.EndObject();

  w.Key("wal").BeginObject();
  w.Key("tail_lsn").Value(r.wal_tail_lsn);
  w.Key("durable_lsn").Value(r.wal_durable_lsn);
  w.Key("bytes_appended").Value(r.wal_bytes_appended);
  w.Key("group_commit").Value(r.wal_group_commit);
  w.Key("pipeline").Value(r.wal_pipeline);
  w.Key("backend").Value(r.wal_backend);
  w.Key("sync_mode").Value(r.wal_sync_mode);
  w.Key("segment_bytes").Value(r.wal_segment_bytes);
  w.Key("inflight_segments").Value(r.wal_inflight_segments);
  w.Key("records").Value(r.counters.log_records);
  w.Key("flush_calls").Value(r.counters.log_flush_calls);
  w.Key("fsyncs").Value(r.counters.log_fsyncs);
  w.Key("commits_acked").Value(r.counters.log_commits_acked);
  w.Key("groups_acked").Value(r.counters.log_groups_acked);
  w.Key("segments_sealed").Value(r.counters.wal_segments_sealed);
  w.Key("segments_completed").Value(r.counters.wal_segments_completed);
  w.EndObject();

  w.Key("lock").BeginObject();
  w.Key("requests").Value(r.counters.lock_requests);
  w.Key("waits").Value(r.counters.lock_waits);
  w.Key("locked_keys").Value(r.locked_keys);
  w.Key("watchdog_fires").Value(r.counters.lock_watchdog_fires);
  w.Key("cond_failures").Value(r.counters.cond_lock_failures);
  w.EndObject();

  w.Key("btree").BeginObject();
  w.Key("root_page").Value(static_cast<uint64_t>(r.root_page));
  w.Key("traversal_restarts").Value(r.counters.traversal_restarts);
  w.Key("blocked_traversals").Value(r.counters.blocked_traversals);
  w.Key("level1_visits").Value(r.counters.level1_visits);
  w.EndObject();

  w.Key("space").BeginObject();
  w.Key("allocated").Value(r.pages_allocated);
  w.Key("deallocated").Value(r.pages_deallocated);
  w.Key("end_page").Value(r.end_page);
  w.EndObject();

  w.Key("rebuild");
  if (r.last_rebuild_json.empty()) {
    w.BeginObject().EndObject();
  } else {
    w.RawValue(r.last_rebuild_json);
  }
  w.Key("recovery");
  if (r.last_recovery_json.empty()) {
    w.BeginObject().EndObject();
  } else {
    w.RawValue(r.last_recovery_json);
  }

  w.Key("timers").BeginObject();
  for (const auto& t : r.metrics.timers) {
    w.Key(t.name).BeginObject();
    w.Key("count").Value(t.count);
    w.Key("sum").Value(t.sum);
    w.Key("min").Value(t.min);
    w.Key("max").Value(t.max);
    w.Key("mean").Value(t.mean);
    w.Key("p50").Value(t.p50);
    w.Key("p95").Value(t.p95);
    w.Key("p99").Value(t.p99);
    w.EndObject();
  }
  w.EndObject();

  w.Key("gauges").BeginObject();
  for (const auto& [name, v] : r.metrics.gauges) {
    w.Key(name).Value(v);
  }
  w.EndObject();

  w.Key("wait_profile").RawValue(obs::WaitProfiler::ToJson());

  w.EndObject();
  return w.str();
}

std::string Db::DumpStatsText() {
  StatsReport r;
  OIR_CHECK(GetStats(&r).ok());
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "pool: %llu/%llu pages cached, %llu shards\n",
                (unsigned long long)r.pool_cached_pages,
                (unsigned long long)r.pool_frames,
                (unsigned long long)r.pool_shards);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "wal: tail=%llu durable=%llu appended=%llu group_commit=%d\n",
                (unsigned long long)r.wal_tail_lsn,
                (unsigned long long)r.wal_durable_lsn,
                (unsigned long long)r.wal_bytes_appended,
                r.wal_group_commit ? 1 : 0);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "lock: %llu keys locked, %llu watchdog fires\n",
                (unsigned long long)r.locked_keys,
                (unsigned long long)r.counters.lock_watchdog_fires);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "space: %llu allocated, %llu deallocated, end_page=%llu\n",
                (unsigned long long)r.pages_allocated,
                (unsigned long long)r.pages_deallocated,
                (unsigned long long)r.end_page);
  out += buf;
  out += "counters: " + r.counters.ToString() + "\n";
  out += obs::MetricRegistry::Get().ToText();
  return out;
}

Status Db::DumpFlightRecord(std::string* path) {
  std::string p;
  if (!obs::FlightRecorder::Get().DumpNow("explicit", &p)) {
    return Status::IOError("could not write flight-record bundle");
  }
  if (path != nullptr) *path = p;
  return Status::OK();
}

void Db::StartObservability() {
  auto& fr = obs::FlightRecorder::Get();
  fr_stats_token_ = fr.RegisterProvider("stats",
                                        [this] { return DumpStatsJson(); });
  fr_locks_token_ =
      fr.RegisterProvider("locks", [this] { return locks_->DumpJson(); });
  fr_txns_token_ = fr.RegisterProvider(
      "active_txns", [this] { return txn_mgr_->DumpActiveTxnsJson(); });

  std::string path = options_.stats_publish_path;
  if (const char* e = std::getenv("OIR_STATS_PUBLISH");
      e != nullptr && e[0] != '\0') {
    path = e;
  }
  if (path.empty()) return;
  uint32_t interval = options_.stats_publish_interval_ms;
  if (const char* e = std::getenv("OIR_STATS_INTERVAL_MS");
      e != nullptr && e[0] != '\0') {
    interval = static_cast<uint32_t>(std::atoi(e));
  }
  if (interval == 0) interval = 500;
  {
    MutexLock l(pub_mu_);
    pub_stop_ = false;
  }
  pub_thread_ = std::thread(
      [this, path, interval] { StatsPublisherLoop(path, interval); });
}

void Db::StopObservability() {
  if (pub_thread_.joinable()) {
    {
      MutexLock l(pub_mu_);
      pub_stop_ = true;
    }
    pub_cv_.NotifyAll();
    pub_thread_.join();
  }
  auto& fr = obs::FlightRecorder::Get();
  if (fr_stats_token_ != 0) fr.UnregisterProvider("stats", fr_stats_token_);
  if (fr_locks_token_ != 0) fr.UnregisterProvider("locks", fr_locks_token_);
  if (fr_txns_token_ != 0) {
    fr.UnregisterProvider("active_txns", fr_txns_token_);
  }
  fr_stats_token_ = fr_locks_token_ = fr_txns_token_ = 0;
}

void Db::StatsPublisherLoop(std::string path, uint32_t interval_ms) {
  const std::string tmp = path + ".tmp";
  for (;;) {
    std::string body = DumpStatsJson();
    obs::FlightRecorder::Get().NoteSnapshot(body);
    FILE* f = std::fopen(tmp.c_str(), "w");
    if (f != nullptr) {
      size_t n = std::fwrite(body.data(), 1, body.size(), f);
      if (n == body.size() && std::fclose(f) == 0) {
        std::rename(tmp.c_str(), path.c_str());
      } else {
        std::remove(tmp.c_str());
      }
    }
    MutexLock l(pub_mu_);
    if (pub_stop_) return;
    // wait-state: publisher tick, not an operation wait
    pub_cv_.WaitFor(pub_mu_, std::chrono::milliseconds(interval_ms));
    if (pub_stop_) return;
  }
}

}  // namespace oir

