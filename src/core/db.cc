#include "core/db.h"

#include <cstdio>

#include "core/index.h"

namespace oir {

Db::Db(const DbOptions& options) : options_(options) {}

Db::~Db() = default;

namespace {

// Constructs the component stack shared by Open and OpenExisting.
Status BuildStack(const DbOptions& options, bool truncate_files, Db* db,
                  std::unique_ptr<Disk>* disk, std::unique_ptr<LogManager>* log) {
  if (options.use_file_disk) {
    if (truncate_files) std::remove(options.file_path.c_str());
    std::unique_ptr<FileDisk> fd;
    OIR_RETURN_IF_ERROR(
        FileDisk::Open(options.file_path, options.page_size, &fd));
    OIR_RETURN_IF_ERROR(fd->Extend(options.initial_disk_pages));
    *disk = std::move(fd);
  } else {
    *disk = std::make_unique<MemDisk>(options.page_size,
                                      options.initial_disk_pages);
  }
  if (!options.log_path.empty()) {
    OIR_RETURN_IF_ERROR(
        LogManager::Open(options.log_path, truncate_files, log));
    if (!options.wal_group_commit) (*log)->SetGroupCommit(false);
  } else {
    *log = std::make_unique<LogManager>();
  }
  (void)db;
  return Status::OK();
}

}  // namespace

Status Db::Open(const DbOptions& options, std::unique_ptr<Db>* out) {
  std::unique_ptr<Db> db(new Db(options));
  OIR_RETURN_IF_ERROR(
      BuildStack(options, /*truncate_files=*/true, db.get(), &db->disk_,
                 &db->log_));
  db->bm_ = std::make_unique<BufferManager>(db->disk_.get(),
                                            options.buffer_pool_pages,
                                            options.buffer_pool_shards);
  db->bm_->SetLogFlusher(db->log_.get());
  db->locks_ = std::make_unique<LockManager>();
  db->space_ = std::make_unique<SpaceManager>(db->disk_.get(), db->log_.get(),
                                              kFirstDataPageId);
  db->txn_mgr_ = std::make_unique<TransactionManager>(
      db->log_.get(), db->locks_.get(), db->bm_.get(), db->space_.get());
  db->tree_ = std::make_unique<BTree>(db->bm_.get(), db->log_.get(),
                                      db->locks_.get(), db->space_.get());
  db->txn_mgr_->SetUndoHook(db->tree_.get());
  db->index_ = std::make_unique<Index>(db->tree_.get(), db->txn_mgr_.get(),
                                       db->bm_.get(), db->log_.get(),
                                       db->locks_.get(), db->space_.get());

  // Bootstrap: create the empty index inside a committed transaction so
  // that recovery can always replay the database from an empty log.
  std::unique_ptr<Transaction> boot = db->txn_mgr_->Begin();
  OIR_RETURN_IF_ERROR(db->tree_->CreateNew(boot->ctx()));
  OIR_RETURN_IF_ERROR(db->txn_mgr_->Commit(boot.get()));
  *out = std::move(db);
  return Status::OK();
}

Status Db::OpenExisting(const DbOptions& options, std::unique_ptr<Db>* out,
                        RecoveryStats* stats) {
  if (!options.use_file_disk || options.file_path.empty() ||
      options.log_path.empty()) {
    return Status::InvalidArgument(
        "OpenExisting requires use_file_disk, file_path and log_path");
  }
  std::unique_ptr<Db> db(new Db(options));
  OIR_RETURN_IF_ERROR(
      BuildStack(options, /*truncate_files=*/false, db.get(), &db->disk_,
                 &db->log_));
  db->bm_ = std::make_unique<BufferManager>(db->disk_.get(),
                                            options.buffer_pool_pages,
                                            options.buffer_pool_shards);
  db->bm_->SetLogFlusher(db->log_.get());
  db->locks_ = std::make_unique<LockManager>();
  db->space_ = std::make_unique<SpaceManager>(db->disk_.get(), db->log_.get(),
                                              kFirstDataPageId);
  db->txn_mgr_ = std::make_unique<TransactionManager>(
      db->log_.get(), db->locks_.get(), db->bm_.get(), db->space_.get());
  db->tree_ = std::make_unique<BTree>(db->bm_.get(), db->log_.get(),
                                      db->locks_.get(), db->space_.get());
  db->txn_mgr_->SetUndoHook(db->tree_.get());
  db->index_ = std::make_unique<Index>(db->tree_.get(), db->txn_mgr_.get(),
                                       db->bm_.get(), db->log_.get(),
                                       db->locks_.get(), db->space_.get());

  // Restart recovery over the persisted log and data file.
  RecoveryStats local;
  RecoveryStats* st = stats != nullptr ? stats : &local;
  ApplyContext ctx{db->bm_.get(), db->space_.get(), db->log_.get()};
  RecoveryManager rm(ctx);
  OIR_RETURN_IF_ERROR(rm.AnalyzeAndRedo(st));
  OIR_RETURN_IF_ERROR(db->tree_->Open());
  OIR_RETURN_IF_ERROR(rm.UndoLosers(db->tree_.get(), st));
  OIR_RETURN_IF_ERROR(rm.Finish(st));
  db->txn_mgr_->ResetAfterCrash(rm.max_txn_id() + 1);
  *out = std::move(db);
  return Status::OK();
}

Status Db::Checkpoint(Lsn* truncation_horizon) {
  // Fuzzy checkpoint. Order matters:
  //  1. capture scan_start = current log tail; recovery will rescan
  //     everything from here, so state changes racing with the snapshot
  //     below are replayed idempotently;
  //  2. snapshot the page states and the active transactions;
  //  3. append the checkpoint record;
  //  4. flush every dirty page (covers all updates before scan_start);
  //  5. force the log and publish the master record.
  const Lsn scan_start = log_->tail_lsn();

  LogRecord ckpt;
  ckpt.type = LogType::kCheckpoint;
  ckpt.old_page_lsn = scan_start;  // reused field: recovery scan start
  ckpt.ckpt_allocated = space_->PagesInState(PageState::kAllocated);
  ckpt.ckpt_deallocated = space_->PagesInState(PageState::kDeallocated);
  ckpt.ckpt_end_page = space_->end_page();
  ckpt.ckpt_next_txn_id = txn_mgr_->next_txn_id();
  Lsn oldest_begin = kInvalidLsn;
  txn_mgr_->SnapshotActive(&ckpt.ckpt_txns, &oldest_begin);
  Lsn ckpt_lsn = log_->AppendSystem(&ckpt);

  OIR_RETURN_IF_ERROR(bm_->FlushAll());
  OIR_RETURN_IF_ERROR(log_->FlushAll());
  log_->SetMasterCheckpoint(ckpt_lsn);

  if (truncation_horizon != nullptr) {
    // The log before min(scan_start, oldest active begin) is dead: redo
    // starts at scan_start and every active transaction's undo chain
    // reaches back at most to its begin record.
    Lsn horizon = scan_start;
    if (oldest_begin != kInvalidLsn && oldest_begin < horizon) {
      horizon = oldest_begin;
    }
    *truncation_horizon = horizon;
  }
  return Status::OK();
}

Status Db::CheckpointAndTruncate() {
  Lsn horizon = kInvalidLsn;
  OIR_RETURN_IF_ERROR(Checkpoint(&horizon));
  if (horizon != kInvalidLsn) {
    log_->DiscardPrefix(horizon);
  }
  return Status::OK();
}

Status Db::CrashAndRecover(RecoveryStats* stats) {
  // Crash: volatile state dies. Dirty pages and unflushed log records are
  // lost; locks, side entries and in-flight transactions evaporate.
  bm_->DropAll();
  log_->SimulateCrash();
  locks_->Reset();
  tree_->ResetTransient();

  // Restart.
  ApplyContext ctx{bm_.get(), space_.get(), log_.get()};
  RecoveryManager rm(ctx);
  OIR_RETURN_IF_ERROR(rm.AnalyzeAndRedo(stats));
  OIR_RETURN_IF_ERROR(tree_->Open());
  OIR_RETURN_IF_ERROR(rm.UndoLosers(tree_.get(), stats));
  OIR_RETURN_IF_ERROR(rm.Finish(stats));
  txn_mgr_->ResetAfterCrash(rm.max_txn_id() + 1);
  return Status::OK();
}

}  // namespace oir
