#ifndef OIR_SYNC_THREAD_ANNOTATIONS_H_
#define OIR_SYNC_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis attribute macros (-Wthread-safety).
//
// The annotations turn the locking discipline into compiler-checked
// documentation: a capability (a Mutex, SharedMutex or Latch) protects data
// marked OIR_GUARDED_BY, functions declare the capabilities they need with
// OIR_REQUIRES / acquire with OIR_ACQUIRE, and clang proves every access
// consistent at compile time. Under non-clang compilers (and under clang
// builds without the analysis) every macro expands to nothing, so the
// annotations are free.
//
// Conventions used across src/ (see DESIGN.md, "Concurrency discipline"):
//  * every lockable member is wrapped by the src/sync capability types —
//    raw std::mutex / std::shared_mutex appear only inside src/sync;
//  * data guarded by a mutex is marked OIR_GUARDED_BY(mu_) in the header;
//  * private "...Locked()" helpers are annotated OIR_REQUIRES(mu_) instead
//    of taking a lock argument;
//  * condition waits go through sync/mutex.h's CondVar, whose Wait()
//    requires the mutex — predicate loops are written as explicit while
//    loops so the analysis sees every guarded read under the lock.

// OIR_TSA_ENABLED gates the attributes: clang with the thread_safety
// extension only. GCC accepts __attribute__((unused)) style syntax but not
// these attributes, so everything must compile away elsewhere.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define OIR_TSA_ENABLED 1
#endif
#endif

#if defined(OIR_TSA_ENABLED)
#define OIR_TSA(x) __attribute__((x))
#else
#define OIR_TSA(x)  // no-op
#endif

// A type that acts as a capability (lock). The string names the kind of
// capability for diagnostics ("mutex", "shared_mutex", "latch").
#define OIR_CAPABILITY(x) OIR_TSA(capability(x))

// A RAII type that acquires a capability in its constructor and releases it
// in its destructor (MutexLock and friends).
#define OIR_SCOPED_CAPABILITY OIR_TSA(scoped_lockable)

// Data members: readable/writable only while holding the capability.
#define OIR_GUARDED_BY(x) OIR_TSA(guarded_by(x))
// Pointer members: the pointee (not the pointer) is guarded.
#define OIR_PT_GUARDED_BY(x) OIR_TSA(pt_guarded_by(x))

// Lock-ordering declarations (deadlock analysis with
// -Wthread-safety-beta): this capability must be acquired before/after the
// listed ones.
#define OIR_ACQUIRED_BEFORE(...) OIR_TSA(acquired_before(__VA_ARGS__))
#define OIR_ACQUIRED_AFTER(...) OIR_TSA(acquired_after(__VA_ARGS__))

// Function attributes: the caller must hold the listed capabilities
// (exclusively / shared) when calling.
#define OIR_REQUIRES(...) OIR_TSA(requires_capability(__VA_ARGS__))
#define OIR_REQUIRES_SHARED(...) OIR_TSA(requires_shared_capability(__VA_ARGS__))

// Function attributes: the function acquires the capability and does not
// release it before returning (and the caller must not already hold it).
#define OIR_ACQUIRE(...) OIR_TSA(acquire_capability(__VA_ARGS__))
#define OIR_ACQUIRE_SHARED(...) OIR_TSA(acquire_shared_capability(__VA_ARGS__))

// Function attributes: the function releases a capability the caller holds.
#define OIR_RELEASE(...) OIR_TSA(release_capability(__VA_ARGS__))
#define OIR_RELEASE_SHARED(...) OIR_TSA(release_shared_capability(__VA_ARGS__))
// Releases a capability held in either mode (used by Latch::Unlock(mode)).
#define OIR_RELEASE_GENERIC(...) OIR_TSA(release_generic_capability(__VA_ARGS__))

// Function attributes: acquires the capability iff the return value equals
// the given boolean.
#define OIR_TRY_ACQUIRE(...) OIR_TSA(try_acquire_capability(__VA_ARGS__))
#define OIR_TRY_ACQUIRE_SHARED(...) \
  OIR_TSA(try_acquire_shared_capability(__VA_ARGS__))

// The caller must NOT hold the listed capabilities (non-reentrancy).
#define OIR_EXCLUDES(...) OIR_TSA(locks_excluded(__VA_ARGS__))

// Runtime-checked assertion that the capability is held; tells the static
// analysis to treat it as held from this point on. With no argument the
// capability is `this` (for member functions of a capability type).
#define OIR_ASSERT_CAPABILITY(...) OIR_TSA(assert_capability(__VA_ARGS__))
#define OIR_ASSERT_SHARED_CAPABILITY(...) \
  OIR_TSA(assert_shared_capability(__VA_ARGS__))

// The function returns a reference to the given capability.
#define OIR_RETURN_CAPABILITY(x) OIR_TSA(lock_returned(x))

// Escape hatch: disables analysis inside the annotated function. Every use
// carries a comment explaining why the discipline cannot be expressed.
#define OIR_NO_THREAD_SAFETY_ANALYSIS OIR_TSA(no_thread_safety_analysis)

#endif  // OIR_SYNC_THREAD_ANNOTATIONS_H_
