#ifndef OIR_SYNC_LOCK_MANAGER_H_
#define OIR_SYNC_LOCK_MANAGER_H_

// Lock manager providing the two kinds of locks of Section 2:
//
//  * Address locks — X locks on page numbers acquired by split, shrink and
//    rebuild top actions (Section 2.2). They are distinguished from logical
//    locks and are released when the top action completes. Blocked writers
//    wait by requesting an "unconditional instant duration S lock" on the
//    page: the request waits until it is grantable and is then immediately
//    released.
//
//  * Logical locks — row-level locks acquired by insert, delete and scan
//    operations as dictated by the isolation level. Held to transaction end.
//
// Requests may be conditional (fail immediately with Status::Busy instead
// of waiting) — the rebuild copy phase uses conditional requests on
// P2..Pn so it can truncate the batch instead of waiting (Section 4.1.1).
//
// The index concurrency protocols (Section 6.5) guarantee that address
// locks and latches never deadlock; only logical-lock deadlocks are
// possible. A wait timeout (default 10 s) converts a suspected logical-lock
// deadlock into Status::Aborted, making the requester the victim.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <unordered_map>

#include "sync/mutex.h"
#include "util/status.h"
#include "util/types.h"

namespace oir {

enum class LockMode : uint8_t { kS = 0, kX = 1 };

enum class LockSpace : uint8_t {
  kAddress = 0,  // page-number address locks
  kLogical = 1,  // row-level logical locks
};

struct LockKey {
  LockSpace space;
  uint64_t id;

  bool operator==(const LockKey& o) const {
    return space == o.space && id == o.id;
  }
};

struct LockKeyHash {
  size_t operator()(const LockKey& k) const {
    return std::hash<uint64_t>()(k.id * 2 + static_cast<uint64_t>(k.space));
  }
};

inline LockKey AddressLockKey(PageId page) {
  return LockKey{LockSpace::kAddress, page};
}
inline LockKey LogicalLockKey(RowId row) {
  return LockKey{LockSpace::kLogical, row};
}

class LockManager {
 public:
  LockManager();
  ~LockManager();

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  // Acquires (or upgrades to) `mode`. Re-entrant for the same owner.
  // conditional=true: returns Busy instead of waiting.
  // Returns Aborted if the wait exceeds the timeout.
  Status Lock(TxnId owner, LockKey key, LockMode mode, bool conditional);

  // Instant-duration request: waits until the lock would be grantable, then
  // returns without retaining it. Used to block on SPLIT/SHRINK bits.
  Status LockInstant(TxnId owner, LockKey key, LockMode mode,
                     bool conditional);

  // Releases one acquisition of `key` by `owner` (locks are counted; the
  // lock is dropped when the count reaches zero).
  void Unlock(TxnId owner, LockKey key);

  // Crash simulation: drops every lock unconditionally (the locks of a
  // crashed process die with it). No waiters may be blocked when called.
  void Reset();

  // Test / introspection hooks.
  bool IsHeld(TxnId owner, LockKey key, LockMode mode) const;
  size_t NumLockedKeys() const;

  // Diagnostic dump of every locked key and its holders, as a JSON value
  // ({"keys":[{"space":..,"id":..,"holders":[{"txn":..,"mode":..,
  // "count":..}]},...]}). Used by the flight recorder's lock-table
  // provider. Must not be called with any shard mutex held.
  std::string DumpJson() const;

  void set_wait_timeout(std::chrono::milliseconds t) { wait_timeout_ = t; }

  // Long-wait watchdog: a waiter blocked longer than this emits a trace
  // event and a stderr diagnostic naming the blocked key, the requester and
  // the current holder (once per wait). 0 disables the watchdog.
  void set_long_wait_threshold(std::chrono::milliseconds t) {
    long_wait_ms_.store(t.count(), std::memory_order_relaxed);
  }

 private:
  struct Holder {
    LockMode mode;
    uint32_t count;
  };

  struct Entry {
    std::map<TxnId, Holder> granted;
  };

  struct Shard {
    mutable Mutex mu;
    CondVar cv;
    std::unordered_map<LockKey, Entry, LockKeyHash> table OIR_GUARDED_BY(mu);
  };

  // True if `owner` may acquire `mode` given current holders.
  static bool Grantable(const Entry& e, TxnId owner, LockMode mode);

  Shard& ShardFor(const LockKey& key) const;

  // Emits the long-wait diagnostic for `key`, naming the current holder.
  // The shard mutex must be held — the holder set is inspected in place —
  // and the body asserts the capability before touching the table.
  static void WatchdogFire(const Shard& shard, const LockKey& key, TxnId owner,
                           LockMode mode, std::chrono::milliseconds waited)
      OIR_REQUIRES(shard.mu);

  static constexpr size_t kNumShards = 16;
  Shard* shards_;
  std::chrono::milliseconds wait_timeout_;
  std::atomic<int64_t> long_wait_ms_{1000};
};

}  // namespace oir

#endif  // OIR_SYNC_LOCK_MANAGER_H_
