#ifndef OIR_SYNC_MUTEX_H_
#define OIR_SYNC_MUTEX_H_

// Capability-annotated synchronization primitives. These are the only
// lockable types used outside src/sync (enforced by tools/oir_lint): they
// wrap the std primitives and carry the Clang Thread Safety attributes, so
// a clang build with -Wthread-safety proves the locking discipline of every
// annotated subsystem at compile time.
//
// Beyond the annotations, Mutex and SharedMutex track their exclusive
// holder (one relaxed atomic store on each lock/unlock), which makes
// AssertHeld() a real runtime check everywhere — including release builds —
// not just a hint to the static analysis. Diagnostic paths that inspect
// protected state (e.g. the lock-manager watchdog) assert the capability
// instead of silently assuming it.
//
// Condition waits go through CondVar, whose Wait()/WaitUntil() require the
// mutex: predicate waits are written as explicit `while (!pred) cv.Wait(mu)`
// loops so the analysis sees every guarded read of the predicate under the
// lock (a lambda handed to std::condition_variable::wait would be opaque to
// it).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "sync/thread_annotations.h"
#include "util/logging.h"

namespace oir {

class CondVar;

// Exclusive mutex. Same semantics as std::mutex plus holder tracking.
class OIR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() OIR_ACQUIRE() {
    mu_.lock();
    SetHolder();
  }

  void Unlock() OIR_RELEASE() {
    ClearHolder();
    mu_.unlock();
  }

  bool TryLock() OIR_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    SetHolder();
    return true;
  }

  // Aborts unless the calling thread holds this mutex. The static analysis
  // treats the capability as held from the assertion on.
  void AssertHeld() const OIR_ASSERT_CAPABILITY() {
    OIR_CHECK(holder_.load(std::memory_order_relaxed) ==
              std::this_thread::get_id());
  }

 private:
  friend class CondVar;

  void SetHolder() {
    holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }
  void ClearHolder() {
    holder_.store(std::thread::id(), std::memory_order_relaxed);
  }

  std::mutex mu_;
  std::atomic<std::thread::id> holder_{};
};

// Reader/writer mutex. Holder tracking covers the exclusive side only (a
// shared holding is a set of threads, which a single word cannot name).
class OIR_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() OIR_ACQUIRE() {
    mu_.lock();
    SetHolder();
  }

  void Unlock() OIR_RELEASE() {
    ClearHolder();
    mu_.unlock();
  }

  bool TryLock() OIR_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    SetHolder();
    return true;
  }

  void LockShared() OIR_ACQUIRE_SHARED() { mu_.lock_shared(); }

  void UnlockShared() OIR_RELEASE_SHARED() { mu_.unlock_shared(); }

  bool TryLockShared() OIR_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

  // Aborts unless the calling thread holds this mutex exclusively.
  void AssertHeld() const OIR_ASSERT_CAPABILITY() {
    OIR_CHECK(holder_.load(std::memory_order_relaxed) ==
              std::this_thread::get_id());
  }

 private:
  void SetHolder() {
    holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }
  void ClearHolder() {
    holder_.store(std::thread::id(), std::memory_order_relaxed);
  }

  std::shared_mutex mu_;
  std::atomic<std::thread::id> holder_{};
};

// Condition variable bound to Mutex. Waits release and reacquire the mutex
// internally; holder tracking is kept consistent across the wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) OIR_REQUIRES(mu) {
    mu.ClearHolder();
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();
    mu.SetHolder();
  }

  template <class Clock, class Duration>
  std::cv_status WaitUntil(Mutex& mu,
                           const std::chrono::time_point<Clock, Duration>& tp)
      OIR_REQUIRES(mu) {
    mu.ClearHolder();
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    std::cv_status r = cv_.wait_until(lk, tp);
    lk.release();
    mu.SetHolder();
    return r;
  }

  template <class Rep, class Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& d)
      OIR_REQUIRES(mu) {
    mu.ClearHolder();
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    std::cv_status r = cv_.wait_for(lk, d);
    lk.release();
    mu.SetHolder();
    return r;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// RAII exclusive lock of a Mutex for a whole scope.
class OIR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) OIR_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() OIR_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// RAII exclusive lock of a SharedMutex.
class OIR_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) OIR_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() OIR_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII shared lock of a SharedMutex.
class OIR_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) OIR_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() OIR_RELEASE() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace oir

#endif  // OIR_SYNC_MUTEX_H_
