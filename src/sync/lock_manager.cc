#include "sync/lock_manager.h"

#include <cstdio>

#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/waitstate.h"
#include "util/counters.h"
#include "util/logging.h"

namespace oir {

namespace {

const char* SpaceName(LockSpace s) {
  return s == LockSpace::kAddress ? "page" : "row";
}

const char* ModeName(LockMode m) { return m == LockMode::kX ? "X" : "S"; }

}  // namespace

LockManager::LockManager()
    : shards_(new Shard[kNumShards]),
      wait_timeout_(std::chrono::milliseconds(10000)) {}

LockManager::~LockManager() { delete[] shards_; }

LockManager::Shard& LockManager::ShardFor(const LockKey& key) const {
  return shards_[LockKeyHash()(key) % kNumShards];
}

bool LockManager::Grantable(const Entry& e, TxnId owner, LockMode mode) {
  for (const auto& [holder, h] : e.granted) {
    if (holder == owner) continue;
    if (mode == LockMode::kX || h.mode == LockMode::kX) return false;
  }
  return true;
}

void LockManager::WatchdogFire(const Shard& shard, const LockKey& key,
                               TxnId owner, LockMode mode,
                               std::chrono::milliseconds waited) {
  shard.mu.AssertHeld();
  auto it = shard.table.find(key);
  if (it == shard.table.end()) return;
  const Entry& e = it->second;
  GlobalCounters::Get().lock_watchdog_fires.fetch_add(
      1, std::memory_order_relaxed);
  TxnId holder_id = 0;
  LockMode holder_mode = LockMode::kS;
  uint32_t holder_count = 0;
  for (const auto& [h, hold] : e.granted) {
    if (h == owner) continue;
    holder_id = h;
    holder_mode = hold.mode;
    holder_count = hold.count;
    break;
  }
  OIR_TRACE(obs::TraceEventType::kLockWatchdog, key.id, holder_id);
  std::fprintf(stderr,
               "[oir] lock watchdog: txn %llu has waited %lld ms for %s lock "
               "on %s %llu; current holder: txn %llu (%s, count %u)\n",
               static_cast<unsigned long long>(owner),
               static_cast<long long>(waited.count()), ModeName(mode),
               SpaceName(key.space), static_cast<unsigned long long>(key.id),
               static_cast<unsigned long long>(holder_id),
               ModeName(holder_mode), holder_count);
  // Async only: this thread holds shard.mu, and the flight-record dump
  // calls back into DumpJson (which takes every shard mutex). Trigger only
  // touches the recorder's leaf mutex.
  obs::FlightRecorder::Get().Trigger("lock_watchdog");
}

Status LockManager::Lock(TxnId owner, LockKey key, LockMode mode,
                         bool conditional) {
  static obs::TimerStat* const timer =
      obs::MetricRegistry::Get().Timer("lock.acquire_ns");
  obs::ScopedTimer scope(timer);
  auto& c = GlobalCounters::Get();
  c.lock_requests.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(key);
  MutexLock lk(shard.mu);
  Entry& e = shard.table[key];

  auto self = e.granted.find(owner);
  if (self != e.granted.end() && self->second.mode >= mode) {
    // Already held at sufficient strength.
    ++self->second.count;
    return Status::OK();
  }

  if (!Grantable(e, owner, mode)) {
    if (conditional) {
      if (e.granted.empty()) shard.table.erase(key);
      c.cond_lock_failures.fetch_add(1, std::memory_order_relaxed);
      OIR_TRACE(obs::TraceEventType::kCondLockFail, key.id, owner);
      return Status::Busy("lock not available");
    }
    c.lock_waits.fetch_add(1, std::memory_order_relaxed);
    OIR_TRACE(obs::TraceEventType::kLockWaitBegin, key.id, owner);
    obs::WaitScope ws(obs::WaitState::kLockWait);
    const auto start = std::chrono::steady_clock::now();
    const auto deadline = start + wait_timeout_;
    const int64_t wd_ms = long_wait_ms_.load(std::memory_order_relaxed);
    const auto watchdog_at = start + std::chrono::milliseconds(wd_ms);
    bool watchdog_fired = wd_ms <= 0;  // 0 disables
    while (!Grantable(shard.table[key], owner, mode)) {
      auto wake = deadline;
      if (!watchdog_fired && watchdog_at < wake) wake = watchdog_at;
      if (shard.cv.WaitUntil(shard.mu, wake) == std::cv_status::timeout) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) {
          OIR_TRACE(obs::TraceEventType::kLockWaitEnd, key.id, owner);
          Entry& e2 = shard.table[key];
          if (e2.granted.empty()) shard.table.erase(key);
          return Status::Aborted("lock wait timeout (possible deadlock)");
        }
        if (!watchdog_fired && now >= watchdog_at) {
          watchdog_fired = true;
          WatchdogFire(shard, key, owner, mode,
                       std::chrono::duration_cast<std::chrono::milliseconds>(
                           now - start));
        }
      }
    }
    OIR_TRACE(obs::TraceEventType::kLockWaitEnd, key.id, owner);
  }

  Entry& e3 = shard.table[key];
  auto it = e3.granted.find(owner);
  if (it == e3.granted.end()) {
    e3.granted[owner] = Holder{mode, 1};
  } else {
    // Upgrade (S -> X). Count carries over plus this acquisition.
    it->second.mode = mode;
    ++it->second.count;
  }
  return Status::OK();
}

Status LockManager::LockInstant(TxnId owner, LockKey key, LockMode mode,
                                bool conditional) {
  static obs::TimerStat* const timer =
      obs::MetricRegistry::Get().Timer("lock.acquire_ns");
  obs::ScopedTimer scope(timer);
  auto& c = GlobalCounters::Get();
  c.lock_requests.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(key);
  MutexLock lk(shard.mu);
  auto it = shard.table.find(key);
  if (it == shard.table.end() || Grantable(it->second, owner, mode)) {
    return Status::OK();
  }
  if (conditional) {
    c.cond_lock_failures.fetch_add(1, std::memory_order_relaxed);
    OIR_TRACE(obs::TraceEventType::kCondLockFail, key.id, owner);
    return Status::Busy("lock not available");
  }
  c.lock_waits.fetch_add(1, std::memory_order_relaxed);
  OIR_TRACE(obs::TraceEventType::kLockWaitBegin, key.id, owner);
  obs::WaitScope ws(obs::WaitState::kLockWait);
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + wait_timeout_;
  const int64_t wd_ms = long_wait_ms_.load(std::memory_order_relaxed);
  const auto watchdog_at = start + std::chrono::milliseconds(wd_ms);
  bool watchdog_fired = wd_ms <= 0;
  for (;;) {
    auto it2 = shard.table.find(key);
    if (it2 == shard.table.end() || Grantable(it2->second, owner, mode)) {
      OIR_TRACE(obs::TraceEventType::kLockWaitEnd, key.id, owner);
      return Status::OK();
    }
    auto wake = deadline;
    if (!watchdog_fired && watchdog_at < wake) wake = watchdog_at;
    if (shard.cv.WaitUntil(shard.mu, wake) == std::cv_status::timeout) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        OIR_TRACE(obs::TraceEventType::kLockWaitEnd, key.id, owner);
        return Status::Aborted("lock wait timeout (possible deadlock)");
      }
      if (!watchdog_fired && now >= watchdog_at) {
        watchdog_fired = true;
        WatchdogFire(shard, key, owner, mode,
                     std::chrono::duration_cast<std::chrono::milliseconds>(
                         now - start));
      }
    }
  }
}

void LockManager::Unlock(TxnId owner, LockKey key) {
  Shard& shard = ShardFor(key);
  bool wake = false;
  {
    MutexLock lk(shard.mu);
    auto it = shard.table.find(key);
    if (it == shard.table.end()) return;
    auto self = it->second.granted.find(owner);
    if (self == it->second.granted.end()) return;
    if (--self->second.count == 0) {
      it->second.granted.erase(self);
      wake = true;
      if (it->second.granted.empty()) shard.table.erase(it);
    }
  }
  if (wake) shard.cv.NotifyAll();
}

void LockManager::Reset() {
  for (size_t i = 0; i < kNumShards; ++i) {
    MutexLock lk(shards_[i].mu);
    shards_[i].table.clear();
  }
}

bool LockManager::IsHeld(TxnId owner, LockKey key, LockMode mode) const {
  Shard& shard = ShardFor(key);
  MutexLock lk(shard.mu);
  auto it = shard.table.find(key);
  if (it == shard.table.end()) return false;
  auto self = it->second.granted.find(owner);
  if (self == it->second.granted.end()) return false;
  return self->second.mode >= mode;
}

size_t LockManager::NumLockedKeys() const {
  size_t n = 0;
  for (size_t i = 0; i < kNumShards; ++i) {
    MutexLock lk(shards_[i].mu);
    n += shards_[i].table.size();
  }
  return n;
}

std::string LockManager::DumpJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("keys").BeginArray();
  // Shard-at-a-time: the view is consistent per shard, not globally, which
  // is fine for a diagnostic dump.
  for (size_t i = 0; i < kNumShards; ++i) {
    MutexLock lk(shards_[i].mu);
    for (const auto& [key, entry] : shards_[i].table) {
      w.BeginObject();
      w.Key("space").Value(SpaceName(key.space));
      w.Key("id").Value(key.id);
      w.Key("holders").BeginArray();
      for (const auto& [txn, h] : entry.granted) {
        w.BeginObject();
        w.Key("txn").Value(static_cast<uint64_t>(txn));
        w.Key("mode").Value(ModeName(h.mode));
        w.Key("count").Value(static_cast<uint64_t>(h.count));
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    }
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace oir
