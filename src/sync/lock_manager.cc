#include "sync/lock_manager.h"

#include <condition_variable>

#include "util/counters.h"
#include "util/logging.h"

namespace oir {

struct LockManager::Shard {
  mutable std::mutex mu;
  std::condition_variable cv;
  std::unordered_map<LockKey, Entry, LockKeyHash> table;
};

LockManager::LockManager()
    : shards_(new Shard[kNumShards]),
      wait_timeout_(std::chrono::milliseconds(10000)) {}

LockManager::~LockManager() { delete[] shards_; }

LockManager::Shard& LockManager::ShardFor(const LockKey& key) const {
  return shards_[LockKeyHash()(key) % kNumShards];
}

bool LockManager::Grantable(const Entry& e, TxnId owner, LockMode mode) {
  for (const auto& [holder, h] : e.granted) {
    if (holder == owner) continue;
    if (mode == LockMode::kX || h.mode == LockMode::kX) return false;
  }
  return true;
}

Status LockManager::Lock(TxnId owner, LockKey key, LockMode mode,
                         bool conditional) {
  auto& c = GlobalCounters::Get();
  c.lock_requests.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lk(shard.mu);
  Entry& e = shard.table[key];

  auto self = e.granted.find(owner);
  if (self != e.granted.end() && self->second.mode >= mode) {
    // Already held at sufficient strength.
    ++self->second.count;
    return Status::OK();
  }

  if (!Grantable(e, owner, mode)) {
    if (conditional) {
      if (e.granted.empty()) shard.table.erase(key);
      return Status::Busy("lock not available");
    }
    c.lock_waits.fetch_add(1, std::memory_order_relaxed);
    auto deadline = std::chrono::steady_clock::now() + wait_timeout_;
    while (!Grantable(shard.table[key], owner, mode)) {
      if (shard.cv.wait_until(lk, deadline) == std::cv_status::timeout) {
        Entry& e2 = shard.table[key];
        if (e2.granted.empty()) shard.table.erase(key);
        return Status::Aborted("lock wait timeout (possible deadlock)");
      }
    }
  }

  Entry& e3 = shard.table[key];
  auto it = e3.granted.find(owner);
  if (it == e3.granted.end()) {
    e3.granted[owner] = Holder{mode, 1};
  } else {
    // Upgrade (S -> X). Count carries over plus this acquisition.
    it->second.mode = mode;
    ++it->second.count;
  }
  return Status::OK();
}

Status LockManager::LockInstant(TxnId owner, LockKey key, LockMode mode,
                                bool conditional) {
  auto& c = GlobalCounters::Get();
  c.lock_requests.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lk(shard.mu);
  auto it = shard.table.find(key);
  if (it == shard.table.end() || Grantable(it->second, owner, mode)) {
    return Status::OK();
  }
  if (conditional) return Status::Busy("lock not available");
  c.lock_waits.fetch_add(1, std::memory_order_relaxed);
  auto deadline = std::chrono::steady_clock::now() + wait_timeout_;
  for (;;) {
    auto it2 = shard.table.find(key);
    if (it2 == shard.table.end() || Grantable(it2->second, owner, mode)) {
      return Status::OK();
    }
    if (shard.cv.wait_until(lk, deadline) == std::cv_status::timeout) {
      return Status::Aborted("lock wait timeout (possible deadlock)");
    }
  }
}

void LockManager::Unlock(TxnId owner, LockKey key) {
  Shard& shard = ShardFor(key);
  bool wake = false;
  {
    std::lock_guard<std::mutex> lk(shard.mu);
    auto it = shard.table.find(key);
    if (it == shard.table.end()) return;
    auto self = it->second.granted.find(owner);
    if (self == it->second.granted.end()) return;
    if (--self->second.count == 0) {
      it->second.granted.erase(self);
      wake = true;
      if (it->second.granted.empty()) shard.table.erase(it);
    }
  }
  if (wake) shard.cv.notify_all();
}

void LockManager::Reset() {
  for (size_t i = 0; i < kNumShards; ++i) {
    std::lock_guard<std::mutex> lk(shards_[i].mu);
    shards_[i].table.clear();
  }
}

bool LockManager::IsHeld(TxnId owner, LockKey key, LockMode mode) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lk(shard.mu);
  auto it = shard.table.find(key);
  if (it == shard.table.end()) return false;
  auto self = it->second.granted.find(owner);
  if (self == it->second.granted.end()) return false;
  return self->second.mode >= mode;
}

size_t LockManager::NumLockedKeys() const {
  size_t n = 0;
  for (size_t i = 0; i < kNumShards; ++i) {
    std::lock_guard<std::mutex> lk(shards_[i].mu);
    n += shards_[i].table.size();
  }
  return n;
}

}  // namespace oir
