#ifndef OIR_SYNC_LATCH_H_
#define OIR_SYNC_LATCH_H_

// Page latches for physical consistency (Section 2): shared (S) for reads,
// exclusive (X) for writes. Latches are short-duration — held only across a
// page access, never across I/O waits for locks. Deadlocks are prevented by
// the ordering rules of Section 6.5 (top-down across levels, left-to-right
// within a level), which the B+-tree and rebuild code obey.
//
// Latch deliberately carries NO thread-safety-analysis annotations, unlike
// Mutex/SharedMutex (sync/mutex.h). Latch ownership does not nest in
// scopes: traversal hands latches over hand-over-hand (crabbing), SMO
// helpers "consume" an X-latched page acquired by their caller, and the
// latch lives inside a buffer frame reached through a moved PageRef — all
// patterns the static analysis cannot express (it names capabilities by
// syntactic expression and assumes function-scoped balance). Annotating the
// acquire/release methods would bury the clang -Wthread-safety build in
// unfixable diagnostics; latch discipline is instead enforced by the
// Section 6.5 ordering rules and verified dynamically by the TSan lane.

#include <shared_mutex>

#include "obs/waitstate.h"
#include "util/counters.h"

namespace oir {

enum class LatchMode { kShared, kExclusive };

class Latch {
 public:
  Latch() = default;
  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void LockS() {
    auto& c = GlobalCounters::Get();
    c.latch_acquires.fetch_add(1, std::memory_order_relaxed);
    if (!mu_.try_lock_shared()) {
      c.latch_waits.fetch_add(1, std::memory_order_relaxed);
      obs::WaitScope ws(obs::WaitState::kLatchWait);
      mu_.lock_shared();
    }
  }

  void UnlockS() { mu_.unlock_shared(); }

  void LockX() {
    auto& c = GlobalCounters::Get();
    c.latch_acquires.fetch_add(1, std::memory_order_relaxed);
    if (!mu_.try_lock()) {
      c.latch_waits.fetch_add(1, std::memory_order_relaxed);
      obs::WaitScope ws(obs::WaitState::kLatchWait);
      mu_.lock();
    }
  }

  void UnlockX() { mu_.unlock(); }

  bool TryLockS() {
    GlobalCounters::Get().latch_acquires.fetch_add(1,
                                                   std::memory_order_relaxed);
    return mu_.try_lock_shared();
  }

  bool TryLockX() {
    GlobalCounters::Get().latch_acquires.fetch_add(1,
                                                   std::memory_order_relaxed);
    return mu_.try_lock();
  }

  void Lock(LatchMode mode) {
    if (mode == LatchMode::kShared) {
      LockS();
    } else {
      LockX();
    }
  }

  void Unlock(LatchMode mode) {
    if (mode == LatchMode::kShared) {
      UnlockS();
    } else {
      UnlockX();
    }
  }

 private:
  std::shared_mutex mu_;
};

}  // namespace oir

#endif  // OIR_SYNC_LATCH_H_
