#include "txn/transaction_manager.h"

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/waitstate.h"
#include "testing/crash_point.h"
#include "util/logging.h"

namespace oir {

TransactionManager::TransactionManager(LogManager* log, LockManager* locks,
                                       BufferManager* bm, SpaceManager* space)
    : log_(log), locks_(locks), bm_(bm), space_(space) {}

std::unique_ptr<Transaction> TransactionManager::Begin() {
  TxnId id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  auto txn = std::make_unique<Transaction>(id);
  // The begin record is written lazily by LogManager::Append just before
  // the transaction's first real record; a read-only transaction never
  // touches the log.
  {
    MutexLock l(mu_);
    active_[id] = txn.get();
  }
  return txn;
}

Status TransactionManager::Commit(Transaction* txn) {
  obs::OpScope op(obs::OpType::kCommit);
  OIR_CHECK(txn->state() == TxnState::kActive);
  if (txn->last_lsn() != kInvalidLsn) {
    LogRecord commit;
    commit.type = LogType::kCommitTxn;
    OIR_CRASH_POINT("txn.commit.pre_flush");
    Lsn lsn = log_->Append(&commit, txn->ctx());
    {
      // Commit-ack latency: append of the commit record to durable wake-up.
      static obs::TimerStat* const ack_timer =
          obs::MetricRegistry::Get().Timer("wal.commit_ack_ns");
      obs::ScopedTimer ack_scope(ack_timer);
      OIR_RETURN_IF_ERROR(log_->FlushTo(lsn));
    }
    OIR_CRASH_POINT("txn.commit.flushed");
    ReleaseTrackedLocks(txn);
    LogRecord end;
    end.type = LogType::kEndTxn;
    log_->Append(&end, txn->ctx());
    OIR_CRASH_POINT("txn.commit.end");
  } else {
    // Nothing logged: nothing to make durable or to undo.
    ReleaseTrackedLocks(txn);
  }
  txn->set_state(TxnState::kCommitted);
  {
    MutexLock l(mu_);
    active_.erase(txn->id());
  }
  return Status::OK();
}

Status TransactionManager::Abort(Transaction* txn) {
  OIR_CHECK(txn->state() == TxnState::kActive);
  if (txn->last_lsn() == kInvalidLsn) {
    ReleaseTrackedLocks(txn);
    txn->set_state(TxnState::kAborted);
    MutexLock l(mu_);
    active_.erase(txn->id());
    return Status::OK();
  }
  OIR_CRASH_POINT("txn.abort.begin");
  LogRecord abort;
  abort.type = LogType::kAbortTxn;
  log_->Append(&abort, txn->ctx());

  ApplyContext ctx{bm_, space_, log_};
  OIR_RETURN_IF_ERROR(RollbackTo(&ctx, txn->ctx(), kInvalidLsn, hook_));

  OIR_CRASH_POINT("txn.abort.rolled_back");
  ReleaseTrackedLocks(txn);
  LogRecord end;
  end.type = LogType::kEndTxn;
  log_->Append(&end, txn->ctx());
  txn->set_state(TxnState::kAborted);
  {
    MutexLock l(mu_);
    active_.erase(txn->id());
  }
  return Status::OK();
}

Status TransactionManager::LockLogical(Transaction* txn, RowId row,
                                       LockMode mode) {
  LockKey key = LogicalLockKey(row);
  OIR_RETURN_IF_ERROR(locks_->Lock(txn->id(), key, mode,
                                   /*conditional=*/false));
  txn->TrackLock(key);
  return Status::OK();
}

void TransactionManager::ReleaseTrackedLocks(Transaction* txn) {
  for (const LockKey& key : txn->tracked_locks()) {
    locks_->Unlock(txn->id(), key);
  }
  txn->clear_tracked_locks();
}

void TransactionManager::ResetAfterCrash(TxnId next_id) {
  MutexLock l(mu_);
  active_.clear();
  TxnId cur = next_txn_id_.load(std::memory_order_relaxed);
  if (next_id > cur) next_txn_id_.store(next_id, std::memory_order_relaxed);
}

void TransactionManager::SnapshotActive(std::vector<CheckpointTxn>* out,
                                        Lsn* oldest_begin) const {
  MutexLock l(mu_);
  out->clear();
  *oldest_begin = kInvalidLsn;
  for (const auto& [id, txn] : active_) {
    // A transaction that has not logged anything yet (lazy begin) needs no
    // recovery work and does not pin the log.
    if (txn->last_lsn() == kInvalidLsn) continue;
    out->push_back(CheckpointTxn{id, txn->last_lsn()});
    if (*oldest_begin == kInvalidLsn || txn->begin_lsn() < *oldest_begin) {
      *oldest_begin = txn->begin_lsn();
    }
  }
}

std::string TransactionManager::DumpActiveTxnsJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("active").BeginArray();
  {
    MutexLock l(mu_);
    for (const auto& [id, txn] : active_) {
      w.BeginObject();
      w.Key("txn").Value(static_cast<uint64_t>(id));
      w.Key("last_lsn").Value(static_cast<uint64_t>(txn->last_lsn()));
      w.EndObject();
    }
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

size_t TransactionManager::NumActive() const {
  MutexLock l(mu_);
  return active_.size();
}

}  // namespace oir
