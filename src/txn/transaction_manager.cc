#include "txn/transaction_manager.h"

#include "util/logging.h"

namespace oir {

TransactionManager::TransactionManager(LogManager* log, LockManager* locks,
                                       BufferManager* bm, SpaceManager* space)
    : log_(log), locks_(locks), bm_(bm), space_(space) {}

std::unique_ptr<Transaction> TransactionManager::Begin() {
  TxnId id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  auto txn = std::make_unique<Transaction>(id);
  LogRecord rec;
  rec.type = LogType::kBeginTxn;
  Lsn lsn = log_->Append(&rec, txn->ctx());
  txn->set_begin_lsn(lsn);
  {
    std::lock_guard<std::mutex> l(mu_);
    active_[id] = txn.get();
  }
  return txn;
}

Status TransactionManager::Commit(Transaction* txn) {
  OIR_CHECK(txn->state() == TxnState::kActive);
  LogRecord commit;
  commit.type = LogType::kCommitTxn;
  Lsn lsn = log_->Append(&commit, txn->ctx());
  OIR_RETURN_IF_ERROR(log_->FlushTo(lsn));
  ReleaseTrackedLocks(txn);
  LogRecord end;
  end.type = LogType::kEndTxn;
  log_->Append(&end, txn->ctx());
  txn->set_state(TxnState::kCommitted);
  {
    std::lock_guard<std::mutex> l(mu_);
    active_.erase(txn->id());
  }
  return Status::OK();
}

Status TransactionManager::Abort(Transaction* txn) {
  OIR_CHECK(txn->state() == TxnState::kActive);
  LogRecord abort;
  abort.type = LogType::kAbortTxn;
  log_->Append(&abort, txn->ctx());

  ApplyContext ctx{bm_, space_, log_};
  OIR_RETURN_IF_ERROR(RollbackTo(&ctx, txn->ctx(), kInvalidLsn, hook_));

  ReleaseTrackedLocks(txn);
  LogRecord end;
  end.type = LogType::kEndTxn;
  log_->Append(&end, txn->ctx());
  txn->set_state(TxnState::kAborted);
  {
    std::lock_guard<std::mutex> l(mu_);
    active_.erase(txn->id());
  }
  return Status::OK();
}

Status TransactionManager::LockLogical(Transaction* txn, RowId row,
                                       LockMode mode) {
  LockKey key = LogicalLockKey(row);
  OIR_RETURN_IF_ERROR(locks_->Lock(txn->id(), key, mode,
                                   /*conditional=*/false));
  txn->TrackLock(key);
  return Status::OK();
}

void TransactionManager::ReleaseTrackedLocks(Transaction* txn) {
  for (const LockKey& key : txn->tracked_locks()) {
    locks_->Unlock(txn->id(), key);
  }
  txn->clear_tracked_locks();
}

void TransactionManager::ResetAfterCrash(TxnId next_id) {
  std::lock_guard<std::mutex> l(mu_);
  active_.clear();
  TxnId cur = next_txn_id_.load(std::memory_order_relaxed);
  if (next_id > cur) next_txn_id_.store(next_id, std::memory_order_relaxed);
}

void TransactionManager::SnapshotActive(std::vector<CheckpointTxn>* out,
                                        Lsn* oldest_begin) const {
  std::lock_guard<std::mutex> l(mu_);
  out->clear();
  *oldest_begin = kInvalidLsn;
  for (const auto& [id, txn] : active_) {
    out->push_back(CheckpointTxn{id, txn->last_lsn()});
    if (*oldest_begin == kInvalidLsn || txn->begin_lsn() < *oldest_begin) {
      *oldest_begin = txn->begin_lsn();
    }
  }
}

size_t TransactionManager::NumActive() const {
  std::lock_guard<std::mutex> l(mu_);
  return active_.size();
}

}  // namespace oir
