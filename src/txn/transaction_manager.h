#ifndef OIR_TXN_TRANSACTION_MANAGER_H_
#define OIR_TXN_TRANSACTION_MANAGER_H_

// Transaction manager: begin / commit / abort with ARIES-style rollback.
// Commit forces the log (the commit record must be durable); abort walks
// the prevLSN chain writing CLRs, skipping completed nested top actions
// via their dummy CLRs (Section 2: split/shrink/rebuild top actions are
// never undone once complete, even if the enclosing transaction rolls
// back).

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "recovery/log_apply.h"
#include "sync/lock_manager.h"
#include "sync/mutex.h"
#include "txn/transaction.h"
#include "util/status.h"

namespace oir {

class TransactionManager {
 public:
  TransactionManager(LogManager* log, LockManager* locks, BufferManager* bm,
                     SpaceManager* space);

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  // Wired by the database facade once the B+-tree exists: logical undo of
  // leaf inserts/deletes during rollback.
  void SetUndoHook(LogicalUndoHook* hook) { hook_ = hook; }

  std::unique_ptr<Transaction> Begin();

  // Logs the commit record, forces the log, releases transaction-duration
  // locks and logs the end record.
  Status Commit(Transaction* txn);

  // Rolls back all of the transaction's effects (completed top actions
  // excepted) and releases its locks.
  Status Abort(Transaction* txn);

  // Acquires a transaction-duration logical row lock and tracks it for
  // release at commit/abort. Re-acquisitions are tracked once per call and
  // released as many times.
  Status LockLogical(Transaction* txn, RowId row, LockMode mode);

  // Crash simulation: forgets in-flight transactions and advances the id
  // counter past every id seen in the recovered log.
  void ResetAfterCrash(TxnId next_id);

  LockManager* lock_manager() { return locks_; }
  size_t NumActive() const;

  // Snapshot of the active transactions (for fuzzy checkpoints): their
  // ids, last LSNs and the oldest begin LSN (the log truncation horizon;
  // kInvalidLsn when no transaction is active).
  void SnapshotActive(std::vector<CheckpointTxn>* out,
                      Lsn* oldest_begin) const;

  // Diagnostic dump of the active-transaction table as a JSON value
  // ({"active":[{"txn":..,"last_lsn":..},...]}), for the flight recorder.
  std::string DumpActiveTxnsJson() const;

  TxnId next_txn_id() const {
    return next_txn_id_.load(std::memory_order_relaxed);
  }

 private:
  void ReleaseTrackedLocks(Transaction* txn);

  LogManager* const log_;
  LockManager* const locks_;
  BufferManager* const bm_;
  SpaceManager* const space_;
  LogicalUndoHook* hook_ = nullptr;

  std::atomic<TxnId> next_txn_id_{1};
  mutable Mutex mu_;
  // Active transactions. The Transaction object is owned by the caller and
  // must outlive its activity (guaranteed by Commit/Abort removing it).
  std::map<TxnId, Transaction*> active_ OIR_GUARDED_BY(mu_);
};

}  // namespace oir

#endif  // OIR_TXN_TRANSACTION_MANAGER_H_
