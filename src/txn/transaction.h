#ifndef OIR_TXN_TRANSACTION_H_
#define OIR_TXN_TRANSACTION_H_

// Transactions and nested top actions (Section 2). A transaction carries
// its prevLSN chain (TxnContext) and the set of transaction-duration locks
// (logical row locks). Address locks taken by split/shrink/rebuild top
// actions are tracked by the NTA scopes inside the index manager, not here,
// because they are released when the top action completes rather than at
// transaction end.

#include <cstdint>
#include <vector>

#include "sync/lock_manager.h"
#include "util/types.h"
#include "wal/log_manager.h"

namespace oir {

enum class TxnState : uint8_t {
  kActive = 0,
  kCommitted = 1,
  kAborted = 2,
};

class Transaction {
 public:
  explicit Transaction(TxnId id) { ctx_.txn_id = id; }

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return ctx_.txn_id; }
  TxnContext* ctx() { return &ctx_; }
  Lsn last_lsn() const { return ctx_.last_lsn; }

  // LSN of the transaction's begin record: the log may not be truncated
  // past the oldest active transaction's begin (its undo chain must stay
  // readable). kInvalidLsn until the first record is logged (lazy begin).
  Lsn begin_lsn() const { return ctx_.begin_lsn; }

  TxnState state() const { return state_; }
  void set_state(TxnState s) { state_ = s; }

  // Registers a transaction-duration lock for release at commit/abort.
  void TrackLock(LockKey key) { txn_locks_.push_back(key); }
  const std::vector<LockKey>& tracked_locks() const { return txn_locks_; }
  void clear_tracked_locks() { txn_locks_.clear(); }

 private:
  TxnContext ctx_;
  TxnState state_ = TxnState::kActive;
  std::vector<LockKey> txn_locks_;
};

}  // namespace oir

#endif  // OIR_TXN_TRANSACTION_H_
