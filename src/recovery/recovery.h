#ifndef OIR_RECOVERY_RECOVERY_H_
#define OIR_RECOVERY_RECOVERY_H_

// Restart recovery: analysis + redo + undo over the whole log.
//
// Phases (driven by the database facade):
//   1. AnalyzeAndRedo — single forward scan. Rebuilds the space manager's
//      page-state map from alloc/dealloc/free records, repeats history for
//      page updates (pageLSN test), and collects loser transactions (those
//      with no commit/end record).
//   2. UndoLosers — first clears leftover SPLIT/SHRINK/OLDPGOFSPLIT bits
//      (they are unlogged markers whose backing address locks died with the
//      crash; left in place they would livelock undo-time traversals), then
//      undoes the losers' records in descending pre-crash LSN order across
//      transactions, writing CLRs. The strict ordering is what makes the
//      bit-clearing safe: an in-flight SMO's physical, position-based undo
//      runs before any older logical undo can traverse its pages. Completed
//      nested top actions are skipped via their dummy CLRs (a rebuild/
//      split/shrink top action that finished before the crash survives even
//      if its transaction is a loser). Leaf-level row undo is logical,
//      through the B+-tree hook, which is why this phase runs after the
//      tree is opened on the redone state.
//   3. Finish — frees pages still in the deallocated state (Section 4.1.3:
//      the deallocated→free transition is unlogged, so recovery completes
//      it) and re-sweeps for stray bits.

#include <cstdint>
#include <map>
#include <string>

#include "recovery/log_apply.h"

namespace oir {

struct RecoveryStats {
  uint64_t records_scanned = 0;
  uint64_t records_redone = 0;
  uint64_t loser_txns = 0;
  uint64_t records_undone = 0;
  uint64_t pages_freed = 0;
  uint64_t bits_cleared = 0;

  std::string ToString() const;
  // JSON object with every field (stats-export path).
  std::string ToJson() const;
};

// Resume point of a rebuild that was in flight at the crash, reconstructed
// by AnalyzeAndRedo from the checkpoint's embedded progress plus every
// later kRebuildProgress record. `pending` is false when no rebuild was
// running or the last durable record says it completed.
struct RebuildResumeState {
  bool pending = false;
  RebuildProgressInfo progress;
  Lsn lsn = kInvalidLsn;  // LSN of the governing progress record
                          // (kInvalidLsn: seeded from the checkpoint only)
};

class RecoveryManager {
 public:
  explicit RecoveryManager(ApplyContext ctx) : ctx_(ctx) {}

  Status AnalyzeAndRedo(RecoveryStats* stats);
  Status UndoLosers(LogicalUndoHook* hook, RecoveryStats* stats);
  Status Finish(RecoveryStats* stats);

  // Loser transactions and their last LSNs (after AnalyzeAndRedo).
  const std::map<TxnId, Lsn>& losers() const { return losers_; }

  // Largest transaction id seen in the log (after AnalyzeAndRedo).
  TxnId max_txn_id() const { return max_txn_id_; }

  // Rebuild resume point (after AnalyzeAndRedo). The database facade hands
  // it to Db::ResumeRebuild so a crashed rebuild restarts from its last
  // durable cursor instead of from zero.
  const RebuildResumeState& rebuild_resume() const { return rebuild_resume_; }

 private:
  // Clears SPLIT/SHRINK/OLDPGOFSPLIT bits on every allocated page.
  Status ClearSmoBits(RecoveryStats* stats);

  ApplyContext ctx_;
  std::map<TxnId, Lsn> losers_;
  TxnId max_txn_id_ = 0;
  RebuildResumeState rebuild_resume_;
};

}  // namespace oir

#endif  // OIR_RECOVERY_RECOVERY_H_
