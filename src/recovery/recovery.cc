#include "recovery/recovery.h"

#include <cstdio>

#include "storage/slotted_page.h"
#include "util/logging.h"

namespace oir {

std::string RecoveryStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "scanned=%llu redone=%llu losers=%llu undone=%llu freed=%llu "
                "bits_cleared=%llu",
                (unsigned long long)records_scanned,
                (unsigned long long)records_redone,
                (unsigned long long)loser_txns,
                (unsigned long long)records_undone,
                (unsigned long long)pages_freed,
                (unsigned long long)bits_cleared);
  return std::string(buf);
}

std::string RecoveryStats::ToJson() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"records_scanned\":%llu,\"records_redone\":%llu,"
                "\"loser_txns\":%llu,\"records_undone\":%llu,"
                "\"pages_freed\":%llu,\"bits_cleared\":%llu}",
                (unsigned long long)records_scanned,
                (unsigned long long)records_redone,
                (unsigned long long)loser_txns,
                (unsigned long long)records_undone,
                (unsigned long long)pages_freed,
                (unsigned long long)bits_cleared);
  return std::string(buf);
}

Status RecoveryManager::AnalyzeAndRedo(RecoveryStats* stats) {
  ctx_.space->ResetForRecovery();
  losers_.clear();
  rebuild_resume_ = RebuildResumeState();

  // Start from the last durable checkpoint when one exists: its payload
  // seeds the page-state map and the loser table, and the scan begins at
  // the checkpoint's captured scan-start LSN instead of the log head.
  Lsn scan_from = ctx_.log->head_lsn();
  Lsn master = ctx_.log->master_checkpoint();
  if (master != kInvalidLsn) {
    LogRecord ckpt;
    OIR_RETURN_IF_ERROR(ctx_.log->ReadRecord(master, &ckpt));
    if (ckpt.type != LogType::kCheckpoint) {
      return Status::Corruption("master record is not a checkpoint");
    }
    Disk* disk = ctx_.bm->disk();
    if (ckpt.ckpt_end_page > 0 && ckpt.ckpt_end_page - 1 >= disk->NumPages()) {
      OIR_RETURN_IF_ERROR(disk->Extend(ckpt.ckpt_end_page));
    }
    if (ckpt.ckpt_end_page > kFirstDataPageId) {
      ctx_.space->SetStateForRecovery(ckpt.ckpt_end_page - 1,
                                      PageState::kFree);
    }
    for (PageId p : ckpt.ckpt_allocated) {
      ctx_.space->SetStateForRecovery(p, PageState::kAllocated);
    }
    for (PageId p : ckpt.ckpt_deallocated) {
      ctx_.space->SetStateForRecovery(p, PageState::kDeallocated);
    }
    for (const CheckpointTxn& t : ckpt.ckpt_txns) {
      losers_[t.txn_id] = t.last_lsn;
      if (t.txn_id > max_txn_id_) max_txn_id_ = t.txn_id;
    }
    if (ckpt.ckpt_next_txn_id != kInvalidTxnId &&
        ckpt.ckpt_next_txn_id - 1 > max_txn_id_) {
      max_txn_id_ = ckpt.ckpt_next_txn_id - 1;
    }
    scan_from = ckpt.old_page_lsn;  // the checkpoint's scan-start LSN
    if (scan_from < ctx_.log->head_lsn()) scan_from = ctx_.log->head_lsn();
    // A checkpoint taken mid-rebuild carries the latest durable progress;
    // later kRebuildProgress records in the scan supersede it.
    if (ckpt.rebuild_progress.active) {
      rebuild_resume_.pending = true;
      rebuild_resume_.progress = ckpt.rebuild_progress;
      rebuild_resume_.lsn = kInvalidLsn;
    }
  }

  for (LogManager::Iterator it = ctx_.log->Scan(scan_from);
       it.Valid(); it.Next()) {
    const LogRecord& rec = it.record();
    ++stats->records_scanned;
    if (rec.txn_id != kInvalidTxnId) {
      if (rec.txn_id > max_txn_id_) max_txn_id_ = rec.txn_id;
      if (rec.type == LogType::kEndTxn) {
        losers_.erase(rec.txn_id);
      } else {
        losers_[rec.txn_id] = rec.lsn;
      }
    }
    if (rec.type == LogType::kRebuildProgress) {
      // A progress record is written only after the work it describes
      // committed, so the newest durable one is always a safe resume
      // point. done/!active clears the pending state (the rebuild ran to
      // completion before the crash).
      rebuild_resume_.pending =
          rec.rebuild_progress.active && !rec.rebuild_progress.done;
      rebuild_resume_.progress = rec.rebuild_progress;
      rebuild_resume_.lsn = rec.lsn;
    }
    if (rec.IsPageUpdate() || rec.type == LogType::kAlloc ||
        rec.type == LogType::kDealloc || rec.type == LogType::kFreePage) {
      OIR_RETURN_IF_ERROR(RedoRecord(&ctx_, rec));
      ++stats->records_redone;
    }
  }
  // Transactions whose last record is a commit are winners even without an
  // end record (the end record may not have been written yet).
  for (auto it = losers_.begin(); it != losers_.end();) {
    LogRecord rec;
    Status s = ctx_.log->ReadRecord(it->second, &rec);
    if (s.ok() && rec.type == LogType::kCommitTxn) {
      it = losers_.erase(it);
    } else {
      ++it;
    }
  }
  stats->loser_txns = losers_.size();
  return Status::OK();
}

Status RecoveryManager::UndoLosers(LogicalUndoHook* hook,
                                   RecoveryStats* stats) {
  // Clear SMO bits left on redone page images before any undo traversal
  // runs. The bits are unlogged in-memory markers backed by address locks;
  // after a crash no owner exists, so nothing would ever clear them during
  // undo, and a logical undo whose traversal honored one would restart
  // forever. Dropping them up front is safe because of the undo order
  // below.
  OIR_RETURN_IF_ERROR(ClearSmoBits(stats));

  // Undo the losers' records in one pass in descending pre-crash LSN order
  // (textbook ARIES interleaving), not one transaction at a time. The order
  // is what replaces the bits' protection: an incomplete nested top action
  // is physically undone by slot position, so its pages must not be
  // reshaped by another loser's logical undo first. Descending order
  // guarantees every record younger than a given LSN — in particular every
  // step of any SMO in flight at the crash — is undone before an older
  // record's logical undo traverses the tree, so each physical undo sees
  // exactly the page state its forward step produced.
  struct Cursor {
    TxnContext txc;
    Lsn next = kInvalidLsn;  // next pre-crash record to examine
  };
  std::vector<Cursor> cursors;
  cursors.reserve(losers_.size());
  for (auto& [txn_id, last_lsn] : losers_) {
    Cursor c;
    c.txc.txn_id = txn_id;
    c.txc.last_lsn = last_lsn;
    c.next = last_lsn;
    cursors.push_back(std::move(c));
  }
  while (!cursors.empty()) {
    size_t best = 0;
    for (size_t i = 1; i < cursors.size(); ++i) {
      if (cursors[i].next > cursors[best].next) best = i;
    }
    Cursor& c = cursors[best];
    bool done = (c.next == kInvalidLsn);
    if (!done) {
      LogRecord rec;
      OIR_RETURN_IF_ERROR(ctx_.log->ReadRecord(c.next, &rec));
      if (rec.is_clr || rec.type == LogType::kNtaEnd) {
        c.next = rec.undo_next;
      } else if (rec.type == LogType::kBeginTxn) {
        done = true;
      } else if (rec.type == LogType::kCommitTxn ||
                 rec.type == LogType::kAbortTxn ||
                 rec.type == LogType::kEndTxn) {
        c.next = rec.prev_lsn;
      } else {
        OIR_RETURN_IF_ERROR(UndoRecord(&ctx_, &c.txc, rec, hook));
        ++stats->records_undone;
        c.next = rec.prev_lsn;
      }
      done = done || (c.next == kInvalidLsn);
    }
    if (done) {
      LogRecord end;
      end.type = LogType::kEndTxn;
      ctx_.log->Append(&end, &c.txc);
      cursors.erase(cursors.begin() + best);
    }
  }
  return Status::OK();
}

Status RecoveryManager::ClearSmoBits(RecoveryStats* stats) {
  for (PageId p : ctx_.space->PagesInState(PageState::kAllocated)) {
    PageRef ref;
    OIR_RETURN_IF_ERROR(ctx_.bm->Fetch(p, &ref));
    ref.latch().LockX();
    PageHeader* h = ref.header();
    if ((h->flags & (kFlagSplit | kFlagShrink | kFlagOldPgOfSplit)) != 0) {
      h->flags = 0;
      ++stats->bits_cleared;
      ref.latch().UnlockX();
      ref.MarkDirty();
    } else {
      ref.latch().UnlockX();
    }
  }
  return Status::OK();
}

Status RecoveryManager::Finish(RecoveryStats* stats) {
  std::vector<PageId> deallocated =
      ctx_.space->PagesInState(PageState::kDeallocated);
  for (PageId p : deallocated) {
    ctx_.bm->Discard(p);
  }
  std::vector<PageId> freed = ctx_.space->FreeAllDeallocated();
  stats->pages_freed += freed.size();

  // Sweep for concurrency-control bits once more (UndoLosers already
  // cleared the crash leftovers): undo-time SMOs complete inline and clear
  // their own bits, so this normally finds nothing, but it is cheap and
  // keeps the invariant local.
  return ClearSmoBits(stats);
}

}  // namespace oir
