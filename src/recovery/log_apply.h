#ifndef OIR_RECOVERY_LOG_APPLY_H_
#define OIR_RECOVERY_LOG_APPLY_H_

// Redo and undo application of individual log records, shared by runtime
// rollback (transaction abort, failed top actions) and restart recovery.
//
// Undo of leaf-level kInsert/kDelete records is *logical*: by the time a
// transaction rolls back, the key may have migrated to a different leaf via
// splits, shrinks or an online rebuild, so position-based (physical) undo
// would corrupt the tree. The LogicalUndoHook — implemented by the B+-tree —
// re-traverses and compensates through the index manager, ARIES/IM style.
// All records written inside nested top actions are undone physically: an
// incomplete NTA still holds its address locks (runtime) or has no
// concurrent activity (restart), so positions are stable.

#include "space/space_manager.h"
#include "storage/buffer_manager.h"
#include "util/status.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace oir {

struct ApplyContext {
  BufferManager* bm = nullptr;
  SpaceManager* space = nullptr;
  LogManager* log = nullptr;
};

// Implemented by the B+-tree for logical compensation of leaf operations.
class LogicalUndoHook {
 public:
  virtual ~LogicalUndoHook() = default;
  // Compensates a leaf insert: removes rec.row from wherever it now lives.
  // Writes the CLR (chained to ctx) itself.
  virtual Status UndoLeafInsert(TxnContext* ctx, const LogRecord& rec) = 0;
  // Compensates a leaf delete: re-inserts rec.row.
  virtual Status UndoLeafDelete(TxnContext* ctx, const LogRecord& rec) = 0;
};

// Redo during restart recovery: applies `rec` if the affected page's
// pageLSN is older than rec.lsn. Also replays page state transitions into
// the space manager.
Status RedoRecord(ApplyContext* ctx, const LogRecord& rec);

// Undoes a single record, writing the compensation log record (CLR) chained
// into `txn`. For leaf-level kInsert/kDelete, delegates to `hook` when
// non-null; otherwise performs physical undo.
Status UndoRecord(ApplyContext* ctx, TxnContext* txn, const LogRecord& rec,
                  LogicalUndoHook* hook);

// Walks the transaction's prevLSN chain from txn->last_lsn backwards,
// undoing every undoable record until (and excluding) `until_lsn`
// (kInvalidLsn = roll back everything). Completed nested top actions are
// skipped via their NtaEnd dummy CLR. On return, txn->last_lsn points at
// the last CLR written.
Status RollbackTo(ApplyContext* ctx, TxnContext* txn, Lsn until_lsn,
                  LogicalUndoHook* hook);

}  // namespace oir

#endif  // OIR_RECOVERY_LOG_APPLY_H_
