#include "recovery/log_apply.h"

#include <algorithm>
#include <map>
#include <set>

#include <cstdio>
#include <cstdlib>

#include "storage/slotted_page.h"
#include "util/coding.h"
#include "util/logging.h"

namespace oir {

namespace {

// Fetches rec.page_id, X-latches it, runs `fn` on the slotted view, stamps
// the page LSN and marks it dirty. `fn` must not fail.
template <typename Fn>
Status WithPageX(ApplyContext* ctx, PageId page, Lsn stamp_lsn, Fn fn) {
  PageRef ref;
  OIR_RETURN_IF_ERROR(ctx->bm->Fetch(page, &ref));
  ref.latch().LockX();
  SlottedPage sp(ref.data(), ctx->bm->page_size());
  fn(&sp);
  sp.header()->page_lsn = stamp_lsn;
  ref.latch().UnlockX();
  ref.MarkDirty();
  return Status::OK();
}

Lsn PageLsnOf(ApplyContext* ctx, PageId page) {
  PageRef ref;
  Status s = ctx->bm->Fetch(page, &ref);
  OIR_CHECK(s.ok());
  ref.latch().LockS();
  Lsn lsn = ref.header()->page_lsn;
  ref.latch().UnlockS();
  return lsn;
}

// Applies the row movements of a kKeyCopy record onto its target pages.
// Targets whose pageLSN is already >= rec.lsn are skipped (redo test is
// per target page since one record covers many pages).
Status RedoKeyCopy(ApplyContext* ctx, const LogRecord& rec) {
  // Decide per-target whether redo is needed.
  std::map<PageId, bool> need;
  for (const KeyCopyEntry& e : rec.copies) {
    if (need.count(e.tgt_page)) continue;
    need[e.tgt_page] = PageLsnOf(ctx, e.tgt_page) < rec.lsn;
  }
  // Apply entries in record order (ascending target positions per target).
  for (const KeyCopyEntry& e : rec.copies) {
    if (!need[e.tgt_page]) continue;
    PageRef src;
    OIR_RETURN_IF_ERROR(ctx->bm->Fetch(e.src_page, &src));
    src.latch().LockS();
    SlottedPage sp(src.data(), ctx->bm->page_size());
    if (src.header()->page_lsn != e.src_ts) {
      src.latch().UnlockS();
      return Status::Corruption(
          "keycopy redo: source page timestamp mismatch (flush-before-free "
          "ordering violated?)");
    }
    std::vector<std::string> rows;
    rows.reserve(e.src_last - e.src_first + 1);
    for (SlotId i = e.src_first; i <= e.src_last; ++i) {
      rows.push_back(sp.Get(i).ToString());
    }
    src.latch().UnlockS();
    OIR_RETURN_IF_ERROR(WithPageX(
        ctx, e.tgt_page, /*stamp (temporary)=*/rec.lsn, [&](SlottedPage* tp) {
          for (size_t j = 0; j < rows.size(); ++j) {
            OIR_CHECK(tp->InsertAt(static_cast<SlotId>(e.tgt_first + j),
                                   Slice(rows[j])));
          }
        }));
    // Keep `need` true so later entries for the same target still apply:
    // the stamp above already set page_lsn = rec.lsn, but the decision map
    // is what we consult.
  }
  return Status::OK();
}

// Removes the copied rows from target pages (redo of kKeyCopyUndo CLRs and
// runtime undo of kKeyCopy share this application).
Status ApplyKeyCopyRemoval(ApplyContext* ctx, const LogRecord& rec,
                           bool check_lsn) {
  std::map<PageId, bool> need;
  for (const KeyCopyEntry& e : rec.copies) {
    if (need.count(e.tgt_page)) continue;
    need[e.tgt_page] = !check_lsn || PageLsnOf(ctx, e.tgt_page) < rec.lsn;
  }
  // Delete in reverse record order so higher positions go first and earlier
  // entries' positions stay valid.
  for (auto it = rec.copies.rbegin(); it != rec.copies.rend(); ++it) {
    const KeyCopyEntry& e = *it;
    if (!need[e.tgt_page]) continue;
    const uint32_t count = e.src_last - e.src_first + 1;
    OIR_RETURN_IF_ERROR(
        WithPageX(ctx, e.tgt_page, rec.lsn, [&](SlottedPage* tp) {
          for (uint32_t j = 0; j < count; ++j) {
            tp->DeleteAt(e.tgt_first);
          }
        }));
  }
  return Status::OK();
}

}  // namespace

Status RedoRecord(ApplyContext* ctx, const LogRecord& rec) {
  switch (rec.type) {
    case LogType::kBeginTxn:
    case LogType::kCommitTxn:
    case LogType::kAbortTxn:
    case LogType::kEndTxn:
    case LogType::kNtaEnd:
    case LogType::kCheckpoint:
    case LogType::kRebuildProgress:
      // Bookkeeping records: never applied to a page. Checkpoints seed the
      // analysis pass and rebuild-progress records arm the resume cursor —
      // both are consumed by RecoveryManager, not here.
      return Status::OK();

    case LogType::kAlloc: {
      Disk* disk = ctx->bm->disk();
      for (PageId p : rec.pages) {
        // Make sure the device covers the page, then record the state.
        if (p >= disk->NumPages()) {
          OIR_RETURN_IF_ERROR(disk->Extend(p + 1));
        }
        ctx->space->SetStateForRecovery(p, PageState::kAllocated);
      }
      return Status::OK();
    }
    case LogType::kDealloc:
      for (PageId p : rec.pages) {
        ctx->space->SetStateForRecovery(p, PageState::kDeallocated);
      }
      return Status::OK();
    case LogType::kFreePage:
      for (PageId p : rec.pages) {
        ctx->bm->Discard(p);
        ctx->space->SetStateForRecovery(p, PageState::kFree);
      }
      return Status::OK();

    case LogType::kFormatPage: {
      if (PageLsnOf(ctx, rec.page_id) >= rec.lsn) return Status::OK();
      return WithPageX(ctx, rec.page_id, rec.lsn, [&](SlottedPage* sp) {
        sp->Init(rec.page_id, rec.level);
        sp->header()->prev_page = rec.prev_page;
        sp->header()->next_page = rec.next_page;
      });
    }
    case LogType::kInsert: {
      if (PageLsnOf(ctx, rec.page_id) >= rec.lsn) return Status::OK();
      return WithPageX(ctx, rec.page_id, rec.lsn, [&](SlottedPage* sp) {
        OIR_CHECK(sp->InsertAt(rec.pos, Slice(rec.row)));
      });
    }
    case LogType::kDelete: {
      if (PageLsnOf(ctx, rec.page_id) >= rec.lsn) return Status::OK();
      return WithPageX(ctx, rec.page_id, rec.lsn,
                       [&](SlottedPage* sp) { sp->DeleteAt(rec.pos); });
    }
    case LogType::kBatchInsert: {
      if (PageLsnOf(ctx, rec.page_id) >= rec.lsn) return Status::OK();
      return WithPageX(ctx, rec.page_id, rec.lsn, [&](SlottedPage* sp) {
        for (size_t i = 0; i < rec.rows.size(); ++i) {
          OIR_CHECK(sp->InsertAt(static_cast<SlotId>(rec.pos + i),
                                 Slice(rec.rows[i])));
        }
      });
    }
    case LogType::kBatchDelete: {
      if (PageLsnOf(ctx, rec.page_id) >= rec.lsn) return Status::OK();
      return WithPageX(ctx, rec.page_id, rec.lsn, [&](SlottedPage* sp) {
        for (size_t i = 0; i < rec.rows.size(); ++i) {
          sp->DeleteAt(rec.pos);
        }
      });
    }
    case LogType::kSetPrevLink: {
      if (PageLsnOf(ctx, rec.page_id) >= rec.lsn) return Status::OK();
      return WithPageX(ctx, rec.page_id, rec.lsn, [&](SlottedPage* sp) {
        sp->header()->prev_page = rec.link_new;
      });
    }
    case LogType::kSetNextLink: {
      if (PageLsnOf(ctx, rec.page_id) >= rec.lsn) return Status::OK();
      return WithPageX(ctx, rec.page_id, rec.lsn, [&](SlottedPage* sp) {
        sp->header()->next_page = rec.link_new;
      });
    }
    case LogType::kMetaRoot: {
      if (PageLsnOf(ctx, rec.page_id) >= rec.lsn) return Status::OK();
      return WithPageX(ctx, rec.page_id, rec.lsn, [&](SlottedPage* sp) {
        EncodeFixed32(sp->data() + kMetaRootOffset, rec.link_new);
      });
    }
    case LogType::kKeyCopy:
      return RedoKeyCopy(ctx, rec);
    case LogType::kKeyCopyUndo:
      return ApplyKeyCopyRemoval(ctx, rec, /*check_lsn=*/true);

    case LogType::kInvalid:
      break;
  }
  return Status::Corruption("redo of invalid log record type");
}

Status UndoRecord(ApplyContext* ctx, TxnContext* txn, const LogRecord& rec,
                  LogicalUndoHook* hook) {
  {
    static const bool trace = getenv("OIR_TRACE_LINKS") != nullptr;
    if (trace) {
      std::fprintf(stderr, "[txn %llu] undo %s page=%u link %u<-%u\n",
                   (unsigned long long)txn->txn_id, LogTypeName(rec.type),
                   rec.page_id, rec.link_old, rec.link_new);
    }
  }
  OIR_CHECK(!rec.is_clr);
  switch (rec.type) {
    case LogType::kInsert: {
      if (rec.level == kLeafLevel && hook != nullptr) {
        return hook->UndoLeafInsert(txn, rec);
      }
      LogRecord clr;
      clr.type = LogType::kDelete;
      clr.is_clr = true;
      clr.undo_next = rec.prev_lsn;
      clr.page_id = rec.page_id;
      clr.pos = rec.pos;
      clr.row = rec.row;
      clr.level = rec.level;
      Lsn lsn = ctx->log->Append(&clr, txn);
      return WithPageX(ctx, rec.page_id, lsn, [&](SlottedPage* sp) {
        OIR_DCHECK(sp->Get(rec.pos) == Slice(rec.row));
        sp->DeleteAt(rec.pos);
      });
    }
    case LogType::kDelete: {
      if (rec.level == kLeafLevel && hook != nullptr) {
        return hook->UndoLeafDelete(txn, rec);
      }
      LogRecord clr;
      clr.type = LogType::kInsert;
      clr.is_clr = true;
      clr.undo_next = rec.prev_lsn;
      clr.page_id = rec.page_id;
      clr.pos = rec.pos;
      clr.row = rec.row;
      clr.level = rec.level;
      Lsn lsn = ctx->log->Append(&clr, txn);
      return WithPageX(ctx, rec.page_id, lsn, [&](SlottedPage* sp) {
        OIR_CHECK(sp->InsertAt(rec.pos, Slice(rec.row)));
      });
    }
    case LogType::kBatchInsert: {
      LogRecord clr;
      clr.type = LogType::kBatchDelete;
      clr.is_clr = true;
      clr.undo_next = rec.prev_lsn;
      clr.page_id = rec.page_id;
      clr.pos = rec.pos;
      clr.rows = rec.rows;
      clr.level = rec.level;
      Lsn lsn = ctx->log->Append(&clr, txn);
      return WithPageX(ctx, rec.page_id, lsn, [&](SlottedPage* sp) {
        for (size_t i = 0; i < rec.rows.size(); ++i) sp->DeleteAt(rec.pos);
      });
    }
    case LogType::kBatchDelete: {
      LogRecord clr;
      clr.type = LogType::kBatchInsert;
      clr.is_clr = true;
      clr.undo_next = rec.prev_lsn;
      clr.page_id = rec.page_id;
      clr.pos = rec.pos;
      clr.rows = rec.rows;
      clr.level = rec.level;
      Lsn lsn = ctx->log->Append(&clr, txn);
      return WithPageX(ctx, rec.page_id, lsn, [&](SlottedPage* sp) {
        for (size_t i = 0; i < rec.rows.size(); ++i) {
          OIR_CHECK(sp->InsertAt(static_cast<SlotId>(rec.pos + i),
                                 Slice(rec.rows[i])));
        }
      });
    }
    case LogType::kKeyCopy: {
      LogRecord clr;
      clr.type = LogType::kKeyCopyUndo;
      clr.is_clr = true;
      clr.undo_next = rec.prev_lsn;
      clr.copies = rec.copies;
      ctx->log->Append(&clr, txn);
      return ApplyKeyCopyRemoval(ctx, clr, /*check_lsn=*/false);
    }
    case LogType::kFormatPage:
      // Nothing to compensate: the undo of the corresponding kAlloc returns
      // the page to the free state and its content becomes meaningless.
      return Status::OK();
    case LogType::kSetPrevLink:
    case LogType::kSetNextLink: {
      LogRecord clr;
      clr.type = rec.type;
      clr.is_clr = true;
      clr.undo_next = rec.prev_lsn;
      clr.page_id = rec.page_id;
      clr.link_old = rec.link_new;
      clr.link_new = rec.link_old;
      Lsn lsn = ctx->log->Append(&clr, txn);
      return WithPageX(ctx, rec.page_id, lsn, [&](SlottedPage* sp) {
        if (rec.type == LogType::kSetPrevLink) {
          sp->header()->prev_page = rec.link_old;
        } else {
          sp->header()->next_page = rec.link_old;
        }
      });
    }
    case LogType::kMetaRoot: {
      LogRecord clr;
      clr.type = LogType::kMetaRoot;
      clr.is_clr = true;
      clr.undo_next = rec.prev_lsn;
      clr.page_id = rec.page_id;
      clr.link_old = rec.link_new;
      clr.link_new = rec.link_old;
      Lsn lsn = ctx->log->Append(&clr, txn);
      return WithPageX(ctx, rec.page_id, lsn, [&](SlottedPage* sp) {
        EncodeFixed32(sp->data() + kMetaRootOffset, rec.link_old);
      });
    }
    case LogType::kAlloc: {
      LogRecord clr;
      clr.type = LogType::kFreePage;
      clr.is_clr = true;
      clr.undo_next = rec.prev_lsn;
      clr.pages = rec.pages;
      ctx->log->Append(&clr, txn);
      for (PageId p : rec.pages) {
        ctx->bm->Discard(p);  // before the state flips to free
        ctx->space->UndoAlloc(p);
      }
      return Status::OK();
    }
    case LogType::kDealloc: {
      LogRecord clr;
      clr.type = LogType::kAlloc;
      clr.is_clr = true;
      clr.undo_next = rec.prev_lsn;
      clr.pages = rec.pages;
      ctx->log->Append(&clr, txn);
      for (PageId p : rec.pages) {
        ctx->space->UndoDealloc(p);
      }
      return Status::OK();
    }
    case LogType::kBeginTxn:
    case LogType::kCommitTxn:
    case LogType::kAbortTxn:
    case LogType::kEndTxn:
    case LogType::kNtaEnd:
    case LogType::kFreePage:
    case LogType::kKeyCopyUndo:
    case LogType::kCheckpoint:
    case LogType::kRebuildProgress:
    case LogType::kInvalid:
      break;
  }
  return Status::Corruption("undo of non-undoable log record type");
}

Status RollbackTo(ApplyContext* ctx, TxnContext* txn, Lsn until_lsn,
                  LogicalUndoHook* hook) {
  Lsn cur = txn->last_lsn;
  while (cur != kInvalidLsn && cur != until_lsn) {
    LogRecord rec;
    OIR_RETURN_IF_ERROR(ctx->log->ReadRecord(cur, &rec));
    if (rec.is_clr || rec.type == LogType::kNtaEnd) {
      cur = rec.undo_next;
      continue;
    }
    if (rec.type == LogType::kBeginTxn) break;
    if (rec.type == LogType::kCommitTxn || rec.type == LogType::kAbortTxn ||
        rec.type == LogType::kEndTxn) {
      cur = rec.prev_lsn;
      continue;
    }
    OIR_RETURN_IF_ERROR(UndoRecord(ctx, txn, rec, hook));
    cur = rec.prev_lsn;
  }
  return Status::OK();
}

}  // namespace oir
