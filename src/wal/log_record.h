#ifndef OIR_WAL_LOG_RECORD_H_
#define OIR_WAL_LOG_RECORD_H_

// Log record definitions. The record set mirrors the paper:
//
//  * kInsert / kDelete      — single-row physiological records used by the
//                             normal insert/delete path. They carry the row
//                             image plus ~40-55 bytes of framing (txn id,
//                             prevLSN, page id, old page timestamp,
//                             position), matching the paper's point that
//                             per-record overhead is large (Section 4.3).
//  * kBatchInsert / kBatchDelete — contiguous multi-row records emitted by
//                             the propagation phase on non-leaf pages; the
//                             framing is amortized over all rows.
//  * kKeyCopy               — a single record for all key copying of a
//                             multipage rebuild top action (Section 4.1.2):
//                             entries of [source page, target page,
//                             positions]. The key bytes are NOT logged; redo
//                             re-reads the source page, which is safe
//                             because new pages are forced to disk before
//                             old pages are freed for reallocation
//                             (Section 3).
//  * kAlloc / kDealloc      — page state transitions (Section 4.1.3). The
//                             deallocated→free transition is not logged.
//  * kFormatPage            — formatting of a freshly allocated page.
//  * kSetPrevLink / kSetNextLink — leaf-chain maintenance
//                             ("changeprevlink", Section 4.1.2).
//  * kMetaRoot              — root page-id change on the index meta page.
//  * kNtaEnd                — dummy CLR completing a nested top action; its
//                             undo_next points at the LSN preceding the top
//                             action, so rollback skips the whole action.
//  * transaction control    — begin / commit / abort / end.
//
// Any redoable record can additionally be a CLR (is_clr = true,
// undo_next set): CLRs are redo-only compensation records written during
// rollback, per ARIES.

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"
#include "util/types.h"

namespace oir {

enum class LogType : uint8_t {
  kInvalid = 0,
  kBeginTxn = 1,
  kCommitTxn = 2,
  kAbortTxn = 3,
  kEndTxn = 4,
  kInsert = 5,
  kDelete = 6,
  kBatchInsert = 7,
  kBatchDelete = 8,
  kKeyCopy = 9,
  kAlloc = 10,   // page-state records carry a page LIST (see `pages`)
  kDealloc = 11,
  kFormatPage = 12,
  kSetPrevLink = 13,
  kSetNextLink = 14,
  kMetaRoot = 15,
  kNtaEnd = 16,
  // CLR-only types.
  kFreePage = 17,     // compensation of kAlloc: page returns to free state
  kKeyCopyUndo = 18,  // compensation of kKeyCopy: copied rows are removed
                      // from the target pages (one atomic CLR for the whole
                      // multi-page record; redo is per-target-page)
  // A fuzzy checkpoint: snapshot of the space manager's page states and
  // the active-transaction table. Restart recovery begins its scan here
  // instead of at the log head.
  kCheckpoint = 19,
  // Rebuild progress record: the online rebuilder's durable copy cursor
  // (largest composite key whose leaf has been rebuilt by a COMMITTED
  // rebuild transaction), appended outside any transaction chain after
  // each rebuild-transaction commit. Recovery re-arms a crashed rebuild
  // from the last durable one instead of restarting the copy from zero.
  // Pure bookkeeping: never redone against a page, never undone.
  kRebuildProgress = 20,
};

const char* LogTypeName(LogType t);

// One entry of a keycopy record: rows [src_first, src_last] of the source
// page were copied to the target page starting at slot tgt_first. The
// source page's timestamp (pageLSN) at copy time is recorded so recovery
// can verify it is reading the same image the copy read.
// Active-transaction entry inside a checkpoint record.
struct CheckpointTxn {
  TxnId txn_id = kInvalidTxnId;
  Lsn last_lsn = kInvalidLsn;
};

// Payload of a kRebuildProgress record, also embedded in kCheckpoint so a
// checkpoint taken mid-rebuild carries the latest durable cursor even after
// the log prefix holding the progress records is truncated.
struct RebuildProgressInfo {
  bool active = false;  // a rebuild was in flight when this was written
  bool done = false;    // final record: the rebuild ran to completion
  // Copy cursor: largest composite key copied by a committed rebuild
  // transaction. Meaningful only when has_cursor — an active rebuild that
  // has not committed a transaction yet resumes from the beginning.
  bool has_cursor = false;
  std::string cursor;
  // Carried counters so a resumed rebuild's progress tracker continues
  // from where the crashed run left off instead of re-starting at zero.
  uint64_t leaves_rebuilt = 0;
  uint64_t top_actions = 0;
  uint64_t transactions = 0;
  // Side-file high-water mark: highest page id the rebuild has allocated
  // for new leaves so far (diagnostics; the pages themselves are covered
  // by ordinary alloc/format logging).
  PageId new_page_hwm = kInvalidPageId;
};

struct KeyCopyEntry {
  PageId src_page = kInvalidPageId;
  PageId tgt_page = kInvalidPageId;
  SlotId src_first = 0;
  SlotId src_last = 0;  // inclusive
  SlotId tgt_first = 0;
  Lsn src_ts = kInvalidLsn;
};

struct LogRecord {
  // ---- header (serialized for every record) ----
  LogType type = LogType::kInvalid;
  TxnId txn_id = kInvalidTxnId;
  Lsn prev_lsn = kInvalidLsn;   // previous record of the same transaction
  PageId page_id = kInvalidPageId;
  Lsn old_page_lsn = kInvalidLsn;  // page timestamp before this update
  bool is_clr = false;
  Lsn undo_next = kInvalidLsn;  // CLR / NtaEnd: next record to undo

  // ---- type-specific payload ----
  SlotId pos = 0;                  // kInsert/kDelete and first slot of batches
  std::string row;                 // kInsert/kDelete row image
  std::vector<std::string> rows;   // kBatchInsert/kBatchDelete row images
  std::vector<KeyCopyEntry> copies;  // kKeyCopy / kKeyCopyUndo
  uint16_t level = 0;              // page level for row records / kFormatPage
  std::vector<PageId> pages;       // kAlloc/kDealloc/kFreePage page list
                                   // (one record covers all pages of an
                                   // allocation-unit update, as ASE's
                                   // allocation-page logging does)
  // kCheckpoint payload: page states (allocated/deallocated lists) and the
  // transactions active at checkpoint time.
  std::vector<PageId> ckpt_allocated;
  std::vector<PageId> ckpt_deallocated;
  std::vector<CheckpointTxn> ckpt_txns;
  PageId ckpt_end_page = kInvalidPageId;  // space high-water mark
  TxnId ckpt_next_txn_id = kInvalidTxnId;
  // kRebuildProgress payload; also embedded in kCheckpoint (active=false
  // there means no rebuild was in flight at checkpoint time).
  RebuildProgressInfo rebuild_progress;
  PageId link_old = kInvalidPageId;  // kSetPrevLink/kSetNextLink/kMetaRoot
  PageId link_new = kInvalidPageId;
  PageId prev_page = kInvalidPageId;  // kFormatPage initial links
  PageId next_page = kInvalidPageId;

  // ---- filled in by LogManager::Append / scan ----
  Lsn lsn = kInvalidLsn;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice input, LogRecord* rec);

  // True if redoing/undoing this record modifies page_id.
  bool IsPageUpdate() const;
};

}  // namespace oir

#endif  // OIR_WAL_LOG_RECORD_H_
