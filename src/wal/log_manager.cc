#include "wal/log_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "testing/crash_point.h"
#include "util/coding.h"
#include "util/counters.h"
#include "util/crc32c.h"
#include "util/logging.h"

namespace oir {

LogManager::LogManager() : durable_lsn_(kHeaderSize) {
  buf_.assign("OIRLOG01\0\0\0\0\0\0\0\0", kHeaderSize);
}

LogManager::~LogManager() {
  {
    MutexLock l(mu_);
    stop_flusher_ = true;
  }
  flush_cv_.NotifyAll();
  flushed_cv_.NotifyAll();
  if (flusher_.joinable()) flusher_.join();
  if (fd_ >= 0) ::close(fd_);
}

void LogManager::SetGroupCommit(bool on) {
  MutexLock l(mu_);
  group_commit_ = on;
  // The flusher thread is started lazily on first enable (and kept across
  // toggles) so a purely synchronous log never spawns one — and so Open's
  // single-threaded recovery path runs before any concurrent access.
  if (on && !flusher_.joinable()) {
    flusher_ = std::thread([this] { FlusherLoop(); });
  }
}

bool LogManager::group_commit() const {
  MutexLock l(mu_);
  return group_commit_;
}

// File layout: a 24-byte header [magic:8]["trim_base":8][reserved:8]
// followed by the log bytes from trim_base on. The in-memory buffer always
// mirrors the retained log, so reads never touch the file.
Status LogManager::Open(const std::string& path, bool truncate,
                        std::unique_ptr<LogManager>* out) {
  auto log = std::unique_ptr<LogManager>(new LogManager());
  int flags = O_RDWR | O_CREAT | (truncate ? O_TRUNC : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError("open log " + path + ": " + std::strerror(errno));
  }
  log->fd_ = fd;
  log->path_ = path;

  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size > 24) {
    // Recover the retained log from the file.
    std::string header(24, '\0');
    if (::pread(fd, header.data(), 24, 0) != 24) {
      return Status::IOError("log header read failed");
    }
    if (std::memcmp(header.data(), "OIRLOGF1", 8) != 0) {
      return Status::Corruption("bad log file magic");
    }
    Lsn trim = DecodeFixed64(header.data() + 8);
    std::string body(size - 24, '\0');
    ssize_t r = ::pread(fd, body.data(), body.size(), 24);
    if (r < 0 || static_cast<size_t>(r) != body.size()) {
      return Status::IOError("log body read failed");
    }
    // Open is single-threaded (no flusher yet), but the guarded fields are
    // still touched under mu_ in bounded scopes: ReadRecord below takes the
    // (non-recursive) mutex itself.
    const Lsn trim_base = trim <= kHeaderSize ? 0 : trim;
    {
      MutexLock l(log->mu_);
      // For an untrimmed log the body includes the in-memory header padding.
      log->buf_ = std::move(body);
      log->trim_base_ = trim_base;
    }
    // A crash mid-write can leave a torn record at the tail; truncate the
    // log at the end of the valid prefix so future appends extend a clean
    // chain.
    Lsn valid_end =
        trim_base > kHeaderSize ? trim_base : static_cast<Lsn>(kHeaderSize);
    {
      Lsn cur = valid_end;
      LogRecord rec;
      Lsn next = cur;
      while (true) {
        Status rs = log->ReadRecord(cur, &rec, &next);
        if (!rs.ok()) break;
        valid_end = next;
        cur = next;
      }
    }
    {
      MutexLock l(log->mu_);
      log->buf_.resize(valid_end - trim_base);
      log->durable_lsn_ = valid_end;
      log->file_synced_ = valid_end;
    }
  } else {
    // Fresh file: write the header for an untrimmed log.
    std::string header("OIRLOGF1", 8);
    PutFixed64(&header, 0);
    PutFixed64(&header, 0);
    if (::pwrite(fd, header.data(), header.size(), 0) !=
        static_cast<ssize_t>(header.size())) {
      return Status::IOError("log header write failed");
    }
    MutexLock l(log->mu_);
    log->file_synced_ = kHeaderSize;
    OIR_RETURN_IF_ERROR(log->PersistLocked());
  }

  // Master checkpoint sidecar.
  std::string mpath = path + ".master";
  int mfd = ::open(mpath.c_str(), O_RDONLY);
  if (mfd >= 0 && !truncate) {
    char mbuf[12];
    if (::pread(mfd, mbuf, 12, 0) == 12) {
      Lsn master = DecodeFixed64(mbuf);
      uint32_t crc = DecodeFixed32(mbuf + 8);
      if (crc == crc32c::Value(mbuf, 8)) {
        MutexLock l(log->mu_);
        log->master_ckpt_ = master == 0 ? kInvalidLsn : master;
        log->durable_master_ckpt_ = log->master_ckpt_;
      }
    }
  }
  if (mfd >= 0) ::close(mfd);
  if (truncate) ::unlink(mpath.c_str());

  // File-backed logs default to group commit: there is a real fsync whose
  // cost is worth amortizing across concurrent committers.
  log->SetGroupCommit(true);

  *out = std::move(log);
  return Status::OK();
}

Status LogManager::PersistLocked() {
  if (fd_ < 0) return Status::OK();
  // Append everything durable that is not yet in the file.
  Lsn tail = trim_base_ + buf_.size();
  if (file_synced_ < trim_base_) file_synced_ = trim_base_;
  if (file_synced_ < tail) {
    const char* src = buf_.data() + (file_synced_ - trim_base_);
    size_t len = tail - file_synced_;
    off_t off = 24 + (file_synced_ - trim_base_);
    size_t done = 0;
    while (done < len) {
      ssize_t w = ::pwrite(fd_, src + done, len - done, off + done);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("log pwrite: ") +
                               std::strerror(errno));
      }
      done += static_cast<size_t>(w);
    }
    if (::fdatasync(fd_) != 0) {
      return Status::IOError(std::string("log fdatasync: ") +
                             std::strerror(errno));
    }
    GlobalCounters::Get().log_fsyncs.fetch_add(1, std::memory_order_relaxed);
    file_synced_ = tail;
  }
  return Status::OK();
}

Status LogManager::PersistMasterLocked() {
  if (fd_ < 0) return Status::OK();
  std::string mpath = path_ + ".master";
  std::string tmp = mpath + ".tmp";
  char mbuf[12];
  EncodeFixed64(mbuf, master_ckpt_ == kInvalidLsn ? 0 : master_ckpt_);
  EncodeFixed32(mbuf + 8, crc32c::Value(mbuf, 8));
  int mfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (mfd < 0) return Status::IOError("open master tmp failed");
  bool ok = ::pwrite(mfd, mbuf, 12, 0) == 12 && ::fdatasync(mfd) == 0;
  ::close(mfd);
  if (!ok) return Status::IOError("master write failed");
  if (::rename(tmp.c_str(), mpath.c_str()) != 0) {
    return Status::IOError("master rename failed");
  }
  return Status::OK();
}

// The record payload does not encode its own LSN (only prev_lsn), so
// serialization and the CRC — the expensive parts of an append — happen
// outside mu_; the critical section is just the buffer append.
Lsn LogManager::AppendEncoded(LogRecord* rec, const std::string& payload) {
  OIR_CRASH_POINT("wal.append.pre");
  static obs::TimerStat* const timer =
      obs::MetricRegistry::Get().Timer("wal.append_ns");
  obs::ScopedTimer scope(timer);
  char frame[8];
  EncodeFixed32(frame, static_cast<uint32_t>(payload.size()));
  EncodeFixed32(frame + 4,
                crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  auto& c = GlobalCounters::Get();
  c.log_records.fetch_add(1, std::memory_order_relaxed);
  c.log_bytes.fetch_add(sizeof(frame) + payload.size(),
                        std::memory_order_relaxed);
  MutexLock l(mu_);
  const Lsn lsn = trim_base_ + buf_.size();
  rec->lsn = lsn;
  buf_.append(frame, sizeof(frame));
  buf_.append(payload);
  return lsn;
}

Lsn LogManager::Append(LogRecord* rec, TxnContext* ctx) {
  // Lazy begin: the begin record is written just before the transaction's
  // first real record, so transactions that never log (pure reads) cost
  // nothing in the WAL.
  if (ctx->last_lsn == kInvalidLsn && rec->type != LogType::kBeginTxn) {
    LogRecord begin;
    begin.type = LogType::kBeginTxn;
    begin.txn_id = ctx->txn_id;
    begin.prev_lsn = kInvalidLsn;
    std::string bp;
    begin.EncodeTo(&bp);
    ctx->last_lsn = AppendEncoded(&begin, bp);
    ctx->begin_lsn = ctx->last_lsn;
  }
  rec->txn_id = ctx->txn_id;
  rec->prev_lsn = ctx->last_lsn;
  std::string payload;
  rec->EncodeTo(&payload);
  Lsn lsn = AppendEncoded(rec, payload);
  ctx->last_lsn = lsn;
  if (ctx->begin_lsn == kInvalidLsn) ctx->begin_lsn = lsn;
  OIR_CRASH_POINT("wal.append.post");
  return lsn;
}

Lsn LogManager::AppendSystem(LogRecord* rec) {
  rec->txn_id = kInvalidTxnId;
  rec->prev_lsn = kInvalidLsn;
  std::string payload;
  rec->EncodeTo(&payload);
  return AppendEncoded(rec, payload);
}

// Flushing "to" an LSN must make the record AT that lsn durable; the
// boundary is advanced to the end of the log so one flush covers every
// record appended so far.
Status LogManager::FlushToLocked(Lsn lsn) {
  GlobalCounters::Get().log_flush_calls.fetch_add(1,
                                                  std::memory_order_relaxed);
  OIR_CRASH_POINT("wal.flush.pre");
  if (lsn < durable_lsn_) return Status::OK();
  // Fault injection: the log device is gone — nothing new becomes durable.
  if (fail_flushes_.load(std::memory_order_relaxed)) {
    return Status::IOError("fault injection: log flush failed");
  }
  if (!group_commit_) {
    // Synchronous path: flush inline on the calling thread.
    OIR_CRASH_POINT("wal.flush.sync");
    durable_lsn_ = trim_base_ + buf_.size();
    if (master_ckpt_ != kInvalidLsn && master_ckpt_ < durable_lsn_) {
      durable_master_ckpt_ = master_ckpt_;
    }
    return PersistLocked();
  }
  // Group commit: publish the target, wake the flusher, and wait until a
  // flush round covers our record (durable_lsn_ is advanced only after the
  // round's write+fsync succeeded).
  for (;;) {
    if (lsn < durable_lsn_) return Status::OK();
    if (fail_flushes_.load(std::memory_order_relaxed)) {
      return Status::IOError("fault injection: log flush failed");
    }
    OIR_CRASH_POINT("wal.flush.group_wait");
    const Lsn target = trim_base_ + buf_.size();
    if (requested_lsn_ < target) requested_lsn_ = target;
    flush_cv_.NotifyOne();
    const uint64_t my_err = flush_err_seq_;
    while (
        !(lsn < durable_lsn_ || flush_err_seq_ != my_err || stop_flusher_)) {
      flushed_cv_.Wait(mu_);
    }
    if (lsn < durable_lsn_) return Status::OK();
    if (flush_err_seq_ != my_err) return last_flush_error_;
    if (stop_flusher_) return Status::IOError("log manager shutting down");
  }
}

Status LogManager::FlushTo(Lsn lsn) {
  MutexLock lk(mu_);
  return FlushToLocked(lsn);
}

Status LogManager::FlushAll() {
  MutexLock lk(mu_);
  const Lsn tail = trim_base_ + buf_.size();
  if (tail <= kHeaderSize) return Status::OK();
  // The record at tail-1 durable <=> durable_lsn_ >= tail.
  return FlushToLocked(tail - 1);
}

void LogManager::FlusherLoop() {
  MutexLock lk(mu_);
  while (!stop_flusher_) {
    if (requested_lsn_ <= durable_lsn_) {
      flush_cv_.Wait(mu_);
      continue;
    }
    // One batched flush round covering every record appended so far: all
    // current waiters ride on this single write+fsync.
    const Lsn target = trim_base_ + buf_.size();
    const Lsn prev_durable = durable_lsn_;
    static obs::TimerStat* const flush_timer =
        obs::MetricRegistry::Get().Timer("wal.flush_ns");
    OIR_CRASH_POINT("wal.flusher.round");
    Status s;
    if (fail_flushes_.load(std::memory_order_relaxed)) {
      // Fault injection: the round fails before anything reaches the
      // device; durable_lsn_ must not move.
      s = Status::IOError("fault injection: log flush failed");
    } else {
      obs::ScopedTimer scope(flush_timer);
      s = PersistLocked();
    }
    if (s.ok() && fd_ < 0) {
      // In-memory log: no physical sync, but count the round so the
      // flush-calls-per-fsync group-size metric stays meaningful.
      GlobalCounters::Get().log_fsyncs.fetch_add(1,
                                                 std::memory_order_relaxed);
    }
    if (s.ok()) {
      durable_lsn_ = target;
      OIR_CRASH_POINT("wal.flusher.durable");
      OIR_TRACE(obs::TraceEventType::kGroupCommitFlush, target,
                target - prev_durable);
      if (master_ckpt_ != kInvalidLsn && master_ckpt_ < durable_lsn_) {
        durable_master_ckpt_ = master_ckpt_;
      }
    } else {
      last_flush_error_ = s;
      ++flush_err_seq_;
      // Drop the pending request so a persistent I/O error doesn't spin the
      // flusher; the next FlushTo re-raises it (and retries the write).
      requested_lsn_ = durable_lsn_;
    }
    flushed_cv_.NotifyAll();
  }
  flushed_cv_.NotifyAll();
}

void LogManager::SetMasterCheckpoint(Lsn lsn) {
  OIR_CRASH_POINT("wal.master.set");
  MutexLock l(mu_);
  master_ckpt_ = lsn;
  if (lsn < durable_lsn_) durable_master_ckpt_ = lsn;
  Status s = PersistMasterLocked();
  OIR_CHECK(s.ok());
}

Lsn LogManager::master_checkpoint() const {
  MutexLock l(mu_);
  return master_ckpt_;
}

void LogManager::DiscardPrefix(Lsn lsn) {
  OIR_CRASH_POINT("wal.discard_prefix");
  MutexLock l(mu_);
  if (lsn <= trim_base_ + kHeaderSize) return;
  Lsn limit = trim_base_ + buf_.size();
  if (lsn > limit) lsn = limit;
  const size_t drop = lsn - trim_base_;
  buf_.erase(0, drop);
  trim_base_ = lsn;
  if (fd_ >= 0) {
    // Rewrite the file: new header with the trim base, then the retained
    // bytes. Log truncation is rare (checkpoint-driven), so a full rewrite
    // is acceptable.
    std::string header("OIRLOGF1", 8);
    PutFixed64(&header, trim_base_);
    PutFixed64(&header, 0);
    OIR_CHECK(::pwrite(fd_, header.data(), header.size(), 0) ==
              static_cast<ssize_t>(header.size()));
    OIR_CHECK(::pwrite(fd_, buf_.data(), buf_.size(), 24) ==
              static_cast<ssize_t>(buf_.size()));
    OIR_CHECK(::ftruncate(fd_, 24 + buf_.size()) == 0);
    OIR_CHECK(::fdatasync(fd_) == 0);
    file_synced_ = trim_base_ + buf_.size();
  }
}

Lsn LogManager::trim_lsn() const {
  MutexLock l(mu_);
  return trim_base_ > kHeaderSize ? trim_base_ : kHeaderSize;
}

Lsn LogManager::durable_lsn() const {
  MutexLock l(mu_);
  return durable_lsn_;
}

Lsn LogManager::tail_lsn() const {
  MutexLock l(mu_);
  return trim_base_ + buf_.size();
}

Status LogManager::ReadRecord(Lsn lsn, LogRecord* rec, Lsn* next_lsn) const {
  MutexLock l(mu_);
  if (lsn < kHeaderSize || lsn < trim_base_ ||
      lsn - trim_base_ + 8 > buf_.size()) {
    return Status::InvalidArgument("lsn out of range");
  }
  const size_t off = lsn - trim_base_;
  uint32_t len = DecodeFixed32(buf_.data() + off);
  uint32_t stored_crc = crc32c::Unmask(DecodeFixed32(buf_.data() + off + 4));
  if (off + 8 + len > buf_.size()) {
    return Status::Corruption("truncated log record");
  }
  const char* payload = buf_.data() + off + 8;
  if (crc32c::Value(payload, len) != stored_crc) {
    return Status::Corruption("log record crc mismatch");
  }
  OIR_RETURN_IF_ERROR(LogRecord::DecodeFrom(Slice(payload, len), rec));
  rec->lsn = lsn;
  if (next_lsn != nullptr) *next_lsn = lsn + 8 + len;
  return Status::OK();
}

LogManager::Iterator::Iterator(const LogManager* log, Lsn start, Lsn limit)
    : log_(log), lsn_(start), next_lsn_(start), limit_(limit), valid_(false) {
  ReadCurrent();
}

void LogManager::Iterator::ReadCurrent() {
  valid_ = false;
  if (lsn_ >= limit_) return;
  Status s = log_->ReadRecord(lsn_, &rec_, &next_lsn_);
  if (!s.ok()) return;  // torn tail or corruption: stop
  valid_ = true;
}

void LogManager::Iterator::Next() {
  OIR_DCHECK(valid_);
  lsn_ = next_lsn_;
  ReadCurrent();
}

LogManager::Iterator LogManager::Scan(Lsn start, Lsn limit) const {
  Lsn lim = limit;
  if (lim == kInvalidLsn) lim = tail_lsn();
  if (start < kHeaderSize) start = kHeaderSize;
  return Iterator(this, start, lim);
}

void LogManager::SimulateCrash() {
  MutexLock l(mu_);
  if (durable_lsn_ > trim_base_) {
    buf_.resize(durable_lsn_ - trim_base_);
  }
  // No in-flight flush can complete past the crash point.
  if (requested_lsn_ > durable_lsn_) requested_lsn_ = durable_lsn_;
  // Only a checkpoint whose record was durable survives the crash.
  master_ckpt_ = durable_master_ckpt_;
}

uint64_t LogManager::TotalBytesAppended() const {
  MutexLock l(mu_);
  return trim_base_ + buf_.size() - kHeaderSize;
}

}  // namespace oir
