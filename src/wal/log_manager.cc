#include "wal/log_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/waitstate.h"
#include "testing/crash_point.h"
#include "util/coding.h"
#include "util/counters.h"
#include "util/crc32c.h"
#include "util/logging.h"

namespace oir {

namespace {

WalOptions SanitizeWalOptions(WalOptions w) {
  if (w.segment_bytes < 4096) w.segment_bytes = 4096;
  if (w.inflight_segments < 1) w.inflight_segments = 1;
  if (w.group_window_us > 5000) w.group_window_us = 5000;
  return w;
}

}  // namespace

LogManager::LogManager(const WalOptions& wal)
    : wal_opts_(SanitizeWalOptions(wal)),
      durable_lsn_(kHeaderSize),
      submitted_lsn_(kHeaderSize),
      durable_adv_seq_(1) {
  buf_.assign("OIRLOG01\0\0\0\0\0\0\0\0", kHeaderSize);
}

LogManager::~LogManager() {
  {
    MutexLock l(mu_);
    stop_flusher_ = true;
  }
  flush_cv_.NotifyAll();
  flushed_cv_.NotifyAll();
  if (flusher_.joinable()) flusher_.join();
  // Let any submitted-but-incomplete segment finish before closing the fd;
  // completions still run OnSegmentComplete, which is safe (the object is
  // alive and the sealer is gone).
  if (writer_) {
    writer_->Drain();
    writer_.reset();
  }
  if (fd_ >= 0) ::close(fd_);
}

void LogManager::SetGroupCommit(bool on) {
  MutexLock l(mu_);
  group_commit_ = on;
  // The flusher thread is started lazily on first enable (and kept across
  // toggles) so a purely synchronous log never spawns one — and so Open's
  // single-threaded recovery path runs before any concurrent access.
  if (on && !flusher_.joinable()) {
    if (wal_opts_.pipeline) {
      flusher_ = std::thread([this] { PipelineLoop(); });
    } else {
      flusher_ = std::thread([this] { FlusherLoop(); });
    }
  }
}

bool LogManager::group_commit() const {
  MutexLock l(mu_);
  return group_commit_;
}

const char* LogManager::backend_name() const {
  if (writer_) return writer_->backend_name();
  return fd_ >= 0 ? "sync" : "mem";
}

const char* LogManager::sync_mode_name() const {
  if (writer_) return WalSyncModeName(writer_->sync_mode());
  return WalSyncModeName(WalSyncMode::kFdatasync);
}

// File layout: a 24-byte header [magic:8]["trim_base":8][reserved:8]
// followed by the log bytes from trim_base on. The in-memory buffer always
// mirrors the retained log, so reads never touch the file.
Status LogManager::Open(const std::string& path, bool truncate,
                        std::unique_ptr<LogManager>* out,
                        const WalOptions& wal) {
  WalOptions opts = SanitizeWalOptions(wal);
  // Environment overrides so CI can force the portable fallback (and devs
  // can A/B backends) without a rebuild.
  if (const char* e = std::getenv("OIR_WAL_BACKEND"); e != nullptr && *e) {
    ParseWalBackend(e, &opts.backend);
  }
  if (const char* e = std::getenv("OIR_WAL_SYNC"); e != nullptr && *e) {
    ParseWalSyncMode(e, &opts.sync_mode);
  }

  auto log = std::unique_ptr<LogManager>(new LogManager(opts));
  int flags = O_RDWR | O_CREAT | (truncate ? O_TRUNC : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError("open log " + path + ": " + std::strerror(errno));
  }
  log->fd_ = fd;
  log->path_ = path;

  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size > 24) {
    // Recover the retained log from the file.
    std::string header(24, '\0');
    if (::pread(fd, header.data(), 24, 0) != 24) {
      return Status::IOError("log header read failed");
    }
    if (std::memcmp(header.data(), "OIRLOGF1", 8) != 0) {
      return Status::Corruption("bad log file magic");
    }
    Lsn trim = DecodeFixed64(header.data() + 8);
    std::string body(size - 24, '\0');
    ssize_t r = ::pread(fd, body.data(), body.size(), 24);
    if (r < 0 || static_cast<size_t>(r) != body.size()) {
      return Status::IOError("log body read failed");
    }
    // Open is single-threaded (no flusher yet), but the guarded fields are
    // still touched under mu_ in bounded scopes: ReadRecord below takes the
    // (non-recursive) mutex itself.
    const Lsn trim_base = trim <= kHeaderSize ? 0 : trim;
    {
      MutexLock l(log->mu_);
      // For an untrimmed log the body includes the in-memory header padding.
      log->buf_ = std::move(body);
      log->trim_base_ = trim_base;
      log->file_header_ = header;
    }
    // A crash mid-write can leave a torn record at the tail; truncate the
    // log at the end of the valid prefix so future appends extend a clean
    // chain.
    Lsn valid_end =
        trim_base > kHeaderSize ? trim_base : static_cast<Lsn>(kHeaderSize);
    {
      Lsn cur = valid_end;
      LogRecord rec;
      Lsn next = cur;
      while (true) {
        Status rs = log->ReadRecord(cur, &rec, &next);
        if (!rs.ok()) break;
        valid_end = next;
        cur = next;
      }
    }
    {
      MutexLock l(log->mu_);
      log->buf_.resize(valid_end - trim_base);
      log->durable_lsn_ = valid_end;
      log->submitted_lsn_ = valid_end;
      log->file_synced_ = valid_end;
      // Drop the torn bytes from the file too: a later partial overwrite
      // must not splice them into a seemingly valid chain, and O_DIRECT
      // segment padding assumes nothing live beyond the logical tail.
      const off_t valid_size =
          static_cast<off_t>(log->FileOffsetLocked(valid_end));
      if (size > valid_size) {
        if (::ftruncate(fd, valid_size) != 0) {
          return Status::IOError("log truncate failed");
        }
      }
    }
  } else {
    // Fresh file: write the header for an untrimmed log.
    std::string header("OIRLOGF1", 8);
    PutFixed64(&header, 0);
    PutFixed64(&header, 0);
    if (::pwrite(fd, header.data(), header.size(), 0) !=
        static_cast<ssize_t>(header.size())) {
      return Status::IOError("log header write failed");
    }
    MutexLock l(log->mu_);
    log->file_header_ = header;
    log->file_synced_ = kHeaderSize;
    OIR_RETURN_IF_ERROR(log->PersistLocked());
  }

  // Master checkpoint sidecar.
  std::string mpath = path + ".master";
  int mfd = ::open(mpath.c_str(), O_RDONLY);
  if (mfd >= 0 && !truncate) {
    char mbuf[12];
    if (::pread(mfd, mbuf, 12, 0) == 12) {
      Lsn master = DecodeFixed64(mbuf);
      uint32_t crc = DecodeFixed32(mbuf + 8);
      if (crc == crc32c::Value(mbuf, 8)) {
        MutexLock l(log->mu_);
        log->master_ckpt_ = master == 0 ? kInvalidLsn : master;
        log->durable_master_ckpt_ = log->master_ckpt_;
      }
    }
  }
  if (mfd >= 0) ::close(mfd);
  if (truncate) ::unlink(mpath.c_str());

  // Async backend for the pipelined durable path. Create() probes io_uring
  // and O_DIRECT and falls back internally; if even the portable writer
  // cannot open the file, fall back to the legacy blocking flusher.
  if (log->wal_opts_.pipeline) {
    LogManager* raw = log.get();
    std::unique_ptr<AsyncLogWriter> w;
    Status ws = AsyncLogWriter::Create(
        path, opts.backend, opts.sync_mode, opts.inflight_segments,
        [raw](uint64_t seq, Status s) {
          raw->OnSegmentComplete(seq, std::move(s));
        },
        &w);
    if (ws.ok()) {
      log->writer_ = std::move(w);
    } else {
      log->wal_opts_.pipeline = false;
    }
  }

  // File-backed logs default to group commit: there is a real fsync whose
  // cost is worth amortizing across concurrent committers.
  log->SetGroupCommit(true);

  *out = std::move(log);
  return Status::OK();
}

Status LogManager::PersistLocked() {
  if (fd_ < 0) return Status::OK();
  // Append everything durable that is not yet in the file.
  Lsn tail = trim_base_ + buf_.size();
  if (file_synced_ < trim_base_) file_synced_ = trim_base_;
  if (file_synced_ < tail) {
    const char* src = buf_.data() + (file_synced_ - trim_base_);
    size_t len = tail - file_synced_;
    off_t off = 24 + (file_synced_ - trim_base_);
    size_t done = 0;
    while (done < len) {
      ssize_t w = ::pwrite(fd_, src + done, len - done, off + done);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("log pwrite: ") +
                               std::strerror(errno));
      }
      done += static_cast<size_t>(w);
    }
    if (::fdatasync(fd_) != 0) {
      return Status::IOError(std::string("log fdatasync: ") +
                             std::strerror(errno));
    }
    GlobalCounters::Get().log_fsyncs.fetch_add(1, std::memory_order_relaxed);
    file_synced_ = tail;
  }
  return Status::OK();
}

Status LogManager::PersistMasterLocked() {
  if (fd_ < 0) return Status::OK();
  std::string mpath = path_ + ".master";
  std::string tmp = mpath + ".tmp";
  char mbuf[12];
  EncodeFixed64(mbuf, master_ckpt_ == kInvalidLsn ? 0 : master_ckpt_);
  EncodeFixed32(mbuf + 8, crc32c::Value(mbuf, 8));
  int mfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (mfd < 0) return Status::IOError("open master tmp failed");
  bool ok = ::pwrite(mfd, mbuf, 12, 0) == 12 && ::fdatasync(mfd) == 0;
  ::close(mfd);
  if (!ok) return Status::IOError("master write failed");
  if (::rename(tmp.c_str(), mpath.c_str()) != 0) {
    return Status::IOError("master rename failed");
  }
  return Status::OK();
}

// The record payload does not encode its own LSN (only prev_lsn), so
// serialization and the CRC — the expensive parts of an append — happen
// outside mu_; the critical section is just the buffer append.
Lsn LogManager::AppendEncoded(LogRecord* rec, const std::string& payload) {
  OIR_CRASH_POINT("wal.append.pre");
  static obs::TimerStat* const timer =
      obs::MetricRegistry::Get().Timer("wal.append_ns");
  obs::ScopedTimer scope(timer);
  char frame[8];
  EncodeFixed32(frame, static_cast<uint32_t>(payload.size()));
  EncodeFixed32(frame + 4,
                crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  auto& c = GlobalCounters::Get();
  c.log_records.fetch_add(1, std::memory_order_relaxed);
  c.log_bytes.fetch_add(sizeof(frame) + payload.size(),
                        std::memory_order_relaxed);
  // Hold mu_ at elevated priority: an appender preempted mid-hold blocks
  // the (real-time) sealer and completion threads behind a starved CFS
  // thread — a priority inversion whose cost is a whole scheduling epoch.
  std::optional<ScopedCommitPriorityBoost> boost;
  if (wal_opts_.pipeline && writer_ != nullptr) boost.emplace();
  MutexLock l(mu_);
  const Lsn lsn = trim_base_ + buf_.size();
  rec->lsn = lsn;
  buf_.append(frame, sizeof(frame));
  buf_.append(payload);
  return lsn;
}

Lsn LogManager::Append(LogRecord* rec, TxnContext* ctx) {
  // Lazy begin: the begin record is written just before the transaction's
  // first real record, so transactions that never log (pure reads) cost
  // nothing in the WAL.
  if (ctx->last_lsn == kInvalidLsn && rec->type != LogType::kBeginTxn) {
    LogRecord begin;
    begin.type = LogType::kBeginTxn;
    begin.txn_id = ctx->txn_id;
    begin.prev_lsn = kInvalidLsn;
    std::string bp;
    begin.EncodeTo(&bp);
    ctx->last_lsn = AppendEncoded(&begin, bp);
    ctx->begin_lsn = ctx->last_lsn;
  }
  rec->txn_id = ctx->txn_id;
  rec->prev_lsn = ctx->last_lsn;
  std::string payload;
  rec->EncodeTo(&payload);
  Lsn lsn = AppendEncoded(rec, payload);
  ctx->last_lsn = lsn;
  if (ctx->begin_lsn == kInvalidLsn) ctx->begin_lsn = lsn;
  OIR_CRASH_POINT("wal.append.post");
  return lsn;
}

Lsn LogManager::AppendSystem(LogRecord* rec) {
  rec->txn_id = kInvalidTxnId;
  rec->prev_lsn = kInvalidLsn;
  std::string payload;
  rec->EncodeTo(&payload);
  return AppendEncoded(rec, payload);
}

void LogManager::AckLocked() {
  auto& c = GlobalCounters::Get();
  c.log_commits_acked.fetch_add(1, std::memory_order_relaxed);
  // All acks issued under one durable-advance seq rode the same flush:
  // count the group once, on its first ack.
  if (last_group_seq_ != durable_adv_seq_) {
    last_group_seq_ = durable_adv_seq_;
    c.log_groups_acked.fetch_add(1, std::memory_order_relaxed);
  }
}

// Flushing "to" an LSN must make the record AT that lsn durable; the
// boundary is advanced to the end of the log so one flush covers every
// record appended so far.
Status LogManager::FlushToLocked(Lsn lsn) {
  GlobalCounters::Get().log_flush_calls.fetch_add(1,
                                                  std::memory_order_relaxed);
  OIR_CRASH_POINT("wal.flush.pre");
  if (lsn < durable_lsn_) {
    if (group_commit_) AckLocked();
    return Status::OK();
  }
  // Fault injection: the log device is gone — nothing new becomes durable.
  if (fail_flushes_.load(std::memory_order_relaxed)) {
    return Status::IOError("fault injection: log flush failed");
  }
  if (!group_commit_) {
    // Synchronous path: flush inline on the calling thread.
    OIR_CRASH_POINT("wal.flush.sync");
    durable_lsn_ = trim_base_ + buf_.size();
    ++durable_adv_seq_;
    if (master_ckpt_ != kInvalidLsn && master_ckpt_ < durable_lsn_) {
      durable_master_ckpt_ = master_ckpt_;
    }
    // The inline write+fsync is this thread waiting for durability, the
    // same as the group-commit CV wait below.
    obs::WaitScope ws(obs::WaitState::kWalCommitWait);
    return PersistLocked();
  }
  // Group commit: publish the target, wake the flusher/sealer, and wait
  // until the durability boundary covers our record. Under the pipeline the
  // wake-up comes from a segment *completion* (the sealer never blocks on
  // the device); under the legacy flusher, from the end of a flush round.
  for (;;) {
    if (lsn < durable_lsn_) {
      AckLocked();
      return Status::OK();
    }
    if (fail_flushes_.load(std::memory_order_relaxed)) {
      return Status::IOError("fault injection: log flush failed");
    }
    OIR_CRASH_POINT("wal.flush.group_wait");
    const Lsn target = trim_base_ + buf_.size();
    if (requested_lsn_ < target) {
      // Wake the sealer only on an idle→demand transition: while demand
      // is already pending the sealer is either working or deliberately
      // holding the micro-batch window open, and a preempting notify per
      // commit costs two context switches that buy nothing. The legacy
      // flusher's "covered" boundary is durable_lsn_ (it has no submit
      // stage).
      const Lsn covered = wal_opts_.pipeline ? submitted_lsn_ : durable_lsn_;
      const bool had_demand = requested_lsn_ > covered;
      requested_lsn_ = target;
      if (!had_demand) flush_cv_.NotifyOne();
    }
    const uint64_t my_err = flush_err_seq_;
    {
      obs::WaitScope ws(obs::WaitState::kWalCommitWait);
      while (
          !(lsn < durable_lsn_ || flush_err_seq_ != my_err || stop_flusher_)) {
        flushed_cv_.Wait(mu_);
      }
    }
    if (lsn < durable_lsn_) {
      AckLocked();
      return Status::OK();
    }
    if (flush_err_seq_ != my_err) return last_flush_error_;
    if (stop_flusher_) return Status::IOError("log manager shutting down");
  }
}

Status LogManager::FlushTo(Lsn lsn) {
  // Pipelined file log: boost this thread for the duration of the wait so
  // the durable-completion wake-up preempts runnable OLTP threads instead
  // of queueing behind them (wal_opts_ and writer_ are fixed after Open, so
  // reading them unlocked here is safe).
  std::optional<ScopedCommitPriorityBoost> boost;
  if (wal_opts_.pipeline && writer_ != nullptr) boost.emplace();
  MutexLock lk(mu_);
  return FlushToLocked(lsn);
}

Status LogManager::FlushAll() {
  std::optional<ScopedCommitPriorityBoost> boost;
  if (wal_opts_.pipeline && writer_ != nullptr) boost.emplace();
  MutexLock lk(mu_);
  const Lsn tail = trim_base_ + buf_.size();
  if (tail <= kHeaderSize) return Status::OK();
  // The record at tail-1 durable <=> durable_lsn_ >= tail.
  return FlushToLocked(tail - 1);
}

void LogManager::FlusherLoop() {
  TryElevateLogThreadPriority();
  MutexLock lk(mu_);
  while (!stop_flusher_) {
    if (requested_lsn_ <= durable_lsn_) {
      flush_cv_.Wait(mu_);  // wait-state: flusher idle, no demand
      continue;
    }
    // One batched flush round covering every record appended so far: all
    // current waiters ride on this single write+fsync.
    const Lsn target = trim_base_ + buf_.size();
    const Lsn prev_durable = durable_lsn_;
    static obs::TimerStat* const flush_timer =
        obs::MetricRegistry::Get().Timer("wal.flush_ns");
    OIR_CRASH_POINT("wal.flusher.round");
    Status s;
    if (fail_flushes_.load(std::memory_order_relaxed)) {
      // Fault injection: the round fails before anything reaches the
      // device; durable_lsn_ must not move.
      s = Status::IOError("fault injection: log flush failed");
    } else {
      obs::ScopedTimer scope(flush_timer);
      s = PersistLocked();
    }
    if (s.ok() && fd_ < 0) {
      // In-memory log: no physical sync, but count the round so the
      // flush-calls-per-fsync group-size metric stays meaningful.
      GlobalCounters::Get().log_fsyncs.fetch_add(1,
                                                 std::memory_order_relaxed);
    }
    if (s.ok()) {
      durable_lsn_ = target;
      ++durable_adv_seq_;
      OIR_CRASH_POINT("wal.flusher.durable");
      OIR_TRACE(obs::TraceEventType::kGroupCommitFlush, target,
                target - prev_durable);
      if (master_ckpt_ != kInvalidLsn && master_ckpt_ < durable_lsn_) {
        durable_master_ckpt_ = master_ckpt_;
      }
    } else {
      last_flush_error_ = s;
      ++flush_err_seq_;
      // Drop the pending request so a persistent I/O error doesn't spin the
      // flusher; the next FlushTo re-raises it (and retries the write).
      requested_lsn_ = durable_lsn_;
    }
    flushed_cv_.NotifyAll();
  }
  flushed_cv_.NotifyAll();
}

void LogManager::BuildSegmentLocked(Lsn begin, Lsn end, uint64_t* offset,
                                    std::string* data) const {
  const uint64_t raw_b = FileOffsetLocked(begin);
  const uint64_t raw_e = FileOffsetLocked(end);
  if (!writer_ || writer_->sync_mode() != WalSyncMode::kODirect) {
    *offset = raw_b;
    data->assign(buf_.data() + (begin - trim_base_), end - begin);
    return;
  }
  // O_DIRECT: sector-align the range. Leading bytes are re-materialized
  // from the file image (24-byte header mirror, then the buffer — file
  // offset f holds buf_[f - 24 + trim_base_... i.e. buf_[f - 24] relative
  // to the retained window]); the tail is zero-padded. A zero frame never
  // parses (Unmask(0) != crc32c of an empty payload), so padding can never
  // extend the valid prefix past the logical tail.
  const uint64_t a = raw_b / kWalSectorSize * kWalSectorSize;
  const uint64_t b =
      (raw_e + kWalSectorSize - 1) / kWalSectorSize * kWalSectorSize;
  *offset = a;
  data->assign(b - a, '\0');
  const uint64_t hdr_end = std::min<uint64_t>(raw_e, kFileHeaderSize);
  for (uint64_t f = a; f < hdr_end; ++f) {
    (*data)[f - a] = file_header_[f];
  }
  const uint64_t body_begin = std::max<uint64_t>(a, kFileHeaderSize);
  if (body_begin < raw_e) {
    std::memcpy(data->data() + (body_begin - a),
                buf_.data() + (body_begin - kFileHeaderSize),
                raw_e - body_begin);
  }
}

void LogManager::OnSegmentComplete(uint64_t seq, Status s) {
  MutexLock l(mu_);
  for (auto& seg : inflight_) {
    if (seg.seq == seq) {
      seg.done = true;
      seg.status = std::move(s);
      break;
    }
  }
  // A seq not found is a stale completion from before an error rewind
  // cleared the queue; the retry re-covers its range.
  CompleteSegmentsLocked();
}

void LogManager::CompleteSegmentsLocked() {
  bool advanced = false;
  bool failed = false;
  auto& c = GlobalCounters::Get();
  while (!inflight_.empty() && inflight_.front().done) {
    Segment seg = inflight_.front();
    inflight_.pop_front();
    OIR_CRASH_POINT("wal.pipeline.complete");
    c.wal_inflight_bytes.fetch_sub(seg.end - seg.begin,
                                   std::memory_order_relaxed);
    const bool power_cut = fail_flushes_.load(std::memory_order_relaxed);
    if (seg.status.ok() && !power_cut) {
      durable_lsn_ = seg.end;
      if (file_synced_ < seg.end) file_synced_ = seg.end;
      ++durable_adv_seq_;
      c.log_fsyncs.fetch_add(1, std::memory_order_relaxed);
      c.wal_segments_completed.fetch_add(1, std::memory_order_relaxed);
      OIR_TRACE(obs::TraceEventType::kWalSegComplete, seg.end,
                seg.end - seg.begin);
      if (master_ckpt_ != kInvalidLsn && master_ckpt_ < durable_lsn_) {
        durable_master_ckpt_ = master_ckpt_;
      }
      advanced = true;
    } else {
      // Once the fault-injection power cut is armed, no completion may
      // advance durability — the bytes may be on the platter, but the ack
      // never happened, so recovery must not see the commit.
      failed = true;
      last_flush_error_ = power_cut || seg.status.ok()
                              ? Status::IOError(
                                    "fault injection: log flush failed")
                              : seg.status;
      break;
    }
  }
  if (failed) {
    // A segment failed: even if later in-flight segments succeed
    // physically, durability cannot advance past the hole. Drop all
    // in-flight bookkeeping and rewind the submission boundary so the
    // sealer re-covers [durable_lsn_, tail) on the next request. Stale
    // completions for dropped segments miss the seq lookup and are
    // ignored; re-submitted ranges rewrite identical bytes (the buffer is
    // append-only between quiesces), so overlapping in-flight writes are
    // harmless.
    for (const Segment& seg : inflight_) {
      c.wal_inflight_bytes.fetch_sub(seg.end - seg.begin,
                                     std::memory_order_relaxed);
    }
    inflight_.clear();
    submitted_lsn_ = durable_lsn_;
    padded_end_off_ = 0;
    ++flush_err_seq_;
    requested_lsn_ = durable_lsn_;
  }
  if (advanced || failed) {
    flushed_cv_.NotifyAll();
    // Also wake the sealer: an in-flight slot freed up (or the rewind
    // needs re-sealing).
    flush_cv_.NotifyAll();
  }
}

void LogManager::PipelineLoop() {
  TryElevateLogThreadPriority();
  MutexLock lk(mu_);
  auto& c = GlobalCounters::Get();
  while (!stop_flusher_) {
    CompleteSegmentsLocked();
    if (quiescing_) {
      flush_cv_.Wait(mu_);  // wait-state: sealer parked while quiescing
      continue;
    }
    const Lsn tail = trim_base_ + buf_.size();
    const bool demand = requested_lsn_ > submitted_lsn_;
    const bool size_due =
        writer_ != nullptr && tail - submitted_lsn_ >= wal_opts_.segment_bytes;
    if (!demand && !size_due) {
      if (writer_ != nullptr && tail > submitted_lsn_) {
        // Unsubmitted bytes nobody is waiting for: give committers a
        // moment to batch, then seal anyway so fire-and-forget appends
        // reach the device in bounded time. (In-memory logs skip this:
        // durability there is simulated, and advancing it without a flush
        // request would change SimulateCrash semantics.)
        // wait-state: sealer batching window, not an operation wait
        flush_cv_.WaitFor(mu_, std::chrono::milliseconds(5));
        if (stop_flusher_ || quiescing_) continue;
        if (requested_lsn_ > submitted_lsn_ ||
            trim_base_ + buf_.size() != tail) {
          continue;  // demand or growth arrived; re-evaluate from the top
        }
        // Timed out with a stable idle tail: fall through and seal it.
      } else {
        flush_cv_.Wait(mu_);  // wait-state: sealer idle, no demand
        continue;
      }
    }
    if (inflight_.size() >= wal_opts_.inflight_segments) {
      // wait-state: sealer backpressure; a completion frees a slot and
      // notifies
      flush_cv_.Wait(mu_);
      continue;
    }
    if (demand && !size_due && writer_ != nullptr &&
        wal_opts_.group_window_us > 0) {
      // Micro-batch window: commits arriving within it join this group,
      // turning k device rounds into one for one window of added ack
      // latency. Deadline-based — waiter notifications land on flush_cv_
      // and must not cut the window short.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(wal_opts_.group_window_us);
      while (!stop_flusher_ && !quiescing_ &&
             !fail_flushes_.load(std::memory_order_relaxed) &&
             trim_base_ + buf_.size() - submitted_lsn_ <
                 wal_opts_.segment_bytes) {
        // wait-state: sealer micro-batch window, not an operation wait
        if (flush_cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) {
          break;
        }
      }
      if (stop_flusher_ || quiescing_) continue;
    }
    OIR_CRASH_POINT("wal.pipeline.seal");
    if (fail_flushes_.load(std::memory_order_relaxed)) {
      // The log device is gone. Publish one failed round for any waiter
      // currently blocked, drop the request, and sleep — the flag is
      // cleared before recovery resumes, and the next FlushTo re-raises
      // the request.
      if (requested_lsn_ > durable_lsn_) {
        last_flush_error_ =
            Status::IOError("fault injection: log flush failed");
        ++flush_err_seq_;
        requested_lsn_ = durable_lsn_;
        flushed_cv_.NotifyAll();
      }
      flush_cv_.Wait(mu_);  // wait-state: log device failed, parked
      continue;
    }
    const Lsn begin = submitted_lsn_;
    const Lsn end = std::min(trim_base_ + buf_.size(),
                             begin + wal_opts_.segment_bytes);
    if (end <= begin) continue;
    if (writer_ != nullptr &&
        writer_->sync_mode() == WalSyncMode::kODirect && !inflight_.empty()) {
      // O_DIRECT hazard: this segment's first sector is the previous
      // segment's zero-padded last sector. Two in-flight writes to one
      // sector can land in either order, so wait for the overlapping
      // predecessor to complete before sealing. Sector-disjoint segments
      // (the common case for the buffered modes) pipeline fully.
      const uint64_t first_sector =
          FileOffsetLocked(begin) / kWalSectorSize * kWalSectorSize;
      if (first_sector < padded_end_off_) {
        flush_cv_.Wait(mu_);  // wait-state: sealer O_DIRECT sector hazard
        continue;
      }
    }
    Segment seg;
    seg.seq = next_seg_seq_++;
    seg.begin = begin;
    seg.end = end;
    uint64_t offset = 0;
    std::string data;
    if (writer_ != nullptr) BuildSegmentLocked(begin, end, &offset, &data);
    submitted_lsn_ = end;
    inflight_.push_back(seg);
    c.wal_segments_sealed.fetch_add(1, std::memory_order_relaxed);
    c.wal_inflight_bytes.fetch_add(end - begin, std::memory_order_relaxed);
    OIR_TRACE(obs::TraceEventType::kWalSegSeal, end, end - begin);
    OIR_CRASH_POINT("wal.pipeline.submit");
    if (writer_ != nullptr) {
      padded_end_off_ = offset + data.size();
      OIR_TRACE(obs::TraceEventType::kWalSegSubmit, end, data.size());
      // Submit never blocks on the device and never invokes the completion
      // callback on this thread, so holding mu_ here is safe — and keeps
      // the seal→submit transition atomic with respect to quiesce.
      writer_->Submit(seg.seq, offset, std::move(data));
    } else {
      // In-memory log: durability is simulated, so the segment completes
      // inline — still exercising the full seal/submit/complete protocol
      // (and its crash points) without a writer thread.
      OIR_TRACE(obs::TraceEventType::kWalSegSubmit, end, end - begin);
      inflight_.back().done = true;
      inflight_.back().status = Status::OK();
      CompleteSegmentsLocked();
    }
  }
  flushed_cv_.NotifyAll();
}

void LogManager::QuiescePipeline() {
  {
    MutexLock l(mu_);
    quiescing_ = true;
    if (!wal_opts_.pipeline || !flusher_.joinable()) {
      // No sealer running (legacy flusher or a log that never enabled
      // group commit): nothing can be in flight.
      return;
    }
  }
  // The sealer holds mu_ from its quiescing_ check through Submit, so once
  // the flag is set (we held mu_ above) no new segment can be submitted;
  // Drain() then covers everything submitted before.
  flush_cv_.NotifyAll();
  if (writer_) writer_->Drain();
  MutexLock l(mu_);
  CompleteSegmentsLocked();
  auto& c = GlobalCounters::Get();
  for (const Segment& seg : inflight_) {
    c.wal_inflight_bytes.fetch_sub(seg.end - seg.begin,
                                   std::memory_order_relaxed);
  }
  inflight_.clear();
  submitted_lsn_ = durable_lsn_;
  padded_end_off_ = 0;
  // quiescing_ stays set; the caller finishes its critical work (truncate,
  // trim) and clears it.
}

void LogManager::SetMasterCheckpoint(Lsn lsn) {
  OIR_CRASH_POINT("wal.master.set");
  MutexLock l(mu_);
  master_ckpt_ = lsn;
  if (lsn < durable_lsn_) durable_master_ckpt_ = lsn;
  Status s = PersistMasterLocked();
  OIR_CHECK(s.ok());
}

Lsn LogManager::master_checkpoint() const {
  MutexLock l(mu_);
  return master_ckpt_;
}

void LogManager::DiscardPrefix(Lsn lsn) {
  OIR_CRASH_POINT("wal.discard_prefix");
  // Every LSN's file offset changes across a trim, so nothing may be in
  // flight while the file is rewritten.
  QuiescePipeline();
  {
    MutexLock l(mu_);
    if (lsn > trim_base_ + kHeaderSize) {
      Lsn limit = trim_base_ + buf_.size();
      if (lsn > limit) lsn = limit;
      const size_t drop = lsn - trim_base_;
      buf_.erase(0, drop);
      trim_base_ = lsn;
      if (fd_ >= 0) {
        // Rewrite the file: new header with the trim base, then the
        // retained bytes. Log truncation is rare (checkpoint-driven), so a
        // full rewrite is acceptable.
        std::string header("OIRLOGF1", 8);
        PutFixed64(&header, trim_base_);
        PutFixed64(&header, 0);
        OIR_CHECK(::pwrite(fd_, header.data(), header.size(), 0) ==
                  static_cast<ssize_t>(header.size()));
        OIR_CHECK(::pwrite(fd_, buf_.data(), buf_.size(), 24) ==
                  static_cast<ssize_t>(buf_.size()));
        OIR_CHECK(::ftruncate(fd_, 24 + buf_.size()) == 0);
        OIR_CHECK(::fdatasync(fd_) == 0);
        file_synced_ = trim_base_ + buf_.size();
        file_header_ = header;
      }
      if (submitted_lsn_ < trim_base_) submitted_lsn_ = trim_base_;
    }
    quiescing_ = false;
  }
  flush_cv_.NotifyAll();
}

Lsn LogManager::trim_lsn() const {
  MutexLock l(mu_);
  return trim_base_ > kHeaderSize ? trim_base_ : kHeaderSize;
}

Lsn LogManager::durable_lsn() const {
  MutexLock l(mu_);
  return durable_lsn_;
}

Lsn LogManager::tail_lsn() const {
  MutexLock l(mu_);
  return trim_base_ + buf_.size();
}

Status LogManager::ReadRecord(Lsn lsn, LogRecord* rec, Lsn* next_lsn) const {
  MutexLock l(mu_);
  if (lsn < kHeaderSize || lsn < trim_base_ ||
      lsn - trim_base_ + 8 > buf_.size()) {
    return Status::InvalidArgument("lsn out of range");
  }
  const size_t off = lsn - trim_base_;
  uint32_t len = DecodeFixed32(buf_.data() + off);
  uint32_t stored_crc = crc32c::Unmask(DecodeFixed32(buf_.data() + off + 4));
  if (off + 8 + len > buf_.size()) {
    return Status::Corruption("truncated log record");
  }
  const char* payload = buf_.data() + off + 8;
  if (crc32c::Value(payload, len) != stored_crc) {
    return Status::Corruption("log record crc mismatch");
  }
  OIR_RETURN_IF_ERROR(LogRecord::DecodeFrom(Slice(payload, len), rec));
  rec->lsn = lsn;
  if (next_lsn != nullptr) *next_lsn = lsn + 8 + len;
  return Status::OK();
}

LogManager::Iterator::Iterator(const LogManager* log, Lsn start, Lsn limit)
    : log_(log), lsn_(start), next_lsn_(start), limit_(limit), valid_(false) {
  ReadCurrent();
}

void LogManager::Iterator::ReadCurrent() {
  valid_ = false;
  if (lsn_ >= limit_) return;
  Status s = log_->ReadRecord(lsn_, &rec_, &next_lsn_);
  if (!s.ok()) return;  // torn tail or corruption: stop
  valid_ = true;
}

void LogManager::Iterator::Next() {
  OIR_DCHECK(valid_);
  lsn_ = next_lsn_;
  ReadCurrent();
}

LogManager::Iterator LogManager::Scan(Lsn start, Lsn limit) const {
  Lsn lim = limit;
  if (lim == kInvalidLsn) lim = tail_lsn();
  if (start < kHeaderSize) start = kHeaderSize;
  return Iterator(this, start, lim);
}

void LogManager::SimulateCrash() {
  // Drain the pipeline first: a physically in-flight segment either
  // completes before the "power-off" line below (advancing durability —
  // legitimately, its fsync finished) or, when the fault-injection flag is
  // set, completes without effect. Either way nothing can land after the
  // truncate.
  QuiescePipeline();
  {
    MutexLock l(mu_);
    if (durable_lsn_ > trim_base_) {
      buf_.resize(durable_lsn_ - trim_base_);
    }
    // No in-flight flush can complete past the crash point.
    if (requested_lsn_ > durable_lsn_) requested_lsn_ = durable_lsn_;
    // Only a checkpoint whose record was durable survives the crash.
    master_ckpt_ = durable_master_ckpt_;
    if (fd_ >= 0 && durable_lsn_ >= trim_base_) {
      // Cut the file at the durability boundary: written-but-unacked
      // segment bytes (including O_DIRECT sector padding) must not be
      // resurrected by a reopen.
      const off_t len = static_cast<off_t>(FileOffsetLocked(durable_lsn_));
      OIR_CHECK(::ftruncate(fd_, len) == 0);
      OIR_CHECK(::fdatasync(fd_) == 0);
    }
    if (file_synced_ > durable_lsn_) file_synced_ = durable_lsn_;
    quiescing_ = false;
  }
  flush_cv_.NotifyAll();
}

uint64_t LogManager::TotalBytesAppended() const {
  MutexLock l(mu_);
  return trim_base_ + buf_.size() - kHeaderSize;
}

}  // namespace oir
