#include "wal/log_record.h"

#include "util/coding.h"
#include "util/logging.h"

namespace oir {

namespace {

void EncodeRebuildProgress(std::string* dst, const RebuildProgressInfo& rp) {
  uint8_t flags = 0;
  if (rp.active) flags |= 1;
  if (rp.done) flags |= 2;
  if (rp.has_cursor) flags |= 4;
  dst->push_back(static_cast<char>(flags));
  PutLengthPrefixedSlice(dst, rp.cursor);
  PutFixed64(dst, rp.leaves_rebuilt);
  PutFixed64(dst, rp.top_actions);
  PutFixed64(dst, rp.transactions);
  PutFixed32(dst, rp.new_page_hwm);
}

bool DecodeRebuildProgress(Slice* input, RebuildProgressInfo* rp) {
  if (input->empty()) return false;
  uint8_t flags = static_cast<uint8_t>((*input)[0]);
  input->remove_prefix(1);
  rp->active = (flags & 1) != 0;
  rp->done = (flags & 2) != 0;
  rp->has_cursor = (flags & 4) != 0;
  Slice cursor;
  if (!GetLengthPrefixedSlice(input, &cursor)) return false;
  rp->cursor = cursor.ToString();
  uint64_t v64;
  uint32_t v32;
  if (!GetFixed64(input, &v64)) return false;
  rp->leaves_rebuilt = v64;
  if (!GetFixed64(input, &v64)) return false;
  rp->top_actions = v64;
  if (!GetFixed64(input, &v64)) return false;
  rp->transactions = v64;
  if (!GetFixed32(input, &v32)) return false;
  rp->new_page_hwm = v32;
  return true;
}

}  // namespace

const char* LogTypeName(LogType t) {
  switch (t) {
    case LogType::kInvalid:
      return "Invalid";
    case LogType::kBeginTxn:
      return "BeginTxn";
    case LogType::kCommitTxn:
      return "CommitTxn";
    case LogType::kAbortTxn:
      return "AbortTxn";
    case LogType::kEndTxn:
      return "EndTxn";
    case LogType::kInsert:
      return "Insert";
    case LogType::kDelete:
      return "Delete";
    case LogType::kBatchInsert:
      return "BatchInsert";
    case LogType::kBatchDelete:
      return "BatchDelete";
    case LogType::kKeyCopy:
      return "KeyCopy";
    case LogType::kAlloc:
      return "Alloc";
    case LogType::kDealloc:
      return "Dealloc";
    case LogType::kFormatPage:
      return "FormatPage";
    case LogType::kSetPrevLink:
      return "SetPrevLink";
    case LogType::kSetNextLink:
      return "SetNextLink";
    case LogType::kMetaRoot:
      return "MetaRoot";
    case LogType::kNtaEnd:
      return "NtaEnd";
    case LogType::kFreePage:
      return "FreePage";
    case LogType::kKeyCopyUndo:
      return "KeyCopyUndo";
    case LogType::kCheckpoint:
      return "Checkpoint";
    case LogType::kRebuildProgress:
      return "RebuildProgress";
  }
  return "Unknown";
}

bool LogRecord::IsPageUpdate() const {
  switch (type) {
    case LogType::kInsert:
    case LogType::kDelete:
    case LogType::kBatchInsert:
    case LogType::kBatchDelete:
    case LogType::kKeyCopy:  // updates target pages (multi-page record)
    case LogType::kKeyCopyUndo:
    case LogType::kFormatPage:
    case LogType::kSetPrevLink:
    case LogType::kSetNextLink:
    case LogType::kMetaRoot:
      return true;
    default:
      return false;
  }
}

void LogRecord::EncodeTo(std::string* dst) const {
  // Fixed header. The sizes here determine the per-record overhead that the
  // paper's batching amortizes; see Section 4.3.
  dst->push_back(static_cast<char>(type));
  dst->push_back(is_clr ? 1 : 0);
  PutFixed64(dst, txn_id);
  PutFixed64(dst, prev_lsn);
  PutFixed32(dst, page_id);
  PutFixed64(dst, old_page_lsn);
  PutFixed64(dst, undo_next);

  switch (type) {
    case LogType::kInsert:
    case LogType::kDelete:
      PutFixed16(dst, level);
      PutFixed16(dst, pos);
      PutLengthPrefixedSlice(dst, row);
      break;
    case LogType::kBatchInsert:
    case LogType::kBatchDelete:
      PutFixed16(dst, level);
      PutFixed16(dst, pos);
      PutVarint32(dst, static_cast<uint32_t>(rows.size()));
      for (const std::string& r : rows) PutLengthPrefixedSlice(dst, r);
      break;
    case LogType::kKeyCopy:
    case LogType::kKeyCopyUndo:
      PutVarint32(dst, static_cast<uint32_t>(copies.size()));
      for (const KeyCopyEntry& e : copies) {
        PutFixed32(dst, e.src_page);
        PutFixed32(dst, e.tgt_page);
        PutFixed16(dst, e.src_first);
        PutFixed16(dst, e.src_last);
        PutFixed16(dst, e.tgt_first);
        PutFixed64(dst, e.src_ts);
      }
      break;
    case LogType::kFormatPage:
      PutFixed16(dst, level);
      PutFixed32(dst, prev_page);
      PutFixed32(dst, next_page);
      break;
    case LogType::kSetPrevLink:
    case LogType::kSetNextLink:
    case LogType::kMetaRoot:
      PutFixed32(dst, link_old);
      PutFixed32(dst, link_new);
      break;
    case LogType::kAlloc:
    case LogType::kDealloc:
    case LogType::kFreePage:
      PutVarint32(dst, static_cast<uint32_t>(pages.size()));
      for (PageId p : pages) PutFixed32(dst, p);
      break;
    case LogType::kCheckpoint:
      PutFixed32(dst, ckpt_end_page);
      PutFixed64(dst, ckpt_next_txn_id);
      PutVarint32(dst, static_cast<uint32_t>(ckpt_allocated.size()));
      for (PageId p : ckpt_allocated) PutFixed32(dst, p);
      PutVarint32(dst, static_cast<uint32_t>(ckpt_deallocated.size()));
      for (PageId p : ckpt_deallocated) PutFixed32(dst, p);
      PutVarint32(dst, static_cast<uint32_t>(ckpt_txns.size()));
      for (const CheckpointTxn& t : ckpt_txns) {
        PutFixed64(dst, t.txn_id);
        PutFixed64(dst, t.last_lsn);
      }
      EncodeRebuildProgress(dst, rebuild_progress);
      break;
    case LogType::kRebuildProgress:
      EncodeRebuildProgress(dst, rebuild_progress);
      break;
    default:
      break;  // control records have no payload
  }
}

Status LogRecord::DecodeFrom(Slice input, LogRecord* rec) {
  *rec = LogRecord();
  if (input.size() < 2) return Status::Corruption("log record too short");
  rec->type = static_cast<LogType>(input[0]);
  rec->is_clr = input[1] != 0;
  input.remove_prefix(2);
  uint64_t v64;
  uint32_t v32;
  uint16_t v16;
  if (!GetFixed64(&input, &v64)) return Status::Corruption("txn_id");
  rec->txn_id = v64;
  if (!GetFixed64(&input, &v64)) return Status::Corruption("prev_lsn");
  rec->prev_lsn = v64;
  if (!GetFixed32(&input, &v32)) return Status::Corruption("page_id");
  rec->page_id = v32;
  if (!GetFixed64(&input, &v64)) return Status::Corruption("old_page_lsn");
  rec->old_page_lsn = v64;
  if (!GetFixed64(&input, &v64)) return Status::Corruption("undo_next");
  rec->undo_next = v64;

  switch (rec->type) {
    case LogType::kInsert:
    case LogType::kDelete: {
      if (!GetFixed16(&input, &v16)) return Status::Corruption("level");
      rec->level = v16;
      if (!GetFixed16(&input, &v16)) return Status::Corruption("pos");
      rec->pos = v16;
      Slice r;
      if (!GetLengthPrefixedSlice(&input, &r)) {
        return Status::Corruption("row");
      }
      rec->row = r.ToString();
      break;
    }
    case LogType::kBatchInsert:
    case LogType::kBatchDelete: {
      if (!GetFixed16(&input, &v16)) return Status::Corruption("level");
      rec->level = v16;
      if (!GetFixed16(&input, &v16)) return Status::Corruption("pos");
      rec->pos = v16;
      uint32_t n;
      if (!GetVarint32(&input, &n)) return Status::Corruption("nrows");
      rec->rows.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        Slice r;
        if (!GetLengthPrefixedSlice(&input, &r)) {
          return Status::Corruption("batch row");
        }
        rec->rows.push_back(r.ToString());
      }
      break;
    }
    case LogType::kKeyCopy:
    case LogType::kKeyCopyUndo: {
      uint32_t n;
      if (!GetVarint32(&input, &n)) return Status::Corruption("ncopies");
      rec->copies.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        KeyCopyEntry e;
        if (!GetFixed32(&input, &e.src_page) ||
            !GetFixed32(&input, &e.tgt_page) ||
            !GetFixed16(&input, &e.src_first) ||
            !GetFixed16(&input, &e.src_last) ||
            !GetFixed16(&input, &e.tgt_first) ||
            !GetFixed64(&input, &e.src_ts)) {
          return Status::Corruption("keycopy entry");
        }
        rec->copies.push_back(e);
      }
      break;
    }
    case LogType::kFormatPage:
      if (!GetFixed16(&input, &v16)) return Status::Corruption("level");
      rec->level = v16;
      if (!GetFixed32(&input, &v32)) return Status::Corruption("prev");
      rec->prev_page = v32;
      if (!GetFixed32(&input, &v32)) return Status::Corruption("next");
      rec->next_page = v32;
      break;
    case LogType::kSetPrevLink:
    case LogType::kSetNextLink:
    case LogType::kMetaRoot:
      if (!GetFixed32(&input, &v32)) return Status::Corruption("link_old");
      rec->link_old = v32;
      if (!GetFixed32(&input, &v32)) return Status::Corruption("link_new");
      rec->link_new = v32;
      break;
    case LogType::kAlloc:
    case LogType::kDealloc:
    case LogType::kFreePage: {
      uint32_t n;
      if (!GetVarint32(&input, &n)) return Status::Corruption("npages");
      rec->pages.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        if (!GetFixed32(&input, &v32)) return Status::Corruption("page list");
        rec->pages.push_back(v32);
      }
      break;
    }
    case LogType::kCheckpoint: {
      if (!GetFixed32(&input, &v32)) return Status::Corruption("ckpt end");
      rec->ckpt_end_page = v32;
      if (!GetFixed64(&input, &v64)) return Status::Corruption("ckpt txnid");
      rec->ckpt_next_txn_id = v64;
      uint32_t n;
      if (!GetVarint32(&input, &n)) return Status::Corruption("ckpt nalloc");
      for (uint32_t i = 0; i < n; ++i) {
        if (!GetFixed32(&input, &v32)) return Status::Corruption("ckpt a");
        rec->ckpt_allocated.push_back(v32);
      }
      if (!GetVarint32(&input, &n)) return Status::Corruption("ckpt ndealloc");
      for (uint32_t i = 0; i < n; ++i) {
        if (!GetFixed32(&input, &v32)) return Status::Corruption("ckpt d");
        rec->ckpt_deallocated.push_back(v32);
      }
      if (!GetVarint32(&input, &n)) return Status::Corruption("ckpt ntxn");
      for (uint32_t i = 0; i < n; ++i) {
        CheckpointTxn t;
        if (!GetFixed64(&input, &v64)) return Status::Corruption("ckpt tid");
        t.txn_id = v64;
        if (!GetFixed64(&input, &v64)) return Status::Corruption("ckpt tlsn");
        t.last_lsn = v64;
        rec->ckpt_txns.push_back(t);
      }
      if (!DecodeRebuildProgress(&input, &rec->rebuild_progress)) {
        return Status::Corruption("ckpt rebuild progress");
      }
      break;
    }
    case LogType::kRebuildProgress:
      if (!DecodeRebuildProgress(&input, &rec->rebuild_progress)) {
        return Status::Corruption("rebuild progress");
      }
      break;
    default:
      break;
  }
  return Status::OK();
}

}  // namespace oir
