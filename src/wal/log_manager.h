#ifndef OIR_WAL_LOG_MANAGER_H_
#define OIR_WAL_LOG_MANAGER_H_

// Append-only write-ahead log. LSNs are byte offsets of records within the
// log stream. The log is kept in memory with an explicit durability
// boundary (`durable_lsn`): FlushTo() advances it, and SimulateCrash()
// discards everything beyond it — modeling the durability contract of a
// real log device for crash-recovery testing without an actual reboot.
//
// Record framing: [len:4][masked crc32c:4][payload]. A failed CRC or a
// truncated frame marks the end of the recoverable log (torn tail).
//
// Group commit: with group commit enabled, FlushTo() callers enqueue their
// target LSN and block on a condition variable while a dedicated flusher
// thread performs one batched write+fsync that covers every waiter in the
// group — committers pay one fsync per group, not one per transaction.
// File-backed logs enable it by default; SetGroupCommit() toggles it (and
// can force it for an in-memory log, where the "fsync" is a no-op, to
// exercise the protocol in tests).

#include <atomic>
#include <string>
#include <thread>

#include "storage/buffer_manager.h"  // for LogFlusher
#include "sync/mutex.h"
#include "util/status.h"
#include "util/types.h"
#include "wal/log_record.h"

namespace oir {

// Per-transaction logging context: identifies the owner and carries the
// prevLSN chain. Handed out by Transaction; defined here so lower layers
// (space manager, B+-tree) can log without depending on the txn module.
struct TxnContext {
  TxnId txn_id = kInvalidTxnId;
  Lsn last_lsn = kInvalidLsn;
  // LSN of the transaction's begin record. Logging is lazy: the begin
  // record is appended immediately before the transaction's first real
  // record, so a read-only transaction writes no log at all (and its
  // commit needs no flush).
  Lsn begin_lsn = kInvalidLsn;
};

class LogManager : public LogFlusher {
 public:
  // In-memory log (tests, benchmarks; crash simulation via SimulateCrash).
  LogManager();
  ~LogManager() override;

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  // File-backed log: records become durable in `path` when flushed, and a
  // sidecar `path.master` holds the master checkpoint pointer. Open reads
  // any existing content (surviving a real process restart); pass
  // truncate=true to start fresh.
  static Status Open(const std::string& path, bool truncate,
                     std::unique_ptr<LogManager>* out);

  // Serializes `rec`, chaining it to ctx->last_lsn, and advances
  // ctx->last_lsn to the new record's LSN (also stored in rec->lsn).
  Lsn Append(LogRecord* rec, TxnContext* ctx);

  // Appends a record not belonging to any transaction chain.
  Lsn AppendSystem(LogRecord* rec);

  // Durability. FlushTo returns once the record at `lsn` is durable; under
  // group commit the calling thread may ride on a flush another committer
  // triggered.
  Status FlushTo(Lsn lsn) override;
  Status FlushAll();
  Lsn durable_lsn() const;

  // Toggles group commit. On by default for file-backed logs (Open); off
  // for in-memory logs, where a flush is cheap enough to do synchronously —
  // pass true to force the grouped protocol there (tests, benchmarks).
  void SetGroupCommit(bool on);
  bool group_commit() const;

  // LSN one past the last appended record (exclusive end of log).
  Lsn tail_lsn() const;

  // LSN of the first readable record (advances when the log is trimmed).
  Lsn head_lsn() const { return trim_lsn(); }

  // Random access read of the record at `lsn`. If `next_lsn` is non-null it
  // receives the LSN of the following record.
  Status ReadRecord(Lsn lsn, LogRecord* rec, Lsn* next_lsn = nullptr) const;

  // Forward scan. Stops cleanly at the torn tail.
  class Iterator {
   public:
    bool Valid() const { return valid_; }
    const LogRecord& record() const { return rec_; }
    Lsn lsn() const { return lsn_; }
    void Next();

   private:
    friend class LogManager;
    Iterator(const LogManager* log, Lsn start, Lsn limit);
    void ReadCurrent();

    const LogManager* log_;
    Lsn lsn_;
    Lsn next_lsn_;
    Lsn limit_;
    bool valid_;
    LogRecord rec_;
  };

  // Iterates records in [start, limit). limit = kInvalidLsn means tail.
  Iterator Scan(Lsn start, Lsn limit = kInvalidLsn) const;

  // ---- checkpoints ----
  // Records the location of the most recent complete checkpoint (the
  // "master record"). Survives a crash only if `lsn` is durable by then.
  void SetMasterCheckpoint(Lsn lsn);
  Lsn master_checkpoint() const;

  // Reclaims the log before `lsn` (exclusive): records below it become
  // unreadable and their memory is released. The caller must ensure no
  // checkpoint or active transaction needs them (see Db::Checkpoint).
  void DiscardPrefix(Lsn lsn);

  // First readable LSN (head of the retained log).
  Lsn trim_lsn() const;

  // Crash simulation: discard all records beyond the durability boundary.
  void SimulateCrash();

  // Fault injection: while set, every flush that would need to advance the
  // durability boundary fails with IOError (records already durable still
  // report success). Lock-free — crash-point handlers flip it from inside
  // arbitrary component critical sections to model the log device dying at
  // the instant of the crash. Cleared by the test harness before recovery.
  void SetFailFlushes(bool on) {
    fail_flushes_.store(on, std::memory_order_relaxed);
  }
  bool fail_flushes() const {
    return fail_flushes_.load(std::memory_order_relaxed);
  }

  // Total bytes appended (the Table 1 "log space" metric).
  uint64_t TotalBytesAppended() const;

 private:
  static constexpr Lsn kHeaderSize = 16;  // so that the first LSN != 0

  // Appends a pre-encoded payload: takes mu_ only for the buffer append
  // (serialization and CRC are done by the caller, outside the lock).
  Lsn AppendEncoded(LogRecord* rec, const std::string& payload);
  // Appends [file_synced_, tail) to the file and syncs it.
  Status PersistLocked() OIR_REQUIRES(mu_);
  // Rewrites the sidecar master record.
  Status PersistMasterLocked() OIR_REQUIRES(mu_);

  // Group-commit machinery. The flusher thread sleeps on flush_cv_ until a
  // waiter raises requested_lsn_ past durable_lsn_, then persists the whole
  // tail under mu_ and wakes every waiter via flushed_cv_. Errors are
  // published through an epoch counter so only the waiters of the failed
  // round (and later) see them.
  void FlusherLoop();
  Status FlushToLocked(Lsn lsn) OIR_REQUIRES(mu_);

  int fd_ = -1;                  // file-backed mode when >= 0
  std::string path_;

  std::atomic<bool> fail_flushes_{false};

  mutable Mutex mu_;
  // LSN up to which the file is written and synced.
  Lsn file_synced_ OIR_GUARDED_BY(mu_) = 0;
  bool group_commit_ OIR_GUARDED_BY(mu_) = false;
  bool stop_flusher_ OIR_GUARDED_BY(mu_) = false;
  // Highest tail any waiter needs.
  Lsn requested_lsn_ OIR_GUARDED_BY(mu_) = 0;
  // Bumped on each failed flush round.
  uint64_t flush_err_seq_ OIR_GUARDED_BY(mu_) = 0;
  Status last_flush_error_ OIR_GUARDED_BY(mu_);
  CondVar flush_cv_;    // wakes the flusher
  CondVar flushed_cv_;  // wakes FlushTo waiters
  // Started lazily by SetGroupCommit, joined (unlocked) by the destructor
  // after stop_flusher_ is set — never touched concurrently, so unguarded.
  std::thread flusher_;
  // Log bytes from trim_lsn_ on, preceded by header padding; buf_[i] holds
  // the byte at LSN trim_base_ + i.
  std::string buf_ OIR_GUARDED_BY(mu_);
  Lsn trim_base_ OIR_GUARDED_BY(mu_) = 0;  // LSN of buf_[0]
  // Exclusive: bytes [0, durable_lsn_) are durable.
  Lsn durable_lsn_ OIR_GUARDED_BY(mu_);
  Lsn master_ckpt_ OIR_GUARDED_BY(mu_) = kInvalidLsn;
  // Value that survives a crash.
  Lsn durable_master_ckpt_ OIR_GUARDED_BY(mu_) = kInvalidLsn;
};

}  // namespace oir

#endif  // OIR_WAL_LOG_MANAGER_H_
