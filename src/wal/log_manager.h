#ifndef OIR_WAL_LOG_MANAGER_H_
#define OIR_WAL_LOG_MANAGER_H_

// Append-only write-ahead log. LSNs are byte offsets of records within the
// log stream. The log is kept in memory with an explicit durability
// boundary (`durable_lsn`): FlushTo() advances it, and SimulateCrash()
// discards everything beyond it — modeling the durability contract of a
// real log device for crash-recovery testing without an actual reboot.
//
// Record framing: [len:4][masked crc32c:4][payload]. A failed CRC or a
// truncated frame marks the end of the recoverable log (torn tail).
//
// Durable path (group commit): FlushTo() callers enqueue their target LSN
// and block on a condition variable; a dedicated thread makes the log
// durable and wakes them. Two implementations share that protocol:
//
//   * Pipelined segment writer (default, WalOptions::pipeline) — the
//     in-memory log tail is carved into bounded segments. The sealer
//     thread copies [submitted_lsn, end) out of the buffer under the mutex
//     (no I/O inside the critical section), hands the segment to an
//     AsyncLogWriter (io_uring or a pwrite+fdatasync pool, async_io.h),
//     and keeps sealing: up to `inflight_segments` segments overlap their
//     writes and syncs. durable_lsn advances only when the *front* of the
//     inflight queue completes, so it is always a contiguous stable
//     prefix; waiters are woken on completion, not on submission.
//   * Legacy blocking flusher (pipeline=false, kept for before/after
//     benchmarking) — one batched write+fsync per round, performed while
//     holding the log mutex.
//
// File-backed logs enable group commit by default; SetGroupCommit()
// toggles it (and can force it for an in-memory log, where the pipeline
// completes segments without physical I/O, to exercise the protocol — and
// its crash points — in tests).

#include <atomic>
#include <deque>
#include <string>
#include <thread>

#include "storage/async_io.h"
#include "storage/buffer_manager.h"  // for LogFlusher
#include "sync/mutex.h"
#include "util/status.h"
#include "util/types.h"
#include "wal/log_record.h"

namespace oir {

// Per-transaction logging context: identifies the owner and carries the
// prevLSN chain. Handed out by Transaction; defined here so lower layers
// (space manager, B+-tree) can log without depending on the txn module.
struct TxnContext {
  TxnId txn_id = kInvalidTxnId;
  Lsn last_lsn = kInvalidLsn;
  // LSN of the transaction's begin record. Logging is lazy: the begin
  // record is appended immediately before the transaction's first real
  // record, so a read-only transaction writes no log at all (and its
  // commit needs no flush).
  Lsn begin_lsn = kInvalidLsn;
};

// Durable-path tuning. Fixed at construction/Open.
struct WalOptions {
  // Use the pipelined segment writer for group commit; false restores the
  // legacy one-round-at-a-time blocking flusher (ablation/"before" bench).
  bool pipeline = true;

  // Maximum bytes per sealed segment. Smaller segments cut commit-ack
  // latency; larger ones amortize the per-sync cost.
  uint32_t segment_bytes = 256 * 1024;

  // Maximum sealed-but-not-yet-durable segments in flight at the backend.
  uint32_t inflight_segments = 4;

  // Group-commit micro-batch window in microseconds (file-backed logs):
  // once a commit demands a flush, the sealer holds the seal open this
  // long so concurrently arriving commits join the same segment — k
  // device rounds become one at the cost of one window of added ack
  // latency. 0 seals immediately on demand.
  uint32_t group_window_us = 100;

  // I/O backend and force discipline for file-backed logs (async_io.h).
  WalBackend backend = WalBackend::kAuto;
  WalSyncMode sync_mode = WalSyncMode::kFdatasync;
};

class LogManager : public LogFlusher {
 public:
  // In-memory log (tests, benchmarks; crash simulation via SimulateCrash).
  explicit LogManager(const WalOptions& wal = WalOptions());
  ~LogManager() override;

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  // File-backed log: records become durable in `path` when flushed, and a
  // sidecar `path.master` holds the master checkpoint pointer. Open reads
  // any existing content (surviving a real process restart); pass
  // truncate=true to start fresh. OIR_WAL_BACKEND / OIR_WAL_SYNC override
  // wal.backend / wal.sync_mode (CI forces the portable fallback this way).
  static Status Open(const std::string& path, bool truncate,
                     std::unique_ptr<LogManager>* out,
                     const WalOptions& wal = WalOptions());

  // Serializes `rec`, chaining it to ctx->last_lsn, and advances
  // ctx->last_lsn to the new record's LSN (also stored in rec->lsn).
  Lsn Append(LogRecord* rec, TxnContext* ctx);

  // Appends a record not belonging to any transaction chain.
  Lsn AppendSystem(LogRecord* rec);

  // Durability. FlushTo returns once the record at `lsn` is durable; under
  // group commit the calling thread rides on a segment completion (or, in
  // legacy mode, on a flush another committer triggered).
  Status FlushTo(Lsn lsn) override;
  Status FlushAll();
  Lsn durable_lsn() const;

  // Toggles group commit. On by default for file-backed logs (Open); off
  // for in-memory logs, where a flush is cheap enough to do synchronously —
  // pass true to force the grouped protocol there (tests, benchmarks).
  void SetGroupCommit(bool on);
  bool group_commit() const;

  // Effective durable-path configuration (after runtime probes/fallbacks).
  bool pipeline_enabled() const { return wal_opts_.pipeline; }
  uint32_t segment_bytes() const { return wal_opts_.segment_bytes; }
  uint32_t inflight_segments() const { return wal_opts_.inflight_segments; }
  const char* backend_name() const;
  const char* sync_mode_name() const;

  // LSN one past the last appended record (exclusive end of log).
  Lsn tail_lsn() const;

  // LSN of the first readable record (advances when the log is trimmed).
  Lsn head_lsn() const { return trim_lsn(); }

  // Random access read of the record at `lsn`. If `next_lsn` is non-null it
  // receives the LSN of the following record.
  Status ReadRecord(Lsn lsn, LogRecord* rec, Lsn* next_lsn = nullptr) const;

  // Forward scan. Stops cleanly at the torn tail.
  class Iterator {
   public:
    bool Valid() const { return valid_; }
    const LogRecord& record() const { return rec_; }
    Lsn lsn() const { return lsn_; }
    void Next();

   private:
    friend class LogManager;
    Iterator(const LogManager* log, Lsn start, Lsn limit);
    void ReadCurrent();

    const LogManager* log_;
    Lsn lsn_;
    Lsn next_lsn_;
    Lsn limit_;
    bool valid_;
    LogRecord rec_;
  };

  // Iterates records in [start, limit). limit = kInvalidLsn means tail.
  Iterator Scan(Lsn start, Lsn limit = kInvalidLsn) const;

  // ---- checkpoints ----
  // Records the location of the most recent complete checkpoint (the
  // "master record"). Survives a crash only if `lsn` is durable by then.
  void SetMasterCheckpoint(Lsn lsn);
  Lsn master_checkpoint() const;

  // Reclaims the log before `lsn` (exclusive): records below it become
  // unreadable and their memory is released. The caller must ensure no
  // checkpoint or active transaction needs them (see Db::Checkpoint).
  // Quiesces the pipeline first: the file offsets of every LSN change.
  void DiscardPrefix(Lsn lsn);

  // First readable LSN (head of the retained log).
  Lsn trim_lsn() const;

  // Crash simulation: discard all records beyond the durability boundary.
  // Drains in-flight segments first (their completions land before the
  // "power-off" line or not at all — see SetFailFlushes), then truncates
  // both the buffer and, for file-backed logs, the file, so a subsequent
  // Open cannot resurrect post-crash bytes.
  void SimulateCrash();

  // Fault injection: while set, every flush that would need to advance the
  // durability boundary fails with IOError (records already durable still
  // report success), and no in-flight segment completion may advance it
  // either. Lock-free — crash-point handlers flip it from inside arbitrary
  // component critical sections to model the log device dying at the
  // instant of the crash. Cleared by the test harness before recovery
  // (after SimulateCrash has drained the pipeline).
  void SetFailFlushes(bool on) {
    fail_flushes_.store(on, std::memory_order_relaxed);
  }
  bool fail_flushes() const {
    return fail_flushes_.load(std::memory_order_relaxed);
  }

  // Total bytes appended (the Table 1 "log space" metric).
  uint64_t TotalBytesAppended() const;

 private:
  static constexpr Lsn kHeaderSize = 16;  // so that the first LSN != 0
  static constexpr Lsn kFileHeaderSize = 24;

  // Appends a pre-encoded payload: takes mu_ only for the buffer append
  // (serialization and CRC are done by the caller, outside the lock).
  Lsn AppendEncoded(LogRecord* rec, const std::string& payload);
  // Appends [file_synced_, tail) to the file and syncs it (legacy path).
  Status PersistLocked() OIR_REQUIRES(mu_);
  // Rewrites the sidecar master record.
  Status PersistMasterLocked() OIR_REQUIRES(mu_);

  // Shared waiter protocol (both flusher implementations). The dedicated
  // thread sleeps on flush_cv_ until a waiter raises requested_lsn_ past
  // the already-covered boundary, makes the log durable, and wakes every
  // waiter via flushed_cv_. Errors are published through an epoch counter
  // so only the waiters of the failed round (and later) see them.
  void FlusherLoop();   // legacy: one blocking write+fsync round under mu_
  void PipelineLoop();  // sealer: copy under mu_, I/O at the async backend
  Status FlushToLocked(Lsn lsn) OIR_REQUIRES(mu_);

  // Pipeline internals.
  struct Segment {
    uint64_t seq = 0;
    Lsn begin = 0;
    Lsn end = 0;       // exclusive; durable_lsn_ advances here on success
    bool done = false;
    Status status;
  };
  // AsyncLogWriter completion callback (backend thread).
  void OnSegmentComplete(uint64_t seq, Status s);
  // Pops completed segments off the front of inflight_, advancing
  // durable_lsn_ (unless fail_flushes_ is set) and publishing errors.
  void CompleteSegmentsLocked() OIR_REQUIRES(mu_);
  // Builds the (offset, bytes) submission for [begin, end); O_DIRECT mode
  // sector-aligns the range, materializing leading bytes from the header/
  // buffer and zero-padding the tail (zeros never parse as a valid frame).
  void BuildSegmentLocked(Lsn begin, Lsn end, uint64_t* offset,
                          std::string* data) const OIR_REQUIRES(mu_);
  // Stops the sealer from submitting and waits until nothing is in flight
  // (the backend drained and every completion was processed). Caller must
  // not hold mu_.
  void QuiescePipeline();
  // Record an acked commit for the exact group-size accounting.
  void AckLocked() OIR_REQUIRES(mu_);
  // Bytes in the file for LSN x (file layout: 24-byte header + body).
  Lsn FileOffsetLocked(Lsn lsn) const OIR_REQUIRES(mu_) {
    return kFileHeaderSize + (lsn - trim_base_);
  }

  int fd_ = -1;                  // file-backed mode when >= 0
  std::string path_;
  WalOptions wal_opts_;          // effective after Open's probes
  std::unique_ptr<AsyncLogWriter> writer_;  // file pipeline backend

  std::atomic<bool> fail_flushes_{false};

  mutable Mutex mu_;
  // LSN up to which the file is written and synced.
  Lsn file_synced_ OIR_GUARDED_BY(mu_) = 0;
  bool group_commit_ OIR_GUARDED_BY(mu_) = false;
  bool stop_flusher_ OIR_GUARDED_BY(mu_) = false;
  // Highest tail any waiter needs.
  Lsn requested_lsn_ OIR_GUARDED_BY(mu_) = 0;
  // Bumped on each failed flush round.
  uint64_t flush_err_seq_ OIR_GUARDED_BY(mu_) = 0;
  Status last_flush_error_ OIR_GUARDED_BY(mu_);
  CondVar flush_cv_;    // wakes the flusher/sealer
  CondVar flushed_cv_;  // wakes FlushTo waiters and QuiescePipeline
  // Started lazily by SetGroupCommit, joined (unlocked) by the destructor
  // after stop_flusher_ is set — never touched concurrently, so unguarded.
  std::thread flusher_;
  // Log bytes from trim_lsn_ on, preceded by header padding; buf_[i] holds
  // the byte at LSN trim_base_ + i.
  std::string buf_ OIR_GUARDED_BY(mu_);
  Lsn trim_base_ OIR_GUARDED_BY(mu_) = 0;  // LSN of buf_[0]
  // Exclusive: bytes [0, durable_lsn_) are durable.
  Lsn durable_lsn_ OIR_GUARDED_BY(mu_);
  Lsn master_ckpt_ OIR_GUARDED_BY(mu_) = kInvalidLsn;
  // Value that survives a crash.
  Lsn durable_master_ckpt_ OIR_GUARDED_BY(mu_) = kInvalidLsn;

  // ---- pipeline state ----
  // Boundary up to which segments have been sealed (>= durable_lsn_).
  Lsn submitted_lsn_ OIR_GUARDED_BY(mu_) = 0;
  std::deque<Segment> inflight_ OIR_GUARDED_BY(mu_);
  uint64_t next_seg_seq_ OIR_GUARDED_BY(mu_) = 1;
  // Sealing suppressed while a quiesce (crash sim, trim, shutdown) runs.
  bool quiescing_ OIR_GUARDED_BY(mu_) = false;
  // File offset one past the last submitted segment's sector padding; an
  // O_DIRECT seal whose first sector would overlap it must wait (two
  // in-flight writes to one sector could land in either order).
  uint64_t padded_end_off_ OIR_GUARDED_BY(mu_) = 0;
  // Mirror of the 24-byte file header, for O_DIRECT leading-byte fill.
  std::string file_header_ OIR_GUARDED_BY(mu_);
  // Exact group-size accounting: durable_adv_seq_ bumps on every durable
  // advance; commits acked under the same seq form one group.
  uint64_t durable_adv_seq_ OIR_GUARDED_BY(mu_) = 0;
  uint64_t last_group_seq_ OIR_GUARDED_BY(mu_) = 0;
};

}  // namespace oir

#endif  // OIR_WAL_LOG_MANAGER_H_
