#ifndef OIR_TESTING_CRASH_POINT_H_
#define OIR_TESTING_CRASH_POINT_H_

// Deterministic crash-point registry for fault-injection testing.
//
// Subsystems mark interesting interleaving points with
// OIR_CRASH_POINT("wal.flush.pre"): when the registry is disabled (the
// default, and the only state production code ever sees) the macro costs a
// single relaxed atomic load and a predicted branch — the same pattern as
// the obs timers and the trace ring. When enabled, every hit is counted per
// name, and one (name, hit ordinal) pair can be armed with a handler that
// fires exactly once when that hit occurs.
//
// The handler runs on whatever thread reached the point, possibly while
// that thread holds component mutexes (the WAL mutex, a buffer-pool shard
// mutex, the space-map mutex). It must therefore only flip lock-free flags
// — LogManager::SetFailFlushes, FaultInjectingDisk::CutPower — never call
// back into a locking API. The crash-sweep harness (sweep.h) follows this
// "power cut" discipline.
//
// Naming convention: "<subsystem>.<operation>.<step>", e.g.
// "rebuild.copy.keycopy_logged" or "txn.commit.pre_flush". The sweep
// reproduces a failure with OIR_TEST_SEED=<seed> OIR_CRASH_POINT=<name>#<hit>.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sync/mutex.h"

namespace oir::fault {

class CrashPointRegistry {
 public:
  static CrashPointRegistry& Get();

  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  // Enabling starts counting hits; disabling returns every OIR_CRASH_POINT
  // to its one-branch cost. Counts and the armed point are left untouched.
  static void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Called by OIR_CRASH_POINT when enabled. `name` must be a string literal
  // (it is stored by value in the count map).
  void Hit(const char* name);

  // Arms hit number `hit_index` (0-based) of `name`: when that hit occurs,
  // `handler` is invoked exactly once, on the hitting thread. Re-arming
  // replaces the previous armed point and clears the fired latch.
  void Arm(const std::string& name, uint64_t hit_index,
           std::function<void()> handler);
  void Disarm();

  // True once the armed handler has fired.
  bool triggered() const;

  // Per-name hit counts since the last ResetCounts, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> Snapshot() const;
  void ResetCounts();

  // Registry state (enabled/armed/fired + per-name counts) as a JSON
  // value, for the flight recorder's crash-point provider.
  std::string DumpJson() const;

  // Parses "name" or "name#hit" (the format the sweep prints for
  // reproduction). Returns false on a malformed hit ordinal.
  static bool ParseSpec(const std::string& spec, std::string* name,
                        uint64_t* hit);

 private:
  CrashPointRegistry() = default;

  static std::atomic<bool> enabled_;

  mutable Mutex mu_;
  std::map<std::string, uint64_t> counts_ OIR_GUARDED_BY(mu_);
  bool armed_ OIR_GUARDED_BY(mu_) = false;
  bool fired_ OIR_GUARDED_BY(mu_) = false;
  std::string armed_name_ OIR_GUARDED_BY(mu_);
  uint64_t armed_hit_ OIR_GUARDED_BY(mu_) = 0;
  std::function<void()> handler_ OIR_GUARDED_BY(mu_);
};

}  // namespace oir::fault

// Marks a crash point. One relaxed load + branch when the registry is
// disabled; `name` must be a string literal.
#define OIR_CRASH_POINT(name)                                \
  do {                                                       \
    if (::oir::fault::CrashPointRegistry::enabled()) {       \
      ::oir::fault::CrashPointRegistry::Get().Hit(name);     \
    }                                                        \
  } while (0)

#endif  // OIR_TESTING_CRASH_POINT_H_
