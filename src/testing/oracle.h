#ifndef OIR_TESTING_ORACLE_H_
#define OIR_TESTING_ORACLE_H_

// Recovery oracle: structural invariants that must hold in any quiescent
// state — in particular immediately after restart recovery, no matter which
// crash point the previous incarnation died at.
//
// On top of BTree::Validate (key order within and across leaves, separator
// bounds, prev/next leaf-chain integrity, reachability) it checks the
// page-lifecycle and top-action invariants of the paper:
//
//  * no page carries a leftover SPLIT / SHRINK / OLDPGOFSPLIT bit — every
//    top action either completed (bits cleared) or was undone;
//  * no page sits in deallocated limbo — deallocated pages are freed at
//    top-action/transaction commit, by rollback, or by restart recovery
//    (Section 4.1.3 / three-state lifecycle);
//  * the space map and the tree agree: every allocated data page is
//    reachable from the root, and vice versa.
//
// Callers must be quiescent (no concurrent writers), same as Validate.

#include "btree/btree.h"
#include "space/space_manager.h"
#include "storage/buffer_manager.h"
#include "util/status.h"

namespace oir::fault {

// Verifies the invariants above. `stats` (optional) receives the tree
// stats collected by the embedded Validate pass.
Status CheckInvariants(BTree* tree, SpaceManager* space, BufferManager* bm,
                       TreeStats* stats = nullptr);

}  // namespace oir::fault

#endif  // OIR_TESTING_ORACLE_H_
