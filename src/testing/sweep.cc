#include "testing/sweep.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "core/db.h"
#include "core/index.h"
#include "obs/flight_recorder.h"
#include "testing/crash_point.h"
#include "testing/fault_disk.h"
#include "testing/oracle.h"
#include "util/random.h"

namespace oir::fault {
namespace {

// Fixed-width decimal key, sortable; rid == the numeric id.
std::string SweepKey(uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%012llu",
                static_cast<unsigned long long>(n));
  return std::string(buf);
}

// One workload execution: the database, the fault disk wrapped around its
// media, the committed-operations model, and the transactions abandoned at
// the crash. Zombies stay alive until after CrashAndRecover — the
// transaction manager's active table holds raw pointers to them until
// ResetAfterCrash.
struct WorkloadRun {
  std::unique_ptr<Db> db;
  FaultInjectingDisk* fdisk = nullptr;
  std::set<uint64_t> committed;  // exact committed key set (rid == id)
  // Last disposition of every key the writer ever touched ("committed-
  // insert", "zombie-delete", ...), for the oracle's failure diagnostics:
  // an extra key whose history says "committed-delete" is a lost redo,
  // while "zombie-insert" is a missed undo. Writer-thread only.
  std::map<uint64_t, const char*> history;
  std::vector<std::unique_ptr<Transaction>> zombies;
  // Outcome of the concurrent online rebuild: an error status is expected
  // whenever the power cut hits it; `rebuild_result` is filled in
  // incrementally, so its transaction count is valid even on failure.
  Status rebuild_status;
  RebuildResult rebuild_result;
};

Status OpenDb(const SweepWorkloadOptions& opts, WorkloadRun* run) {
  DbOptions dopts;
  dopts.page_size = 2048;
  // Generous pool: the whole working set stays cached, so no eviction
  // write-back races the power cut (evictions post-cut would surface as
  // spurious errors on reader paths instead of the writer/rebuild paths
  // the sweep is probing).
  dopts.buffer_pool_pages = 4096;
  dopts.initial_disk_pages = 64;
  dopts.wrap_disk = [run](std::unique_ptr<Disk> base) {
    auto wrapped = std::make_unique<FaultInjectingDisk>(std::move(base));
    run->fdisk = wrapped.get();
    return wrapped;
  };
  OIR_RETURN_IF_ERROR(Db::Open(dopts, &run->db));
  run->db->log_manager()->SetGroupCommit(opts.group_commit);
  // Post-cut a thread can strand logical locks (its transaction is
  // abandoned, never rolled back until recovery); a short wait timeout
  // turns any thread blocked behind one into a prompt Aborted instead of
  // the 10 s default.
  run->db->lock_manager()->set_wait_timeout(std::chrono::milliseconds(500));
  return Status::OK();
}

// Runs preload + (writer ∥ rebuild ∥ reader) to completion or crash. Never
// fails hard: operation errors either abort the transaction (no fault
// fired yet — e.g. a logical-lock timeout victim) or abandon it as a
// zombie (the crash has happened; rollback must be recovery's job).
void RunThreads(const SweepWorkloadOptions& opts, WorkloadRun* run) {
  Db* db = run->db.get();
  Index* index = db->index();
  auto& reg = CrashPointRegistry::Get();

  // --- preload (one transaction; in the model only if commit succeeds,
  // since an armed early crash point can fire right here) ---
  {
    auto txn = db->BeginTxn();
    bool failed = false;
    for (uint64_t i = 0; i < opts.preload_keys; ++i) {
      if (!index->Insert(txn.get(), SweepKey(i), i).ok()) {
        failed = true;
        break;
      }
    }
    if (!failed && db->Commit(txn.get()).ok()) {
      for (uint64_t i = 0; i < opts.preload_keys; ++i) {
        run->committed.insert(i);
        run->history[i] = "committed-insert(preload)";
      }
    } else {
      run->zombies.push_back(std::move(txn));
      for (uint64_t i = 0; i < opts.preload_keys; ++i) {
        run->history[i] = "zombie-insert(preload)";
      }
    }
  }

  std::atomic<bool> stop{false};
  std::vector<std::unique_ptr<Transaction>> writer_zombies, reader_zombies;

  std::thread writer([&]() {
    Random rng(opts.seed);
    uint64_t next_key = opts.preload_keys;
    for (uint32_t op = 0; op < opts.writer_ops; ++op) {
      if (reg.triggered()) break;
      if (opts.checkpoint_midway && op == opts.writer_ops / 2) {
        (void)db->Checkpoint();  // errors fine: fault may already have fired
      }

      auto txn = db->BeginTxn();
      // Staged effects, applied to the model only on successful commit.
      std::vector<uint64_t> ins, del;
      std::set<uint64_t> del_set;
      Status st;

      if (!run->committed.empty() && rng.OneIn(25)) {
        // Contiguous range delete (~30 keys): empties adjacent leaves to
        // provoke shrink top actions alongside the rebuild.
        auto it = run->committed.lower_bound(rng.Uniform(next_key));
        if (it == run->committed.end()) it = run->committed.begin();
        for (int i = 0; i < 30 && it != run->committed.end(); ++i, ++it) {
          del.push_back(*it);
        }
        for (uint64_t id : del) {
          st = index->Delete(txn.get(), SweepKey(id), id);
          if (!st.ok()) break;
        }
      } else {
        // Small mixed transaction: 1–4 inserts/deletes.
        uint32_t n = 1 + static_cast<uint32_t>(rng.Uniform(4));
        for (uint32_t i = 0; i < n && st.ok(); ++i) {
          bool do_delete = !run->committed.empty() && rng.OneIn(3);
          if (do_delete) {
            auto it = run->committed.lower_bound(rng.Uniform(next_key));
            while (it != run->committed.end() && del_set.count(*it)) ++it;
            if (it == run->committed.end()) do_delete = false;
            if (do_delete) {
              del_set.insert(*it);
              del.push_back(*it);
              st = index->Delete(txn.get(), SweepKey(*it), *it);
              continue;
            }
          }
          uint64_t id = next_key++;
          ins.push_back(id);
          st = index->Insert(txn.get(), SweepKey(id), id);
        }
      }

      auto note = [&](const char* ins_disp, const char* del_disp) {
        for (uint64_t id : ins) run->history[id] = ins_disp;
        for (uint64_t id : del) run->history[id] = del_disp;
      };
      if (!st.ok()) {
        if (reg.triggered()) {
          note("zombie-insert(op-failed)", "zombie-delete(op-failed)");
          writer_zombies.push_back(std::move(txn));
          break;
        }
        // Lock-timeout victim (or similar): roll back and move on.
        if (!db->Abort(txn.get()).ok()) {
          note("zombie-insert(abort-failed)", "zombie-delete(abort-failed)");
          writer_zombies.push_back(std::move(txn));
        } else {
          note("aborted-insert", "aborted-delete");
        }
        continue;
      }

      if (rng.OneIn(8)) {
        // Deliberate abort: exercises rollback racing the rebuild.
        if (!db->Abort(txn.get()).ok()) {
          note("zombie-insert(abort-failed)", "zombie-delete(abort-failed)");
          writer_zombies.push_back(std::move(txn));
        } else {
          note("aborted-insert", "aborted-delete");
        }
        continue;
      }

      if (db->Commit(txn.get()).ok()) {
        for (uint64_t id : ins) {
          run->committed.insert(id);
          run->history[id] = "committed-insert";
        }
        for (uint64_t id : del) {
          run->committed.erase(id);
          run->history[id] = "committed-delete";
        }
      } else {
        // A failed commit is ambiguous (record appended, flush failed):
        // only recovery may decide it. Abandon.
        note("zombie-insert(commit-failed)", "zombie-delete(commit-failed)");
        writer_zombies.push_back(std::move(txn));
        if (reg.triggered()) break;
      }
    }
  });

  std::thread rebuilder([&]() {
    RebuildOptions r;
    r.ntasize = opts.rebuild_ntasize;
    r.xactsize = opts.rebuild_xactsize;
    r.io_pages = 2;
    r.progress_interval_txns = opts.rebuild_progress_interval;
    r.max_foreground_degradation_pct = opts.rebuild_throttle_pct;
    // Error status expected whenever the fault fires mid-rebuild; the
    // rebuild transaction becomes a loser for recovery to clean up, and
    // oracle 4 checks the durable resume point it left behind.
    run->rebuild_status = index->RebuildOnline(r, &run->rebuild_result);
  });

  std::thread reader([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      auto txn = db->BeginTxn();
      auto cur = index->NewCursor(txn.get());
      Status s = cur->SeekToFirst();
      while (s.ok() && cur->Valid()) s = cur->Next();
      cur.reset();
      if (!db->Commit(txn.get()).ok()) {
        reader_zombies.push_back(std::move(txn));
      }
    }
  });

  writer.join();
  rebuilder.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  for (auto& z : writer_zombies) run->zombies.push_back(std::move(z));
  for (auto& z : reader_zombies) run->zombies.push_back(std::move(z));
}

std::string ReproLine(const SweepWorkloadOptions& opts,
                      const std::string& point, uint64_t hit) {
  // Every knob that shapes the workload appears here; the sweep tests read
  // them all back from the environment, so the printed command replays the
  // failing iteration exactly.
  std::ostringstream os;
  os << "repro: OIR_TEST_SEED=" << opts.seed
     << " OIR_SWEEP_PROGRESS_INTERVAL=" << opts.rebuild_progress_interval
     << " OIR_SWEEP_THROTTLE=" << opts.rebuild_throttle_pct
     << " OIR_CRASH_POINT=" << point << "#" << hit << " ./crash_sweep_test";
  return os.str();
}

Status Fail(const SweepWorkloadOptions& opts, const std::string& point,
            uint64_t hit, const std::string& why) {
  std::ostringstream os;
  os << "crash sweep failed at " << point << "#" << hit << " (seed "
     << opts.seed << "): " << why << "; " << ReproLine(opts, point, hit);
  // Pair the repro string with a diagnostic bundle: stats, trace ring,
  // wait profile and crash-point counts as they looked at the failure.
  std::string bundle;
  if (obs::FlightRecorder::Get().DumpNow("sweep_failure:" + point, &bundle)) {
    os << "; flight record: " << bundle;
  }
  return Status::Corruption(os.str());
}

// Exact-state oracle: a full scan of `run.db` equals the committed model.
// On mismatch the symmetric difference is reported, each key annotated
// with its workload disposition — an extra key last seen as
// "committed-delete" is a lost redo; one last seen as "zombie-insert" is a
// missed undo.
Status ExactStateOracle(const SweepWorkloadOptions& opts,
                        const std::string& point, uint64_t hit,
                        const WorkloadRun& run, const char* when) {
  Db* db = run.db.get();
  auto txn = db->BeginTxn();
  auto cur = db->index()->NewCursor(txn.get());
  std::set<uint64_t> scanned;
  bool malformed = false;
  Status s = cur->SeekToFirst();
  while (s.ok() && cur->Valid()) {
    uint64_t rid = cur->rid();
    if (cur->user_key().ToString() != SweepKey(rid)) malformed = true;
    scanned.insert(rid);
    s = cur->Next();
  }
  if (!s.ok()) {
    return Fail(opts, point, hit, std::string(when) + " scan: " + s.ToString());
  }
  if (malformed || scanned != run.committed) {
    auto disposition = [&run](uint64_t id) -> std::string {
      auto it = run.history.find(id);
      return it == run.history.end() ? "never-touched" : it->second;
    };
    std::ostringstream why;
    why << when << " tree != committed model (" << scanned.size()
        << " scanned vs " << run.committed.size() << " committed)";
    if (malformed) why << "; key/rid mismatch seen";
    int listed = 0;
    for (uint64_t id : scanned) {
      if (run.committed.count(id)) continue;
      why << "; extra " << id << " [" << disposition(id) << "]";
      if (++listed >= 8) break;
    }
    for (uint64_t id : run.committed) {
      if (scanned.count(id)) continue;
      why << "; missing " << id << " [" << disposition(id) << "]";
      if (++listed >= 16) break;
    }
    return Fail(opts, point, hit, why.str());
  }
  cur.reset();
  s = db->Commit(txn.get());
  if (!s.ok()) {
    return Fail(opts, point, hit,
                std::string(when) + " scan txn commit: " + s.ToString());
  }
  return Status::OK();
}

}  // namespace

Status EnumerateCrashPoints(
    const SweepWorkloadOptions& opts,
    std::vector<std::pair<std::string, uint64_t>>* points) {
  WorkloadRun run;
  OIR_RETURN_IF_ERROR(OpenDb(opts, &run));
  auto& reg = CrashPointRegistry::Get();
  reg.Disarm();
  reg.ResetCounts();
  CrashPointRegistry::SetEnabled(true);
  RunThreads(opts, &run);
  CrashPointRegistry::SetEnabled(false);
  *points = reg.Snapshot();
  return Status::OK();
}

Status RunCrashIteration(const SweepWorkloadOptions& opts,
                         const std::string& point, uint64_t hit,
                         CrashIterationResult* result) {
  *result = CrashIterationResult();
  WorkloadRun run;
  OIR_RETURN_IF_ERROR(OpenDb(opts, &run));

  LogManager* log = run.db->log_manager();
  FaultInjectingDisk* fdisk = run.fdisk;
  auto& reg = CrashPointRegistry::Get();
  reg.ResetCounts();
  // Power-cut handler: may run under component mutexes, so it only flips
  // lock-free flags. From this instant every log flush and disk write
  // fails; in-memory state keeps mutating but none of it becomes durable.
  reg.Arm(point, hit, [log, fdisk]() {
    log->SetFailFlushes(true);
    fdisk->CutPower();
  });
  CrashPointRegistry::SetEnabled(true);
  RunThreads(opts, &run);
  CrashPointRegistry::SetEnabled(false);
  result->triggered = reg.triggered();
  reg.Disarm();

  // Power back on; reboot. The crash line is drawn BEFORE the fail-flush
  // flag clears: SimulateCrash drains the async log pipeline while the
  // flag is still set, so a physically in-flight segment completing in
  // this window cannot advance durability past the power cut (its commits
  // were never acked and must not be resurrected by recovery).
  log->SimulateCrash();
  fdisk->Restore();
  log->SetFailFlushes(false);
  Status s = run.db->CrashAndRecover(&result->recovery);
  run.zombies.clear();  // active-txn table was reset; safe to free
  if (!s.ok()) {
    return Fail(opts, point, hit, "recovery: " + s.ToString());
  }

  Db* db = run.db.get();
  result->committed_keys = run.committed.size();

  // Oracle 1: structural invariants.
  s = CheckInvariants(db->tree(), db->space_manager(), db->buffer_manager());
  if (!s.ok()) {
    return Fail(opts, point, hit, "invariants: " + s.ToString());
  }

  // Oracle 2: the recovered tree holds exactly the committed operations
  // (re-checked by oracle 4 after a resumed rebuild, hence the helper).
  OIR_RETURN_IF_ERROR(
      ExactStateOracle(opts, point, hit, run, "post-recovery"));

  // Oracle 3: the database is live — it accepts new committed work.
  {
    auto txn = db->BeginTxn();
    const uint64_t probe = 999999999999ull;  // outside the workload keyspace
    s = db->index()->Insert(txn.get(), SweepKey(probe), probe);
    if (s.ok()) s = db->index()->Delete(txn.get(), SweepKey(probe), probe);
    if (s.ok()) s = db->Commit(txn.get());
    if (!s.ok()) {
      return Fail(opts, point, hit, "probe transaction: " + s.ToString());
    }
  }

  // Oracle 4: resume correctness. A completed rebuild's done record is
  // flushed before RebuildOnline returns OK, so it must leave nothing
  // pending; a crashed one with committed work must be re-armed from a
  // durable cursor — never from zero — and resuming it must converge to
  // the same committed state.
  result->rebuild_crashed = !run.rebuild_status.ok();
  result->rebuild_committed_txns = run.rebuild_result.transactions;
  if (!result->rebuild_crashed && db->has_pending_rebuild()) {
    return Fail(opts, point, hit,
                "completed rebuild left a pending resume state");
  }
  if (result->rebuild_crashed && result->triggered &&
      opts.rebuild_progress_interval > 0 &&
      run.rebuild_result.transactions > 0 && !db->has_pending_rebuild()) {
    std::ostringstream why;
    why << "crashed rebuild had " << run.rebuild_result.transactions
        << " committed transactions but recovery armed no resume point — "
           "a restart would redo everything from zero";
    return Fail(opts, point, hit, why.str());
  }
  if (db->has_pending_rebuild()) {
    const RebuildProgressInfo before = db->pending_rebuild().progress;
    // Each progress record rides ahead of its transaction's commit record
    // in the WAL, so the flush that committed transaction N also made
    // record N durable: the durable resume point can never trail the
    // committed count. (It may lead it — a record whose own commit died
    // can still reach disk via a concurrent commit's prefix flush, and its
    // NTA-protected copy work survives with it.)
    if (result->triggered && opts.rebuild_progress_interval == 1 &&
        before.transactions < run.rebuild_result.transactions) {
      std::ostringstream why;
      why << "durable resume point lost work: progress record holds "
          << before.transactions << " transactions but the rebuild committed "
          << run.rebuild_result.transactions;
      return Fail(opts, point, hit, why.str());
    }
    if (before.transactions > 0 &&
        (!before.has_cursor || before.cursor.empty())) {
      return Fail(opts, point, hit,
                  "resume point with committed transactions carries no "
                  "cursor — a resume would restart the copy from zero");
    }
    RebuildOptions r;
    r.ntasize = opts.rebuild_ntasize;
    r.xactsize = opts.rebuild_xactsize;
    r.io_pages = 2;
    r.progress_interval_txns = opts.rebuild_progress_interval;
    r.max_foreground_degradation_pct = opts.rebuild_throttle_pct;
    RebuildResult res;
    s = db->ResumeRebuild(r, &res);
    if (!s.ok()) {
      return Fail(opts, point, hit, "resume rebuild: " + s.ToString());
    }
    if (!res.resumed) {
      return Fail(opts, point, hit,
                  "resumed rebuild did not report itself as resumed");
    }
    result->rebuild_resumed = true;
    result->resumed_from_cursor = before.has_cursor && !before.cursor.empty();
    s = CheckInvariants(db->tree(), db->space_manager(),
                        db->buffer_manager());
    if (!s.ok()) {
      return Fail(opts, point, hit, "post-resume invariants: " + s.ToString());
    }
    OIR_RETURN_IF_ERROR(
        ExactStateOracle(opts, point, hit, run, "post-resume"));
  }

  return Status::OK();
}

}  // namespace oir::fault
