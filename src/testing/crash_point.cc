#include "testing/crash_point.h"

#include <cstdlib>

#include "obs/flight_recorder.h"
#include "obs/json.h"

namespace oir::fault {

std::atomic<bool> CrashPointRegistry::enabled_{false};

CrashPointRegistry& CrashPointRegistry::Get() {
  static CrashPointRegistry* instance = new CrashPointRegistry();
  return *instance;
}

void CrashPointRegistry::Hit(const char* name) {
  std::function<void()> fire;
  {
    MutexLock l(mu_);
    uint64_t& count = counts_[name];
    const uint64_t ordinal = count++;
    if (armed_ && !fired_ && ordinal == armed_hit_ && armed_name_ == name) {
      fired_ = true;
      fire = handler_;
    }
  }
  // The handler runs outside mu_ so a handler that re-enters the registry
  // (e.g. to snapshot counts) cannot self-deadlock. It still runs on the
  // hitting thread, which may hold component mutexes — handlers only flip
  // lock-free flags (see the header).
  if (fire) {
    // Snapshot the system as it looked at the trip. Asynchronous by design:
    // this thread may hold component mutexes (WAL, shard, space-map), so
    // only the recorder's leaf trigger mutex may be touched here.
    obs::FlightRecorder::Get().Trigger(std::string("crash_point:") + name);
    fire();
  }
}

std::string CrashPointRegistry::DumpJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  {
    MutexLock l(mu_);
    w.Key("enabled").Value(enabled());
    w.Key("armed").Value(armed_);
    w.Key("fired").Value(fired_);
    w.Key("armed_name").Value(armed_name_);
    w.Key("armed_hit").Value(armed_hit_);
    w.Key("counts").BeginObject();
    for (const auto& [name, count] : counts_) {
      w.Key(name).Value(count);
    }
    w.EndObject();
  }
  w.EndObject();
  return w.str();
}

void CrashPointRegistry::Arm(const std::string& name, uint64_t hit_index,
                             std::function<void()> handler) {
  MutexLock l(mu_);
  armed_ = true;
  fired_ = false;
  armed_name_ = name;
  armed_hit_ = hit_index;
  handler_ = std::move(handler);
}

void CrashPointRegistry::Disarm() {
  MutexLock l(mu_);
  armed_ = false;
  fired_ = false;
  armed_name_.clear();
  handler_ = nullptr;
}

bool CrashPointRegistry::triggered() const {
  MutexLock l(mu_);
  return fired_;
}

std::vector<std::pair<std::string, uint64_t>> CrashPointRegistry::Snapshot()
    const {
  MutexLock l(mu_);
  return {counts_.begin(), counts_.end()};
}

void CrashPointRegistry::ResetCounts() {
  MutexLock l(mu_);
  counts_.clear();
}

bool CrashPointRegistry::ParseSpec(const std::string& spec, std::string* name,
                                   uint64_t* hit) {
  const size_t sep = spec.find('#');
  if (sep == std::string::npos) {
    *name = spec;
    *hit = 0;
    return !spec.empty();
  }
  *name = spec.substr(0, sep);
  if (name->empty() || sep + 1 >= spec.size()) return false;
  char* end = nullptr;
  *hit = std::strtoull(spec.c_str() + sep + 1, &end, 10);
  return end != nullptr && *end == '\0';
}

}  // namespace oir::fault
