#include "testing/oracle.h"

#include <sstream>
#include <vector>

#include "storage/page.h"

namespace oir::fault {

Status CheckInvariants(BTree* tree, SpaceManager* space, BufferManager* bm,
                       TreeStats* stats) {
  TreeStats local;
  TreeStats* st = stats != nullptr ? stats : &local;
  Status s = tree->Validate(st);
  if (!s.ok()) return s;

  // No page may linger in deallocated limbo: commit, rollback, or restart
  // recovery must each have resolved it to free or allocated.
  const uint64_t limbo = space->CountInState(PageState::kDeallocated);
  if (limbo != 0) {
    std::ostringstream os;
    os << "oracle: " << limbo << " page(s) left in deallocated state";
    return Status::Corruption(os.str());
  }

  // Every allocated page must be a live tree page with no leftover
  // top-action bits.
  const std::vector<PageId> allocated =
      space->PagesInState(PageState::kAllocated);
  constexpr uint16_t kSmoBits = kFlagSplit | kFlagShrink | kFlagOldPgOfSplit;
  for (PageId id : allocated) {
    PageRef ref;
    s = bm->Fetch(id, &ref);
    if (!s.ok()) return s;
    ref.latch().LockS();
    const uint16_t flags = ref.header()->flags;
    const uint16_t level = ref.header()->level;
    ref.latch().UnlockS();
    if ((flags & kSmoBits) != 0) {
      std::ostringstream os;
      os << "oracle: page " << id << " has leftover SMO bits (flags=" << flags
         << ")";
      return Status::Corruption(os.str());
    }
    if (level == kInvalidLevel) {
      std::ostringstream os;
      os << "oracle: allocated page " << id << " is not a formatted tree page";
      return Status::Corruption(os.str());
    }
  }

  // The space map and the tree must agree on the set of live pages:
  // Validate counted reachable pages, the space manager counts allocated
  // ones. A mismatch means an orphaned allocation (leak) or a reachable
  // page the space map thinks is free (double-allocation waiting to
  // happen).
  const uint64_t tree_pages = st->num_leaf_pages + st->num_nonleaf_pages;
  if (tree_pages != allocated.size()) {
    std::ostringstream os;
    os << "oracle: tree reaches " << tree_pages << " page(s) but space map has "
       << allocated.size() << " allocated";
    return Status::Corruption(os.str());
  }
  return Status::OK();
}

}  // namespace oir::fault
