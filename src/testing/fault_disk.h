#ifndef OIR_TESTING_FAULT_DISK_H_
#define OIR_TESTING_FAULT_DISK_H_

// Fault-injecting Disk decorator. Wraps any Disk (DbOptions::wrap_disk
// installs it under a Db) and injects the three failure modes the recovery
// design must survive:
//
//  * power cut     — every write after CutPower() fails with IOError and
//                    leaves the media untouched; reads keep working, the
//                    way a restarted machine reads what was durable. This
//                    exercises the WAL constraint for real: a page image
//                    that never reached the device must be reconstructible
//                    from the durable log prefix.
//  * torn write    — the next write covering a chosen page persists only
//                    its first N 512-byte sectors, then the power is lost.
//  * transient I/O — the next K writes fail and then the device heals,
//                    for bounded-retry paths (buffer-pool FlushPage
//                    restores the dirty bit on failure; the WAL group
//                    commit re-raises a failed round on the next FlushTo).
//
// Every injected fault emits a kFaultInjected trace event. All control
// methods only touch atomics (CutPower in particular is called from crash-
// point handlers that may run under component mutexes).

#include <atomic>
#include <cstdint>
#include <memory>

#include "storage/disk.h"
#include "sync/mutex.h"

namespace oir::fault {

enum class FaultKind : uint64_t {
  kPowerCut = 1,
  kTornWrite = 2,
  kTransientError = 3,
};

class FaultInjectingDisk : public Disk {
 public:
  static constexpr uint32_t kSectorSize = 512;

  explicit FaultInjectingDisk(std::unique_ptr<Disk> base);

  // --- fault controls (safe from any thread, lock-free) ---

  // Drops power: every subsequent write or sync fails. Reads still work.
  void CutPower() { power_cut_.store(true, std::memory_order_relaxed); }
  // Heals the device (power restored): writes work again and any pending
  // torn-write / transient-error injection is cancelled.
  void Restore();
  bool power_cut() const {
    return power_cut_.load(std::memory_order_relaxed);
  }

  // The next write covering `page` persists only the first `sectors`
  // sectors of that page's new image (the rest keeps the old bytes) and
  // also cuts the power: earlier pages of the same multi-page transfer are
  // written in full, later ones not at all — a torn multi-sector write.
  void TearNextWrite(PageId page, uint32_t sectors);

  // The next `n` writes fail with IOError; the device then heals itself.
  void FailNextWrites(uint32_t n) {
    fail_writes_.store(n, std::memory_order_relaxed);
  }

  uint64_t injected_faults() const {
    return injected_.load(std::memory_order_relaxed);
  }

  Disk* base() { return base_.get(); }

  // --- Disk interface ---
  Status ReadMulti(PageId first, uint32_t n, char* buf) override;
  Status WriteMulti(PageId first, uint32_t n, const char* buf) override;
  Status Sync() override;
  uint32_t NumPages() const override;
  Status Extend(uint32_t new_num_pages) override;

 private:
  void RecordFault(FaultKind kind, PageId page);

  std::unique_ptr<Disk> base_;
  std::atomic<bool> power_cut_{false};
  std::atomic<uint32_t> fail_writes_{0};
  std::atomic<uint64_t> injected_{0};

  Mutex tear_mu_;
  bool tear_armed_ OIR_GUARDED_BY(tear_mu_) = false;
  PageId tear_page_ OIR_GUARDED_BY(tear_mu_) = kInvalidPageId;
  uint32_t tear_sectors_ OIR_GUARDED_BY(tear_mu_) = 0;
};

}  // namespace oir::fault

#endif  // OIR_TESTING_FAULT_DISK_H_
