#include "testing/fault_disk.h"

#include <cstring>
#include <memory>

#include "obs/trace.h"
#include "util/logging.h"

namespace oir::fault {

FaultInjectingDisk::FaultInjectingDisk(std::unique_ptr<Disk> base)
    : Disk(base->page_size()), base_(std::move(base)) {}

void FaultInjectingDisk::Restore() {
  power_cut_.store(false, std::memory_order_relaxed);
  fail_writes_.store(0, std::memory_order_relaxed);
  MutexLock l(tear_mu_);
  tear_armed_ = false;
}

void FaultInjectingDisk::TearNextWrite(PageId page, uint32_t sectors) {
  OIR_CHECK(sectors < page_size() / kSectorSize);
  MutexLock l(tear_mu_);
  tear_armed_ = true;
  tear_page_ = page;
  tear_sectors_ = sectors;
}

void FaultInjectingDisk::RecordFault(FaultKind kind, PageId page) {
  injected_.fetch_add(1, std::memory_order_relaxed);
  OIR_TRACE(obs::TraceEventType::kFaultInjected, page,
            static_cast<uint64_t>(kind));
}

Status FaultInjectingDisk::ReadMulti(PageId first, uint32_t n, char* buf) {
  // Reads always succeed: a restarted machine can read whatever made it to
  // the platter before the power went out.
  return base_->ReadMulti(first, n, buf);
}

Status FaultInjectingDisk::WriteMulti(PageId first, uint32_t n,
                                      const char* buf) {
  if (power_cut_.load(std::memory_order_relaxed)) {
    RecordFault(FaultKind::kPowerCut, first);
    return Status::IOError("fault injection: power cut");
  }
  uint32_t pending = fail_writes_.load(std::memory_order_relaxed);
  while (pending > 0) {
    if (fail_writes_.compare_exchange_weak(pending, pending - 1,
                                           std::memory_order_relaxed)) {
      RecordFault(FaultKind::kTransientError, first);
      return Status::IOError("fault injection: transient write error");
    }
  }
  {
    MutexLock l(tear_mu_);
    if (tear_armed_ && tear_page_ >= first && tear_page_ < first + n) {
      tear_armed_ = false;
      const uint32_t torn_idx = tear_page_ - first;
      const uint32_t torn_bytes = tear_sectors_ * kSectorSize;
      // Pages before the torn one land in full.
      if (torn_idx > 0) {
        Status s = base_->WriteMulti(first, torn_idx, buf);
        if (!s.ok()) return s;
      }
      // The torn page gets only its leading sectors; the tail keeps the old
      // image (read-modify-write of the stored page).
      if (torn_bytes > 0) {
        std::unique_ptr<char[]> old(new char[page_size()]);
        Status s = base_->ReadPage(tear_page_, old.get());
        if (!s.ok()) return s;
        std::memcpy(old.get(),
                    buf + static_cast<size_t>(torn_idx) * page_size(),
                    torn_bytes);
        s = base_->WritePage(tear_page_, old.get());
        if (!s.ok()) return s;
      }
      // Nothing after the torn sector reaches the device; the power is out.
      power_cut_.store(true, std::memory_order_relaxed);
      RecordFault(FaultKind::kTornWrite, tear_page_);
      return Status::IOError("fault injection: torn write (power lost)");
    }
  }
  return base_->WriteMulti(first, n, buf);
}

Status FaultInjectingDisk::Sync() {
  if (power_cut_.load(std::memory_order_relaxed)) {
    RecordFault(FaultKind::kPowerCut, kInvalidPageId);
    return Status::IOError("fault injection: power cut");
  }
  return base_->Sync();
}

uint32_t FaultInjectingDisk::NumPages() const { return base_->NumPages(); }

Status FaultInjectingDisk::Extend(uint32_t new_num_pages) {
  // Growing the logical device is a metadata operation in this model; it
  // only matters once a write lands, so it is not failed on power cut.
  return base_->Extend(new_num_pages);
}

}  // namespace oir::fault
