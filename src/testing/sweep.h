#ifndef OIR_TESTING_SWEEP_H_
#define OIR_TESTING_SWEEP_H_

// Crash-sweep driver: runs a seeded workload (writer transactions racing an
// online rebuild, with a fuzzy checkpoint midway) against an in-memory
// database wrapped in a FaultInjectingDisk, crashes it at one enumerated
// crash point, recovers, and checks the recovery oracle.
//
// The oracle is exact, not just structural: because a power cut fails every
// flush, a transaction whose Commit() returned OK has a durable commit
// record and must survive recovery, while any transaction whose commit
// failed or never ran is a loser and must be rolled back. The harness keeps
// the set of keys committed by the workload and compares it against a full
// scan of the recovered tree, in addition to CheckInvariants() (oracle.h).
//
// Every failure message embeds a one-command reproduction:
//   OIR_TEST_SEED=<seed> OIR_SWEEP_PROGRESS_INTERVAL=<n> OIR_SWEEP_THROTTLE=<p>
//   OIR_CRASH_POINT=<name>#<hit> ./crash_sweep_test

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "recovery/recovery.h"
#include "util/status.h"

namespace oir::fault {

struct SweepWorkloadOptions {
  // Workload seed (satellite: overridable via OIR_TEST_SEED in tests).
  uint64_t seed = 1;

  // Keys inserted (one committed transaction) before the threads start, so
  // the rebuild has a multi-page tree to move.
  uint32_t preload_keys = 360;

  // Writer-thread transactions raced against the rebuild.
  uint32_t writer_ops = 240;

  // Small rebuild batches => many top-action / transaction boundaries, so
  // the rebuild.* crash points all get hit several times.
  uint32_t rebuild_ntasize = 4;
  uint32_t rebuild_xactsize = 8;

  // Force the WAL group-commit protocol even on the in-memory log, so the
  // wal.flusher.* points participate in the sweep.
  bool group_commit = true;

  // Take one fuzzy checkpoint midway through the writer's run (covers the
  // ckpt.* points and recovery-from-checkpoint).
  bool checkpoint_midway = true;

  // Rebuild progress records every N committed rebuild transactions (0
  // disables them — the pre-resume behavior). Emitted in every repro line
  // and read back from OIR_SWEEP_PROGRESS_INTERVAL by the sweep tests.
  uint32_t rebuild_progress_interval = 1;

  // Admission-control knob for the concurrent rebuild (RebuildOptions::
  // max_foreground_degradation_pct; 0 = unthrottled). Emitted in every
  // repro line and read back from OIR_SWEEP_THROTTLE by the sweep tests.
  uint32_t rebuild_throttle_pct = 0;
};

// Runs the workload to completion with crash-point counting enabled and no
// point armed; returns every (name, hits) pair observed, sorted by name.
// This is the sweep's coverage census: the driver arms hit ordinals drawn
// from these counts.
Status EnumerateCrashPoints(const SweepWorkloadOptions& opts,
                            std::vector<std::pair<std::string, uint64_t>>* points);

// One sweep iteration result. `triggered` is false when the armed (point,
// hit) was never reached — thread scheduling made the workload end first —
// which the driver counts separately but does not fail on.
struct CrashIterationResult {
  bool triggered = false;
  uint64_t committed_keys = 0;  // model size the oracle verified against
  // Resume oracle: disposition of the concurrent online rebuild.
  bool rebuild_crashed = false;         // the rebuild died mid-flight
  uint64_t rebuild_committed_txns = 0;  // its committed transactions
  bool rebuild_resumed = false;         // post-recovery ResumeRebuild ran OK
  bool resumed_from_cursor = false;     // ...from a durable non-empty cursor
  RecoveryStats recovery;
};

// Runs the workload with `point`#`hit` armed as a power cut (log flushes
// fail + disk writes fail), waits for the threads to drain, restores the
// devices, runs crash recovery, and checks the oracle:
//   1. CheckInvariants() — structural: tree valid, no leftover SMO bits, no
//      deallocated limbo pages, space map and tree agree.
//   2. Exact state: a full scan equals the committed-operations model.
//   3. Liveness: the recovered database accepts a probe transaction.
//   4. Resume correctness: a rebuild that died with >= 1 committed
//      transaction must be re-armed from a durable cursor at most one
//      transaction behind its commit count (never from zero); resuming it
//      must succeed and re-establish oracles 1 and 2. A rebuild that
//      completed must leave nothing pending.
// Returns non-OK on any oracle failure, with the repro command embedded in
// the message. Also recovers (and checks) the no-crash case when the armed
// point never fires.
Status RunCrashIteration(const SweepWorkloadOptions& opts,
                         const std::string& point, uint64_t hit,
                         CrashIterationResult* result);

}  // namespace oir::fault

#endif  // OIR_TESTING_SWEEP_H_
