#ifndef OIR_BTREE_NODE_H_
#define OIR_BTREE_NODE_H_

// Row-level operations on B+-tree pages, layered over SlottedPage. Leaf
// rows are composite index keys; non-leaf rows are [child:4][separator].
// These helpers do searching and encoding only — latching and logging are
// the tree's job.

#include <string>

#include "storage/slotted_page.h"
#include "util/slice.h"
#include "util/types.h"

namespace oir::node {

// ---- non-leaf row codec ----

std::string MakeNonLeafRow(PageId child, const Slice& separator);
PageId ChildOf(const Slice& nonleaf_row);
Slice SeparatorOf(const Slice& nonleaf_row);

// ---- leaf searches ----

// First position with row >= key (== nslots if all rows are smaller).
SlotId LeafLowerBound(const SlottedPage& page, const Slice& key);

// Exact match lookup. Returns true and sets *pos if found.
bool LeafFind(const SlottedPage& page, const Slice& key, SlotId* pos);

// ---- non-leaf searches ----

// Index of the child to follow for `key`: the largest i such that i == 0 or
// Separator_i <= key. Page must have at least one row.
SlotId FindChildIdx(const SlottedPage& page, const Slice& key);

// Position at which a new entry [sep, child] belongs: the first position
// p >= 1 whose separator is > sep (== nslots if none).
SlotId FindEntryInsertPos(const SlottedPage& page, const Slice& sep);

// Position of the entry whose child pointer equals `child`, or -1.
int FindChildPos(const SlottedPage& page, PageId child);

}  // namespace oir::node

#endif  // OIR_BTREE_NODE_H_
