#include "btree/node.h"

#include "util/coding.h"
#include "util/logging.h"

namespace oir::node {

std::string MakeNonLeafRow(PageId child, const Slice& separator) {
  std::string row;
  row.reserve(sizeof(PageId) + separator.size());
  char buf[sizeof(PageId)];
  EncodeFixed32(buf, child);
  row.append(buf, sizeof(buf));
  row.append(separator.data(), separator.size());
  return row;
}

PageId ChildOf(const Slice& nonleaf_row) {
  OIR_DCHECK(nonleaf_row.size() >= sizeof(PageId));
  return DecodeFixed32(nonleaf_row.data());
}

Slice SeparatorOf(const Slice& nonleaf_row) {
  OIR_DCHECK(nonleaf_row.size() >= sizeof(PageId));
  return Slice(nonleaf_row.data() + sizeof(PageId),
               nonleaf_row.size() - sizeof(PageId));
}

SlotId LeafLowerBound(const SlottedPage& page, const Slice& key) {
  uint16_t lo = 0;
  uint16_t hi = page.nslots();
  while (lo < hi) {
    uint16_t mid = (lo + hi) / 2;
    if (page.Get(mid).compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool LeafFind(const SlottedPage& page, const Slice& key, SlotId* pos) {
  SlotId p = LeafLowerBound(page, key);
  if (p < page.nslots() && page.Get(p) == key) {
    *pos = p;
    return true;
  }
  return false;
}

SlotId FindChildIdx(const SlottedPage& page, const Slice& key) {
  OIR_DCHECK(page.nslots() >= 1);
  // Binary search rows [1, n) for the first separator > key; the child to
  // follow is at that position minus one.
  uint16_t lo = 1;
  uint16_t hi = page.nslots();
  while (lo < hi) {
    uint16_t mid = (lo + hi) / 2;
    if (SeparatorOf(page.Get(mid)).compare(key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo - 1;
}

SlotId FindEntryInsertPos(const SlottedPage& page, const Slice& sep) {
  uint16_t lo = 1;
  uint16_t hi = page.nslots();
  while (lo < hi) {
    uint16_t mid = (lo + hi) / 2;
    if (SeparatorOf(page.Get(mid)).compare(sep) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int FindChildPos(const SlottedPage& page, PageId child) {
  for (SlotId i = 0; i < page.nslots(); ++i) {
    if (ChildOf(page.Get(i)) == child) return i;
  }
  return -1;
}

}  // namespace oir::node
