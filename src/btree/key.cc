#include "btree/key.h"

#include "util/logging.h"

namespace oir {

std::string MakeIndexKey(const Slice& user_key, RowId rid) {
  OIR_CHECK(user_key.size() <= kMaxUserKeyLen);
  std::string out;
  out.reserve(user_key.size() + sizeof(RowId));
  out.append(user_key.data(), user_key.size());
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((rid >> shift) & 0xff));
  }
  return out;
}

Slice UserKeyOf(const Slice& index_key) {
  OIR_DCHECK(index_key.size() >= sizeof(RowId));
  return Slice(index_key.data(), index_key.size() - sizeof(RowId));
}

RowId RowIdOf(const Slice& index_key) {
  OIR_DCHECK(index_key.size() >= sizeof(RowId));
  const unsigned char* p = reinterpret_cast<const unsigned char*>(
      index_key.data() + index_key.size() - sizeof(RowId));
  RowId rid = 0;
  for (size_t i = 0; i < sizeof(RowId); ++i) {
    rid = (rid << 8) | p[i];
  }
  return rid;
}

std::string MakeSeparator(const Slice& left, const Slice& right) {
  OIR_DCHECK(left.compare(right) < 0);
  // Find the first position where they differ. Since left < right, either
  // left is a proper prefix of right (diff = left.size()) or
  // left[diff] < right[diff].
  size_t diff = 0;
  const size_t min_len = std::min(left.size(), right.size());
  while (diff < min_len && left[diff] == right[diff]) ++diff;
  // The prefix of `right` of length diff+1 is > left and <= right.
  OIR_DCHECK(diff < right.size());
  return std::string(right.data(), diff + 1);
}

}  // namespace oir
