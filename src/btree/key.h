#ifndef OIR_BTREE_KEY_H_
#define OIR_BTREE_KEY_H_

// Key formats.
//
// A secondary-index key is [key value, ROWID] (Section 1). We encode the
// pair as a single byte string — the user key bytes followed by the ROWID
// in big-endian — so that plain memcmp ordering sorts by key value first,
// ROWID second, and duplicates of the same key value are distinct index
// entries. Leaf rows store exactly this composite string.
//
// Non-leaf rows are [child page id (4 bytes, fixed)][separator bytes]. The
// first row of a non-leaf page has an empty separator: a page with n
// children carries n-1 key-value separators (Section 5). Separators are
// produced by suffix compression ("the index manager in ASE uses suffix
// compression", Section 6.4): the separator chosen between two adjacent
// leaf keys L < R is the shortest prefix s of R with L < s <= R, which is
// what makes the paper's 40-byte keys yield ~20-byte non-leaf rows.

#include <string>

#include "util/slice.h"
#include "util/types.h"

namespace oir {

// Maximum user key length accepted by the index (keeps a handful of rows on
// every page even at the minimum page size).
constexpr size_t kMaxUserKeyLen = 80;

// Composite index key: user key bytes ++ big-endian rowid.
std::string MakeIndexKey(const Slice& user_key, RowId rid);

// Decomposition of a composite key.
Slice UserKeyOf(const Slice& index_key);
RowId RowIdOf(const Slice& index_key);

// Shortest separator s with left < s <= right (byte-wise). Requires
// left < right. The result is a prefix of `right`.
std::string MakeSeparator(const Slice& left, const Slice& right);

}  // namespace oir

#endif  // OIR_BTREE_KEY_H_
