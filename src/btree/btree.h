#ifndef OIR_BTREE_BTREE_H_
#define OIR_BTREE_BTREE_H_

// Concurrent B+-tree index manager implementing the protocols of Section 2:
//
//  * doubly linked leaf pages, unlinked non-leaf pages, n-1 separators for
//    n children, suffix-compressed separators;
//  * latch-crabbing traversal with retraversal from the lowest safe page of
//    the remembered path (Section 2.6.1);
//  * leaf split and shrink as nested top actions protected by X address
//    locks and SPLIT/SHRINK bits (Sections 2.2-2.4); blocked operations
//    wait via unconditional instant-duration S locks;
//  * side entries (OLDPGOFSPLIT) on splitting non-leaf pages so concurrent
//    traversals can route around in-flight splits (Section 2.3);
//  * logical undo of leaf inserts/deletes for rollback (ARIES/IM style).
//
// The online rebuild (src/core/rebuild.*) drives the same NTA machinery via
// the RebuildAccess friend interface.

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "btree/key.h"
#include "btree/node.h"
#include "recovery/log_apply.h"
#include "space/space_manager.h"
#include "storage/buffer_manager.h"
#include "sync/lock_manager.h"
#include "sync/mutex.h"
#include "util/status.h"
#include "wal/log_manager.h"

namespace oir {

class Cursor;
class OnlineRebuilder;

// Identity of the operation performing tree work: lock-manager owner id
// plus the logging chain.
struct OpCtx {
  TxnId id = kInvalidTxnId;
  TxnContext* ctx = nullptr;
};

struct TreeStats {
  uint32_t height = 0;           // number of levels (1 = single leaf)
  uint64_t num_leaf_pages = 0;
  uint64_t num_nonleaf_pages = 0;
  uint64_t num_keys = 0;
  uint64_t leaf_bytes_used = 0;
  uint64_t leaf_bytes_capacity = 0;
  uint64_t nonleaf_rows = 0;
  uint64_t nonleaf_row_bytes = 0;
  uint64_t leaf_seq_runs = 0;    // maximal runs of physically consecutive
                                 // leaves in key order (1 = perfectly
                                 // clustered)

  double LeafUtilization() const {
    return leaf_bytes_capacity == 0
               ? 0.0
               : static_cast<double>(leaf_bytes_used) / leaf_bytes_capacity;
  }
  double AvgNonLeafRowBytes() const {
    return nonleaf_rows == 0
               ? 0.0
               : static_cast<double>(nonleaf_row_bytes) / nonleaf_rows;
  }
};

class BTree : public LogicalUndoHook {
 public:
  BTree(BufferManager* bm, LogManager* log, LockManager* locks,
        SpaceManager* space);

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  // Formats the metadata page and an empty root leaf. Run once, inside the
  // bootstrap transaction.
  Status CreateNew(TxnContext* ctx);

  // Loads the root pointer from the metadata page (after restart redo).
  Status Open();

  // Crash simulation: drops transient state (side entries; the root is
  // reloaded by Open()). Side entries never need to survive a crash — the
  // top actions backing them are either complete or undone by recovery.
  void ResetTransient();

  PageId root() const { return root_.load(std::memory_order_acquire); }

  // ---- data operations ----
  // Logical row locks are the caller's concern (Section 2: split, shrink
  // and rebuild never take logical locks; insert/delete/scan take them per
  // isolation level — handled in the Index facade).

  Status Insert(OpCtx op, const Slice& user_key, RowId rid);
  Status Delete(OpCtx op, const Slice& user_key, RowId rid);
  Status Lookup(OpCtx op, const Slice& user_key, RowId rid, bool* found);

  // ---- LogicalUndoHook ----
  Status UndoLeafInsert(TxnContext* ctx, const LogRecord& rec) override;
  Status UndoLeafDelete(TxnContext* ctx, const LogRecord& rec) override;

  // ---- inspection (quiescent: caller ensures no concurrent writers) ----

  // Verifies structural invariants: key order within/across leaves,
  // separator bounds, leaf-chain integrity, reachability. Also fills stats.
  Status Validate(TreeStats* stats) const;
  Status CollectStats(TreeStats* stats) const;

  // Test hook: leftmost leaf page id.
  Status FirstLeaf(PageId* out) const;

  // Human-readable tree dump (quiescent). include_rows prints every leaf
  // row; otherwise leaves are summarized.
  Status Dump(std::string* out, bool include_rows) const;

  // =====================================================================
  // Internal interface — used by the cursor, the online rebuilder and the
  // offline-rebuild baseline. Not meant for applications.
  // =====================================================================

  struct PathEntry {
    PageId page = kInvalidPageId;
    uint16_t level = 0;
    Lsn lsn = kInvalidLsn;
  };
  using Path = std::vector<PathEntry>;

  // Scope of one nested top action: what must be undone/cleaned when it
  // aborts, and what must be cleared/released when it completes.
  struct NtaScope {
    Lsn saved_lsn = kInvalidLsn;
    std::vector<PageId> locked;        // X address locks to release
    std::vector<PageId> bits;          // pages whose flag bits we set
    std::vector<PageId> side_entries;  // pages with a registered side entry
    std::vector<PageId> deallocated;   // pages to free once the action ends
                                       // (shrink frees at top-action commit,
                                       // Section 4.1.3)
  };

  // ---- traversal (Section 2.6) ----
  // On success, *out is pinned and latched: X if writer && level reached is
  // target, else S. `path` accumulates the ancestors visited (for
  // retraversal); it may carry entries from a previous traversal, which are
  // used as safe starting points.
  Status Traverse(OpCtx op, const Slice& key, bool writer,
                  uint16_t target_level, PageRef* out, Path* path);

  // ---- NTA machinery ----
  void BeginNta(OpCtx op, NtaScope* nta);
  // Completes the top action: NtaEnd dummy CLR, clear bits, drop side
  // entries, release address locks. `undo_next_override` replaces the
  // saved LSN in the dummy CLR (used by logical-undo compensation NTAs).
  Status EndNta(OpCtx op, NtaScope* nta, Lsn undo_next_override = kInvalidLsn);
  // Rolls the top action back (failure path) and releases its resources.
  Status AbortNta(OpCtx op, NtaScope* nta);
  void ReleaseNtaResources(OpCtx op, NtaScope* nta);

  // ---- side entries ----
  void SetSideEntry(PageId page, std::string sep, PageId right);
  void EraseSideEntry(PageId page);
  bool GetSideEntry(PageId page, std::string* sep, PageId* right) const;

  // ---- page + logging helpers (page must be X latched by caller) ----
  Lsn LogInsert(OpCtx op, PageRef* page, SlotId pos, const Slice& row,
                uint16_t level);
  Lsn LogDelete(OpCtx op, PageRef* page, SlotId pos, uint16_t level);
  Lsn LogBatchInsert(OpCtx op, PageRef* page, SlotId pos,
                     const std::vector<std::string>& rows, uint16_t level);
  Lsn LogBatchDelete(OpCtx op, PageRef* page, SlotId pos, uint16_t count,
                     uint16_t level);
  Lsn LogSetNextLink(OpCtx op, PageRef* page, PageId next);
  Lsn LogSetPrevLink(OpCtx op, PageRef* page, PageId prev);

  // Allocated-page formatting: Create + X latch + kFormatPage. On return
  // *out is pinned and X latched.
  Status FormatNewPage(OpCtx op, PageId id, uint16_t level, PageId prev,
                       PageId next, PageRef* out);

  // Root pointer update (kMetaRoot) under meta_mu_.
  Status SetRoot(OpCtx op, PageId new_root);

 private:
  friend class Cursor;

  // ---- internal operations on composite keys ----
  Status InsertComposite(OpCtx op, const Slice& composite);
  Status DeleteComposite(OpCtx op, const Slice& composite);

  // Split of a full leaf (consumes `leaf`, which must be X latched). The
  // row that triggered the split is NOT inserted here: structure
  // modification is a nested top action that survives transaction
  // rollback, while the row insert must remain undoable, so the caller
  // retries the insert after the split completes (ARIES/IM style).
  Status LeafSplit(OpCtx op, PageRef leaf, Path* path);

  // Inserts [sep -> child_new] at `level`, splitting upward as needed.
  // `split_old` is the page that was split one level below (to detect the
  // root split case).
  Status PropagateInsert(OpCtx op, NtaScope* nta, uint16_t level,
                         std::string sep, PageId child_new, PageId split_old,
                         Path* path);

  // Removes the last row of `leaf` and unlinks/deallocates it (consumes
  // `leaf`, X latched, nslots == 1).
  Status ShrinkLeaf(OpCtx op, PageRef leaf, const Slice& composite,
                    Path* path);

  // Removes the parent entry of `child_dead` at `level`, shrinking upward
  // as needed. `key_hint` routes the traversal.
  Status PropagateDelete(OpCtx op, NtaScope* nta, uint16_t level,
                         const Slice& key_hint, PageId child_dead, Path* path);

  // Creates a new root [left][sep,right] at child_level + 1.
  Status NewRoot(OpCtx op, NtaScope* nta, PageId left, const Slice& sep,
                 PageId right, uint16_t child_level);

  // Move-right at the leaf level for the boundary race with a completed
  // concurrent split: if `composite` sorts after every row of *leaf and the
  // next leaf's first row is <= composite, hop right. Maintains latch mode.
  Status MoveRightLeaf(OpCtx op, PageRef* leaf, const Slice& composite,
                       bool writer);

  // Validation recursion.
  Status ValidateSubtree(PageId page, uint16_t expected_level,
                         const std::string& low, const std::string& high,
                         bool has_high, TreeStats* stats,
                         std::vector<PageId>* leaves_in_order) const;

  BufferManager* const bm_;
  LogManager* const log_;
  LockManager* const locks_;
  SpaceManager* const space_;

  std::atomic<PageId> root_{kInvalidPageId};
  // Serializes root changes (the root_ atomic itself is lock-free for
  // readers; meta_mu_ orders the meta-page update with the WAL append).
  Mutex meta_mu_;

  mutable Mutex side_mu_;
  std::unordered_map<PageId, std::pair<std::string, PageId>> side_entries_
      OIR_GUARDED_BY(side_mu_);
};

}  // namespace oir

#endif  // OIR_BTREE_BTREE_H_
