#include "btree/btree.h"

#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"
#include "testing/crash_point.h"
#include "util/coding.h"
#include "util/counters.h"
#include "util/logging.h"

namespace oir {

namespace {
constexpr int kMaxTraversalRestarts = 1000000;

bool TraceLinks() {
  static const bool enabled = getenv("OIR_TRACE_LINKS") != nullptr;
  return enabled;
}
}  // namespace

BTree::BTree(BufferManager* bm, LogManager* log, LockManager* locks,
             SpaceManager* space)
    : bm_(bm), log_(log), locks_(locks), space_(space) {}

// --------------------------------------------------------------- lifecycle

Status BTree::CreateNew(TxnContext* ctx) {
  OpCtx op{ctx->txn_id, ctx};
  // Format the metadata page (outside the space manager's managed range).
  PageRef meta;
  OIR_RETURN_IF_ERROR(bm_->Create(kMetaPageId, &meta));
  meta.latch().LockX();
  SlottedPage msp(meta.data(), bm_->page_size());
  msp.Init(kMetaPageId, kInvalidLevel);
  EncodeFixed32(meta.data() + kMetaRootOffset, kInvalidPageId);
  meta.latch().UnlockX();
  meta.MarkDirty();
  meta.Release();

  // Allocate and format the empty root leaf.
  PageId root_id;
  OIR_RETURN_IF_ERROR(space_->Allocate(ctx, &root_id));
  PageRef root;
  OIR_RETURN_IF_ERROR(FormatNewPage(op, root_id, kLeafLevel, kInvalidPageId,
                                    kInvalidPageId, &root));
  root.latch().UnlockX();
  root.Release();
  return SetRoot(op, root_id);
}

Status BTree::Open() {
  PageRef meta;
  OIR_RETURN_IF_ERROR(bm_->Fetch(kMetaPageId, &meta));
  meta.latch().LockS();
  PageId root_id = DecodeFixed32(meta.data() + kMetaRootOffset);
  meta.latch().UnlockS();
  if (root_id == kInvalidPageId) {
    return Status::Corruption("meta page has no root");
  }
  root_.store(root_id, std::memory_order_release);
  return Status::OK();
}

Status BTree::SetRoot(OpCtx op, PageId new_root) {
  MutexLock ml(meta_mu_);
  PageRef meta;
  OIR_RETURN_IF_ERROR(bm_->Fetch(kMetaPageId, &meta));
  meta.latch().LockX();
  LogRecord rec;
  rec.type = LogType::kMetaRoot;
  rec.page_id = kMetaPageId;
  rec.old_page_lsn = meta.header()->page_lsn;
  rec.link_old = DecodeFixed32(meta.data() + kMetaRootOffset);
  rec.link_new = new_root;
  Lsn lsn = log_->Append(&rec, op.ctx);
  EncodeFixed32(meta.data() + kMetaRootOffset, new_root);
  meta.header()->page_lsn = lsn;
  meta.latch().UnlockX();
  meta.MarkDirty();
  root_.store(new_root, std::memory_order_release);
  return Status::OK();
}

void BTree::ResetTransient() {
  MutexLock l(side_mu_);
  side_entries_.clear();
  root_.store(kInvalidPageId, std::memory_order_release);
}

// ---------------------------------------------------------- side entries

void BTree::SetSideEntry(PageId page, std::string sep, PageId right) {
  MutexLock l(side_mu_);
  side_entries_[page] = {std::move(sep), right};
}

void BTree::EraseSideEntry(PageId page) {
  MutexLock l(side_mu_);
  side_entries_.erase(page);
}

bool BTree::GetSideEntry(PageId page, std::string* sep, PageId* right) const {
  MutexLock l(side_mu_);
  auto it = side_entries_.find(page);
  if (it == side_entries_.end()) return false;
  *sep = it->second.first;
  *right = it->second.second;
  return true;
}

// ------------------------------------------------------- logging helpers
// All helpers require the caller to hold the X latch on *page; they append
// the record, apply the change, stamp the pageLSN and mark the frame dirty.

Lsn BTree::LogInsert(OpCtx op, PageRef* page, SlotId pos, const Slice& row,
                     uint16_t level) {
  LogRecord rec;
  rec.type = LogType::kInsert;
  rec.page_id = page->id();
  rec.old_page_lsn = page->header()->page_lsn;
  rec.pos = pos;
  rec.row = row.ToString();
  rec.level = level;
  Lsn lsn = log_->Append(&rec, op.ctx);
  SlottedPage sp(page->data(), bm_->page_size());
  OIR_CHECK(sp.InsertAt(pos, row));
  sp.header()->page_lsn = lsn;
  page->MarkDirty();
  return lsn;
}

Lsn BTree::LogDelete(OpCtx op, PageRef* page, SlotId pos, uint16_t level) {
  SlottedPage sp(page->data(), bm_->page_size());
  LogRecord rec;
  rec.type = LogType::kDelete;
  rec.page_id = page->id();
  rec.old_page_lsn = page->header()->page_lsn;
  rec.pos = pos;
  rec.row = sp.Get(pos).ToString();
  rec.level = level;
  Lsn lsn = log_->Append(&rec, op.ctx);
  sp.DeleteAt(pos);
  sp.header()->page_lsn = lsn;
  page->MarkDirty();
  return lsn;
}

Lsn BTree::LogBatchInsert(OpCtx op, PageRef* page, SlotId pos,
                          const std::vector<std::string>& rows,
                          uint16_t level) {
  LogRecord rec;
  rec.type = LogType::kBatchInsert;
  rec.page_id = page->id();
  rec.old_page_lsn = page->header()->page_lsn;
  rec.pos = pos;
  rec.rows = rows;
  rec.level = level;
  Lsn lsn = log_->Append(&rec, op.ctx);
  SlottedPage sp(page->data(), bm_->page_size());
  for (size_t i = 0; i < rows.size(); ++i) {
    OIR_CHECK(sp.InsertAt(static_cast<SlotId>(pos + i), Slice(rows[i])));
  }
  sp.header()->page_lsn = lsn;
  page->MarkDirty();
  return lsn;
}

Lsn BTree::LogBatchDelete(OpCtx op, PageRef* page, SlotId pos, uint16_t count,
                          uint16_t level) {
  SlottedPage sp(page->data(), bm_->page_size());
  LogRecord rec;
  rec.type = LogType::kBatchDelete;
  rec.page_id = page->id();
  rec.old_page_lsn = page->header()->page_lsn;
  rec.pos = pos;
  rec.level = level;
  rec.rows.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    rec.rows.push_back(sp.Get(static_cast<SlotId>(pos + i)).ToString());
  }
  Lsn lsn = log_->Append(&rec, op.ctx);
  for (uint16_t i = 0; i < count; ++i) sp.DeleteAt(pos);
  sp.header()->page_lsn = lsn;
  page->MarkDirty();
  return lsn;
}

Lsn BTree::LogSetNextLink(OpCtx op, PageRef* page, PageId next) {
  if (TraceLinks()) {
    std::fprintf(stderr, "[txn %llu] next(%u): %u -> %u\n",
                 (unsigned long long)op.id, page->id(),
                 page->header()->next_page, next);
  }
  LogRecord rec;
  rec.type = LogType::kSetNextLink;
  rec.page_id = page->id();
  rec.old_page_lsn = page->header()->page_lsn;
  rec.link_old = page->header()->next_page;
  rec.link_new = next;
  Lsn lsn = log_->Append(&rec, op.ctx);
  page->header()->next_page = next;
  page->header()->page_lsn = lsn;
  page->MarkDirty();
  return lsn;
}

Lsn BTree::LogSetPrevLink(OpCtx op, PageRef* page, PageId prev) {
  if (TraceLinks()) {
    std::fprintf(stderr, "[txn %llu] prev(%u): %u -> %u\n",
                 (unsigned long long)op.id, page->id(),
                 page->header()->prev_page, prev);
  }
  LogRecord rec;
  rec.type = LogType::kSetPrevLink;
  rec.page_id = page->id();
  rec.old_page_lsn = page->header()->page_lsn;
  rec.link_old = page->header()->prev_page;
  rec.link_new = prev;
  Lsn lsn = log_->Append(&rec, op.ctx);
  page->header()->prev_page = prev;
  page->header()->page_lsn = lsn;
  page->MarkDirty();
  return lsn;
}

Status BTree::FormatNewPage(OpCtx op, PageId id, uint16_t level, PageId prev,
                            PageId next, PageRef* out) {
  if (TraceLinks()) {
    std::fprintf(stderr, "[txn %llu] format %u level=%u prev=%u next=%u\n",
                 (unsigned long long)op.id, id, level, prev, next);
  }
  OIR_RETURN_IF_ERROR(bm_->Create(id, out));
  out->latch().LockX();
  LogRecord rec;
  rec.type = LogType::kFormatPage;
  rec.page_id = id;
  rec.level = level;
  rec.prev_page = prev;
  rec.next_page = next;
  Lsn lsn = log_->Append(&rec, op.ctx);
  SlottedPage sp(out->data(), bm_->page_size());
  sp.Init(id, level);
  sp.header()->prev_page = prev;
  sp.header()->next_page = next;
  sp.header()->page_lsn = lsn;
  out->MarkDirty();
  return Status::OK();
}

// ---------------------------------------------------------------- NTAs

void BTree::BeginNta(OpCtx op, NtaScope* nta) {
  nta->saved_lsn = op.ctx->last_lsn;
  nta->locked.clear();
  nta->bits.clear();
  nta->side_entries.clear();
}

void BTree::ReleaseNtaResources(OpCtx op, NtaScope* nta) {
  // Clear flag bits on pages that are still allocated (deallocated pages
  // are unreachable; their bits die with them). Bit changes are not logged
  // and do not bump the pageLSN.
  for (PageId p : nta->bits) {
    if (space_->GetState(p) != PageState::kAllocated) continue;
    PageRef ref;
    Status s = bm_->Fetch(p, &ref);
    if (!s.ok()) continue;
    ref.latch().LockX();
    ref.header()->flags &=
        static_cast<uint16_t>(~(kFlagSplit | kFlagShrink | kFlagOldPgOfSplit));
    ref.latch().UnlockX();
    ref.MarkDirty();
  }
  // Side entries are erased after the OLDPGOFSPLIT bits are cleared, so a
  // traversal that saw the bit under its S latch always finds the entry.
  for (PageId p : nta->side_entries) {
    EraseSideEntry(p);
  }
  for (PageId p : nta->locked) {
    locks_->Unlock(op.id, AddressLockKey(p));
  }
  nta->locked.clear();
  nta->bits.clear();
  nta->side_entries.clear();
}

Status BTree::EndNta(OpCtx op, NtaScope* nta, Lsn undo_next_override) {
  OIR_CRASH_POINT("btree.nta.end.pre");
  LogRecord rec;
  rec.type = LogType::kNtaEnd;
  rec.undo_next = undo_next_override != kInvalidLsn ? undo_next_override
                                                    : nta->saved_lsn;
  log_->Append(&rec, op.ctx);
  OIR_CRASH_POINT("btree.nta.end.post");
  ReleaseNtaResources(op, nta);
  return Status::OK();
}

Status BTree::AbortNta(OpCtx op, NtaScope* nta) {
  OIR_CRASH_POINT("btree.nta.abort");
  if (TraceLinks()) {
    std::fprintf(stderr, "[txn %llu] AbortNta locked=%zu\n",
                 (unsigned long long)op.id, nta->locked.size());
  }
  ApplyContext actx{bm_, space_, log_};
  // Physical undo is safe: the top action still holds its address locks.
  Status s = RollbackTo(&actx, op.ctx, nta->saved_lsn, /*hook=*/nullptr);
  ReleaseNtaResources(op, nta);
  return s;
}

// ------------------------------------------------------------- traversal

Status BTree::Traverse(OpCtx op, const Slice& key, bool writer,
                       uint16_t target_level, PageRef* out, Path* path) {
  static obs::TimerStat* const timer =
      obs::MetricRegistry::Get().Timer("btree.traverse_ns");
  obs::ScopedTimer scope(timer);
  auto& counters = GlobalCounters::Get();
  int restarts = -1;

retraverse:
  ++restarts;
  if (restarts > 0) {
    counters.traversal_restarts.fetch_add(1, std::memory_order_relaxed);
  }
  if (restarts > kMaxTraversalRestarts) {
    return Status::Aborted("traversal restart livelock");
  }

  PageRef cur;
  uint16_t cur_level = 0;
  LatchMode cur_mode = LatchMode::kShared;
  bool have_cur = false;

  // Resume from the deepest safe remembered page (Section 2.6.1). Per the
  // paper, a page is safe only if it is still at the expected level AND
  // "the search key is within the range of key values on it". Identity or
  // pageLSN checks alone would be WRONG: the remembered path may have
  // served a different key, and an untouched page can simply be the wrong
  // subtree for this one (e.g. after an earlier rebuild top action split a
  // neighboring subtree). Keys strictly inside the separator span
  // [Sep_1, Sep_last) are sufficient: a live page's entries always route
  // into live subtrees covering those keys.
  while (!path->empty() && !have_cur) {
    PathEntry pe = path->back();
    path->pop_back();
    if (pe.level <= target_level) continue;
    if (space_->GetState(pe.page) != PageState::kAllocated) continue;
    PageRef ref;
    if (!bm_->Fetch(pe.page, &ref).ok()) continue;
    ref.latch().LockS();
    const PageHeader* h = ref.header();
    bool safe = h->page_id == pe.page && h->level == pe.level &&
                (h->flags & (kFlagShrink | kFlagOldPgOfSplit)) == 0 &&
                h->nslots >= 3;
    if (safe) {
      SlottedPage sp(ref.data(), bm_->page_size());
      Slice lo = node::SeparatorOf(sp.Get(1));
      Slice hi = node::SeparatorOf(sp.Get(h->nslots - 1));
      safe = lo.compare(key) <= 0 && key.compare(hi) < 0;
    }
    if (!safe) {
      ref.latch().UnlockS();
      continue;
    }
    cur = std::move(ref);
    cur_level = pe.level;
    cur_mode = LatchMode::kShared;
    have_cur = true;  // descent re-pushes this page with a fresh LSN
  }

  if (!have_cur) {
    path->clear();
    PageId root_id = root();
    PageRef ref;
    OIR_RETURN_IF_ERROR(bm_->Fetch(root_id, &ref));
    // Guess the latch mode: if the root may be the target, take X for
    // writers. A wrong guess is corrected by restarting.
    ref.latch().LockS();
    if (root_id != root()) {  // root changed while we latched
      ref.latch().UnlockS();
      goto retraverse;
    }
    cur_level = ref.header()->level;
    if (cur_level < target_level) {
      ref.latch().UnlockS();
      return Status::Corruption("target level above root");
    }
    if (writer && cur_level == target_level) {
      // Upgrade by restart-free relatch: drop S, take X, revalidate.
      ref.latch().UnlockS();
      ref.latch().LockX();
      if (root_id != root() || ref.header()->level != target_level) {
        ref.latch().UnlockX();
        goto retraverse;
      }
      cur_mode = LatchMode::kExclusive;
    } else {
      cur_mode = LatchMode::kShared;
    }
    cur = std::move(ref);
    have_cur = true;
  }

  // Descend.
  while (true) {
    // A SHRINK bit blocks both readers and writers (Section 2.4): release
    // the latch and wait for the top action via an unconditional
    // instant-duration S lock. Pages marked by our own in-flight top action
    // (we hold their X address lock) are never waited on — the rebuild's
    // propagation traverses while holding bits on many pages.
    if ((cur.header()->flags & kFlagShrink) != 0 &&
        !locks_->IsHeld(op.id, AddressLockKey(cur.id()), LockMode::kX)) {
      PageId blocked = cur.id();
      cur.latch().Unlock(cur_mode);
      cur.Release();
      counters.blocked_traversals.fetch_add(1, std::memory_order_relaxed);
      OIR_RETURN_IF_ERROR(locks_->LockInstant(
          op.id, AddressLockKey(blocked), LockMode::kS, /*conditional=*/false));
      goto retraverse;
    }

    // Route around an in-flight split of this page (Section 2.3).
    if ((cur.header()->flags & kFlagOldPgOfSplit) != 0) {
      std::string side_sep;
      PageId side_right = kInvalidPageId;
      // The bit cannot be cleared while we hold a latch, so the entry must
      // exist.
      OIR_CHECK(GetSideEntry(cur.id(), &side_sep, &side_right));
      if (key.compare(Slice(side_sep)) >= 0) {
        PageRef sib;
        OIR_RETURN_IF_ERROR(bm_->Fetch(side_right, &sib));
        sib.latch().Lock(cur_mode);
        cur.latch().Unlock(cur_mode);
        cur = std::move(sib);
        continue;  // recheck bits on the sibling
      }
    }

    if (cur_level == target_level) break;

    SlottedPage sp(cur.data(), bm_->page_size());
    SlotId idx = node::FindChildIdx(sp, key);
    PageId child_id = node::ChildOf(sp.Get(idx));
    if (cur_level == 1) {
      counters.level1_visits.fetch_add(1, std::memory_order_relaxed);
    }

    LatchMode child_mode =
        (writer && cur_level - 1 == target_level) ? LatchMode::kExclusive
                                                  : LatchMode::kShared;
    PageRef child;
    OIR_RETURN_IF_ERROR(bm_->Fetch(child_id, &child));
    child.latch().Lock(child_mode);
    // Record the parent in the path, then release it (crabbing).
    path->push_back(PathEntry{cur.id(), cur_level,
                              cur.header()->page_lsn});
    cur.latch().Unlock(cur_mode);
    cur = std::move(child);
    cur_mode = child_mode;
    --cur_level;
  }

  // At the target level. Writers must additionally wait out SPLIT bits
  // (Section 2.2: SPLIT blocks writes, not reads) — unless the bit is our
  // own top action's.
  if (writer && (cur.header()->flags & kFlagSplit) != 0 &&
      !locks_->IsHeld(op.id, AddressLockKey(cur.id()), LockMode::kX)) {
    PageId blocked = cur.id();
    cur.latch().Unlock(cur_mode);
    cur.Release();
    counters.blocked_traversals.fetch_add(1, std::memory_order_relaxed);
    OIR_RETURN_IF_ERROR(locks_->LockInstant(
        op.id, AddressLockKey(blocked), LockMode::kS, /*conditional=*/false));
    goto retraverse;
  }
  *out = std::move(cur);
  return Status::OK();
}

Status BTree::MoveRightLeaf(OpCtx op, PageRef* leaf, const Slice& composite,
                            bool writer) {
  // Boundary race with a completed concurrent leaf split: the key may
  // belong to a right sibling that the parent did not yet show when we
  // descended. Readers may also cross SPLIT-bit pages (reads allowed).
  LatchMode mode = writer ? LatchMode::kExclusive : LatchMode::kShared;
  for (;;) {
    SlottedPage sp(leaf->data(), bm_->page_size());
    if (sp.nslots() > 0 &&
        composite.compare(sp.Get(sp.nslots() - 1)) <= 0) {
      return Status::OK();  // key within this leaf's resident range
    }
    PageId next_id = leaf->header()->next_page;
    if (next_id == kInvalidPageId) return Status::OK();
    PageRef next;
    OIR_RETURN_IF_ERROR(bm_->Fetch(next_id, &next));
    next.latch().Lock(mode);
    uint16_t flags = next.header()->flags;
    if ((flags & kFlagShrink) != 0 || (writer && (flags & kFlagSplit) != 0)) {
      // Blocked on the neighbour: wait and report Busy so the caller
      // retraverses.
      next.latch().Unlock(mode);
      next.Release();
      leaf->latch().Unlock(mode);
      leaf->Release();
      OIR_RETURN_IF_ERROR(locks_->LockInstant(
          op.id, AddressLockKey(next_id), LockMode::kS, /*conditional=*/false));
      return Status::Busy("blocked while moving right");
    }
    SlottedPage nsp(next.data(), bm_->page_size());
    if (nsp.nslots() == 0 || composite.compare(nsp.Get(0)) < 0) {
      // Key belongs at the end of the current leaf.
      next.latch().Unlock(mode);
      return Status::OK();
    }
    leaf->latch().Unlock(mode);
    *leaf = std::move(next);
  }
}

// ------------------------------------------------------------ public ops

Status BTree::Insert(OpCtx op, const Slice& user_key, RowId rid) {
  if (user_key.size() > kMaxUserKeyLen) {
    return Status::InvalidArgument("key too long");
  }
  std::string composite = MakeIndexKey(user_key, rid);
  return InsertComposite(op, Slice(composite));
}

Status BTree::Delete(OpCtx op, const Slice& user_key, RowId rid) {
  if (user_key.size() > kMaxUserKeyLen) {
    return Status::InvalidArgument("key too long");
  }
  std::string composite = MakeIndexKey(user_key, rid);
  return DeleteComposite(op, Slice(composite));
}

Status BTree::Lookup(OpCtx op, const Slice& user_key, RowId rid, bool* found) {
  std::string composite = MakeIndexKey(user_key, rid);
  Path path;
  for (;;) {
    PageRef leaf;
    OIR_RETURN_IF_ERROR(Traverse(op, Slice(composite), /*writer=*/false,
                                 kLeafLevel, &leaf, &path));
    Status s = MoveRightLeaf(op, &leaf, Slice(composite), /*writer=*/false);
    if (s.IsBusy()) continue;
    OIR_RETURN_IF_ERROR(s);
    SlottedPage sp(leaf.data(), bm_->page_size());
    SlotId pos;
    *found = node::LeafFind(sp, Slice(composite), &pos);
    leaf.latch().UnlockS();
    return Status::OK();
  }
}

Status BTree::InsertComposite(OpCtx op, const Slice& composite) {
  Path path;
  for (;;) {
    PageRef leaf;
    OIR_RETURN_IF_ERROR(
        Traverse(op, composite, /*writer=*/true, kLeafLevel, &leaf, &path));
    Status s = MoveRightLeaf(op, &leaf, composite, /*writer=*/true);
    if (s.IsBusy()) continue;
    OIR_RETURN_IF_ERROR(s);

    SlottedPage sp(leaf.data(), bm_->page_size());
    SlotId pos = node::LeafLowerBound(sp, composite);
    if (pos < sp.nslots() && sp.Get(pos) == composite) {
      leaf.latch().UnlockX();
      return Status::InvalidArgument("duplicate index key");
    }
    if (sp.HasRoomFor(static_cast<uint32_t>(composite.size()))) {
      LogInsert(op, &leaf, pos, composite, kLeafLevel);
      leaf.latch().UnlockX();
      return Status::OK();
    }
    // Full: split (a nested top action), then retry the insert — the row
    // insert must stay outside the NTA so rollback can compensate it.
    OIR_RETURN_IF_ERROR(LeafSplit(op, std::move(leaf), &path));
  }
}

Status BTree::DeleteComposite(OpCtx op, const Slice& composite) {
  Path path;
  for (;;) {
    PageRef leaf;
    OIR_RETURN_IF_ERROR(
        Traverse(op, composite, /*writer=*/true, kLeafLevel, &leaf, &path));
    Status s = MoveRightLeaf(op, &leaf, composite, /*writer=*/true);
    if (s.IsBusy()) continue;
    OIR_RETURN_IF_ERROR(s);

    SlottedPage sp(leaf.data(), bm_->page_size());
    SlotId pos;
    if (!node::LeafFind(sp, composite, &pos)) {
      leaf.latch().UnlockX();
      return Status::NotFound("index key not found");
    }
    const bool is_only_leaf = leaf.header()->prev_page == kInvalidPageId &&
                              leaf.header()->next_page == kInvalidPageId;
    if (sp.nslots() > 1 || is_only_leaf) {
      LogDelete(op, &leaf, pos, kLeafLevel);
      leaf.latch().UnlockX();
      return Status::OK();
    }
    // Removing the last row: shrink the page out of the tree (Section 2.4).
    return ShrinkLeaf(op, std::move(leaf), composite, &path);
  }
}

}  // namespace oir
