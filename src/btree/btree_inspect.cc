// Structural validation and statistics collection. These routines assume a
// quiescent tree (no concurrent writers) and take no latches beyond pins —
// they are meant for tests, benchmarks and examples.

#include <set>
#include <string>

#include "btree/btree.h"
#include "util/logging.h"

namespace {
std::string PageCtx(oir::PageId page, const oir::PageHeader* h) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                " (page %u: id=%u level=%u nslots=%u prev=%u next=%u)",
                page, h->page_id, h->level, h->nslots, h->prev_page,
                h->next_page);
  return std::string(buf);
}
}  // namespace

namespace oir {

Status BTree::FirstLeaf(PageId* out) const {
  PageId cur = root();
  for (;;) {
    PageRef ref;
    OIR_RETURN_IF_ERROR(bm_->Fetch(cur, &ref));
    SlottedPage sp(ref.data(), bm_->page_size());
    if (ref.header()->level == kLeafLevel) {
      *out = cur;
      return Status::OK();
    }
    if (sp.nslots() == 0) return Status::Corruption("empty non-leaf page");
    cur = node::ChildOf(sp.Get(0));
  }
}

Status BTree::ValidateSubtree(PageId page, uint16_t expected_level,
                              const std::string& low, const std::string& high,
                              bool has_high, TreeStats* stats,
                              std::vector<PageId>* leaves_in_order) const {
  if (space_->GetState(page) != PageState::kAllocated) {
    return Status::Corruption("tree references non-allocated page");
  }
  PageRef ref;
  OIR_RETURN_IF_ERROR(bm_->Fetch(page, &ref));
  SlottedPage sp(ref.data(), bm_->page_size());
  const PageHeader* h = ref.header();
  if (h->page_id != page) {
    return Status::Corruption("page id mismatch" + PageCtx(page, h));
  }
  if (h->level != expected_level) {
    return Status::Corruption("page level mismatch, expected level " +
                              std::to_string(expected_level) +
                              PageCtx(page, h));
  }
  if (!sp.Validate()) return Status::Corruption("slotted page inconsistent");

  if (expected_level == kLeafLevel) {
    ++stats->num_leaf_pages;
    stats->num_keys += sp.nslots();
    stats->leaf_bytes_used += sp.UsedSpace();
    stats->leaf_bytes_capacity += bm_->page_size() - kPageHeaderSize;
    leaves_in_order->push_back(page);
    // Rows sorted and within [low, high).
    for (SlotId i = 0; i < sp.nslots(); ++i) {
      Slice row = sp.Get(i);
      if (i > 0 && !(sp.Get(i - 1).compare(row) < 0)) {
        return Status::Corruption("leaf rows out of order");
      }
      if (row.compare(Slice(low)) < 0) {
        return Status::Corruption("leaf row below subtree lower bound");
      }
      if (has_high && row.compare(Slice(high)) >= 0) {
        return Status::Corruption("leaf row above subtree upper bound");
      }
    }
    return Status::OK();
  }

  // Non-leaf page.
  ++stats->num_nonleaf_pages;
  if (sp.nslots() == 0) return Status::Corruption("empty non-leaf page");
  if (!node::SeparatorOf(sp.Get(0)).empty()) {
    return Status::Corruption("first non-leaf row has a separator");
  }
  for (SlotId i = 0; i < sp.nslots(); ++i) {
    Slice row = sp.Get(i);
    stats->nonleaf_rows += 1;
    stats->nonleaf_row_bytes += row.size();
    Slice sep = node::SeparatorOf(row);
    if (i >= 1) {
      if (sep.compare(Slice(low)) < 0) {
        return Status::Corruption("separator below subtree lower bound");
      }
      if (has_high && sep.compare(Slice(high)) > 0) {
        return Status::Corruption("separator above subtree upper bound");
      }
      if (i >= 2 &&
          !(node::SeparatorOf(sp.Get(i - 1)).compare(sep) < 0)) {
        return Status::Corruption("separators out of order");
      }
    }
    std::string child_low = i == 0 ? low : sep.ToString();
    std::string child_high;
    bool child_has_high = true;
    if (i + 1 < sp.nslots()) {
      child_high = node::SeparatorOf(sp.Get(i + 1)).ToString();
    } else {
      child_high = high;
      child_has_high = has_high;
    }
    OIR_RETURN_IF_ERROR(ValidateSubtree(
        node::ChildOf(row), static_cast<uint16_t>(expected_level - 1),
        child_low, child_high, child_has_high, stats, leaves_in_order));
  }
  return Status::OK();
}

Status BTree::Validate(TreeStats* stats) const {
  *stats = TreeStats();
  PageId root_id = root();
  PageRef ref;
  OIR_RETURN_IF_ERROR(bm_->Fetch(root_id, &ref));
  uint16_t root_level = ref.header()->level;
  ref.Release();
  stats->height = root_level + 1;

  std::vector<PageId> leaves_in_order;
  OIR_RETURN_IF_ERROR(ValidateSubtree(root_id, root_level, std::string(),
                                      std::string(), /*has_high=*/false,
                                      stats, &leaves_in_order));

  // Leaf chain must visit exactly the leaves found top-down, in order, with
  // consistent back links.
  PageId expected_prev = kInvalidPageId;
  for (size_t i = 0; i < leaves_in_order.size(); ++i) {
    PageRef leaf;
    OIR_RETURN_IF_ERROR(bm_->Fetch(leaves_in_order[i], &leaf));
    if (leaf.header()->prev_page != expected_prev) {
      return Status::Corruption("leaf chain prev link broken, expected prev " +
                                std::to_string(expected_prev) +
                                PageCtx(leaves_in_order[i], leaf.header()));
    }
    PageId next = leaf.header()->next_page;
    PageId expected_next = i + 1 < leaves_in_order.size()
                               ? leaves_in_order[i + 1]
                               : kInvalidPageId;
    if (next != expected_next) {
      return Status::Corruption("leaf chain next link broken, expected next " +
                                std::to_string(expected_next) +
                                PageCtx(leaves_in_order[i], leaf.header()));
    }
    expected_prev = leaves_in_order[i];
  }

  // Clustering metric: number of maximal runs of physically consecutive
  // leaf pages in key order (Section 6.1 — a freshly rebuilt index should
  // approach one run per allocation chunk).
  uint64_t runs = leaves_in_order.empty() ? 0 : 1;
  for (size_t i = 1; i < leaves_in_order.size(); ++i) {
    if (leaves_in_order[i] != leaves_in_order[i - 1] + 1) ++runs;
  }
  stats->leaf_seq_runs = runs;
  return Status::OK();
}

Status BTree::CollectStats(TreeStats* stats) const { return Validate(stats); }

namespace {
void AppendPrintable(const Slice& s, std::string* out) {
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c >= 0x20 && c < 0x7f) {
      out->push_back(c);
    } else {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\x%02x",
                    static_cast<unsigned char>(c));
      out->append(buf);
    }
  }
}
}  // namespace

Status BTree::Dump(std::string* out, bool include_rows) const {
  struct Walker {
    const BTree* tree;
    std::string* out;
    bool include_rows;

    Status Walk(PageId page, int depth) {
      PageRef ref;
      OIR_RETURN_IF_ERROR(tree->bm_->Fetch(page, &ref));
      SlottedPage sp(ref.data(), tree->bm_->page_size());
      const PageHeader* h = ref.header();
      out->append(depth * 2, ' ');
      char buf[128];
      if (h->level == kLeafLevel) {
        std::snprintf(buf, sizeof(buf),
                      "leaf %u (rows=%u prev=%u next=%u used=%u)", page,
                      h->nslots, h->prev_page, h->next_page, sp.UsedSpace());
        out->append(buf);
        if (include_rows) {
          out->append(" [");
          for (SlotId i = 0; i < sp.nslots(); ++i) {
            if (i) out->push_back(' ');
            AppendPrintable(UserKeyOf(sp.Get(i)), out);
            std::snprintf(buf, sizeof(buf), ":%llu",
                          (unsigned long long)RowIdOf(sp.Get(i)));
            out->append(buf);
          }
          out->push_back(']');
        } else if (sp.nslots() > 0) {
          out->append(" first=");
          AppendPrintable(UserKeyOf(sp.Get(0)), out);
        }
        out->push_back('\n');
        return Status::OK();
      }
      std::snprintf(buf, sizeof(buf), "node %u level %u (entries=%u)", page,
                    h->level, h->nslots);
      out->append(buf);
      out->push_back('\n');
      for (SlotId i = 0; i < sp.nslots(); ++i) {
        out->append(depth * 2 + 2, ' ');
        if (i == 0) {
          out->append("(-inf)");
        } else {
          out->append("sep=");
          AppendPrintable(node::SeparatorOf(sp.Get(i)), out);
        }
        out->push_back('\n');
        OIR_RETURN_IF_ERROR(Walk(node::ChildOf(sp.Get(i)), depth + 1));
      }
      return Status::OK();
    }
  };
  Walker w{this, out, include_rows};
  char buf[64];
  std::snprintf(buf, sizeof(buf), "root: page %u\n", root());
  out->append(buf);
  return w.Walk(root(), 0);
}

}  // namespace oir
