#include "btree/cursor.h"

#include "util/logging.h"

namespace oir {

void Cursor::Capture(const SlottedPage& sp, const PageRef& page, SlotId pos) {
  current_ = sp.Get(pos).ToString();
  page_ = page.id();
  page_lsn_ = page.header()->page_lsn;
  pos_ = pos;
  valid_ = true;
  if (page_ != last_counted_page_) {
    ++pages_visited_;
    last_counted_page_ = page_;
  }
}

Status Cursor::Seek(const Slice& user_key) {
  std::string composite = MakeIndexKey(user_key, 0);
  return SeekComposite(Slice(composite), /*exclusive=*/false);
}

Status Cursor::SeekToFirst() {
  return SeekComposite(Slice(), /*exclusive=*/false);
}

Status Cursor::SeekComposite(const Slice& composite, bool exclusive) {
  valid_ = false;
  BTree::Path path;
  for (;;) {
    PageRef leaf;
    OIR_RETURN_IF_ERROR(tree_->Traverse(op_, composite, /*writer=*/false,
                                        kLeafLevel, &leaf, &path));
    // Walk right until a qualifying row is found (handles empty leaves and
    // keys that migrated right through a concurrent split).
    for (;;) {
      SlottedPage sp(leaf.data(), tree_->bm_->page_size());
      SlotId pos = node::LeafLowerBound(sp, composite);
      if (exclusive && pos < sp.nslots() && sp.Get(pos) == composite) {
        ++pos;
      }
      if (pos < sp.nslots()) {
        Capture(sp, leaf, pos);
        leaf.latch().UnlockS();
        return Status::OK();
      }
      PageId next = leaf.header()->next_page;
      if (next == kInvalidPageId) {
        leaf.latch().UnlockS();
        return Status::OK();  // end of index; cursor invalid
      }
      PageRef nref;
      OIR_RETURN_IF_ERROR(tree_->bm_->Fetch(next, &nref));
      nref.latch().LockS();
      if ((nref.header()->flags & kFlagShrink) != 0) {
        nref.latch().UnlockS();
        nref.Release();
        leaf.latch().UnlockS();
        leaf.Release();
        OIR_RETURN_IF_ERROR(tree_->locks_->LockInstant(
            op_.id, AddressLockKey(next), LockMode::kS,
            /*conditional=*/false));
        break;  // retraverse
      }
      leaf.latch().UnlockS();
      leaf = std::move(nref);
    }
  }
}

Status Cursor::Next() {
  OIR_CHECK(valid_);
  // Fast path: the page is unchanged since we last looked at it.
  if (tree_->space_->GetState(page_) == PageState::kAllocated) {
    PageRef leaf;
    if (tree_->bm_->Fetch(page_, &leaf).ok()) {
      leaf.latch().LockS();
      const PageHeader* h = leaf.header();
      if (h->page_id == page_ && h->level == kLeafLevel &&
          (h->flags & kFlagShrink) == 0 && h->page_lsn == page_lsn_) {
        SlottedPage sp(leaf.data(), tree_->bm_->page_size());
        if (pos_ + 1 < sp.nslots()) {
          Capture(sp, leaf, static_cast<SlotId>(pos_ + 1));
          leaf.latch().UnlockS();
          return Status::OK();
        }
        // Cross to the next leaf in the chain.
        PageId next = h->next_page;
        if (next == kInvalidPageId) {
          leaf.latch().UnlockS();
          valid_ = false;
          return Status::OK();
        }
        PageRef nref;
        Status fs = tree_->bm_->Fetch(next, &nref);
        if (fs.ok()) {
          nref.latch().LockS();
          if ((nref.header()->flags & kFlagShrink) == 0 &&
              nref.header()->level == kLeafLevel) {
            SlottedPage nsp(nref.data(), tree_->bm_->page_size());
            if (nsp.nslots() > 0) {
              Capture(nsp, nref, 0);
              nref.latch().UnlockS();
              leaf.latch().UnlockS();
              return Status::OK();
            }
          }
          nref.latch().UnlockS();
        }
      }
      leaf.latch().UnlockS();
    }
  }
  // Slow path: the page changed, was shrunk or was rebuilt away —
  // reposition by key (Section 2.6.1 retraversal, cursor flavor).
  std::string cur = current_;
  return SeekComposite(Slice(cur), /*exclusive=*/true);
}

}  // namespace oir
