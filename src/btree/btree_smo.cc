// Structure modification operations: leaf split, shrink, their bottom-up
// propagation (Sections 2.2-2.4), and the logical-undo compensation hooks.

#include "btree/btree.h"
#include "obs/trace.h"
#include "testing/crash_point.h"
#include "util/logging.h"

namespace oir {

namespace {

// Split position by accumulated row bytes: first position p (clamped to
// [min_pos, nslots-1]) such that rows [0, p) hold at least half the used
// bytes.
SlotId PickSplitPos(const SlottedPage& sp, SlotId min_pos) {
  const uint16_t n = sp.nslots();
  OIR_CHECK(n >= 2);
  size_t total = 0;
  for (SlotId i = 0; i < n; ++i) total += sp.Get(i).size() + kSlotSize;
  size_t acc = 0;
  SlotId pos = min_pos;
  for (SlotId i = 0; i < n; ++i) {
    acc += sp.Get(i).size() + kSlotSize;
    if (acc >= total / 2) {
      pos = static_cast<SlotId>(i + 1);
      break;
    }
  }
  if (pos < min_pos) pos = min_pos;
  if (pos > n - 1) pos = static_cast<SlotId>(n - 1);
  return pos;
}

}  // namespace

// -------------------------------------------------------------- leaf split

Status BTree::LeafSplit(OpCtx op, PageRef leaf, Path* path) {
  OIR_CRASH_POINT("btree.split.begin");
  NtaScope nta;
  BeginNta(op, &nta);
  const PageId p0 = leaf.id();

  // X address lock + SPLIT bit on the old page (Section 2.2). We hold its
  // X latch and it is bit-free, so an unconditional request while latched
  // is allowed by the Section 6.5 rules.
  Status s = locks_->Lock(op.id, AddressLockKey(p0), LockMode::kX,
                          /*conditional=*/false);
  if (!s.ok()) {
    leaf.latch().UnlockX();
    ReleaseNtaResources(op, &nta);
    return s;
  }
  nta.locked.push_back(p0);
  leaf.header()->flags |= kFlagSplit;
  nta.bits.push_back(p0);

  PageId n0;
  s = space_->Allocate(op.ctx, &n0);
  if (!s.ok()) {
    leaf.latch().UnlockX();
    leaf.Release();
    Status rb = AbortNta(op, &nta);
    return s.ok() ? rb : s;
  }
  OIR_CRASH_POINT("btree.split.alloc");
  OIR_CHECK(locks_
                ->Lock(op.id, AddressLockKey(n0), LockMode::kX,
                       /*conditional=*/false)
                .ok());  // freshly allocated: uncontended
  nta.locked.push_back(n0);

  const PageId old_next = leaf.header()->next_page;
  PageRef right;
  s = FormatNewPage(op, n0, kLeafLevel, p0, old_next, &right);
  if (!s.ok()) {
    leaf.latch().UnlockX();
    leaf.Release();
    Status rb = AbortNta(op, &nta);
    (void)rb;
    return s;
  }
  right.header()->flags |= kFlagSplit;
  nta.bits.push_back(n0);

  // Move the upper rows to the new page. A rightmost leaf (the ascending-
  // load pattern) splits near its end so sequential loads pack pages almost
  // full; interior leaves split at the byte midpoint.
  SlottedPage lsp(leaf.data(), bm_->page_size());
  const uint16_t n = lsp.nslots();
  const bool rightmost = old_next == kInvalidPageId;
  const SlotId split_pos =
      rightmost ? static_cast<SlotId>(n - 1) : PickSplitPos(lsp, 1);
  std::vector<std::string> moved;
  moved.reserve(n - split_pos);
  for (SlotId i = split_pos; i < n; ++i) {
    moved.push_back(lsp.Get(i).ToString());
  }
  LogBatchInsert(op, &right, 0, moved, kLeafLevel);
  LogBatchDelete(op, &leaf, split_pos, static_cast<uint16_t>(n - split_pos),
                 kLeafLevel);
  LogSetNextLink(op, &leaf, n0);
  OIR_CRASH_POINT("btree.split.moved");

  // Separator between the two halves (suffix compression).
  SlottedPage rsp(right.data(), bm_->page_size());
  std::string sep =
      MakeSeparator(lsp.Get(static_cast<SlotId>(lsp.nslots() - 1)),
                    rsp.Get(0));

  leaf.latch().UnlockX();
  leaf.Release();
  right.latch().UnlockX();
  right.Release();

  // Fix the back link of the old next page. A link-only write is permitted
  // even if that page carries SPLIT/SHRINK bits (footnote 3 of the paper):
  // chain links are protected by latches, not by the bits.
  if (old_next != kInvalidPageId) {
    PageRef np;
    s = bm_->Fetch(old_next, &np);
    if (s.ok()) {
      np.latch().LockX();
      if (np.header()->prev_page == p0) {
        LogSetPrevLink(op, &np, n0);
      }
      np.latch().UnlockX();
    }
  }
  OIR_CRASH_POINT("btree.split.linked");

  s = PropagateInsert(op, &nta, 1, std::move(sep), n0, p0, path);
  if (!s.ok()) {
    Status rb = AbortNta(op, &nta);
    (void)rb;
    return s;
  }
  OIR_CRASH_POINT("btree.split.propagated");
  OIR_TRACE(obs::TraceEventType::kSmoSplit, p0, n0);
  return EndNta(op, &nta);
}

// ------------------------------------------------- split propagation up

Status BTree::PropagateInsert(OpCtx op, NtaScope* nta, uint16_t level,
                              std::string sep, PageId child_new,
                              PageId split_old, Path* path) {
  std::string cur_sep = std::move(sep);
  PageId cur_child = child_new;
  PageId cur_split_old = split_old;
  uint16_t cur_level = level;

  for (;;) {
    OIR_CRASH_POINT("btree.propagate.insert");
    // If the page that split was the root, grow the tree instead of
    // traversing to a level that does not exist. No other transaction can
    // change the root meanwhile: doing so would require splitting or
    // shrinking cur_split_old, which we hold X-locked with bits set.
    if (root() == cur_split_old) {
      return NewRoot(op, nta, cur_split_old, Slice(cur_sep), cur_child,
                     static_cast<uint16_t>(cur_level - 1));
    }

    PageRef parent;
    OIR_RETURN_IF_ERROR(Traverse(op, Slice(cur_sep), /*writer=*/true,
                                 cur_level, &parent, path));
    SlottedPage sp(parent.data(), bm_->page_size());
    std::string row = node::MakeNonLeafRow(cur_child, Slice(cur_sep));
    if (sp.HasRoomFor(static_cast<uint32_t>(row.size()))) {
      SlotId pos = node::FindEntryInsertPos(sp, Slice(cur_sep));
      LogInsert(op, &parent, pos, row, cur_level);
      parent.latch().UnlockX();
      return Status::OK();
    }

    // Split the non-leaf page (Section 2.3): X lock, SPLIT +
    // OLDPGOFSPLIT bits and a side entry on the old page so concurrent
    // traversals can route to the new sibling before the next level is
    // updated.
    const PageId pid = parent.id();
    Status s = locks_->Lock(op.id, AddressLockKey(pid), LockMode::kX,
                            /*conditional=*/false);
    if (!s.ok()) {
      parent.latch().UnlockX();
      return s;
    }
    nta->locked.push_back(pid);

    PageId nid;
    s = space_->Allocate(op.ctx, &nid);
    if (!s.ok()) {
      parent.latch().UnlockX();
      return s;
    }
    OIR_CHECK(locks_
                  ->Lock(op.id, AddressLockKey(nid), LockMode::kX,
                         /*conditional=*/false)
                  .ok());
    nta->locked.push_back(nid);

    PageRef sibling;
    s = FormatNewPage(op, nid, cur_level, kInvalidPageId, kInvalidPageId,
                      &sibling);
    if (!s.ok()) {
      parent.latch().UnlockX();
      return s;
    }

    const uint16_t n = sp.nslots();
    const SlotId split_pos = PickSplitPos(sp, /*min_pos=*/1);
    // The separator of the row at split_pos is promoted; the row itself
    // becomes the (separator-less) first row of the sibling.
    std::string promoted = node::SeparatorOf(sp.Get(split_pos)).ToString();

    SetSideEntry(pid, promoted, nid);
    nta->side_entries.push_back(pid);
    parent.header()->flags |= kFlagSplit | kFlagOldPgOfSplit;
    nta->bits.push_back(pid);
    sibling.header()->flags |= kFlagSplit;
    nta->bits.push_back(nid);

    std::vector<std::string> moved;
    moved.reserve(n - split_pos);
    moved.push_back(
        node::MakeNonLeafRow(node::ChildOf(sp.Get(split_pos)), Slice()));
    for (SlotId i = static_cast<SlotId>(split_pos + 1); i < n; ++i) {
      moved.push_back(sp.Get(i).ToString());
    }
    LogBatchInsert(op, &sibling, 0, moved, cur_level);
    LogBatchDelete(op, &parent, split_pos,
                   static_cast<uint16_t>(n - split_pos), cur_level);

    // Insert the pending entry on the correct side.
    SlottedPage nsp(sibling.data(), bm_->page_size());
    if (Slice(cur_sep).compare(Slice(promoted)) < 0) {
      SlotId pos = node::FindEntryInsertPos(sp, Slice(cur_sep));
      OIR_CHECK(sp.HasRoomFor(static_cast<uint32_t>(row.size())));
      LogInsert(op, &parent, pos, row, cur_level);
    } else {
      SlotId pos = node::FindEntryInsertPos(nsp, Slice(cur_sep));
      OIR_CHECK(nsp.HasRoomFor(static_cast<uint32_t>(row.size())));
      LogInsert(op, &sibling, pos, row, cur_level);
    }

    parent.latch().UnlockX();
    parent.Release();
    sibling.latch().UnlockX();
    sibling.Release();

    cur_split_old = pid;
    cur_sep = std::move(promoted);
    cur_child = nid;
    ++cur_level;
  }
}

Status BTree::NewRoot(OpCtx op, NtaScope* nta, PageId left, const Slice& sep,
                      PageId right, uint16_t child_level) {
  OIR_CRASH_POINT("btree.newroot");
  (void)nta;
  PageId rid;
  OIR_RETURN_IF_ERROR(space_->Allocate(op.ctx, &rid));
  PageRef root_page;
  OIR_RETURN_IF_ERROR(FormatNewPage(op, rid,
                                    static_cast<uint16_t>(child_level + 1),
                                    kInvalidPageId, kInvalidPageId,
                                    &root_page));
  std::vector<std::string> rows;
  rows.push_back(node::MakeNonLeafRow(left, Slice()));
  rows.push_back(node::MakeNonLeafRow(right, sep));
  LogBatchInsert(op, &root_page, 0, rows,
                 static_cast<uint16_t>(child_level + 1));
  root_page.latch().UnlockX();
  root_page.Release();
  // The new root is not reachable until the meta pointer flips, so it needs
  // no lock or bits.
  return SetRoot(op, rid);
}

// ------------------------------------------------------------------ shrink

Status BTree::ShrinkLeaf(OpCtx op, PageRef leaf, const Slice& composite,
                         Path* path) {
  const PageId p = leaf.id();

  // The row delete is a normal, undoable leaf record: it must NOT be part
  // of the shrink top action (which is never undone once complete). If the
  // transaction later rolls back, logical undo re-inserts the key wherever
  // it then belongs.
  OIR_CHECK(SlottedPage(leaf.data(), bm_->page_size()).nslots() == 1);
  LogDelete(op, &leaf, 0, kLeafLevel);

  OIR_CRASH_POINT("btree.shrink.begin");
  NtaScope nta;
  BeginNta(op, &nta);

  Status s = locks_->Lock(op.id, AddressLockKey(p), LockMode::kX,
                          /*conditional=*/false);
  if (!s.ok()) {
    leaf.latch().UnlockX();
    ReleaseNtaResources(op, &nta);
    return s;
  }
  nta.locked.push_back(p);
  leaf.header()->flags |= kFlagShrink;
  nta.bits.push_back(p);

  PageId pp = leaf.header()->prev_page;
  const PageId np = leaf.header()->next_page;
  leaf.latch().UnlockX();
  leaf.Release();

  // Lock the previous page, revalidating the back link afterwards: a
  // concurrent split of the previous page may have inserted a new page
  // between it and us (link writes are allowed under our SHRINK bit).
  while (pp != kInvalidPageId) {
    s = locks_->Lock(op.id, AddressLockKey(pp), LockMode::kX,
                     /*conditional=*/false);
    if (!s.ok()) {
      Status rb = AbortNta(op, &nta);
      (void)rb;
      return s;
    }
    PageRef self;
    OIR_CHECK(bm_->Fetch(p, &self).ok());
    self.latch().LockS();
    PageId now_prev = self.header()->prev_page;
    self.latch().UnlockS();
    if (now_prev == pp) {
      nta.locked.push_back(pp);
      break;
    }
    locks_->Unlock(op.id, AddressLockKey(pp));
    pp = now_prev;
  }

  // Unlink from the leaf chain.
  if (pp != kInvalidPageId) {
    PageRef prev;
    OIR_CHECK(bm_->Fetch(pp, &prev).ok());
    prev.latch().LockX();
    OIR_CHECK(prev.header()->next_page == p);
    LogSetNextLink(op, &prev, np);
    prev.latch().UnlockX();
  }
  if (np != kInvalidPageId) {
    PageRef next;
    OIR_CHECK(bm_->Fetch(np, &next).ok());
    next.latch().LockX();
    OIR_CHECK(next.header()->prev_page == p);
    LogSetPrevLink(op, &next, pp);
    next.latch().UnlockX();
  }
  OIR_CRASH_POINT("btree.shrink.unlinked");

  s = space_->Deallocate(op.ctx, p);
  if (!s.ok()) {
    Status rb = AbortNta(op, &nta);
    (void)rb;
    return s;
  }
  nta.deallocated.push_back(p);
  OIR_CRASH_POINT("btree.shrink.dealloc");

  s = PropagateDelete(op, &nta, 1, composite, p, path);
  if (!s.ok()) {
    Status rb = AbortNta(op, &nta);
    (void)rb;
    return s;
  }
  OIR_CRASH_POINT("btree.shrink.propagated");
  OIR_RETURN_IF_ERROR(EndNta(op, &nta));
  OIR_TRACE(obs::TraceEventType::kSmoShrink, p, 0);

  // Shrink frees its deallocated pages when the top action commits
  // (Section 4.1.3). Nothing was copied anywhere, so no flush ordering is
  // required.
  for (PageId dp : nta.deallocated) {
    bm_->Discard(dp);  // before Free: the page must not be allocatable
    space_->Free(dp);  // while its stale frame is still cached
  }
  return Status::OK();
}

Status BTree::PropagateDelete(OpCtx op, NtaScope* nta, uint16_t level,
                              const Slice& key_hint, PageId child_dead,
                              Path* path) {
  PageId dead = child_dead;
  uint16_t cur_level = level;

  for (;;) {
    PageRef parent;
    OIR_RETURN_IF_ERROR(
        Traverse(op, key_hint, /*writer=*/true, cur_level, &parent, path));
    SlottedPage sp(parent.data(), bm_->page_size());
    int pos = node::FindChildPos(sp, dead);
    if (pos < 0) {
      parent.latch().UnlockX();
      return Status::Corruption("parent entry for shrunk child missing");
    }

    const PageId pid = parent.id();
    Status s = locks_->Lock(op.id, AddressLockKey(pid), LockMode::kX,
                            /*conditional=*/false);
    if (!s.ok()) {
      parent.latch().UnlockX();
      return s;
    }
    nta->locked.push_back(pid);
    parent.header()->flags |= kFlagShrink;
    nta->bits.push_back(pid);

    if (sp.nslots() == 1) {
      // The page becomes empty: it shrinks as well. There is no need to
      // perform the delete — the page is deallocated directly (footnote 6).
      OIR_CHECK(pid != root());
      parent.latch().UnlockX();
      parent.Release();
      OIR_RETURN_IF_ERROR(space_->Deallocate(op.ctx, pid));
      nta->deallocated.push_back(pid);
      dead = pid;
      ++cur_level;
      continue;
    }

    if (pid == root() && sp.nslots() == 2 && cur_level >= 1) {
      // The root is left with a single child: collapse it (the tree loses
      // a level).
      PageId remaining = node::ChildOf(sp.Get(pos == 0 ? 1 : 0));
      parent.latch().UnlockX();
      parent.Release();
      OIR_RETURN_IF_ERROR(SetRoot(op, remaining));
      OIR_RETURN_IF_ERROR(space_->Deallocate(op.ctx, pid));
      nta->deallocated.push_back(pid);
      return Status::OK();
    }

    if (pos == 0) {
      // Deleting the first child: the next child becomes first and loses
      // its separator.
      LogDelete(op, &parent, 0, cur_level);
      PageId c = node::ChildOf(sp.Get(0));
      LogDelete(op, &parent, 0, cur_level);
      LogInsert(op, &parent, 0, node::MakeNonLeafRow(c, Slice()), cur_level);
    } else {
      LogDelete(op, &parent, static_cast<SlotId>(pos), cur_level);
    }
    parent.latch().UnlockX();
    return Status::OK();
  }
}

// ------------------------------------------------------ logical undo hooks

Status BTree::UndoLeafInsert(TxnContext* ctx, const LogRecord& rec) {
  OpCtx op{ctx->txn_id, ctx};
  // The whole compensation runs as a top action whose dummy CLR points past
  // the record being undone: if it completes, the record is compensated and
  // skipped; if it does not, its pieces are physically undone and the
  // record is re-undone from scratch.
  NtaScope nta;
  BeginNta(op, &nta);
  Status s = DeleteComposite(op, Slice(rec.row));
  if (!s.ok()) {
    Status rb = AbortNta(op, &nta);
    (void)rb;
    return s.IsNotFound()
               ? Status::Corruption("undo: inserted key missing from tree")
               : s;
  }
  return EndNta(op, &nta, /*undo_next_override=*/rec.prev_lsn);
}

Status BTree::UndoLeafDelete(TxnContext* ctx, const LogRecord& rec) {
  OpCtx op{ctx->txn_id, ctx};
  NtaScope nta;
  BeginNta(op, &nta);
  Status s = InsertComposite(op, Slice(rec.row));
  if (!s.ok()) {
    Status rb = AbortNta(op, &nta);
    (void)rb;
    return s.IsInvalidArgument()
               ? Status::Corruption("undo: deleted key already present")
               : s;
  }
  return EndNta(op, &nta, /*undo_next_override=*/rec.prev_lsn);
}

}  // namespace oir
