#ifndef OIR_BTREE_CURSOR_H_
#define OIR_BTREE_CURSOR_H_

// Range-scan cursor (Section 2.5). The scan qualifies rows under an S
// latch, releases the latch before returning a row to the caller, and
// re-latches to resume — so it never blocks writers while the application
// consumes rows. On resume, if the page changed (pageLSN differs), was
// shrunk, rebuilt away or freed, the cursor repositions itself by key.
//
// Isolation: read committed. The cursor takes no logical locks itself;
// callers wanting stronger isolation lock the returned ROWIDs through the
// transaction manager (as the paper's scan does "depending on the
// isolation level").

#include <string>

#include "btree/btree.h"

namespace oir {

class Cursor {
 public:
  // `op.ctx` may be null: scans write no log records; op.id is used for
  // instant-duration lock waits on SHRINK-marked pages.
  Cursor(BTree* tree, OpCtx op) : tree_(tree), op_(op) {}

  // Positions at the first row with user key >= `user_key` (rid 0).
  Status Seek(const Slice& user_key);
  // Positions at the first row of the index.
  Status SeekToFirst();

  bool Valid() const { return valid_; }

  // Accessors for the current row (valid until the next cursor call).
  Slice index_key() const { return Slice(current_); }
  Slice user_key() const { return UserKeyOf(Slice(current_)); }
  RowId rid() const { return RowIdOf(Slice(current_)); }

  // Advances to the next row in key order.
  Status Next();

  // Number of distinct leaf pages this cursor has latched since creation
  // (a proxy for the disk reads of a range scan; Section 6.1).
  uint64_t pages_visited() const { return pages_visited_; }

 private:
  // Positions at the first row with composite key >= `composite`
  // (`exclusive` = strictly greater).
  Status SeekComposite(const Slice& composite, bool exclusive);

  // Captures row `pos` of the latched page as the current row.
  void Capture(const SlottedPage& sp, const PageRef& page, SlotId pos);

  BTree* const tree_;
  OpCtx op_;
  bool valid_ = false;
  std::string current_;
  PageId page_ = kInvalidPageId;
  Lsn page_lsn_ = kInvalidLsn;
  SlotId pos_ = 0;
  PageId last_counted_page_ = kInvalidPageId;
  uint64_t pages_visited_ = 0;
};

}  // namespace oir

#endif  // OIR_BTREE_CURSOR_H_
