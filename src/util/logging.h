#ifndef OIR_UTIL_LOGGING_H_
#define OIR_UTIL_LOGGING_H_

// Assertion and invariant-checking macros.
//
// OIR_CHECK(cond)     — always-on invariant check; aborts with a message.
// OIR_DCHECK(cond)    — debug-only check (compiled out in NDEBUG builds).
// OIR_UNREACHABLE()   — marks code paths that must not execute.

#include <cstdio>
#include <cstdlib>

namespace oir {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "OIR_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace oir

#define OIR_CHECK(cond)                                 \
  do {                                                  \
    if (!(cond)) {                                      \
      ::oir::CheckFailed(__FILE__, __LINE__, #cond);    \
    }                                                   \
  } while (0)

#ifdef NDEBUG
#define OIR_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define OIR_DCHECK(cond) OIR_CHECK(cond)
#endif

#define OIR_UNREACHABLE() \
  ::oir::CheckFailed(__FILE__, __LINE__, "unreachable code reached")

#endif  // OIR_UTIL_LOGGING_H_
