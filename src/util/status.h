#ifndef OIR_UTIL_STATUS_H_
#define OIR_UTIL_STATUS_H_

// Status encodes the result of an operation, in the style of
// rocksdb::Status. Success is represented by Status::OK(); errors carry a
// code and a message. The library does not use exceptions.

#include <string>
#include <utility>

namespace oir {

// [[nodiscard]]: silently dropping a Status hides I/O and corruption
// errors; callers must consume it (or explicitly cast to void with a
// comment saying why the error is ignorable).
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kInvalidArgument = 3,
    kIOError = 4,
    kBusy = 5,          // conditional lock/latch not granted
    kAborted = 6,       // transaction aborted (deadlock victim, interrupt)
    kNoSpace = 7,       // buffer pool or disk exhausted
    kNotSupported = 8,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status NoSpace(std::string msg = "") {
    return Status(Code::kNoSpace, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsNoSpace() const { return code_ == Code::kNoSpace; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

// Propagate a non-OK status to the caller.
#define OIR_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::oir::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace oir

#endif  // OIR_UTIL_STATUS_H_
