#include "util/crc32c.h"

#include <array>

namespace oir::crc32c {

namespace {

// Table-driven CRC-32C, generated at first use (byte-at-a-time; adequate
// for log volumes in tests and benchmarks).
struct Table {
  std::array<uint32_t, 256> t;
  Table() {
    constexpr uint32_t kPoly = 0x82f63b78u;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[i] = crc;
    }
  }
};

const Table& GetTable() {
  static const Table* table = new Table();
  return *table;
}

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  const Table& table = GetTable();
  uint32_t crc = init_crc ^ 0xffffffffu;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = table.t[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace oir::crc32c
