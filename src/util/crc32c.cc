#include "util/crc32c.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace oir::crc32c {

namespace {

// Table-driven CRC-32C fallback (byte-at-a-time). The hardware path below
// is used on x86 with SSE4.2, which is where the WAL append rate makes the
// CRC cost matter.
struct Table {
  std::array<uint32_t, 256> t;
  Table() {
    constexpr uint32_t kPoly = 0x82f63b78u;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[i] = crc;
    }
  }
};

const Table& GetTable() {
  static const Table* table = new Table();
  return *table;
}

#if defined(__x86_64__) || defined(__i386__)
// The x86 crc32 instruction implements exactly this CRC (reflected
// Castagnoli), so the two paths produce identical values.
__attribute__((target("sse4.2"))) uint32_t ExtendHw(uint32_t crc,
                                                    const unsigned char* p,
                                                    size_t n) {
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
#if defined(__x86_64__)
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    crc = static_cast<uint32_t>(_mm_crc32_u64(crc, v));
    p += 8;
    n -= 8;
  }
#else
  while (n >= 4) {
    uint32_t v;
    std::memcpy(&v, p, 4);
    crc = _mm_crc32_u32(crc, v);
    p += 4;
    n -= 4;
  }
#endif
  while (n > 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  return crc;
}
#endif  // x86

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  uint32_t crc = init_crc ^ 0xffffffffu;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
#if defined(__x86_64__) || defined(__i386__)
  static const bool have_hw = __builtin_cpu_supports("sse4.2");
  if (have_hw) return ExtendHw(crc, p, n) ^ 0xffffffffu;
#endif
  const Table& table = GetTable();
  for (size_t i = 0; i < n; ++i) {
    crc = table.t[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace oir::crc32c
