#ifndef OIR_UTIL_CLOCK_H_
#define OIR_UTIL_CLOCK_H_

// Wall-clock and per-thread CPU-time helpers. The Table 1 reproduction
// reports Cratio — a ratio of CPU times of the rebuild at different
// ntasize values — so we measure thread CPU time, not wall time.

#include <cstdint>

namespace oir {

// Nanoseconds of wall-clock time (monotonic).
uint64_t NowNanos();

// Nanoseconds of CPU time consumed by the calling thread.
uint64_t ThreadCpuNanos();

// Nanoseconds of CPU time consumed by the whole process.
uint64_t ProcessCpuNanos();

}  // namespace oir

#endif  // OIR_UTIL_CLOCK_H_
