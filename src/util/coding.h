#ifndef OIR_UTIL_CODING_H_
#define OIR_UTIL_CODING_H_

// Little-endian fixed-width and varint encoding helpers, used by log record
// serialization and on-page structures.

#include <cstdint>
#include <cstring>
#include <string>

#include "util/slice.h"

namespace oir {

inline void EncodeFixed16(char* dst, uint16_t value) {
  std::memcpy(dst, &value, sizeof(value));
}
inline void EncodeFixed32(char* dst, uint32_t value) {
  std::memcpy(dst, &value, sizeof(value));
}
inline void EncodeFixed64(char* dst, uint64_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline uint16_t DecodeFixed16(const char* ptr) {
  uint16_t value;
  std::memcpy(&value, ptr, sizeof(value));
  return value;
}
inline uint32_t DecodeFixed32(const char* ptr) {
  uint32_t value;
  std::memcpy(&value, ptr, sizeof(value));
  return value;
}
inline uint64_t DecodeFixed64(const char* ptr) {
  uint64_t value;
  std::memcpy(&value, ptr, sizeof(value));
  return value;
}

inline void PutFixed16(std::string* dst, uint16_t value) {
  char buf[sizeof(value)];
  EncodeFixed16(buf, value);
  dst->append(buf, sizeof(buf));
}
inline void PutFixed32(std::string* dst, uint32_t value) {
  char buf[sizeof(value)];
  EncodeFixed32(buf, value);
  dst->append(buf, sizeof(buf));
}
inline void PutFixed64(std::string* dst, uint64_t value) {
  char buf[sizeof(value)];
  EncodeFixed64(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);

// Appends a varint32 length followed by the slice contents.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

// Decoders return a pointer past the parsed value, or nullptr on underflow
// or malformed input.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);

// Slice-consuming variants: advance *input past the parsed value. Return
// false on malformed input.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);
bool GetFixed16(Slice* input, uint16_t* value);
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);

int VarintLength(uint64_t v);

}  // namespace oir

#endif  // OIR_UTIL_CODING_H_
