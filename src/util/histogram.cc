#include "util/histogram.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace oir {

const std::vector<uint64_t>& Histogram::BucketLimits() {
  static const std::vector<uint64_t>* limits = [] {
    auto* v = new std::vector<uint64_t>();
    // 1, 2, 3, ..., 10, 12, 14, ... roughly exponential with ~1.25 growth.
    uint64_t x = 1;
    while (x < std::numeric_limits<uint64_t>::max() / 2) {
      v->push_back(x);
      uint64_t next = x + std::max<uint64_t>(1, x / 4);
      x = next;
    }
    v->push_back(std::numeric_limits<uint64_t>::max());
    return v;
  }();
  return *limits;
}

Histogram::Histogram()
    : count_(0),
      sum_(0),
      min_(std::numeric_limits<uint64_t>::max()),
      max_(0),
      buckets_(BucketLimits().size(), 0) {}

void Histogram::Add(uint64_t value) {
  const auto& limits = BucketLimits();
  size_t b = std::upper_bound(limits.begin(), limits.end(), value) -
             limits.begin();
  MutexLock l(mu_);
  if (b >= buckets_.size()) b = buckets_.size() - 1;
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  ++buckets_[b];
}

void Histogram::Merge(const Histogram& other) {
  MutexLock lo(other.mu_);
  MutexLock l(mu_);
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Clear() {
  MutexLock l(mu_);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<uint64_t>::max();
  max_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

uint64_t Histogram::Count() const {
  MutexLock l(mu_);
  return count_;
}

uint64_t Histogram::Sum() const {
  MutexLock l(mu_);
  return sum_;
}

uint64_t Histogram::Min() const {
  MutexLock l(mu_);
  return count_ == 0 ? 0 : min_;
}

uint64_t Histogram::Max() const {
  MutexLock l(mu_);
  return max_;
}

double Histogram::Mean() const {
  MutexLock l(mu_);
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::PercentileLocked(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return static_cast<double>(min_);
  if (p >= 100.0) return static_cast<double>(max_);
  const auto& limits = BucketLimits();
  const double threshold = (p / 100.0) * static_cast<double>(count_);
  double seen = 0.0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const double prev_seen = seen;
    seen += static_cast<double>(buckets_[i]);
    if (seen >= threshold) {
      // Linear interpolation inside bucket i, which covers (lo, hi].
      const double lo = i == 0 ? 0.0 : static_cast<double>(limits[i - 1]);
      const double hi = static_cast<double>(limits[i]);
      const double frac =
          (threshold - prev_seen) / static_cast<double>(buckets_[i]);
      double v = lo + frac * (hi - lo);
      v = std::max(v, static_cast<double>(min_));
      v = std::min(v, static_cast<double>(max_));
      return v;
    }
  }
  return static_cast<double>(max_);
}

double Histogram::Percentile(double p) const {
  MutexLock l(mu_);
  return PercentileLocked(p);
}

std::string Histogram::ToString() const {
  MutexLock l(mu_);
  const unsigned long long mn = count_ == 0 ? 0ULL : min_;
  const double mean =
      count_ == 0 ? 0.0
                  : static_cast<double>(sum_) / static_cast<double>(count_);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f min=%llu max=%llu p50=%.0f p95=%.0f "
                "p99=%.0f",
                static_cast<unsigned long long>(count_), mean, mn,
                static_cast<unsigned long long>(max_), PercentileLocked(50),
                PercentileLocked(95), PercentileLocked(99));
  return std::string(buf);
}

std::string Histogram::ToJson() const {
  MutexLock l(mu_);
  const auto& limits = BucketLimits();
  const unsigned long long mn = count_ == 0 ? 0ULL : min_;
  const double mean =
      count_ == 0 ? 0.0
                  : static_cast<double>(sum_) / static_cast<double>(count_);
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%llu,\"sum\":%llu,\"min\":%llu,\"max\":%llu,"
                "\"mean\":%.3f,\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f,"
                "\"buckets\":[",
                static_cast<unsigned long long>(count_),
                static_cast<unsigned long long>(sum_), mn,
                static_cast<unsigned long long>(max_), mean,
                PercentileLocked(50), PercentileLocked(95),
                PercentileLocked(99));
  std::string out(buf);
  bool first = true;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    std::snprintf(buf, sizeof(buf), "%s{\"le\":%llu,\"count\":%llu}",
                  first ? "" : ",",
                  static_cast<unsigned long long>(limits[i]),
                  static_cast<unsigned long long>(buckets_[i]));
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

}  // namespace oir
