#include "util/histogram.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace oir {

const std::vector<uint64_t>& Histogram::BucketLimits() {
  static const std::vector<uint64_t>* limits = [] {
    auto* v = new std::vector<uint64_t>();
    // 1, 2, 3, ..., 10, 12, 14, ... roughly exponential with ~1.25 growth.
    uint64_t x = 1;
    while (x < std::numeric_limits<uint64_t>::max() / 2) {
      v->push_back(x);
      uint64_t next = x + std::max<uint64_t>(1, x / 4);
      x = next;
    }
    v->push_back(std::numeric_limits<uint64_t>::max());
    return v;
  }();
  return *limits;
}

Histogram::Histogram()
    : count_(0),
      sum_(0),
      min_(std::numeric_limits<uint64_t>::max()),
      max_(0),
      buckets_(BucketLimits().size(), 0) {}

void Histogram::Add(uint64_t value) {
  const auto& limits = BucketLimits();
  size_t b = std::upper_bound(limits.begin(), limits.end(), value) -
             limits.begin();
  if (b >= buckets_.size()) b = buckets_.size() - 1;
  std::lock_guard<std::mutex> l(mu_);
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  ++buckets_[b];
}

void Histogram::Merge(const Histogram& other) {
  std::lock_guard<std::mutex> lo(other.mu_);
  std::lock_guard<std::mutex> l(mu_);
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Clear() {
  std::lock_guard<std::mutex> l(mu_);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<uint64_t>::max();
  max_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

uint64_t Histogram::Count() const {
  std::lock_guard<std::mutex> l(mu_);
  return count_;
}

uint64_t Histogram::Min() const {
  std::lock_guard<std::mutex> l(mu_);
  return count_ == 0 ? 0 : min_;
}

uint64_t Histogram::Max() const {
  std::lock_guard<std::mutex> l(mu_);
  return max_;
}

double Histogram::Mean() const {
  std::lock_guard<std::mutex> l(mu_);
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::Percentile(double p) const {
  std::lock_guard<std::mutex> l(mu_);
  if (count_ == 0) return 0.0;
  const auto& limits = BucketLimits();
  uint64_t threshold = static_cast<uint64_t>((p / 100.0) * count_);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= threshold) {
      // Return bucket upper bound (conservative).
      uint64_t hi = limits[i];
      return static_cast<double>(std::min(hi, max_));
    }
  }
  return static_cast<double>(max_);
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f min=%llu max=%llu p50=%.0f p95=%.0f "
                "p99=%.0f",
                static_cast<unsigned long long>(Count()), Mean(),
                static_cast<unsigned long long>(Min()),
                static_cast<unsigned long long>(Max()), Percentile(50),
                Percentile(95), Percentile(99));
  return std::string(buf);
}

}  // namespace oir
