#include "util/clock.h"

#include <ctime>

namespace oir {

namespace {
uint64_t ReadClock(clockid_t id) {
  struct timespec ts;
  clock_gettime(id, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}
}  // namespace

uint64_t NowNanos() { return ReadClock(CLOCK_MONOTONIC); }
uint64_t ThreadCpuNanos() { return ReadClock(CLOCK_THREAD_CPUTIME_ID); }
uint64_t ProcessCpuNanos() { return ReadClock(CLOCK_PROCESS_CPUTIME_ID); }

}  // namespace oir
