#ifndef OIR_UTIL_TYPES_H_
#define OIR_UTIL_TYPES_H_

// Fundamental identifier types shared across modules.

#include <cstdint>

namespace oir {

// Pages are identified by a 32-bit page number. Page 0 is reserved as the
// invalid page id (the index metadata lives on page 1).
using PageId = uint32_t;
constexpr PageId kInvalidPageId = 0;

// Log sequence number: byte offset of a record in the log. LSN 0 means
// "no LSN" (e.g., freshly formatted page, head of a prevLSN chain).
using Lsn = uint64_t;
constexpr Lsn kInvalidLsn = 0;

// Transaction identifier. 0 is reserved for "no transaction" (e.g.,
// system-generated records).
using TxnId = uint64_t;
constexpr TxnId kInvalidTxnId = 0;

// Slot position within a page (the "position" recorded in insert/delete and
// keycopy log records).
using SlotId = uint16_t;

// Row identifier of a data record; secondary index leaf entries are
// [key value, RowId] pairs (Section 1 of the paper).
using RowId = uint64_t;

}  // namespace oir

#endif  // OIR_UTIL_TYPES_H_
