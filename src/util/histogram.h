#ifndef OIR_UTIL_HISTOGRAM_H_
#define OIR_UTIL_HISTOGRAM_H_

// A thread-safe histogram for latency / size distributions, reported by the
// benchmark harness (p50/p95/p99, mean, min, max).

#include <cstdint>
#include <string>
#include <vector>

#include "sync/mutex.h"

namespace oir {

class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t Count() const;
  uint64_t Sum() const;
  uint64_t Min() const;
  uint64_t Max() const;
  double Mean() const;
  // p in [0, 100]. Empty histogram -> 0; p<=0 -> min; p>=100 -> max;
  // otherwise linearly interpolated inside the covering bucket and clamped
  // to [min, max] (so a single-value histogram returns that value exactly).
  double Percentile(double p) const;

  std::string ToString() const;
  // {"count":..,"sum":..,"min":..,"max":..,"mean":..,"p50":..,"p95":..,
  //  "p99":..,"buckets":[{"le":<integer bound>,"count":..},...]}
  // Bucket bounds are emitted as integers — no double round-trip, so a
  // reader never has to decode a float to recover an exact bound.
  std::string ToJson() const;

 private:
  // Exponential buckets: bucket i covers [kBucketLimits[i-1], kBucketLimits[i]).
  static const std::vector<uint64_t>& BucketLimits();

  double PercentileLocked(double p) const OIR_REQUIRES(mu_);

  mutable Mutex mu_;
  uint64_t count_ OIR_GUARDED_BY(mu_);
  uint64_t sum_ OIR_GUARDED_BY(mu_);
  uint64_t min_ OIR_GUARDED_BY(mu_);
  uint64_t max_ OIR_GUARDED_BY(mu_);
  std::vector<uint64_t> buckets_ OIR_GUARDED_BY(mu_);
};

}  // namespace oir

#endif  // OIR_UTIL_HISTOGRAM_H_
