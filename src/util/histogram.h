#ifndef OIR_UTIL_HISTOGRAM_H_
#define OIR_UTIL_HISTOGRAM_H_

// A thread-safe histogram for latency / size distributions, reported by the
// benchmark harness (p50/p95/p99, mean, min, max).

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace oir {

class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t Count() const;
  uint64_t Min() const;
  uint64_t Max() const;
  double Mean() const;
  // p in [0, 100].
  double Percentile(double p) const;

  std::string ToString() const;

 private:
  // Exponential buckets: bucket i covers [kBucketLimits[i-1], kBucketLimits[i]).
  static const std::vector<uint64_t>& BucketLimits();

  mutable std::mutex mu_;
  uint64_t count_;
  uint64_t sum_;
  uint64_t min_;
  uint64_t max_;
  std::vector<uint64_t> buckets_;
};

}  // namespace oir

#endif  // OIR_UTIL_HISTOGRAM_H_
