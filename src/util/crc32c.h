#ifndef OIR_UTIL_CRC32C_H_
#define OIR_UTIL_CRC32C_H_

// CRC-32C (Castagnoli) checksums, used to detect torn or corrupt log
// records during recovery.

#include <cstddef>
#include <cstdint>

namespace oir::crc32c {

// Returns the crc32c of concat(A, data[0,n-1]) where init_crc is the
// crc32c of some string A.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

// Returns the crc32c of data[0,n-1].
inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

// Masking is applied to CRCs stored alongside the data they cover so that
// computing the CRC of a string containing embedded CRCs does not yield
// pathological results (same scheme as leveldb).
constexpr uint32_t kMaskDelta = 0xa282ead8ul;

inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

inline uint32_t Unmask(uint32_t masked_crc) {
  uint32_t rot = masked_crc - kMaskDelta;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace oir::crc32c

#endif  // OIR_UTIL_CRC32C_H_
