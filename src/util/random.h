#ifndef OIR_UTIL_RANDOM_H_
#define OIR_UTIL_RANDOM_H_

// A simple deterministic pseudo-random generator (xorshift128+), used by
// tests, workload generators and benchmarks for reproducible runs.

#include <cstdint>
#include <string>

namespace oir {

class Random {
 public:
  explicit Random(uint64_t seed)
      : s0_(seed == 0 ? 0x9e3779b97f4a7c15ull : seed),
        s1_(SplitMix(&s0_)) {
    s0_ = SplitMix(&s1_);
    // Warm up.
    for (int i = 0; i < 8; ++i) Next();
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  // Uniform in [lo, hi].
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  // Returns true with probability num/den.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  // Random printable-ish byte string of exactly len bytes.
  std::string Bytes(size_t len) {
    std::string s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + Uniform(26)));
    }
    return s;
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace oir

#endif  // OIR_UTIL_RANDOM_H_
