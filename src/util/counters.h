#ifndef OIR_UTIL_COUNTERS_H_
#define OIR_UTIL_COUNTERS_H_

// Global event counters used to account for the cost drivers the paper
// discusses: latch-manager and lock-manager calls, log volume, page I/O and
// level-1 page visits (Section 4.3, Section 6.4). Benchmarks snapshot and
// reset these around measured regions.

#include <atomic>
#include <cstdint>
#include <string>

namespace oir {

struct CounterSnapshot {
  uint64_t latch_acquires = 0;
  uint64_t latch_waits = 0;
  uint64_t lock_requests = 0;
  uint64_t lock_waits = 0;
  uint64_t log_records = 0;
  uint64_t log_bytes = 0;
  uint64_t pages_read = 0;
  uint64_t pages_written = 0;
  uint64_t io_ops = 0;
  uint64_t io_read_ops = 0;
  uint64_t io_write_ops = 0;
  uint64_t level1_visits = 0;
  uint64_t traversal_restarts = 0;
  uint64_t blocked_traversals = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t pool_evictions = 0;
  uint64_t pool_writebacks = 0;
  uint64_t pool_prefetched = 0;
  uint64_t log_flush_calls = 0;
  uint64_t log_fsyncs = 0;

  CounterSnapshot operator-(const CounterSnapshot& b) const {
    CounterSnapshot r;
    r.latch_acquires = latch_acquires - b.latch_acquires;
    r.latch_waits = latch_waits - b.latch_waits;
    r.lock_requests = lock_requests - b.lock_requests;
    r.lock_waits = lock_waits - b.lock_waits;
    r.log_records = log_records - b.log_records;
    r.log_bytes = log_bytes - b.log_bytes;
    r.pages_read = pages_read - b.pages_read;
    r.pages_written = pages_written - b.pages_written;
    r.io_ops = io_ops - b.io_ops;
    r.io_read_ops = io_read_ops - b.io_read_ops;
    r.io_write_ops = io_write_ops - b.io_write_ops;
    r.level1_visits = level1_visits - b.level1_visits;
    r.traversal_restarts = traversal_restarts - b.traversal_restarts;
    r.blocked_traversals = blocked_traversals - b.blocked_traversals;
    r.pool_hits = pool_hits - b.pool_hits;
    r.pool_misses = pool_misses - b.pool_misses;
    r.pool_evictions = pool_evictions - b.pool_evictions;
    r.pool_writebacks = pool_writebacks - b.pool_writebacks;
    r.pool_prefetched = pool_prefetched - b.pool_prefetched;
    r.log_flush_calls = log_flush_calls - b.log_flush_calls;
    r.log_fsyncs = log_fsyncs - b.log_fsyncs;
    return r;
  }

  std::string ToString() const;
};

class GlobalCounters {
 public:
  static GlobalCounters& Get();

  std::atomic<uint64_t> latch_acquires{0};
  std::atomic<uint64_t> latch_waits{0};
  std::atomic<uint64_t> lock_requests{0};
  std::atomic<uint64_t> lock_waits{0};
  std::atomic<uint64_t> log_records{0};
  std::atomic<uint64_t> log_bytes{0};
  std::atomic<uint64_t> pages_read{0};
  std::atomic<uint64_t> pages_written{0};
  std::atomic<uint64_t> io_ops{0};
  std::atomic<uint64_t> io_read_ops{0};
  std::atomic<uint64_t> io_write_ops{0};
  std::atomic<uint64_t> level1_visits{0};
  std::atomic<uint64_t> traversal_restarts{0};
  std::atomic<uint64_t> blocked_traversals{0};
  std::atomic<uint64_t> pool_hits{0};
  std::atomic<uint64_t> pool_misses{0};
  std::atomic<uint64_t> pool_evictions{0};
  std::atomic<uint64_t> pool_writebacks{0};
  std::atomic<uint64_t> pool_prefetched{0};
  std::atomic<uint64_t> log_flush_calls{0};
  std::atomic<uint64_t> log_fsyncs{0};

  CounterSnapshot Snapshot() const;
  void Reset();

 private:
  GlobalCounters() = default;
};

}  // namespace oir

#endif  // OIR_UTIL_COUNTERS_H_
