#ifndef OIR_UTIL_COUNTERS_H_
#define OIR_UTIL_COUNTERS_H_

// Global event counters used to account for the cost drivers the paper
// discusses: latch-manager and lock-manager calls, log volume, page I/O and
// level-1 page visits (Section 4.3, Section 6.4). Benchmarks snapshot and
// reset these around measured regions.
//
// The field set is defined once, in OIR_COUNTER_FIELDS; the snapshot
// struct, the atomic struct, operator-, Snapshot(), Reset(), ToString() and
// the per-field visitors are all generated from it, so they cannot drift.

#include <atomic>
#include <cstdint>
#include <string>

namespace oir {

// V(name) for every counter. Add new counters here and nowhere else.
#define OIR_COUNTER_FIELDS(V) \
  V(latch_acquires)           \
  V(latch_waits)              \
  V(lock_requests)            \
  V(lock_waits)               \
  V(lock_watchdog_fires)      \
  V(cond_lock_failures)       \
  V(log_records)              \
  V(log_bytes)                \
  V(pages_read)               \
  V(pages_written)            \
  V(io_ops)                   \
  V(io_read_ops)              \
  V(io_write_ops)             \
  V(level1_visits)            \
  V(traversal_restarts)       \
  V(blocked_traversals)       \
  V(pool_hits)                \
  V(pool_misses)              \
  V(pool_evictions)           \
  V(pool_writebacks)          \
  V(pool_prefetched)          \
  V(log_flush_calls)          \
  V(log_fsyncs)               \
  V(log_commits_acked)        \
  V(log_groups_acked)         \
  V(wal_segments_sealed)      \
  V(wal_segments_completed)   \
  V(wal_inflight_bytes)       \
  V(pool_wb_enqueued)         \
  V(pool_wb_async_writes)     \
  V(flight_records_dumped)

struct CounterSnapshot {
#define OIR_COUNTER_DECL(name) uint64_t name = 0;
  OIR_COUNTER_FIELDS(OIR_COUNTER_DECL)
#undef OIR_COUNTER_DECL

  CounterSnapshot operator-(const CounterSnapshot& b) const {
    CounterSnapshot r;
#define OIR_COUNTER_SUB(name) r.name = name - b.name;
    OIR_COUNTER_FIELDS(OIR_COUNTER_SUB)
#undef OIR_COUNTER_SUB
    return r;
  }

  // Calls fn(name, value) for every field, in declaration order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
#define OIR_COUNTER_VISIT(name) fn(#name, name);
    OIR_COUNTER_FIELDS(OIR_COUNTER_VISIT)
#undef OIR_COUNTER_VISIT
  }

  std::string ToString() const;
};

class GlobalCounters {
 public:
  static GlobalCounters& Get();

#define OIR_COUNTER_DECL(name) std::atomic<uint64_t> name{0};
  OIR_COUNTER_FIELDS(OIR_COUNTER_DECL)
#undef OIR_COUNTER_DECL

  CounterSnapshot Snapshot() const;
  void Reset();

  // Calls fn(name, atomic&) for every field, in declaration order.
  template <typename Fn>
  void ForEach(Fn&& fn) {
#define OIR_COUNTER_VISIT(name) fn(#name, name);
    OIR_COUNTER_FIELDS(OIR_COUNTER_VISIT)
#undef OIR_COUNTER_VISIT
  }

 private:
  GlobalCounters() = default;
};

}  // namespace oir

#endif  // OIR_UTIL_COUNTERS_H_
