#include "util/counters.h"

#include <cstdio>

namespace oir {

GlobalCounters& GlobalCounters::Get() {
  static GlobalCounters* instance = new GlobalCounters();
  return *instance;
}

CounterSnapshot GlobalCounters::Snapshot() const {
  CounterSnapshot s;
  s.latch_acquires = latch_acquires.load(std::memory_order_relaxed);
  s.latch_waits = latch_waits.load(std::memory_order_relaxed);
  s.lock_requests = lock_requests.load(std::memory_order_relaxed);
  s.lock_waits = lock_waits.load(std::memory_order_relaxed);
  s.log_records = log_records.load(std::memory_order_relaxed);
  s.log_bytes = log_bytes.load(std::memory_order_relaxed);
  s.pages_read = pages_read.load(std::memory_order_relaxed);
  s.pages_written = pages_written.load(std::memory_order_relaxed);
  s.io_ops = io_ops.load(std::memory_order_relaxed);
  s.io_read_ops = io_read_ops.load(std::memory_order_relaxed);
  s.io_write_ops = io_write_ops.load(std::memory_order_relaxed);
  s.level1_visits = level1_visits.load(std::memory_order_relaxed);
  s.traversal_restarts = traversal_restarts.load(std::memory_order_relaxed);
  s.blocked_traversals = blocked_traversals.load(std::memory_order_relaxed);
  s.pool_hits = pool_hits.load(std::memory_order_relaxed);
  s.pool_misses = pool_misses.load(std::memory_order_relaxed);
  s.pool_evictions = pool_evictions.load(std::memory_order_relaxed);
  s.pool_writebacks = pool_writebacks.load(std::memory_order_relaxed);
  s.pool_prefetched = pool_prefetched.load(std::memory_order_relaxed);
  s.log_flush_calls = log_flush_calls.load(std::memory_order_relaxed);
  s.log_fsyncs = log_fsyncs.load(std::memory_order_relaxed);
  return s;
}

void GlobalCounters::Reset() {
  latch_acquires.store(0, std::memory_order_relaxed);
  latch_waits.store(0, std::memory_order_relaxed);
  lock_requests.store(0, std::memory_order_relaxed);
  lock_waits.store(0, std::memory_order_relaxed);
  log_records.store(0, std::memory_order_relaxed);
  log_bytes.store(0, std::memory_order_relaxed);
  pages_read.store(0, std::memory_order_relaxed);
  pages_written.store(0, std::memory_order_relaxed);
  io_ops.store(0, std::memory_order_relaxed);
  io_read_ops.store(0, std::memory_order_relaxed);
  io_write_ops.store(0, std::memory_order_relaxed);
  level1_visits.store(0, std::memory_order_relaxed);
  traversal_restarts.store(0, std::memory_order_relaxed);
  blocked_traversals.store(0, std::memory_order_relaxed);
  pool_hits.store(0, std::memory_order_relaxed);
  pool_misses.store(0, std::memory_order_relaxed);
  pool_evictions.store(0, std::memory_order_relaxed);
  pool_writebacks.store(0, std::memory_order_relaxed);
  pool_prefetched.store(0, std::memory_order_relaxed);
  log_flush_calls.store(0, std::memory_order_relaxed);
  log_fsyncs.store(0, std::memory_order_relaxed);
}

std::string CounterSnapshot::ToString() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "latch_acquires=%llu latch_waits=%llu lock_requests=%llu "
      "lock_waits=%llu log_records=%llu log_bytes=%llu pages_read=%llu "
      "pages_written=%llu io_ops=%llu level1_visits=%llu "
      "traversal_restarts=%llu blocked_traversals=%llu pool_hits=%llu "
      "pool_misses=%llu pool_evictions=%llu pool_writebacks=%llu "
      "pool_prefetched=%llu log_flush_calls=%llu log_fsyncs=%llu",
      (unsigned long long)latch_acquires, (unsigned long long)latch_waits,
      (unsigned long long)lock_requests, (unsigned long long)lock_waits,
      (unsigned long long)log_records, (unsigned long long)log_bytes,
      (unsigned long long)pages_read, (unsigned long long)pages_written,
      (unsigned long long)io_ops, (unsigned long long)level1_visits,
      (unsigned long long)traversal_restarts,
      (unsigned long long)blocked_traversals, (unsigned long long)pool_hits,
      (unsigned long long)pool_misses, (unsigned long long)pool_evictions,
      (unsigned long long)pool_writebacks,
      (unsigned long long)pool_prefetched,
      (unsigned long long)log_flush_calls, (unsigned long long)log_fsyncs);
  return std::string(buf);
}

}  // namespace oir
