#include "util/counters.h"

#include <cstdio>

namespace oir {

GlobalCounters& GlobalCounters::Get() {
  static GlobalCounters* instance = new GlobalCounters();
  return *instance;
}

CounterSnapshot GlobalCounters::Snapshot() const {
  CounterSnapshot s;
#define OIR_COUNTER_LOAD(name) s.name = name.load(std::memory_order_relaxed);
  OIR_COUNTER_FIELDS(OIR_COUNTER_LOAD)
#undef OIR_COUNTER_LOAD
  return s;
}

void GlobalCounters::Reset() {
#define OIR_COUNTER_ZERO(name) name.store(0, std::memory_order_relaxed);
  OIR_COUNTER_FIELDS(OIR_COUNTER_ZERO)
#undef OIR_COUNTER_ZERO
}

std::string CounterSnapshot::ToString() const {
  std::string out;
  out.reserve(768);
  ForEach([&out](const char* name, uint64_t value) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s%s=%llu", out.empty() ? "" : " ", name,
                  static_cast<unsigned long long>(value));
    out += buf;
  });
  return out;
}

}  // namespace oir
